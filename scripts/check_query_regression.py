#!/usr/bin/env python3
"""Gate bench_query's join-heavy throughput against the checked-in baseline.

Raw plans/sec is not comparable across machines, so the check normalizes
by the row reference evaluator measured in the SAME run: the columnar
path must sustain at least

    baseline_columnar * (current_row / baseline_row) * (1 - tolerance)

plans/sec on the join-heavy workload. The row evaluator is the shared
yardstick — it runs the same algebra on the same inputs, so its ratio
captures machine speed, leaving only genuine columnar-path regressions.

Usage: check_query_regression.py <current.json> <baseline.json> [tolerance]
Exits non-zero on regression (default tolerance: 10%).
"""

import json
import sys


def gate_row(path):
    with open(path) as f:
        doc = json.load(f)
    for row in doc.get("rows", []):
        if row.get("plan") == "join_heavy_gate":
            return row
    sys.exit(f"error: no join_heavy_gate row in {path}")


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(__doc__)
    current = gate_row(sys.argv[1])
    baseline = gate_row(sys.argv[2])
    tolerance = float(sys.argv[3]) if len(sys.argv) == 4 else 0.10

    machine_scale = current["plans_per_sec_row"] / baseline["plans_per_sec_row"]
    required = baseline["plans_per_sec"] * machine_scale * (1.0 - tolerance)
    actual = current["plans_per_sec"]

    print(f"join-heavy columnar plans/sec: {actual:.1f}")
    print(f"baseline: {baseline['plans_per_sec']:.1f} "
          f"(row yardstick scale {machine_scale:.2f}x -> "
          f"required >= {required:.1f} at {tolerance:.0%} tolerance)")
    if actual < required:
        print("FAIL: join-heavy columnar throughput regressed beyond "
              "tolerance", file=sys.stderr)
        sys.exit(1)
    print("PASS")


if __name__ == "__main__":
    main()
