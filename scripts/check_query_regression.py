#!/usr/bin/env python3
"""Gate bench_query's join-heavy throughput against the checked-in baseline.

Raw plans/sec is not comparable across machines, so the check normalizes
by the row reference evaluator measured in the SAME run: the columnar
path must sustain at least

    baseline_columnar * (current_row / baseline_row) * (1 - tolerance)

plans/sec on the join-heavy workload. The row evaluator is the shared
yardstick — it runs the same algebra on the same inputs, so its ratio
captures machine speed, leaving only genuine columnar-path regressions.

The bounds-width frontier (Part 2b) is gated too: at each worlds budget
the compiled mean bounds width is a pure function of the workload, not
the machine, so the current width must not exceed the baseline width by
more than the tolerance (a widening envelope means the lattice search
got worse at the same budget).

Usage: check_query_regression.py <current.json> <baseline.json> [tolerance]
Exits non-zero on regression (default tolerance: 10%).
"""

import json
import sys


def load(path):
    with open(path) as f:
        return json.load(f)


def gate_row(doc, path):
    for row in doc.get("rows", []):
        if row.get("plan") == "join_heavy_gate":
            return row
    sys.exit(f"error: no join_heavy_gate row in {path}")


def check_frontier(current_doc, baseline_doc, tolerance):
    """Width regression check; returns False on regression."""
    base_widths = {row["worlds_budget"]: row["mean_width"]
                   for row in baseline_doc.get("frontier_rows", [])}
    if not base_widths:
        print("frontier: no baseline frontier_rows, skipping width check")
        return True
    ok = True
    for row in current_doc.get("frontier_rows", []):
        budget = row["worlds_budget"]
        if budget not in base_widths:
            continue
        width, base = row["mean_width"], base_widths[budget]
        # Widths are deterministic per workload; allow the tolerance
        # plus an epsilon so an exactly-zero baseline stays checkable.
        limit = base * (1.0 + tolerance) + 1e-9
        status = "ok" if width <= limit else "REGRESSED"
        print(f"frontier worlds_budget={budget}: width {width:.6f} "
              f"(baseline {base:.6f}, limit {limit:.6f}) {status}")
        if width > limit:
            ok = False
    return ok


def main():
    if len(sys.argv) not in (3, 4):
        sys.exit(__doc__)
    current_doc = load(sys.argv[1])
    baseline_doc = load(sys.argv[2])
    current = gate_row(current_doc, sys.argv[1])
    baseline = gate_row(baseline_doc, sys.argv[2])
    tolerance = float(sys.argv[3]) if len(sys.argv) == 4 else 0.10

    machine_scale = current["plans_per_sec_row"] / baseline["plans_per_sec_row"]
    required = baseline["plans_per_sec"] * machine_scale * (1.0 - tolerance)
    actual = current["plans_per_sec"]

    print(f"join-heavy columnar plans/sec: {actual:.1f}")
    print(f"baseline: {baseline['plans_per_sec']:.1f} "
          f"(row yardstick scale {machine_scale:.2f}x -> "
          f"required >= {required:.1f} at {tolerance:.0%} tolerance)")
    failed = False
    if actual < required:
        print("FAIL: join-heavy columnar throughput regressed beyond "
              "tolerance", file=sys.stderr)
        failed = True
    if not check_frontier(current_doc, baseline_doc, tolerance):
        print("FAIL: compiled bounds width regressed beyond tolerance at "
              "a fixed worlds budget", file=sys.stderr)
        failed = True
    if failed:
        sys.exit(1)
    print("PASS")


if __name__ == "__main__":
    main()
