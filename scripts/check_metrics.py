#!/usr/bin/env python3
"""Promtool-style lint for a Prometheus text-format /metrics scrape.

Checks, per metric family:

  * every sample belongs to a family announced by `# HELP` and `# TYPE`
    lines (and each family announces both, exactly once, HELP first);
  * the TYPE is one of counter/gauge/histogram;
  * counter and gauge samples are finite numbers, counters >= 0;
  * histogram families expose `_bucket`/`_sum`/`_count` series only, per
    label set the `le` buckets are cumulative (non-decreasing counts in
    increasing `le` order), the `+Inf` bucket exists, and `_count`
    equals the `+Inf` bucket's value;
  * no duplicate sample (same name + label set) appears twice.

Reads the scrape from a file argument or stdin, so CI can pipe
`curl /metrics` straight in:

    curl -s http://127.0.0.1:8080/metrics | scripts/check_metrics.py

Repeatable `--require NAME` flags additionally assert that a family is
present in the scrape (CI pins the series dashboards depend on):

    ... | scripts/check_metrics.py --require mrsl_uptime_seconds \
            --require mrsl_statements_tracked

Exits non-zero with one line per violation.
"""

import math
import re
import sys

SAMPLE_RE = re.compile(
    r'^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{(?P<labels>[^}]*)\})?'
    r'\s+(?P<value>\S+)(?:\s+\d+)?$')
LABEL_RE = re.compile(r'([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"')
VALID_TYPES = {"counter", "gauge", "histogram"}


def base_family(name):
    """Family a sample belongs to (strips histogram suffixes)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_value(text):
    if text == "+Inf":
        return math.inf
    if text == "-Inf":
        return -math.inf
    try:
        return float(text)
    except ValueError:
        return None


def lint(text, required=()):
    errors = []
    helps = {}          # family -> help text
    types = {}          # family -> type
    samples = []        # (line_no, name, labels_dict, value)
    seen_keys = set()   # duplicate detection

    for line_no, line in enumerate(text.splitlines(), start=1):
        line = line.rstrip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line.split(None, 3)
            if len(parts) < 4:
                errors.append(f"line {line_no}: HELP line has no text")
                continue
            family = parts[2]
            if family in helps:
                errors.append(f"line {line_no}: duplicate HELP for {family}")
            if family in types:
                errors.append(
                    f"line {line_no}: HELP for {family} after its TYPE")
            helps[family] = parts[3]
        elif line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {line_no}: malformed TYPE line")
                continue
            family, mtype = parts[2], parts[3]
            if family in types:
                errors.append(f"line {line_no}: duplicate TYPE for {family}")
            if family not in helps:
                errors.append(
                    f"line {line_no}: TYPE for {family} without HELP")
            if mtype not in VALID_TYPES:
                errors.append(
                    f"line {line_no}: {family} has invalid type {mtype!r}")
            types[family] = mtype
        elif line.startswith("#"):
            continue  # comment
        else:
            m = SAMPLE_RE.match(line)
            if not m:
                errors.append(f"line {line_no}: unparseable sample: {line!r}")
                continue
            name = m.group("name")
            labels = dict(LABEL_RE.findall(m.group("labels") or ""))
            value = parse_value(m.group("value"))
            if value is None:
                errors.append(
                    f"line {line_no}: {name} has non-numeric value "
                    f"{m.group('value')!r}")
                continue
            key = (name, tuple(sorted(labels.items())))
            if key in seen_keys:
                errors.append(f"line {line_no}: duplicate sample {name}"
                              f"{dict(labels)}")
            seen_keys.add(key)
            samples.append((line_no, name, labels, value))

    families = {}  # family -> list of samples
    for line_no, name, labels, value in samples:
        family = base_family(name)
        if family not in types and name in helps or name in types:
            family = name
        if family not in types:
            errors.append(
                f"line {line_no}: sample {name} has no # TYPE announcement")
            continue
        families.setdefault(family, []).append((line_no, name, labels, value))

    for family, mtype in types.items():
        fam_samples = families.get(family, [])
        if not fam_samples:
            errors.append(f"{family}: announced but has no samples")
            continue
        if mtype == "histogram":
            lint_histogram(family, fam_samples, errors)
        else:
            for line_no, name, labels, value in fam_samples:
                if name != family:
                    errors.append(
                        f"line {line_no}: {mtype} family {family} has "
                        f"suffixed sample {name}")
                if math.isnan(value) or math.isinf(value):
                    errors.append(
                        f"line {line_no}: {name} is not finite ({value})")
                elif mtype == "counter" and value < 0:
                    errors.append(
                        f"line {line_no}: counter {name} is negative")
    for family in required:
        if family not in types:
            errors.append(f"required family {family} is missing")
    return errors


def lint_histogram(family, fam_samples, errors):
    # Group by label set minus `le`.
    series = {}  # labelkey -> {"buckets": [(le, value)], "sum": v, "count": v}
    for line_no, name, labels, value in fam_samples:
        rest = tuple(sorted((k, v) for k, v in labels.items() if k != "le"))
        entry = series.setdefault(rest, {"buckets": [], "sum": None,
                                         "count": None})
        if name == family + "_bucket":
            if "le" not in labels:
                errors.append(f"line {line_no}: {name} missing le label")
                continue
            le = parse_value(labels["le"])
            if le is None:
                errors.append(
                    f"line {line_no}: {name} has bad le "
                    f"{labels['le']!r}")
                continue
            entry["buckets"].append((le, value))
        elif name == family + "_sum":
            entry["sum"] = value
        elif name == family + "_count":
            entry["count"] = value
        else:
            errors.append(
                f"line {line_no}: histogram family {family} has "
                f"unexpected sample {name}")
    for labelkey, entry in series.items():
        where = f"{family}{{{', '.join('='.join(kv) for kv in labelkey)}}}"
        buckets = entry["buckets"]
        if not buckets:
            errors.append(f"{where}: no buckets")
            continue
        les = [le for le, _ in buckets]
        if les != sorted(les):
            errors.append(f"{where}: le buckets out of order")
        counts = [v for _, v in sorted(buckets)]
        if any(b > a for a, b in zip(counts[1:], counts)):
            errors.append(f"{where}: bucket counts not cumulative")
        if not any(math.isinf(le) for le in les):
            errors.append(f"{where}: no +Inf bucket")
        else:
            inf_count = max(v for le, v in buckets if math.isinf(le))
            if entry["count"] is None:
                errors.append(f"{where}: missing _count")
            elif entry["count"] != inf_count:
                errors.append(
                    f"{where}: _count {entry['count']} != +Inf bucket "
                    f"{inf_count}")
        if entry["sum"] is None:
            errors.append(f"{where}: missing _sum")


def main():
    args = sys.argv[1:]
    required = []
    positional = []
    while args:
        arg = args.pop(0)
        if arg == "--require":
            if not args:
                sys.exit("error: --require needs a family name")
            required.append(args.pop(0))
        elif arg.startswith("--require="):
            required.append(arg.split("=", 1)[1])
        else:
            positional.append(arg)
    if len(positional) > 1:
        sys.exit(f"usage: {sys.argv[0]} [scrape.txt] "
                 f"[--require FAMILY]...  (or pipe to stdin)")
    if positional:
        with open(positional[0]) as f:
            text = f.read()
    else:
        text = sys.stdin.read()
    if not text.strip():
        sys.exit("error: empty scrape")
    errors = lint(text, required)
    for err in errors:
        print(err, file=sys.stderr)
    families = len([1 for line in text.splitlines()
                    if line.startswith("# TYPE ")])
    if errors:
        sys.exit(f"check_metrics: {len(errors)} violation(s) across "
                 f"{families} families")
    print(f"check_metrics: OK ({families} families)")


if __name__ == "__main__":
    main()
