// Fig 8: the effect of network properties on single-attribute accuracy,
// with training size 100,000 (10,000 quick), support 0.001, best-averaged.
//   (a) topology/depth: BN18 vs BN19 vs BN20 (10 binary attrs each)
//   (b) network size: crown networks BN8 / BN9 / BN17 / BN18
//   (c) attribute cardinality: line networks BN13 / BN14 / BN15 / BN16
//
// Paper shapes: (a) flat — depth does not matter; (b) KL grows with the
// number of attributes; (c) KL grows with cardinality.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "expfw/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

mrsl::SingleAttrResult Run(const char* net, size_t train,
                           const mrsl::RepetitionOptions& reps) {
  mrsl::SingleAttrConfig config;
  config.network = net;
  config.train_size = train;
  config.support = 0.001;
  config.voting = {mrsl::VoterChoice::kBest, mrsl::VotingScheme::kAveraged};
  config.reps = reps;
  auto r = RunSingleAttrExperiment(config);
  if (!r.ok()) {
    std::fprintf(stderr, "experiment failed: %s\n",
                 r.status().ToString().c_str());
    std::exit(1);
  }
  return *r;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Fig 8", "accuracy vs network topology / size / cardinality",
                flags.full);
  const size_t train = flags.full ? 100000 : 10000;
  RepetitionOptions reps;
  reps.num_instances = flags.full ? 3 : 2;
  reps.num_splits = flags.full ? 3 : 2;
  reps.max_eval_tuples = flags.full ? 500 : 200;

  // (a) depth sweep at fixed size/cardinality.
  std::printf("\nFig 8(a): KL vs network depth (BN18/BN19/BN20, 10 binary "
              "attrs)\n");
  TablePrinter ta({"network", "depth", "avg KL"});
  std::vector<double> depth_kl;
  for (const char* net : {"BN18", "BN19", "BN20"}) {
    auto spec = NetworkByName(net);
    auto r = Run(net, train, reps);
    ta.AddRow({net, std::to_string(spec->topology.Depth()),
               FormatDouble(r.kl, 4)});
    depth_kl.push_back(r.kl);
  }
  std::printf("%s", ta.ToString().c_str());

  // (b) size sweep over crowns.
  std::printf("\nFig 8(b): KL vs number of attributes (crown networks)\n");
  TablePrinter tb({"network", "num attrs", "avg KL"});
  std::vector<double> size_x;
  std::vector<double> size_kl;
  for (const char* net : {"BN8", "BN9", "BN17", "BN18"}) {
    auto spec = NetworkByName(net);
    auto r = Run(net, train, reps);
    tb.AddRow({net, std::to_string(spec->topology.num_vars()),
               FormatDouble(r.kl, 4)});
    size_x.push_back(static_cast<double>(spec->topology.num_vars()));
    size_kl.push_back(r.kl);
  }
  std::printf("%s", tb.ToString().c_str());

  // (c) cardinality sweep over lines.
  std::printf("\nFig 8(c): KL vs attribute cardinality (line networks)\n");
  TablePrinter tc({"network", "cardinality", "avg KL"});
  std::vector<double> card_x;
  std::vector<double> card_kl;
  for (const char* net : {"BN13", "BN14", "BN15", "BN16"}) {
    auto spec = NetworkByName(net);
    auto r = Run(net, train, reps);
    tc.AddRow({net, std::to_string(spec->topology.card(0)),
               FormatDouble(r.kl, 4)});
    card_x.push_back(static_cast<double>(spec->topology.card(0)));
    card_kl.push_back(r.kl);
  }
  std::printf("%s", tc.ToString().c_str());

  double depth_spread = 0.0;
  for (double k : depth_kl) {
    depth_spread = std::max(depth_spread, k) ;
  }
  double depth_min = depth_kl[0];
  for (double k : depth_kl) depth_min = std::min(depth_min, k);
  std::printf(
      "\nFINDING: depth sweep KL spread %.4f (paper: no difference);\n"
      "KL grows with attributes (corr %.2f > 0) and with cardinality\n"
      "(corr %.2f > 0), matching Fig 8(b)/(c).\n",
      depth_spread - depth_min, bench::Correlation(size_x, size_kl),
      bench::Correlation(card_x, card_kl));
  return 0;
}
