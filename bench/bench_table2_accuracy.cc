// Table II: accuracy of single-variable inference for 14 networks under
// the four voting methods (all/best x averaged/weighted), at the paper's
// most accurate setting (support = 0.001, training size = 100,000;
// scaled to 10,000 in the quick run).
//
// Paper shapes: best-averaged / best-weighted are never less accurate
// than the all-* methods and strictly better on a significant subset;
// KL <= 0.1 typically implies top-1 accuracy >= 90%.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "expfw/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

struct PaperRow {
  const char* network;
  double best_avg_top1;
  double best_avg_kl;
};

// Reference values from Table II (best-averaged columns).
const PaperRow kPaperRows[] = {
    {"BN1", 0.96, 0.03},  {"BN2", 0.82, 0.08},  {"BN3", 0.82, 0.06},
    {"BN4", 0.92, 0.10},  {"BN5", 0.69, 0.14},  {"BN6", 0.80, 0.07},
    {"BN7", 0.67, 0.22},  {"BN8", 0.98, 0.00},  {"BN9", 0.98, 0.00},
    {"BN10", 0.79, 0.10}, {"BN11", 0.68, 0.17}, {"BN12", 0.53, 0.26},
    {"BN17", 0.82, 0.08}, {"BN18", 0.83, 0.08},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Table II",
                "single-variable inference accuracy, 4 voting methods",
                flags.full);

  const size_t train = flags.full ? 100000 : 10000;
  RepetitionOptions reps;
  reps.num_instances = flags.full ? 3 : 2;
  reps.num_splits = flags.full ? 3 : 1;
  reps.max_eval_tuples = flags.full ? 0 : 250;
  std::printf("support = 0.001, training size = %zu\n\n", train);

  const VotingOptions kMethods[] = {
      {VoterChoice::kAll, VotingScheme::kAveraged},
      {VoterChoice::kAll, VotingScheme::kWeighted},
      {VoterChoice::kBest, VotingScheme::kAveraged},
      {VoterChoice::kBest, VotingScheme::kWeighted},
  };

  TablePrinter table({"network", "all-avg top1/KL", "all-wgt top1/KL",
                      "best-avg top1/KL", "best-wgt top1/KL",
                      "paper best-avg"});
  size_t best_no_worse = 0;
  for (const PaperRow& row : kPaperRows) {
    std::vector<SingleAttrResult> results;
    for (const VotingOptions& voting : kMethods) {
      SingleAttrConfig config;
      config.network = row.network;
      config.train_size = train;
      config.support = 0.001;
      config.voting = voting;
      config.reps = reps;
      auto r = RunSingleAttrExperiment(config);
      if (!r.ok()) {
        std::fprintf(stderr, "experiment failed: %s\n",
                     r.status().ToString().c_str());
        return 1;
      }
      results.push_back(*r);
    }
    auto cell = [](const SingleAttrResult& r) {
      return FormatDouble(r.top1, 2) + "/" + FormatDouble(r.kl, 2);
    };
    table.AddRow({row.network, cell(results[0]), cell(results[1]),
                  cell(results[2]), cell(results[3]),
                  FormatDouble(row.best_avg_top1, 2) + "/" +
                      FormatDouble(row.best_avg_kl, 2)});
    // Paper claim: best-averaged KL <= all-weighted KL (+ noise).
    if (results[2].kl <= results[1].kl + 0.02) ++best_no_worse;
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nFINDING: best-averaged is no less accurate than all-weighted on\n"
      "%zu/14 networks (paper: on all 14, strictly better on many).\n",
      best_no_worse);
  return 0;
}
