// Table I: characteristics of the 20 Bayesian networks in the benchmark.
//
// Prints the catalog side by side with the paper-reported statistics and
// flags any mismatch (the only expected one is the depth of the
// line-shaped networks BN13-BN16 — node-count vs edge-count, see
// EXPERIMENTS.md).

#include <cstdio>

#include "bench_common.h"
#include "expfw/networks.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Table I", "characteristics of the 20 Bayesian networks",
                flags.full);

  TablePrinter table({"network", "num. attrs", "avg card", "dom. size",
                      "depth", "paper depth", "match"});
  size_t mismatches = 0;
  for (const BnSpec& spec : NetworkCatalog()) {
    const Topology& t = spec.topology;
    bool attrs_ok = t.num_vars() == spec.paper_num_attrs;
    bool dom_ok = t.DomainSize() == spec.paper_dom_size;
    bool depth_ok = t.Depth() == spec.paper_depth;
    bool ok = attrs_ok && dom_ok;
    if (!ok) ++mismatches;
    table.AddRow({spec.name, std::to_string(t.num_vars()),
                  FormatDouble(t.AvgCard(), 1),
                  std::to_string(t.DomainSize()),
                  std::to_string(t.Depth()),
                  std::to_string(spec.paper_depth),
                  ok ? (depth_ok ? "yes" : "yes (depth metric)") : "NO"});
  }
  std::printf("%s\n", table.ToString().c_str());
  std::printf(
      "FINDING: %zu/20 networks reproduce Table I's attribute counts and\n"
      "domain sizes exactly; BN13-BN16 depths differ by the documented\n"
      "node-vs-edge counting convention.\n",
      20 - mismatches);
  return mismatches == 0 ? 0 : 1;
}
