// Ablation studies for the design choices called out in DESIGN.md:
//   1. inverted rule index vs naive per-rule body scans for matching;
//   2. the conditional-CPD cache inside Gibbs sampling;
//   3. voting method cost (the paper claims no measurable difference);
//   4. sampling strategy comparison: independent-product vs Gibbs
//      accuracy on a correlated network (why sampling is needed at all),
//      and all-at-a-time vs tuple-at-a-time vs tuple-DAG cost.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bn/exact.h"
#include "core/learner.h"
#include "core/workload.h"
#include "expfw/metrics.h"
#include "expfw/networks.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Ablation", "design-choice ablations (see DESIGN.md §5)",
                flags.full);

  auto spec = NetworkByName("BN17");
  Rng rng(0xAB1A);
  BayesNet bn = BayesNet::RandomInstance(spec->topology, &rng);
  Relation train = bn.SampleRelation(flags.full ? 100000 : 20000, &rng);
  LearnOptions lo;
  lo.support_threshold = 0.001;
  auto model = LearnModel(train, lo);
  if (!model.ok()) return 1;
  std::printf("model: %zu meta-rules over %zu attributes\n",
              model->TotalMetaRules(), model->num_attrs());

  // Probes: single-missing tuples.
  std::vector<Tuple> probes;
  for (int i = 0; i < 2000; ++i) {
    Tuple t = bn.ForwardSample(&rng);
    t.set_value(static_cast<AttrId>(rng.UniformInt(8)), kMissingValue);
    probes.push_back(std::move(t));
  }

  // ---- 1. Rule-index vs linear-scan matching ----
  {
    const Mrsl& lattice = model->mrsl(0);
    std::vector<uint32_t> out;
    WallTimer t1;
    for (int rep = 0; rep < 20; ++rep) {
      for (const Tuple& p : probes) {
        lattice.Match(p, VoterChoice::kAll, &out);
      }
    }
    double indexed = t1.ElapsedSeconds();
    WallTimer t2;
    for (int rep = 0; rep < 20; ++rep) {
      for (const Tuple& p : probes) {
        auto slow = lattice.MatchLinearScan(p, VoterChoice::kAll);
        (void)slow;
      }
    }
    double linear = t2.ElapsedSeconds();
    std::printf(
        "\n[1] matching: inverted index %.4fs vs linear scan %.4fs "
        "(speedup %.1fx over %zu rules)\n",
        indexed, linear, linear / indexed, lattice.num_rules());
  }

  // ---- 2. CPD cache in Gibbs ----
  {
    std::vector<Tuple> workload;
    for (int i = 0; i < 200; ++i) {
      Tuple t = probes[static_cast<size_t>(i)];
      t.set_value((t.MissingAttrs()[0] + 1) % 8, kMissingValue);
      t.set_value((t.MissingAttrs()[0] + 3) % 8, kMissingValue);
      workload.push_back(std::move(t));
    }
    TablePrinter table(
        {"cpd cache", "wall (s)", "cpd evals", "cache hits"});
    double secs_on = 0.0;
    double secs_off = 0.0;
    for (bool cache : {false, true}) {
      WorkloadOptions opts;
      opts.gibbs.samples = 500;
      opts.gibbs.burn_in = 100;
      opts.gibbs.enable_cpd_cache = cache;
      WorkloadStats stats;
      auto dists = RunWorkload(*model, workload,
                               SamplingMode::kTupleAtATime, opts, &stats);
      if (!dists.ok()) return 1;
      table.AddRow({cache ? "on" : "off",
                    FormatDouble(stats.wall_seconds, 3),
                    std::to_string(stats.cpd_evaluations),
                    std::to_string(stats.cache_hits)});
      (cache ? secs_on : secs_off) = stats.wall_seconds;
    }
    std::printf("\n[2] conditional-CPD cache (200 tuples x 500 samples):\n%s",
                table.ToString().c_str());
    std::printf("speedup: %.1fx\n", secs_off / secs_on);
  }

  // ---- 3. Voting method cost ----
  {
    TablePrinter table({"method", "wall (s) for 2000 inferences"});
    const VotingOptions methods[] = {
        {VoterChoice::kAll, VotingScheme::kAveraged},
        {VoterChoice::kAll, VotingScheme::kWeighted},
        {VoterChoice::kBest, VotingScheme::kAveraged},
        {VoterChoice::kBest, VotingScheme::kWeighted},
    };
    double lo_t = 1e30;
    double hi_t = 0.0;
    for (const auto& m : methods) {
      WallTimer timer;
      for (const Tuple& p : probes) {
        auto cpd = InferSingleAttribute(*model, p, p.MissingAttrs()[0], m);
        if (!cpd.ok()) return 1;
      }
      double secs = timer.ElapsedSeconds();
      lo_t = std::min(lo_t, secs);
      hi_t = std::max(hi_t, secs);
      table.AddRow({std::string(VoterChoiceName(m.choice)) + "-" +
                        VotingSchemeName(m.scheme),
                    FormatDouble(secs, 4)});
    }
    std::printf("\n[3] voting method runtime:\n%s", table.ToString().c_str());
    std::printf(
        "max/min ratio %.2f; paper reports no measurable effect — the\n"
        "best-* filter adds pairwise mask checks, visible here only\n"
        "because inference itself costs mere microseconds.\n",
        hi_t / lo_t);
  }

  // ---- 4. Sampling strategies ----
  {
    std::vector<Tuple> workload;
    Rng wrng(4);
    for (int i = 0; i < 60; ++i) {
      Tuple t = bn.ForwardSample(&wrng);
      // Crown source (0) and one middle (1) are directly connected, so
      // their joint given the rest is genuinely correlated — the case
      // where the independent-product approximation should break.
      t.set_value(0, kMissingValue);
      t.set_value(1, kMissingValue);
      workload.push_back(std::move(t));
    }
    TablePrinter table(
        {"strategy", "mean KL", "points sampled", "wall (s)"});
    for (SamplingMode mode :
         {SamplingMode::kIndependentProduct, SamplingMode::kTupleAtATime,
          SamplingMode::kTupleDag, SamplingMode::kAllAtATime}) {
      WorkloadOptions opts;
      opts.gibbs.samples = 500;
      opts.gibbs.burn_in = 100;
      opts.max_total_cycles = 300000;
      WorkloadStats stats;
      auto dists = RunWorkload(*model, workload, mode, opts, &stats);
      if (!dists.ok()) return 1;
      AccuracyAccumulator acc;
      for (size_t i = 0; i < workload.size(); ++i) {
        auto truth = TrueDistribution(bn, workload[i]);
        if (!truth.ok()) return 1;
        acc.Add(KlDivergence(*truth, (*dists)[i]), false);
      }
      table.AddRow({SamplingModeName(mode), FormatDouble(acc.MeanKl(), 4),
                    std::to_string(stats.points_sampled),
                    FormatDouble(stats.wall_seconds, 3)});
    }
    std::printf("\n[4] sampling strategies (60 tuples, 2 missing attrs):\n%s",
                table.ToString().c_str());
  }

  std::printf(
      "\nFINDING: the CPD cache is the load-bearing optimization inside\n"
      "the sampler; the inverted index wins moderately at this rule count\n"
      "and scales with model size; Gibbs sampling tracks or beats the\n"
      "independent-product baseline on correlated attributes, and\n"
      "all-at-a-time wastes samples exactly as Sec V-A predicts.\n");
  return 0;
}
