// Fig 5: KL divergence and top-1 accuracy as a function of training set
// size, for the four voting methods (support = 0.001).
//
// Paper shapes: KL falls until ~5000 points then plateaus; the all-*
// methods win at small training sizes (lower variance), the best-*
// methods win from ~5000 points on (lower bias).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "expfw/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

const char* kNetworks[] = {"BN1", "BN8", "BN9", "BN10", "BN17"};

}  // namespace

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Fig 5", "accuracy vs training set size, 4 voting methods",
                flags.full);

  std::vector<size_t> sizes =
      flags.full
          ? std::vector<size_t>{1000, 5000, 10000, 50000, 100000}
          : std::vector<size_t>{1000, 2000, 5000, 10000, 20000};
  RepetitionOptions reps;
  reps.num_instances = flags.full ? 3 : 2;
  reps.num_splits = flags.full ? 3 : 1;
  reps.max_eval_tuples = flags.full ? 500 : 200;

  const VotingOptions kMethods[] = {
      {VoterChoice::kAll, VotingScheme::kAveraged},
      {VoterChoice::kAll, VotingScheme::kWeighted},
      {VoterChoice::kBest, VotingScheme::kAveraged},
      {VoterChoice::kBest, VotingScheme::kWeighted},
  };

  TablePrinter kl_table({"training size", "all-avg KL", "all-wgt KL",
                         "best-avg KL", "best-wgt KL"});
  TablePrinter top1_table({"training size", "all-avg top1", "all-wgt top1",
                           "best-avg top1", "best-wgt top1"});
  std::vector<std::vector<double>> kl_series(4);

  for (size_t train : sizes) {
    std::vector<std::string> kl_row = {std::to_string(train)};
    std::vector<std::string> top1_row = {std::to_string(train)};
    for (size_t m = 0; m < 4; ++m) {
      AccuracyAccumulator acc;
      double kl_sum = 0.0;
      double top1_sum = 0.0;
      for (const char* net : kNetworks) {
        SingleAttrConfig config;
        config.network = net;
        config.train_size = train;
        config.support = 0.001;
        config.voting = kMethods[m];
        config.reps = reps;
        auto r = RunSingleAttrExperiment(config);
        if (!r.ok()) {
          std::fprintf(stderr, "experiment failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        kl_sum += r->kl;
        top1_sum += r->top1;
      }
      double kl = kl_sum / std::size(kNetworks);
      double top1 = top1_sum / std::size(kNetworks);
      kl_row.push_back(FormatDouble(kl, 4));
      top1_row.push_back(FormatDouble(top1, 3));
      kl_series[m].push_back(kl);
    }
    kl_table.AddRow(kl_row);
    top1_table.AddRow(top1_row);
  }

  std::printf("\nKL divergence (lower is better):\n%s",
              kl_table.ToString().c_str());
  std::printf("\ntop-1 accuracy (higher is better):\n%s",
              top1_table.ToString().c_str());

  // Shape checks: KL decreases with more data; best-avg beats all-wgt at
  // the largest size.
  bool kl_improves = kl_series[2].front() > kl_series[2].back();
  bool best_wins_large = kl_series[2].back() <= kl_series[1].back() + 1e-6;
  std::printf(
      "\nFINDING: KL %s as training grows (paper: drops then plateaus);\n"
      "at the largest training size best-averaged %s all-weighted\n"
      "(paper: best-* wins with >= 5000 points).\n",
      kl_improves ? "decreases" : "DOES NOT decrease",
      best_wins_large ? "beats or ties" : "LOSES TO");
  return 0;
}
