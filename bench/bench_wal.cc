// Durability benchmark: acked-updates/sec as a function of WAL sync
// discipline and write concurrency, plus recovery replay time as a
// function of log length.
//
// Two views of the same write path:
//   service level — N writer threads drive StoreService::BatchedUpdate
//     directly (the group-commit engine, fsync included). This is the
//     gated phase: it isolates exactly what group commit changes. A
//     fixed update total per configuration keeps relation growth — and
//     so per-commit copy cost — identical across configurations.
//   HTTP level — a closed loop of persistent connections POSTing
//     /update through the full socket stack. Reported for context; on a
//     single-core host the socket stack serializes identically for
//     every sync mode and masks the durability amortization the gate is
//     about.
//
// Configurations:
//   per-update : sync-mode always, update batching off — every update
//                pays its own commit and its own fdatasync (the naive
//                durable baseline).
//   group      : sync-mode group, batching on — the commit leader folds
//                concurrent inserts into one commit and issues ONE
//                fdatasync per drained group.
//   none       : no syncing at all (--full only) — the ceiling set by
//                everything except durability.
//
// Exit code doubles as the perf gate: group commit must sustain >= 5x
// the per-update-fsync throughput at 8 writers. --json writes the
// machine-readable trajectory file.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bn/bayes_net.h"
#include "core/learner.h"
#include "pdb/store.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "util/timer.h"

namespace mrsl {
namespace {

constexpr double kGateRatio = 5.0;
constexpr size_t kGateConnections = 8;

Tuple T(std::vector<int> vals) {
  Tuple t(vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    t.set_value(static_cast<AttrId>(i), vals[i]);
  }
  return t;
}

struct WalBenchFixture {
  BayesNet bn;
  Schema schema;
  MrslModel model;

  static WalBenchFixture Make() {
    WalBenchFixture f;
    Rng rng(77);
    f.bn = BayesNet::RandomInstance(Topology::Crown(4, 3), &rng);
    Relation train = f.bn.SampleRelation(6000, &rng);
    f.schema = train.schema();
    LearnOptions lo;
    lo.support_threshold = 0.002;
    auto model = LearnModel(train, lo);
    if (!model.ok()) {
      std::fprintf(stderr, "learn failed: %s\n",
                   model.status().ToString().c_str());
      std::abort();
    }
    f.model = std::move(model).value();
    return f;
  }

  Relation BaseRelation() const {
    Relation rel(schema);
    const std::vector<std::vector<int>> rows = {
        {0, 1, 2, 0}, {0, 0, -1, -1}, {0, 0, 1, -1},
        {1, 0, 2, 1}, {1, 1, -1, -1}, {2, 2, 0, -1},
        {2, 2, -1, 0}, {2, 2, -1, -1}, {2, 0, 1, 1}};
    for (const auto& r : rows) {
      if (!rel.Append(T(r)).ok()) std::abort();
    }
    return rel;
  }

  StoreOptions SOpts() const {
    StoreOptions so;
    so.workload.gibbs.samples = 120;
    so.workload.gibbs.burn_in = 20;
    so.workload.gibbs.seed = 4242;
    return so;
  }

  // Complete-row insert: no inference, so the loop measures the commit
  // and durability path, not the sampler.
  std::string InsertDeltaCsv(int salt) const {
    std::string csv = "op,row";
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      csv += "," + schema.attr(a).name();
    }
    csv += "\ninsert,";
    for (AttrId a = 0; a < schema.num_attrs(); ++a) {
      csv += "," + schema.attr(a).label((salt + a) % 2);
    }
    csv += "\n";
    return csv;
  }
};

void RemoveTree(const std::string& path) {
  if (DIR* d = ::opendir(path.c_str())) {
    while (struct dirent* entry = ::readdir(d)) {
      const std::string name = entry->d_name;
      if (name == "." || name == "..") continue;
      RemoveTree(path + "/" + name);
    }
    ::closedir(d);
    ::rmdir(path.c_str());
  } else {
    std::remove(path.c_str());
  }
}

struct WriteResult {
  std::string config;
  size_t connections = 0;
  size_t acked = 0;
  size_t errors = 0;
  double seconds = 0.0;
  double qps = 0.0;
  uint64_t wal_syncs = 0;
  uint64_t wal_records = 0;
};

// A fixed quota of updates pushed through BatchedUpdate by `writers`
// concurrent threads. Fixed-count (not fixed-duration) so every
// configuration ends at the same relation size and pays the same total
// copy cost — the measured difference is purely commit/fsync
// amortization.
WriteResult RunServiceStorm(const WalBenchFixture& f,
                            const std::string& config, WalSyncMode mode,
                            size_t max_update_batch, size_t writers,
                            size_t total_updates,
                            const std::string& wal_dir) {
  RemoveTree(wal_dir);
  Engine engine(&f.model);
  BidStore store(&engine, f.SOpts());
  if (!store.Commit(f.BaseRelation()).ok()) std::abort();
  if (!store.OpenWal(wal_dir, mode).ok()) std::abort();
  StoreServiceOptions service_opts;
  service_opts.max_update_batch = max_update_batch;
  StoreService service(&store, service_opts);

  std::atomic<size_t> issued{0};
  std::vector<size_t> acked(writers, 0);
  std::vector<size_t> errors(writers, 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < writers; ++w) {
    threads.emplace_back([&, w]() {
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      for (;;) {
        if (issued.fetch_add(1, std::memory_order_relaxed) >= total_updates) {
          return;
        }
        RelationDelta d;
        d.inserts.push_back(
            T({static_cast<int>(w % 2), static_cast<int>((w + 1) % 2), 0, 1}));
        if (service.BatchedUpdate(std::move(d), 0).ok()) {
          ++acked[w];
        } else {
          ++errors[w];
        }
      }
    });
  }
  WallTimer wall;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  WriteResult r;
  r.config = config;
  r.connections = writers;
  r.seconds = elapsed;
  for (size_t w = 0; w < writers; ++w) {
    r.acked += acked[w];
    r.errors += errors[w];
  }
  r.qps = elapsed > 0.0 ? static_cast<double>(r.acked) / elapsed : 0.0;
  r.wal_syncs = store.wal_stats().syncs;
  r.wal_records = store.wal_stats().records_appended;
  RemoveTree(wal_dir);
  return r;
}

// One closed-loop write storm against a fresh store + WAL + server.
WriteResult RunWriteStorm(const WalBenchFixture& f, const std::string& config,
                          WalSyncMode mode, size_t max_update_batch,
                          size_t connections, double duration_s,
                          const std::string& wal_dir) {
  RemoveTree(wal_dir);
  Engine engine(&f.model);
  BidStore store(&engine, f.SOpts());
  auto committed = store.Commit(f.BaseRelation());
  if (!committed.ok()) std::abort();
  auto wal = store.OpenWal(wal_dir, mode);
  if (!wal.ok()) {
    std::fprintf(stderr, "wal open failed: %s\n",
                 wal.status().ToString().c_str());
    std::abort();
  }

  ServerOptions server_opts;
  server_opts.max_inflight = 256;
  HttpServer server(server_opts);
  StoreServiceOptions service_opts;
  service_opts.max_update_batch = max_update_batch;
  StoreService service(&store, service_opts);
  service.Attach(&server);
  if (!server.Start().ok()) std::abort();

  std::vector<size_t> acked(connections, 0);
  std::vector<size_t> errors(connections, 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c]() {
      HttpClient client;
      if (!client.Connect("127.0.0.1", server.port()).ok()) {
        ++errors[c];
        return;
      }
      const std::string csv = f.InsertDeltaCsv(static_cast<int>(c));
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      WallTimer window;
      while (window.ElapsedSeconds() < duration_s) {
        auto resp = client.RoundTrip("POST", "/update", csv, "text/csv");
        if (resp.ok() && resp->status == 200) {
          ++acked[c];
        } else {
          ++errors[c];
          if (!resp.ok()) return;
        }
      }
    });
  }
  WallTimer wall;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  WriteResult r;
  r.config = config;
  r.connections = connections;
  r.seconds = elapsed;
  for (size_t c = 0; c < connections; ++c) {
    r.acked += acked[c];
    r.errors += errors[c];
  }
  r.qps = elapsed > 0.0 ? static_cast<double>(r.acked) / elapsed : 0.0;
  r.wal_syncs = store.wal_stats().syncs;
  r.wal_records = store.wal_stats().records_appended;
  server.Stop();
  RemoveTree(wal_dir);
  return r;
}

struct ReplayResult {
  size_t records = 0;
  uint64_t log_bytes = 0;
  double seconds = 0.0;
  double records_per_sec = 0.0;
};

// Recovery cost: write a K-record log, then time a cold store replaying
// it on top of the base snapshot.
ReplayResult RunReplay(const WalBenchFixture& f, size_t records,
                       const std::string& dir) {
  RemoveTree(dir);
  ::mkdir(dir.c_str(), 0755);
  const std::string snap_path = dir + "/store.bin";
  const std::string wal_dir = dir + "/wal";
  {
    Engine engine(&f.model);
    BidStore store(&engine, f.SOpts());
    if (!store.Commit(f.BaseRelation()).ok()) std::abort();
    if (!store.SaveSnapshot(snap_path).ok()) std::abort();
    if (!store.OpenWal(wal_dir, WalSyncMode::kNone).ok()) std::abort();
    RelationDelta d;
    d.inserts.push_back(T({0, 1, 2, 0}));
    for (size_t i = 0; i < records; ++i) {
      if (!store.ApplyDelta(d).ok()) std::abort();
    }
  }
  ReplayResult r;
  r.records = records;
  {
    Engine engine(&f.model);
    BidStore store(&engine, StoreOptions());
    if (!store.Restore(snap_path).ok()) std::abort();
    WallTimer timer;
    auto rec = store.OpenWal(wal_dir, WalSyncMode::kNone);
    r.seconds = timer.ElapsedSeconds();
    if (!rec.ok() || rec->replayed_records != records) {
      std::fprintf(stderr, "replay failed: %s\n",
                   rec.ok() ? "record count mismatch"
                            : rec.status().ToString().c_str());
      std::abort();
    }
    r.log_bytes = store.wal_stats().live_bytes;
  }
  r.records_per_sec =
      r.seconds > 0.0 ? static_cast<double>(records) / r.seconds : 0.0;
  RemoveTree(dir);
  return r;
}

int Run(int argc, char** argv) {
  bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("bench_wal",
                "durable write path: acked-updates/sec vs WAL sync mode "
                "and concurrency, and replay time vs log length",
                flags.full);

  WalBenchFixture f = WalBenchFixture::Make();
  const std::string scratch =
      "/tmp/mrsl_bench_wal_" + std::to_string(static_cast<long>(::getpid()));
  ::mkdir(scratch.c_str(), 0755);

  struct Config {
    std::string name;
    WalSyncMode mode;
    size_t max_update_batch;
  };
  std::vector<Config> configs = {
      {"per-update", WalSyncMode::kAlways, 1},
      {"group", WalSyncMode::kGroup, 32},
  };
  if (flags.full) configs.push_back({"none", WalSyncMode::kNone, 32});

  std::vector<size_t> counts = {1, 4, 8};
  if (flags.full) counts.push_back(16);
  const size_t total_updates = flags.full ? 4000 : 1500;

  std::printf("service level (%zu updates each; gate source)\n",
              total_updates);
  std::printf("%-12s %-12s %-10s %-10s %-10s %-10s %-8s\n", "config",
              "writers", "acked", "qps", "syncs", "records", "errors");
  std::vector<WriteResult> service_results;
  double per_update_at_gate = 0.0;
  double group_at_gate = 0.0;
  for (const Config& config : configs) {
    for (size_t writers : counts) {
      WriteResult r = RunServiceStorm(f, config.name, config.mode,
                                      config.max_update_batch, writers,
                                      total_updates, scratch + "/wal");
      std::printf("%-12s %-12zu %-10zu %-10.0f %-10llu %-10llu %-8zu\n",
                  r.config.c_str(), r.connections, r.acked, r.qps,
                  static_cast<unsigned long long>(r.wal_syncs),
                  static_cast<unsigned long long>(r.wal_records), r.errors);
      if (writers == kGateConnections) {
        if (config.name == "per-update") per_update_at_gate = r.qps;
        if (config.name == "group") group_at_gate = r.qps;
      }
      service_results.push_back(r);
    }
  }

  const double duration_s = flags.full ? 3.0 : 1.2;
  std::printf("\nHTTP level (closed loop, %.1fs windows)\n", duration_s);
  std::printf("%-12s %-12s %-10s %-10s %-10s %-10s %-8s\n", "config",
              "connections", "acked", "qps", "syncs", "records", "errors");
  std::vector<WriteResult> results;
  for (const Config& config : configs) {
    for (size_t connections : counts) {
      WriteResult r = RunWriteStorm(f, config.name, config.mode,
                                    config.max_update_batch, connections,
                                    duration_s, scratch + "/wal");
      std::printf("%-12s %-12zu %-10zu %-10.0f %-10llu %-10llu %-8zu\n",
                  r.config.c_str(), r.connections, r.acked, r.qps,
                  static_cast<unsigned long long>(r.wal_syncs),
                  static_cast<unsigned long long>(r.wal_records), r.errors);
      results.push_back(r);
    }
  }

  std::printf("\n%-10s %-12s %-12s %-12s\n", "records", "log_bytes",
              "replay_s", "records/s");
  std::vector<size_t> lengths = {250, 500, 1000};
  if (flags.full) {
    lengths.push_back(2000);
    lengths.push_back(4000);
  }
  std::vector<ReplayResult> replays;
  for (size_t records : lengths) {
    ReplayResult r = RunReplay(f, records, scratch + "/replay");
    std::printf("%-10zu %-12llu %-12.3f %-12.0f\n", r.records,
                static_cast<unsigned long long>(r.log_bytes), r.seconds,
                r.records_per_sec);
    replays.push_back(r);
  }
  RemoveTree(scratch);

  const double ratio =
      per_update_at_gate > 0.0 ? group_at_gate / per_update_at_gate : 0.0;
  const bool gate_pass = ratio >= kGateRatio;
  std::printf("\ngate: group %.0f vs per-update %.0f acked/sec at %zu "
              "writers (service level) — %.1fx (need >= %.1fx): %s\n",
              group_at_gate, per_update_at_gate, kGateConnections, ratio,
              kGateRatio, gate_pass ? "PASS" : "FAIL");

  if (!flags.json_path.empty()) {
    bench::JsonObject json;
    json.SetStr("bench", "wal").SetBool("full", flags.full);
    json.SetNum("gate_ratio", kGateRatio);
    json.SetInt("gate_connections", kGateConnections);
    json.SetNum("per_update_qps_at_gate", per_update_at_gate);
    json.SetNum("group_qps_at_gate", group_at_gate);
    json.SetNum("ratio", ratio);
    json.SetBool("gate_pass", gate_pass);
    std::vector<bench::JsonObject> service_rows;
    for (const WriteResult& r : service_results) {
      bench::JsonObject row;
      row.SetStr("config", r.config)
          .SetInt("writers", r.connections)
          .SetInt("acked", r.acked)
          .SetNum("seconds", r.seconds)
          .SetNum("qps", r.qps)
          .SetInt("wal_syncs", r.wal_syncs)
          .SetInt("wal_records", r.wal_records)
          .SetInt("errors", r.errors);
      service_rows.push_back(row);
    }
    json.SetArray("service_rows", service_rows);
    std::vector<bench::JsonObject> rows;
    for (const WriteResult& r : results) {
      bench::JsonObject row;
      row.SetStr("config", r.config)
          .SetInt("connections", r.connections)
          .SetInt("acked", r.acked)
          .SetNum("seconds", r.seconds)
          .SetNum("qps", r.qps)
          .SetInt("wal_syncs", r.wal_syncs)
          .SetInt("wal_records", r.wal_records)
          .SetInt("errors", r.errors);
      rows.push_back(row);
    }
    json.SetArray("http_rows", rows);
    std::vector<bench::JsonObject> replay_rows;
    for (const ReplayResult& r : replays) {
      bench::JsonObject row;
      row.SetInt("records", r.records)
          .SetInt("log_bytes", r.log_bytes)
          .SetNum("seconds", r.seconds)
          .SetNum("records_per_sec", r.records_per_sec);
      replay_rows.push_back(row);
    }
    json.SetArray("replay_rows", replay_rows);
    if (!json.WriteTo(flags.json_path)) return 1;
  }
  return gate_pass ? 0 : 1;
}

}  // namespace
}  // namespace mrsl

int main(int argc, char** argv) { return mrsl::Run(argc, argv); }
