// Extensional query-plan benchmark: plans/sec for each operator shape
// as the BID database grows — measured for BOTH evaluators (the
// columnar production path vs. the row-at-a-time reference) — plus
// oracle-vs-extensional error as the sampled world count rises (the
// differential-testing cost/accuracy curve). `--json <path>` emits the
// machine-readable form tracked as a perf trajectory across PRs
// (BENCH_query_baseline.json; scripts/check_query_regression.py gates
// Release CI on it).
//
// Exits non-zero when the join-heavy workload's columnar speedup falls
// below --min-join-speedup (default 3x) — the vectorized executor's
// acceptance gate — or when no point of the safe-plan compiler's
// bounds-width-vs-time frontier beats the fixed dissociation's mean
// width at equal or lower latency (the compiler's acceptance gate).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pdb/compiler.h"
#include "pdb/plan.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace mrsl;

Schema MakeSchema() {
  auto s = Schema::Create({Attribute("a", {"a0", "a1"}),
                           Attribute("b", {"b0", "b1", "b2"}),
                           Attribute("c", {"c0", "c1"})});
  if (!s.ok()) std::abort();
  return std::move(s).value();
}

// A random BID database of `blocks` blocks, 1-3 alternatives each,
// roughly half keeping some absent mass.
ProbDatabase MakeDb(const Schema& schema, size_t blocks, Rng* rng) {
  ProbDatabase db(schema);
  for (size_t i = 0; i < blocks; ++i) {
    Block block;
    size_t alts = 1 + rng->UniformInt(3);
    double remaining =
        rng->Bernoulli(0.5) ? 1.0 : 0.4 + 0.5 * rng->NextDouble();
    for (size_t j = 0; j < alts; ++j) {
      Tuple t(schema.num_attrs());
      for (AttrId a = 0; a < schema.num_attrs(); ++a) {
        t.set_value(a, static_cast<ValueId>(
                           rng->UniformInt(schema.attr(a).cardinality())));
      }
      double p = j + 1 == alts ? remaining
                               : remaining * (0.2 + 0.6 * rng->NextDouble());
      remaining -= p;
      block.alternatives.push_back({std::move(t), p});
    }
    if (!db.AddBlock(std::move(block)).ok()) std::abort();
  }
  return db;
}

struct PlanShape {
  std::string name;
  PlanPtr plan;
};

std::vector<PlanShape> MakeShapes() {
  Predicate pa = Predicate::Eq(0, 0);                       // a=a0
  Predicate pb = Predicate::Eq(0, 0).And(Predicate::Ne(1, 2));
  std::vector<PlanShape> shapes;
  shapes.push_back({"select", SelectPlan(pb, ScanPlan(0))});
  shapes.push_back({"project", ProjectPlan({1}, SelectPlan(pa, ScanPlan(0)))});
  shapes.push_back(
      {"join", ProjectPlan({1, 4}, JoinPlan(SelectPlan(pa, ScanPlan(0)),
                                            ScanPlan(1), 1, 1))});
  shapes.push_back(
      {"unsafe", ProjectPlan({2}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0))});
  return shapes;
}

// Evaluates `plan` `evals` times with one of the two evaluators and
// returns the wall seconds (also reporting the output row count).
// Exits the process on evaluation failure — benchmarks have no
// recovery story.
double TimeEvals(const PlanNode& plan,
                 const std::vector<const ProbDatabase*>& sources, size_t evals,
                 bool columnar, size_t* rows_out) {
  WallTimer timer;
  for (size_t e = 0; e < evals; ++e) {
    auto result = columnar ? EvaluatePlan(plan, sources)
                           : EvaluatePlanRowwise(plan, sources);
    if (!result.ok()) {
      std::fprintf(stderr, "eval failed: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    *rows_out = result->rows.size();
  }
  return timer.ElapsedSeconds();
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = mrsl::bench::BenchFlags::Parse(argc, argv);
  mrsl::bench::Banner("Query",
                      "extensional plans/sec and oracle error vs. worlds",
                      flags.full);

  Schema schema = MakeSchema();
  Rng rng(0xBEEFCAFE);

  // --- Part 1: plans/sec by operator shape and database size. ----------
  std::vector<size_t> sizes = flags.full
                                  ? std::vector<size_t>{500, 2000, 10000}
                                  : std::vector<size_t>{200, 1000, 4000};
  // Join shapes are quadratic in matching rows (the join attributes are
  // low-cardinality), so they run on capped inputs.
  const size_t join_cap = flags.full ? 500 : 300;

  TablePrinter table({"plan", "blocks", "rows out", "evals", "row plans/s",
                      "col plans/s", "speedup"});
  std::vector<mrsl::bench::JsonObject> perf_rows;
  for (size_t blocks : sizes) {
    ProbDatabase db1 = MakeDb(schema, blocks, &rng);
    ProbDatabase db2 = MakeDb(schema, blocks, &rng);
    std::vector<const ProbDatabase*> sources = {&db1, &db2};
    for (const PlanShape& shape : MakeShapes()) {
      bool is_join = shape.name == "join" || shape.name == "unsafe";
      if (is_join && blocks > join_cap) continue;
      // Calibrate evals so each measurement runs a comparable while.
      size_t evals = is_join ? 5 : (blocks <= 1000 ? 40 : 10);
      size_t rows_out = 0;
      // Warm both paths once (page in the data, size the allocators),
      // then time the row reference and the columnar production path on
      // the same inputs.
      size_t warm_rows = 0;
      TimeEvals(*shape.plan, sources, 1, false, &warm_rows);
      TimeEvals(*shape.plan, sources, 1, true, &warm_rows);
      double row_secs = TimeEvals(*shape.plan, sources, evals, false,
                                  &rows_out);
      double col_secs = TimeEvals(*shape.plan, sources, evals, true,
                                  &rows_out);
      double row_pps = static_cast<double>(evals) / row_secs;
      double col_pps = static_cast<double>(evals) / col_secs;
      double speedup = col_pps / row_pps;
      table.AddRow({shape.name, std::to_string(blocks),
                    std::to_string(rows_out), std::to_string(evals),
                    FormatDouble(row_pps, 1), FormatDouble(col_pps, 1),
                    FormatDouble(speedup, 2) + "x"});
      perf_rows.push_back(mrsl::bench::JsonObject()
                              .SetStr("plan", shape.name)
                              .SetInt("blocks", blocks)
                              .SetInt("rows_out", rows_out)
                              .SetNum("wall_seconds", col_secs)
                              .SetNum("plans_per_sec", col_pps)
                              .SetNum("plans_per_sec_row", row_pps)
                              .SetNum("speedup", speedup));
    }
  }
  std::printf("%s", table.ToString().c_str());

  // --- Part 1b: the join-heavy acceptance gate. -------------------------
  // A join->project pipeline is where row-at-a-time evaluation pays the
  // most (per-output Tuple construction, tuple hashing, PlanRow moves),
  // so this is the workload the vectorized executor is gated on: the
  // columnar path must sustain >= kMinJoinSpeedup the reference's
  // plans/sec. Best-of-3 on each side to shed scheduler noise.
  const double kMinJoinSpeedup = 3.0;
  {
    ProbDatabase db1 = MakeDb(schema, join_cap, &rng);
    ProbDatabase db2 = MakeDb(schema, join_cap, &rng);
    std::vector<const ProbDatabase*> gate_sources = {&db1, &db2};
    PlanPtr gate_plan =
        ProjectPlan({1, 4}, JoinPlan(SelectPlan(Predicate::Eq(0, 0),
                                                ScanPlan(0)),
                                     ScanPlan(1), 1, 1));
    const size_t gate_evals = 5;
    size_t rows_out = 0;
    double row_best = 1e300, col_best = 1e300;
    for (int rep = 0; rep < 3; ++rep) {
      row_best = std::min(
          row_best,
          TimeEvals(*gate_plan, gate_sources, gate_evals, false, &rows_out));
      col_best = std::min(
          col_best,
          TimeEvals(*gate_plan, gate_sources, gate_evals, true, &rows_out));
    }
    double row_pps = static_cast<double>(gate_evals) / row_best;
    double col_pps = static_cast<double>(gate_evals) / col_best;
    double speedup = col_pps / row_pps;
    bool pass = speedup >= kMinJoinSpeedup;
    std::printf(
        "\njoin-heavy gate: %zu blocks, row %s plans/s, columnar %s "
        "plans/s, speedup %sx (need >= %sx) -> %s\n",
        join_cap, FormatDouble(row_pps, 1).c_str(),
        FormatDouble(col_pps, 1).c_str(), FormatDouble(speedup, 2).c_str(),
        FormatDouble(kMinJoinSpeedup, 1).c_str(), pass ? "PASS" : "FAIL");
    if (!flags.json_path.empty()) {
      // Written together with the rest of the JSON below; stash the
      // fields in a row object now.
      perf_rows.push_back(mrsl::bench::JsonObject()
                              .SetStr("plan", "join_heavy_gate")
                              .SetInt("blocks", join_cap)
                              .SetInt("rows_out", rows_out)
                              .SetNum("wall_seconds", col_best)
                              .SetNum("plans_per_sec", col_pps)
                              .SetNum("plans_per_sec_row", row_pps)
                              .SetNum("speedup", speedup));
    }
    if (!pass) {
      std::fprintf(stderr,
                   "FAIL: columnar speedup %.2fx below the %.1fx gate on "
                   "the join-heavy workload\n",
                   speedup, kMinJoinSpeedup);
      return 1;
    }
  }

  // --- Part 2b: bounds-width-vs-time frontier (safe-plan compiler). -----
  // The realistic shape for a derived MRSL database: MOSTLY safe answer
  // groups (one block per group value — the self-join is exact there)
  // plus a few correlated families whose blocks share a group value and
  // force dissociation bounds. The compiler answers the safe bulk in
  // phase 1 at production-evaluator speed (and, for this root-project
  // plan, skips the separate duplicate-elimination pass the baseline
  // pays) and spends the world budget only on the families' restricted
  // sub-database. The acceptance gate: some frontier point must achieve
  // a strictly smaller mean bounds width than the fixed dissociation of
  // EvaluatePlan + DistinctMarginals at equal or lower latency.
  std::vector<mrsl::bench::JsonObject> frontier_rows;
  {
    const size_t kSafeGroups = flags.full ? 3072 : 2048;
    const size_t kFamilies = 2;
    const size_t kFamilyBlocks = 3;
    const size_t kGroups = kSafeGroups + kFamilies;
    const size_t kBlocks = kSafeGroups + kFamilies * kFamilyBlocks;
    std::vector<std::string> glabels;
    glabels.reserve(kGroups);
    for (size_t i = 0; i < kGroups; ++i) {
      glabels.push_back("g" + std::to_string(i));
    }
    auto fschema_or = Schema::Create(
        {Attribute("g", glabels), Attribute("w", {"w0", "w1"})});
    if (!fschema_or.ok()) return 1;
    Schema fschema = std::move(fschema_or).value();

    // Every block keeps its group value across alternatives (the family
    // key) and ALWAYS keeps absent mass, so group probabilities stay
    // strictly inside (0, 1) and the families' widths are visible.
    Rng frng(0xF00DFACE);
    ProbDatabase fdb(fschema);
    auto add_block = [&](ValueId g) {
      Block block;
      size_t alts = 1 + frng.UniformInt(3);
      double remaining = 0.35 + 0.55 * frng.NextDouble();
      for (size_t j = 0; j < alts; ++j) {
        Tuple t(fschema.num_attrs());
        t.set_value(0, g);
        t.set_value(1, static_cast<ValueId>(frng.UniformInt(2)));
        double p = j + 1 == alts
                       ? remaining
                       : remaining * (0.2 + 0.6 * frng.NextDouble());
        remaining -= p;
        block.alternatives.push_back({std::move(t), p});
      }
      if (!fdb.AddBlock(std::move(block)).ok()) std::abort();
    };
    for (size_t i = 0; i < kSafeGroups; ++i) {
      add_block(static_cast<ValueId>(i));
    }
    for (size_t f = 0; f < kFamilies; ++f) {
      for (size_t b = 0; b < kFamilyBlocks; ++b) {
        add_block(static_cast<ValueId>(kSafeGroups + f));
      }
    }
    std::vector<const ProbDatabase*> fsources = {&fdb};
    PlanPtr fplan =
        ProjectPlan({0}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0));

    // Baseline: the production relation path (columnar EvaluatePlan +
    // DistinctMarginals), best-of-3 like the join gate.
    const size_t kEvals = 10;
    double base_best = 1e300;
    double base_width = 0.0;
    for (int rep = 0; rep < 3; ++rep) {
      WallTimer timer;
      for (size_t e = 0; e < kEvals; ++e) {
        auto res = EvaluatePlan(*fplan, fsources);
        if (!res.ok()) {
          std::fprintf(stderr, "eval failed: %s\n",
                       res.status().ToString().c_str());
          return 1;
        }
        auto margs = DistinctMarginals(*res, fsources);
        if (rep == 0 && e == 0) {
          double sum = 0.0;
          for (const DistinctMarginal& m : margs) sum += m.prob.hi - m.prob.lo;
          base_width = margs.empty() ? 0.0 : sum / margs.size();
        }
      }
      base_best = std::min(base_best, timer.ElapsedSeconds() /
                                          static_cast<double>(kEvals));
    }

    TablePrinter frontier_table(
        {"worlds budget", "wall (ms)", "mean width", "vs baseline"});
    frontier_table.AddRow({"(EvaluatePlan)", FormatDouble(base_best * 1e3, 3),
                           FormatDouble(base_width, 5), "baseline"});
    bool gate_pass = false;
    double best_compiled_width = base_width;
    const std::vector<size_t> budgets = {0, 16, 256, 4096};
    for (size_t budget : budgets) {
      CompileOptions copts;
      copts.max_worlds_per_group = budget;
      // A relation-kind query, like the store's: only the marginals are
      // materialized, the same scoping BidStore::QueryOn applies.
      copts.want_exists = false;
      copts.want_count = false;
      double best = 1e300;
      double width = 0.0;
      for (int rep = 0; rep < 3; ++rep) {
        WallTimer timer;
        for (size_t e = 0; e < kEvals; ++e) {
          auto cq = CompileQuery(*fplan, fsources, copts);
          if (!cq.ok()) {
            std::fprintf(stderr, "compile failed: %s\n",
                         cq.status().ToString().c_str());
            return 1;
          }
          width = cq->stats.mean_width_final;
        }
        best = std::min(best,
                        timer.ElapsedSeconds() / static_cast<double>(kEvals));
      }
      bool beats = width < base_width - 1e-12 && best <= base_best;
      if (beats) best_compiled_width = std::min(best_compiled_width, width);
      gate_pass = gate_pass || beats;
      frontier_table.AddRow(
          {std::to_string(budget), FormatDouble(best * 1e3, 3),
           FormatDouble(width, 5),
           beats ? "tighter, not slower"
                 : (width < base_width - 1e-12 ? "tighter, slower"
                                               : "no tighter")});
      frontier_rows.push_back(mrsl::bench::JsonObject()
                                  .SetInt("worlds_budget", budget)
                                  .SetNum("wall_seconds", best)
                                  .SetNum("mean_width", width)
                                  .SetNum("baseline_width", base_width)
                                  .SetNum("baseline_wall_seconds", base_best)
                                  .SetBool("beats_baseline", beats));
    }
    std::printf("\nbounds-width frontier (%zu blocks, %zu groups):\n%s",
                kBlocks, kGroups, frontier_table.ToString().c_str());
    std::printf(
        "bounds gate: baseline width %s -> best compiled width %s at equal "
        "or lower latency -> %s\n",
        FormatDouble(base_width, 5).c_str(),
        FormatDouble(best_compiled_width, 5).c_str(),
        gate_pass ? "PASS" : "FAIL");
    if (!flags.json_path.empty()) {
      perf_rows.push_back(mrsl::bench::JsonObject()
                              .SetStr("plan", "bounds_frontier_gate")
                              .SetInt("blocks", kBlocks)
                              .SetNum("wall_seconds", base_best)
                              .SetNum("baseline_width", base_width)
                              .SetNum("best_compiled_width",
                                      best_compiled_width));
    }
    if (!gate_pass) {
      std::fprintf(stderr,
                   "FAIL: no compiled frontier point beat the fixed "
                   "dissociation width %.5f at <= %.3f ms\n",
                   base_width, base_best * 1e3);
      return 1;
    }
  }

  // --- Part 2: oracle error vs. sampled world count. --------------------
  // Exact (safe) plan values are ground truth; the differential oracle's
  // max marginal error should shrink like 1/sqrt(worlds). A small
  // database keeps the true marginals strictly inside (0, 1), so the
  // error is actually visible (hundreds of blocks saturate them at 1).
  Rng probe_rng(123);
  ProbDatabase db1 = MakeDb(schema, 12, &probe_rng);
  ProbDatabase db2 = MakeDb(schema, 12, &probe_rng);
  std::vector<const ProbDatabase*> sources = {&db1, &db2};
  PlanPtr probe = ProjectPlan(
      {1}, SelectPlan(Predicate::Eq(0, 0).And(Predicate::Ne(1, 2)),
                      ScanPlan(0)));
  auto exact = EvaluatePlan(*probe, sources);
  auto exact_exists = EvaluateExists(*probe, sources);
  auto exact_count = EvaluateCount(*probe, sources);
  if (!exact.ok() || !exact_exists.ok() || !exact_count.ok()) return 1;
  auto exact_marginals = DistinctMarginals(*exact, sources);

  std::vector<size_t> world_counts =
      flags.full ? std::vector<size_t>{1000, 5000, 20000, 80000}
                 : std::vector<size_t>{1000, 5000, 20000};
  TablePrinter oracle_table({"worlds", "wall (s)", "max marginal err",
                             "count err", "exists err"});
  std::vector<mrsl::bench::JsonObject> oracle_rows;
  for (size_t worlds : world_counts) {
    OracleOptions oo;
    oo.trials = worlds;
    WallTimer timer;
    auto oracle = MonteCarloPlanOracle(*probe, sources, oo);
    double secs = timer.ElapsedSeconds();
    if (!oracle.ok()) {
      std::fprintf(stderr, "oracle failed: %s\n",
                   oracle.status().ToString().c_str());
      return 1;
    }
    double max_err = 0.0;
    for (const DistinctMarginal& m : exact_marginals) {
      double freq = 0.0;
      for (const ProbTuple& pt : oracle->marginals) {
        if (pt.tuple == m.tuple) {
          freq = pt.prob;
          break;
        }
      }
      max_err = std::max(max_err, std::abs(freq - m.prob.lo));
    }
    double count_err =
        std::abs(oracle->expected_count - exact_count->expected.lo);
    double exists_err = std::abs(oracle->exists - exact_exists->prob.lo);
    oracle_table.AddRow({std::to_string(worlds), FormatDouble(secs, 3),
                         FormatDouble(max_err, 5),
                         FormatDouble(count_err, 5),
                         FormatDouble(exists_err, 5)});
    oracle_rows.push_back(mrsl::bench::JsonObject()
                              .SetInt("worlds", worlds)
                              .SetNum("wall_seconds", secs)
                              .SetNum("max_marginal_err", max_err)
                              .SetNum("count_err", count_err)
                              .SetNum("exists_err", exists_err));
  }
  std::printf("%s", oracle_table.ToString().c_str());

  if (!flags.json_path.empty()) {
    mrsl::bench::JsonObject()
        .SetStr("bench", "bench_query")
        .SetBool("full", flags.full)
        .SetArray("rows", perf_rows)
        .SetArray("frontier_rows", frontier_rows)
        .SetArray("oracle_rows", oracle_rows)
        .WriteTo(flags.json_path);
  }

  std::printf(
      "\nFINDING: the columnar batch executor answers select/project/join\n"
      "plans in microseconds-to-milliseconds over thousands of blocks —\n"
      "several times the row-at-a-time reference's throughput on\n"
      "join-heavy pipelines, and orders of magnitude cheaper than the\n"
      "sampled-world oracle it is differentially tested against, whose\n"
      "error decays ~1/sqrt(N).\n");
  return 0;
}
