// Extensional query-plan benchmark: plans/sec for each operator shape
// as the BID database grows, plus oracle-vs-extensional error as the
// sampled world count rises (the differential-testing cost/accuracy
// curve). `--json <path>` emits the machine-readable form tracked as a
// perf trajectory across PRs.

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "pdb/plan.h"
#include "util/rng.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace mrsl;

Schema MakeSchema() {
  auto s = Schema::Create({Attribute("a", {"a0", "a1"}),
                           Attribute("b", {"b0", "b1", "b2"}),
                           Attribute("c", {"c0", "c1"})});
  if (!s.ok()) std::abort();
  return std::move(s).value();
}

// A random BID database of `blocks` blocks, 1-3 alternatives each,
// roughly half keeping some absent mass.
ProbDatabase MakeDb(const Schema& schema, size_t blocks, Rng* rng) {
  ProbDatabase db(schema);
  for (size_t i = 0; i < blocks; ++i) {
    Block block;
    size_t alts = 1 + rng->UniformInt(3);
    double remaining =
        rng->Bernoulli(0.5) ? 1.0 : 0.4 + 0.5 * rng->NextDouble();
    for (size_t j = 0; j < alts; ++j) {
      Tuple t(schema.num_attrs());
      for (AttrId a = 0; a < schema.num_attrs(); ++a) {
        t.set_value(a, static_cast<ValueId>(
                           rng->UniformInt(schema.attr(a).cardinality())));
      }
      double p = j + 1 == alts ? remaining
                               : remaining * (0.2 + 0.6 * rng->NextDouble());
      remaining -= p;
      block.alternatives.push_back({std::move(t), p});
    }
    if (!db.AddBlock(std::move(block)).ok()) std::abort();
  }
  return db;
}

struct PlanShape {
  std::string name;
  PlanPtr plan;
};

std::vector<PlanShape> MakeShapes() {
  Predicate pa = Predicate::Eq(0, 0);                       // a=a0
  Predicate pb = Predicate::Eq(0, 0).And(Predicate::Ne(1, 2));
  std::vector<PlanShape> shapes;
  shapes.push_back({"select", SelectPlan(pb, ScanPlan(0))});
  shapes.push_back({"project", ProjectPlan({1}, SelectPlan(pa, ScanPlan(0)))});
  shapes.push_back(
      {"join", ProjectPlan({1, 4}, JoinPlan(SelectPlan(pa, ScanPlan(0)),
                                            ScanPlan(1), 1, 1))});
  shapes.push_back(
      {"unsafe", ProjectPlan({2}, JoinPlan(ScanPlan(0), ScanPlan(0), 0, 0))});
  return shapes;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = mrsl::bench::BenchFlags::Parse(argc, argv);
  mrsl::bench::Banner("Query",
                      "extensional plans/sec and oracle error vs. worlds",
                      flags.full);

  Schema schema = MakeSchema();
  Rng rng(0xBEEFCAFE);

  // --- Part 1: plans/sec by operator shape and database size. ----------
  std::vector<size_t> sizes = flags.full
                                  ? std::vector<size_t>{500, 2000, 10000}
                                  : std::vector<size_t>{200, 1000, 4000};
  // Join shapes are quadratic in matching rows (the join attributes are
  // low-cardinality), so they run on capped inputs.
  const size_t join_cap = flags.full ? 500 : 300;

  TablePrinter table({"plan", "blocks", "rows out", "evals", "wall (s)",
                      "plans/s"});
  std::vector<mrsl::bench::JsonObject> perf_rows;
  for (size_t blocks : sizes) {
    ProbDatabase db1 = MakeDb(schema, blocks, &rng);
    ProbDatabase db2 = MakeDb(schema, blocks, &rng);
    std::vector<const ProbDatabase*> sources = {&db1, &db2};
    for (const PlanShape& shape : MakeShapes()) {
      bool is_join = shape.name == "join" || shape.name == "unsafe";
      if (is_join && blocks > join_cap) continue;
      // Calibrate evals so each measurement runs a comparable while.
      size_t evals = is_join ? 5 : (blocks <= 1000 ? 40 : 10);
      size_t rows_out = 0;
      WallTimer timer;
      for (size_t e = 0; e < evals; ++e) {
        auto result = EvaluatePlan(*shape.plan, sources);
        if (!result.ok()) {
          std::fprintf(stderr, "eval failed: %s\n",
                       result.status().ToString().c_str());
          return 1;
        }
        rows_out = result->rows.size();
      }
      double secs = timer.ElapsedSeconds();
      double plans_per_sec = static_cast<double>(evals) / secs;
      table.AddRow({shape.name, std::to_string(blocks),
                    std::to_string(rows_out), std::to_string(evals),
                    FormatDouble(secs, 3), FormatDouble(plans_per_sec, 1)});
      perf_rows.push_back(mrsl::bench::JsonObject()
                              .SetStr("plan", shape.name)
                              .SetInt("blocks", blocks)
                              .SetInt("rows_out", rows_out)
                              .SetNum("wall_seconds", secs)
                              .SetNum("plans_per_sec", plans_per_sec));
    }
  }
  std::printf("%s", table.ToString().c_str());

  // --- Part 2: oracle error vs. sampled world count. --------------------
  // Exact (safe) plan values are ground truth; the differential oracle's
  // max marginal error should shrink like 1/sqrt(worlds). A small
  // database keeps the true marginals strictly inside (0, 1), so the
  // error is actually visible (hundreds of blocks saturate them at 1).
  Rng probe_rng(123);
  ProbDatabase db1 = MakeDb(schema, 12, &probe_rng);
  ProbDatabase db2 = MakeDb(schema, 12, &probe_rng);
  std::vector<const ProbDatabase*> sources = {&db1, &db2};
  PlanPtr probe = ProjectPlan(
      {1}, SelectPlan(Predicate::Eq(0, 0).And(Predicate::Ne(1, 2)),
                      ScanPlan(0)));
  auto exact = EvaluatePlan(*probe, sources);
  auto exact_exists = EvaluateExists(*probe, sources);
  auto exact_count = EvaluateCount(*probe, sources);
  if (!exact.ok() || !exact_exists.ok() || !exact_count.ok()) return 1;
  auto exact_marginals = DistinctMarginals(*exact, sources);

  std::vector<size_t> world_counts =
      flags.full ? std::vector<size_t>{1000, 5000, 20000, 80000}
                 : std::vector<size_t>{1000, 5000, 20000};
  TablePrinter oracle_table({"worlds", "wall (s)", "max marginal err",
                             "count err", "exists err"});
  std::vector<mrsl::bench::JsonObject> oracle_rows;
  for (size_t worlds : world_counts) {
    OracleOptions oo;
    oo.trials = worlds;
    WallTimer timer;
    auto oracle = MonteCarloPlanOracle(*probe, sources, oo);
    double secs = timer.ElapsedSeconds();
    if (!oracle.ok()) {
      std::fprintf(stderr, "oracle failed: %s\n",
                   oracle.status().ToString().c_str());
      return 1;
    }
    double max_err = 0.0;
    for (const DistinctMarginal& m : exact_marginals) {
      double freq = 0.0;
      for (const ProbTuple& pt : oracle->marginals) {
        if (pt.tuple == m.tuple) {
          freq = pt.prob;
          break;
        }
      }
      max_err = std::max(max_err, std::abs(freq - m.prob.lo));
    }
    double count_err =
        std::abs(oracle->expected_count - exact_count->expected.lo);
    double exists_err = std::abs(oracle->exists - exact_exists->prob.lo);
    oracle_table.AddRow({std::to_string(worlds), FormatDouble(secs, 3),
                         FormatDouble(max_err, 5),
                         FormatDouble(count_err, 5),
                         FormatDouble(exists_err, 5)});
    oracle_rows.push_back(mrsl::bench::JsonObject()
                              .SetInt("worlds", worlds)
                              .SetNum("wall_seconds", secs)
                              .SetNum("max_marginal_err", max_err)
                              .SetNum("count_err", count_err)
                              .SetNum("exists_err", exists_err));
  }
  std::printf("%s", oracle_table.ToString().c_str());

  if (!flags.json_path.empty()) {
    mrsl::bench::JsonObject()
        .SetStr("bench", "bench_query")
        .SetBool("full", flags.full)
        .SetArray("rows", perf_rows)
        .SetArray("oracle_rows", oracle_rows)
        .WriteTo(flags.json_path);
  }

  std::printf(
      "\nFINDING: extensional evaluation answers select/project/join\n"
      "plans in microseconds-to-milliseconds over thousands of blocks —\n"
      "orders of magnitude cheaper than the sampled-world oracle it is\n"
      "differentially tested against, whose error decays ~1/sqrt(N).\n");
  return 0;
}
