// Serving-style throughput benchmark for the persistent engine: one
// long-lived Engine per thread configuration replays a mixed request
// stream — single-hole batches, multi-hole Gibbs batches, and lazy
// query-driven derivation — and reports tuples/sec vs. thread count.
// Unlike the per-figure drivers, this measures the steady state the
// ROADMAP targets: warm per-thread contexts, no per-request thread or
// cache construction, and bit-identical output for every pool width.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bn/bayes_net.h"
#include "core/engine.h"
#include "core/learner.h"
#include "expfw/networks.h"
#include "pdb/lazy.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

struct BatchRequest {
  mrsl::SamplingMode mode;
  std::vector<mrsl::Tuple> tuples;
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Throughput",
                "persistent-engine serving throughput vs. thread count",
                flags.full);

  // Same regime as bench_parallel: a higher-cardinality network keeps
  // evidence combinations distinct, so the workload fragments into many
  // independent DAG components — the unit of engine parallelism.
  auto spec = NetworkByName("BN15");
  Rng rng(0x7B31);
  BayesNet bn = BayesNet::RandomInstance(spec->topology, &rng);
  Relation train = bn.SampleRelation(flags.full ? 50000 : 15000, &rng);
  LearnOptions lo;
  lo.support_threshold = 0.005;
  auto model = LearnModel(train, lo);
  if (!model.ok()) {
    std::fprintf(stderr, "learn failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  WorkloadOptions opts;
  opts.gibbs.samples = flags.full ? 500 : 250;
  opts.gibbs.burn_in = 50;

  // The replayed request stream: alternating single-hole and multi-hole
  // batches (tuple-DAG mode, the production default).
  const size_t batch_size = flags.full ? 250 : 100;
  const size_t num_single_batches = flags.full ? 6 : 4;
  const size_t num_multi_batches = flags.full ? 4 : 3;
  Rng wrng(0x7B32);
  std::vector<BatchRequest> requests;
  size_t batch_tuples = 0;
  for (size_t b = 0; b < num_single_batches + num_multi_batches; ++b) {
    BatchRequest req;
    req.mode = SamplingMode::kTupleDag;
    const bool multi = b >= num_single_batches;
    while (req.tuples.size() < batch_size) {
      Tuple t = bn.ForwardSample(&wrng);
      size_t holes = multi ? 2 + wrng.UniformInt(2) : 1;
      for (size_t j = 0; j < holes; ++j) {
        t.set_value(static_cast<AttrId>(wrng.UniformInt(6)),
                    kMissingValue);
      }
      req.tuples.push_back(std::move(t));
    }
    batch_tuples += req.tuples.size();
    requests.push_back(std::move(req));
  }

  // The lazy, query-driven share of the stream: an incomplete relation
  // plus point predicates whose uncertain rows get batch-materialized.
  Relation lazy_rel(train.schema());
  Rng lrng(0x7B33);
  for (size_t i = 0; i < (flags.full ? 1200u : 400u); ++i) {
    Tuple t = bn.ForwardSample(&lrng);
    if (lrng.Bernoulli(0.5)) {
      t.set_value(static_cast<AttrId>(lrng.UniformInt(6)), kMissingValue);
    }
    if (!lazy_rel.Append(std::move(t)).ok()) return 1;
  }
  std::vector<Predicate> lazy_preds;
  for (AttrId a = 0; a < 3; ++a) {
    lazy_preds.push_back(Predicate::Eq(a, 0));
  }

  TablePrinter table({"threads", "wall (s)", "tuples/s", "speedup",
                      "identical output"});
  std::vector<bench::JsonObject> json_rows;
  std::vector<std::vector<double>> reference;  // flattened batch probs
  std::vector<double> reference_lazy;          // lazy row probabilities
  double base_secs = 0.0;
  double speedup_at_8 = 0.0;

  for (size_t threads : {1u, 2u, 4u, 8u}) {
    EngineOptions eo;
    eo.num_threads = threads;
    Engine engine(&*model, eo);

    std::vector<std::vector<double>> outputs;
    std::vector<double> lazy_outputs;
    size_t lazy_tuples = 0;
    WallTimer timer;

    // Phase 1+2: batched single-hole / multi-hole inference.
    for (const BatchRequest& req : requests) {
      auto dists = engine.InferBatch(req.tuples, req.mode, opts);
      if (!dists.ok()) {
        std::fprintf(stderr, "batch failed: %s\n",
                     dists.status().ToString().c_str());
        return 1;
      }
      std::vector<double> flat;
      for (const JointDist& d : *dists) {
        flat.insert(flat.end(), d.probs().begin(), d.probs().end());
      }
      outputs.push_back(std::move(flat));
    }

    // Phase 3: lazy query-driven derivation, batch-materialized.
    {
      LazyDeriver lazy(&engine, &lazy_rel, opts.gibbs);
      for (const Predicate& pred : lazy_preds) {
        auto n = lazy.MaterializeUncertain(pred, batch_size);
        if (!n.ok()) {
          std::fprintf(stderr, "lazy failed: %s\n",
                       n.status().ToString().c_str());
          return 1;
        }
        auto count = lazy.ExpectedCount(pred);
        if (!count.ok()) return 1;
        lazy_outputs.push_back(*count);
      }
      lazy_tuples = lazy.materialized();
    }

    const double secs = timer.ElapsedSeconds();
    const size_t total_tuples = batch_tuples + lazy_tuples;
    const double tuples_per_sec =
        static_cast<double>(total_tuples) / secs;

    bool identical = true;
    if (threads == 1) {
      reference = outputs;
      reference_lazy = lazy_outputs;
      base_secs = secs;
    } else {
      identical = outputs == reference && lazy_outputs == reference_lazy;
    }
    const double speedup = base_secs / secs;
    if (threads == 8) speedup_at_8 = speedup;

    table.AddRow({std::to_string(threads), FormatDouble(secs, 3),
                  FormatDouble(tuples_per_sec, 1),
                  FormatDouble(speedup, 2),
                  threads == 1 ? "(reference)"
                               : (identical ? "yes" : "NO")});
    json_rows.push_back(
        bench::JsonObject()
            .SetInt("threads", threads)
            .SetNum("wall_seconds", secs)
            .SetNum("tuples_per_sec", tuples_per_sec)
            .SetNum("speedup", speedup)
            .SetBool("identical_output", identical)
            .SetInt("tuples", total_tuples)
            .SetInt("contexts", engine.context_pool_size())
            .SetInt("cache_hits", engine.stats().cache_hits)
            .SetInt("cpd_evaluations", engine.stats().cpd_evaluations));
  }
  std::printf("%s", table.ToString().c_str());

  if (!flags.json_path.empty()) {
    bench::JsonObject()
        .SetStr("bench", "bench_throughput")
        .SetBool("full", flags.full)
        .SetStr("network", "BN15")
        .SetInt("batch_tuples", batch_tuples)
        .SetInt("batch_size", batch_size)
        .SetInt("samples", opts.gibbs.samples)
        .SetInt("burn_in", opts.gibbs.burn_in)
        .SetInt("lazy_rows", lazy_rel.num_rows())
        .SetNum("speedup_at_8_threads", speedup_at_8)
        .SetArray("rows", json_rows)
        .WriteTo(flags.json_path);
  }

  std::printf(
      "\nFINDING: one persistent Engine serves a mixed stream (single-\n"
      "hole, multi-hole Gibbs, lazy query-driven) with warm per-thread\n"
      "contexts and bit-identical output at every pool width; throughput\n"
      "scales with threads up to the component granularity and the\n"
      "machine's core count.\n");
  return 0;
}
