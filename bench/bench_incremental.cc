// Versioned-store benchmark: incremental re-derivation speedup and
// snapshot-serving throughput under concurrent commits.
//
// Part 1 derives a full epoch from scratch, then applies small deltas
// (a handful of updated/inserted rows) and reports ApplyDelta wall time
// against the from-scratch derivation — the store should re-infer only
// the dirtied subsumption components, giving order-of-magnitude
// speedups on point updates (the acceptance bar is >= 5x). Part 2 spins
// reader threads over store.snapshot() while the writer commits a
// stream of deltas, verifying every observed epoch is internally
// consistent (blocks == rows, monotone epochs) and reporting
// snapshot-reads/sec. `--json <path>` emits the machine-readable form
// tracked as a perf trajectory across PRs.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <string>
#include <thread>
#include <unordered_set>
#include <vector>

#include "bench_common.h"
#include "bn/bayes_net.h"
#include "core/delta.h"
#include "core/learner.h"
#include "expfw/networks.h"
#include "pdb/store.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

using namespace mrsl;

// A delta updating `num_updates` incomplete rows (re-punching one hole
// each) and inserting `num_inserts` fresh incomplete tuples.
RelationDelta MakeDelta(const Relation& base, BayesNet* bn, Rng* rng,
                        size_t num_updates, size_t num_inserts) {
  RelationDelta delta;
  std::vector<uint32_t> incomplete = base.IncompleteRowIndices();
  std::unordered_set<uint32_t> used;  // ApplyDelta rejects a row changed twice
  for (size_t i = 0; i < num_updates && used.size() < incomplete.size();
       ++i) {
    RelationDelta::Update u;
    do {
      u.row = incomplete[rng->UniformInt(incomplete.size())];
    } while (!used.insert(u.row).second);
    Tuple t = bn->ForwardSample(rng);
    t.set_value(static_cast<AttrId>(rng->UniformInt(t.num_attrs())),
                kMissingValue);
    u.tuple = std::move(t);
    delta.updates.push_back(std::move(u));
  }
  for (size_t i = 0; i < num_inserts; ++i) {
    Tuple t = bn->ForwardSample(rng);
    t.set_value(static_cast<AttrId>(rng->UniformInt(t.num_attrs())),
                kMissingValue);
    delta.inserts.push_back(std::move(t));
  }
  return delta;
}

}  // namespace

int main(int argc, char** argv) {
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Incremental",
                "store re-derivation speedup and reader throughput",
                flags.full);

  // Same regime as bench_throughput: a higher-cardinality network keeps
  // evidence combinations distinct, fragmenting the workload into many
  // independent components — the store's unit of incremental work.
  auto spec = NetworkByName("BN15");
  Rng rng(0x57A7E);
  BayesNet bn = BayesNet::RandomInstance(spec->topology, &rng);
  Relation train = bn.SampleRelation(flags.full ? 40000 : 12000, &rng);
  LearnOptions lo;
  lo.support_threshold = 0.005;
  auto model = LearnModel(train, lo);
  if (!model.ok()) {
    std::fprintf(stderr, "learn failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }

  // The served base relation: mostly complete rows, a slice with 1-2
  // missing cells.
  Relation base(train.schema());
  Rng brng(0x57A7F);
  const size_t base_rows = flags.full ? 2000 : 600;
  for (size_t i = 0; i < base_rows; ++i) {
    Tuple t = bn.ForwardSample(&brng);
    if (brng.Bernoulli(0.35)) {
      size_t holes = 1 + (brng.Bernoulli(0.3) ? 1 : 0);
      for (size_t j = 0; j < holes; ++j) {
        t.set_value(static_cast<AttrId>(brng.UniformInt(t.num_attrs())),
                    kMissingValue);
      }
    }
    if (!base.Append(std::move(t)).ok()) return 1;
  }

  StoreOptions so;
  so.workload.gibbs.samples = flags.full ? 800 : 600;
  so.workload.gibbs.burn_in = 40;
  Engine engine(&*model);
  BidStore store(&engine, so);

  // --- Part 1: full derivation vs incremental deltas. -------------------
  auto full = store.Commit(base);
  if (!full.ok()) {
    std::fprintf(stderr, "commit failed: %s\n",
                 full.status().ToString().c_str());
    return 1;
  }
  const double full_secs = full->wall_seconds;

  TablePrinter table({"commit", "tuples re-inferred", "blocks reused",
                      "wall (s)", "speedup vs full"});
  table.AddRow({"full derive",
                std::to_string(full->tuples_reinferred) + "/" +
                    std::to_string(full->tuples_total),
                std::to_string(full->blocks_reused) + "/" +
                    std::to_string(full->blocks_total),
                FormatDouble(full_secs, 3), "1.0"});

  Rng drng(0xD317A);
  const size_t num_deltas = flags.full ? 6 : 4;
  std::vector<bench::JsonObject> delta_rows;
  double worst_speedup = 1e300;
  for (size_t d = 0; d < num_deltas; ++d) {
    RelationDelta delta = MakeDelta(store.snapshot()->base(), &bn, &drng,
                                    /*num_updates=*/2, /*num_inserts=*/1);
    auto applied = store.ApplyDelta(delta);
    if (!applied.ok()) {
      std::fprintf(stderr, "delta failed: %s\n",
                   applied.status().ToString().c_str());
      return 1;
    }
    const double speedup = full_secs / applied->wall_seconds;
    worst_speedup = std::min(worst_speedup, speedup);
    table.AddRow({"delta " + std::to_string(d + 1),
                  std::to_string(applied->tuples_reinferred) + "/" +
                      std::to_string(applied->tuples_total),
                  std::to_string(applied->blocks_reused) + "/" +
                      std::to_string(applied->blocks_total),
                  FormatDouble(applied->wall_seconds, 4),
                  FormatDouble(speedup, 1)});
    delta_rows.push_back(bench::JsonObject()
                             .SetInt("epoch", applied->epoch)
                             .SetInt("tuples_reinferred",
                                     applied->tuples_reinferred)
                             .SetInt("tuples_total", applied->tuples_total)
                             .SetInt("blocks_reused", applied->blocks_reused)
                             .SetInt("blocks_total", applied->blocks_total)
                             .SetNum("wall_seconds", applied->wall_seconds)
                             .SetNum("speedup_vs_full", speedup));
  }
  std::printf("%s", table.ToString().c_str());

  // --- Part 2: reader throughput under concurrent commits. --------------
  const size_t num_readers = 4;
  const size_t commits = flags.full ? 12 : 6;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> reads{0};
  std::atomic<bool> consistent{true};
  std::vector<std::thread> readers;
  for (size_t i = 0; i < num_readers; ++i) {
    readers.emplace_back([&]() {
      uint64_t last_epoch = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        SnapshotPtr snap = store.snapshot();
        // Epochs only move forward, and a snapshot's database always
        // matches its own base relation — the single-consistent-epoch
        // contract.
        if (snap->epoch() < last_epoch ||
            snap->database().num_blocks() != snap->base().num_rows()) {
          consistent.store(false);
        }
        last_epoch = snap->epoch();
        reads.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  WallTimer serve_timer;
  Rng crng(0xC0117);
  for (size_t c = 0; c < commits; ++c) {
    RelationDelta delta = MakeDelta(store.snapshot()->base(), &bn, &crng,
                                    /*num_updates=*/2, /*num_inserts=*/1);
    auto applied = store.ApplyDelta(delta);
    if (!applied.ok()) {
      std::fprintf(stderr, "serving delta failed: %s\n",
                   applied.status().ToString().c_str());
      stop.store(true);
      for (auto& t : readers) t.join();
      return 1;
    }
  }
  const double serve_secs = serve_timer.ElapsedSeconds();
  stop.store(true);
  for (auto& t : readers) t.join();
  const double reads_per_sec = static_cast<double>(reads.load()) / serve_secs;

  std::printf(
      "\nserving: %zu commits in %.3fs with %zu readers — %.0f "
      "snapshot-reads/s, consistent=%s, final epoch %llu\n",
      commits, serve_secs, num_readers, reads_per_sec,
      consistent.load() ? "yes" : "NO",
      static_cast<unsigned long long>(store.epoch()));

  if (!flags.json_path.empty()) {
    bench::JsonObject()
        .SetStr("bench", "bench_incremental")
        .SetBool("full", flags.full)
        .SetInt("base_rows", base_rows)
        .SetInt("samples", so.workload.gibbs.samples)
        .SetNum("full_derive_seconds", full_secs)
        .SetInt("full_tuples", full->tuples_total)
        .SetNum("worst_delta_speedup", worst_speedup)
        .SetInt("serving_commits", commits)
        .SetInt("serving_readers", num_readers)
        .SetNum("snapshot_reads_per_sec", reads_per_sec)
        .SetBool("readers_consistent", consistent.load())
        .SetArray("deltas", delta_rows)
        .WriteTo(flags.json_path);
  }

  std::printf(
      "\nFINDING: point deltas re-infer only their dirtied subsumption\n"
      "components (worst observed speedup %.0fx vs. a from-scratch\n"
      "derivation) while lock-free readers keep pinning consistent\n"
      "epochs at memory speed throughout every commit.\n",
      worst_speedup);
  return worst_speedup >= 5.0 ? 0 : 1;
}
