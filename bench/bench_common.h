// Shared scaffolding for the experiment drivers in bench/: flag parsing
// (--full switches from the fast default scale to the paper's scale),
// section headers, and a tiny least-squares helper used to report slopes.

#ifndef MRSL_BENCH_BENCH_COMMON_H_
#define MRSL_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace mrsl {
namespace bench {

/// Command-line options common to all experiment drivers.
struct BenchFlags {
  bool full = false;  // paper-scale parameters instead of the quick ones

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--full") {
        flags.full = true;
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--full]\n"
            "  --full  run at the paper's scale (slower)\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return flags;
  }
};

/// Prints an experiment banner.
inline void Banner(const std::string& experiment_id,
                   const std::string& description, bool full) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), description.c_str());
  std::printf("scale: %s\n", full ? "FULL (paper parameters)"
                                  : "QUICK (scaled down; use --full)");
  std::printf("================================================================\n");
}

/// Least-squares slope of y over x (used to report "time is linear in X").
inline double Slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  if (x.size() < 2) return 0.0;
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const double n = static_cast<double>(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  double denom = n * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (n * sxy - sx * sy) / denom;
}

/// Pearson correlation of y with x — used to verify "linear" claims.
inline double Correlation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() < 2) return 0.0;
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  double cov = n * sxy - sx * sy;
  double vx = n * sxx - sx * sx;
  double vy = n * syy - sy * sy;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace bench
}  // namespace mrsl

#endif  // MRSL_BENCH_BENCH_COMMON_H_
