// Shared scaffolding for the experiment drivers in bench/: flag parsing
// (--full switches from the fast default scale to the paper's scale,
// --json <path> adds machine-readable output), section headers, a tiny
// JSON writer for perf-trajectory files, and least-squares helpers used
// to report slopes.

#ifndef MRSL_BENCH_BENCH_COMMON_H_
#define MRSL_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>
#include <vector>

namespace mrsl {
namespace bench {

/// Command-line options common to all experiment drivers.
struct BenchFlags {
  bool full = false;       // paper-scale parameters instead of quick ones
  std::string json_path;   // when set, also write machine-readable JSON

  static BenchFlags Parse(int argc, char** argv) {
    BenchFlags flags;
    for (int i = 1; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg == "--full") {
        flags.full = true;
      } else if (arg == "--json" && i + 1 < argc) {
        flags.json_path = argv[++i];
      } else if (arg == "--help" || arg == "-h") {
        std::printf(
            "usage: %s [--full] [--json out.json]\n"
            "  --full        run at the paper's scale (slower)\n"
            "  --json PATH   write machine-readable results to PATH\n",
            argv[0]);
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return flags;
  }
};

/// Minimal insertion-ordered JSON object writer — just enough for the
/// flat { scalars..., "rows": [ {...}, ... ] } shape the benchmark
/// drivers emit (tracked as BENCH_*.json perf trajectories across PRs).
class JsonObject {
 public:
  JsonObject& SetStr(const std::string& key, const std::string& value) {
    std::string quoted = "\"";
    for (char c : value) {
      if (c == '"' || c == '\\') quoted += '\\';
      quoted += c;
    }
    quoted += '"';
    items_.emplace_back(key, std::move(quoted));
    return *this;
  }
  JsonObject& SetInt(const std::string& key, uint64_t value) {
    items_.emplace_back(key, std::to_string(value));
    return *this;
  }
  JsonObject& SetNum(const std::string& key, double value) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.12g", value);
    items_.emplace_back(key, buf);
    return *this;
  }
  JsonObject& SetBool(const std::string& key, bool value) {
    items_.emplace_back(key, value ? "true" : "false");
    return *this;
  }
  JsonObject& SetArray(const std::string& key,
                       const std::vector<JsonObject>& rows) {
    std::string rendered = "[";
    for (size_t i = 0; i < rows.size(); ++i) {
      if (i > 0) rendered += ",";
      rendered += rows[i].ToString();
    }
    rendered += "]";
    items_.emplace_back(key, std::move(rendered));
    return *this;
  }

  std::string ToString() const {
    std::string out = "{";
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i > 0) out += ",";
      out += "\"" + items_[i].first + "\":" + items_[i].second;
    }
    out += "}";
    return out;
  }

  /// Writes the object (plus trailing newline) to `path`; returns false
  /// and prints to stderr on I/O failure.
  bool WriteTo(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return false;
    }
    std::string body = ToString();
    std::fwrite(body.data(), 1, body.size(), f);
    std::fputc('\n', f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
    return true;
  }

 private:
  std::vector<std::pair<std::string, std::string>> items_;
};

/// Prints an experiment banner.
inline void Banner(const std::string& experiment_id,
                   const std::string& description, bool full) {
  std::printf("\n================================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), description.c_str());
  std::printf("scale: %s\n", full ? "FULL (paper parameters)"
                                  : "QUICK (scaled down; use --full)");
  std::printf("================================================================\n");
}

/// Least-squares slope of y over x (used to report "time is linear in X").
inline double Slope(const std::vector<double>& x,
                    const std::vector<double>& y) {
  if (x.size() < 2) return 0.0;
  double sx = 0.0;
  double sy = 0.0;
  double sxx = 0.0;
  double sxy = 0.0;
  const double n = static_cast<double>(x.size());
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  double denom = n * sxx - sx * sx;
  return denom == 0.0 ? 0.0 : (n * sxy - sx * sy) / denom;
}

/// Pearson correlation of y with x — used to verify "linear" claims.
inline double Correlation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  if (x.size() < 2) return 0.0;
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  double cov = n * sxy - sx * sy;
  double vx = n * sxx - sx * sx;
  double vy = n * syy - sy * sy;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace bench
}  // namespace mrsl

#endif  // MRSL_BENCH_BENCH_COMMON_H_
