// Parallel workload scaling: RunWorkloadParallel partitions the tuple
// DAG into independent components and fans them out across threads with
// bit-reproducible results. This bench measures the speedup and verifies
// thread-count invariance of the outputs.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "bn/bayes_net.h"
#include "core/learner.h"
#include "core/workload_parallel.h"
#include "expfw/networks.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Parallel", "tuple-DAG inference across worker threads",
                flags.full);

  // A higher-cardinality network keeps evidence combinations distinct,
  // so the subsumption DAG fragments into many independent components —
  // the regime where component-parallelism pays off.
  auto spec = NetworkByName("BN15");
  Rng rng(0x9A11);
  BayesNet bn = BayesNet::RandomInstance(spec->topology, &rng);
  Relation train = bn.SampleRelation(flags.full ? 50000 : 15000, &rng);
  LearnOptions lo;
  lo.support_threshold = 0.005;
  auto model = LearnModel(train, lo);
  if (!model.ok()) return 1;

  const size_t workload_size = flags.full ? 3000 : 800;
  std::vector<Tuple> workload;
  Rng wrng(0x9A12);
  while (workload.size() < workload_size) {
    Tuple t = bn.ForwardSample(&wrng);
    size_t k = 1 + wrng.UniformInt(2);
    for (size_t j = 0; j < k; ++j) {
      t.set_value(static_cast<AttrId>(wrng.UniformInt(6)), kMissingValue);
    }
    workload.push_back(std::move(t));
  }

  WorkloadOptions opts;
  opts.gibbs.samples = flags.full ? 500 : 300;
  opts.gibbs.burn_in = 50;
  opts.gibbs.enable_cpd_cache = false;  // keep per-sweep work visible

  TablePrinter table({"threads", "wall (s)", "speedup", "identical output"});
  std::vector<bench::JsonObject> json_rows;
  std::vector<JointDist> reference;
  double base_secs = 0.0;
  for (size_t threads : {1u, 2u, 4u, 8u, 16u}) {
    WorkloadStats stats;
    auto dists = RunWorkloadParallel(*model, workload,
                                     SamplingMode::kTupleDag, opts,
                                     threads, &stats);
    if (!dists.ok()) {
      std::fprintf(stderr, "failed: %s\n",
                   dists.status().ToString().c_str());
      return 1;
    }
    bool identical = true;
    if (threads == 1) {
      reference = *dists;
      base_secs = stats.wall_seconds;
    } else {
      for (size_t i = 0; i < reference.size(); ++i) {
        if (reference[i].probs() != (*dists)[i].probs()) {
          identical = false;
          break;
        }
      }
    }
    table.AddRow({std::to_string(threads),
                  FormatDouble(stats.wall_seconds, 3),
                  FormatDouble(base_secs / stats.wall_seconds, 2),
                  threads == 1 ? "(reference)" : (identical ? "yes" : "NO")});
    json_rows.push_back(bench::JsonObject()
                            .SetInt("threads", threads)
                            .SetNum("wall_seconds", stats.wall_seconds)
                            .SetNum("tuples_per_sec",
                                    static_cast<double>(workload.size()) /
                                        stats.wall_seconds)
                            .SetNum("speedup",
                                    base_secs / stats.wall_seconds)
                            .SetBool("identical_output", identical));
  }
  std::printf("%s", table.ToString().c_str());

  if (!flags.json_path.empty()) {
    bench::JsonObject()
        .SetStr("bench", "bench_parallel")
        .SetBool("full", flags.full)
        .SetStr("mode", "tuple-DAG")
        .SetInt("workload_size", workload.size())
        .SetInt("samples", opts.gibbs.samples)
        .SetInt("burn_in", opts.gibbs.burn_in)
        .SetArray("rows", json_rows)
        .WriteTo(flags.json_path);
  }
  std::printf(
      "\nFINDING: DAG components parallelize with deterministic,\n"
      "thread-count-independent output (per-component seeds); speedup is\n"
      "bounded by the largest component and thread count.\n");
  return 0;
}
