// Fig 4: building the MRSL model, averaged over 10 networks.
//   (a) model building time vs training set size (support = 0.02)
//   (b) model building time vs support (training size = 10,000)
//   (c) model size vs support (training size = 10,000)
//
// Paper shapes: (a) linear growth in training size; (b)/(c) super-linear
// decrease as support grows, model size dropping sharply.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "expfw/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

// The 10 networks with 4-6 attributes / cardinality 2-8 / dom size
// 16..262,144 described in Sec VI-B.
const char* kNetworks[] = {"BN1", "BN8", "BN9",  "BN10", "BN11",
                           "BN12", "BN13", "BN14", "BN15", "BN16"};

}  // namespace

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Fig 4", "building the MRSL model (time and size)",
                flags.full);

  std::vector<size_t> train_sizes =
      flags.full ? std::vector<size_t>{1000, 2000, 5000, 10000, 20000,
                                       50000, 100000}
                 : std::vector<size_t>{1000, 2000, 5000, 10000, 20000};
  std::vector<double> supports = {0.001, 0.01, 0.02, 0.05, 0.1};
  RepetitionOptions reps;
  reps.num_instances = flags.full ? 3 : 2;
  reps.num_splits = flags.full ? 3 : 1;

  auto run = [&](const char* net, size_t train, double support) {
    LearnExperimentConfig config;
    config.network = net;
    config.train_size = train;
    config.support = support;
    config.reps = reps;
    auto r = RunLearnExperiment(config);
    if (!r.ok()) {
      std::fprintf(stderr, "experiment failed: %s\n",
                   r.status().ToString().c_str());
      std::exit(1);
    }
    return *r;
  };

  // ---- (a) build time vs training size, support = 0.02 ----
  std::printf("\nFig 4(a): model building time vs training set size "
              "(support = 0.02)\n");
  TablePrinter ta({"training size", "avg build time (s)", "avg model size"});
  std::vector<double> xs;
  std::vector<double> ys;
  for (size_t train : train_sizes) {
    double time_sum = 0.0;
    double size_sum = 0.0;
    for (const char* net : kNetworks) {
      auto r = run(net, train, 0.02);
      time_sum += r.build_seconds;
      size_sum += r.model_size;
    }
    double avg_time = time_sum / 10.0;
    ta.AddRow({std::to_string(train), FormatDouble(avg_time, 4),
               FormatDouble(size_sum / 10.0, 0)});
    xs.push_back(static_cast<double>(train));
    ys.push_back(avg_time);
  }
  std::printf("%s", ta.ToString().c_str());
  std::printf("linearity (Pearson r of time vs size): %.3f  (paper: linear)\n",
              bench::Correlation(xs, ys));

  // ---- (b)+(c) vs support, training size = 10,000 ----
  std::printf("\nFig 4(b)/(c): build time and model size vs support "
              "(training size = 10,000)\n");
  TablePrinter tb({"support", "avg build time (s)", "avg model size"});
  std::vector<double> sizes_by_support;
  for (double support : supports) {
    double time_sum = 0.0;
    double size_sum = 0.0;
    for (const char* net : kNetworks) {
      auto r = run(net, 10000, support);
      time_sum += r.build_seconds;
      size_sum += r.model_size;
    }
    tb.AddRow({FormatDouble(support, 3), FormatDouble(time_sum / 10.0, 4),
               FormatDouble(size_sum / 10.0, 0)});
    sizes_by_support.push_back(size_sum / 10.0);
  }
  std::printf("%s", tb.ToString().c_str());

  bool monotone_decreasing = true;
  for (size_t i = 1; i < sizes_by_support.size(); ++i) {
    if (sizes_by_support[i] > sizes_by_support[i - 1] + 1e-9) {
      monotone_decreasing = false;
    }
  }
  double drop = sizes_by_support.back() > 0
                    ? sizes_by_support.front() / sizes_by_support.back()
                    : 0.0;
  std::printf(
      "\nFINDING: build time grows ~linearly with training size; model\n"
      "size decreases %s with support (x%.0f from 0.001 to 0.1 — the\n"
      "paper's 'drops particularly sharply').\n",
      monotone_decreasing ? "monotonically" : "NON-monotonically", drop);
  return 0;
}
