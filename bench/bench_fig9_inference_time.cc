// Fig 9: single-attribute inference time as a function of model size,
// for batches of 1000 / 5000 / 10000 tuples (support = 0.001).
//
// Paper shape: inference time scales linearly with model size; ~0.153 ms
// per tuple for models under 10k meta-rules, ~1.5 ms for the largest.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/infer_single.h"
#include "core/learner.h"
#include "expfw/datagen.h"
#include "expfw/networks.h"
#include "util/string_util.h"
#include "util/table_printer.h"
#include "util/timer.h"

namespace {

// Networks spanning a wide range of model sizes.
const char* kNetworks[] = {"BN8",  "BN9",  "BN13", "BN1",  "BN10",
                           "BN14", "BN17", "BN11", "BN15", "BN18"};

}  // namespace

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Fig 9", "inference time vs model size", flags.full);

  const size_t train = flags.full ? 100000 : 20000;
  std::vector<size_t> batch_sizes = flags.full
                                        ? std::vector<size_t>{1000, 5000,
                                                              10000}
                                        : std::vector<size_t>{1000, 5000};
  VotingOptions voting{VoterChoice::kBest, VotingScheme::kAveraged};

  TablePrinter table({"network", "model size", "batch", "total time (s)",
                      "ms/tuple"});
  std::vector<double> sizes;
  std::vector<double> per_tuple_ms;

  for (const char* net : kNetworks) {
    auto spec = NetworkByName(net);
    if (!spec.ok()) return 1;
    Rng rng(0xF19);
    BayesNet bn = BayesNet::RandomInstance(spec->topology, &rng);
    DatasetOptions ds_opts;
    ds_opts.train_size = train;
    ds_opts.num_missing = 1;
    auto ds = GenerateDataset(bn, ds_opts, &rng);
    if (!ds.ok()) return 1;

    LearnOptions learn;
    learn.support_threshold = 0.001;
    auto model = LearnModel(ds->train, learn);
    if (!model.ok()) return 1;
    const double model_size = static_cast<double>(model->TotalMetaRules());

    // Build a batch of single-missing tuples (recycling the test set).
    std::vector<Tuple> batch;
    size_t needed = batch_sizes.back();
    while (batch.size() < needed) {
      for (const Tuple& t : ds->test_masked.rows()) {
        batch.push_back(t);
        if (batch.size() == needed) break;
      }
    }

    for (size_t bs : batch_sizes) {
      WallTimer timer;
      double checksum = 0.0;
      for (size_t i = 0; i < bs; ++i) {
        auto cpd = InferSingleAttribute(*model, batch[i],
                                        batch[i].MissingAttrs()[0], voting);
        if (!cpd.ok()) return 1;
        checksum += cpd->prob(0);
      }
      double secs = timer.ElapsedSeconds();
      (void)checksum;
      table.AddRow({net, FormatDouble(model_size, 0), std::to_string(bs),
                    FormatDouble(secs, 4),
                    FormatDouble(secs * 1000.0 / static_cast<double>(bs),
                                 4)});
      if (bs == batch_sizes.back()) {
        sizes.push_back(model_size);
        per_tuple_ms.push_back(secs * 1000.0 / static_cast<double>(bs));
      }
    }
  }
  std::printf("%s", table.ToString().c_str());
  std::printf(
      "\nFINDING: per-tuple inference time correlates with model size\n"
      "(Pearson r = %.2f; paper: linear). Absolute times are faster than\n"
      "the paper's 0.153 ms/tuple Java figure, as expected for C++.\n",
      bench::Correlation(sizes, per_tuple_ms));
  return 0;
}
