// Closed-loop load driver for the serving subsystem: N keep-alive
// connections hammer POST /query with a cached single-relation plan
// against an in-process server, and the driver reports QPS and p50/p99
// latency per connection count.
//
// Exit code doubles as a perf gate (like bench_incremental's 5x rule):
// cached single-relation plans must clear >= 10k queries/sec at 8
// connections, the ROADMAP's serving floor. --json writes the usual
// machine-readable trajectory file.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bn/bayes_net.h"
#include "core/learner.h"
#include "pdb/store.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "util/timer.h"

namespace mrsl {
namespace {

constexpr double kGateQps = 10000.0;
constexpr size_t kGateConnections = 8;

Tuple T(std::vector<int> vals) {
  Tuple t(vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    t.set_value(static_cast<AttrId>(i), vals[i]);
  }
  return t;
}

struct LoadResult {
  size_t connections = 0;
  size_t requests = 0;
  size_t errors = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
};

double Percentile(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_ms->size() - 1) + 0.5);
  return (*sorted_ms)[std::min(idx, sorted_ms->size() - 1)];
}

LoadResult RunClosedLoop(uint16_t port, const std::string& plan,
                         size_t connections, double duration_s) {
  std::vector<std::vector<double>> latencies_ms(connections);
  std::vector<size_t> errors(connections, 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c]() {
      HttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        ++errors[c];
        return;
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      WallTimer window;
      while (window.ElapsedSeconds() < duration_s) {
        WallTimer one;
        auto resp = client.RoundTrip("POST", "/query", plan);
        if (resp.ok() && resp->status == 200) {
          latencies_ms[c].push_back(one.ElapsedMillis());
        } else {
          ++errors[c];
          if (!resp.ok()) return;  // connection died; stop this client
        }
      }
    });
  }
  WallTimer wall;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  LoadResult result;
  result.connections = connections;
  result.seconds = elapsed;
  std::vector<double> merged;
  for (size_t c = 0; c < connections; ++c) {
    result.errors += errors[c];
    merged.insert(merged.end(), latencies_ms[c].begin(),
                  latencies_ms[c].end());
  }
  result.requests = merged.size();
  result.qps = elapsed > 0.0 ? static_cast<double>(merged.size()) / elapsed
                             : 0.0;
  std::sort(merged.begin(), merged.end());
  result.p50_ms = Percentile(&merged, 0.50);
  result.p99_ms = Percentile(&merged, 0.99);
  return result;
}

int Run(int argc, char** argv) {
  bench::BenchFlags flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("bench_serve",
                "HTTP serving throughput: closed-loop QPS and latency vs. "
                "connection count on cached single-relation plans",
                flags.full);

  // One small derived store (the pdb_store_test fixture shape): the
  // cached-plan path under test touches the plan cache and the HTTP
  // stack, not inference.
  Rng rng(77);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 3), &rng);
  Relation train = bn.SampleRelation(6000, &rng);
  const Schema schema = train.schema();
  LearnOptions lo;
  lo.support_threshold = 0.002;
  auto model = LearnModel(train, lo);
  if (!model.ok()) {
    std::fprintf(stderr, "learn failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  Engine engine(&*model);
  StoreOptions so;
  so.workload.gibbs.samples = 120;
  so.workload.gibbs.burn_in = 20;
  so.workload.gibbs.seed = 4242;
  BidStore store(&engine, so);
  {
    Relation rel(schema);
    const std::vector<std::vector<int>> rows = {
        {0, 1, 2, 0}, {0, 0, -1, -1}, {0, 0, 1, -1},
        {1, 0, 2, 1}, {1, 1, -1, -1}, {2, 2, 0, -1},
        {2, 2, -1, 0}, {2, 2, -1, -1}, {2, 0, 1, 1}};
    for (const auto& r : rows) {
      if (!rel.Append(T(r)).ok()) {
        std::fprintf(stderr, "bad fixture row\n");
        return 1;
      }
    }
    auto committed = store.Commit(std::move(rel));
    if (!committed.ok()) {
      std::fprintf(stderr, "commit failed: %s\n",
                   committed.status().ToString().c_str());
      return 1;
    }
  }

  ServerOptions server_opts;
  server_opts.max_inflight = 256;
  HttpServer server(server_opts);
  StoreService service(&store);
  service.Attach(&server);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  const std::string plan = "count(select(" + schema.attr(0).name() + "=" +
                           schema.attr(0).label(0) + "; scan))";
  {
    // Warm the plan cache so the loop measures the cached path.
    HttpClient warm;
    auto ok = warm.Connect("127.0.0.1", server.port());
    auto resp = ok.ok() ? warm.RoundTrip("POST", "/query", plan)
                        : Result<HttpResponseMessage>(ok);
    if (!resp.ok() || resp->status != 200) {
      std::fprintf(stderr, "warm-up query failed\n");
      server.Stop();
      return 1;
    }
  }

  std::vector<size_t> counts = {1, 2, 4, 8};
  if (flags.full) {
    counts.push_back(16);
    counts.push_back(32);
  }
  const double duration_s = flags.full ? 4.0 : 1.5;

  std::printf("%-12s %-10s %-10s %-10s %-10s %-8s\n", "connections",
              "requests", "qps", "p50_ms", "p99_ms", "errors");
  std::vector<LoadResult> results;
  double qps_at_gate = 0.0;
  for (size_t connections : counts) {
    LoadResult r = RunClosedLoop(server.port(), plan, connections,
                                 duration_s);
    std::printf("%-12zu %-10zu %-10.0f %-10.3f %-10.3f %-8zu\n",
                r.connections, r.requests, r.qps, r.p50_ms, r.p99_ms,
                r.errors);
    if (connections == kGateConnections) qps_at_gate = r.qps;
    results.push_back(r);
  }
  server.Stop();

  const bool gate_pass = qps_at_gate >= kGateQps;
  std::printf("\ngate: %.0f qps at %zu connections (need >= %.0f): %s\n",
              qps_at_gate, kGateConnections, kGateQps,
              gate_pass ? "PASS" : "FAIL");

  if (!flags.json_path.empty()) {
    bench::JsonObject json;
    json.SetStr("bench", "serve").SetBool("full", flags.full);
    json.SetStr("plan", plan);
    json.SetNum("gate_qps", kGateQps);
    json.SetInt("gate_connections", kGateConnections);
    json.SetNum("qps_at_gate", qps_at_gate);
    json.SetBool("gate_pass", gate_pass);
    std::vector<bench::JsonObject> rows;
    for (const LoadResult& r : results) {
      bench::JsonObject row;
      row.SetInt("connections", r.connections)
          .SetInt("requests", r.requests)
          .SetNum("seconds", r.seconds)
          .SetNum("qps", r.qps)
          .SetNum("p50_ms", r.p50_ms)
          .SetNum("p99_ms", r.p99_ms)
          .SetInt("errors", r.errors);
      rows.push_back(row);
    }
    json.SetArray("rows", rows);
    if (!json.WriteTo(flags.json_path)) return 1;
  }
  return gate_pass ? 0 : 1;
}

}  // namespace
}  // namespace mrsl

int main(int argc, char** argv) { return mrsl::Run(argc, argv); }
