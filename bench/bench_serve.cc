// Closed-loop load driver for the serving subsystem: N keep-alive
// connections hammer POST /query with a cached single-relation plan
// against an in-process server, and the driver reports QPS and
// p50/p99/p99.9 latency per connection count, plus a per-endpoint
// latency breakdown (/query, /healthz, /metrics).
//
// Exit code doubles as a perf gate (like bench_incremental's 5x rule):
// cached single-relation plans must clear >= 10k queries/sec at 8
// connections (the ROADMAP's serving floor), AND sampled tracing at
// --trace-sample (default 0.01) must keep QPS within 5% of tracing-off,
// AND always-on statement tracking must keep QPS within 5% of a
// tracking-off baseline — each measured as the best of five interleaved
// windows, so a noisy window cannot flip the verdict. --json writes the
// usual machine-readable trajectory file.

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "bn/bayes_net.h"
#include "core/learner.h"
#include "pdb/store.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "util/timer.h"

namespace mrsl {
namespace {

constexpr double kGateQps = 10000.0;
constexpr size_t kGateConnections = 8;
// Tracing overhead gate: QPS with sampling on must be >= this fraction
// of QPS with tracing off (the ISSUE's "within 5%" acceptance bar).
constexpr double kTraceGateRatio = 0.95;
// Statement-tracking overhead gate: tracking is always-on in
// production, so the default path must stay within 5% of a
// tracking-off baseline of the same binary.
constexpr double kStatementsGateRatio = 0.95;

Tuple T(std::vector<int> vals) {
  Tuple t(vals.size());
  for (size_t i = 0; i < vals.size(); ++i) {
    t.set_value(static_cast<AttrId>(i), vals[i]);
  }
  return t;
}

struct LoadResult {
  size_t connections = 0;
  size_t requests = 0;
  size_t errors = 0;
  double seconds = 0.0;
  double qps = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  double p999_ms = 0.0;
};

double Percentile(std::vector<double>* sorted_ms, double q) {
  if (sorted_ms->empty()) return 0.0;
  const size_t idx = static_cast<size_t>(
      q * static_cast<double>(sorted_ms->size() - 1) + 0.5);
  return (*sorted_ms)[std::min(idx, sorted_ms->size() - 1)];
}

LoadResult RunClosedLoop(uint16_t port, const std::string& method,
                         const std::string& target, const std::string& body,
                         size_t connections, double duration_s) {
  std::vector<std::vector<double>> latencies_ms(connections);
  std::vector<size_t> errors(connections, 0);
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (size_t c = 0; c < connections; ++c) {
    threads.emplace_back([&, c]() {
      HttpClient client;
      if (!client.Connect("127.0.0.1", port).ok()) {
        ++errors[c];
        return;
      }
      while (!go.load(std::memory_order_acquire)) std::this_thread::yield();
      WallTimer window;
      while (window.ElapsedSeconds() < duration_s) {
        WallTimer one;
        auto resp = client.RoundTrip(method, target, body);
        if (resp.ok() && resp->status == 200) {
          latencies_ms[c].push_back(one.ElapsedMillis());
        } else {
          ++errors[c];
          if (!resp.ok()) return;  // connection died; stop this client
        }
      }
    });
  }
  WallTimer wall;
  go.store(true, std::memory_order_release);
  for (auto& t : threads) t.join();
  const double elapsed = wall.ElapsedSeconds();

  LoadResult result;
  result.connections = connections;
  result.seconds = elapsed;
  std::vector<double> merged;
  for (size_t c = 0; c < connections; ++c) {
    result.errors += errors[c];
    merged.insert(merged.end(), latencies_ms[c].begin(),
                  latencies_ms[c].end());
  }
  result.requests = merged.size();
  result.qps = elapsed > 0.0 ? static_cast<double>(merged.size()) / elapsed
                             : 0.0;
  std::sort(merged.begin(), merged.end());
  result.p50_ms = Percentile(&merged, 0.50);
  result.p99_ms = Percentile(&merged, 0.99);
  result.p999_ms = Percentile(&merged, 0.999);
  return result;
}

int Run(int argc, char** argv) {
  // bench_serve-specific flags come out of argv before the shared
  // parser sees it (BenchFlags rejects unknown flags).
  double trace_sample = 0.01;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--trace-sample" && i + 1 < argc) {
      trace_sample = std::atof(argv[++i]);
      if (trace_sample < 0.0 || trace_sample > 1.0) {
        std::fprintf(stderr, "--trace-sample must be in [0,1]\n");
        return 2;
      }
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  bench::BenchFlags flags = bench::BenchFlags::Parse(
      static_cast<int>(passthrough.size()), passthrough.data());
  bench::Banner("bench_serve",
                "HTTP serving throughput: closed-loop QPS and latency vs. "
                "connection count on cached single-relation plans",
                flags.full);

  // One small derived store (the pdb_store_test fixture shape): the
  // cached-plan path under test touches the plan cache and the HTTP
  // stack, not inference.
  Rng rng(77);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 3), &rng);
  Relation train = bn.SampleRelation(6000, &rng);
  const Schema schema = train.schema();
  LearnOptions lo;
  lo.support_threshold = 0.002;
  auto model = LearnModel(train, lo);
  if (!model.ok()) {
    std::fprintf(stderr, "learn failed: %s\n",
                 model.status().ToString().c_str());
    return 1;
  }
  Engine engine(&*model);
  StoreOptions so;
  so.workload.gibbs.samples = 120;
  so.workload.gibbs.burn_in = 20;
  so.workload.gibbs.seed = 4242;
  BidStore store(&engine, so);
  {
    Relation rel(schema);
    const std::vector<std::vector<int>> rows = {
        {0, 1, 2, 0}, {0, 0, -1, -1}, {0, 0, 1, -1},
        {1, 0, 2, 1}, {1, 1, -1, -1}, {2, 2, 0, -1},
        {2, 2, -1, 0}, {2, 2, -1, -1}, {2, 0, 1, 1}};
    for (const auto& r : rows) {
      if (!rel.Append(T(r)).ok()) {
        std::fprintf(stderr, "bad fixture row\n");
        return 1;
      }
    }
    auto committed = store.Commit(std::move(rel));
    if (!committed.ok()) {
      std::fprintf(stderr, "commit failed: %s\n",
                   committed.status().ToString().c_str());
      return 1;
    }
  }

  // Two servers over the same store: one with tracing off (the main
  // table and the overhead baseline), one sampling at --trace-sample.
  // Interleaved windows against the pair measure overhead without
  // restarting anything.
  ServerOptions server_opts;
  server_opts.max_inflight = 256;
  HttpServer server(server_opts);
  StoreService service(&store);
  service.Attach(&server);

  ServerOptions traced_opts;
  traced_opts.max_inflight = 256;
  traced_opts.trace_sample = trace_sample;
  HttpServer traced_server(traced_opts);
  StoreService traced_service(&store);
  traced_service.Attach(&traced_server);

  // A third pair with statement tracking off — the baseline the
  // always-on default is gated against.
  StoreServiceOptions nostats_opts;
  nostats_opts.track_statements = false;
  HttpServer nostats_server(server_opts);
  StoreService nostats_service(&store, nostats_opts);
  nostats_service.Attach(&nostats_server);

  Status started = server.Start();
  if (started.ok()) started = traced_server.Start();
  if (started.ok()) started = nostats_server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "server start failed: %s\n",
                 started.ToString().c_str());
    return 1;
  }

  const std::string plan = "count(select(" + schema.attr(0).name() + "=" +
                           schema.attr(0).label(0) + "; scan))";
  {
    // Warm the plan cache so the loop measures the cached path.
    HttpClient warm;
    auto ok = warm.Connect("127.0.0.1", server.port());
    auto resp = ok.ok() ? warm.RoundTrip("POST", "/query", plan)
                        : Result<HttpResponseMessage>(ok);
    if (!resp.ok() || resp->status != 200) {
      std::fprintf(stderr, "warm-up query failed\n");
      server.Stop();
      traced_server.Stop();
      return 1;
    }
  }

  std::vector<size_t> counts = {1, 2, 4, 8};
  if (flags.full) {
    counts.push_back(16);
    counts.push_back(32);
  }
  const double duration_s = flags.full ? 4.0 : 1.5;

  std::printf("%-12s %-10s %-10s %-10s %-10s %-10s %-8s\n", "connections",
              "requests", "qps", "p50_ms", "p99_ms", "p99.9_ms", "errors");
  std::vector<LoadResult> results;
  double qps_at_gate = 0.0;
  for (size_t connections : counts) {
    LoadResult r = RunClosedLoop(server.port(), "POST", "/query", plan,
                                 connections, duration_s);
    std::printf("%-12zu %-10zu %-10.0f %-10.3f %-10.3f %-10.3f %-8zu\n",
                r.connections, r.requests, r.qps, r.p50_ms, r.p99_ms,
                r.p999_ms, r.errors);
    if (connections == kGateConnections) qps_at_gate = r.qps;
    results.push_back(r);
  }

  // Per-endpoint latency breakdown: the hot query path against the two
  // read-only probes a deployment scrapes alongside it.
  struct Endpoint {
    const char* name;
    const char* method;
    const char* target;
    const std::string* body;
  };
  const std::string empty_body;
  const std::vector<Endpoint> endpoints = {
      {"POST /query", "POST", "/query", &plan},
      {"GET /healthz", "GET", "/healthz", &empty_body},
      {"GET /metrics", "GET", "/metrics", &empty_body},
  };
  const double endpoint_duration_s = flags.full ? 2.0 : 0.8;
  std::printf("\nper-endpoint breakdown (4 connections):\n");
  std::printf("%-14s %-10s %-10s %-10s %-10s %-8s\n", "endpoint", "qps",
              "p50_ms", "p99_ms", "p99.9_ms", "errors");
  std::vector<std::pair<std::string, LoadResult>> endpoint_results;
  for (const Endpoint& e : endpoints) {
    LoadResult r = RunClosedLoop(server.port(), e.method, e.target, *e.body,
                                 4, endpoint_duration_s);
    std::printf("%-14s %-10.0f %-10.3f %-10.3f %-10.3f %-8zu\n", e.name,
                r.qps, r.p50_ms, r.p99_ms, r.p999_ms, r.errors);
    endpoint_results.emplace_back(e.name, r);
  }

  // Tracing-overhead gate: interleave off/traced windows (A B A B ...)
  // so machine-load drift hits both sides equally, take each side's
  // BEST window, and require traced >= 95% of off. Best, not median:
  // closed-loop QPS under scheduler/neighbor noise only dips
  // (interference subtracts throughput, nothing adds it), so the best
  // window is the cleanest estimate of each configuration's capability
  // and the ratio isolates the tracing cost from the noise floor.
  const double overhead_window_s = flags.full ? 2.5 : 1.2;
  constexpr int kOverheadWindows = 5;
  double off_qps[kOverheadWindows];
  double traced_qps[kOverheadWindows];
  for (int w = 0; w < kOverheadWindows; ++w) {
    // Alternate which side goes first so neither systematically enjoys
    // the warmer caches.
    const bool off_first = w % 2 == 0;
    for (int side = 0; side < 2; ++side) {
      if ((side == 0) == off_first) {
        off_qps[w] = RunClosedLoop(server.port(), "POST", "/query", plan,
                                   kGateConnections, overhead_window_s)
                         .qps;
      } else {
        traced_qps[w] =
            RunClosedLoop(traced_server.port(), "POST", "/query", plan,
                          kGateConnections, overhead_window_s)
                .qps;
      }
    }
  }
  // Statement-tracking overhead gate: same interleaved-window design,
  // default (tracking on) vs the tracking-off baseline.
  double stats_on_qps[kOverheadWindows];
  double stats_off_qps[kOverheadWindows];
  for (int w = 0; w < kOverheadWindows; ++w) {
    const bool on_first = w % 2 == 0;
    for (int side = 0; side < 2; ++side) {
      if ((side == 0) == on_first) {
        stats_on_qps[w] = RunClosedLoop(server.port(), "POST", "/query",
                                        plan, kGateConnections,
                                        overhead_window_s)
                              .qps;
      } else {
        stats_off_qps[w] =
            RunClosedLoop(nostats_server.port(), "POST", "/query", plan,
                          kGateConnections, overhead_window_s)
                .qps;
      }
    }
  }
  server.Stop();
  traced_server.Stop();
  nostats_server.Stop();

  const double stats_on_best =
      *std::max_element(stats_on_qps, stats_on_qps + kOverheadWindows);
  const double stats_off_best =
      *std::max_element(stats_off_qps, stats_off_qps + kOverheadWindows);
  const double stats_ratio =
      stats_off_best > 0.0 ? stats_on_best / stats_off_best : 0.0;
  const bool stats_pass = stats_ratio >= kStatementsGateRatio;
  std::printf(
      "\nstatement-tracking overhead at %zu connections (best of %d "
      "windows):\n"
      "  tracking off: %.0f qps\n"
      "  tracking on:  %.0f qps  (ratio %.4f, need >= %.2f): %s\n",
      kGateConnections, kOverheadWindows, stats_off_best, stats_on_best,
      stats_ratio, kStatementsGateRatio, stats_pass ? "PASS" : "FAIL");

  const double off_best =
      *std::max_element(off_qps, off_qps + kOverheadWindows);
  const double traced_best =
      *std::max_element(traced_qps, traced_qps + kOverheadWindows);
  const double trace_ratio = off_best > 0.0 ? traced_best / off_best : 0.0;
  const bool trace_pass = trace_ratio >= kTraceGateRatio;
  std::printf(
      "\ntracing overhead at %zu connections (best of %d windows):\n"
      "  off:    %.0f qps\n"
      "  sample=%.3g: %.0f qps  (ratio %.4f, need >= %.2f): %s\n",
      kGateConnections, kOverheadWindows, off_best, trace_sample,
      traced_best, trace_ratio, kTraceGateRatio,
      trace_pass ? "PASS" : "FAIL");

  const bool gate_pass = qps_at_gate >= kGateQps;
  std::printf("\ngate: %.0f qps at %zu connections (need >= %.0f): %s\n",
              qps_at_gate, kGateConnections, kGateQps,
              gate_pass ? "PASS" : "FAIL");

  if (!flags.json_path.empty()) {
    bench::JsonObject json;
    json.SetStr("bench", "serve").SetBool("full", flags.full);
    json.SetStr("plan", plan);
    json.SetNum("gate_qps", kGateQps);
    json.SetInt("gate_connections", kGateConnections);
    json.SetNum("qps_at_gate", qps_at_gate);
    json.SetBool("gate_pass", gate_pass);
    json.SetNum("trace_sample", trace_sample);
    json.SetNum("trace_off_qps", off_best);
    json.SetNum("trace_on_qps", traced_best);
    json.SetNum("trace_qps_ratio", trace_ratio);
    json.SetBool("trace_gate_pass", trace_pass);
    json.SetNum("statements_off_qps", stats_off_best);
    json.SetNum("statements_on_qps", stats_on_best);
    json.SetNum("statements_qps_ratio", stats_ratio);
    json.SetBool("statements_gate_pass", stats_pass);
    std::vector<bench::JsonObject> rows;
    for (const LoadResult& r : results) {
      bench::JsonObject row;
      row.SetInt("connections", r.connections)
          .SetInt("requests", r.requests)
          .SetNum("seconds", r.seconds)
          .SetNum("qps", r.qps)
          .SetNum("p50_ms", r.p50_ms)
          .SetNum("p99_ms", r.p99_ms)
          .SetNum("p999_ms", r.p999_ms)
          .SetInt("errors", r.errors);
      rows.push_back(row);
    }
    json.SetArray("rows", rows);
    std::vector<bench::JsonObject> endpoint_rows;
    for (const auto& [name, r] : endpoint_results) {
      bench::JsonObject row;
      row.SetStr("endpoint", name)
          .SetNum("qps", r.qps)
          .SetNum("p50_ms", r.p50_ms)
          .SetNum("p99_ms", r.p99_ms)
          .SetNum("p999_ms", r.p999_ms)
          .SetInt("errors", r.errors);
      endpoint_rows.push_back(row);
    }
    json.SetArray("endpoints", endpoint_rows);
    if (!json.WriteTo(flags.json_path)) return 1;
  }
  return gate_pass && trace_pass && stats_pass ? 0 : 1;
}

}  // namespace
}  // namespace mrsl

int main(int argc, char** argv) { return mrsl::Run(argc, argv); }
