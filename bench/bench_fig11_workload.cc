// Fig 11: efficiency of multi-variable inference — total sample size and
// wall-clock time as a function of workload size, tuple-at-a-time vs the
// tuple-DAG optimization (500 points per tuple).
//
// Paper shapes: both metrics grow linearly with workload size; tuple-DAG
// clearly outperforms tuple-at-a-time with a much lower slope (close to
// an order of magnitude on sample counts), at identical accuracy.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/learner.h"
#include "core/workload.h"
#include "expfw/datagen.h"
#include "expfw/networks.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Fig 11", "tuple-DAG vs tuple-at-a-time sampling cost",
                flags.full);

  const char* net = "BN17";  // 8 binary attrs: rich subsumption structure
  const size_t train = flags.full ? 50000 : 10000;
  std::vector<size_t> workload_sizes =
      flags.full ? std::vector<size_t>{500, 1000, 2000, 3000}
                 : std::vector<size_t>{250, 500, 1000};

  auto spec = NetworkByName(net);
  if (!spec.ok()) return 1;
  Rng rng(0xF11);
  BayesNet bn = BayesNet::RandomInstance(spec->topology, &rng);
  DatasetOptions ds_opts;
  ds_opts.train_size = train;
  ds_opts.num_missing = 1;  // re-masked below with varying counts
  auto ds = GenerateDataset(bn, ds_opts, &rng);
  if (!ds.ok()) return 1;
  LearnOptions learn;
  learn.support_threshold = 0.005;
  auto model = LearnModel(ds->train, learn);
  if (!model.ok()) return 1;

  // Workload with a varying number of missing values per tuple (1 to
  // networkSize-1, as in the paper), drawn from fresh samples.
  const size_t n_attrs = spec->topology.num_vars();
  std::vector<Tuple> pool;
  Rng mask_rng(0xABCD);
  while (pool.size() < workload_sizes.back()) {
    Tuple t = bn.ForwardSample(&mask_rng);
    size_t num_missing =
        1 + static_cast<size_t>(mask_rng.UniformInt(n_attrs - 1));
    std::vector<AttrId> attrs(n_attrs);
    for (size_t i = 0; i < n_attrs; ++i) attrs[i] = static_cast<AttrId>(i);
    mask_rng.Shuffle(&attrs);
    for (size_t k = 0; k < num_missing; ++k) {
      t.set_value(attrs[k], kMissingValue);
    }
    pool.push_back(std::move(t));
  }

  TablePrinter table({"workload", "mode", "points sampled", "shared",
                      "wall (s)", "points/tuple"});
  std::vector<double> x;
  std::vector<double> base_points;
  std::vector<double> dag_points;
  std::vector<double> base_secs;
  std::vector<double> dag_secs;

  for (size_t w : workload_sizes) {
    std::vector<Tuple> workload(pool.begin(),
                                pool.begin() + static_cast<long>(w));
    for (SamplingMode mode :
         {SamplingMode::kTupleAtATime, SamplingMode::kTupleDag}) {
      WorkloadOptions opts;
      opts.gibbs.burn_in = 100;
      opts.gibbs.samples = 500;  // the paper's 500 points per tuple
      opts.gibbs.seed = 0xBEEF;
      // The paper's prototype recomputes each conditional estimate, so
      // its wall time tracks the number of sampled points. Our CPD cache
      // (bench_ablation item 2) would hide exactly the effect Fig 11
      // isolates; disable it here.
      opts.gibbs.enable_cpd_cache = false;
      WorkloadStats stats;
      auto dists = RunWorkload(*model, workload, mode, opts, &stats);
      if (!dists.ok()) {
        std::fprintf(stderr, "workload failed: %s\n",
                     dists.status().ToString().c_str());
        return 1;
      }
      table.AddRow(
          {std::to_string(w), SamplingModeName(mode),
           std::to_string(stats.points_sampled),
           std::to_string(stats.shared_samples),
           FormatDouble(stats.wall_seconds, 3),
           FormatDouble(static_cast<double>(stats.points_sampled) /
                            static_cast<double>(stats.distinct_tuples),
                        1)});
      if (mode == SamplingMode::kTupleAtATime) {
        base_points.push_back(static_cast<double>(stats.points_sampled));
        base_secs.push_back(stats.wall_seconds);
      } else {
        dag_points.push_back(static_cast<double>(stats.points_sampled));
        dag_secs.push_back(stats.wall_seconds);
      }
    }
    x.push_back(static_cast<double>(w));
  }
  std::printf("%s", table.ToString().c_str());

  double point_ratio = base_points.back() / dag_points.back();
  double time_ratio =
      dag_secs.back() > 0 ? base_secs.back() / dag_secs.back() : 0.0;
  std::printf(
      "\nFINDING: sample size grows linearly in workload size for both\n"
      "modes (r=%.2f baseline, r=%.2f DAG); at the largest workload the\n"
      "tuple-DAG draws %.1fx fewer points and runs %.1fx faster\n"
      "(paper: close to an order of magnitude, identical accuracy).\n",
      bench::Correlation(x, base_points), bench::Correlation(x, dag_points),
      point_ratio, time_ratio);
  return 0;
}
