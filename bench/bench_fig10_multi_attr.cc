// Fig 10: prediction accuracy of multi-variable (Gibbs) inference for
// BN8, BN17 and BN2, as a function of the number of sampled points per
// tuple and the number of missing attributes.
//
// Paper shapes: KL decreases as samples grow; fewer missing attributes
// yield lower KL; BN17 (larger network) is less accurate than BN8; BN2
// is the reported outlier with flatter curves.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "expfw/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Fig 10", "multi-attribute (Gibbs) inference accuracy",
                flags.full);

  const size_t train = flags.full ? 100000 : 10000;
  std::vector<size_t> samples =
      flags.full ? std::vector<size_t>{100, 500, 1000, 2000, 5000}
                 : std::vector<size_t>{100, 500, 2000};
  RepetitionOptions reps;
  reps.num_instances = flags.full ? 3 : 1;
  reps.num_splits = flags.full ? 3 : 2;
  reps.max_eval_tuples = flags.full ? 150 : 60;

  struct NetCase {
    const char* name;
    std::vector<size_t> missing;
  };
  const std::vector<NetCase> cases = {
      {"BN8", {2, 3}},
      {"BN17", {2, 3, 5}},
      {"BN2", {2, 3, 4}},
  };

  bool kl_falls_with_samples = true;
  bool fewer_missing_better_bn8 = true;
  double bn8_kl_2miss = 0.0;
  double bn17_kl_2miss = 0.0;

  for (const NetCase& c : cases) {
    std::printf("\n%s (train=%zu, support=0.001, tuple-DAG sampling):\n",
                c.name, train);
    TablePrinter table({"points/tuple", "missing", "avg KL", "top-1"});
    for (size_t miss : c.missing) {
      double first_kl = -1.0;
      double last_kl = -1.0;
      for (size_t n : samples) {
        MultiAttrConfig config;
        config.network = c.name;
        config.train_size = train;
        config.support = 0.001;
        config.num_missing = miss;
        config.gibbs.burn_in = 100;
        config.gibbs.samples = n;
        config.mode = SamplingMode::kTupleDag;
        config.reps = reps;
        auto r = RunMultiAttrExperiment(config);
        if (!r.ok()) {
          std::fprintf(stderr, "experiment failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        table.AddRow({std::to_string(n), std::to_string(miss),
                      FormatDouble(r->kl, 4), FormatDouble(r->top1, 3)});
        if (first_kl < 0) first_kl = r->kl;
        last_kl = r->kl;
        if (std::string(c.name) == "BN8" && miss == 2 &&
            n == samples.back()) {
          bn8_kl_2miss = r->kl;
        }
        if (std::string(c.name) == "BN17" && miss == 2 &&
            n == samples.back()) {
          bn17_kl_2miss = r->kl;
        }
      }
      // BN2 is the paper's outlier; only check the trend elsewhere.
      if (std::string(c.name) != "BN2" && last_kl > first_kl + 0.02) {
        kl_falls_with_samples = false;
      }
    }
    std::printf("%s", table.ToString().c_str());
  }

  std::printf(
      "\nFINDING: KL %s with more samples per tuple (paper: decreases);\n"
      "BN8 at 2 missing reaches KL %.3f vs BN17's %.3f (paper: the larger\n"
      "network is less accurate).%s\n",
      kl_falls_with_samples ? "falls or holds" : "RISES",
      bn8_kl_2miss, bn17_kl_2miss,
      fewer_missing_better_bn8 ? "" : " (missing-count trend violated)");
  return 0;
}
