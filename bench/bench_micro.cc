// Micro-benchmarks (google-benchmark) for the performance-critical
// primitives: Apriori mining, meta-rule matching (indexed vs linear),
// vote combination, single-attribute inference, and Gibbs sweeps with
// and without the CPD cache.

#include <benchmark/benchmark.h>

#include "bn/bayes_net.h"
#include "core/gibbs.h"
#include "core/learner.h"
#include "core/tuple_dag.h"
#include "expfw/networks.h"
#include "mining/apriori.h"

namespace mrsl {
namespace {

// Shared fixture data, built once.
struct Fixture {
  BayesNet bn;
  Relation train;
  MrslModel model;
  std::vector<Tuple> probes;  // single-missing tuples

  static const Fixture& Get() {
    static Fixture* f = [] {
      auto* fx = new Fixture();
      Rng rng(0xBEEF);
      auto spec = NetworkByName("BN17");
      fx->bn = BayesNet::RandomInstance(spec->topology, &rng);
      fx->train = fx->bn.SampleRelation(20000, &rng);
      LearnOptions lo;
      lo.support_threshold = 0.001;
      auto model = LearnModel(fx->train, lo);
      fx->model = std::move(model).value();
      for (int i = 0; i < 256; ++i) {
        Tuple t = fx->bn.ForwardSample(&rng);
        t.set_value(static_cast<AttrId>(rng.UniformInt(8)), kMissingValue);
        fx->probes.push_back(std::move(t));
      }
      return fx;
    }();
    return *f;
  }
};

void BM_AprioriMine(benchmark::State& state) {
  const Fixture& fx = Fixture::Get();
  auto rows = fx.train.CompleteRowIndices();
  AprioriOptions opts;
  opts.support_threshold = 1.0 / static_cast<double>(state.range(0));
  for (auto _ : state) {
    auto freq = MineFrequentItemsets(fx.train, rows, opts);
    benchmark::DoNotOptimize(freq);
  }
}
BENCHMARK(BM_AprioriMine)->Arg(10)->Arg(100)->Arg(1000);

void BM_LearnModel(benchmark::State& state) {
  const Fixture& fx = Fixture::Get();
  LearnOptions lo;
  lo.support_threshold = 0.01;
  for (auto _ : state) {
    auto model = LearnModel(fx.train, lo);
    benchmark::DoNotOptimize(model);
  }
}
BENCHMARK(BM_LearnModel);

void BM_MatchIndexed(benchmark::State& state) {
  const Fixture& fx = Fixture::Get();
  const Mrsl& lattice = fx.model.mrsl(0);
  std::vector<uint32_t> out;
  size_t i = 0;
  for (auto _ : state) {
    lattice.Match(fx.probes[i++ % fx.probes.size()], VoterChoice::kAll,
                  &out);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MatchIndexed);

void BM_MatchLinearScan(benchmark::State& state) {
  const Fixture& fx = Fixture::Get();
  const Mrsl& lattice = fx.model.mrsl(0);
  size_t i = 0;
  for (auto _ : state) {
    auto out = lattice.MatchLinearScan(fx.probes[i++ % fx.probes.size()],
                                       VoterChoice::kAll);
    benchmark::DoNotOptimize(out);
  }
}
BENCHMARK(BM_MatchLinearScan);

void BM_InferSingle(benchmark::State& state) {
  const Fixture& fx = Fixture::Get();
  VotingOptions voting{static_cast<VoterChoice>(state.range(0)),
                       static_cast<VotingScheme>(state.range(1))};
  size_t i = 0;
  for (auto _ : state) {
    const Tuple& t = fx.probes[i++ % fx.probes.size()];
    auto cpd =
        InferSingleAttribute(fx.model, t, t.MissingAttrs()[0], voting);
    benchmark::DoNotOptimize(cpd);
  }
}
BENCHMARK(BM_InferSingle)
    ->Args({0, 0})   // all-averaged
    ->Args({0, 1})   // all-weighted
    ->Args({1, 0})   // best-averaged
    ->Args({1, 1});  // best-weighted

void BM_GibbsSweep(benchmark::State& state) {
  const Fixture& fx = Fixture::Get();
  GibbsOptions opts;
  opts.enable_cpd_cache = state.range(0) != 0;
  GibbsSampler sampler(&fx.model, opts);
  Tuple t = fx.probes[0];
  t.set_value(1, kMissingValue);
  t.set_value(2, kMissingValue);
  auto chain = sampler.MakeChain(t);
  sampler.Step(&chain.value());  // initialize
  for (auto _ : state) {
    sampler.Step(&chain.value());
  }
  state.counters["cache_hit_rate"] =
      sampler.stats().cache_hits == 0
          ? 0.0
          : static_cast<double>(sampler.stats().cache_hits) /
                static_cast<double>(sampler.stats().cache_hits +
                                    sampler.stats().cpd_evaluations);
}
BENCHMARK(BM_GibbsSweep)->Arg(0)->Arg(1);

void BM_TupleDagBuild(benchmark::State& state) {
  const Fixture& fx = Fixture::Get();
  Rng rng(7);
  std::vector<Tuple> workload;
  for (int64_t i = 0; i < state.range(0); ++i) {
    Tuple t = fx.bn.ForwardSample(&rng);
    size_t k = 1 + rng.UniformInt(4);
    for (size_t j = 0; j < k; ++j) {
      t.set_value(static_cast<AttrId>(rng.UniformInt(8)), kMissingValue);
    }
    workload.push_back(std::move(t));
  }
  for (auto _ : state) {
    TupleDag dag(workload);
    benchmark::DoNotOptimize(dag);
  }
}
BENCHMARK(BM_TupleDagBuild)->Arg(100)->Arg(500)->Arg(2000);

}  // namespace
}  // namespace mrsl

BENCHMARK_MAIN();
