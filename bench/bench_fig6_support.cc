// Fig 6: KL divergence and top-1 accuracy as a function of the support
// threshold, for the four voting methods (training size = 100,000 at
// paper scale, 10,000 in the quick run).
//
// Paper shapes: lower support thresholds yield higher accuracy; best-*
// methods dominate at the most permissive threshold (0.001).

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "expfw/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace {

const char* kNetworks[] = {"BN1", "BN8", "BN9", "BN10", "BN17"};

}  // namespace

int main(int argc, char** argv) {
  using namespace mrsl;
  auto flags = bench::BenchFlags::Parse(argc, argv);
  bench::Banner("Fig 6", "accuracy vs support threshold, 4 voting methods",
                flags.full);

  const size_t train = flags.full ? 100000 : 10000;
  std::vector<double> supports = {0.001, 0.01, 0.02, 0.05, 0.1};
  RepetitionOptions reps;
  reps.num_instances = flags.full ? 3 : 2;
  reps.num_splits = flags.full ? 3 : 1;
  reps.max_eval_tuples = flags.full ? 500 : 200;

  const VotingOptions kMethods[] = {
      {VoterChoice::kAll, VotingScheme::kAveraged},
      {VoterChoice::kAll, VotingScheme::kWeighted},
      {VoterChoice::kBest, VotingScheme::kAveraged},
      {VoterChoice::kBest, VotingScheme::kWeighted},
  };

  TablePrinter kl_table({"support", "all-avg KL", "all-wgt KL",
                         "best-avg KL", "best-wgt KL"});
  TablePrinter top1_table({"support", "all-avg top1", "all-wgt top1",
                           "best-avg top1", "best-wgt top1"});
  std::vector<double> best_avg_kl;

  for (double support : supports) {
    std::vector<std::string> kl_row = {FormatDouble(support, 3)};
    std::vector<std::string> top1_row = {FormatDouble(support, 3)};
    for (size_t m = 0; m < 4; ++m) {
      double kl_sum = 0.0;
      double top1_sum = 0.0;
      for (const char* net : kNetworks) {
        SingleAttrConfig config;
        config.network = net;
        config.train_size = train;
        config.support = support;
        config.voting = kMethods[m];
        config.reps = reps;
        auto r = RunSingleAttrExperiment(config);
        if (!r.ok()) {
          std::fprintf(stderr, "experiment failed: %s\n",
                       r.status().ToString().c_str());
          return 1;
        }
        kl_sum += r->kl;
        top1_sum += r->top1;
      }
      kl_row.push_back(FormatDouble(kl_sum / std::size(kNetworks), 4));
      top1_row.push_back(FormatDouble(top1_sum / std::size(kNetworks), 3));
      if (m == 2) best_avg_kl.push_back(kl_sum / std::size(kNetworks));
    }
    kl_table.AddRow(kl_row);
    top1_table.AddRow(top1_row);
  }

  std::printf("\nKL divergence (lower is better):\n%s",
              kl_table.ToString().c_str());
  std::printf("\ntop-1 accuracy (higher is better):\n%s",
              top1_table.ToString().c_str());

  bool lowest_support_best = true;
  for (size_t i = 1; i < best_avg_kl.size(); ++i) {
    if (best_avg_kl[0] > best_avg_kl[i] + 1e-6) lowest_support_best = false;
  }
  std::printf(
      "\nFINDING: accuracy is highest at support = 0.001 (%s with the\n"
      "paper), degrading as the threshold prunes more meta-rules.\n",
      lowest_support_best ? "consistent" : "INCONSISTENT");
  return 0;
}
