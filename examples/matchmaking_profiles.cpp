// Matchmaking profiles at scale — the scenario that motivates the paper's
// introduction. A hand-built Bayesian network with realistic correlations
// (age -> income -> net worth, education -> income) generates 20,000
// profiles; 15% of them lose one to three attribute values. The library
// derives a probabilistic database from the incomplete relation and
// answers matchmaking queries over it.
//
// Build & run:  ./build/examples/matchmaking_profiles

#include <cstdio>

#include "bn/bayes_net.h"
#include "core/learner.h"
#include "core/workload.h"
#include "pdb/query.h"
#include "util/rng.h"

namespace {

// age ∈ {20,30,40,50}, edu ∈ {HS,BS,MS}, inc ∈ {50K,100K,200K},
// nw ∈ {100K,500K,1M}; edges age->inc, edu->inc, inc->nw, age->nw.
mrsl::BayesNet BuildProfileNetwork() {
  using namespace mrsl;
  auto topo = Topology::Create(
      {"age", "edu", "inc", "nw"}, {4, 3, 3, 3},
      {{}, {}, {0, 1}, {0, 2}});
  // CPTs: hand-tuned to encode "older and better educated earn more;
  // higher income and age mean higher net worth".
  std::vector<std::vector<double>> cpts(4);
  cpts[0] = {0.3, 0.3, 0.25, 0.15};  // P(age)
  cpts[1] = {0.4, 0.45, 0.15};       // P(edu)
  // P(inc | age, edu): 12 parent configs x 3 values. Base by age bracket,
  // shifted toward higher income with education.
  const double base[4][3] = {{0.75, 0.20, 0.05},
                             {0.50, 0.38, 0.12},
                             {0.35, 0.45, 0.20},
                             {0.30, 0.45, 0.25}};
  for (int age = 0; age < 4; ++age) {
    for (int edu = 0; edu < 3; ++edu) {
      double shift = 0.12 * edu;
      double p0 = std::max(base[age][0] - shift, 0.05);
      double p2 = std::min(base[age][2] + shift, 0.9);
      double p1 = 1.0 - p0 - p2;
      cpts[2].insert(cpts[2].end(), {p0, p1, p2});
    }
  }
  // P(nw | age, inc): wealth follows income, accumulating with age.
  for (int age = 0; age < 4; ++age) {
    for (int inc = 0; inc < 3; ++inc) {
      double rich = 0.08 + 0.18 * inc + 0.07 * age;
      double poor = std::max(0.75 - 0.22 * inc - 0.08 * age, 0.05);
      double mid = 1.0 - rich - poor;
      cpts[3].insert(cpts[3].end(), {poor, mid, rich});
    }
  }
  auto bn = BayesNet::Create(std::move(topo).value(), std::move(cpts));
  if (!bn.ok()) {
    std::fprintf(stderr, "bad network: %s\n", bn.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(bn).value();
}

}  // namespace

int main() {
  using namespace mrsl;
  BayesNet bn = BuildProfileNetwork();
  Rng rng(2026);

  // ---- Generate 20,000 profiles; 15% lose 1-3 attribute values ----
  Relation rel = bn.SampleRelation(20000, &rng);
  Relation damaged(rel.schema());
  size_t incomplete_count = 0;
  for (const Tuple& row : rel.rows()) {
    Tuple copy = row;
    if (rng.Bernoulli(0.15)) {
      size_t k = 1 + rng.UniformInt(3);
      for (size_t j = 0; j < k; ++j) {
        copy.set_value(static_cast<AttrId>(rng.UniformInt(4)),
                       kMissingValue);
      }
      if (!copy.IsComplete()) ++incomplete_count;
    }
    if (damaged.Append(std::move(copy)).ok()) continue;
  }
  std::printf("profiles: %zu total, %zu incomplete\n", damaged.num_rows(),
              incomplete_count);

  // ---- Learn the MRSL model from the complete portion ----
  LearnOptions learn;
  learn.support_threshold = 0.002;
  LearnStats stats;
  auto model = LearnModel(damaged, learn, &stats);
  if (!model.ok()) return 1;
  std::printf("MRSL model: %zu meta-rules (built in %.3fs)\n",
              model->TotalMetaRules(), stats.total_seconds);

  // ---- Infer Δt for every incomplete profile (tuple-DAG sampling) ----
  std::vector<Tuple> workload;
  for (uint32_t row : damaged.IncompleteRowIndices()) {
    workload.push_back(damaged.row(row));
  }
  WorkloadOptions wl;
  wl.gibbs.samples = 800;
  wl.gibbs.burn_in = 100;
  WorkloadStats wstats;
  auto dists = RunWorkload(*model, workload, SamplingMode::kTupleDag, wl,
                           &wstats);
  if (!dists.ok()) return 1;
  std::printf(
      "inference: %zu incomplete profiles (%llu distinct), %llu points "
      "sampled, %llu shared via the tuple DAG, %.2fs\n",
      workload.size(),
      static_cast<unsigned long long>(wstats.distinct_tuples),
      static_cast<unsigned long long>(wstats.points_sampled),
      static_cast<unsigned long long>(wstats.shared_samples),
      wstats.wall_seconds);

  // ---- Derive the probabilistic database ----
  auto db = ProbDatabase::FromInference(damaged, *dists, /*min_prob=*/0.005);
  if (!db.ok()) return 1;
  std::printf("probabilistic database: %zu blocks\n\n", db->num_blocks());

  // ---- Matchmaking queries ----
  const Schema& schema = db->schema();
  AttrId inc = 0;
  AttrId nw = 0;
  AttrId edu = 0;
  schema.FindAttr("inc", &inc);
  schema.FindAttr("nw", &nw);
  schema.FindAttr("edu", &edu);
  ValueId inc200 = schema.attr(inc).Find("v2");
  ValueId nw1m = schema.attr(nw).Find("v2");
  ValueId ms = schema.attr(edu).Find("v2");

  Predicate wealthy = Predicate::Eq(inc, inc200).And(Predicate::Eq(nw, nw1m));
  std::printf("Q1: expected number of profiles with top income AND top net"
              " worth: %.1f\n",
              ExpectedCount(*db, wealthy));
  std::printf("    P(at least one such profile) = %.6f\n",
              ProbExists(*db, wealthy));

  Predicate grad = Predicate::Eq(edu, ms);
  auto count_dist = CountDistribution(*db, grad.And(wealthy));
  double p10 = 0.0;
  for (size_t k = 10; k < count_dist.size(); ++k) p10 += count_dist[k];
  std::printf("Q2: P(>= 10 wealthy graduate-degree profiles) = %.4f\n", p10);

  // Ground truth comparison: the BN tells us the true joint probability
  // of (inc=200K, nw=1M); expected count over 20k profiles follows.
  double true_p = 0.0;
  for (ValueId a = 0; a < 4; ++a) {
    for (ValueId e = 0; e < 3; ++e) {
      true_p += bn.JointProb({a, e, inc200, nw1m});
    }
  }
  std::printf(
      "    sanity: BN ground truth predicts %.1f such profiles among %zu\n",
      true_p * static_cast<double>(damaged.num_rows()), damaged.num_rows());
  return 0;
}
