// Clinical study integration — the paper's data-integration motivation
// with the full preprocessing stack:
//   1. a *numeric* lab-results table is discretized into sub-ranges
//      (Sec II's treatment of continuous attributes),
//   2. joined to a patient dimension via primary/foreign key (Sec I-B's
//      cross-relation correlations),
//   3. the MRSL model is learned over the joined relation, and
//   4. missing lab values are imputed and the cohort is queried.
//
// Build & run:  ./build/examples/clinical_study

#include <cstdio>

#include "core/learner.h"
#include "core/repair.h"
#include "core/workload.h"
#include "pdb/lazy.h"
#include "relational/discretizer.h"
#include "relational/join.h"
#include "util/rng.h"
#include "util/string_util.h"

namespace {

// Synthesizes the two source tables. Glucose correlates with BMI band
// and age band; readings vanish for some visits (assay failures).
struct Tables {
  std::string patients_csv;  // pid, ageband, bmi
  std::string labs_csv;      // visit, pid, glucose (numeric), hba1c (numeric)
};

Tables Synthesize(size_t n_patients, size_t n_visits) {
  using namespace mrsl;
  Rng rng(90210);
  const char* agebands[] = {"young", "mid", "senior"};
  const char* bmibands[] = {"normal", "over", "obese"};

  std::string patients = "pid,ageband,bmi\n";
  std::vector<int> age_of(n_patients);
  std::vector<int> bmi_of(n_patients);
  for (size_t p = 0; p < n_patients; ++p) {
    int age = static_cast<int>(rng.SampleDiscrete({0.35, 0.4, 0.25}));
    // BMI drifts upward with age band.
    std::vector<double> bmi_w = {0.55 - 0.1 * age, 0.3, 0.15 + 0.1 * age};
    int bmi = static_cast<int>(rng.SampleDiscrete(bmi_w));
    age_of[p] = age;
    bmi_of[p] = bmi;
    patients += "p" + std::to_string(p) + "," + agebands[age] + "," +
                bmibands[bmi] + "\n";
  }

  std::string labs = "visit,pid,glucose,hba1c\n";
  for (size_t v = 0; v < n_visits; ++v) {
    size_t p = rng.UniformInt(n_patients);
    // Baselines rise with age and BMI; glucose in mg/dL, HbA1c in %.
    double glucose = 82 + 9.0 * age_of[p] + 14.0 * bmi_of[p] +
                     rng.NextDouble() * 24.0;
    double hba1c =
        5.0 + 0.35 * age_of[p] + 0.5 * bmi_of[p] + rng.NextDouble() * 0.8;
    std::string g = rng.Bernoulli(0.18) ? "?" : FormatDouble(glucose, 1);
    std::string h = rng.Bernoulli(0.12) ? "?" : FormatDouble(hba1c, 2);
    labs += "v" + std::to_string(v) + ",p" + std::to_string(p) + "," + g +
            "," + h + "\n";
  }
  return {patients, labs};
}

}  // namespace

int main() {
  using namespace mrsl;
  Tables tables = Synthesize(/*n_patients=*/600, /*n_visits=*/12000);

  // ---- 1. Discretize the numeric lab columns ----
  auto labs = DiscretizeCsv(
      tables.labs_csv,
      {{"glucose", 3, BucketStrategy::kEqualFrequency},
       {"hba1c", 3, BucketStrategy::kEqualFrequency}});
  if (!labs.ok()) {
    std::fprintf(stderr, "discretize failed: %s\n",
                 labs.status().ToString().c_str());
    return 1;
  }
  std::printf("lab table: %zu visits; glucose buckets:",
              labs->relation.num_rows());
  for (const std::string& label : labs->maps[0].labels) {
    std::printf(" %s", label.c_str());
  }
  std::printf("\n");

  // ---- 2. Join with the patient dimension ----
  auto patients = Relation::FromCsv(tables.patients_csv);
  if (!patients.ok()) return 1;
  JoinOptions jopts;
  jopts.drop_key_columns = true;  // pid is unique per patient: pure noise
  auto joined = PkFkJoin(labs->relation, "pid", *patients, "pid", jopts);
  if (!joined.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 joined.status().ToString().c_str());
    return 1;
  }
  // `visit` is a key too; project it away by dropping through a CSV pass.
  AttrId visit_id = 0;
  joined->schema().FindAttr("visit", &visit_id);
  std::printf("joined relation: %zu rows x %zu attrs (%zu incomplete)\n",
              joined->num_rows(), joined->schema().num_attrs(),
              joined->IncompleteRowIndices().size());

  // ---- 3. Learn the ensemble over the joined data ----
  // The visit id would flood the miner with singleton itemsets; keep the
  // support threshold above 1/|visits| so it never becomes frequent.
  LearnOptions learn;
  learn.support_threshold = 0.01;
  LearnStats lstats;
  auto model = LearnModel(*joined, learn, &lstats);
  if (!model.ok()) return 1;
  std::printf("MRSL model: %zu meta-rules in %.3fs\n",
              model->TotalMetaRules(), lstats.total_seconds);

  // ---- 4a. Repair: fill the missing assays for the cohort report ----
  RepairOptions ropts;
  ropts.workload.gibbs.samples = 600;
  ropts.workload.gibbs.burn_in = 80;
  ropts.min_confidence = 0.45;
  RepairStats rstats;
  auto repaired = RepairRelation(*model, *joined, ropts, &rstats);
  if (!repaired.ok()) return 1;
  std::printf(
      "repair: %zu visits completed (mean confidence %.2f), %zu left "
      "incomplete below the %.2f guardrail\n",
      rstats.repaired, rstats.mean_confidence, rstats.skipped_low_conf,
      ropts.min_confidence);

  // ---- 4b. Lazy cohort query over the *unrepaired* data ----
  AttrId glucose_id = 0;
  AttrId age_id = 0;
  model->schema().FindAttr("glucose", &glucose_id);
  model->schema().FindAttr("ageband", &age_id);
  // Top glucose bucket = last label of the learned map.
  ValueId top_glucose = model->schema().attr(glucose_id).Find(
      labs->maps[0].labels.back());
  ValueId senior = model->schema().attr(age_id).Find("senior");
  if (top_glucose == kMissingValue || senior == kMissingValue) return 1;

  GibbsOptions gibbs;
  gibbs.samples = 600;
  gibbs.burn_in = 80;
  LazyDeriver lazy(&*model, &*joined, gibbs);
  Predicate risky =
      Predicate::Eq(glucose_id, top_glucose).And(Predicate::Eq(age_id, senior));
  auto count = lazy.ExpectedCount(risky);
  if (!count.ok()) return 1;
  std::printf(
      "lazy query %s: expected %.1f of %zu visits "
      "(materialized Δt for %zu tuples, short-circuited %zu rows)\n",
      risky.ToString(model->schema()).c_str(), *count, joined->num_rows(),
      lazy.materialized(), lazy.short_circuits());
  return 0;
}
