// Quickstart: the paper's running example, end to end.
//
// Reconstructs the incomplete matchmaking relation R of Fig 1, learns the
// MRSL model (Fig 2), runs single-attribute inference for tuple t1 under
// the four voting methods (Sec IV's worked example), estimates the joint
// distribution Δt12 over (inc, nw) with Gibbs sampling (the Fig 1
// call-out), and derives the disjoint-independent probabilistic database.
//
// Build & run:  ./build/examples/quickstart

#include <cstdio>

#include "core/gibbs.h"
#include "core/infer_single.h"
#include "core/learner.h"
#include "pdb/prob_database.h"
#include "relational/relation.h"

namespace {

constexpr const char* kFig1Csv =
    "age,edu,inc,nw\n"
    "20,HS,?,?\n"       // t1
    "20,BS,50K,100K\n"  // t2
    "20,?,50K,?\n"      // t3
    "20,HS,100K,500K\n" // t4
    "20,?,?,?\n"        // t5
    "20,HS,50K,100K\n"  // t6
    "20,HS,50K,500K\n"  // t7
    "?,HS,?,?\n"        // t8
    "30,BS,100K,100K\n" // t9
    "30,?,100K,?\n"     // t10
    "30,HS,?,?\n"       // t11
    "30,MS,?,?\n"       // t12
    "40,BS,100K,100K\n" // t13
    "40,HS,?,?\n"       // t14
    "40,BS,50K,500K\n"  // t15
    "40,HS,?,500K\n"    // t16
    "40,HS,100K,500K\n";// t17

}  // namespace

int main() {
  using namespace mrsl;

  // ---- Input: the incomplete relation R (Fig 1) ----
  auto rel_or = Relation::FromCsv(kFig1Csv);
  if (!rel_or.ok()) {
    std::fprintf(stderr, "parse failed: %s\n",
                 rel_or.status().ToString().c_str());
    return 1;
  }
  Relation rel = std::move(rel_or).value();
  std::printf("Relation R: %zu tuples (%zu complete, %zu incomplete)\n",
              rel.num_rows(), rel.CompleteRowIndices().size(),
              rel.IncompleteRowIndices().size());

  // ---- Learning phase (Algorithm 1) ----
  LearnOptions learn;
  learn.support_threshold = 0.05;  // tiny dataset: keep most itemsets
  LearnStats stats;
  auto model_or = LearnModel(rel, learn, &stats);
  if (!model_or.ok()) {
    std::fprintf(stderr, "learning failed: %s\n",
                 model_or.status().ToString().c_str());
    return 1;
  }
  MrslModel model = std::move(model_or).value();
  std::printf(
      "\nLearned MRSL model: %zu meta-rules from %zu frequent itemsets\n",
      model.TotalMetaRules(), stats.num_frequent_itemsets);

  AttrId age = 0;
  rel.schema().FindAttr("age", &age);
  std::printf("\nMRSL for `age` (compare Fig 2):\n%s",
              model.mrsl(age).ToString(rel.schema()).c_str());

  // ---- Single-attribute inference for t1 (Sec IV worked example) ----
  const Tuple& t1 = rel.row(0);  // <20, HS, ?, ?>: infer inc
  AttrId inc = 0;
  rel.schema().FindAttr("inc", &inc);
  std::printf("Inference for t1 = %s, attribute `inc`:\n",
              t1.ToString(rel.schema()).c_str());
  for (VoterChoice choice : {VoterChoice::kAll, VoterChoice::kBest}) {
    for (VotingScheme scheme :
         {VotingScheme::kAveraged, VotingScheme::kWeighted}) {
      auto cpd = InferSingleAttribute(model, t1, inc, {choice, scheme});
      if (!cpd.ok()) return 1;
      std::printf("  %-5s %-9s -> P(inc) = <", VoterChoiceName(choice),
                  VotingSchemeName(scheme));
      for (size_t v = 0; v < cpd->card(); ++v) {
        std::printf("%s%s=%.2f", v ? ", " : "",
                    rel.schema().attr(inc).label(static_cast<ValueId>(v))
                        .c_str(),
                    cpd->prob(static_cast<ValueId>(v)));
      }
      std::printf(">\n");
    }
  }

  // ---- Multi-attribute inference for t12 (the Fig 1 call-out) ----
  const Tuple& t12 = rel.row(11);  // <30, MS, ?, ?>
  GibbsOptions gibbs;
  gibbs.burn_in = 200;
  gibbs.samples = 20000;
  // Eight training points is deep in the small-data regime where the
  // paper's all-* voting is more robust than best-* (Sec VI-C): the
  // `all` ensemble keeps every value reachable for the sampler.
  gibbs.voting = {VoterChoice::kAll, VotingScheme::kWeighted};
  GibbsSampler sampler(&model, gibbs);
  auto delta = sampler.Infer(t12);
  if (!delta.ok()) return 1;
  std::printf("\nGibbs estimate of Δt12 for %s (compare the Fig 1 call-out):\n%s",
              t12.ToString(rel.schema()).c_str(),
              delta->ToString(rel.schema()).c_str());

  // ---- Derive the probabilistic database ----
  std::vector<JointDist> dists;
  for (uint32_t row : rel.IncompleteRowIndices()) {
    auto d = sampler.Infer(rel.row(row));
    if (!d.ok()) return 1;
    dists.push_back(std::move(d).value());
  }
  auto db = ProbDatabase::FromInference(rel, dists, /*min_prob=*/0.001);
  if (!db.ok()) return 1;
  std::printf("\nDerived disjoint-independent probabilistic database:\n");
  std::printf("  %zu blocks, %llu possible worlds\n", db->num_blocks(),
              static_cast<unsigned long long>(db->NumPossibleWorlds()));
  std::printf("\nBlock for t12:\n");
  const Block& block = db->block(11);
  for (const Alternative& alt : block.alternatives) {
    std::printf("  %s  p=%.3f\n", alt.tuple.ToString(rel.schema()).c_str(),
                alt.prob);
  }
  return 0;
}
