// Benchmark tour: drives the experimental framework of Sec VI directly —
// pick a network from the Table I catalog, run the paper's averaged
// protocol (3 instances x 3 splits), and print a compact accuracy report
// for all four voting methods plus a Gibbs run. A template for anyone
// extending the evaluation to new topologies.
//
// Build & run:  ./build/examples/benchmark_tour [network]   (default BN9)

#include <cstdio>
#include <string>

#include "expfw/runner.h"
#include "util/string_util.h"
#include "util/table_printer.h"

int main(int argc, char** argv) {
  using namespace mrsl;
  std::string network = argc > 1 ? argv[1] : "BN9";
  auto spec = NetworkByName(network);
  if (!spec.ok()) {
    std::fprintf(stderr, "unknown network %s (try BN1..BN20)\n",
                 network.c_str());
    return 1;
  }
  std::printf("network %s: %zu attrs, avg card %.1f, dom size %llu, "
              "depth %zu\n\n",
              network.c_str(), spec->topology.num_vars(),
              spec->topology.AvgCard(),
              static_cast<unsigned long long>(spec->topology.DomainSize()),
              spec->topology.Depth());

  RepetitionOptions reps;  // the paper's 3 x 3 protocol
  reps.max_eval_tuples = 300;

  // Single-attribute inference, four voting methods.
  TablePrinter table({"voting method", "mean KL", "top-1", "model size"});
  for (VoterChoice choice : {VoterChoice::kAll, VoterChoice::kBest}) {
    for (VotingScheme scheme :
         {VotingScheme::kAveraged, VotingScheme::kWeighted}) {
      SingleAttrConfig config;
      config.network = network;
      config.train_size = 10000;
      config.support = 0.001;
      config.voting = {choice, scheme};
      config.reps = reps;
      auto r = RunSingleAttrExperiment(config);
      if (!r.ok()) {
        std::fprintf(stderr, "failed: %s\n", r.status().ToString().c_str());
        return 1;
      }
      table.AddRow({std::string(VoterChoiceName(choice)) + "-" +
                        VotingSchemeName(scheme),
                    FormatDouble(r->kl, 4), FormatDouble(r->top1, 3),
                    FormatDouble(r->model_size, 0)});
    }
  }
  std::printf("single-attribute inference (train=10000, θ=0.001):\n%s",
              table.ToString().c_str());

  // Multi-attribute inference with the tuple-DAG optimization.
  size_t max_missing = spec->topology.num_vars() - 1;
  TablePrinter multi({"missing attrs", "mean KL", "top-1",
                      "points sampled", "shared"});
  for (size_t miss = 2; miss <= std::min<size_t>(3, max_missing); ++miss) {
    MultiAttrConfig config;
    config.network = network;
    config.train_size = 10000;
    config.support = 0.001;
    config.num_missing = miss;
    config.gibbs.samples = 1000;
    config.gibbs.burn_in = 100;
    config.mode = SamplingMode::kTupleDag;
    config.reps = reps;
    config.reps.max_eval_tuples = 100;
    auto r = RunMultiAttrExperiment(config);
    if (!r.ok()) {
      std::fprintf(stderr, "failed: %s\n", r.status().ToString().c_str());
      return 1;
    }
    multi.AddRow({std::to_string(miss), FormatDouble(r->kl, 4),
                  FormatDouble(r->top1, 3),
                  std::to_string(r->stats.points_sampled),
                  std::to_string(r->stats.shared_samples)});
  }
  std::printf("\nmulti-attribute Gibbs inference (N=1000, tuple-DAG):\n%s",
              multi.ToString().c_str());
  return 0;
}
