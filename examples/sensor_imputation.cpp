// Scientific / sensor data imputation — the "noisy or missing
// experimental results" setting from the paper's introduction.
//
// A weather-station chain (solar -> temperature -> humidity -> battery
// drain -> alarm) produces discretized readings; radio glitches drop a
// couple of fields from many rows. We impute the missing readings with
// the MRSL ensemble and compare joint Gibbs inference against the naive
// independent-product baseline, then ask for the probability that a
// station is actually in the alarm state.
//
// Build & run:  ./build/examples/sensor_imputation

#include <cstdio>

#include "bn/bayes_net.h"
#include "bn/exact.h"
#include "core/learner.h"
#include "core/workload.h"
#include "expfw/metrics.h"
#include "pdb/query.h"
#include "util/rng.h"

namespace {

mrsl::BayesNet BuildStationNetwork() {
  using namespace mrsl;
  // solar ∈ {low,med,high}; temp ∈ {cold,mild,warm,hot};
  // humidity ∈ {dry,normal,humid}; drain ∈ {low,high};
  // alarm ∈ {off,on}.
  auto topo = Topology::Create(
      {"solar", "temp", "humidity", "drain", "alarm"}, {3, 4, 3, 2, 2},
      {{}, {0}, {1}, {1, 2}, {3}});
  std::vector<std::vector<double>> cpts(5);
  cpts[0] = {0.25, 0.45, 0.30};
  // P(temp | solar): hotter with more sun.
  cpts[1] = {0.45, 0.35, 0.15, 0.05,
             0.15, 0.40, 0.30, 0.15,
             0.05, 0.15, 0.40, 0.40};
  // P(humidity | temp): drier when hot.
  cpts[2] = {0.10, 0.45, 0.45,
             0.20, 0.50, 0.30,
             0.40, 0.45, 0.15,
             0.60, 0.30, 0.10};
  // P(drain | temp, humidity): high drain in extremes.
  for (int t = 0; t < 4; ++t) {
    for (int h = 0; h < 3; ++h) {
      double high = 0.15 + 0.18 * std::abs(t - 1.5) + 0.10 * (h == 2);
      if (high > 0.9) high = 0.9;
      cpts[3].insert(cpts[3].end(), {1.0 - high, high});
    }
  }
  // P(alarm | drain).
  cpts[4] = {0.97, 0.03, 0.55, 0.45};
  auto bn = BayesNet::Create(std::move(topo).value(), std::move(cpts));
  if (!bn.ok()) {
    std::fprintf(stderr, "bad network: %s\n",
                 bn.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(bn).value();
}

}  // namespace

int main() {
  using namespace mrsl;
  BayesNet bn = BuildStationNetwork();
  Rng rng(777);

  // 30,000 telemetry rows; 20% lose two correlated fields (temp+humidity
  // often vanish together when the sensor head resets).
  Relation telemetry = bn.SampleRelation(30000, &rng);
  Relation damaged(telemetry.schema());
  for (const Tuple& row : telemetry.rows()) {
    Tuple copy = row;
    if (rng.Bernoulli(0.2)) {
      copy.set_value(1, kMissingValue);  // temp
      copy.set_value(2, kMissingValue);  // humidity
      if (rng.Bernoulli(0.3)) copy.set_value(3, kMissingValue);  // drain
    }
    if (!damaged.Append(std::move(copy)).ok()) return 1;
  }
  std::printf("telemetry: %zu rows, %zu with missing readings\n",
              damaged.num_rows(), damaged.IncompleteRowIndices().size());

  LearnOptions learn;
  learn.support_threshold = 0.001;
  auto model = LearnModel(damaged, learn);
  if (!model.ok()) return 1;
  std::printf("MRSL model: %zu meta-rules\n", model->TotalMetaRules());

  // Workload: all incomplete rows (first 400 for the demo's runtime).
  std::vector<Tuple> workload;
  for (uint32_t row : damaged.IncompleteRowIndices()) {
    workload.push_back(damaged.row(row));
    if (workload.size() == 400) break;
  }

  // Joint Gibbs vs independent-product, scored against the generator.
  AccuracyAccumulator gibbs_acc;
  AccuracyAccumulator prod_acc;
  for (SamplingMode mode :
       {SamplingMode::kTupleDag, SamplingMode::kIndependentProduct}) {
    WorkloadOptions wl;
    wl.gibbs.samples = 1500;
    wl.gibbs.burn_in = 100;
    auto dists = RunWorkload(*model, workload, mode, wl);
    if (!dists.ok()) return 1;
    for (size_t i = 0; i < workload.size(); ++i) {
      auto truth = TrueDistribution(bn, workload[i]);
      if (!truth.ok()) return 1;
      (mode == SamplingMode::kTupleDag ? gibbs_acc : prod_acc)
          .Add(KlDivergence(*truth, (*dists)[i]),
               Top1Match(*truth, (*dists)[i]));
    }
  }
  std::printf(
      "\nimputation accuracy vs ground truth over %zu rows:\n"
      "  joint Gibbs (tuple-DAG):   KL %.4f   top-1 %.3f\n"
      "  independent product:       KL %.4f   top-1 %.3f\n",
      workload.size(), gibbs_acc.MeanKl(), gibbs_acc.Top1Rate(),
      prod_acc.MeanKl(), prod_acc.Top1Rate());

  // Derive the probabilistic DB for the demo subset and query alarms.
  Relation subset(damaged.schema());
  for (const Tuple& t : workload) {
    if (!subset.Append(t).ok()) return 1;
  }
  WorkloadOptions wl;
  wl.gibbs.samples = 1500;
  wl.gibbs.burn_in = 100;
  auto dists = RunWorkload(*model, workload, SamplingMode::kTupleDag, wl);
  if (!dists.ok()) return 1;
  auto db = ProbDatabase::FromInference(subset, *dists, 0.002);
  if (!db.ok()) return 1;

  AttrId alarm = 0;
  db->schema().FindAttr("alarm", &alarm);
  Predicate alarm_on = Predicate::Eq(alarm, 1);
  std::printf(
      "\nalarm analytics over the imputed rows:\n"
      "  expected alarms: %.2f of %zu stations\n"
      "  P(no alarms at all) = %.4f\n",
      ExpectedCount(*db, alarm_on), db->num_blocks(),
      CountDistribution(*db, alarm_on)[0]);
  return 0;
}
