// mrsl — command-line front end for the library.
//
// Subcommands:
//   learn   --in data.csv --out model.txt [--support θ] [--max-itemsets K]
//           [--discretize col:buckets:width|freq]...
//           Learn an MRSL model from the complete rows of a CSV relation.
//   stats   --model model.txt
//           Print a model summary (lattice sizes, roots).
//   infer   --model model.txt --in data.csv [--out blocks.txt]
//           [--samples N] [--burn-in B] [--mode dag|tuple|product]
//           Derive Δt for every incomplete row; print/write the blocks.
//   repair  --model model.txt --in data.csv --out repaired.csv
//           [--min-confidence p] [--samples N] [--burn-in B]
//           Replace missing cells with their most probable completion.
//   query   --model model.txt --in data.csv --where attr=value[,attr=value...]
//           [--samples N]
//           Lazy query-targeted derivation: expected count / existence
//           probability of rows matching the conjunction.
//   query   --model model.txt --in data.csv --plan "<plan>"
//           [--oracle N] [--min-prob p] [--width W] [--budget-ms B]
//           [--propagation 1]
//           Extensional plan evaluation over the fully derived BID
//           database: select/project/join/exists/count with exact
//           probabilities on safe plans and [lower, upper] dissociation
//           bounds on unsafe ones; --oracle N cross-checks against N
//           Monte-Carlo sampled possible worlds. --plan-file reads the
//           plan text from a file (large plans without shell quoting).
//           --width / --budget-ms / --propagation route the plan through
//           the safe-plan compiler (pdb/compiler.h): anytime lattice
//           refinement until the mean bounds width reaches W or B ms
//           are spent; --propagation 1 prints ranking scores instead.
//   update  --model model.txt --snapshot store.bin [--in data.csv]
//           [--delta delta.csv] [--samples N] [--burn-in B]
//           Versioned-store maintenance: restore the store from the
//           snapshot file (or derive epoch 1 from --in when the file
//           does not exist yet), apply an optional delta CSV with
//           incremental re-derivation, and save the new epoch back.
//   serve   --model model.txt --snapshot store.bin [--in data.csv]
//           [--port 8080] [--max-inflight 64] [--threads N]
//           [--trace-sample R] [--slow-query-ms MS]
//           [--log-level SPEC] [--log-format text|json]
//           Serve the versioned store over HTTP on 127.0.0.1: POST
//           /query (plan text), POST /update (delta CSV), GET
//           /snapshot, GET /healthz, GET /metrics, GET /debug/traces,
//           GET /debug/slow, GET /debug/statements. SIGINT/SIGTERM
//           drains in-flight requests and saves the snapshot back.
//   top     [--port 8080] [--sort total_time] [--limit 20]
//           [--interval-ms 2000] [--iterations 0]
//           Live workload view: polls a serving process's
//           /debug/statements and renders the digests as a table,
//           top-like, until interrupted (or for --iterations rounds).
//   tune    --in data.csv [--candidates 0.001,0.01,0.1] [--holdout 0.2]
//           Pick the support threshold by masked holdout log-loss.
//
// Unknown flags are usage errors (exit 2), never silently ignored;
// `mrsl <command> --help` prints that command's flags. Exit codes:
// 0 success, 1 runtime failure, 2 usage error.

#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <system_error>
#include <thread>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/delta.h"
#include "core/engine.h"
#include "core/learner.h"
#include "core/model_io.h"
#include "core/repair.h"
#include "core/tuning.h"
#include "core/workload.h"
#include "pdb/compiler.h"
#include "pdb/lazy.h"
#include "pdb/plan.h"
#include "pdb/prob_database.h"
#include "pdb/store.h"
#include "relational/discretizer.h"
#include "server/http.h"
#include "server/server.h"
#include "server/service.h"
#include "util/csv.h"
#include "util/log.h"
#include "util/string_util.h"
#include "util/table_printer.h"

namespace mrsl {
namespace {

// Per-subcommand usage blocks: `mrsl <cmd> --help` prints exactly one of
// these, and a flag error inside a subcommand prints its own block
// instead of the whole catalog.
const std::map<std::string, std::string>& CmdUsageTexts() {
  static const auto* kTexts = new std::map<std::string, std::string>{
      {"learn",
       "mrsl learn --in data.csv --out model.txt [--support 0.01]\n"
       "    [--max-itemsets 1000] [--discretize col:buckets:width|freq]\n"
       "  Learn an MRSL model from the complete rows of a CSV relation.\n"},
      {"stats",
       "mrsl stats --model model.txt\n"
       "  Print a model summary (lattice sizes, roots).\n"},
      {"infer",
       "mrsl infer --model model.txt --in data.csv [--out blocks.txt]\n"
       "    [--samples 2000] [--burn-in 100] [--mode dag|tuple|product]\n"
       "    [--threads 0] [--batch-size 0]\n"
       "  Derive Δt for every incomplete row; print/write the blocks.\n"},
      {"repair",
       "mrsl repair --model model.txt --in data.csv --out repaired.csv\n"
       "    [--min-confidence 0] [--samples 2000] [--burn-in 100]\n"
       "    [--mode dag|tuple|product] [--threads 0] [--batch-size 0]\n"
       "  Replace missing cells with their most probable completion.\n"},
      {"query",
       "mrsl query --model model.txt --in data.csv --where a=v[,b=w...]\n"
       "    [--samples 2000] [--threads 0] [--batch-size 0]\n"
       "mrsl query --model model.txt --in data.csv --plan PLAN\n"
       "    [--plan-file plan.txt] [--oracle 0] [--min-prob 0]\n"
       "    [--samples 2000] [--threads 0] [--batch-size 0]\n"
       "    [--width W] [--budget-ms B] [--propagation 1]\n"
       "  PLAN: scan | select(pred; node) | project(attrs; node)\n"
       "        | join(node; node; a=b) | exists(node) | count(node)\n"
       "  e.g. \"count(select(edu=HS & inc=100K; scan))\"\n"
       "  --width/--budget-ms compile the plan: anytime dissociation-\n"
       "  lattice refinement until the mean bounds width <= W (in [0,1])\n"
       "  or B ms elapse; --propagation 1 prints ranking scores only.\n"},
      {"update",
       "mrsl update --model model.txt --snapshot store.bin [--in data.csv]\n"
       "    [--delta delta.csv] [--wal-dir DIR] [--sync-mode always|group|\n"
       "    none] [--samples 2000] [--burn-in 100]\n"
       "    [--mode dag|tuple|product] [--min-prob 0] [--threads 0]\n"
       "  Restore the store from the snapshot (or derive epoch 1 from\n"
       "  --in), apply an optional delta CSV incrementally, save back.\n"
       "  delta CSV: header op,row,<attrs>; rows insert/update/delete\n"
       "  --wal-dir makes every commit durable before it is reported:\n"
       "  records beyond the snapshot are replayed on start, and the\n"
       "  final save checkpoints + compacts the log.\n"},
      {"serve",
       "mrsl serve --model model.txt --snapshot store.bin [--in data.csv]\n"
       "    [--port 8080] [--max-inflight 64] [--wal-dir DIR]\n"
       "    [--sync-mode always|group|none] [--samples 2000]\n"
       "    [--burn-in 100] [--mode dag|tuple|product] [--min-prob 0]\n"
       "    [--threads 0] [--trace-sample 0] [--slow-query-ms 250]\n"
       "    [--log-level info] [--log-format text]\n"
       "  Serve the versioned store over HTTP on 127.0.0.1:\n"
       "    POST /query     plan text -> JSON rows with [lo, hi] probs\n"
       "                    (?oracle=N adds a Monte-Carlo cross-check;\n"
       "                    ?trace=1 appends an EXPLAIN-ANALYZE span tree)\n"
       "    POST /update    delta CSV -> incremental commit, new epoch\n"
       "    GET  /snapshot  the current epoch as snapshot bytes\n"
       "    GET  /healthz   liveness + epoch + version\n"
       "    GET  /metrics   Prometheus text (per-endpoint counters,\n"
       "                    latency histograms, batch/cache series)\n"
       "    GET  /debug/traces  recent traces (?format=chrome for\n"
       "                    chrome://tracing; ?limit=N)\n"
       "    GET  /debug/slow    queries slower than --slow-query-ms\n"
       "    GET  /debug/statements  per-query-shape workload digests\n"
       "                    (?sort=total_time|calls|p99|width, ?limit=N,\n"
       "                    ?format=json|tsv); POST .../reset clears them\n"
       "  --trace-sample R records a trace for a random fraction R in\n"
       "  [0,1] of requests; --slow-query-ms < 0 disables the slow log.\n"
       "  --log-level takes a level (debug|info|warn|error|off) with\n"
       "  optional per-component overrides, e.g. 'info,wal=debug';\n"
       "  --log-format json emits JSON-lines records on stderr.\n"
       "  SIGINT/SIGTERM drains in-flight requests, then saves the\n"
       "  snapshot back to --snapshot (checkpointing + compacting the\n"
       "  WAL when --wal-dir is set). With a WAL, every /update is\n"
       "  fsync-durable before its HTTP 200 — kill -9 the server and\n"
       "  restart with the same flags to replay the tail.\n"},
      {"top",
       "mrsl top [--port 8080] [--sort total_time] [--limit 20]\n"
       "    [--interval-ms 2000] [--iterations 0]\n"
       "  Poll a serving process's GET /debug/statements and render the\n"
       "  workload digests as a live table (clears the screen between\n"
       "  rounds; --iterations 0 polls until interrupted; 1 prints one\n"
       "  snapshot and exits). --sort: total_time|calls|p99|width.\n"},
      {"tune",
       "mrsl tune --in data.csv [--candidates t1,t2,...] [--holdout 0.2]\n"
       "  Pick the support threshold by masked holdout log-loss.\n"},
  };
  return *kTexts;
}

void PrintCmdUsage(const std::string& cmd, std::FILE* out) {
  std::fprintf(out, "usage: %s", CmdUsageTexts().at(cmd).c_str());
}

/// Usage error scoped to one subcommand (exit code 2).
int UsageFor(const std::string& cmd) {
  PrintCmdUsage(cmd, stderr);
  return 2;
}

void PrintGlobalUsage(std::FILE* out) {
  std::fprintf(
      out,
      "usage: mrsl <learn|stats|infer|repair|query|update|serve|top|tune> "
      "[options]\n"
      "run `mrsl <command> --help` for that command's flags\n"
      "\n");
  for (const auto& [cmd, text] : CmdUsageTexts()) {
    (void)cmd;
    std::fprintf(out, "%s", text.c_str());
  }
  std::fprintf(
      out,
      "\n"
      "  --threads N     inference thread-pool width (0 = all cores);\n"
      "                  results are identical for every thread count\n"
      "  --batch-size K  tuples per engine batch (0 = one batch); for\n"
      "                  query, pre-materializes uncertain rows K at a\n"
      "                  time\n");
}

int Usage() {
  PrintGlobalUsage(stderr);
  return 2;
}

// Parses --key value pairs; returns false on stray arguments and on
// flags the subcommand does not accept (silently ignoring a typo like
// --sample would run with defaults the user never asked for).
bool ParseFlags(int argc, char** argv, int start,
                const std::set<std::string>& allowed,
                std::map<std::string, std::vector<std::string>>* flags) {
  for (int i = start; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0 || i + 1 >= argc) {
      std::fprintf(stderr, "stray argument: %s\n", arg.c_str());
      return false;
    }
    std::string key = arg.substr(2);
    if (allowed.count(key) == 0) {
      std::fprintf(stderr, "unknown flag for this subcommand: %s\n",
                   arg.c_str());
      return false;
    }
    (*flags)[std::move(key)].push_back(argv[++i]);
  }
  return true;
}

std::string GetFlag(const std::map<std::string, std::vector<std::string>>& f,
                    const std::string& key, const std::string& fallback) {
  auto it = f.find(key);
  return it == f.end() ? fallback : it->second.back();
}

bool GetDoubleFlag(const std::map<std::string, std::vector<std::string>>& f,
                   const std::string& key, double fallback, double* out) {
  std::string s = GetFlag(f, key, "");
  if (s.empty()) {
    *out = fallback;
    return true;
  }
  return ParseDouble(s, out);
}

bool GetIntFlag(const std::map<std::string, std::vector<std::string>>& f,
                const std::string& key, int64_t fallback, int64_t* out) {
  std::string s = GetFlag(f, key, "");
  if (s.empty()) {
    *out = fallback;
    return true;
  }
  return ParseInt(s, out) && *out >= 0;
}

Result<Relation> LoadInput(
    const std::map<std::string, std::vector<std::string>>& flags) {
  std::string path = GetFlag(flags, "in", "");
  if (path.empty()) return Status::InvalidArgument("missing --in");
  return Relation::LoadCsvFile(path);
}

int CmdLearn(const std::map<std::string, std::vector<std::string>>& flags) {
  // Shadows the global catalog: flag errors print learn's block only.
  const auto Usage = [] { return UsageFor("learn"); };
  std::string in = GetFlag(flags, "in", "");
  std::string out = GetFlag(flags, "out", "");
  if (in.empty() || out.empty()) return Usage();

  LearnOptions learn;
  int64_t max_itemsets = 0;
  if (!GetDoubleFlag(flags, "support", 0.01, &learn.support_threshold) ||
      !GetIntFlag(flags, "max-itemsets", 1000, &max_itemsets)) {
    return Usage();
  }
  learn.max_itemsets = static_cast<size_t>(max_itemsets);

  // Optional discretization passes.
  Relation rel;
  auto csv = ReadFile(in);
  if (!csv.ok()) {
    std::fprintf(stderr, "error: %s\n", csv.status().ToString().c_str());
    return 1;
  }
  auto disc_it = flags.find("discretize");
  if (disc_it != flags.end()) {
    std::vector<DiscretizeSpec> specs;
    for (const std::string& raw : disc_it->second) {
      auto parts = Split(raw, ':');
      if (parts.size() != 3) {
        std::fprintf(stderr, "bad --discretize spec: %s\n", raw.c_str());
        return 2;
      }
      DiscretizeSpec spec;
      spec.attribute = parts[0];
      int64_t buckets = 0;
      if (!ParseInt(parts[1], &buckets) || buckets < 2) return Usage();
      spec.num_buckets = static_cast<size_t>(buckets);
      if (parts[2] == "width") {
        spec.strategy = BucketStrategy::kEqualWidth;
      } else if (parts[2] == "freq") {
        spec.strategy = BucketStrategy::kEqualFrequency;
      } else {
        return Usage();
      }
      specs.push_back(std::move(spec));
    }
    auto result = DiscretizeCsv(*csv, specs);
    if (!result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    rel = std::move(result).value().relation;
  } else {
    auto parsed = Relation::FromCsv(*csv);
    if (!parsed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   parsed.status().ToString().c_str());
      return 1;
    }
    rel = std::move(parsed).value();
  }

  LearnStats stats;
  auto model = LearnModel(rel, learn, &stats);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  Status st = SaveModelFile(*model, out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf(
      "learned %zu meta-rules from %zu complete rows "
      "(%zu itemsets, %.3fs) -> %s\n",
      model->TotalMetaRules(), rel.CompleteRowIndices().size(),
      stats.num_frequent_itemsets, stats.total_seconds, out.c_str());
  return 0;
}

int CmdStats(const std::map<std::string, std::vector<std::string>>& flags) {
  const auto Usage = [] { return UsageFor("stats"); };
  std::string path = GetFlag(flags, "model", "");
  if (path.empty()) return Usage();
  auto model = LoadModelFile(path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  std::printf("model: %zu attributes, %zu meta-rules\n", model->num_attrs(),
              model->TotalMetaRules());
  for (AttrId a = 0; a < model->num_attrs(); ++a) {
    const Mrsl& lattice = model->mrsl(a);
    std::printf("  %-16s card=%zu rules=%zu root=%s\n",
                model->schema().attr(a).name().c_str(),
                model->schema().attr(a).cardinality(), lattice.num_rules(),
                lattice.root() >= 0 ? "yes" : "NO");
  }
  return 0;
}

// Shared --threads / --batch-size handling for the engine-backed
// subcommands.
bool ParseEngineFlags(
    const std::map<std::string, std::vector<std::string>>& flags,
    EngineOptions* engine_opts, size_t* batch_size) {
  int64_t threads = 0;
  int64_t batch = 0;
  if (!GetIntFlag(flags, "threads", 0, &threads) ||
      !GetIntFlag(flags, "batch-size", 0, &batch)) {
    return false;
  }
  engine_opts->num_threads = static_cast<size_t>(threads);
  *batch_size = static_cast<size_t>(batch);
  return true;
}

bool ParseGibbs(const std::map<std::string, std::vector<std::string>>& flags,
                WorkloadOptions* opts, SamplingMode* mode) {
  int64_t samples = 0;
  int64_t burn = 0;
  if (!GetIntFlag(flags, "samples", 2000, &samples) ||
      !GetIntFlag(flags, "burn-in", 100, &burn)) {
    return false;
  }
  opts->gibbs.samples = static_cast<size_t>(samples);
  opts->gibbs.burn_in = static_cast<size_t>(burn);
  std::string mode_str = GetFlag(flags, "mode", "dag");
  if (mode_str == "dag") {
    *mode = SamplingMode::kTupleDag;
  } else if (mode_str == "tuple") {
    *mode = SamplingMode::kTupleAtATime;
  } else if (mode_str == "product") {
    *mode = SamplingMode::kIndependentProduct;
  } else {
    return false;
  }
  return true;
}

int CmdInfer(const std::map<std::string, std::vector<std::string>>& flags) {
  const auto Usage = [] { return UsageFor("infer"); };
  std::string model_path = GetFlag(flags, "model", "");
  if (model_path.empty()) return Usage();
  auto model = LoadModelFile(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  auto rel = LoadInput(flags);
  if (!rel.ok()) {
    std::fprintf(stderr, "error: %s\n", rel.status().ToString().c_str());
    return 1;
  }
  WorkloadOptions opts;
  SamplingMode mode;
  EngineOptions engine_opts;
  size_t batch_size = 0;
  if (!ParseGibbs(flags, &opts, &mode) ||
      !ParseEngineFlags(flags, &engine_opts, &batch_size)) {
    return Usage();
  }

  const size_t num_incomplete = rel->IncompleteRowIndices().size();
  if (num_incomplete == 0) {
    std::printf("no incomplete rows; nothing to infer\n");
    return 0;
  }

  // Batched parallel derivation through the persistent engine, straight
  // to the queryable BID database.
  Engine engine(&*model, engine_opts);
  WorkloadStats stats;
  auto db = engine.DeriveDatabase(*rel, mode, opts, /*min_prob=*/0.0,
                                  batch_size, &stats);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::string dump = db->ToString(db->num_blocks());
  std::string out = GetFlag(flags, "out", "");
  if (out.empty()) {
    std::printf("%s", dump.c_str());
  } else {
    Status st = WriteFile(out, dump);
    if (!st.ok()) {
      std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
      return 1;
    }
  }
  std::fprintf(stderr,
               "inferred %zu tuples (%llu distinct) with %llu sampled "
               "points in %.2fs\n",
               num_incomplete,
               static_cast<unsigned long long>(stats.distinct_tuples),
               static_cast<unsigned long long>(stats.points_sampled),
               stats.wall_seconds);
  return 0;
}

int CmdRepair(const std::map<std::string, std::vector<std::string>>& flags) {
  const auto Usage = [] { return UsageFor("repair"); };
  std::string model_path = GetFlag(flags, "model", "");
  std::string out = GetFlag(flags, "out", "");
  if (model_path.empty() || out.empty()) return Usage();
  auto model = LoadModelFile(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  auto rel = LoadInput(flags);
  if (!rel.ok()) {
    std::fprintf(stderr, "error: %s\n", rel.status().ToString().c_str());
    return 1;
  }
  RepairOptions opts;
  EngineOptions engine_opts;
  if (!ParseGibbs(flags, &opts.workload, &opts.mode) ||
      !ParseEngineFlags(flags, &engine_opts, &opts.batch_size)) {
    return Usage();
  }
  if (!GetDoubleFlag(flags, "min-confidence", 0.0, &opts.min_confidence)) {
    return Usage();
  }
  Engine engine(&*model, engine_opts);
  RepairStats stats;
  auto repaired = RepairRelation(&engine, *rel, opts, &stats);
  if (!repaired.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 repaired.status().ToString().c_str());
    return 1;
  }
  Status st = repaired->SaveCsvFile(out);
  if (!st.ok()) {
    std::fprintf(stderr, "error: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("repaired %zu rows (%zu below confidence %.3f), mean "
              "confidence %.3f -> %s\n",
              stats.repaired, stats.skipped_low_conf, opts.min_confidence,
              stats.mean_confidence, out.c_str());
  return 0;
}

// Extensional plan evaluation over the fully derived BID database:
// parse --plan against the derived schema, evaluate bottom-up (exact on
// safe plans, dissociation bounds on unsafe ones), optionally
// cross-check with the Monte-Carlo possible-world oracle.
int RunPlanQuery(const MrslModel& model, const Relation& rel,
                 const std::map<std::string, std::vector<std::string>>& flags,
                 const std::string& plan_text) {
  const auto Usage = [] { return UsageFor("query"); };
  GibbsOptions gibbs;
  int64_t samples = 0;
  int64_t oracle_trials = 0;
  double min_prob = 0.0;
  double width = 0.0;
  double budget_ms = 0.0;
  int64_t propagation = 0;
  EngineOptions engine_opts;
  size_t batch_size = 0;
  if (!GetIntFlag(flags, "samples", 2000, &samples) ||
      !GetIntFlag(flags, "oracle", 0, &oracle_trials) ||
      !GetDoubleFlag(flags, "min-prob", 0.0, &min_prob) ||
      !GetDoubleFlag(flags, "width", 0.0, &width) ||
      !GetDoubleFlag(flags, "budget-ms", 0.0, &budget_ms) ||
      !GetIntFlag(flags, "propagation", 0, &propagation) ||
      width < 0.0 || width > 1.0 || budget_ms < 0.0 ||
      !ParseEngineFlags(flags, &engine_opts, &batch_size)) {
    return Usage();
  }
  gibbs.samples = static_cast<size_t>(samples);
  // Any compiler flag routes the plan through the safe-plan compiler.
  const bool with_compile = flags.count("width") != 0 ||
                            flags.count("budget-ms") != 0 ||
                            flags.count("propagation") != 0;

  Engine engine(&model, engine_opts);
  LazyDeriver lazy(&engine, &rel, gibbs);
  auto db = lazy.MaterializeDatabase(batch_size, min_prob);
  if (!db.ok()) {
    std::fprintf(stderr, "error: %s\n", db.status().ToString().c_str());
    return 1;
  }
  std::vector<const ProbDatabase*> sources = {&*db};

  auto parsed = ParsePlan(plan_text, sources);
  if (!parsed.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 parsed.status().ToString().c_str());
    return 2;
  }
  auto rendered = PlanToString(*parsed->plan, sources);
  std::printf("PLAN %s  (%zu blocks)\n",
              rendered.ok() ? rendered->c_str() : plan_text.c_str(),
              db->num_blocks());

  // The oracle estimate, when requested (shared by all three kinds).
  bool with_oracle = oracle_trials > 0;
  OracleResult oracle;
  if (with_oracle) {
    OracleOptions oo;
    oo.trials = static_cast<size_t>(oracle_trials);
    oo.num_threads = engine_opts.num_threads;
    auto estimated = MonteCarloPlanOracle(*parsed->plan, sources, oo);
    if (!estimated.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   estimated.status().ToString().c_str());
      return 1;
    }
    oracle = std::move(estimated).value();
  }

  if (with_compile) {
    CompileOptions copts;
    copts.width_target = width;
    copts.budget_ms = budget_ms;
    copts.propagation_only = propagation != 0;
    // Only the answer this query kind prints is materialized.
    copts.want_exists = parsed->kind == ParsedQuery::Kind::kExists;
    copts.want_count = parsed->kind == ParsedQuery::Kind::kCount;
    auto compiled = CompileQuery(*parsed->plan, sources, copts);
    if (!compiled.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   compiled.status().ToString().c_str());
      return 1;
    }
    const CompileStats& cs = compiled->stats;
    switch (parsed->kind) {
      case ParsedQuery::Kind::kRelation: {
        std::printf("%s: %zu distinct tuples\n",
                    cs.propagation ? "propagation scores (ranking only)"
                    : cs.plan_safe ? "exact (safe plan)"
                                   : "compiled envelope",
                    compiled->marginals.size());
        std::unordered_map<Tuple, double, TupleHash> freq;
        for (const ProbTuple& pt : oracle.marginals) {
          freq.emplace(pt.tuple, pt.prob);
        }
        for (const DistinctMarginal& m : compiled->marginals) {
          std::printf("  %s  p=%s",
                      m.tuple.ToString(compiled->schema).c_str(),
                      m.prob.ToString().c_str());
          if (with_oracle) {
            auto it = freq.find(m.tuple);
            std::printf("  oracle=%.4f",
                        it == freq.end() ? 0.0 : it->second);
          }
          std::printf("\n");
        }
        break;
      }
      case ParsedQuery::Kind::kExists:
        std::printf("P(result non-empty) = %s  (%s)\n",
                    compiled->exists.prob.ToString().c_str(),
                    cs.plan_safe ? "exact" : "compiled envelope");
        if (with_oracle) {
          std::printf("oracle (%zu worlds):  %.4f\n", oracle.trials,
                      oracle.exists);
        }
        break;
      case ParsedQuery::Kind::kCount:
        std::printf("E[count] = %s  (%s)\n",
                    compiled->count.expected.ToString().c_str(),
                    cs.plan_safe ? "exact" : "compiled envelope");
        if (with_oracle) {
          std::printf("oracle (%zu worlds):  E[count] = %.4f\n",
                      oracle.trials, oracle.expected_count);
        }
        break;
    }
    std::printf(
        "compile: groups=%zu unsafe=%zu refined=%zu worlds=%zu "
        "width %.4f -> %.4f in %.1f ms%s%s\n",
        cs.groups_total, cs.groups_unsafe, cs.groups_refined,
        cs.worlds_expanded, cs.mean_width_base, cs.mean_width_final,
        cs.compile_seconds * 1e3,
        cs.width_target_met ? "  [width target met]" : "",
        cs.budget_exhausted ? "  [budget exhausted]" : "");
    if (cs.propagation) {
      std::printf(
          "note: propagation scores rank tuples but are NOT sound "
          "probability bounds\n");
    }
    return 0;
  }

  switch (parsed->kind) {
    case ParsedQuery::Kind::kRelation: {
      auto result = EvaluatePlan(*parsed->plan, sources);
      if (!result.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     result.status().ToString().c_str());
        return 1;
      }
      auto marginals = DistinctMarginals(*result, sources);
      std::printf("%s: %zu distinct tuples\n",
                  result->safe ? "exact" : "dissociation bounds",
                  marginals.size());
      std::unordered_map<Tuple, double, TupleHash> freq;
      for (const ProbTuple& pt : oracle.marginals) {
        freq.emplace(pt.tuple, pt.prob);
      }
      for (const DistinctMarginal& m : marginals) {
        std::printf("  %s  p=%s", m.tuple.ToString(result->schema).c_str(),
                    m.prob.ToString().c_str());
        if (with_oracle) {
          auto it = freq.find(m.tuple);
          std::printf("  oracle=%.4f", it == freq.end() ? 0.0 : it->second);
        }
        std::printf("\n");
      }
      return 0;
    }
    case ParsedQuery::Kind::kExists: {
      auto exists = EvaluateExists(*parsed->plan, sources);
      if (!exists.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     exists.status().ToString().c_str());
        return 1;
      }
      std::printf("P(result non-empty) = %s  (%s)\n",
                  exists->prob.ToString().c_str(),
                  exists->safe ? "exact" : "dissociation bounds");
      if (with_oracle) {
        std::printf("oracle (%zu worlds):  %.4f\n", oracle.trials,
                    oracle.exists);
      }
      return 0;
    }
    case ParsedQuery::Kind::kCount: {
      auto count = EvaluateCount(*parsed->plan, sources);
      if (!count.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     count.status().ToString().c_str());
        return 1;
      }
      std::printf("E[count] = %s  (%s)\n",
                  count->expected.ToString().c_str(),
                  count->safe ? "exact" : "dissociation bounds");
      if (count->has_distribution) {
        for (size_t k = 0; k < count->distribution.size() && k < 16; ++k) {
          if (count->distribution[k] < 1e-9) continue;
          std::printf("  P(count=%zu) = %.6f\n", k,
                      count->distribution[k]);
        }
      }
      if (with_oracle) {
        std::printf("oracle (%zu worlds):  E[count] = %.4f\n",
                    oracle.trials, oracle.expected_count);
      }
      return 0;
    }
  }
  return 1;
}

int CmdQuery(const std::map<std::string, std::vector<std::string>>& flags) {
  const auto Usage = [] { return UsageFor("query"); };
  std::string model_path = GetFlag(flags, "model", "");
  std::string where = GetFlag(flags, "where", "");
  std::string plan_text = GetFlag(flags, "plan", "");
  std::string plan_file = GetFlag(flags, "plan-file", "");
  if (!plan_file.empty()) {
    if (!plan_text.empty()) {
      std::fprintf(stderr, "--plan and --plan-file are exclusive\n");
      return Usage();
    }
    auto text = ReadFile(plan_file);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
      return 1;
    }
    plan_text = std::string(Trim(*text));
    if (plan_text.empty()) {
      std::fprintf(stderr, "plan file %s is empty\n", plan_file.c_str());
      return 2;
    }
  }
  // Exactly one of --where (lazy path) / --plan (extensional algebra).
  if (model_path.empty() || where.empty() == plan_text.empty()) {
    return Usage();
  }
  auto model = LoadModelFile(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }
  auto rel = LoadInput(flags);
  if (!rel.ok()) {
    std::fprintf(stderr, "error: %s\n", rel.status().ToString().c_str());
    return 1;
  }

  if (!plan_text.empty()) {
    return RunPlanQuery(*model, *rel, flags, plan_text);
  }

  // Parse the conjunction against the *model's* schema (the source of
  // truth for value ids).
  Predicate pred;
  for (const std::string& atom : Split(where, ',')) {
    auto kv = Split(atom, '=');
    if (kv.size() != 2) return Usage();
    AttrId attr = 0;
    if (!model->schema().FindAttr(std::string(Trim(kv[0])), &attr)) {
      std::fprintf(stderr, "unknown attribute: %s\n", kv[0].c_str());
      return 2;
    }
    ValueId value =
        model->schema().attr(attr).Find(std::string(Trim(kv[1])));
    if (value == kMissingValue) {
      std::fprintf(stderr, "unknown value '%s' for attribute %s\n",
                   kv[1].c_str(), kv[0].c_str());
      return 2;
    }
    pred = pred.And(Predicate::Eq(attr, value));
  }

  GibbsOptions gibbs;
  int64_t samples = 0;
  EngineOptions engine_opts;
  size_t batch_size = 0;
  if (!GetIntFlag(flags, "samples", 2000, &samples) ||
      !ParseEngineFlags(flags, &engine_opts, &batch_size)) {
    return Usage();
  }
  gibbs.samples = static_cast<size_t>(samples);

  Engine engine(&*model, engine_opts);
  LazyDeriver lazy(&engine, &*rel, gibbs);
  // Pre-derive the rows this query cannot decide, batched across the
  // engine's pool; the per-row queries below then hit the memo.
  auto prefetched = lazy.MaterializeUncertain(pred, batch_size);
  if (!prefetched.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 prefetched.status().ToString().c_str());
    return 1;
  }
  auto count = lazy.ExpectedCount(pred);
  auto exists = lazy.ProbExists(pred);
  if (!count.ok() || !exists.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 (!count.ok() ? count.status() : exists.status())
                     .ToString()
                     .c_str());
    return 1;
  }
  std::printf("WHERE %s\n", pred.ToString(model->schema()).c_str());
  std::printf("  expected matching rows: %.4f of %zu\n", *count,
              rel->num_rows());
  std::printf("  P(at least one match):  %.6f\n", *exists);
  std::printf("  tuples materialized:    %zu (short-circuited %zu)\n",
              lazy.materialized(), lazy.short_circuits());
  return 0;
}

void PrintCommitStats(const char* what, const CommitStats& stats) {
  std::printf(
      "%s: epoch %llu — re-inferred %zu/%zu tuples "
      "(%zu/%zu components), reused %zu/%zu blocks, %.3fs\n",
      what, static_cast<unsigned long long>(stats.epoch),
      stats.tuples_reinferred, stats.tuples_total,
      stats.components_reinferred, stats.components_total,
      stats.blocks_reused, stats.blocks_total, stats.wall_seconds);
}

// Shared by update and serve: restore `store` from the snapshot file
// when it exists, otherwise derive epoch 1 from --in. Existence is
// checked explicitly — an existing but unreadable/corrupt file must
// fail loudly, never fall through to a fresh derivation that would
// overwrite the epoch history. Returns 0 or the process exit code.
int RestoreOrDerive(BidStore* store,
                    const std::map<std::string, std::vector<std::string>>&
                        flags,
                    const std::string& snapshot_path) {
  std::error_code probe_ec;
  bool have_snapshot = std::filesystem::exists(snapshot_path, probe_ec);
  if (probe_ec) {
    std::fprintf(stderr, "error probing %s: %s\n", snapshot_path.c_str(),
                 probe_ec.message().c_str());
    return 1;
  }
  if (have_snapshot) {
    Status st = store->Restore(snapshot_path);
    if (!st.ok()) {
      std::cerr << "error restoring " << snapshot_path << ": " << st
                << "\n";
      return 1;
    }
    std::printf("restored %s at epoch %llu (%zu blocks)\n",
                snapshot_path.c_str(),
                static_cast<unsigned long long>(store->epoch()),
                store->snapshot()->database().num_blocks());
    if (flags.count("in") != 0) {
      std::fprintf(stderr,
                   "note: --in ignored — %s already holds epoch %llu; "
                   "delete the snapshot to re-derive from the CSV, or "
                   "describe the changes with --delta\n",
                   snapshot_path.c_str(),
                   static_cast<unsigned long long>(store->epoch()));
    }
    // The snapshot's saved derivation options supersede any flags (the
    // cached Δt values are only reusable under them) — say so instead
    // of silently overriding the user.
    for (const char* key : {"samples", "burn-in", "mode", "min-prob"}) {
      if (flags.count(key) != 0) {
        std::fprintf(stderr,
                     "note: --%s ignored — the snapshot's saved "
                     "derivation options take precedence (samples=%zu, "
                     "burn-in=%zu, mode=%s, min-prob=%g)\n",
                     key, store->options().workload.gibbs.samples,
                     store->options().workload.gibbs.burn_in,
                     SamplingModeName(store->options().mode),
                     store->options().min_prob);
        break;
      }
    }
  } else {
    auto rel = LoadInput(flags);
    if (!rel.ok()) {
      std::cerr << "error: " << rel.status() << " (no snapshot at "
                << snapshot_path
                << "; --in is required to derive the first epoch)\n";
      return 1;
    }
    auto committed = store->Commit(std::move(rel).value());
    if (!committed.ok()) {
      std::cerr << "error: " << committed.status() << "\n";
      return 1;
    }
    PrintCommitStats("derived", *committed);
  }
  return 0;
}

// Shared by update and serve: attach the write-ahead log when --wal-dir
// is given, replaying any records the snapshot missed. Returns 0, or the
// process exit code on failure. `*wal_enabled` reports whether a WAL is
// now attached (the final save must Checkpoint instead of SaveSnapshot).
int OpenWalFromFlags(BidStore* store,
                     const std::map<std::string, std::vector<std::string>>&
                         flags,
                     bool* wal_enabled) {
  *wal_enabled = false;
  std::string wal_dir = GetFlag(flags, "wal-dir", "");
  std::string sync_text = GetFlag(flags, "sync-mode", "group");
  if (wal_dir.empty()) {
    if (flags.count("sync-mode") != 0) {
      std::fprintf(stderr, "error: --sync-mode requires --wal-dir\n");
      return 2;
    }
    return 0;
  }
  auto mode = ParseWalSyncMode(sync_text);
  if (!mode.ok()) {
    std::fprintf(stderr, "error: %s\n", mode.status().ToString().c_str());
    return 2;
  }
  auto recovered = store->OpenWal(wal_dir, *mode);
  if (!recovered.ok()) {
    std::fprintf(stderr, "error opening WAL %s: %s\n", wal_dir.c_str(),
                 recovered.status().ToString().c_str());
    return 1;
  }
  *wal_enabled = true;
  std::printf("WAL %s (sync-mode %s): replayed %llu records, skipped "
              "%llu%s -> epoch %llu\n",
              wal_dir.c_str(), WalSyncModeName(*mode),
              static_cast<unsigned long long>(recovered->replayed_records),
              static_cast<unsigned long long>(recovered->skipped_records),
              recovered->torn_tail ? " (discarded a torn tail record)" : "",
              static_cast<unsigned long long>(store->epoch()));
  return 0;
}

// The final save: with a WAL, Checkpoint (atomic save + log compaction);
// without one, the plain snapshot write.
int SaveOrCheckpoint(BidStore* store, const std::string& snapshot_path,
                     bool wal_enabled) {
  Status saved = wal_enabled ? store->Checkpoint(snapshot_path)
                             : store->SaveSnapshot(snapshot_path);
  if (!saved.ok()) {
    std::fprintf(stderr, "error saving snapshot: %s\n",
                 saved.ToString().c_str());
    return 1;
  }
  std::printf("saved epoch %llu -> %s%s\n",
              static_cast<unsigned long long>(store->epoch()),
              snapshot_path.c_str(),
              wal_enabled ? " (WAL compacted)" : "");
  return 0;
}

// Parses the store/engine flags shared by update and serve.
bool ParseStoreFlags(
    const std::map<std::string, std::vector<std::string>>& flags,
    StoreOptions* store_opts, EngineOptions* engine_opts) {
  int64_t threads = 0;
  if (!ParseGibbs(flags, &store_opts->workload, &store_opts->mode) ||
      !GetIntFlag(flags, "threads", 0, &threads) ||
      !GetDoubleFlag(flags, "min-prob", 0.0, &store_opts->min_prob)) {
    return false;
  }
  engine_opts->num_threads = static_cast<size_t>(threads);
  return true;
}

// Versioned-store maintenance: restore-or-derive, optionally apply a
// delta with incremental re-derivation, save the new epoch back.
int CmdUpdate(const std::map<std::string, std::vector<std::string>>& flags) {
  const auto Usage = [] { return UsageFor("update"); };
  std::string model_path = GetFlag(flags, "model", "");
  std::string snapshot_path = GetFlag(flags, "snapshot", "");
  if (model_path.empty() || snapshot_path.empty()) return Usage();
  auto model = LoadModelFile(model_path);
  if (!model.ok()) {
    std::fprintf(stderr, "error: %s\n", model.status().ToString().c_str());
    return 1;
  }

  StoreOptions store_opts;
  EngineOptions engine_opts;
  if (!ParseStoreFlags(flags, &store_opts, &engine_opts)) return Usage();

  Engine engine(&*model, engine_opts);
  BidStore store(&engine, store_opts);
  const int rc = RestoreOrDerive(&store, flags, snapshot_path);
  if (rc != 0) return rc;
  bool wal_enabled = false;
  const int wal_rc = OpenWalFromFlags(&store, flags, &wal_enabled);
  if (wal_rc != 0) return wal_rc;

  std::string delta_path = GetFlag(flags, "delta", "");
  if (!delta_path.empty()) {
    auto text = ReadFile(delta_path);
    if (!text.ok()) {
      std::fprintf(stderr, "error: %s\n", text.status().ToString().c_str());
      return 1;
    }
    auto delta = ParseDeltaCsv(store.snapshot()->base().schema(), *text);
    if (!delta.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   delta.status().ToString().c_str());
      return 1;
    }
    auto committed = store.ApplyDelta(*delta);
    if (!committed.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   committed.status().ToString().c_str());
      return 1;
    }
    PrintCommitStats("applied delta", *committed);
    if (wal_enabled) {
      Status synced = store.SyncWal();
      if (!synced.ok()) {
        std::fprintf(stderr, "error: %s\n", synced.ToString().c_str());
        return 1;
      }
    }
  }

  return SaveOrCheckpoint(&store, snapshot_path, wal_enabled);
}

// Self-pipe for the serve drain: the signal handler may only call
// async-signal-safe functions, so it writes one byte and the serve loop,
// blocked on the pipe, does the actual Stop().
int g_shutdown_pipe[2] = {-1, -1};

extern "C" void HandleShutdownSignal(int) {
  const char byte = 1;
  (void)!write(g_shutdown_pipe[1], &byte, 1);
}

// Network serving: restore-or-derive like update, then serve the store
// over HTTP until SIGINT/SIGTERM, drain, and save the snapshot back.
int CmdServe(const std::map<std::string, std::vector<std::string>>& flags) {
  const auto Usage = [] { return UsageFor("serve"); };
  std::string model_path = GetFlag(flags, "model", "");
  std::string snapshot_path = GetFlag(flags, "snapshot", "");
  if (model_path.empty() || snapshot_path.empty()) return Usage();
  auto model = LoadModelFile(model_path);
  if (!model.ok()) {
    std::cerr << "error: " << model.status() << "\n";
    return 1;
  }

  StoreOptions store_opts;
  EngineOptions engine_opts;
  int64_t port = 0;
  int64_t max_inflight = 0;
  double trace_sample = 0.0;
  double slow_query_ms = 250.0;
  if (!ParseStoreFlags(flags, &store_opts, &engine_opts) ||
      !GetIntFlag(flags, "port", 8080, &port) || port > 65535 ||
      !GetIntFlag(flags, "max-inflight", 64, &max_inflight) ||
      max_inflight == 0 ||
      !GetDoubleFlag(flags, "trace-sample", 0.0, &trace_sample) ||
      trace_sample < 0.0 || trace_sample > 1.0 ||
      !GetDoubleFlag(flags, "slow-query-ms", 250.0, &slow_query_ms)) {
    return Usage();
  }

  // Logging is configured before anything that might emit a record.
  LogOptions log_opts;
  const std::string log_spec = GetFlag(flags, "log-level", "info");
  if (Status parsed_spec = ParseLogLevelSpec(log_spec, &log_opts);
      !parsed_spec.ok()) {
    std::fprintf(stderr, "error: %s\n", parsed_spec.ToString().c_str());
    return Usage();
  }
  const std::string log_format = GetFlag(flags, "log-format", "text");
  if (log_format == "json") {
    log_opts.json = true;
  } else if (log_format != "text") {
    std::fprintf(stderr, "error: --log-format must be text or json\n");
    return Usage();
  }
  Logger::Global().Configure(log_opts);

  Engine engine(&*model, engine_opts);
  BidStore store(&engine, store_opts);
  const int rc = RestoreOrDerive(&store, flags, snapshot_path);
  if (rc != 0) return rc;
  bool wal_enabled = false;
  const int wal_rc = OpenWalFromFlags(&store, flags, &wal_enabled);
  if (wal_rc != 0) return wal_rc;

  // The drain pipe and handlers go in before the listen socket opens, so
  // a signal racing the start-up is never lost.
  if (::pipe(g_shutdown_pipe) != 0) {
    std::fprintf(stderr, "error: pipe: %s\n", std::strerror(errno));
    return 1;
  }
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = HandleShutdownSignal;
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);

  ServerOptions server_opts;
  server_opts.port = static_cast<uint16_t>(port);
  server_opts.max_inflight = static_cast<size_t>(max_inflight);
  server_opts.trace_sample = trace_sample;
  HttpServer server(server_opts);
  StoreServiceOptions service_opts;
  service_opts.slow_query_ms = slow_query_ms;
  StoreService service(&store, service_opts);
  service.Attach(&server);
  Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "error starting server: " << started << "\n";
    return 1;
  }
  std::printf(
      "serving epoch %llu on http://127.0.0.1:%u  "
      "(engine threads=%zu, max-inflight=%zu)\n"
      "endpoints: POST /query  POST /update  GET /snapshot  "
      "GET /healthz  GET /metrics  GET /debug/traces  GET /debug/slow  "
      "GET /debug/statements\n"
      "Ctrl-C drains and saves the snapshot\n",
      static_cast<unsigned long long>(store.epoch()), server.port(),
      engine.num_threads(), server_opts.max_inflight);
  std::fflush(stdout);

  char byte = 0;
  while (read(g_shutdown_pipe[0], &byte, 1) < 0 && errno == EINTR) {
  }
  std::fprintf(stderr, "shutdown signal received: draining...\n");
  server.Stop();
  std::printf("drained: %llu requests served, %llu shed by admission "
              "control\n",
              static_cast<unsigned long long>(server.requests_served()),
              static_cast<unsigned long long>(server.requests_shed()));

  return SaveOrCheckpoint(&store, snapshot_path, wal_enabled);
}

// Live workload view: polls /debug/statements on a serving process and
// renders the TSV digests as an aligned table, `top`-style.
int CmdTop(const std::map<std::string, std::vector<std::string>>& flags) {
  const auto Usage = [] { return UsageFor("top"); };
  int64_t port = 0;
  int64_t limit = 0;
  int64_t interval_ms = 0;
  int64_t iterations = 0;
  std::string sort = GetFlag(flags, "sort", "total_time");
  if (!GetIntFlag(flags, "port", 8080, &port) || port > 65535 ||
      !GetIntFlag(flags, "limit", 20, &limit) ||
      !GetIntFlag(flags, "interval-ms", 2000, &interval_ms) ||
      !GetIntFlag(flags, "iterations", 0, &iterations)) {
    return Usage();
  }
  if (sort != "total_time" && sort != "calls" && sort != "p99" &&
      sort != "width") {
    std::fprintf(stderr,
                 "error: --sort must be total_time, calls, p99, or width\n");
    return Usage();
  }
  const std::string target = "/debug/statements?format=tsv&sort=" + sort +
                             "&limit=" + std::to_string(limit);

  HttpClient client;
  for (int64_t round = 0; iterations == 0 || round < iterations; ++round) {
    if (!client.connected()) {
      Status connected =
          client.Connect("127.0.0.1", static_cast<uint16_t>(port));
      if (!connected.ok()) {
        std::fprintf(stderr, "error: connect 127.0.0.1:%lld: %s\n",
                     static_cast<long long>(port),
                     connected.ToString().c_str());
        return 1;
      }
    }
    auto response = client.RoundTrip("GET", target);
    if (!response.ok()) {
      // A serve restart closes the connection; reconnect next round.
      client.Close();
      std::fprintf(stderr, "error: %s\n",
                   response.status().ToString().c_str());
      if (iterations != 0 && round + 1 >= iterations) return 1;
      std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
      continue;
    }
    if (response->status != 200) {
      std::fprintf(stderr, "error: server answered %d: %s\n",
                   response->status, response->body.c_str());
      return 1;
    }

    // TSV -> table: first line is the header, `normalized` is last so
    // the digest text (which may be wide) does not break alignment.
    std::vector<std::string> lines = Split(response->body, '\n');
    if (lines.empty()) {
      std::fprintf(stderr, "error: empty /debug/statements response\n");
      return 1;
    }
    std::vector<std::string> headers;
    for (const std::string& h : Split(lines[0], '\t')) headers.push_back(h);
    TablePrinter table(headers);
    size_t digests = 0;
    for (size_t i = 1; i < lines.size(); ++i) {
      if (lines[i].empty()) continue;
      table.AddRow(Split(lines[i], '\t'));
      ++digests;
    }
    if (iterations != 1) {
      std::printf("\x1b[H\x1b[2J");  // cursor home + clear, top-style
    }
    std::printf("mrsl top — 127.0.0.1:%lld  sort=%s  digests=%zu\n\n%s",
                static_cast<long long>(port), sort.c_str(), digests,
                table.ToString().c_str());
    std::fflush(stdout);
    if (iterations != 0 && round + 1 >= iterations) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
  return 0;
}

int CmdTune(const std::map<std::string, std::vector<std::string>>& flags) {
  const auto Usage = [] { return UsageFor("tune"); };
  auto rel = LoadInput(flags);
  if (!rel.ok()) {
    std::fprintf(stderr, "error: %s\n", rel.status().ToString().c_str());
    return 1;
  }
  TuningOptions opts;
  std::string cands = GetFlag(flags, "candidates", "");
  if (!cands.empty()) {
    opts.candidates.clear();
    for (const std::string& c : Split(cands, ',')) {
      double v = 0.0;
      if (!ParseDouble(c, &v) || v <= 0.0 || v > 1.0) return Usage();
      opts.candidates.push_back(v);
    }
  }
  if (!GetDoubleFlag(flags, "holdout", 0.2, &opts.holdout_fraction)) {
    return Usage();
  }
  auto result = TuneSupportThreshold(*rel, opts);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  std::printf("%-10s %-10s %-8s %-10s\n", "support", "log-loss", "top-1",
              "meta-rules");
  for (const CandidateScore& s : result->scores) {
    std::printf("%-10.4f %-10.4f %-8.3f %-10zu%s\n", s.support, s.log_loss,
                s.top1, s.model_size,
                s.support == result->best_support ? "  <- best" : "");
  }
  std::printf("recommended: --support %g\n", result->best_support);
  return 0;
}

}  // namespace
}  // namespace mrsl

int main(int argc, char** argv) {
  using namespace mrsl;
  if (argc < 2) return Usage();
  // The flags each subcommand accepts; anything else is a usage error.
  static const std::map<std::string, std::set<std::string>> kAllowedFlags = {
      {"learn", {"in", "out", "support", "max-itemsets", "discretize"}},
      {"stats", {"model"}},
      {"infer",
       {"model", "in", "out", "samples", "burn-in", "mode", "threads",
        "batch-size"}},
      {"repair",
       {"model", "in", "out", "min-confidence", "samples", "burn-in",
        "mode", "threads", "batch-size"}},
      {"query",
       {"model", "in", "where", "plan", "plan-file", "oracle", "min-prob",
        "samples", "threads", "batch-size", "width", "budget-ms",
        "propagation"}},
      {"update",
       {"model", "in", "delta", "snapshot", "wal-dir", "sync-mode",
        "samples", "burn-in", "mode", "min-prob", "threads"}},
      {"serve",
       {"model", "in", "snapshot", "port", "max-inflight", "wal-dir",
        "sync-mode", "samples", "burn-in", "mode", "min-prob", "threads",
        "trace-sample", "slow-query-ms", "log-level", "log-format"}},
      {"top", {"port", "sort", "limit", "interval-ms", "iterations"}},
      {"tune", {"in", "candidates", "holdout"}},
  };
  std::string cmd = argv[1];
  // An explicit help request succeeds on stdout, same as the
  // per-subcommand form below.
  if (cmd == "--help" || cmd == "-h" || cmd == "help") {
    PrintGlobalUsage(stdout);
    return 0;
  }
  auto allowed = kAllowedFlags.find(cmd);
  if (allowed == kAllowedFlags.end()) return Usage();
  // `mrsl <cmd> --help` prints that subcommand's flags and succeeds.
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--help") == 0 ||
        std::strcmp(argv[i], "-h") == 0) {
      PrintCmdUsage(cmd, stdout);
      return 0;
    }
  }
  std::map<std::string, std::vector<std::string>> flags;
  if (!ParseFlags(argc, argv, 2, allowed->second, &flags)) {
    return UsageFor(cmd);
  }
  if (cmd == "learn") return CmdLearn(flags);
  if (cmd == "stats") return CmdStats(flags);
  if (cmd == "infer") return CmdInfer(flags);
  if (cmd == "repair") return CmdRepair(flags);
  if (cmd == "query") return CmdQuery(flags);
  if (cmd == "update") return CmdUpdate(flags);
  if (cmd == "serve") return CmdServe(flags);
  if (cmd == "top") return CmdTop(flags);
  if (cmd == "tune") return CmdTune(flags);
  return Usage();  // a command in kAllowedFlags must also dispatch here
}
