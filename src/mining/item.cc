#include "mining/item.h"

namespace mrsl {

uint64_t HashItems(const ItemVec& items) {
  uint64_t h = 1469598103934665603ULL;
  for (const Item& it : items) {
    uint64_t p = it.Pack();
    for (int shift = 0; shift < 64; shift += 8) {
      h ^= (p >> shift) & 0xFF;
      h *= 1099511628211ULL;
    }
  }
  return h;
}

AttrMask ItemsMask(const ItemVec& items) {
  AttrMask mask = 0;
  for (const Item& it : items) mask |= AttrMask{1} << it.attr;
  return mask;
}

}  // namespace mrsl
