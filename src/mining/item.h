// Item: an attribute-value pair, the unit of frequent-itemset mining.
// An itemset in this setting is the complete portion of a tuple (one value
// per attribute at most), as in Sec. II of the paper.

#ifndef MRSL_MINING_ITEM_H_
#define MRSL_MINING_ITEM_H_

#include <cstdint>
#include <vector>

#include "relational/value.h"

namespace mrsl {

/// One attribute-value assignment.
struct Item {
  AttrId attr = 0;
  ValueId value = 0;

  /// Packs into a single ordering/hashing key (attr major, value minor).
  uint64_t Pack() const {
    return (static_cast<uint64_t>(attr) << 32) |
           static_cast<uint32_t>(value);
  }

  friend bool operator==(const Item& a, const Item& b) {
    return a.attr == b.attr && a.value == b.value;
  }
  friend bool operator<(const Item& a, const Item& b) {
    return a.Pack() < b.Pack();
  }
};

/// A sorted set of items over pairwise-distinct attributes.
using ItemVec = std::vector<Item>;

/// FNV-1a hash over the packed items of a *sorted* item vector.
uint64_t HashItems(const ItemVec& items);

/// Bitmask of the attributes mentioned by `items`.
AttrMask ItemsMask(const ItemVec& items);

}  // namespace mrsl

#endif  // MRSL_MINING_ITEM_H_
