// Apriori frequent-itemset mining (Agrawal & Srikant, VLDB'94) over
// attribute-value items, as invoked by ComputeFreqItemsets in Algorithm 1.
//
// Support counting uses vertical bitmap TID-sets: the support of a
// candidate is the popcount of the AND of its generating itemsets'
// bitmaps. As in the paper (Sec. III), mining stops after round k when no
// new frequent itemset is found OR more than `max_itemsets` itemsets are
// found at that round (the round's results are kept) — this bounds model
// building time with little accuracy cost.

#ifndef MRSL_MINING_APRIORI_H_
#define MRSL_MINING_APRIORI_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "mining/frequent_itemsets.h"
#include "relational/relation.h"
#include "util/result.h"

namespace mrsl {

/// Tuning knobs for Apriori.
struct AprioriOptions {
  /// Minimum relative support θ for an itemset to be recorded.
  double support_threshold = 0.02;

  /// Round cap: stop after any round that yields more than this many
  /// frequent itemsets (paper default 1000).
  size_t max_itemsets = 1000;

  /// Include the empty itemset (support 1) — the body of the top-level
  /// meta-rule P(a) in every MRSL.
  bool include_empty_itemset = true;
};

/// Per-run statistics, used by the Fig 4 experiments and tests.
struct AprioriStats {
  size_t rounds = 0;                 // number of candidate rounds executed
  bool capped = false;               // true if the max_itemsets cap fired
  std::vector<size_t> per_round;     // frequent itemsets found per round
  uint64_t candidates_counted = 0;   // candidates whose support was counted
};

/// Mines frequent itemsets from the rows of `rel` selected by `row_indices`
/// (normally the complete part Rc). Fails on empty input or an invalid
/// threshold. `stats` may be null.
Result<FrequentItemsets> MineFrequentItemsets(
    const Relation& rel, const std::vector<uint32_t>& row_indices,
    const AprioriOptions& options, AprioriStats* stats = nullptr);

}  // namespace mrsl

#endif  // MRSL_MINING_APRIORI_H_
