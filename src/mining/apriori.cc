// Levelwise Apriori with vertical TID bitmaps: round 1 builds one bitmap
// per (attr, value) pair; round k joins frequent (k-1)-itemsets sharing a
// (k-2)-prefix (the frontier stays lexicographically sorted, so the inner
// join loop can break on first prefix divergence) and counts support as
// the popcount of the two parents' AND — no data re-scan after round 1.
// The max_itemsets cap is checked per round, so one oversized round may
// complete before mining stops (reported via AprioriStats::capped).

#include "mining/apriori.h"

#include <cstddef>
#include <algorithm>
#include <cmath>

#include "util/bitvector.h"

namespace mrsl {
namespace {

// A candidate/frequent itemset of the current round with its TID bitmap.
struct RoundEntry {
  ItemVec items;
  BitVector tids;
  uint64_t count;
};

}  // namespace

Result<FrequentItemsets> MineFrequentItemsets(
    const Relation& rel, const std::vector<uint32_t>& row_indices,
    const AprioriOptions& options, AprioriStats* stats) {
  if (options.support_threshold <= 0.0 || options.support_threshold > 1.0) {
    return Status::InvalidArgument("support threshold must be in (0, 1]");
  }
  if (row_indices.empty()) {
    return Status::FailedPrecondition("no rows to mine (empty Rc)");
  }
  const size_t n = row_indices.size();
  // count/n >= theta, with a small epsilon for floating-point slack.
  const uint64_t min_count = static_cast<uint64_t>(std::max(
      1.0, std::ceil(options.support_threshold * static_cast<double>(n) -
                     1e-9)));

  AprioriStats local_stats;
  FrequentItemsets result(n);
  if (options.include_empty_itemset) {
    result.Add(ItemVec{}, n);
  }

  // Round 1: one bitmap per (attr, value) pair.
  const Schema& schema = rel.schema();
  std::vector<RoundEntry> frontier;
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const size_t card = schema.attr(a).cardinality();
    std::vector<BitVector> maps(card, BitVector(n));
    for (size_t r = 0; r < n; ++r) {
      ValueId v = rel.row(row_indices[r]).value(a);
      if (v != kMissingValue) maps[static_cast<size_t>(v)].Set(r);
    }
    for (size_t v = 0; v < card; ++v) {
      ++local_stats.candidates_counted;
      uint64_t count = maps[v].Count();
      if (count >= min_count) {
        frontier.push_back(RoundEntry{
            ItemVec{Item{a, static_cast<ValueId>(v)}}, std::move(maps[v]),
            count});
      }
    }
  }
  local_stats.rounds = 1;
  local_stats.per_round.push_back(frontier.size());
  for (const auto& e : frontier) result.Add(e.items, e.count);

  bool capped = frontier.size() > options.max_itemsets;

  // Rounds k >= 2: join (k-1)-itemsets sharing a (k-2)-prefix.
  while (!capped && !frontier.empty()) {
    // The frontier is sorted lexicographically by construction; candidates
    // join entries i < j with equal prefixes and last items on distinct
    // attributes.
    std::vector<RoundEntry> next;
    for (size_t i = 0; i < frontier.size(); ++i) {
      for (size_t j = i + 1; j < frontier.size(); ++j) {
        const ItemVec& a = frontier[i].items;
        const ItemVec& b = frontier[j].items;
        if (!std::equal(a.begin(), a.end() - 1, b.begin())) {
          // Sorted frontier: once prefixes diverge for j, they diverge for
          // all larger j as well.
          break;
        }
        if (a.back().attr == b.back().attr) continue;
        ItemVec cand = a;
        cand.push_back(b.back());
        ++local_stats.candidates_counted;
        uint64_t count = frontier[i].tids.AndCount(frontier[j].tids);
        if (count >= min_count) {
          next.push_back(RoundEntry{std::move(cand),
                                    frontier[i].tids.And(frontier[j].tids),
                                    count});
        }
      }
    }
    if (next.empty()) break;
    ++local_stats.rounds;
    local_stats.per_round.push_back(next.size());
    for (const auto& e : next) result.Add(e.items, e.count);
    capped = next.size() > options.max_itemsets;
    frontier = std::move(next);
  }

  local_stats.capped = capped;
  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace mrsl
