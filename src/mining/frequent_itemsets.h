// FrequentItemsets: the output of Apriori — all itemsets whose support
// passes the threshold, with exact match counts, indexed for O(1) lookup
// by the rule-generation stage.

#ifndef MRSL_MINING_FREQUENT_ITEMSETS_H_
#define MRSL_MINING_FREQUENT_ITEMSETS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "mining/item.h"

namespace mrsl {

/// Sentinel for "itemset not frequent / not found".
inline constexpr int32_t kNoItemset = -1;

/// One frequent itemset and its match count over the mined rows.
struct ItemsetEntry {
  ItemVec items;   // sorted, pairwise-distinct attributes
  uint64_t count;  // number of rows containing every item
};

/// Indexed collection of frequent itemsets.
class FrequentItemsets {
 public:
  FrequentItemsets() = default;

  /// Creates the collection; `num_rows` is the size of the mined set Rc.
  explicit FrequentItemsets(uint64_t num_rows) : num_rows_(num_rows) {}

  /// Adds an entry (items must be sorted); returns its index.
  int32_t Add(ItemVec items, uint64_t count);

  /// Finds the index of an itemset (sorted items), or kNoItemset.
  int32_t Find(const ItemVec& items) const;

  /// Entry accessors.
  size_t size() const { return entries_.size(); }
  const ItemsetEntry& entry(int32_t idx) const {
    return entries_[static_cast<size_t>(idx)];
  }

  /// Relative support of entry `idx` = count / |Rc|.
  double Support(int32_t idx) const;

  uint64_t num_rows() const { return num_rows_; }

  /// Indices of all entries with exactly `k` items.
  std::vector<int32_t> EntriesOfSize(size_t k) const;

  /// Largest itemset size present.
  size_t MaxSize() const;

 private:
  uint64_t num_rows_ = 0;
  std::vector<ItemsetEntry> entries_;
  std::unordered_map<uint64_t, std::vector<int32_t>> by_hash_;
};

}  // namespace mrsl

#endif  // MRSL_MINING_FREQUENT_ITEMSETS_H_
