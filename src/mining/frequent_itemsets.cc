// Entries are stored append-only in mining order; Find goes through a
// hash-bucket index (HashItems) with an exact ItemVec compare to resolve
// collisions, so lookups stay O(1) without trusting the 64-bit hash.

#include "mining/frequent_itemsets.h"

#include <cstddef>

namespace mrsl {

int32_t FrequentItemsets::Add(ItemVec items, uint64_t count) {
  int32_t idx = static_cast<int32_t>(entries_.size());
  uint64_t h = HashItems(items);
  entries_.push_back(ItemsetEntry{std::move(items), count});
  by_hash_[h].push_back(idx);
  return idx;
}

int32_t FrequentItemsets::Find(const ItemVec& items) const {
  auto it = by_hash_.find(HashItems(items));
  if (it == by_hash_.end()) return kNoItemset;
  for (int32_t idx : it->second) {
    if (entries_[static_cast<size_t>(idx)].items == items) return idx;
  }
  return kNoItemset;
}

double FrequentItemsets::Support(int32_t idx) const {
  if (num_rows_ == 0) return 0.0;
  return static_cast<double>(entry(idx).count) /
         static_cast<double>(num_rows_);
}

std::vector<int32_t> FrequentItemsets::EntriesOfSize(size_t k) const {
  std::vector<int32_t> out;
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].items.size() == k) {
      out.push_back(static_cast<int32_t>(i));
    }
  }
  return out;
}

size_t FrequentItemsets::MaxSize() const {
  size_t m = 0;
  for (const auto& e : entries_) {
    if (e.items.size() > m) m = e.items.size();
  }
  return m;
}

}  // namespace mrsl
