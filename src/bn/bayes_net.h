// BayesNet: a topology plus conditional probability tables; the generative
// substrate of the experimental framework (Sec VI-A). Supports random
// instantiation (the "BN Instance Generator"), forward sampling (the
// "BN Sampler", Koller & Friedman Sec. 12.1), joint probability
// evaluation, and text serialization.

#ifndef MRSL_BN_BAYES_NET_H_
#define MRSL_BN_BAYES_NET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "bn/topology.h"
#include "relational/relation.h"
#include "relational/tuple.h"
#include "util/mixed_radix.h"
#include "util/result.h"
#include "util/rng.h"

namespace mrsl {

/// A fully parameterized discrete Bayesian network.
class BayesNet {
 public:
  BayesNet() = default;

  /// Creates a network with explicit CPTs. cpts[i] has one row per parent
  /// configuration (mixed-radix over parents(i) in listed order) and
  /// card(i) columns; rows must be positive and sum to 1.
  static Result<BayesNet> Create(Topology topology,
                                 std::vector<std::vector<double>> cpts);

  /// Randomly instantiates CPTs for `topology`: each CPT row is a draw
  /// from Dirichlet(alpha, ..., alpha). Smaller alpha yields more skewed
  /// (more predictable) distributions; the framework default is 1.0
  /// (uniform over the simplex).
  static BayesNet RandomInstance(const Topology& topology, Rng* rng,
                                 double alpha = 1.0);

  const Topology& topology() const { return topology_; }
  size_t num_vars() const { return topology_.num_vars(); }

  /// P(var = value | parents = their values in `assignment`).
  /// `assignment` must assign every parent of `var`.
  double CondProb(AttrId var, ValueId value,
                  const std::vector<ValueId>& assignment) const;

  /// Joint probability of a complete assignment.
  double JointProb(const std::vector<ValueId>& assignment) const;

  /// Draws one complete tuple by forward sampling.
  Tuple ForwardSample(Rng* rng) const;

  /// Draws `n` tuples into a fresh Relation whose schema mirrors the
  /// network (labels "v0".."v{card-1}").
  Relation SampleRelation(size_t n, Rng* rng) const;

  /// Schema mirroring the network variables.
  Schema MakeSchema() const;

  /// Raw CPT of `var` (rows = parent configs, cols = values).
  const std::vector<double>& cpt(AttrId var) const { return cpts_[var]; }

  /// Serializes to a line-oriented text format.
  std::string ToText() const;

  /// Parses the ToText format.
  static Result<BayesNet> FromText(std::string_view text);

 private:
  size_t CptRow(AttrId var, const std::vector<ValueId>& assignment) const;

  Topology topology_;
  std::vector<std::vector<double>> cpts_;
  std::vector<MixedRadix> parent_codecs_;
};

}  // namespace mrsl

#endif  // MRSL_BN_BAYES_NET_H_
