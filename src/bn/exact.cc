// Two exact engines over dense sorted-variable factors: variable
// elimination with a greedy min-degree ordering (ExactConditionalVE), and
// brute-force enumeration of the hidden assignment space
// (ExactConditionalEnum). TrueDistribution — the benchmark ground-truth
// path, where the query is every unassigned variable — uses enumeration:
// with nothing to marginalize out, VE's factor products only add overhead
// at the paper's network sizes.

#include "bn/exact.h"

#include <cstddef>
#include <algorithm>
#include <cassert>
#include <set>

namespace mrsl {

Factor::Factor(std::vector<AttrId> vars, std::vector<uint32_t> cards)
    : vars_(std::move(vars)), cards_(cards), codec_(std::move(cards)) {
  assert(std::is_sorted(vars_.begin(), vars_.end()));
  values_.assign(codec_.Size(), 1.0);
}

Factor Factor::FromCpt(const BayesNet& bn, AttrId var) {
  const Topology& topo = bn.topology();
  std::vector<AttrId> vars = topo.parents(var);
  vars.push_back(var);
  std::sort(vars.begin(), vars.end());
  std::vector<uint32_t> cards;
  cards.reserve(vars.size());
  for (AttrId v : vars) cards.push_back(topo.card(v));
  Factor f(vars, cards);

  // Walk every cell of the factor and read the matching CPT entry.
  std::vector<ValueId> combo(vars.size());
  std::vector<ValueId> assignment(topo.num_vars(), kMissingValue);
  for (uint64_t code = 0; code < f.codec_.Size(); ++code) {
    f.codec_.DecodeInto(code, combo.data());
    for (size_t i = 0; i < vars.size(); ++i) assignment[vars[i]] = combo[i];
    f.values_[code] = bn.CondProb(var, assignment[var], assignment);
  }
  return f;
}

Factor Factor::Restrict(const Tuple& evidence) const {
  std::vector<AttrId> keep_vars;
  std::vector<uint32_t> keep_cards;
  std::vector<size_t> keep_pos;
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (evidence.value(vars_[i]) == kMissingValue) {
      keep_vars.push_back(vars_[i]);
      keep_cards.push_back(cards_[i]);
      keep_pos.push_back(i);
    }
  }
  if (keep_vars.size() == vars_.size()) return *this;

  Factor out(keep_vars, keep_cards);
  std::vector<ValueId> full(vars_.size());
  for (size_t i = 0; i < vars_.size(); ++i) {
    ValueId ev = evidence.value(vars_[i]);
    if (ev != kMissingValue) full[i] = ev;
  }
  std::vector<ValueId> sub(keep_vars.size());
  for (uint64_t code = 0; code < out.codec_.Size(); ++code) {
    out.codec_.DecodeInto(code, sub.data());
    for (size_t i = 0; i < keep_pos.size(); ++i) full[keep_pos[i]] = sub[i];
    out.values_[code] = values_[codec_.Encode(full)];
  }
  return out;
}

Factor Factor::Multiply(const Factor& other) const {
  std::vector<AttrId> union_vars;
  std::vector<uint32_t> union_cards;
  {
    size_t i = 0;
    size_t j = 0;
    while (i < vars_.size() || j < other.vars_.size()) {
      if (j >= other.vars_.size() ||
          (i < vars_.size() && vars_[i] < other.vars_[j])) {
        union_vars.push_back(vars_[i]);
        union_cards.push_back(cards_[i]);
        ++i;
      } else if (i >= vars_.size() || other.vars_[j] < vars_[i]) {
        union_vars.push_back(other.vars_[j]);
        union_cards.push_back(other.cards_[j]);
        ++j;
      } else {
        assert(cards_[i] == other.cards_[j]);
        union_vars.push_back(vars_[i]);
        union_cards.push_back(cards_[i]);
        ++i;
        ++j;
      }
    }
  }
  Factor out(union_vars, union_cards);

  // Positions of each operand's vars within the union.
  auto positions = [&](const std::vector<AttrId>& vs) {
    std::vector<size_t> pos(vs.size());
    for (size_t i = 0; i < vs.size(); ++i) {
      pos[i] = static_cast<size_t>(
          std::lower_bound(union_vars.begin(), union_vars.end(), vs[i]) -
          union_vars.begin());
    }
    return pos;
  };
  std::vector<size_t> pos_a = positions(vars_);
  std::vector<size_t> pos_b = positions(other.vars_);

  std::vector<ValueId> combo(union_vars.size());
  std::vector<ValueId> sub_a(vars_.size());
  std::vector<ValueId> sub_b(other.vars_.size());
  for (uint64_t code = 0; code < out.codec_.Size(); ++code) {
    out.codec_.DecodeInto(code, combo.data());
    for (size_t i = 0; i < pos_a.size(); ++i) sub_a[i] = combo[pos_a[i]];
    for (size_t i = 0; i < pos_b.size(); ++i) sub_b[i] = combo[pos_b[i]];
    double va = vars_.empty() ? values_[0] : values_[codec_.Encode(sub_a)];
    double vb = other.vars_.empty() ? other.values_[0]
                                    : other.values_[other.codec_.Encode(sub_b)];
    out.values_[code] = va * vb;
  }
  return out;
}

Factor Factor::SumOut(AttrId var) const {
  auto it = std::lower_bound(vars_.begin(), vars_.end(), var);
  assert(it != vars_.end() && *it == var);
  size_t drop = static_cast<size_t>(it - vars_.begin());

  std::vector<AttrId> keep_vars;
  std::vector<uint32_t> keep_cards;
  for (size_t i = 0; i < vars_.size(); ++i) {
    if (i == drop) continue;
    keep_vars.push_back(vars_[i]);
    keep_cards.push_back(cards_[i]);
  }
  Factor out(keep_vars, keep_cards);
  for (double& v : out.values_) v = 0.0;

  std::vector<ValueId> combo(vars_.size());
  std::vector<ValueId> sub(keep_vars.size());
  for (uint64_t code = 0; code < codec_.Size(); ++code) {
    codec_.DecodeInto(code, combo.data());
    size_t k = 0;
    for (size_t i = 0; i < vars_.size(); ++i) {
      if (i != drop) sub[k++] = combo[i];
    }
    uint64_t out_code = keep_vars.empty() ? 0 : out.codec_.Encode(sub);
    out.values_[out_code] += values_[code];
  }
  return out;
}

namespace {

Status ValidateQuery(const BayesNet& bn, const Tuple& evidence,
                     const std::vector<AttrId>& query) {
  if (query.empty()) return Status::InvalidArgument("empty query");
  if (evidence.num_attrs() != bn.num_vars()) {
    return Status::InvalidArgument("evidence arity mismatch");
  }
  for (AttrId q : query) {
    if (q >= bn.num_vars()) {
      return Status::InvalidArgument("query var out of range");
    }
    if (evidence.value(q) != kMissingValue) {
      return Status::InvalidArgument("query var also assigned in evidence");
    }
  }
  return Status::OK();
}

}  // namespace

Result<JointDist> ExactConditionalVE(const BayesNet& bn,
                                     const Tuple& evidence,
                                     std::vector<AttrId> query) {
  MRSL_RETURN_IF_ERROR(ValidateQuery(bn, evidence, query));
  std::sort(query.begin(), query.end());

  // Restrict all CPT factors by the evidence.
  std::vector<Factor> factors;
  for (AttrId v = 0; v < bn.num_vars(); ++v) {
    factors.push_back(Factor::FromCpt(bn, v).Restrict(evidence));
  }

  // Eliminate every unassigned non-query variable, smallest-degree first.
  std::set<AttrId> to_eliminate;
  for (AttrId v = 0; v < bn.num_vars(); ++v) {
    if (evidence.value(v) == kMissingValue &&
        !std::binary_search(query.begin(), query.end(), v)) {
      to_eliminate.insert(v);
    }
  }
  while (!to_eliminate.empty()) {
    // Greedy: pick the variable appearing in the fewest factors.
    AttrId best = *to_eliminate.begin();
    size_t best_deg = SIZE_MAX;
    for (AttrId v : to_eliminate) {
      size_t deg = 0;
      for (const Factor& f : factors) {
        if (std::binary_search(f.vars().begin(), f.vars().end(), v)) ++deg;
      }
      if (deg < best_deg) {
        best_deg = deg;
        best = v;
      }
    }
    to_eliminate.erase(best);

    Factor product({}, {});
    std::vector<Factor> remaining;
    for (Factor& f : factors) {
      if (std::binary_search(f.vars().begin(), f.vars().end(), best)) {
        product = product.Multiply(f);
      } else {
        remaining.push_back(std::move(f));
      }
    }
    remaining.push_back(product.SumOut(best));
    factors = std::move(remaining);
  }

  // Multiply what remains and normalize over the query variables.
  Factor product({}, {});
  for (const Factor& f : factors) product = product.Multiply(f);

  std::vector<uint32_t> cards;
  for (AttrId q : query) cards.push_back(bn.topology().card(q));
  JointDist dist(query, cards);

  // The remaining factor ranges exactly over the query vars (possibly in
  // the same sorted order); map cell by cell.
  assert(product.vars() == query);
  for (uint64_t code = 0; code < dist.size(); ++code) {
    dist.set_prob(code, product.value(code));
  }
  dist.Normalize();
  return dist;
}

Result<JointDist> ExactConditionalEnum(const BayesNet& bn,
                                       const Tuple& evidence,
                                       std::vector<AttrId> query) {
  MRSL_RETURN_IF_ERROR(ValidateQuery(bn, evidence, query));
  std::sort(query.begin(), query.end());

  // All unassigned vars, query first (their positions tracked separately).
  std::vector<AttrId> hidden;
  for (AttrId v = 0; v < bn.num_vars(); ++v) {
    if (evidence.value(v) == kMissingValue) hidden.push_back(v);
  }
  std::vector<uint32_t> hidden_cards;
  for (AttrId v : hidden) hidden_cards.push_back(bn.topology().card(v));
  MixedRadix hidden_codec(hidden_cards);

  std::vector<uint32_t> query_cards;
  for (AttrId q : query) query_cards.push_back(bn.topology().card(q));
  JointDist dist(query, query_cards);

  std::vector<size_t> query_pos;
  for (AttrId q : query) {
    query_pos.push_back(static_cast<size_t>(
        std::lower_bound(hidden.begin(), hidden.end(), q) - hidden.begin()));
  }

  std::vector<ValueId> assignment(evidence.values());
  std::vector<ValueId> hidden_combo(hidden.size());
  std::vector<ValueId> query_combo(query.size());
  for (uint64_t code = 0; code < hidden_codec.Size(); ++code) {
    hidden_codec.DecodeInto(code, hidden_combo.data());
    for (size_t i = 0; i < hidden.size(); ++i) {
      assignment[hidden[i]] = hidden_combo[i];
    }
    double p = bn.JointProb(assignment);
    for (size_t i = 0; i < query.size(); ++i) {
      query_combo[i] = hidden_combo[query_pos[i]];
    }
    dist.add_prob(dist.codec().Encode(query_combo), p);
  }
  dist.Normalize();
  return dist;
}

Result<JointDist> TrueDistribution(const BayesNet& bn, const Tuple& tuple) {
  std::vector<AttrId> query = tuple.MissingAttrs();
  // With query == all unassigned vars, enumeration needs no extra
  // marginalization and is the faster exact method at benchmark scales.
  return ExactConditionalEnum(bn, tuple, std::move(query));
}

}  // namespace mrsl
