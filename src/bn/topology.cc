// Create() validates arity/cardinality bounds and runs Kahn's algorithm
// once, caching the topological order every later consumer (sampling,
// depth, CPT row enumeration) reuses. The shape builders are all
// deterministic — Layered wires parents round-robin into the previous
// layer rather than randomly — so a topology is fully reproducible from
// its constructor arguments alone; only CPTs carry randomness.

#include "bn/topology.h"

#include <cstddef>
#include <algorithm>
#include <cassert>
#include <cstdio>
#include <limits>

namespace mrsl {
namespace {

std::vector<std::string> DefaultNames(size_t n) {
  std::vector<std::string> names(n);
  for (size_t i = 0; i < n; ++i) {
    char buf[24];
    std::snprintf(buf, sizeof(buf), "A%zu", i);
    names[i] = buf;
  }
  return names;
}

}  // namespace

Result<Topology> Topology::Create(std::vector<std::string> names,
                                  std::vector<uint32_t> cards,
                                  std::vector<std::vector<AttrId>> parents) {
  const size_t n = cards.size();
  if (names.size() != n || parents.size() != n) {
    return Status::InvalidArgument("names/cards/parents size mismatch");
  }
  if (n > kMaxAttributes) {
    return Status::InvalidArgument("too many variables");
  }
  for (uint32_t c : cards) {
    if (c < 2) return Status::InvalidArgument("cardinality must be >= 2");
  }
  for (size_t i = 0; i < n; ++i) {
    for (AttrId p : parents[i]) {
      if (p >= n) return Status::InvalidArgument("parent id out of range");
      if (p == i) return Status::InvalidArgument("self-loop");
    }
  }

  // Kahn's algorithm: detects cycles and yields a topological order.
  std::vector<size_t> indeg(n, 0);
  std::vector<std::vector<AttrId>> children(n);
  for (size_t i = 0; i < n; ++i) {
    indeg[i] = parents[i].size();
    for (AttrId p : parents[i]) children[p].push_back(static_cast<AttrId>(i));
  }
  std::vector<AttrId> order;
  std::vector<AttrId> queue;
  for (size_t i = 0; i < n; ++i) {
    if (indeg[i] == 0) queue.push_back(static_cast<AttrId>(i));
  }
  while (!queue.empty()) {
    AttrId v = queue.back();
    queue.pop_back();
    order.push_back(v);
    for (AttrId c : children[v]) {
      if (--indeg[c] == 0) queue.push_back(c);
    }
  }
  if (order.size() != n) return Status::InvalidArgument("graph has a cycle");

  Topology t;
  t.names_ = std::move(names);
  t.cards_ = std::move(cards);
  t.parents_ = std::move(parents);
  t.topo_order_ = std::move(order);
  return t;
}

size_t Topology::Depth() const {
  std::vector<size_t> depth(num_vars(), 0);
  size_t best = 0;
  for (AttrId v : topo_order_) {
    for (AttrId p : parents_[v]) {
      depth[v] = std::max(depth[v], depth[p] + 1);
    }
    best = std::max(best, depth[v]);
  }
  return best;
}

uint64_t Topology::DomainSize() const {
  uint64_t prod = 1;
  for (uint32_t c : cards_) {
    if (prod > std::numeric_limits<uint64_t>::max() / c) {
      return std::numeric_limits<uint64_t>::max();
    }
    prod *= c;
  }
  return prod;
}

double Topology::AvgCard() const {
  if (cards_.empty()) return 0.0;
  double sum = 0.0;
  for (uint32_t c : cards_) sum += c;
  return sum / static_cast<double>(cards_.size());
}

Topology Topology::Independent(size_t n, uint32_t card) {
  auto r = Create(DefaultNames(n), std::vector<uint32_t>(n, card),
                  std::vector<std::vector<AttrId>>(n));
  assert(r.ok());
  return std::move(r).value();
}

Topology Topology::Chain(size_t n, uint32_t card) {
  std::vector<std::vector<AttrId>> parents(n);
  for (size_t i = 1; i < n; ++i) parents[i] = {static_cast<AttrId>(i - 1)};
  auto r = Create(DefaultNames(n), std::vector<uint32_t>(n, card),
                  std::move(parents));
  assert(r.ok());
  return std::move(r).value();
}

Topology Topology::Crown(size_t n, uint32_t card) {
  assert(n >= 3);
  std::vector<std::vector<AttrId>> parents(n);
  // Variable 0: source. Variables 1..n-2: middles. Variable n-1: sink.
  for (size_t i = 1; i + 1 < n; ++i) parents[i] = {0};
  for (size_t i = 1; i + 1 < n; ++i) {
    parents[n - 1].push_back(static_cast<AttrId>(i));
  }
  auto r = Create(DefaultNames(n), std::vector<uint32_t>(n, card),
                  std::move(parents));
  assert(r.ok());
  return std::move(r).value();
}

Topology Topology::DiamondStack(size_t levels, uint32_t card) {
  assert(levels >= 1);
  // Each level l contributes two "shoulder" variables fed by the previous
  // junction, plus a junction variable joining them:
  //   J0 -> {S1a, S1b} -> J1 -> {S2a, S2b} -> J2 -> ...
  // Depth = 2 * levels.
  size_t n = 1 + 3 * levels;
  std::vector<std::vector<AttrId>> parents(n);
  AttrId junction = 0;
  AttrId next = 1;
  for (size_t l = 0; l < levels; ++l) {
    AttrId a = next++;
    AttrId b = next++;
    AttrId j = next++;
    parents[a] = {junction};
    parents[b] = {junction};
    parents[j] = {a, b};
    junction = j;
  }
  auto r = Create(DefaultNames(n), std::vector<uint32_t>(n, card),
                  std::move(parents));
  assert(r.ok());
  return std::move(r).value();
}

Topology Topology::Layered(const std::vector<size_t>& layer_sizes,
                           const std::vector<uint32_t>& cards,
                           size_t max_parents) {
  size_t n = 0;
  for (size_t s : layer_sizes) n += s;
  assert(cards.size() == n);
  std::vector<std::vector<AttrId>> parents(n);
  size_t offset = 0;
  size_t prev_offset = 0;
  size_t prev_size = 0;
  for (size_t layer = 0; layer < layer_sizes.size(); ++layer) {
    size_t sz = layer_sizes[layer];
    if (layer > 0) {
      for (size_t i = 0; i < sz; ++i) {
        size_t np = std::min(max_parents, prev_size);
        for (size_t k = 0; k < np; ++k) {
          // Deterministic round-robin wiring into the previous layer.
          parents[offset + i].push_back(
              static_cast<AttrId>(prev_offset + (i + k) % prev_size));
        }
      }
    }
    prev_offset = offset;
    prev_size = sz;
    offset += sz;
  }
  auto r = Create(DefaultNames(n), cards, std::move(parents));
  assert(r.ok());
  return std::move(r).value();
}

Topology Topology::WithCards(std::vector<uint32_t> cards) const {
  assert(cards.size() == cards_.size());
  auto r = Create(names_, std::move(cards), parents_);
  assert(r.ok());
  return std::move(r).value();
}

}  // namespace mrsl
