// Exact inference over a BayesNet: the ground truth the experimental
// framework compares MRSL estimates against (Sec VI-A "true probability
// distributions of the Bayesian network").
//
// Two engines are provided and cross-checked in tests:
//  * variable elimination over factors (the scalable path), and
//  * brute-force enumeration of the completed joint (simple, used as the
//    oracle for small networks).

#ifndef MRSL_BN_EXACT_H_
#define MRSL_BN_EXACT_H_

#include <vector>

#include "bn/bayes_net.h"
#include "relational/joint_dist.h"
#include "relational/tuple.h"
#include "util/result.h"

namespace mrsl {

/// A dense factor over a sorted set of variables; the unit of variable
/// elimination.
class Factor {
 public:
  Factor() = default;

  /// Creates a constant-1 factor over `vars` with the given cards.
  Factor(std::vector<AttrId> vars, std::vector<uint32_t> cards);

  /// Builds the CPT factor P(var | parents(var)) of a network.
  static Factor FromCpt(const BayesNet& bn, AttrId var);

  const std::vector<AttrId>& vars() const { return vars_; }
  const std::vector<double>& values() const { return values_; }
  double value(uint64_t code) const { return values_[code]; }
  void set_value(uint64_t code, double v) { values_[code] = v; }
  const MixedRadix& codec() const { return codec_; }

  /// Fixes every variable of this factor that `evidence` assigns,
  /// producing a factor over the remaining variables.
  Factor Restrict(const Tuple& evidence) const;

  /// Pointwise product; the result ranges over the union of variables.
  Factor Multiply(const Factor& other) const;

  /// Sums out one variable. Requires `var` to be present.
  Factor SumOut(AttrId var) const;

 private:
  std::vector<AttrId> vars_;
  std::vector<uint32_t> cards_;
  MixedRadix codec_;
  std::vector<double> values_;
};

/// Computes P(query | evidence) by variable elimination.
/// `evidence` fixes its assigned attributes; `query` must be disjoint from
/// them and is returned in ascending attribute order. Fails if the query
/// is empty or overlaps the evidence.
Result<JointDist> ExactConditionalVE(const BayesNet& bn,
                                     const Tuple& evidence,
                                     std::vector<AttrId> query);

/// Same contract, by brute-force enumeration of all completions (only the
/// variables outside query ∪ evidence are marginalized). Exponential in
/// the number of unassigned variables — test/oracle use.
Result<JointDist> ExactConditionalEnum(const BayesNet& bn,
                                       const Tuple& evidence,
                                       std::vector<AttrId> query);

/// Convenience: the conditional joint over *all* missing attributes of
/// `tuple` given its assigned ones (the ground truth for Δt).
Result<JointDist> TrueDistribution(const BayesNet& bn, const Tuple& tuple);

}  // namespace mrsl

#endif  // MRSL_BN_EXACT_H_
