// Topology: the structure (DAG + cardinalities) of a Bayesian network,
// with builders for the network shapes used by the paper's benchmark
// (Fig 7): independent sets, chains ("line-shaped"), crowns, and layered
// diamond stacks of configurable depth.

#ifndef MRSL_BN_TOPOLOGY_H_
#define MRSL_BN_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/value.h"
#include "util/result.h"

namespace mrsl {

/// A DAG over discrete random variables.
class Topology {
 public:
  Topology() = default;

  /// Builds a topology. `parents[i]` lists the parents of variable i.
  /// Fails on cycles, out-of-range parent ids, or cards < 2.
  static Result<Topology> Create(std::vector<std::string> names,
                                 std::vector<uint32_t> cards,
                                 std::vector<std::vector<AttrId>> parents);

  size_t num_vars() const { return cards_.size(); }
  const std::string& name(AttrId i) const { return names_[i]; }
  uint32_t card(AttrId i) const { return cards_[i]; }
  const std::vector<uint32_t>& cards() const { return cards_; }
  const std::vector<AttrId>& parents(AttrId i) const { return parents_[i]; }

  /// A topological order of the variables (parents before children).
  const std::vector<AttrId>& topo_order() const { return topo_order_; }

  /// Number of edges on the longest directed path; 0 when independent.
  /// (The paper's Table I "depth"; see DESIGN.md for the off-by-one note
  /// on line-shaped networks.)
  size_t Depth() const;

  /// Product of cardinalities (Table I "dom. size").
  uint64_t DomainSize() const;

  /// Mean cardinality (Table I "avg card").
  double AvgCard() const;

  // ---- Builders for the benchmark shapes ----

  /// n independent variables (depth 0).
  static Topology Independent(size_t n, uint32_t card);

  /// A0 -> A1 -> ... -> A(n-1): the paper's "line-shaped" networks.
  static Topology Chain(size_t n, uint32_t card);

  /// Crown: one source, n-2 middle variables (each a child of the source),
  /// one sink whose parents are all middle variables. Depth 2 for any
  /// n >= 3, matching BN8/BN9/BN17/BN18.
  static Topology Crown(size_t n, uint32_t card);

  /// A stack of diamonds: `levels` diamond layers each adding depth 2;
  /// variable count is 1 + 2*levels... see .cc for the exact shape.
  static Topology DiamondStack(size_t levels, uint32_t card);

  /// Layered DAG: variables split into `layer_sizes.size()` layers; each
  /// non-root variable gets up to `max_parents` parents drawn from the
  /// previous layer (deterministic round-robin wiring, no randomness).
  static Topology Layered(const std::vector<size_t>& layer_sizes,
                          const std::vector<uint32_t>& cards,
                          size_t max_parents);

  /// Replaces all cardinalities (sizes must match). Used to realize the
  /// mixed-cardinality networks BN1-BN5, BN7.
  Topology WithCards(std::vector<uint32_t> cards) const;

 private:
  std::vector<std::string> names_;
  std::vector<uint32_t> cards_;
  std::vector<std::vector<AttrId>> parents_;
  std::vector<AttrId> topo_order_;
};

}  // namespace mrsl

#endif  // MRSL_BN_TOPOLOGY_H_
