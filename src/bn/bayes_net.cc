// CPTs are flat row-major arrays, one per variable, with rows indexed by a
// per-variable MixedRadix codec over the parent cardinalities (codecs are
// built once at Create/RandomInstance time). Create() rejects any CPT
// entry outside (0,1] — strictly positive rows keep exact inference and
// log-likelihoods finite. RandomInstance draws rows from a Dirichlet;
// forward sampling walks the cached topological order.

#include "bn/bayes_net.h"

#include <cstddef>
#include <cassert>
#include <cmath>
#include <sstream>

#include "util/string_util.h"

namespace mrsl {
namespace {

MixedRadix ParentCodec(const Topology& t, AttrId var) {
  std::vector<uint32_t> cards;
  for (AttrId p : t.parents(var)) cards.push_back(t.card(p));
  return MixedRadix(std::move(cards));
}

}  // namespace

Result<BayesNet> BayesNet::Create(Topology topology,
                                  std::vector<std::vector<double>> cpts) {
  if (cpts.size() != topology.num_vars()) {
    return Status::InvalidArgument("one CPT per variable required");
  }
  BayesNet bn;
  for (AttrId v = 0; v < topology.num_vars(); ++v) {
    MixedRadix codec = ParentCodec(topology, v);
    const size_t rows = codec.Size();
    const size_t card = topology.card(v);
    if (cpts[v].size() != rows * card) {
      return Status::InvalidArgument(
          "CPT for var " + std::to_string(v) + " has " +
          std::to_string(cpts[v].size()) + " entries, expected " +
          std::to_string(rows * card));
    }
    for (size_t r = 0; r < rows; ++r) {
      double sum = 0.0;
      for (size_t c = 0; c < card; ++c) {
        double p = cpts[v][r * card + c];
        if (p <= 0.0 || p > 1.0) {
          return Status::InvalidArgument(
              "CPT entries must be in (0,1], var " + std::to_string(v));
        }
        sum += p;
      }
      if (std::abs(sum - 1.0) > 1e-6) {
        return Status::InvalidArgument("CPT row does not sum to 1, var " +
                                       std::to_string(v));
      }
    }
    bn.parent_codecs_.push_back(std::move(codec));
  }
  bn.topology_ = std::move(topology);
  bn.cpts_ = std::move(cpts);
  return bn;
}

BayesNet BayesNet::RandomInstance(const Topology& topology, Rng* rng,
                                  double alpha) {
  std::vector<std::vector<double>> cpts(topology.num_vars());
  for (AttrId v = 0; v < topology.num_vars(); ++v) {
    MixedRadix codec = ParentCodec(topology, v);
    const size_t rows = codec.Size();
    const size_t card = topology.card(v);
    cpts[v].resize(rows * card);
    for (size_t r = 0; r < rows; ++r) {
      std::vector<double> row = rng->Dirichlet(card, alpha);
      // Clamp away from zero so every CPT row is strictly positive (the
      // Gibbs convergence requirement the paper states in Sec V-A).
      double sum = 0.0;
      for (auto& p : row) {
        p = std::max(p, 1e-6);
        sum += p;
      }
      for (size_t c = 0; c < card; ++c) cpts[v][r * card + c] = row[c] / sum;
    }
  }
  auto result = Create(topology, std::move(cpts));
  assert(result.ok());
  return std::move(result).value();
}

size_t BayesNet::CptRow(AttrId var,
                        const std::vector<ValueId>& assignment) const {
  const auto& parents = topology_.parents(var);
  if (parents.empty()) return 0;
  std::vector<ValueId> digits(parents.size());
  for (size_t i = 0; i < parents.size(); ++i) {
    assert(assignment[parents[i]] != kMissingValue);
    digits[i] = assignment[parents[i]];
  }
  return parent_codecs_[var].Encode(digits);
}

double BayesNet::CondProb(AttrId var, ValueId value,
                          const std::vector<ValueId>& assignment) const {
  const size_t card = topology_.card(var);
  size_t row = CptRow(var, assignment);
  return cpts_[var][row * card + static_cast<size_t>(value)];
}

double BayesNet::JointProb(const std::vector<ValueId>& assignment) const {
  double p = 1.0;
  for (AttrId v = 0; v < topology_.num_vars(); ++v) {
    assert(assignment[v] != kMissingValue);
    p *= CondProb(v, assignment[v], assignment);
  }
  return p;
}

Tuple BayesNet::ForwardSample(Rng* rng) const {
  std::vector<ValueId> values(num_vars(), kMissingValue);
  std::vector<double> weights;
  for (AttrId v : topology_.topo_order()) {
    const size_t card = topology_.card(v);
    size_t row = CptRow(v, values);
    weights.assign(cpts_[v].begin() + static_cast<long>(row * card),
                   cpts_[v].begin() + static_cast<long>((row + 1) * card));
    values[v] = static_cast<ValueId>(rng->SampleDiscrete(weights));
  }
  return Tuple(std::move(values));
}

Schema BayesNet::MakeSchema() const {
  std::vector<Attribute> attrs;
  for (AttrId v = 0; v < num_vars(); ++v) {
    std::vector<std::string> labels;
    for (uint32_t c = 0; c < topology_.card(v); ++c) {
      std::string label = "v";
      label += std::to_string(c);
      labels.push_back(std::move(label));
    }
    attrs.emplace_back(topology_.name(v), std::move(labels));
  }
  auto schema = Schema::Create(std::move(attrs));
  assert(schema.ok());
  return std::move(schema).value();
}

Relation BayesNet::SampleRelation(size_t n, Rng* rng) const {
  Relation rel(MakeSchema());
  for (size_t i = 0; i < n; ++i) {
    Status st = rel.Append(ForwardSample(rng));
    assert(st.ok());
    (void)st;
  }
  return rel;
}

std::string BayesNet::ToText() const {
  std::ostringstream out;
  out << "bn " << num_vars() << "\n";
  for (AttrId v = 0; v < num_vars(); ++v) {
    out << "var " << topology_.name(v) << " " << topology_.card(v) << "\n";
  }
  for (AttrId v = 0; v < num_vars(); ++v) {
    out << "parents " << v << ":";
    for (AttrId p : topology_.parents(v)) out << " " << p;
    out << "\n";
  }
  out.precision(17);
  for (AttrId v = 0; v < num_vars(); ++v) {
    out << "cpt " << v << ":";
    for (double p : cpts_[v]) out << " " << p;
    out << "\n";
  }
  return out.str();
}

Result<BayesNet> BayesNet::FromText(std::string_view text) {
  std::vector<std::string> names;
  std::vector<uint32_t> cards;
  std::vector<std::vector<AttrId>> parents;
  std::vector<std::vector<double>> cpts;
  size_t declared = 0;

  for (const auto& raw_line : Split(text, '\n')) {
    std::string_view line = Trim(raw_line);
    if (line.empty() || line[0] == '#') continue;
    auto fields = Split(line, ' ');
    if (fields[0] == "bn") {
      if (fields.size() != 2) return Status::Corruption("bad 'bn' line");
      int64_t n = 0;
      if (!ParseInt(fields[1], &n) || n < 0) {
        return Status::Corruption("bad variable count");
      }
      declared = static_cast<size_t>(n);
      parents.assign(declared, {});
      cpts.assign(declared, {});
    } else if (fields[0] == "var") {
      if (fields.size() != 3) return Status::Corruption("bad 'var' line");
      int64_t card = 0;
      if (!ParseInt(fields[2], &card) || card < 2) {
        return Status::Corruption("bad cardinality");
      }
      names.push_back(fields[1]);
      cards.push_back(static_cast<uint32_t>(card));
    } else if (fields[0] == "parents") {
      if (fields.size() < 2) return Status::Corruption("bad 'parents' line");
      std::string idx_str = fields[1];
      if (!idx_str.empty() && idx_str.back() == ':') idx_str.pop_back();
      int64_t idx = 0;
      if (!ParseInt(idx_str, &idx) || idx < 0 ||
          static_cast<size_t>(idx) >= declared) {
        return Status::Corruption("bad parent list index");
      }
      for (size_t i = 2; i < fields.size(); ++i) {
        if (fields[i].empty()) continue;
        int64_t p = 0;
        if (!ParseInt(fields[i], &p) || p < 0) {
          return Status::Corruption("bad parent id");
        }
        parents[static_cast<size_t>(idx)].push_back(
            static_cast<AttrId>(p));
      }
    } else if (fields[0] == "cpt") {
      if (fields.size() < 2) return Status::Corruption("bad 'cpt' line");
      std::string idx_str = fields[1];
      if (!idx_str.empty() && idx_str.back() == ':') idx_str.pop_back();
      int64_t idx = 0;
      if (!ParseInt(idx_str, &idx) || idx < 0 ||
          static_cast<size_t>(idx) >= declared) {
        return Status::Corruption("bad cpt index");
      }
      for (size_t i = 2; i < fields.size(); ++i) {
        if (fields[i].empty()) continue;
        double p = 0.0;
        if (!ParseDouble(fields[i], &p)) {
          return Status::Corruption("bad cpt entry");
        }
        cpts[static_cast<size_t>(idx)].push_back(p);
      }
    } else {
      return Status::Corruption("unknown directive: " + fields[0]);
    }
  }
  if (names.size() != declared) {
    return Status::Corruption("variable count mismatch");
  }
  auto topo = Topology::Create(std::move(names), std::move(cards),
                               std::move(parents));
  if (!topo.ok()) return topo.status();
  return Create(std::move(topo).value(), std::move(cpts));
}

}  // namespace mrsl
