// Umbrella header: the full public API of the mrsl library.
//
//   #include "mrsl.h"
//
// pulls in the relational layer, the learning and inference pipeline,
// the probabilistic-database layer, and the experiment framework. Fine-
// grained headers remain available for faster incremental builds.

#ifndef MRSL_MRSL_H_
#define MRSL_MRSL_H_

// Utilities. The version macros (MRSL_VERSION_STRING et al.) live in
// util/version.h.
#include "util/csv.h"          // IWYU pragma: export
#include "util/fault_file.h"   // IWYU pragma: export
#include "util/metrics.h"      // IWYU pragma: export
#include "util/mixed_radix.h"  // IWYU pragma: export
#include "util/result.h"       // IWYU pragma: export
#include "util/rng.h"          // IWYU pragma: export
#include "util/status.h"       // IWYU pragma: export
#include "util/thread_pool.h"  // IWYU pragma: export
#include "util/trace.h"        // IWYU pragma: export
#include "util/version.h"      // IWYU pragma: export
#include "util/wire.h"         // IWYU pragma: export

// Relational substrate.
#include "relational/discretizer.h"  // IWYU pragma: export
#include "relational/join.h"         // IWYU pragma: export
#include "relational/joint_dist.h"   // IWYU pragma: export
#include "relational/relation.h"     // IWYU pragma: export
#include "relational/schema.h"       // IWYU pragma: export
#include "relational/tuple.h"        // IWYU pragma: export

// Mining.
#include "mining/apriori.h"  // IWYU pragma: export

// Bayesian-network substrate (ground truth / experiment framework).
#include "bn/bayes_net.h"  // IWYU pragma: export
#include "bn/exact.h"      // IWYU pragma: export
#include "bn/topology.h"   // IWYU pragma: export

// The MRSL core.
#include "core/delta.h"              // IWYU pragma: export
#include "core/diagnostics.h"        // IWYU pragma: export
#include "core/engine.h"             // IWYU pragma: export
#include "core/gibbs.h"              // IWYU pragma: export
#include "core/infer_single.h"       // IWYU pragma: export
#include "core/learner.h"            // IWYU pragma: export
#include "core/model.h"              // IWYU pragma: export
#include "core/model_io.h"           // IWYU pragma: export
#include "core/repair.h"             // IWYU pragma: export
#include "core/tuning.h"             // IWYU pragma: export
#include "core/workload.h"           // IWYU pragma: export
#include "core/workload_parallel.h"  // IWYU pragma: export

// Probabilistic database.
#include "pdb/lazy.h"           // IWYU pragma: export
#include "pdb/plan.h"           // IWYU pragma: export
#include "pdb/plan_cache.h"     // IWYU pragma: export
#include "pdb/prob_database.h"  // IWYU pragma: export
#include "pdb/query.h"          // IWYU pragma: export
#include "pdb/snapshot_io.h"    // IWYU pragma: export
#include "pdb/store.h"          // IWYU pragma: export
#include "pdb/wal.h"            // IWYU pragma: export

// Network serving layer.
#include "server/http.h"     // IWYU pragma: export
#include "server/server.h"   // IWYU pragma: export
#include "server/service.h"  // IWYU pragma: export

// Experiment framework.
#include "expfw/datagen.h"   // IWYU pragma: export
#include "expfw/metrics.h"   // IWYU pragma: export
#include "expfw/networks.h"  // IWYU pragma: export
#include "expfw/runner.h"    // IWYU pragma: export

#endif  // MRSL_MRSL_H_
