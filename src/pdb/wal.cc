// Replay is deliberately conservative: it stops at the first record
// whose frame or checksum does not hold and reports HOW it stopped — a
// clean record boundary (tail OK), a torn tail (tail Corruption, prefix
// stands), or damage a crash cannot explain (hard error). Appends frame
// every record with a length prefix and an FNV-1a checksum over the
// payload, so replay never has to trust a byte it has not verified.

#include "pdb/wal.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/csv.h"
#include "util/timer.h"
#include "util/wire.h"

namespace mrsl {
namespace {

constexpr char kWalMagic[8] = {'M', 'R', 'S', 'L', 'W', 'A', 'L', '0'};
constexpr size_t kSegmentHeaderSize = sizeof(kWalMagic) + 4 + 8;
constexpr size_t kRecordHeaderSize = 4 + 8;

std::string SegmentPath(const std::string& dir, uint64_t base_epoch) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.log",
                static_cast<unsigned long long>(base_epoch));
  return dir + "/" + name;
}

// Parses "wal-<16 hex digits>.log"; false for anything else.
bool ParseSegmentName(const std::string& name, uint64_t* base_epoch) {
  if (name.size() != 24 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(20, 4, ".log") != 0) {
    return false;
  }
  uint64_t value = 0;
  for (size_t i = 4; i < 20; ++i) {
    const char c = name[i];
    int digit = 0;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *base_epoch = value;
  return true;
}

std::string SegmentHeader(uint64_t base_epoch) {
  std::string out(kWalMagic, sizeof(kWalMagic));
  wire::PutU32(&out, kWalFormatVersion);
  wire::PutU64(&out, base_epoch);
  return out;
}

Status TornTail(WalReplay* replay, const std::string& path,
                uint64_t valid_bytes, const std::string& why) {
  replay->tail = Status::Corruption("torn WAL tail in " + path + " at byte " +
                                    std::to_string(valid_bytes) + ": " + why);
  replay->tail_path = path;
  replay->tail_valid_bytes = valid_bytes;
  return Status::OK();
}

}  // namespace

Result<WalSyncMode> ParseWalSyncMode(std::string_view text) {
  if (text == "always") return WalSyncMode::kAlways;
  if (text == "group") return WalSyncMode::kGroup;
  if (text == "none") return WalSyncMode::kNone;
  return Status::InvalidArgument("unknown sync mode '" + std::string(text) +
                                 "' (want always, group, or none)");
}

const char* WalSyncModeName(WalSyncMode mode) {
  switch (mode) {
    case WalSyncMode::kAlways: return "always";
    case WalSyncMode::kGroup: return "group";
    case WalSyncMode::kNone: return "none";
  }
  return "unknown";
}

Result<std::vector<WalSegmentInfo>> ListWalSegments(const std::string& dir) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create WAL directory " + dir + ": " +
                           std::strerror(errno));
  }
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IOError("cannot open WAL directory " + dir + ": " +
                           std::strerror(errno));
  }
  std::vector<WalSegmentInfo> segments;
  while (struct dirent* entry = ::readdir(d)) {
    uint64_t base_epoch = 0;
    if (!ParseSegmentName(entry->d_name, &base_epoch)) continue;
    segments.push_back({dir + "/" + entry->d_name, base_epoch});
  }
  ::closedir(d);
  std::sort(segments.begin(), segments.end(),
            [](const WalSegmentInfo& a, const WalSegmentInfo& b) {
              return a.base_epoch < b.base_epoch;
            });
  return segments;
}

Result<WalReplay> ReplayWalFile(const std::string& path,
                                const Schema& schema) {
  MRSL_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  WalReplay replay;
  if (bytes.size() < kSegmentHeaderSize) {
    // A crash during segment creation leaves a short header; nothing in
    // this file can have been acknowledged (records sync after it).
    MRSL_RETURN_IF_ERROR(TornTail(&replay, path, 0, "incomplete header"));
    return replay;
  }
  if (std::memcmp(bytes.data(), kWalMagic, sizeof(kWalMagic)) != 0) {
    return Status::Corruption(path + " is not a WAL segment (bad magic)");
  }
  wire::Cursor header(std::string_view(bytes).substr(
      sizeof(kWalMagic), kSegmentHeaderSize - sizeof(kWalMagic)));
  MRSL_ASSIGN_OR_RETURN(uint32_t version, header.U32());
  if (version != kWalFormatVersion) {
    return Status::InvalidArgument(path + " has unsupported WAL version " +
                                   std::to_string(version));
  }
  MRSL_ASSIGN_OR_RETURN(uint64_t base_epoch, header.U64());

  uint64_t last_epoch = base_epoch;
  size_t pos = kSegmentHeaderSize;
  const std::string_view data(bytes);
  while (pos < data.size()) {
    const size_t remaining = data.size() - pos;
    if (remaining < kRecordHeaderSize) {
      MRSL_RETURN_IF_ERROR(TornTail(&replay, path, pos, "short frame"));
      return replay;
    }
    wire::Cursor frame(data.substr(pos, kRecordHeaderSize));
    MRSL_ASSIGN_OR_RETURN(uint32_t len, frame.U32());
    MRSL_ASSIGN_OR_RETURN(uint64_t checksum, frame.U64());
    if (len > remaining - kRecordHeaderSize) {
      MRSL_RETURN_IF_ERROR(TornTail(&replay, path, pos, "short payload"));
      return replay;
    }
    const std::string_view payload =
        data.substr(pos + kRecordHeaderSize, len);
    if (wire::Fnv1a64(payload) != checksum) {
      MRSL_RETURN_IF_ERROR(
          TornTail(&replay, path, pos, "checksum mismatch"));
      return replay;
    }
    // Past the checksum, damage is no longer a crash artifact: a payload
    // that verifies but does not parse means the file was corrupted (or
    // written by a different schema), and dropping it silently could
    // drop acknowledged records behind it. Fail the replay.
    wire::Cursor body(payload);
    MRSL_ASSIGN_OR_RETURN(uint64_t epoch, body.U64());
    auto delta =
        DeserializeDelta(schema, payload.substr(body.position()));
    if (!delta.ok()) {
      return Status::Corruption("WAL record at byte " + std::to_string(pos) +
                                " of " + path + " does not parse: " +
                                delta.status().message());
    }
    if (epoch <= last_epoch) {
      return Status::Corruption("WAL epochs not increasing in " + path +
                                ": record epoch " + std::to_string(epoch) +
                                " after " + std::to_string(last_epoch));
    }
    last_epoch = epoch;
    replay.records.push_back({epoch, std::move(delta).value()});
    pos += kRecordHeaderSize + len;
  }
  return replay;
}

Result<WalReplay> ReplayWalDir(const std::string& dir,
                               const Schema& schema) {
  MRSL_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> segments,
                        ListWalSegments(dir));
  WalReplay combined;
  uint64_t last_epoch = 0;
  for (size_t i = 0; i < segments.size(); ++i) {
    MRSL_ASSIGN_OR_RETURN(WalReplay sub,
                          ReplayWalFile(segments[i].path, schema));
    if (!sub.records.empty() && last_epoch != 0 &&
        sub.records.front().epoch <= last_epoch) {
      return Status::Corruption("WAL epochs not increasing across segments "
                                "at " + segments[i].path);
    }
    if (!sub.records.empty()) last_epoch = sub.records.back().epoch;
    for (WalRecord& r : sub.records) {
      combined.records.push_back(std::move(r));
    }
    if (!sub.tail.ok()) {
      if (i + 1 != segments.size()) {
        // Torn damage followed by a later, intact segment: a crash
        // cannot write segment N+1 after tearing segment N.
        return Status::Corruption(
            "WAL segment " + segments[i].path +
            " is damaged mid-log: " + sub.tail.message());
      }
      combined.tail = sub.tail;
      combined.tail_path = sub.tail_path;
      combined.tail_valid_bytes = sub.tail_valid_bytes;
    }
  }
  return combined;
}

Status TruncateWalSegment(const std::string& path, uint64_t valid_bytes) {
  MRSL_RETURN_IF_ERROR(CheckFault("truncate", path));
  if (::truncate(path.c_str(), static_cast<off_t>(valid_bytes)) != 0) {
    return Status::IOError("cannot truncate " + path + ": " +
                           std::strerror(errno));
  }
  return Status::OK();
}

std::string WriteAheadLog::EncodeRecord(uint64_t epoch,
                                        const RelationDelta& delta) {
  std::string payload;
  wire::PutU64(&payload, epoch);
  SerializeDelta(&payload, delta);
  std::string out;
  wire::PutU32(&out, static_cast<uint32_t>(payload.size()));
  wire::PutU64(&out, wire::Fnv1a64(payload));
  out += payload;
  return out;
}

WriteAheadLog::WriteAheadLog(std::string dir, WalSyncMode mode,
                             uint64_t base_epoch)
    : dir_(std::move(dir)), mode_(mode), last_epoch_(base_epoch) {}

Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::Open(
    const std::string& dir, uint64_t base_epoch, WalSyncMode mode,
    uint64_t replayed_live_records) {
  MRSL_ASSIGN_OR_RETURN(std::vector<WalSegmentInfo> existing,
                        ListWalSegments(dir));
  std::unique_ptr<WriteAheadLog> wal(
      new WriteAheadLog(dir, mode, base_epoch));
  wal->segments_ = std::move(existing);
  // Rebuild the live-size view of a reopened log: record frames only
  // (segment headers excluded, matching the per-append accounting).
  wal->stats_.live_records = replayed_live_records;
  for (const WalSegmentInfo& s : wal->segments_) {
    struct stat st;
    if (::stat(s.path.c_str(), &st) == 0 &&
        static_cast<uint64_t>(st.st_size) > kSegmentHeaderSize) {
      wal->stats_.live_bytes +=
          static_cast<uint64_t>(st.st_size) - kSegmentHeaderSize;
    }
  }
  MRSL_RETURN_IF_ERROR(wal->StartSegment(base_epoch));
  return wal;
}

Status WriteAheadLog::StartSegment(uint64_t base_epoch) {
  const std::string path = SegmentPath(dir_, base_epoch);
  MRSL_RETURN_IF_ERROR(active_.Close());
  MRSL_RETURN_IF_ERROR(active_.Open(path, /*truncate=*/true));
  MRSL_RETURN_IF_ERROR(active_.Append(SegmentHeader(base_epoch)));
  bool known = false;
  for (const WalSegmentInfo& s : segments_) {
    if (s.path == path) known = true;
  }
  if (!known) segments_.push_back({path, base_epoch});
  stats_.segments = segments_.size();
  return Status::OK();
}

Status WriteAheadLog::Append(uint64_t epoch, const RelationDelta& delta) {
  if (epoch <= last_epoch_) {
    return Status::InvalidArgument(
        "WAL appends must carry increasing epochs: got " +
        std::to_string(epoch) + " after " + std::to_string(last_epoch_));
  }
  const std::string record = EncodeRecord(epoch, delta);
  MRSL_RETURN_IF_ERROR(active_.Append(record));
  last_epoch_ = epoch;
  ++pending_records_;
  stats_.records_appended += 1;
  stats_.bytes_appended += record.size();
  stats_.live_records += 1;
  stats_.live_bytes += record.size();
  if (mode_ == WalSyncMode::kAlways) return Sync();
  return Status::OK();
}

Status WriteAheadLog::Sync() {
  if (pending_records_ == 0 || mode_ == WalSyncMode::kNone) {
    pending_records_ = 0;
    return Status::OK();
  }
  WallTimer timer;
  MRSL_RETURN_IF_ERROR(active_.Sync());
  stats_.syncs += 1;
  stats_.sync_seconds += timer.ElapsedSeconds();
  pending_records_ = 0;
  return Status::OK();
}

Status WriteAheadLog::Compact(uint64_t through_epoch) {
  if (through_epoch < last_epoch_) {
    return Status::InvalidArgument(
        "WAL compaction through epoch " + std::to_string(through_epoch) +
        " would drop records up to epoch " + std::to_string(last_epoch_));
  }
  std::vector<WalSegmentInfo> old = std::move(segments_);
  segments_.clear();
  last_epoch_ = through_epoch;
  MRSL_RETURN_IF_ERROR(StartSegment(through_epoch));
  for (const WalSegmentInfo& s : old) {
    if (s.path == active_.path()) continue;
    MRSL_RETURN_IF_ERROR(CheckFault("unlink", s.path));
    if (::unlink(s.path.c_str()) != 0 && errno != ENOENT) {
      return Status::IOError("cannot remove compacted segment " + s.path +
                             ": " + std::strerror(errno));
    }
  }
  stats_.segments = segments_.size();
  stats_.live_records = 0;
  stats_.live_bytes = 0;
  pending_records_ = 0;
  return SyncParentDir(active_.path());
}

}  // namespace mrsl
