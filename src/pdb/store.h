// The versioned BID store: epoch snapshots, incremental re-derivation,
// and snapshot serving.
//
// A BidStore owns a sequence of immutable StoreSnapshot epochs, each a
// (base relation, derived ProbDatabase) pair plus the derivation cache
// that makes the next commit incremental. Readers call snapshot() — a
// lock-free atomic shared_ptr load — and keep the returned epoch pinned
// for as long as they use it; writers run Commit/ApplyDelta under a
// single-writer mutex and publish the new epoch atomically, so a reader
// always observes one fully consistent epoch and never blocks.
//
// Incrementality: the engine derives Δt per subsumption-DAG component
// with a seed that is a pure function of the component's ordered tuple
// list (core/engine.h). A commit therefore partitions the new workload
// into components (core/delta.h), reuses the previous epoch's results
// for every component whose ordered tuple list is unchanged, and
// re-infers ONLY the dirty components — in one batch, so the result is
// bit-identical to a from-scratch derivation at any thread count.
// Untouched blocks are shared structurally (shared_ptr) with the
// previous epoch; rebuilt and appended block keys are reported to the
// plan cache, which invalidates at block granularity (pdb/plan_cache.h).
//
// Restart: SaveSnapshot writes the current epoch to the binary format
// of pdb/snapshot_io.h; Restore adopts a saved epoch (derivation
// options included) without re-running inference.

#ifndef MRSL_PDB_STORE_H_
#define MRSL_PDB_STORE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/delta.h"
#include "core/engine.h"
#include "core/workload.h"
#include "pdb/compiler.h"
#include "pdb/plan_cache.h"
#include "pdb/prob_database.h"
#include "pdb/snapshot_io.h"
#include "pdb/wal.h"
#include "util/result.h"

namespace mrsl {

/// Store construction knobs: how derivations run and how results are
/// materialized. These are part of each snapshot's identity — cached Δt
/// values are only reused under the options that produced them.
struct StoreOptions {
  /// Sampling strategy for derivations. kAllAtATime is rejected (its one
  /// global chain has no component structure to re-derive incrementally).
  SamplingMode mode = SamplingMode::kTupleDag;

  /// Gibbs parameters + cycle cap used for every derivation.
  WorkloadOptions workload;

  /// Alternatives below this probability are dropped from blocks (see
  /// ProbDatabase::FromInference).
  double min_prob = 0.0;

  /// Plan-cache capacity (entries).
  size_t plan_cache_capacity = 64;
};

/// One immutable epoch of the store. Snapshots are published behind
/// shared_ptr<const StoreSnapshot>; everything here is safe to read
/// concurrently and never mutates after publication.
class StoreSnapshot {
 public:
  /// One derivation component: the engine's ordered sub-workload and the
  /// shared Δt of each tuple (aligned). Clean commits alias these
  /// pointers across epochs.
  struct Component {
    std::vector<Tuple> tuples;
    std::vector<std::shared_ptr<const JointDist>> dists;
  };

  uint64_t epoch() const { return epoch_; }
  const Relation& base() const { return base_; }
  const ProbDatabase& database() const { return *db_; }
  const std::shared_ptr<const ProbDatabase>& shared_database() const {
    return db_;
  }
  const std::vector<Component>& components() const { return components_; }

  /// The cached Δt of `t`, or nullptr when `t` is not a distinct
  /// incomplete tuple of this epoch (used by LazyDeriver seeding).
  const JointDist* FindDist(const Tuple& t) const;

 private:
  friend class BidStore;

  uint64_t epoch_ = 0;
  Relation base_;
  std::shared_ptr<const ProbDatabase> db_;
  std::vector<Component> components_;

  // Ordered component tuples -> index into components_.
  std::unordered_map<std::vector<Tuple>, size_t, TupleVectorHash>
      component_index_;
  // Distinct incomplete tuple -> its Δt (aliases components_' entries).
  std::unordered_map<Tuple, std::shared_ptr<const JointDist>, TupleHash>
      dist_index_;
  // Source row tuple -> derived block, for structural reuse.
  std::unordered_map<Tuple, std::shared_ptr<const Block>, TupleHash>
      block_cache_;
};

using SnapshotPtr = std::shared_ptr<const StoreSnapshot>;

/// What one commit did — the observable contract of incrementality.
struct CommitStats {
  uint64_t epoch = 0;              // epoch the commit published
  size_t components_total = 0;     // components in the new derivation
  size_t components_reinferred = 0;
  size_t tuples_total = 0;         // distinct incomplete tuples
  size_t tuples_reinferred = 0;    // tuples actually sent to the engine
  size_t blocks_total = 0;
  size_t blocks_reused = 0;        // blocks shared with the previous epoch
  bool index_stable = false;       // block indices map 1:1 from the parent
  double wall_seconds = 0.0;
  WorkloadStats inference;         // the engine's cost counters
};

/// What OpenWal found and did while bringing the store back up.
struct WalRecoveryStats {
  uint64_t replayed_records = 0;  // deltas re-applied on top of the base
  uint64_t skipped_records = 0;   // records the base epoch already had
  bool torn_tail = false;         // the final record was torn (crash)
  uint64_t truncated_bytes = 0;   // torn bytes discarded from the tail
};

/// Wall time spent in each stage of answering one query. `parse` covers
/// ParsePlan plus the canonical rendering (paid on every query, hit or
/// miss); `evaluate` is the plan evaluation proper and `combine` the
/// aggregation over its rows (marginals / exists / count) — both zero
/// on a cache hit. The server exports these as per-stage histograms.
struct QueryStageTimes {
  double parse_seconds = 0.0;
  double evaluate_seconds = 0.0;
  double combine_seconds = 0.0;
};

/// A cache-aware query answer: the evaluation plus where it came from.
/// `fingerprint`/`normalized_text` are the literal-insensitive digest
/// identity (pdb/fingerprint.h), computed on every call — cache hits
/// included — so the workload-analytics layer can attribute each call
/// to its shape. `resources` holds the evaluator's per-request peaks
/// and counters; like `stages.evaluate_seconds`, it stays zero on
/// cache hits (nothing was evaluated).
struct StoreQueryResult {
  uint64_t epoch = 0;
  bool from_cache = false;
  std::string canonical_text;  // PlanToString rendering (the cache key)
  uint64_t fingerprint = 0;    // FNV-1a64 of normalized_text
  std::string normalized_text; // literals replaced by "?" (fingerprint.h)
  std::shared_ptr<const PlanEvaluation> eval;
  QueryStageTimes stages;
  PlanResources resources;
};

/// The epoch-versioned store. All methods are thread-safe: reads are
/// lock-free, writes serialize on an internal single-writer mutex.
class BidStore {
 public:
  /// `engine` must outlive the store and is shared with other users (the
  /// store only issues batched InferBatch calls).
  explicit BidStore(Engine* engine, StoreOptions options = StoreOptions());

  /// Derives the first epoch (or wholesale-replaces the base relation;
  /// replacement commits reuse any component that survived unchanged but
  /// clear the plan cache, since block indices may shift arbitrarily).
  Result<CommitStats> Commit(Relation rel);

  /// Applies `delta` to the current epoch's relation, re-infers only the
  /// dirtied components, and publishes the next epoch. Requires a prior
  /// Commit or Restore.
  ///
  /// `expected_epoch` (when non-zero) is a compare-and-swap guard for
  /// index-addressed deltas: the commit proceeds only if the current
  /// epoch still equals it, otherwise FailedPrecondition. Deltas carry
  /// row indices of the epoch their author read — applying them after
  /// an interleaved commit shifted those indices would silently mutate
  /// the wrong rows (the server's concurrent /update hazard).
  ///
  /// `trace` (when active) receives "partition" / "infer" (with the
  /// engine's per-component spans nested) / "assemble" / "publish"
  /// children from the commit pipeline plus "wal_append" for the log
  /// write. The group-commit leader's fsync is the service's span, not
  /// the store's (one fsync covers many deltas).
  Result<CommitStats> ApplyDelta(const RelationDelta& delta,
                                 uint64_t expected_epoch = 0,
                                 TraceSpan trace = TraceSpan());

  /// The current epoch, pinned for the caller (nullptr before the first
  /// commit). Lock-free.
  SnapshotPtr snapshot() const;

  /// Current epoch number (0 before the first commit). Lock-free.
  uint64_t epoch() const;

  /// The store's derivation options, by value: Restore() replaces them
  /// with a snapshot's saved options, so a reference would race with a
  /// concurrent restore.
  StoreOptions options() const;

  Engine* engine() const { return engine_; }
  PlanCache& plan_cache() { return plan_cache_; }

  /// Parses and evaluates `plan_text` against the current epoch, serving
  /// from the plan cache when the canonical plan was already evaluated
  /// at this epoch (entries carried across commits included).
  Result<StoreQueryResult> Query(const std::string& plan_text);

  /// Query through the safe-plan compiler (pdb/compiler.h): unsafe shapes
  /// get a dissociation-lattice [lower, upper] envelope instead of the
  /// evaluator's fixed-dissociation bounds. Cached under
  /// canonical_text + CompileCacheSuffix(options), so results at
  /// different width targets / world budgets never collide with each
  /// other or with plain Query entries.
  Result<StoreQueryResult> Query(const std::string& plan_text,
                                 const CompileOptions& compile_options);

  /// Query against an explicitly pinned snapshot of THIS store — the
  /// hook behind the server's batched query pass: the caller pins one
  /// epoch and evaluates any number of plans against it while commits
  /// race ahead. Cache interaction stays sound: hits are served only
  /// when the entry's epoch matches `snap`'s, and an insert stamped with
  /// a superseded epoch is simply never served and dropped at the next
  /// commit.
  ///
  /// `compile` (when non-null) routes evaluation through the safe-plan
  /// compiler with those options; the cache key then carries
  /// CompileCacheSuffix(*compile) so compiled answers configured
  /// differently — or the plain-evaluator answer — are distinct entries.
  ///
  /// `trace` (when active) receives "parse", "evaluate" (per-operator
  /// spans — or the compiler's phase1/phase2 — nested inside), and
  /// "combine" children, plus a "cache" = hit|miss attribute. Spans
  /// never influence the answer and never enter the plan cache: a
  /// traced response body is byte-identical to an untraced one.
  Result<StoreQueryResult> QueryOn(const SnapshotPtr& snap,
                                   const std::string& plan_text,
                                   const CompileOptions* compile = nullptr,
                                   TraceSpan trace = TraceSpan());

  /// Evaluates every plan in `plan_texts` against ONE pinned snapshot
  /// (the current epoch at entry), in order, through the plan cache.
  /// Results align with the inputs; a concurrent commit never splits the
  /// batch across epochs. The second overload threads one TraceSpan per
  /// plan (inactive spans are free) — the batched serving path's hook.
  std::vector<Result<StoreQueryResult>> QueryBatch(
      const std::vector<std::string>& plan_texts);
  std::vector<Result<StoreQueryResult>> QueryBatch(
      const std::vector<std::string>& plan_texts,
      const std::vector<TraceSpan>& spans);

  /// The current epoch as snapshot_io bytes (what SaveSnapshot writes,
  /// without the file) — the GET /snapshot payload. Fails before the
  /// first commit. `epoch` (optional) receives the serialized epoch,
  /// which a racing commit may already have superseded.
  Result<std::string> SerializeCurrentSnapshot(
      uint64_t* epoch = nullptr) const;

  /// Persists the current epoch to `path` (snapshot_io format). Fails
  /// before the first commit.
  Status SaveSnapshot(const std::string& path) const;

  /// Replaces the store's state with a saved epoch: adopts the file's
  /// derivation options and epoch number and rebuilds the database from
  /// the cached distributions — no inference unless the file is missing
  /// components (then only those are re-inferred). Clears the plan cache.
  Status Restore(const std::string& path);

  /// Attaches a write-ahead log in `dir` (created if missing) and makes
  /// every subsequent ApplyDelta durable. Requires an epoch (Commit or
  /// Restore first). Recovery happens here: any records beyond the
  /// current epoch are replayed (re-deriving each commit, bit-identical
  /// to the pre-crash epochs), a torn final record is discarded, and a
  /// fresh active segment is started. Fails with Corruption on an epoch
  /// gap or mid-log damage — losses a crash cannot explain.
  Result<WalRecoveryStats> OpenWal(const std::string& dir, WalSyncMode mode);

  /// Makes every appended-but-unsynced WAL record durable (no-op without
  /// a WAL or in kNone mode). The group-commit leader's fsync.
  Status SyncWal();

  /// Atomically saves the current epoch to `path` and compacts the WAL
  /// behind it (deletes every record the snapshot now covers). Runs
  /// under the writer mutex, so no commit can slip between the save and
  /// the compaction. Without a WAL this is SaveSnapshot.
  Status Checkpoint(const std::string& path);

  bool has_wal() const;
  /// Mode and counters of the attached WAL (zeroes when none).
  WalStats wal_stats() const;

 private:
  /// Shared commit path. `parent` supplies reuse caches (may be null);
  /// `epoch` is the number to publish; `index_stable` gates block-level
  /// plan-cache carry-forward.
  Result<CommitStats> CommitInternal(Relation new_rel,
                                     const StoreSnapshot* parent,
                                     uint64_t epoch, bool index_stable,
                                     TraceSpan trace = TraceSpan());

  /// Captures (head, options) as a consistent pair and builds the
  /// serializable image behind SaveSnapshot / SerializeCurrentSnapshot.
  Result<SnapshotImage> BuildSnapshotImage() const;

  /// BuildSnapshotImage with writer_mutex_ already held.
  Result<SnapshotImage> BuildSnapshotImageLocked() const;

  Engine* engine_;
  StoreOptions options_;
  PlanCache plan_cache_;

  mutable std::mutex writer_mutex_;  // serializes commits
  SnapshotPtr head_;                 // atomic_load/atomic_store access

  // The durable write path (null until OpenWal). Guarded by
  // writer_mutex_ like every other write-side structure. Once an append
  // fails the store refuses further deltas (wal_failed_): the in-memory
  // epoch would otherwise run ahead of the log and a later replay would
  // hit an epoch gap.
  std::unique_ptr<WriteAheadLog> wal_;
  bool wal_failed_ = false;
};

}  // namespace mrsl

#endif  // MRSL_PDB_STORE_H_
