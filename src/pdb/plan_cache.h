// Block-keyed plan-result cache for the versioned BID store.
//
// Serving the same extensional plans against a database that changes in
// small deltas means most commits leave most cached answers valid. An
// entry records the sorted set of base-block keys its result actually
// depends on (the union of every surviving row's lineage — plan.cc
// guarantees this covers every block that influenced a row's value,
// probability, or safety flag). On an index-stable commit (updates and
// appends only; see RelationDelta::IndexStable) an entry survives iff
// every dirtied block
//   (a) is outside the entry's touched set — so it contributed nothing
//       to the old result — AND
//   (b) cannot contribute to the new result either, checked by a
//       conservative walk of the plan tree over the block's NEW
//       alternatives (BlockMayContribute): a block whose alternatives
//       all fail the plan's selections can never add a row.
// Anything the walk cannot prove harmless invalidates the entry; a
// non-index-stable commit (deletes shift block indices) clears the
// cache wholesale. Both rules are sound: a surviving entry is
// bit-identical to re-evaluating the plan at the new epoch.

#ifndef MRSL_PDB_PLAN_CACHE_H_
#define MRSL_PDB_PLAN_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "pdb/compiler.h"
#include "pdb/plan.h"
#include "pdb/prob_database.h"

namespace mrsl {

/// One fully evaluated query, every payload the CLI/serving path needs.
/// Which members are meaningful depends on `kind`.
struct PlanEvaluation {
  ParsedQuery::Kind kind = ParsedQuery::Kind::kRelation;
  PlanResult result;                         // kRelation (also kExists/kCount
                                             // when the caller evaluated it)
  std::vector<DistinctMarginal> marginals;   // kRelation
  ExistsResult exists;                       // kExists
  CountResult count;                         // kCount

  /// Set when the safe-plan compiler produced this entry. The cache key
  /// of a compiled entry carries CompileCacheSuffix(options), so entries
  /// at different width targets / world budgets never collide with each
  /// other or with plain EvaluatePlan entries. `compile_stats` has its
  /// compile_seconds zeroed before insertion: a cached body must be
  /// identical on hit and miss — wall time is per-request
  /// (StoreQueryResult::stages), not part of the answer.
  bool compiled = false;
  CompileStats compile_stats;
};

/// A sharded-nothing, mutex-guarded LRU cache of plan evaluations, one
/// per BidStore. Thread-safe; evaluations are immutable and shared.
class PlanCache {
 public:
  explicit PlanCache(size_t capacity = 64);

  /// The cached evaluation of `text` at `epoch`, or nullptr. An entry
  /// carried forward across commits reports the current epoch.
  std::shared_ptr<const PlanEvaluation> Lookup(const std::string& text,
                                               uint64_t epoch);

  /// Caches an evaluation of `plan` (parsed from `text`) performed at
  /// `epoch`. `touched_blocks` is the sorted, unique union of the block
  /// keys of every result row's lineage. A no-op when the cache already
  /// holds `text` at the same or a newer epoch (a pinned-snapshot reader
  /// finishing late must not evict the servable entry).
  void Insert(const std::string& text, PlanPtr plan, uint64_t epoch,
              std::vector<uint64_t> touched_blocks,
              std::shared_ptr<const PlanEvaluation> eval);

  /// Advances the cache to `new_epoch` after a commit. `index_stable`
  /// and `dirty_blocks` (sorted keys of every rebuilt or appended block)
  /// come from the commit; `new_db` is the post-commit database used for
  /// the contribution walk. Entries that survive are re-stamped to
  /// `new_epoch`; the rest are dropped.
  void OnCommit(uint64_t new_epoch, bool index_stable,
                const std::vector<uint64_t>& dirty_blocks,
                const ProbDatabase& new_db);

  void Clear();

  size_t size() const;

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t insertions = 0;
    uint64_t invalidated = 0;       // entries dropped by commits
    uint64_t carried_forward = 0;   // entries surviving a commit
    uint64_t evicted = 0;           // LRU capacity evictions
  };
  Stats stats() const;

 private:
  struct Entry {
    std::string text;
    PlanPtr plan;
    uint64_t epoch = 0;
    std::vector<uint64_t> touched_blocks;  // sorted, unique
    std::shared_ptr<const PlanEvaluation> eval;
  };

  mutable std::mutex mutex_;
  size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::unordered_map<std::string, std::list<Entry>::iterator> index_;
  Stats stats_;
};

/// Conservative contribution test: false only when block `block_index`
/// of source `source` provably cannot contribute any row to `plan`'s
/// result (every alternative dies at some Select along each path).
/// Joins and unknown value flows report true. Exposed for tests.
bool BlockMayContribute(const PlanNode& plan, uint32_t source,
                        size_t block_index, const Block& block);

}  // namespace mrsl

#endif  // MRSL_PDB_PLAN_CACHE_H_
