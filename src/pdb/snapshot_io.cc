// Serialization is append-only over std::string; deserialization runs
// through the bounds-checked wire::Cursor that validates every count
// against the bytes actually remaining BEFORE allocating, so a truncated
// or bit-flipped file fails with Status::Corruption instead of a
// bad_alloc or a crash. The checksum covers the payload only (the header
// states the payload size), and doubles round-trip as raw bits so a
// reloaded snapshot is bit-identical to the one that was saved. Saves go
// through AtomicWriteFile (temp file + fsync + rename), so a crash mid-
// save can never leave a half-written snapshot at the target path.

#include "pdb/snapshot_io.h"

#include <algorithm>
#include <cstring>
#include <limits>

#include "util/csv.h"
#include "util/fault_file.h"
#include "util/wire.h"

namespace mrsl {
namespace {

constexpr char kMagic[8] = {'M', 'R', 'S', 'L', 'S', 'N', 'A', 'P'};

void PutTuple(std::string* out, const Tuple& t) {
  for (AttrId a = 0; a < t.num_attrs(); ++a) wire::PutI32(out, t.value(a));
}

Result<Tuple> ReadTuple(wire::Cursor* in, const Schema& schema) {
  Tuple t(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    MRSL_ASSIGN_OR_RETURN(int32_t v, in->I32());
    if (v != kMissingValue &&
        (v < 0 || static_cast<size_t>(v) >= schema.attr(a).cardinality())) {
      return Status::Corruption("snapshot tuple value out of domain");
    }
    t.set_value(a, v);
  }
  return t;
}

void PutDist(std::string* out, const JointDist& d) {
  wire::PutU32(out, static_cast<uint32_t>(d.vars().size()));
  for (AttrId v : d.vars()) wire::PutU32(out, v);
  for (size_t i = 0; i < d.vars().size(); ++i) {
    wire::PutU32(out, d.codec().card(i));
  }
  wire::PutU64(out, d.size());
  for (uint64_t code = 0; code < d.size(); ++code) {
    wire::PutF64(out, d.prob(code));
  }
}

Result<JointDist> ReadDist(wire::Cursor* in, const Schema& schema) {
  MRSL_ASSIGN_OR_RETURN(uint32_t nvars, in->U32());
  if (nvars > schema.num_attrs()) {
    return Status::Corruption("snapshot distribution has too many vars");
  }
  std::vector<AttrId> vars(nvars);
  for (uint32_t i = 0; i < nvars; ++i) {
    MRSL_ASSIGN_OR_RETURN(vars[i], in->U32());
    if (vars[i] >= schema.num_attrs()) {
      return Status::Corruption("snapshot distribution var out of range");
    }
  }
  std::vector<uint32_t> cards(nvars);
  for (uint32_t i = 0; i < nvars; ++i) {
    MRSL_ASSIGN_OR_RETURN(cards[i], in->U32());
    if (cards[i] != schema.attr(vars[i]).cardinality()) {
      return Status::Corruption("snapshot distribution cardinality mismatch");
    }
  }
  MRSL_ASSIGN_OR_RETURN(uint64_t ncells, in->U64());
  // Validate the implied cell count BEFORE JointDist allocates it: a
  // crafted file with two huge-cardinality vars would otherwise force a
  // multi-gigabyte allocation ahead of any size check.
  uint64_t expected_cells = 1;
  for (uint32_t c : cards) {
    if (c == 0 ||
        expected_cells > std::numeric_limits<uint64_t>::max() / c) {
      return Status::Corruption("snapshot distribution size overflows");
    }
    expected_cells *= c;
  }
  if (expected_cells != ncells) {
    return Status::Corruption("snapshot distribution cell count mismatch");
  }
  MRSL_RETURN_IF_ERROR(in->Fits(ncells, 8));
  JointDist dist(std::move(vars), std::move(cards));
  for (uint64_t code = 0; code < ncells; ++code) {
    MRSL_ASSIGN_OR_RETURN(double p, in->F64());
    dist.set_prob(code, p);
  }
  return dist;
}

}  // namespace

uint64_t SnapshotChecksum(std::string_view payload) {
  return wire::Fnv1a64(payload);
}

std::string SerializeSnapshot(const SnapshotImage& image) {
  std::string payload;
  wire::PutU64(&payload, image.epoch);
  wire::PutU8(&payload, static_cast<uint8_t>(image.mode));
  wire::PutF64(&payload, image.min_prob);
  const GibbsOptions& g = image.workload.gibbs;
  wire::PutU64(&payload, g.burn_in);
  wire::PutU64(&payload, g.samples);
  wire::PutU8(&payload, static_cast<uint8_t>(g.voting.choice));
  wire::PutU8(&payload, static_cast<uint8_t>(g.voting.scheme));
  wire::PutU8(&payload, g.enable_cpd_cache ? 1 : 0);
  wire::PutU64(&payload, g.cpd_cache_max_entries);
  wire::PutF64(&payload, g.smoothing_epsilon);
  wire::PutU64(&payload, g.seed);
  wire::PutU64(&payload, image.workload.max_total_cycles);

  const Schema& schema = image.base.schema();
  wire::PutU32(&payload, static_cast<uint32_t>(schema.num_attrs()));
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const Attribute& attr = schema.attr(a);
    wire::PutString(&payload, attr.name());
    wire::PutU32(&payload, static_cast<uint32_t>(attr.cardinality()));
    for (size_t v = 0; v < attr.cardinality(); ++v) {
      wire::PutString(&payload, attr.label(static_cast<ValueId>(v)));
    }
  }

  wire::PutU64(&payload, image.base.num_rows());
  for (size_t r = 0; r < image.base.num_rows(); ++r) {
    PutTuple(&payload, image.base.row(r));
  }

  wire::PutU64(&payload, image.components.size());
  for (const SnapshotComponentImage& comp : image.components) {
    wire::PutU64(&payload, comp.tuples.size());
    for (const Tuple& t : comp.tuples) PutTuple(&payload, t);
    for (const std::shared_ptr<const JointDist>& d : comp.dists) {
      PutDist(&payload, *d);
    }
  }

  std::string out(kMagic, sizeof(kMagic));
  wire::PutU32(&out, kSnapshotFormatVersion);
  wire::PutU64(&out, payload.size());
  wire::PutU64(&out, SnapshotChecksum(payload));
  out += payload;
  return out;
}

Result<SnapshotImage> DeserializeSnapshot(std::string_view bytes) {
  constexpr size_t kHeaderSize = sizeof(kMagic) + 4 + 8 + 8;
  if (bytes.size() < kHeaderSize) {
    return Status::Corruption("snapshot shorter than its header");
  }
  if (std::memcmp(bytes.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status::Corruption("not a snapshot file (bad magic)");
  }
  wire::Cursor header(
      bytes.substr(sizeof(kMagic), kHeaderSize - sizeof(kMagic)));
  MRSL_ASSIGN_OR_RETURN(uint32_t version, header.U32());
  if (version != kSnapshotFormatVersion) {
    return Status::InvalidArgument("unsupported snapshot version " +
                                   std::to_string(version));
  }
  MRSL_ASSIGN_OR_RETURN(uint64_t payload_size, header.U64());
  MRSL_ASSIGN_OR_RETURN(uint64_t checksum, header.U64());
  std::string_view payload = bytes.substr(kHeaderSize);
  if (payload.size() != payload_size) {
    return Status::Corruption("snapshot payload size mismatch: header says " +
                              std::to_string(payload_size) + ", file has " +
                              std::to_string(payload.size()));
  }
  if (SnapshotChecksum(payload) != checksum) {
    return Status::Corruption("snapshot checksum mismatch");
  }

  wire::Cursor in(payload);
  SnapshotImage image;
  MRSL_ASSIGN_OR_RETURN(image.epoch, in.U64());
  MRSL_ASSIGN_OR_RETURN(uint8_t mode, in.U8());
  if (mode > static_cast<uint8_t>(SamplingMode::kIndependentProduct)) {
    return Status::Corruption("snapshot sampling mode out of range");
  }
  image.mode = static_cast<SamplingMode>(mode);
  MRSL_ASSIGN_OR_RETURN(image.min_prob, in.F64());
  GibbsOptions& g = image.workload.gibbs;
  MRSL_ASSIGN_OR_RETURN(g.burn_in, in.U64());
  MRSL_ASSIGN_OR_RETURN(g.samples, in.U64());
  MRSL_ASSIGN_OR_RETURN(uint8_t choice, in.U8());
  MRSL_ASSIGN_OR_RETURN(uint8_t scheme, in.U8());
  if (choice > static_cast<uint8_t>(VoterChoice::kBest) ||
      scheme > static_cast<uint8_t>(VotingScheme::kWeighted)) {
    return Status::Corruption("snapshot voting options out of range");
  }
  g.voting.choice = static_cast<VoterChoice>(choice);
  g.voting.scheme = static_cast<VotingScheme>(scheme);
  MRSL_ASSIGN_OR_RETURN(uint8_t cache_on, in.U8());
  g.enable_cpd_cache = cache_on != 0;
  MRSL_ASSIGN_OR_RETURN(g.cpd_cache_max_entries, in.U64());
  MRSL_ASSIGN_OR_RETURN(g.smoothing_epsilon, in.F64());
  MRSL_ASSIGN_OR_RETURN(g.seed, in.U64());
  MRSL_ASSIGN_OR_RETURN(image.workload.max_total_cycles, in.U64());

  MRSL_ASSIGN_OR_RETURN(uint32_t num_attrs, in.U32());
  if (num_attrs > kMaxAttributes) {
    return Status::Corruption("snapshot schema has too many attributes");
  }
  std::vector<Attribute> attrs;
  for (uint32_t a = 0; a < num_attrs; ++a) {
    MRSL_ASSIGN_OR_RETURN(std::string name, in.String());
    MRSL_ASSIGN_OR_RETURN(uint32_t card, in.U32());
    MRSL_RETURN_IF_ERROR(in.Fits(card, 4));
    std::vector<std::string> labels;
    labels.reserve(card);
    for (uint32_t v = 0; v < card; ++v) {
      MRSL_ASSIGN_OR_RETURN(std::string label, in.String());
      labels.push_back(std::move(label));
    }
    attrs.emplace_back(std::move(name), std::move(labels));
  }
  MRSL_ASSIGN_OR_RETURN(Schema schema, Schema::Create(std::move(attrs)));

  image.base = Relation(schema);
  MRSL_ASSIGN_OR_RETURN(uint64_t num_rows, in.U64());
  MRSL_RETURN_IF_ERROR(in.Fits(num_rows, 4 * std::max<size_t>(1, num_attrs)));
  for (uint64_t r = 0; r < num_rows; ++r) {
    MRSL_ASSIGN_OR_RETURN(Tuple t, ReadTuple(&in, schema));
    MRSL_RETURN_IF_ERROR(image.base.Append(std::move(t)));
  }

  MRSL_ASSIGN_OR_RETURN(uint64_t num_components, in.U64());
  MRSL_RETURN_IF_ERROR(in.Fits(num_components, 8));
  for (uint64_t c = 0; c < num_components; ++c) {
    MRSL_ASSIGN_OR_RETURN(uint64_t ntuples, in.U64());
    MRSL_RETURN_IF_ERROR(
        in.Fits(ntuples, 4 * std::max<size_t>(1, num_attrs)));
    SnapshotComponentImage comp;
    comp.tuples.reserve(ntuples);
    for (uint64_t t = 0; t < ntuples; ++t) {
      MRSL_ASSIGN_OR_RETURN(Tuple tuple, ReadTuple(&in, schema));
      comp.tuples.push_back(std::move(tuple));
    }
    comp.dists.reserve(ntuples);
    for (uint64_t t = 0; t < ntuples; ++t) {
      MRSL_ASSIGN_OR_RETURN(JointDist dist, ReadDist(&in, schema));
      comp.dists.push_back(std::make_shared<const JointDist>(std::move(dist)));
    }
    image.components.push_back(std::move(comp));
  }

  if (!in.done()) {
    return Status::Corruption("snapshot has trailing bytes");
  }
  return image;
}

Status SaveSnapshotFile(const SnapshotImage& image,
                        const std::string& path) {
  // Atomic replace: a reader (or a crash) sees either the previous
  // complete snapshot or the new one, never a torn hybrid.
  return AtomicWriteFile(path, SerializeSnapshot(image));
}

Result<SnapshotImage> LoadSnapshotFile(const std::string& path) {
  MRSL_ASSIGN_OR_RETURN(std::string bytes, ReadFile(path));
  return DeserializeSnapshot(bytes);
}

}  // namespace mrsl
