// The contribution walk pushes a dirty block's NEW alternatives down the
// plan tree as concrete candidate rows: Scan of the block's source emits
// them, Select filters them with the real predicate, Project rewrites
// them. The moment values stop being concrete (a Join would need the
// other side's rows) the walk turns conservative and reports "may
// contribute" — soundness over precision. Everything else here is a
// plain LRU keyed by the plan's canonical text.

#include "pdb/plan_cache.h"

#include <algorithm>

namespace mrsl {
namespace {

constexpr uint64_t kBlockIndexMask = (uint64_t{1} << 40) - 1;

// Candidate rows a single block could push through a plan subtree.
struct Contribution {
  bool conservative = false;      // value flow unknown past a join
  std::vector<Tuple> candidates;  // concrete candidate rows otherwise

  bool Any() const { return conservative || !candidates.empty(); }
};

Contribution WalkContribution(const PlanNode& node, uint32_t source,
                              size_t block_index, const Block& block) {
  switch (node.op) {
    case PlanNode::Op::kScan: {
      Contribution c;
      if (node.source != source) return c;
      c.candidates.reserve(block.alternatives.size());
      for (const Alternative& a : block.alternatives) {
        c.candidates.push_back(a.tuple);
      }
      return c;
    }
    case PlanNode::Op::kSelect: {
      Contribution c = WalkContribution(*node.left, source, block_index,
                                        block);
      if (c.conservative) return c;
      std::vector<Tuple> kept;
      for (Tuple& t : c.candidates) {
        if (node.pred.Eval(t)) kept.push_back(std::move(t));
      }
      c.candidates = std::move(kept);
      return c;
    }
    case PlanNode::Op::kProject: {
      Contribution c = WalkContribution(*node.left, source, block_index,
                                        block);
      if (c.conservative) return c;
      for (Tuple& t : c.candidates) {
        Tuple proj(node.attrs.size());
        for (size_t k = 0; k < node.attrs.size(); ++k) {
          proj.set_value(static_cast<AttrId>(k), t.value(node.attrs[k]));
        }
        t = std::move(proj);
      }
      return c;
    }
    case PlanNode::Op::kJoin: {
      Contribution left = WalkContribution(*node.left, source, block_index,
                                           block);
      Contribution right = WalkContribution(*node.right, source,
                                            block_index, block);
      Contribution c;
      // Past a join the block's rows mix with unknown partner rows; any
      // surviving candidate on either side means "maybe".
      c.conservative = left.Any() || right.Any();
      return c;
    }
  }
  Contribution c;
  c.conservative = true;  // unknown operator: stay sound
  return c;
}

}  // namespace

bool BlockMayContribute(const PlanNode& plan, uint32_t source,
                        size_t block_index, const Block& block) {
  return WalkContribution(plan, source, block_index, block).Any();
}

PlanCache::PlanCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::shared_ptr<const PlanEvaluation> PlanCache::Lookup(
    const std::string& text, uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(text);
  if (it == index_.end() || it->second->epoch != epoch) {
    ++stats_.misses;
    return nullptr;
  }
  lru_.splice(lru_.begin(), lru_, it->second);
  ++stats_.hits;
  return it->second->eval;
}

void PlanCache::Insert(const std::string& text, PlanPtr plan,
                       uint64_t epoch,
                       std::vector<uint64_t> touched_blocks,
                       std::shared_ptr<const PlanEvaluation> eval) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = index_.find(text);
  if (it != index_.end()) {
    // A reader pinned on a superseded epoch (the server's QueryOn path)
    // may finish its evaluation after a fresher one was cached; its
    // stale insert must not evict the entry that Lookup can actually
    // serve.
    if (it->second->epoch >= epoch) return;
    lru_.erase(it->second);
    index_.erase(it);
  }
  Entry entry;
  entry.text = text;
  entry.plan = std::move(plan);
  entry.epoch = epoch;
  entry.touched_blocks = std::move(touched_blocks);
  entry.eval = std::move(eval);
  lru_.push_front(std::move(entry));
  index_[text] = lru_.begin();
  ++stats_.insertions;
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().text);
    lru_.pop_back();
    ++stats_.evicted;
  }
}

void PlanCache::OnCommit(uint64_t new_epoch, bool index_stable,
                         const std::vector<uint64_t>& dirty_blocks,
                         const ProbDatabase& new_db) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = lru_.begin(); it != lru_.end();) {
    // Only entries evaluated at the epoch this commit supersedes can be
    // carried forward: an older entry (e.g. inserted by a reader that
    // was still pinned on a previous epoch while a commit raced past)
    // skipped that commit's invalidation checks and must be dropped.
    bool keep = index_stable && it->epoch + 1 == new_epoch;
    if (keep) {
      for (uint64_t key : dirty_blocks) {
        if (std::binary_search(it->touched_blocks.begin(),
                               it->touched_blocks.end(), key)) {
          keep = false;  // the old result depended on this block
          break;
        }
        const uint32_t source = static_cast<uint32_t>(key >> 40);
        const size_t block = static_cast<size_t>(key & kBlockIndexMask);
        if (block >= new_db.num_blocks() ||
            BlockMayContribute(*it->plan, source, block,
                               new_db.block(block))) {
          keep = false;  // the new block could add rows to the result
          break;
        }
      }
    }
    if (keep) {
      it->epoch = new_epoch;
      ++stats_.carried_forward;
      ++it;
    } else {
      index_.erase(it->text);
      it = lru_.erase(it);
      ++stats_.invalidated;
    }
  }
}

void PlanCache::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  lru_.clear();
  index_.clear();
}

size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lru_.size();
}

PlanCache::Stats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

}  // namespace mrsl
