// Columnar (vectorized) intermediate results for the plan algebra.
//
// The row evaluator in pdb/plan.cc carries every intermediate row as a
// PlanRow — a heap-allocated Tuple plus its event — so the Join and
// Project inner loops pay one or more allocations per row. A
// ColumnBatch is the struct-of-arrays alternative: one contiguous
// std::vector<ValueId> per attribute, contiguous probability-interval
// arrays, and a side lineage table (LineageTable) that stores every
// row's block-key set and alternative set in shared CSR arenas —
// appending a row's lineage is an amortized-O(1) arena append, never a
// per-row vector allocation. Operators become sweeps over flat arrays:
//
//   * Select is a per-atom predicate sweep producing a selection vector,
//     applied with one in-place gather (Keep);
//   * Join hash-builds on a raw key column (BuildKeyIndex) and appends
//     output column-by-column in batched gather passes;
//   * Project assigns group ids in one hashing sweep over the projected
//     columns (AssignGroupIds) and then disjoins each group's events in
//     one pass — no per-row Tuple is ever materialized.
//
// The batch evaluator built on these primitives (EvaluatePlan in
// pdb/plan.h) is bit-identical to the row reference evaluator: same row
// order, same floating-point operations in the same order, same lineage
// summaries. The differential sweep in tests/ holds the two paths to
// exact equality.

#ifndef MRSL_PDB_COLUMNAR_H_
#define MRSL_PDB_COLUMNAR_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "pdb/plan.h"
#include "pdb/prob_database.h"

namespace mrsl {

/// Column-oriented lineage storage for a batch of rows — the arena
/// equivalent of one Lineage per row. Row r's block keys live in
/// keys[key_off[r] .. key_off[r+1]); when simple[r] is set, the row's
/// event is "block `block[r]` of source `source[r]` chooses an
/// alternative in alts[alt_off[r] .. alt_off[r+1])". Both CSR arenas
/// are shared across the batch, so appending lineage never allocates
/// per row.
struct LineageTable {
  std::vector<uint64_t> keys;          // concatenated sorted key sets
  std::vector<uint32_t> key_off{0};    // num_rows() + 1 offsets
  std::vector<uint8_t> simple;         // per-row simple-event flag
  std::vector<uint32_t> source;        // valid when simple
  std::vector<uint64_t> block;         // valid when simple
  std::vector<uint32_t> alts;          // concatenated sorted alt sets
  std::vector<uint32_t> alt_off{0};    // num_rows() + 1 offsets

  size_t num_rows() const { return simple.size(); }

  /// Logical arena footprint (element counts × element sizes, capacity
  /// excluded so the number is deterministic across allocators) — the
  /// resource-accounting input for PlanResources::peak_lineage_bytes.
  size_t ByteSize() const;

  const uint64_t* keys_begin(size_t r) const { return keys.data() + key_off[r]; }
  size_t keys_size(size_t r) const { return key_off[r + 1] - key_off[r]; }
  const uint32_t* alts_begin(size_t r) const { return alts.data() + alt_off[r]; }
  size_t alts_size(size_t r) const { return alt_off[r + 1] - alt_off[r]; }

  void ReserveRows(size_t n);

  /// Appends a simple event: keys = {BlockKey(src, blk)}, the given
  /// sorted alternative set.
  void AppendSimple(uint32_t src, uint64_t blk,
                    const std::vector<uint32_t>& alt_set);

  /// Appends a composite event with the given sorted key set (no
  /// alternative set).
  void AppendComposite(const std::vector<uint64_t>& key_set);

  /// Appends a copy of row `r` of `other`.
  void AppendFrom(const LineageTable& other, size_t r);

  /// Appends a copy of an owned Lineage.
  void Append(const Lineage& lin);

  /// Rematerializes row `r` as an owned Lineage.
  Lineage MaterializeRow(size_t r) const;

  /// In-place gather: keeps exactly the rows named by `sel` (ascending,
  /// unique), preserving order.
  void Keep(const std::vector<uint32_t>& sel);
};

/// A struct-of-arrays run of intermediate rows: cols[a][r] is the value
/// of attribute a in row r; lo/hi are the row's probability interval;
/// lineage row r is its event summary. All arrays are aligned (same
/// number of rows).
struct ColumnBatch {
  Schema schema;
  std::vector<std::vector<ValueId>> cols;
  std::vector<double> lo;
  std::vector<double> hi;
  LineageTable lineage;

  /// False once any operator on the way here dissociated (mirrors
  /// PlanResult::safe).
  bool safe = true;

  size_t num_rows() const { return lo.size(); }
  size_t num_attrs() const { return cols.size(); }

  /// Logical footprint of the batch including its lineage arena
  /// (deterministic: element counts, not capacities). Feeds
  /// PlanResources::peak_batch_bytes.
  size_t ByteSize() const;

  /// Replaces the schema and resets the column arrays to empty columns
  /// of the new arity (row arrays untouched — call on an empty batch).
  void SetSchema(Schema s);

  /// Reserves capacity for `n` rows across every aligned array.
  void ReserveRows(size_t n);

  /// Appends one row, reading values from `values[0..num_attrs)`.
  void AppendRow(const ValueId* values, double lo_p, double hi_p,
                 const Lineage& lin);

  /// In-place gather: keeps exactly the rows named by `sel` (ascending,
  /// unique), preserving order. The selection-vector consumer.
  void Keep(const std::vector<uint32_t>& sel);
};

/// Leaf batch: every alternative of every block of `db`, block-major —
/// the same row order as the row evaluator's Scan.
ColumnBatch ScanToBatch(const ProbDatabase& db, uint32_t source);

/// Rematerializes the batch as the row representation (done once, at the
/// plan root). Consumes the batch.
PlanResult BatchToPlanResult(ColumnBatch&& batch);

/// Hash index over a raw key column: key value -> ascending row ids.
/// Duplicate keys accumulate in row order (bag semantics).
std::unordered_map<ValueId, std::vector<uint32_t>> BuildKeyIndex(
    const std::vector<ValueId>& key_col);

/// Group-id assignment for projection dedup: rows with identical values
/// on `attrs` share a group; groups are numbered in first-seen row
/// order (the row evaluator's group order).
struct GroupIds {
  std::vector<uint32_t> group_of_row;  // aligned with the batch's rows
  std::vector<uint32_t> rep_row;       // first row of each group
  size_t num_groups() const { return rep_row.size(); }
};
GroupIds AssignGroupIds(const ColumnBatch& batch,
                        const std::vector<AttrId>& attrs);

}  // namespace mrsl

#endif  // MRSL_PDB_COLUMNAR_H_
