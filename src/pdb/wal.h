// Append-only write-ahead delta log — the durable half of the store's
// write path (pdb/store.h).
//
// A WAL directory holds one or more segment files named
// `wal-<base_epoch as 16 hex digits>.log`. Every record in a segment
// carries an epoch strictly greater than the segment's base epoch, so a
// snapshot saved at epoch E makes every segment with records <= E
// garbage: compaction rotates to a fresh segment based at E and deletes
// the rest. Segment layout:
//
//   file header: [magic "MRSLWAL0"][version u32][base_epoch u64]
//   record:      [payload_len u32][fnv1a64(payload) u64][payload]
//   payload:     [epoch u64][binary RelationDelta (core/delta.h)]
//
// Appends go to the kernel immediately; fdatasync runs per append
// (kAlways), under the caller's control (kGroup — the server's commit
// leader syncs once per drained batch), or never (kNone, benchmarks
// only). A record may be acknowledged to a client only after the sync
// that covers it returned — that ordering, not the write itself, is the
// "no acked delta is ever lost" invariant.
//
// Replay semantics (the crash contract): a crash can only damage the
// tail of the newest segment — a torn final record, or a segment file
// caught before its header was complete. ReplayWalDir therefore returns
// the longest valid record prefix plus a `tail` status: OK when the log
// ends exactly at a record boundary, Corruption (with the segment path
// and the valid byte count) when the tail is torn. Damage that a crash
// cannot produce — a torn record in a non-final segment — fails the
// whole replay instead, because silently dropping records that were
// followed by durable ones WOULD lose acknowledged deltas.

#ifndef MRSL_PDB_WAL_H_
#define MRSL_PDB_WAL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/delta.h"
#include "relational/schema.h"
#include "util/fault_file.h"
#include "util/result.h"

namespace mrsl {

/// Current WAL segment format version.
inline constexpr uint32_t kWalFormatVersion = 1;

/// When the log reaches the disk relative to the acknowledgement.
enum class WalSyncMode {
  kAlways,  // fdatasync inside every Append
  kGroup,   // the caller syncs (one fsync per commit group)
  kNone,    // never sync (benchmarks; no durability)
};

/// Parses "always" / "group" / "none" (the --sync-mode CLI values).
Result<WalSyncMode> ParseWalSyncMode(std::string_view text);
const char* WalSyncModeName(WalSyncMode mode);

/// One replayed log record.
struct WalRecord {
  uint64_t epoch = 0;
  RelationDelta delta;
};

/// One segment file of a WAL directory.
struct WalSegmentInfo {
  std::string path;
  uint64_t base_epoch = 0;
};

/// The outcome of replaying a segment or a whole directory: the longest
/// valid record prefix, and what the tail looked like.
struct WalReplay {
  std::vector<WalRecord> records;
  /// OK when the log ended exactly at a record boundary; Corruption when
  /// the final record was torn (crash artifact — the prefix stands).
  Status tail = Status::OK();
  /// The file holding the torn tail and the byte count of its valid
  /// prefix — what a recovery truncates to before appending again.
  std::string tail_path;
  uint64_t tail_valid_bytes = 0;
};

/// Counters kept by the live log (all since Open unless noted).
struct WalStats {
  uint64_t records_appended = 0;
  uint64_t bytes_appended = 0;
  uint64_t syncs = 0;
  double sync_seconds = 0.0;   // cumulative fdatasync wall time
  uint64_t live_records = 0;   // records in the directory (drops at
  uint64_t live_bytes = 0;     // compaction, grows at append)
  uint64_t segments = 0;       // segment files in the directory
};

/// Segment files of `dir` in base-epoch order. The directory is created
/// (one level) if missing, so opening a WAL in a fresh directory works.
Result<std::vector<WalSegmentInfo>> ListWalSegments(const std::string& dir);

/// Replays one segment file. Fails outright only on IO errors or a file
/// that is not a WAL segment (bad magic / unsupported version with a
/// complete header); torn damage is reported through WalReplay::tail.
Result<WalReplay> ReplayWalFile(const std::string& path,
                                const Schema& schema);

/// Replays every segment of `dir` in base-epoch order. Epochs must be
/// strictly increasing across the concatenation; a torn tail is
/// tolerated only in the final segment (see the crash contract above).
Result<WalReplay> ReplayWalDir(const std::string& dir,
                               const Schema& schema);

/// Truncates the segment at `path` to `valid_bytes` — how a recovery
/// discards a torn tail so the next replay sees a clean boundary.
Status TruncateWalSegment(const std::string& path, uint64_t valid_bytes);

/// The live, append side of a WAL directory. Not thread-safe: the store
/// serializes Append/Sync/Compact under its writer mutex.
class WriteAheadLog {
 public:
  /// Opens `dir` (creating it if missing) for appending on top of epoch
  /// `base_epoch`: starts a fresh active segment `wal-<base>.log`. Any
  /// replay must happen BEFORE Open — the active segment truncates a
  /// same-named leftover (which, post-replay, can only hold records the
  /// store already has). `replayed_live_records` seeds the live_records
  /// stat (the record count the caller's replay found on disk); live
  /// bytes are recomputed from the surviving segment files.
  static Result<std::unique_ptr<WriteAheadLog>> Open(
      const std::string& dir, uint64_t base_epoch, WalSyncMode mode,
      uint64_t replayed_live_records = 0);

  /// Appends one (epoch, delta) record. Epochs must increase strictly
  /// across appends. kAlways syncs before returning; other modes leave
  /// the record pending until Sync().
  Status Append(uint64_t epoch, const RelationDelta& delta);

  /// fdatasync on the active segment — after this returns, every append
  /// so far may be acknowledged.
  Status Sync();

  /// Snapshot-compaction handshake: rotates to a fresh segment based at
  /// `through_epoch` and deletes every older segment. The caller must
  /// guarantee no record beyond `through_epoch` exists (the store calls
  /// this under its writer mutex right after saving a snapshot at that
  /// epoch).
  Status Compact(uint64_t through_epoch);

  const std::string& dir() const { return dir_; }
  WalSyncMode mode() const { return mode_; }
  uint64_t last_epoch() const { return last_epoch_; }
  const WalStats& stats() const { return stats_; }

  /// Renders one record's framed bytes (header excluded) — exposed so
  /// the tests and the benchmark can reason about record sizes.
  static std::string EncodeRecord(uint64_t epoch,
                                  const RelationDelta& delta);

 private:
  WriteAheadLog(std::string dir, WalSyncMode mode, uint64_t base_epoch);

  /// Opens a fresh active segment based at `base_epoch` (truncating).
  Status StartSegment(uint64_t base_epoch);

  std::string dir_;
  WalSyncMode mode_;
  uint64_t last_epoch_ = 0;
  uint64_t pending_records_ = 0;  // appended but not yet synced
  AppendOnlyFile active_;
  std::vector<WalSegmentInfo> segments_;  // includes the active one
  WalStats stats_;
};

}  // namespace mrsl

#endif  // MRSL_PDB_WAL_H_
