#include "pdb/fingerprint.h"

#include <cstdio>

#include "util/string_util.h"

namespace mrsl {

namespace {

// FNV-1a, 64-bit: stable across platforms and dependency-free. Digest
// keys must survive process restarts (dashboards join on them), so no
// std::hash (implementation-defined) and no seed.
uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

// Predicate::ToString with every literal replaced by "?". Atom order is
// preserved: "a=X AND b=Y" and "b=Y AND a=X" are different shapes (the
// columnar evaluator sweeps atoms in order), matching the canonical
// plan-text identity the plan cache already uses.
std::string NormalizePredicate(const Predicate& pred, const Schema& schema) {
  const auto& atoms = pred.atoms();
  if (atoms.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < atoms.size(); ++i) {
    if (i != 0) out += " AND ";
    out += schema.attr(atoms[i].attr).name();
    out += atoms[i].negated ? "!=" : "=";
    out += '?';
  }
  return out;
}

// Mirrors PlanToString (plan.cc) node for node; only the Select case
// differs (placeholder literals). Join carries no literals — its
// attribute names are part of the shape.
Result<std::string> NormalizePlan(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources) {
  switch (plan.op) {
    case PlanNode::Op::kScan: {
      if (plan.source >= sources.size() || sources[plan.source] == nullptr) {
        return Status::InvalidArgument("plan references invalid source");
      }
      return "scan(" + std::to_string(plan.source) + ")";
    }
    case PlanNode::Op::kSelect: {
      auto schema = PlanOutputSchema(*plan.left, sources);
      if (!schema.ok()) return schema.status();
      auto child = NormalizePlan(*plan.left, sources);
      if (!child.ok()) return child.status();
      return "select(" + NormalizePredicate(plan.pred, *schema) + "; " +
             *child + ")";
    }
    case PlanNode::Op::kProject: {
      auto schema = PlanOutputSchema(*plan.left, sources);
      if (!schema.ok()) return schema.status();
      auto child = NormalizePlan(*plan.left, sources);
      if (!child.ok()) return child.status();
      std::vector<std::string> names;
      for (AttrId a : plan.attrs) {
        if (a >= schema->num_attrs()) {
          return Status::InvalidArgument("project attr out of range");
        }
        names.push_back(schema->attr(a).name());
      }
      return "project(" + Join(names, ",") + "; " + *child + ")";
    }
    case PlanNode::Op::kJoin: {
      auto lschema = PlanOutputSchema(*plan.left, sources);
      if (!lschema.ok()) return lschema.status();
      auto rschema = PlanOutputSchema(*plan.right, sources);
      if (!rschema.ok()) return rschema.status();
      if (plan.left_attr >= lschema->num_attrs() ||
          plan.right_attr >= rschema->num_attrs()) {
        return Status::InvalidArgument("join attribute out of range");
      }
      auto left = NormalizePlan(*plan.left, sources);
      if (!left.ok()) return left.status();
      auto right = NormalizePlan(*plan.right, sources);
      if (!right.ok()) return right.status();
      return "join(" + *left + "; " + *right + "; " +
             lschema->attr(plan.left_attr).name() + "=" +
             rschema->attr(plan.right_attr).name() + ")";
    }
  }
  return Status::Internal("unknown plan operator");
}

}  // namespace

std::string FingerprintHex(uint64_t hash) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash));
  return std::string(buf, 16);
}

const char* QueryKindName(ParsedQuery::Kind kind) {
  switch (kind) {
    case ParsedQuery::Kind::kRelation:
      return "relation";
    case ParsedQuery::Kind::kExists:
      return "exists";
    case ParsedQuery::Kind::kCount:
      return "count";
  }
  return "unknown";
}

Result<QueryFingerprint> FingerprintPlan(
    const PlanNode& plan, ParsedQuery::Kind kind,
    const std::vector<const ProbDatabase*>& sources) {
  auto body = NormalizePlan(plan, sources);
  if (!body.ok()) return body.status();
  QueryFingerprint out;
  switch (kind) {
    case ParsedQuery::Kind::kRelation:
      out.normalized = std::move(*body);
      break;
    case ParsedQuery::Kind::kExists:
      out.normalized = "exists(" + *body + ")";
      break;
    case ParsedQuery::Kind::kCount:
      out.normalized = "count(" + *body + ")";
      break;
  }
  out.hash = Fnv1a64(out.normalized);
  return out;
}

Result<QueryFingerprint> FingerprintQuery(
    const ParsedQuery& query,
    const std::vector<const ProbDatabase*>& sources) {
  if (query.plan == nullptr) {
    return Status::InvalidArgument("parsed query has no plan");
  }
  return FingerprintPlan(*query.plan, query.kind, sources);
}

}  // namespace mrsl
