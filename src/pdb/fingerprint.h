// Query fingerprinting for workload analytics (pg_stat_statements
// style): canonicalize a parsed plan by replacing every Select literal
// with a placeholder, render the normalized text, and hash it to a
// stable 64-bit fingerprint.
//
// The normalized rendering mirrors PlanToString exactly — same operator
// syntax, same attribute names, same join keys — except that predicate
// atoms render as "attr=?" / "attr!=?" instead of "attr=LABEL". The
// aggregate wrapper (exists/count) is part of the text, so the same
// plan body under different query kinds fingerprints apart. Two
// properties follow, and the property test in
// tests/pdb_fingerprint_test.cc pins both over randomized plans:
//
//   * literal-insensitivity: plans differing ONLY in predicate
//     constants share a fingerprint (their normalized texts are equal);
//   * shape-sensitivity: plans differing in operator structure,
//     attribute sets, negation, join keys, or query kind never do
//     (distinct normalized texts; hash collisions aside).
//
// The fingerprint is FNV-1a over the normalized text, so it is stable
// across processes and restarts — a digest key that can be logged,
// joined against, and carried in dashboards.

#ifndef MRSL_PDB_FINGERPRINT_H_
#define MRSL_PDB_FINGERPRINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "pdb/plan.h"
#include "pdb/prob_database.h"
#include "util/result.h"

namespace mrsl {

/// A literal-insensitive identity for one query shape.
struct QueryFingerprint {
  uint64_t hash = 0;        ///< FNV-1a64 of `normalized`
  std::string normalized;   ///< e.g. "count(select(edu=?; scan(0)))"
};

/// 16 lowercase hex digits of `hash` — the wire/JSON rendering.
std::string FingerprintHex(uint64_t hash);

/// "relation" / "exists" / "count" — the digest's kind label.
const char* QueryKindName(ParsedQuery::Kind kind);

/// Fingerprints `plan` under `kind`. Fails only where PlanToString
/// would (invalid source / attribute references).
Result<QueryFingerprint> FingerprintPlan(
    const PlanNode& plan, ParsedQuery::Kind kind,
    const std::vector<const ProbDatabase*>& sources);

/// FingerprintPlan over a parsed query.
Result<QueryFingerprint> FingerprintQuery(
    const ParsedQuery& query,
    const std::vector<const ProbDatabase*>& sources);

}  // namespace mrsl

#endif  // MRSL_PDB_FINGERPRINT_H_
