// Safe-plan compilation: factored-event evaluation plus a lattice search
// over partial conditionings of the correlated blocks.
//
// The evaluator mirrors the extensional rules of pdb/plan.cc operator by
// operator — same schemas, same row order, same interval formulas at the
// fallback — but every tracked row additionally carries its event as a
// positive DNF over interned (block, alternative-set) atoms. That extra
// structure buys two things the lineage summary cannot:
//
//   * joins of composite events stay exact (the conjunction of two
//     conjunctions of atoms is again a conjunction of atoms, with
//     same-block atoms intersected — impossible pairs prune to zero);
//   * correlated disjunctions can be refined after the fact by
//     conditioning shared blocks (Shannon expansion), which is the
//     lattice walk CompileQuery's anytime loop performs.
//
// Every interval this file produces is contained in the interval the
// fixed dissociation of EvaluatePlan would report for the same event:
// the base rules are identical formulas over operand intervals that are
// themselves contained (monotone rules preserve containment), extra
// exactness only shrinks intervals, and refinement intersects. The
// differential suite pins that containment on randomized plans.

#include "pdb/compiler.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <numeric>
#include <unordered_map>
#include <utility>

#include "util/timer.h"

namespace mrsl {
namespace {

double Clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

// Caps on the factored representation. A row past either cap degrades
// to its lineage summary and interval (sound, just not refinable); the
// caps bound memory on adversarial plans (joins of wide disjunctions).
constexpr size_t kMaxDisjunctsPerRow = 64;
constexpr size_t kMaxAtomsPerDisjunct = 16;

// ---------------------------------------------------------------------------
// Atoms: interned "block b of source s picks an alternative in `alts`"
// literals. Scan rows intern one single-alternative atom per base
// alternative; same-block conjunctions intern intersections and
// same-block exact unions intern unions, so a disjunct never holds two
// atoms on one block.
// ---------------------------------------------------------------------------

struct AtomInfo {
  uint64_t key = 0;  // Lineage::BlockKey(source, block)
  uint32_t source = 0;
  size_t block = 0;
  std::vector<uint32_t> alts;  // sorted, unique
  double mass = 0.0;           // clamped alternative-set mass
};

class AtomTable {
 public:
  explicit AtomTable(const std::vector<const ProbDatabase*>& sources)
      : sources_(sources) {}

  uint32_t Intern(uint32_t source, size_t block, std::vector<uint32_t> alts) {
    uint64_t key = Lineage::BlockKey(source, block);
    std::vector<uint32_t>& ids = by_key_[key];
    for (uint32_t id : ids) {
      if (atoms_[id].alts == alts) return id;
    }
    AtomInfo info;
    info.key = key;
    info.source = source;
    info.block = block;
    double mass = 0.0;
    const Block& blk = sources_[source]->block(block);
    for (uint32_t j : alts) mass += blk.alternatives[j].prob;
    info.mass = Clamp01(mass);
    info.alts = std::move(alts);
    atoms_.push_back(std::move(info));
    uint32_t id = static_cast<uint32_t>(atoms_.size() - 1);
    ids.push_back(id);
    return id;
  }

  const AtomInfo& at(uint32_t id) const { return atoms_[id]; }
  const ProbDatabase& source(uint32_t s) const { return *sources_[s]; }

 private:
  const std::vector<const ProbDatabase*>& sources_;
  std::vector<AtomInfo> atoms_;
  std::unordered_map<uint64_t, std::vector<uint32_t>> by_key_;
};

// A row's factored event: disjunct d covers atom ids
// [ends[d-1], ends[d]) of `atoms`, each span sorted by block key with at
// most one atom per block. `tracked == false` means the row overflowed
// a cap (or descends from one that did): only its lineage summary and
// interval remain authoritative.
struct Dnf {
  std::vector<uint32_t> atoms;
  std::vector<uint32_t> ends;
  bool tracked = false;

  size_t disjuncts() const { return ends.size(); }
  size_t begin_of(size_t d) const { return d == 0 ? 0 : ends[d - 1]; }
};

// One evaluated row: values, envelope interval, lineage summary (the
// same summary pdb/plan.cc maintains), and the factored event.
struct CRow {
  Tuple tuple;
  ProbInterval prob;
  Lineage lineage;
  Dnf dnf;
};

// No Schema here, only its width: phase 1 already validated the plan
// and owns the output schema, and copying a Schema with a large label
// vocabulary would cost more than this whole pass on big databases.
struct CTable {
  size_t num_attrs = 0;
  std::vector<CRow> rows;
};

// Single-disjunct helper: the exact product of the disjunct's atom
// masses (atoms within a disjunct are distinct blocks, hence
// independent).
double DisjunctMass(const Dnf& dnf, size_t d, const AtomTable& atoms) {
  double p = 1.0;
  for (size_t i = dnf.begin_of(d); i < dnf.ends[d]; ++i) {
    p *= atoms.at(dnf.atoms[i]).mass;
  }
  return p;
}

// AND of two tracked DNFs: the cross product of their disjunct lists,
// merging same-block atoms by alternative-set intersection. Returns
// false on cap overflow (leave the row untracked); sets *impossible
// when every product disjunct vanished — the rows cannot coexist.
bool ConjoinDnf(const Dnf& a, const Dnf& b, AtomTable* atoms, Dnf* out,
                bool* impossible) {
  *impossible = false;
  if (a.disjuncts() * b.disjuncts() > kMaxDisjunctsPerRow) return false;
  out->atoms.clear();
  out->ends.clear();
  std::vector<uint32_t> merged;
  for (size_t da = 0; da < a.disjuncts(); ++da) {
    for (size_t db = 0; db < b.disjuncts(); ++db) {
      merged.clear();
      bool dead = false;
      size_t ia = a.begin_of(da);
      size_t ib = b.begin_of(db);
      while (ia < a.ends[da] || ib < b.ends[db]) {
        if (ib == b.ends[db] || (ia != a.ends[da] &&
                                 atoms->at(a.atoms[ia]).key <
                                     atoms->at(b.atoms[ib]).key)) {
          merged.push_back(a.atoms[ia++]);
        } else if (ia == a.ends[da] ||
                   atoms->at(b.atoms[ib]).key < atoms->at(a.atoms[ia]).key) {
          merged.push_back(b.atoms[ib++]);
        } else {
          // Same block on both sides: the chosen alternative must lie in
          // both sets.
          const AtomInfo& xa = atoms->at(a.atoms[ia]);
          const AtomInfo& xb = atoms->at(b.atoms[ib]);
          std::vector<uint32_t> inter;
          std::set_intersection(xa.alts.begin(), xa.alts.end(),
                                xb.alts.begin(), xb.alts.end(),
                                std::back_inserter(inter));
          if (inter.empty()) {
            dead = true;
            break;
          }
          uint32_t src = xa.source;
          size_t blk = xa.block;
          ++ia;
          ++ib;
          merged.push_back(atoms->Intern(src, blk, std::move(inter)));
        }
      }
      if (dead) continue;
      if (merged.size() > kMaxAtomsPerDisjunct) return false;
      out->atoms.insert(out->atoms.end(), merged.begin(), merged.end());
      out->ends.push_back(static_cast<uint32_t>(out->atoms.size()));
    }
  }
  if (out->ends.empty()) {
    *impossible = true;
    return true;
  }
  out->tracked = true;
  return true;
}

// OR of tracked DNFs: plain disjunct concatenation. Returns false on
// cap overflow.
bool DisjoinDnf(const std::vector<const Dnf*>& parts, Dnf* out) {
  size_t disjuncts = 0;
  size_t total = 0;
  for (const Dnf* p : parts) {
    if (!p->tracked) return false;
    disjuncts += p->disjuncts();
    total += p->atoms.size();
  }
  if (disjuncts > kMaxDisjunctsPerRow * 4) return false;
  out->atoms.clear();
  out->ends.clear();
  out->atoms.reserve(total);
  out->ends.reserve(disjuncts);
  for (const Dnf* p : parts) {
    for (size_t d = 0; d < p->disjuncts(); ++d) {
      out->atoms.insert(out->atoms.end(), p->atoms.begin() + p->begin_of(d),
                        p->atoms.begin() + p->ends[d]);
      out->ends.push_back(static_cast<uint32_t>(out->atoms.size()));
    }
  }
  out->tracked = true;
  return true;
}

// ---------------------------------------------------------------------------
// The lattice search: weighted model counting of a positive DNF by
// independence partitioning + Shannon expansion on shared blocks, with
// a world budget. Running out of budget falls back to the oblivious
// dissociation bound — the lattice's bottom element — so every return
// value is a sound interval and exact whenever the budget sufficed.
// ---------------------------------------------------------------------------

using WorkDnf = std::vector<std::vector<uint32_t>>;  // disjuncts of atom ids

class LatticeSearch {
 public:
  LatticeSearch(const AtomTable& atoms, size_t* worlds_expanded)
      : atoms_(atoms), worlds_expanded_(worlds_expanded) {}

  ProbInterval Eval(const WorkDnf& dnf, size_t budget) {
    if (dnf.empty()) return ProbInterval::Exact(0.0);
    for (const std::vector<uint32_t>& d : dnf) {
      if (d.empty()) return ProbInterval::Exact(1.0);  // a TRUE disjunct
    }
    // Split into independent components (disjuncts sharing no block are
    // independent events) and complement-multiply.
    std::vector<std::vector<size_t>> comps = Components(dnf);
    double none_lo = 1.0;
    double none_hi = 1.0;
    for (const std::vector<size_t>& comp : comps) {
      ProbInterval p = EvalComponent(dnf, comp, budget / comps.size() +
                                                   (comps.size() == 1 ? 0 : 1));
      if (comps.size() == 1) return p;
      none_lo *= (1.0 - p.lo);
      none_hi *= (1.0 - p.hi);
    }
    return ProbInterval::Bounds(Clamp01(1.0 - none_lo),
                                Clamp01(1.0 - none_hi));
  }

 private:
  // Connected components of the shared-block graph over disjuncts,
  // ordered by ascending first disjunct index.
  std::vector<std::vector<size_t>> Components(const WorkDnf& dnf) {
    std::vector<size_t> parent(dnf.size());
    std::iota(parent.begin(), parent.end(), 0);
    std::function<size_t(size_t)> find = [&](size_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
      }
      return x;
    };
    std::unordered_map<uint64_t, size_t> owner;
    for (size_t i = 0; i < dnf.size(); ++i) {
      for (uint32_t id : dnf[i]) {
        auto [it, inserted] = owner.emplace(atoms_.at(id).key, i);
        if (!inserted) parent[find(i)] = find(it->second);
      }
    }
    std::unordered_map<size_t, size_t> slot;
    std::vector<std::vector<size_t>> comps;
    for (size_t i = 0; i < dnf.size(); ++i) {
      auto [it, inserted] = slot.emplace(find(i), comps.size());
      if (inserted) comps.emplace_back();
      comps[it->second].push_back(i);
    }
    return comps;
  }

  ProbInterval EvalComponent(const WorkDnf& dnf,
                             const std::vector<size_t>& comp, size_t budget) {
    if (comp.size() == 1) {
      double p = 1.0;
      for (uint32_t id : dnf[comp[0]]) p *= atoms_.at(id).mass;
      return ProbInterval::Exact(p);
    }

    // All disjuncts a single atom on one shared block: the union of
    // their alternative sets has exact mass.
    bool one_block = true;
    for (size_t i : comp) {
      if (dnf[i].size() != 1 ||
          atoms_.at(dnf[i][0]).key != atoms_.at(dnf[comp[0]][0]).key) {
        one_block = false;
        break;
      }
    }
    if (one_block) {
      const AtomInfo& first = atoms_.at(dnf[comp[0]][0]);
      std::vector<uint32_t> alts;
      for (size_t i : comp) {
        const std::vector<uint32_t>& more = atoms_.at(dnf[i][0]).alts;
        alts.insert(alts.end(), more.begin(), more.end());
      }
      std::sort(alts.begin(), alts.end());
      alts.erase(std::unique(alts.begin(), alts.end()), alts.end());
      const Block& blk = atoms_.source(first.source).block(first.block);
      double mass = 0.0;
      for (uint32_t j : alts) mass += blk.alternatives[j].prob;
      return ProbInterval::Exact(Clamp01(mass));
    }

    // Pick the pivot: the block shared by the most disjuncts (ties to
    // the smallest key, deterministically).
    std::map<uint64_t, size_t> counts;
    for (size_t i : comp) {
      for (uint32_t id : dnf[i]) ++counts[atoms_.at(id).key];
    }
    uint64_t pivot = 0;
    size_t best = 0;
    for (const auto& [key, n] : counts) {
      if (n > best) {
        best = n;
        pivot = key;
      }
    }
    const AtomInfo* sample = nullptr;
    for (size_t i : comp) {
      for (uint32_t id : dnf[i]) {
        if (atoms_.at(id).key == pivot) sample = &atoms_.at(id);
      }
    }
    const Block& blk = atoms_.source(sample->source).block(sample->block);
    size_t branches = blk.alternatives.size() + 1;  // + absence

    if (budget < branches) return Frechet(dnf, comp);

    // Shannon expansion: condition the pivot on each alternative (and
    // absence), recurse on the restricted DNF, and take the weighted
    // sum — total probability keeps the interval sound, and each branch
    // drops the pivot block entirely, so the recursion terminates.
    *worlds_expanded_ += branches;
    size_t child_budget = budget / branches;
    double lo = 0.0;
    double hi = 0.0;
    for (size_t j = 0; j <= blk.alternatives.size(); ++j) {
      bool absent = j == blk.alternatives.size();
      double weight =
          absent ? blk.AbsentMass() : blk.alternatives[j].prob;
      if (weight <= 0.0) continue;
      WorkDnf rest;
      rest.reserve(comp.size());
      bool has_true = false;
      for (size_t i : comp) {
        std::vector<uint32_t> d;
        d.reserve(dnf[i].size());
        bool dead = false;
        for (uint32_t id : dnf[i]) {
          const AtomInfo& x = atoms_.at(id);
          if (x.key != pivot) {
            d.push_back(id);
            continue;
          }
          bool sat = !absent &&
                     std::binary_search(x.alts.begin(), x.alts.end(),
                                        static_cast<uint32_t>(j));
          if (!sat) {
            dead = true;
            break;
          }
          // Satisfied atom: drop it from the disjunct.
        }
        if (dead) continue;
        if (d.empty()) {
          has_true = true;
          break;
        }
        rest.push_back(std::move(d));
      }
      ProbInterval p = has_true ? ProbInterval::Exact(1.0)
                                : Eval(rest, child_budget);
      lo += weight * p.lo;
      hi += weight * p.hi;
    }
    return ProbInterval::Bounds(Clamp01(lo), Clamp01(hi));
  }

  // The oblivious dissociation bound on a correlated component — the
  // lattice's bottom element and the budget-exhausted fallback.
  ProbInterval Frechet(const WorkDnf& dnf, const std::vector<size_t>& comp) {
    double lo = 0.0;
    double hi = 0.0;
    for (size_t i : comp) {
      double p = 1.0;
      for (uint32_t id : dnf[i]) p *= atoms_.at(id).mass;
      lo = std::max(lo, p);
      hi += p;
    }
    return ProbInterval::Bounds(lo, std::min(1.0, hi));
  }

  const AtomTable& atoms_;
  size_t* worlds_expanded_;
};

// Estimated world count of refining a DNF exactly: the product of the
// branch factors of its distinct blocks (saturating) — the candidate's
// cost in the lattice, ordered cheapest first.
double RefineCost(const WorkDnf& dnf, const AtomTable& atoms) {
  std::map<uint64_t, size_t> branch;
  for (const std::vector<uint32_t>& d : dnf) {
    for (uint32_t id : d) {
      const AtomInfo& x = atoms.at(id);
      branch[x.key] =
          atoms.source(x.source).block(x.block).alternatives.size() + 1;
    }
  }
  double cost = 1.0;
  for (const auto& [key, b] : branch) {
    (void)key;
    cost *= static_cast<double>(b);
    if (cost > 1e18) return 1e18;
  }
  return cost;
}

// ---------------------------------------------------------------------------
// Interval plumbing shared with pdb/plan.cc's rules (same formulas, so
// compiled intervals stay contained in the fixed-dissociation ones).
// ---------------------------------------------------------------------------

ProbInterval IntersectIntervals(ProbInterval a, ProbInterval b) {
  ProbInterval out;
  out.lo = std::max(a.lo, b.lo);
  out.hi = std::min(a.hi, b.hi);
  if (out.lo > out.hi) {
    // Numerically crossed endpoints (both operands are sound, so any
    // crossing is floating-point noise): collapse to the tighter bound.
    double mid = 0.5 * (out.lo + out.hi);
    out.lo = mid;
    out.hi = mid;
  }
  return out;
}

std::vector<uint64_t> UnionKeys(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool KeysIntersect(const std::vector<uint64_t>& a,
                   const std::vector<uint64_t>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return false;
}

double AltSetMass(const ProbDatabase& db, size_t block,
                  const std::vector<uint32_t>& alts) {
  double mass = 0.0;
  for (uint32_t j : alts) mass += db.block(block).alternatives[j].prob;
  return Clamp01(mass);
}

// ---------------------------------------------------------------------------
// Group combination (project / distinct marginals / EXISTS): the same
// decision tree as DisjoinEvents, but correlated components keep their
// concatenated DNF so the anytime loop can refine them later. One
// PendingGroup per combined output row records the per-component
// intervals and DNFs; RecombineGroup folds refined components back in.
// ---------------------------------------------------------------------------

struct PendingComponent {
  ProbInterval prob;  // current (base or refined) component interval
  WorkDnf dnf;        // empty when the component is not refinable
  double cost = 0.0;  // estimated refinement world count
  bool correlated = false;
};

struct PendingGroup {
  std::vector<PendingComponent> components;
};

ProbInterval RecombineGroup(const PendingGroup& group) {
  if (group.components.size() == 1) return group.components[0].prob;
  double none_lo = 1.0;
  double none_hi = 1.0;
  for (const PendingComponent& c : group.components) {
    none_lo *= (1.0 - c.prob.lo);
    none_hi *= (1.0 - c.prob.hi);
  }
  return ProbInterval::Bounds(Clamp01(1.0 - none_lo),
                              Clamp01(1.0 - none_hi));
}

// Extracts a component's WorkDnf from member rows, or an empty one when
// any member is untracked / the concatenation overflows.
WorkDnf ComponentDnf(const std::vector<const CRow*>& members) {
  WorkDnf out;
  size_t disjuncts = 0;
  for (const CRow* row : members) {
    if (!row->dnf.tracked) return WorkDnf();
    disjuncts += row->dnf.disjuncts();
  }
  if (disjuncts > kMaxDisjunctsPerRow * 4) return WorkDnf();
  out.reserve(disjuncts);
  for (const CRow* row : members) {
    for (size_t d = 0; d < row->dnf.disjuncts(); ++d) {
      out.emplace_back(row->dnf.atoms.begin() + row->dnf.begin_of(d),
                       row->dnf.atoms.begin() + row->dnf.ends[d]);
    }
  }
  return out;
}

// OR of member rows: exact where the lineage rules allow, the oblivious
// dissociation bound where they correlate — with each correlated
// component's DNF parked in *pending for the lattice walk. `*safe` is
// cleared exactly when DisjoinEvents would have cleared it.
CRow DisjoinRows(const std::vector<const CRow*>& members, Tuple tuple,
                 AtomTable* atoms, bool* safe, PendingGroup* pending) {
  CRow out;
  out.tuple = std::move(tuple);
  if (members.size() == 1) {
    out.prob = members[0]->prob;
    out.lineage = members[0]->lineage;
    out.dnf = members[0]->dnf;
    if (pending != nullptr) {
      PendingComponent pc;
      pc.prob = out.prob;
      // A lone non-exact row (an unsafe join survivor) is itself a
      // refinable lattice candidate.
      if (!out.prob.exact() && out.dnf.tracked) {
        pc.correlated = true;
        pc.dnf = ComponentDnf({members[0]});
      }
      pending->components.push_back(std::move(pc));
    }
    return out;
  }

  // Correlation components over the members' block-key summaries.
  std::vector<size_t> parent(members.size());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<size_t(size_t)> find = [&](size_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  std::unordered_map<uint64_t, size_t> owner;
  for (size_t i = 0; i < members.size(); ++i) {
    for (uint64_t key : members[i]->lineage.blocks) {
      auto [it, inserted] = owner.emplace(key, i);
      if (!inserted) parent[find(i)] = find(it->second);
    }
  }
  std::unordered_map<size_t, size_t> slot;
  std::vector<std::vector<size_t>> comps;
  for (size_t i = 0; i < members.size(); ++i) {
    auto [it, inserted] = slot.emplace(find(i), comps.size());
    if (inserted) comps.emplace_back();
    comps[it->second].push_back(i);
  }

  std::vector<PendingComponent> pcs;
  std::vector<const Dnf*> comp_rows;
  std::vector<const CRow*> comp_members;
  for (const std::vector<size_t>& comp : comps) {
    PendingComponent pc;
    if (comp.size() == 1) {
      const CRow& row = *members[comp[0]];
      pc.prob = row.prob;
      if (!row.prob.exact() && row.dnf.tracked) {
        pc.correlated = true;
        pc.dnf = ComponentDnf({&row});
      }
      out.lineage.blocks = UnionKeys(out.lineage.blocks, row.lineage.blocks);
      pcs.push_back(std::move(pc));
      continue;
    }
    bool all_simple_same_block = true;
    const Lineage& first = members[comp[0]]->lineage;
    for (size_t i : comp) {
      const Lineage& l = members[i]->lineage;
      if (!l.simple || l.source != first.source || l.block != first.block) {
        all_simple_same_block = false;
        break;
      }
    }
    if (all_simple_same_block) {
      // Disjoint-union rule: alternative sets of one block union
      // exactly.
      std::vector<uint32_t> alts;
      for (size_t i : comp) {
        const std::vector<uint32_t>& more = members[i]->lineage.alts;
        alts.insert(alts.end(), more.begin(), more.end());
      }
      std::sort(alts.begin(), alts.end());
      alts.erase(std::unique(alts.begin(), alts.end()), alts.end());
      pc.prob = ProbInterval::Exact(AltSetMass(
          atoms->source(first.source), first.block, alts));
      if (comps.size() == 1) {
        // The whole group is one block: keep the simple lineage (and a
        // refinable single-atom DNF) like DisjoinEvents does.
        out.lineage.simple = true;
        out.lineage.source = first.source;
        out.lineage.block = first.block;
        out.lineage.alts = alts;
        out.dnf.tracked = true;
        out.dnf.atoms = {
            atoms->Intern(first.source, first.block, std::move(alts))};
        out.dnf.ends = {1};
      }
      out.lineage.blocks = UnionKeys(out.lineage.blocks, first.blocks);
      pcs.push_back(std::move(pc));
      continue;
    }
    // Correlated component: the oblivious dissociation bound now, the
    // concatenated DNF parked for refinement.
    double lo = 0.0;
    double hi = 0.0;
    comp_members.clear();
    for (size_t i : comp) {
      lo = std::max(lo, members[i]->prob.lo);
      hi += members[i]->prob.hi;
      out.lineage.blocks =
          UnionKeys(out.lineage.blocks, members[i]->lineage.blocks);
      comp_members.push_back(members[i]);
    }
    pc.prob = ProbInterval::Bounds(lo, std::min(1.0, hi));
    pc.correlated = true;
    pc.dnf = ComponentDnf(comp_members);
    *safe = false;
    pcs.push_back(std::move(pc));
  }

  // Components are block-disjoint, hence independent: complement-
  // multiply (the monotone rule maps interval endpoints directly).
  PendingGroup group;
  group.components = std::move(pcs);
  out.prob = RecombineGroup(group);

  // Keep the group's OR as the row's own DNF when everything tracked —
  // parents (nested projects, joins above projects) then stay factored.
  if (!out.dnf.tracked) {
    comp_rows.clear();
    for (const CRow* row : members) comp_rows.push_back(&row->dnf);
    Dnf merged;
    if (DisjoinDnf(comp_rows, &merged)) out.dnf = std::move(merged);
  }

  if (pending != nullptr) *pending = std::move(group);
  return out;
}

// ---------------------------------------------------------------------------
// The factored evaluator: EvalNode's operators with DNF bookkeeping.
// ---------------------------------------------------------------------------

Status ValidateSource(size_t source,
                      const std::vector<const ProbDatabase*>& sources) {
  if (source >= sources.size() || sources[source] == nullptr) {
    return Status::InvalidArgument("scan source out of range: " +
                                   std::to_string(source));
  }
  return Status::OK();
}

class CompiledEval {
 public:
  CompiledEval(const std::vector<const ProbDatabase*>& sources,
               const CompileOptions& options, AtomTable* atoms,
               const WallTimer* clock, CompileStats* stats)
      : sources_(sources),
        options_(options),
        atoms_(atoms),
        clock_(clock),
        stats_(stats) {}

  bool safe() const { return safe_; }

  // Restricts scans to alternatives of the listed block keys (sorted).
  // CompileQuery's two-phase split: the columnar executor has already
  // answered every group whose blocks are NOT in this set exactly, so
  // the factored pass only needs the rows that can reach a non-exact
  // group — a group's marginal depends only on rows whose every lineage
  // block is in the group's union (the plan-cache invalidation
  // guarantee), so dropping other rows changes nothing it reports.
  void set_block_filter(const std::vector<uint64_t>* filter) {
    block_filter_ = filter;
  }

  // True while interior refinement may still spend time.
  bool ClockAllows() const {
    return options_.budget_ms <= 0.0 ||
           clock_->ElapsedMillis() < options_.budget_ms;
  }

  Result<CTable> Eval(const PlanNode& node) {
    switch (node.op) {
      case PlanNode::Op::kScan:
        return EvalScan(node);
      case PlanNode::Op::kSelect:
        return EvalSelect(node);
      case PlanNode::Op::kProject:
        return EvalProject(node);
      case PlanNode::Op::kJoin:
        return EvalJoin(node);
    }
    return Status::Internal("unknown plan operator");
  }

  // The projection grouping, exposed so CompileQuery can run the ROOT
  // projection (and the distinct-marginal grouping) with deferred
  // refinement — those groups are the answer's marginals, and the
  // anytime loop wants to order them cheapest-first itself.
  Result<CTable> ProjectRows(const CTable& child,
                             const std::vector<AttrId>& attrs,
                             std::vector<PendingGroup>* pending) {
    for (AttrId a : attrs) {
      if (a >= child.num_attrs) {
        return Status::InvalidArgument("project attribute out of range");
      }
    }
    std::unordered_map<Tuple, size_t, TupleHash> index;
    std::vector<std::pair<Tuple, std::vector<size_t>>> groups;
    for (size_t r = 0; r < child.rows.size(); ++r) {
      Tuple proj(attrs.size());
      for (size_t k = 0; k < attrs.size(); ++k) {
        proj.set_value(static_cast<AttrId>(k),
                       child.rows[r].tuple.value(attrs[k]));
      }
      auto [it, inserted] = index.emplace(proj, groups.size());
      if (inserted) groups.emplace_back(std::move(proj),
                                        std::vector<size_t>());
      groups[it->second].second.push_back(r);
    }

    CTable out;
    out.num_attrs = attrs.size();
    out.rows.reserve(groups.size());
    std::vector<const CRow*> members;
    for (auto& [proj, rows] : groups) {
      members.clear();
      members.reserve(rows.size());
      for (size_t r : rows) members.push_back(&child.rows[r]);
      PendingGroup group;
      CRow row = DisjoinRows(members, std::move(proj), atoms_, &safe_,
                             pending != nullptr ? &group : nullptr);
      if (pending != nullptr) {
        pending->push_back(std::move(group));
      } else {
        RefineInline(&row, &group);
      }
      out.rows.push_back(std::move(row));
    }
    return out;
  }

  // Refines an interior group immediately (no cross-group ordering to
  // honor below the root), respecting the world cap and the clock.
  void RefineInline(CRow* row, PendingGroup* group) {
    (void)group;
    if (!row->prob.exact() && row->dnf.tracked &&
        options_.max_worlds_per_group > 0 && !options_.propagation_only &&
        ClockAllows()) {
      WorkDnf dnf;
      dnf.reserve(row->dnf.disjuncts());
      for (size_t d = 0; d < row->dnf.disjuncts(); ++d) {
        dnf.emplace_back(row->dnf.atoms.begin() + row->dnf.begin_of(d),
                         row->dnf.atoms.begin() + row->dnf.ends[d]);
      }
      LatticeSearch search(*atoms_, &stats_->worlds_expanded);
      ProbInterval refined =
          search.Eval(dnf, options_.max_worlds_per_group);
      row->prob = IntersectIntervals(row->prob, refined);
    }
  }

 private:
  Result<CTable> EvalScan(const PlanNode& node) {
    MRSL_RETURN_IF_ERROR(ValidateSource(node.source, sources_));
    const ProbDatabase& db = *sources_[node.source];
    CTable out;
    out.num_attrs = db.schema().num_attrs();
    size_t total = 0;
    for (size_t b = 0; b < db.num_blocks(); ++b) {
      total += db.block(b).alternatives.size();
    }
    out.rows.reserve(total);
    for (size_t b = 0; b < db.num_blocks(); ++b) {
      if (block_filter_ != nullptr &&
          !std::binary_search(
              block_filter_->begin(), block_filter_->end(),
              Lineage::BlockKey(static_cast<uint32_t>(node.source), b))) {
        continue;
      }
      const Block& block = db.block(b);
      for (size_t j = 0; j < block.alternatives.size(); ++j) {
        CRow row;
        row.tuple = block.alternatives[j].tuple;
        row.prob = ProbInterval::Exact(Clamp01(block.alternatives[j].prob));
        row.lineage.simple = true;
        row.lineage.source = static_cast<uint32_t>(node.source);
        row.lineage.block = b;
        row.lineage.alts = {static_cast<uint32_t>(j)};
        row.lineage.blocks = {
            Lineage::BlockKey(static_cast<uint32_t>(node.source), b)};
        row.dnf.tracked = true;
        row.dnf.atoms = {atoms_->Intern(static_cast<uint32_t>(node.source),
                                        b, {static_cast<uint32_t>(j)})};
        row.dnf.ends = {1};
        out.rows.push_back(std::move(row));
      }
    }
    return out;
  }

  Result<CTable> EvalSelect(const PlanNode& node) {
    auto child = Eval(*node.left);
    if (!child.ok()) return child.status();
    AttrMask touched = node.pred.AttrsTouched();
    if (child->num_attrs < kMaxAttributes &&
        (touched >> child->num_attrs) != 0) {
      return Status::InvalidArgument("select predicate attr out of range");
    }
    CTable out;
    out.num_attrs = child->num_attrs;
    for (CRow& row : child->rows) {
      if (node.pred.Eval(row.tuple)) out.rows.push_back(std::move(row));
    }
    return out;
  }

  Result<CTable> EvalProject(const PlanNode& node) {
    auto child = Eval(*node.left);
    if (!child.ok()) return child.status();
    return ProjectRows(*child, node.attrs, nullptr);
  }

  Result<CTable> EvalJoin(const PlanNode& node) {
    auto left = Eval(*node.left);
    if (!left.ok()) return left.status();
    auto right = Eval(*node.right);
    if (!right.ok()) return right.status();
    if (node.left_attr >= left->num_attrs ||
        node.right_attr >= right->num_attrs) {
      return Status::InvalidArgument("join attribute out of range");
    }

    std::unordered_map<ValueId, std::vector<size_t>> right_index;
    right_index.reserve(right->rows.size());
    for (size_t r = 0; r < right->rows.size(); ++r) {
      right_index[right->rows[r].tuple.value(node.right_attr)].push_back(r);
    }

    CTable out;
    const size_t ln = left->num_attrs;
    const size_t rn = right->num_attrs;
    out.num_attrs = ln + rn;
    for (const CRow& lr : left->rows) {
      auto it = right_index.find(lr.tuple.value(node.left_attr));
      if (it == right_index.end()) continue;
      for (size_t r : it->second) {
        const CRow& rr = right->rows[r];
        CRow joined;
        if (!ConjoinRows(lr, rr, &joined)) continue;  // impossible pair
        joined.tuple = Tuple(ln + rn);
        for (AttrId a = 0; a < ln; ++a) {
          joined.tuple.set_value(a, lr.tuple.value(a));
        }
        for (AttrId a = 0; a < rn; ++a) {
          joined.tuple.set_value(static_cast<AttrId>(ln + a),
                                 rr.tuple.value(a));
        }
        out.rows.push_back(std::move(joined));
      }
    }
    return out;
  }

  // AND of two rows. Returns false when the pair is impossible (exactly
  // zero): simple same-block events with disjoint alternative sets, or
  // tracked DNFs whose every product disjunct died. `safe_` mirrors
  // ConjoinEvents — cleared whenever the LINEAGE rules alone would have
  // dissociated, even where the DNF recovered exactness.
  bool ConjoinRows(const CRow& a, const CRow& b, CRow* out) {
    const Lineage& la = a.lineage;
    const Lineage& lb = b.lineage;
    if (la.simple && lb.simple && la.source == lb.source &&
        la.block == lb.block) {
      std::vector<uint32_t> alts;
      std::set_intersection(la.alts.begin(), la.alts.end(), lb.alts.begin(),
                            lb.alts.end(), std::back_inserter(alts));
      if (alts.empty()) return false;
      out->lineage.simple = true;
      out->lineage.source = la.source;
      out->lineage.block = la.block;
      out->lineage.blocks = la.blocks;
      out->prob = ProbInterval::Exact(
          AltSetMass(atoms_->source(la.source), la.block, alts));
      out->dnf.tracked = true;
      out->dnf.atoms = {atoms_->Intern(la.source, la.block, alts)};
      out->dnf.ends = {1};
      out->lineage.alts = std::move(alts);
      return true;
    }

    out->lineage.blocks = UnionKeys(la.blocks, lb.blocks);
    bool independent = !KeysIntersect(la.blocks, lb.blocks);
    bool impossible = false;
    bool tracked = a.dnf.tracked && b.dnf.tracked &&
                   ConjoinDnf(a.dnf, b.dnf, atoms_, &out->dnf, &impossible);
    if (!independent) safe_ = false;
    if (tracked && impossible) return false;

    if (independent) {
      out->prob = ProbInterval::Bounds(a.prob.lo * b.prob.lo,
                                       a.prob.hi * b.prob.hi);
    } else if (tracked && out->dnf.disjuncts() == 1) {
      // The conjunction collapsed to one conjunction of atoms over
      // distinct blocks: exact, where the summary rules only bound.
      out->prob = ProbInterval::Exact(DisjunctMass(out->dnf, 0, *atoms_));
    } else {
      out->prob = ProbInterval::Bounds(
          std::max(0.0, a.prob.lo + b.prob.lo - 1.0),
          std::min(a.prob.hi, b.prob.hi));
    }
    return true;
  }

  const std::vector<const ProbDatabase*>& sources_;
  const CompileOptions& options_;
  AtomTable* atoms_;
  const WallTimer* clock_;
  CompileStats* stats_;
  const std::vector<uint64_t>* block_filter_ = nullptr;  // sorted keys
  bool safe_ = true;
};

// Propagation score of a pending group: every disjunct treated as an
// independent event (the relevance-propagation recurrence), which
// deliberately double-counts shared blocks. A ranking score, not a
// sound bound.
double PropagationScore(const PendingGroup& group, const AtomTable& atoms) {
  double none = 1.0;
  for (const PendingComponent& c : group.components) {
    if (c.correlated && !c.dnf.empty()) {
      for (const std::vector<uint32_t>& d : c.dnf) {
        double p = 1.0;
        for (uint32_t id : d) p *= atoms.at(id).mass;
        none *= (1.0 - p);
      }
    } else {
      none *= (1.0 - c.prob.mid());
    }
  }
  return Clamp01(1.0 - none);
}

double MeanWidth(const std::vector<DistinctMarginal>& marginals) {
  if (marginals.empty()) return 0.0;
  double w = 0.0;
  for (const DistinctMarginal& m : marginals) w += m.prob.hi - m.prob.lo;
  return w / static_cast<double>(marginals.size());
}

}  // namespace

Result<CompiledQuery> CompileQuery(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources,
    const CompileOptions& options, TraceSpan trace,
    PlanResources* resources) {
  WallTimer clock;
  CompiledQuery out;

  // Phase 1: the columnar executor (the production serving path) runs
  // the whole plan once. Its exact rules fire wherever the lineage
  // permits, so safe plans — and every exact group of unsafe ones — are
  // fully answered here at EvaluatePlan speed. The factored machinery
  // below only ever touches what this pass could not close.
  TraceSpan phase1 = trace.StartChild("phase1");
  auto base_r = EvaluatePlan(plan, sources, phase1, resources);
  if (!base_r.ok()) return base_r.status();
  PlanResult base = std::move(*base_r);

  // A root projection's rows ARE the distinct marginals: the columnar
  // Project deduplicates by value and disjoins each group, and
  // DistinctMarginals over singleton groups returns the row intervals
  // unchanged. Skipping the redundant distinct pass (its hash build is
  // pure overhead here) is the compiled path's latency edge over the
  // plain evaluator on ranking-shaped queries.
  const bool root_project = plan.op == PlanNode::Op::kProject;
  std::vector<DistinctMarginal> marginals;
  if (root_project) {
    marginals.reserve(base.rows.size());
    for (const PlanRow& row : base.rows) {
      marginals.push_back(DistinctMarginal{row.tuple, row.prob});
    }
  } else {
    marginals = DistinctMarginals(base, sources);
  }

  out.schema = base.schema;
  out.stats.plan_safe = base.safe;
  out.stats.groups_total = marginals.size();
  out.stats.propagation = options.propagation_only;
  for (const DistinctMarginal& m : marginals) {
    if (!m.prob.exact()) ++out.stats.groups_unsafe;
  }
  out.stats.mean_width_base = MeanWidth(marginals);
  if (phase1.active()) {
    phase1.SetAttr("rows", static_cast<int64_t>(base.rows.size()));
    phase1.SetAttr("groups", static_cast<int64_t>(marginals.size()));
    phase1.SetAttr("groups_unsafe",
                   static_cast<int64_t>(out.stats.groups_unsafe));
    phase1.End();
  }

  // Index of the non-exact (refinable) groups by value — everything the
  // factored pass below exists for. Exact groups never enter it.
  std::unordered_map<Tuple, size_t, TupleHash> refinable_index;
  refinable_index.reserve(out.stats.groups_unsafe);
  for (size_t i = 0; i < marginals.size(); ++i) {
    if (!marginals[i].prob.exact()) {
      refinable_index.emplace(marginals[i].tuple, i);
    }
  }

  // The refinement universe: every block some non-exact group read. A
  // group's marginal depends only on rows whose lineage blocks all sit
  // inside the group's own union (the plan-cache invalidation
  // guarantee), so a factored pass whose scans are restricted to this
  // set reproduces the non-exact groups' DNFs verbatim while skipping
  // the — typically dominant — safe remainder of the database.
  std::vector<uint64_t> universe;
  for (size_t r = 0; r < base.rows.size(); ++r) {
    const PlanRow& row = base.rows[r];
    bool refinable = root_project
                         ? !marginals[r].prob.exact()
                         : refinable_index.count(row.tuple) > 0;
    if (!refinable) continue;
    universe.insert(universe.end(), row.lineage.blocks.begin(),
                    row.lineage.blocks.end());
  }
  std::sort(universe.begin(), universe.end());
  universe.erase(std::unique(universe.begin(), universe.end()),
                 universe.end());
  // EXISTS spans every row; its factored refinement is only faithful
  // when the restricted pass saw them all.
  bool rows_covered = !base.rows.empty();
  for (const PlanRow& row : base.rows) {
    if (!std::includes(universe.begin(), universe.end(),
                       row.lineage.blocks.begin(),
                       row.lineage.blocks.end())) {
      rows_covered = false;
      break;
    }
  }

  // Final per-group envelopes, seeded with the phase-1 intervals; the
  // factored pass only ever intersects into these.
  std::vector<ProbInterval> final_prob;
  final_prob.reserve(marginals.size());
  for (const DistinctMarginal& m : marginals) final_prob.push_back(m.prob);

  const bool width_already_met =
      !options.propagation_only && options.width_target > 0.0 &&
      out.stats.mean_width_base <= options.width_target;
  const bool budget_spent = options.budget_ms > 0.0 &&
                            clock.ElapsedMillis() >= options.budget_ms;
  if (budget_spent && out.stats.groups_unsafe > 0) {
    out.stats.budget_exhausted = true;
  }
  const bool need_factored =
      out.stats.groups_unsafe > 0 && !width_already_met && !budget_spent &&
      (options.propagation_only || options.max_worlds_per_group > 0);

  bool exists_refined = false;
  ProbInterval exists_envelope;

  TraceSpan phase2;
  if (need_factored) {
    phase2 = trace.StartChild("phase2");
    // Phase 2: the factored evaluator over the universe. The root
    // projection (or, for other roots, the distinct-value grouping)
    // rebuilds the non-exact groups' events as DNFs and defers their
    // refinement to the anytime loop.
    AtomTable atoms(sources);
    CompiledEval eval(sources, options, &atoms, &clock, &out.stats);
    eval.set_block_filter(&universe);

    std::vector<PendingGroup> pending;
    CTable top;
    if (root_project) {
      auto child = eval.Eval(*plan.left);
      if (!child.ok()) return child.status();
      auto projected = eval.ProjectRows(*child, plan.attrs, &pending);
      if (!projected.ok()) return projected.status();
      top = std::move(*projected);
    } else {
      auto table = eval.Eval(plan);
      if (!table.ok()) return table.status();
      top = std::move(*table);
    }

    // One group per NON-EXACT phase-1 marginal. A group whose phase-1
    // answer is exact can still surface in `top` with PARTIAL
    // membership — it shares a block with an unsafe group but owns
    // others outside the universe — and its factored interval is then
    // meaningless; the refinable index skips it. The groups built here
    // are complete: a refinable group's lineage is inside the universe
    // by construction, so every row feeding it survived the restricted
    // scans.
    struct MarginalGroup {
      size_t base = 0;  // index into `marginals`/`final_prob`
      CRow combined;
      PendingGroup group;
    };
    std::vector<MarginalGroup> groups;
    bool marginal_safe = true;
    if (root_project) {
      groups.reserve(refinable_index.size());
      for (size_t r = 0; r < top.rows.size(); ++r) {
        auto it = refinable_index.find(top.rows[r].tuple);
        if (it == refinable_index.end()) continue;
        MarginalGroup g;
        g.base = it->second;
        g.combined = top.rows[r];  // copy: `top` stays whole for EXISTS
        g.group = std::move(pending[r]);
        groups.push_back(std::move(g));
      }
    } else {
      std::unordered_map<Tuple, size_t, TupleHash> index;
      std::vector<std::pair<Tuple, std::vector<const CRow*>>> by_value;
      for (const CRow& row : top.rows) {
        if (refinable_index.count(row.tuple) == 0) continue;
        auto [it, inserted] = index.emplace(row.tuple, by_value.size());
        if (inserted) {
          by_value.emplace_back(row.tuple, std::vector<const CRow*>());
        }
        by_value[it->second].second.push_back(&row);
      }
      groups.reserve(by_value.size());
      for (auto& [tuple, members] : by_value) {
        MarginalGroup g;
        g.base = refinable_index.at(tuple);
        g.combined = DisjoinRows(members, std::move(tuple), &atoms,
                                 &marginal_safe, &g.group);
        groups.push_back(std::move(g));
      }
    }
    (void)marginal_safe;  // phase 1 already settled plan safety

    if (options.propagation_only) {
      // Ranking fast path: one pass, scores in place of bounds.
      for (MarginalGroup& g : groups) {
        final_prob[g.base] =
            g.combined.prob.exact()
                ? g.combined.prob
                : ProbInterval::Exact(PropagationScore(g.group, atoms));
      }
    } else {
      // The factored re-evaluation is itself tighter than the fixed
      // dissociation wherever composite joins stayed exact — bank that
      // before spending any worlds.
      double mean_width = out.stats.mean_width_base;
      const double n = static_cast<double>(marginals.size());
      for (MarginalGroup& g : groups) {
        double before = final_prob[g.base].hi - final_prob[g.base].lo;
        final_prob[g.base] =
            IntersectIntervals(final_prob[g.base], g.combined.prob);
        double after = final_prob[g.base].hi - final_prob[g.base].lo;
        mean_width -= (before - after) / n;
      }

      // The anytime lattice walk: refinable components of every
      // phase-1-unsafe group, costed by world count, refined cheapest-
      // first until the width target is met or the clock runs out.
      struct Candidate {
        size_t group = 0;
        size_t component = 0;
        double cost = 0.0;
      };
      std::vector<Candidate> candidates;
      for (size_t gi = 0; gi < groups.size(); ++gi) {
        PendingGroup& pg = groups[gi].group;
        for (size_t ci = 0; ci < pg.components.size(); ++ci) {
          PendingComponent& pc = pg.components[ci];
          if (pc.correlated && !pc.dnf.empty() && !pc.prob.exact()) {
            pc.cost = RefineCost(pc.dnf, atoms);
            candidates.push_back(Candidate{gi, ci, pc.cost});
          }
        }
      }
      std::stable_sort(candidates.begin(), candidates.end(),
                       [](const Candidate& a, const Candidate& b) {
                         return a.cost < b.cost;
                       });
      if (options.refine_limit > 0 &&
          candidates.size() > options.refine_limit) {
        candidates.resize(options.refine_limit);
      }

      std::vector<bool> group_refined(groups.size(), false);
      size_t candidates_tried = 0;
      for (const Candidate& cand : candidates) {
        if (options.width_target > 0.0 &&
            mean_width <= options.width_target) {
          out.stats.width_target_met = true;
          break;
        }
        if (options.budget_ms > 0.0 &&
            clock.ElapsedMillis() >= options.budget_ms) {
          out.stats.budget_exhausted = true;
          break;
        }
        ++candidates_tried;
        TraceSpan refine = phase2.StartChild("lattice.refine");
        const size_t worlds_before = out.stats.worlds_expanded;
        MarginalGroup& g = groups[cand.group];
        PendingComponent& pc = g.group.components[cand.component];
        LatticeSearch search(atoms, &out.stats.worlds_expanded);
        ProbInterval refined =
            search.Eval(pc.dnf, options.max_worlds_per_group);
        pc.prob = IntersectIntervals(pc.prob, refined);
        double before = final_prob[g.base].hi - final_prob[g.base].lo;
        g.combined.prob =
            IntersectIntervals(g.combined.prob, RecombineGroup(g.group));
        final_prob[g.base] =
            IntersectIntervals(final_prob[g.base], g.combined.prob);
        double after = final_prob[g.base].hi - final_prob[g.base].lo;
        mean_width -= (before - after) / n;
        if (!group_refined[cand.group]) {
          group_refined[cand.group] = true;
          ++out.stats.groups_refined;
        }
        if (refine.active()) {
          refine.SetAttr("group", static_cast<int64_t>(cand.group));
          refine.SetAttr("cost_worlds", static_cast<int64_t>(cand.cost));
          refine.SetAttr("worlds",
                         static_cast<int64_t>(out.stats.worlds_expanded -
                                              worlds_before));
          refine.End();
        }
      }
      if (phase2.active()) {
        phase2.SetAttr("candidates",
                       static_cast<int64_t>(candidates.size()));
        phase2.SetAttr("candidates_tried",
                       static_cast<int64_t>(candidates_tried));
      }
      for (size_t gi = 0; gi < groups.size(); ++gi) {
        if (group_refined[gi] && final_prob[groups[gi].base].exact()) {
          ++out.stats.groups_exact;
        }
      }

      // EXISTS: one more group over every row, refined through the same
      // lattice (unbounded by the width target; still on the clock).
      // Faithful only when the universe covered every result row — the
      // fully-correlated regime; otherwise the phase-1 bound stands.
      if (options.want_exists && rows_covered &&
          top.rows.size() == base.rows.size()) {
        // Full coverage means the restricted pass reproduced every row
        // (same order as phase 1 — the factored evaluator mirrors the
        // extensional one row for row), so its DNFs describe the whole
        // disjunction.
        std::vector<CRow> shadow;
        shadow.reserve(top.rows.size());
        for (size_t r = 0; r < top.rows.size(); ++r) {
          CRow s;
          s.prob = root_project ? final_prob[r] : top.rows[r].prob;
          s.lineage = std::move(top.rows[r].lineage);
          s.dnf = std::move(top.rows[r].dnf);
          shadow.push_back(std::move(s));
        }
        std::vector<const CRow*> all;
        all.reserve(shadow.size());
        for (const CRow& row : shadow) all.push_back(&row);
        bool exists_safe = out.stats.plan_safe;
        PendingGroup eg;
        CRow combined = DisjoinRows(all, Tuple(), &atoms, &exists_safe, &eg);
        for (PendingComponent& pc : eg.components) {
          if (!pc.correlated || pc.dnf.empty() || pc.prob.exact()) continue;
          if (options.budget_ms > 0.0 &&
              clock.ElapsedMillis() >= options.budget_ms) {
            out.stats.budget_exhausted = true;
            break;
          }
          LatticeSearch search(atoms, &out.stats.worlds_expanded);
          pc.prob = IntersectIntervals(
              pc.prob, search.Eval(pc.dnf, options.max_worlds_per_group));
        }
        combined.prob =
            IntersectIntervals(combined.prob, RecombineGroup(eg));
        exists_envelope = combined.prob;
        exists_refined = true;
      }
    }
    if (phase2.active()) {
      phase2.SetAttr("worlds_evaluated",
                     static_cast<int64_t>(out.stats.worlds_expanded));
      phase2.SetAttr("groups_refined",
                     static_cast<int64_t>(out.stats.groups_refined));
      if (out.stats.propagation) phase2.SetAttr("propagation", 1);
      phase2.End();
    }
  }

  TraceSpan combine = trace.StartChild("combine");
  // Assemble. Marginals and root-project rows take their group's final
  // envelope; bag-root rows keep the phase-1 intervals (COUNT's
  // linearity holds under any correlation, so those stay sound).
  out.marginals = std::move(marginals);
  for (size_t i = 0; i < out.marginals.size(); ++i) {
    out.marginals[i].prob = final_prob[i];
  }
  out.stats.mean_width_final = MeanWidth(out.marginals);
  if (!options.propagation_only && options.width_target > 0.0 &&
      out.stats.mean_width_final <= options.width_target) {
    out.stats.width_target_met = true;
  }

  out.result.schema = std::move(base.schema);
  out.result.rows = std::move(base.rows);
  if (root_project) {
    for (size_t r = 0; r < out.result.rows.size(); ++r) {
      out.result.rows[r].prob = final_prob[r];
    }
  }
  bool all_exact = true;
  for (const PlanRow& row : out.result.rows) {
    all_exact = all_exact && row.prob.exact();
  }
  for (const DistinctMarginal& m : out.marginals) {
    all_exact = all_exact && m.prob.exact();
  }

  // EXISTS (when wanted): the phase-1 bound over the (envelope-
  // tightened) rows, intersected with the factored refinement when one
  // was faithful.
  if (options.want_exists) {
    if (out.result.rows.empty()) {
      out.exists.prob = ProbInterval::Exact(0.0);
    } else {
      out.result.safe = out.stats.plan_safe;
      ExistsResult base_exists = ExistsFromResult(out.result, sources);
      out.exists.prob =
          exists_refined
              ? IntersectIntervals(base_exists.prob, exists_envelope)
              : base_exists.prob;
    }
    out.exists.safe = out.stats.plan_safe;
    all_exact = all_exact && out.exists.prob.exact();
  }

  // COUNT (when wanted): linearity over the (refined) row intervals;
  // the distribution machinery keys on lineage summaries, which the
  // rows kept.
  if (options.want_count) {
    out.result.safe = out.stats.plan_safe;
    out.count = CountFromResult(out.result, sources);
    out.count.safe = out.stats.plan_safe;
  }
  out.result.safe = all_exact;
  combine.End();

  out.stats.compile_seconds = clock.ElapsedSeconds();
  if (resources != nullptr) {
    resources->worlds_sampled += out.stats.worlds_expanded;
  }
  return out;
}

std::string CompileCacheSuffix(const CompileOptions& options) {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "#compiled;w=%.17g;b=%.17g;mw=%zu;k=%zu%s",
                options.width_target, options.budget_ms,
                options.max_worlds_per_group, options.refine_limit,
                options.propagation_only ? ";prop" : "");
  return std::string(buf);
}

}  // namespace mrsl
