// Extensional plan evaluation with a lineage-driven safety check.
//
// Every row event is summarized by the set of base blocks it reads plus,
// for "simple" events, the exact alternative set of its one block. The
// two exact regimes are (a) block-disjoint lineages -> independence
// (probabilities multiply, unions complement-multiply) and (b) simple
// events on the same block -> disjointness (alternative sets intersect /
// union exactly). Everything else is correlated, and the evaluator
// dissociates: Frechet-style oblivious bounds ([max(0, p+q-1), min(p,q)]
// for AND, [max(p,q), min(1, p+q)] for OR) replace the point estimate.
// All combination rules are monotone in their operands, so interval
// endpoints propagate soundly through arbitrarily nested plans.
//
// The Monte-Carlo oracle partitions trials into fixed chunks, seeds each
// chunk purely from (seed, chunk index), tallies integers, and merges in
// chunk order — bit-identical output for every thread count, the same
// contract core/engine.h makes for inference.

#include "pdb/plan.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "pdb/columnar.h"
#include "util/string_util.h"
#include "util/thread_pool.h"

namespace mrsl {
namespace {

double Clamp01(double p) { return std::min(1.0, std::max(0.0, p)); }

// Sorted-unique merge of two block-key sets.
std::vector<uint64_t> UnionKeys(const std::vector<uint64_t>& a,
                                const std::vector<uint64_t>& b) {
  std::vector<uint64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

bool KeysIntersect(const std::vector<uint64_t>& a,
                   const std::vector<uint64_t>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia == *ib) return true;
    if (*ia < *ib) {
      ++ia;
    } else {
      ++ib;
    }
  }
  return false;
}

// Clamped mass of an alternative set of one block (alts sorted, unique).
double AltSetMass(const ProbDatabase& db, size_t block,
                  const std::vector<uint32_t>& alts) {
  double mass = 0.0;
  for (uint32_t j : alts) mass += db.block(block).alternatives[j].prob;
  return Clamp01(mass);
}

// An owned row event (the output of a combination rule).
struct Event {
  ProbInterval prob;
  Lineage lineage;
};

// A borrowed row event: the interval by value (16 bytes), the lineage by
// pointer into whoever stores the row — PlanRow or ColumnBatch. The
// combination rules below read EventRefs so neither evaluator has to
// copy lineage vectors just to combine rows.
struct EventRef {
  ProbInterval prob;
  const Lineage* lineage;
};

// Disjoint-set union over event indices, used to cluster events that
// share base blocks (the correlation structure).
class Dsu {
 public:
  explicit Dsu(size_t n) : parent_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }
  size_t Find(size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(size_t a, size_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<size_t> parent_;
};

// Groups `events` into connected components of the shared-block graph,
// each component listed by ascending first event index (deterministic).
std::vector<std::vector<size_t>> CorrelationComponents(
    const std::vector<EventRef>& events) {
  Dsu dsu(events.size());
  std::unordered_map<uint64_t, size_t> owner;  // block key -> event index
  for (size_t i = 0; i < events.size(); ++i) {
    for (uint64_t key : events[i].lineage->blocks) {
      auto [it, inserted] = owner.emplace(key, i);
      if (!inserted) dsu.Union(i, it->second);
    }
  }
  std::unordered_map<size_t, size_t> slot;  // root -> component position
  std::vector<std::vector<size_t>> components;
  for (size_t i = 0; i < events.size(); ++i) {
    size_t root = dsu.Find(i);
    auto [it, inserted] = slot.emplace(root, components.size());
    if (inserted) components.emplace_back();
    components[it->second].push_back(i);
  }
  return components;
}

// OR of all `events`. Exact when the correlation components are each a
// single event or a set of simple events on one shared block; otherwise
// the component dissociates to Frechet bounds and *exact is cleared.
Event DisjoinEvents(const std::vector<EventRef>& events,
                    const std::vector<const ProbDatabase*>& sources,
                    bool* exact) {
  assert(!events.empty());
  if (events.size() == 1) return Event{events[0].prob, *events[0].lineage};

  std::vector<std::vector<size_t>> components =
      CorrelationComponents(events);

  std::vector<Event> merged;
  merged.reserve(components.size());
  for (const std::vector<size_t>& comp : components) {
    if (comp.size() == 1) {
      merged.push_back(
          Event{events[comp[0]].prob, *events[comp[0]].lineage});
      continue;
    }
    bool all_simple_same_block = true;
    for (size_t i : comp) {
      const Lineage& l = *events[i].lineage;
      if (!l.simple || l.source != events[comp[0]].lineage->source ||
          l.block != events[comp[0]].lineage->block) {
        all_simple_same_block = false;
        break;
      }
    }
    Event ev;
    if (all_simple_same_block) {
      // Disjoint-union rule: the events are alternative sets of one
      // block, so their union's mass is exact.
      const Lineage& first = *events[comp[0]].lineage;
      std::vector<uint32_t> alts;
      for (size_t i : comp) {
        const std::vector<uint32_t>& more = events[i].lineage->alts;
        alts.insert(alts.end(), more.begin(), more.end());
      }
      std::sort(alts.begin(), alts.end());
      alts.erase(std::unique(alts.begin(), alts.end()), alts.end());
      ev.lineage.simple = true;
      ev.lineage.source = first.source;
      ev.lineage.block = first.block;
      ev.lineage.blocks = first.blocks;
      ev.prob = ProbInterval::Exact(
          AltSetMass(*sources[first.source], first.block, alts));
      ev.lineage.alts = std::move(alts);
    } else {
      // Correlated component: dissociate to Frechet disjunction bounds.
      double lo = 0.0;
      double hi = 0.0;
      for (size_t i : comp) {
        lo = std::max(lo, events[i].prob.lo);
        hi += events[i].prob.hi;
        ev.lineage.blocks =
            UnionKeys(ev.lineage.blocks, events[i].lineage->blocks);
      }
      ev.prob = ProbInterval::Bounds(lo, std::min(1.0, hi));
      *exact = false;
    }
    merged.push_back(std::move(ev));
  }

  if (merged.size() == 1) return merged[0];

  // Components touch disjoint blocks, hence are independent: the union
  // complement-multiplies. 1 - prod(1 - p) is monotone in every p, so
  // interval endpoints map through directly.
  Event out;
  double none_lo = 1.0;
  double none_hi = 1.0;
  for (const Event& ev : merged) {
    none_lo *= (1.0 - ev.prob.lo);
    none_hi *= (1.0 - ev.prob.hi);
    out.lineage.blocks = UnionKeys(out.lineage.blocks, ev.lineage.blocks);
  }
  out.prob = ProbInterval::Bounds(Clamp01(1.0 - none_lo),
                                  Clamp01(1.0 - none_hi));
  return out;
}

// AND of two row events (Join). Sets *impossible for same-block events
// with non-intersecting alternative sets (the joined pair can never
// coexist); clears *exact when dissociation bounds were needed.
Event ConjoinEvents(const EventRef& a, const EventRef& b,
                    const std::vector<const ProbDatabase*>& sources,
                    bool* exact, bool* impossible) {
  *impossible = false;
  const Lineage& la = *a.lineage;
  const Lineage& lb = *b.lineage;
  Event out;
  if (la.simple && lb.simple && la.source == lb.source &&
      la.block == lb.block) {
    // Same block: the chosen alternative must lie in both sets.
    std::vector<uint32_t> alts;
    std::set_intersection(la.alts.begin(), la.alts.end(), lb.alts.begin(),
                          lb.alts.end(), std::back_inserter(alts));
    if (alts.empty()) {
      *impossible = true;
      return out;
    }
    out.lineage.simple = true;
    out.lineage.source = la.source;
    out.lineage.block = la.block;
    out.lineage.blocks = la.blocks;
    out.prob = ProbInterval::Exact(
        AltSetMass(*sources[la.source], la.block, alts));
    out.lineage.alts = std::move(alts);
    return out;
  }
  out.lineage.blocks = UnionKeys(la.blocks, lb.blocks);
  if (!KeysIntersect(la.blocks, lb.blocks)) {
    // Independent operands: probabilities multiply, exactly.
    out.prob = ProbInterval::Bounds(a.prob.lo * b.prob.lo,
                                    a.prob.hi * b.prob.hi);
    return out;
  }
  // Correlated operands: Frechet conjunction bounds.
  out.prob = ProbInterval::Bounds(
      std::max(0.0, a.prob.lo + b.prob.lo - 1.0),
      std::min(a.prob.hi, b.prob.hi));
  *exact = false;
  return out;
}

Status ValidateSource(size_t source,
                      const std::vector<const ProbDatabase*>& sources) {
  if (source >= sources.size() || sources[source] == nullptr) {
    return Status::InvalidArgument("scan source out of range: " +
                                   std::to_string(source));
  }
  return Status::OK();
}

Attribute RenamedAttribute(const Attribute& src, std::string name) {
  std::vector<std::string> labels;
  for (size_t v = 0; v < src.cardinality(); ++v) {
    labels.push_back(src.label(static_cast<ValueId>(v)));
  }
  return Attribute(std::move(name), std::move(labels));
}

// Concatenated join schema; right-hand names are suffixed with "_r"
// (repeatedly, so nested joins stay collision-free).
Result<Schema> ConcatSchemas(const Schema& left, const Schema& right) {
  std::unordered_set<std::string> used;
  std::vector<Attribute> attrs;
  for (AttrId a = 0; a < left.num_attrs(); ++a) {
    attrs.push_back(left.attr(a));
    used.insert(left.attr(a).name());
  }
  for (AttrId a = 0; a < right.num_attrs(); ++a) {
    const Attribute& src = right.attr(a);
    std::string name = src.name() + "_r";
    while (used.count(name) != 0) name += "_r";
    used.insert(name);
    attrs.push_back(RenamedAttribute(src, std::move(name)));
  }
  return Schema::Create(std::move(attrs));
}

// Output schema of a projection; a column projected twice gets numeric
// suffixes ("a", "a_2", ...) so the schema stays valid.
Result<Schema> ProjectSchema(const Schema& child,
                             const std::vector<AttrId>& attrs) {
  std::unordered_set<std::string> used;
  std::vector<Attribute> kept;
  for (AttrId a : attrs) {
    if (a >= child.num_attrs()) {
      return Status::InvalidArgument("project attr out of range");
    }
    const Attribute& src = child.attr(a);
    std::string name = src.name();
    for (int suffix = 2; used.count(name) != 0; ++suffix) {
      name = src.name() + "_" + std::to_string(suffix);
    }
    used.insert(name);
    kept.push_back(RenamedAttribute(src, std::move(name)));
  }
  return Schema::Create(std::move(kept));
}

Result<PlanResult> EvalNode(const PlanNode& node,
                            const std::vector<const ProbDatabase*>& sources) {
  switch (node.op) {
    case PlanNode::Op::kScan: {
      MRSL_RETURN_IF_ERROR(ValidateSource(node.source, sources));
      const ProbDatabase& db = *sources[node.source];
      PlanResult out;
      out.schema = db.schema();
      size_t total = 0;
      for (size_t b = 0; b < db.num_blocks(); ++b) {
        total += db.block(b).alternatives.size();
      }
      out.rows.reserve(total);
      for (size_t b = 0; b < db.num_blocks(); ++b) {
        const Block& block = db.block(b);
        for (size_t j = 0; j < block.alternatives.size(); ++j) {
          PlanRow row;
          row.tuple = block.alternatives[j].tuple;
          row.prob = ProbInterval::Exact(Clamp01(block.alternatives[j].prob));
          row.lineage.simple = true;
          row.lineage.source = static_cast<uint32_t>(node.source);
          row.lineage.block = b;
          row.lineage.alts = {static_cast<uint32_t>(j)};
          row.lineage.blocks = {
              Lineage::BlockKey(static_cast<uint32_t>(node.source), b)};
          out.rows.push_back(std::move(row));
        }
      }
      return out;
    }

    case PlanNode::Op::kSelect: {
      auto child = EvalNode(*node.left, sources);
      if (!child.ok()) return child.status();
      AttrMask touched = node.pred.AttrsTouched();
      if (child->schema.num_attrs() < kMaxAttributes &&
          (touched >> child->schema.num_attrs()) != 0) {
        return Status::InvalidArgument("select predicate attr out of range");
      }
      PlanResult out;
      out.schema = child->schema;
      out.safe = child->safe;
      for (PlanRow& row : child->rows) {
        // Row values are certain, so selection filters rows without
        // touching their events or probabilities.
        if (node.pred.Eval(row.tuple)) out.rows.push_back(std::move(row));
      }
      return out;
    }

    case PlanNode::Op::kProject: {
      auto child = EvalNode(*node.left, sources);
      if (!child.ok()) return child.status();
      auto schema = ProjectSchema(child->schema, node.attrs);
      if (!schema.ok()) return schema.status();

      // Group rows by projected value, first-seen order.
      std::unordered_map<Tuple, size_t, TupleHash> index;
      std::vector<std::pair<Tuple, std::vector<size_t>>> groups;
      for (size_t r = 0; r < child->rows.size(); ++r) {
        Tuple proj(node.attrs.size());
        for (size_t k = 0; k < node.attrs.size(); ++k) {
          proj.set_value(static_cast<AttrId>(k),
                         child->rows[r].tuple.value(node.attrs[k]));
        }
        auto [it, inserted] = index.emplace(proj, groups.size());
        if (inserted) groups.emplace_back(std::move(proj),
                                          std::vector<size_t>());
        groups[it->second].second.push_back(r);
      }

      PlanResult out;
      out.schema = std::move(schema).value();
      out.safe = child->safe;
      out.rows.reserve(groups.size());
      std::vector<EventRef> group_events;
      for (auto& [proj, members] : groups) {
        group_events.clear();
        group_events.reserve(members.size());
        for (size_t r : members) {
          group_events.push_back(
              EventRef{child->rows[r].prob, &child->rows[r].lineage});
        }
        Event ev = DisjoinEvents(group_events, sources, &out.safe);
        out.rows.push_back(PlanRow{std::move(proj), ev.prob,
                                   std::move(ev.lineage)});
      }
      return out;
    }

    case PlanNode::Op::kJoin: {
      auto left = EvalNode(*node.left, sources);
      if (!left.ok()) return left.status();
      auto right = EvalNode(*node.right, sources);
      if (!right.ok()) return right.status();
      if (node.left_attr >= left->schema.num_attrs() ||
          node.right_attr >= right->schema.num_attrs()) {
        return Status::InvalidArgument("join attribute out of range");
      }
      auto schema = ConcatSchemas(left->schema, right->schema);
      if (!schema.ok()) return schema.status();

      std::unordered_map<ValueId, std::vector<size_t>> right_index;
      right_index.reserve(right->rows.size());
      for (size_t r = 0; r < right->rows.size(); ++r) {
        right_index[right->rows[r].tuple.value(node.right_attr)]
            .push_back(r);
      }

      PlanResult out;
      out.schema = std::move(schema).value();
      out.safe = left->safe && right->safe;
      // Exact output reservation: count matches first (cheap integer
      // pass), so the append loop never reallocates mid-join.
      size_t matches = 0;
      std::vector<const std::vector<size_t>*> left_matches;
      left_matches.reserve(left->rows.size());
      for (const PlanRow& lr : left->rows) {
        auto it = right_index.find(lr.tuple.value(node.left_attr));
        const std::vector<size_t>* m =
            it == right_index.end() ? nullptr : &it->second;
        if (m != nullptr) matches += m->size();
        left_matches.push_back(m);
      }
      out.rows.reserve(matches);
      const size_t ln = left->schema.num_attrs();
      const size_t rn = right->schema.num_attrs();
      for (size_t l = 0; l < left->rows.size(); ++l) {
        if (left_matches[l] == nullptr) continue;
        const PlanRow& lr = left->rows[l];
        for (size_t r : *left_matches[l]) {
          const PlanRow& rr = right->rows[r];
          bool impossible = false;
          Event ev = ConjoinEvents(EventRef{lr.prob, &lr.lineage},
                                   EventRef{rr.prob, &rr.lineage}, sources,
                                   &out.safe, &impossible);
          if (impossible) continue;
          Tuple joined(ln + rn);
          for (AttrId a = 0; a < ln; ++a) {
            joined.set_value(a, lr.tuple.value(a));
          }
          for (AttrId a = 0; a < rn; ++a) {
            joined.set_value(static_cast<AttrId>(ln + a),
                             rr.tuple.value(a));
          }
          out.rows.push_back(PlanRow{std::move(joined), ev.prob,
                                     std::move(ev.lineage)});
        }
      }
      return out;
    }
  }
  return Status::Internal("unknown plan operator");
}

// ---------------------------------------------------------------------------
// The columnar batch evaluator (the production path). Same operators,
// same combination rules, same row order and floating-point operations
// as EvalNode above — but intermediate rows live in struct-of-arrays
// ColumnBatches: values in one contiguous column per attribute, the
// interval in flat double arrays, lineage in a side CSR table. No Tuple
// is constructed and no PlanRow is moved until the root rematerializes,
// and the batch combination rules below append lineage straight into
// the output arena — zero per-row allocations in steady state, where
// the row reference pays one or more vector allocations per event.
// ---------------------------------------------------------------------------

// Sorted-unique merge of two key spans into `out` (cleared first);
// returns true when the spans share a key — the UnionKeys +
// KeysIntersect pair of the row rules in one pass.
bool MergeKeySpans(const uint64_t* a, size_t an, const uint64_t* b, size_t bn,
                   std::vector<uint64_t>* out) {
  out->clear();
  out->reserve(an + bn);
  bool shared = false;
  size_t i = 0;
  size_t j = 0;
  while (i < an && j < bn) {
    if (a[i] < b[j]) {
      out->push_back(a[i++]);
    } else if (b[j] < a[i]) {
      out->push_back(b[j++]);
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
      shared = true;
    }
  }
  out->insert(out->end(), a + i, a + an);
  out->insert(out->end(), b + j, b + bn);
  return shared;
}

// Scratch reused across every batch conjoin/disjoin of one evaluation,
// so the batch rules allocate nothing per row in steady state. Block
// keys are dense (BlockKey packs (source, block) and blocks are
// contiguous per source), so the "which event owns this block" lookup
// of the correlation DSU is an epoch-stamped direct-index table rather
// than a hash map — one array read per lineage key.
struct EventScratch {
  std::vector<uint32_t> alt_set;
  std::vector<uint64_t> key_set;
  std::vector<size_t> parent;           // DSU over group members
  std::vector<size_t> block_base;       // per-source slot base (prefix sums)
  std::vector<uint32_t> owner_of_block; // slot -> owning member idx
  std::vector<uint32_t> owner_epoch;    // slot -> stamp of last write
  uint32_t epoch = 0;
  std::vector<uint32_t> comp_of_root;   // member idx -> component (or ~0u)
  std::vector<std::vector<uint32_t>> components;
  size_t num_components = 0;
};

// Concatenate + sort + unique the block keys of the member rows named
// by `comp` — the same set the row rules build by pairwise UnionKeys
// merging, without the quadratic blowup.
void CollectSortedKeys(const LineageTable& lt, const uint32_t* rows,
                       const uint32_t* comp, size_t comp_n,
                       std::vector<uint64_t>* out) {
  out->clear();
  for (size_t i = 0; i < comp_n; ++i) {
    const uint32_t r = rows[comp[i]];
    out->insert(out->end(), lt.keys_begin(r),
                lt.keys_begin(r) + lt.keys_size(r));
  }
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

// AND of row l of `left` and row r of `right`: appends the combined
// interval and lineage to `out` and returns true, or returns false for
// an impossible pair (same block, disjoint alternative sets). Mirrors
// ConjoinEvents rule for rule — same formulas, same operation order.
bool ConjoinRowsToBatch(const ColumnBatch& left, size_t l,
                        const ColumnBatch& right, size_t r,
                        const std::vector<const ProbDatabase*>& sources,
                        ColumnBatch* out, bool* exact, EventScratch* s) {
  const LineageTable& la = left.lineage;
  const LineageTable& lb = right.lineage;
  if (la.simple[l] != 0 && lb.simple[r] != 0 &&
      la.source[l] == lb.source[r] && la.block[l] == lb.block[r]) {
    // Same block: the chosen alternative must lie in both sets.
    s->alt_set.clear();
    std::set_intersection(la.alts_begin(l), la.alts_begin(l) + la.alts_size(l),
                          lb.alts_begin(r), lb.alts_begin(r) + lb.alts_size(r),
                          std::back_inserter(s->alt_set));
    if (s->alt_set.empty()) return false;
    const double mass = AltSetMass(*sources[la.source[l]],
                                   static_cast<size_t>(la.block[l]),
                                   s->alt_set);
    out->lo.push_back(mass);
    out->hi.push_back(mass);
    out->lineage.AppendSimple(la.source[l], la.block[l], s->alt_set);
    return true;
  }
  const bool shared =
      MergeKeySpans(la.keys_begin(l), la.keys_size(l), lb.keys_begin(r),
                    lb.keys_size(r), &s->key_set);
  if (!shared) {
    // Independent operands: probabilities multiply, exactly.
    out->lo.push_back(left.lo[l] * right.lo[r]);
    out->hi.push_back(left.hi[l] * right.hi[r]);
  } else {
    // Correlated operands: Frechet conjunction bounds.
    out->lo.push_back(std::max(0.0, left.lo[l] + right.lo[r] - 1.0));
    out->hi.push_back(std::min(left.hi[l], right.hi[r]));
    *exact = false;
  }
  out->lineage.AppendComposite(s->key_set);
  return true;
}

// OR of one projection group's member rows (`rows[0..n)` of `child`):
// appends the merged interval and lineage to `out`. Mirrors
// DisjoinEvents — same component structure, same formulas in the same
// order — with one representational improvement: a correlated
// component's key set is collected once and sort-uniqued instead of
// merged pairwise (identical resulting set, linear instead of
// quadratic in the component's block count).
void DisjoinGroupToBatch(const ColumnBatch& child, const uint32_t* rows,
                         size_t n,
                         const std::vector<const ProbDatabase*>& sources,
                         ColumnBatch* out, bool* exact, EventScratch* s) {
  const LineageTable& lt = child.lineage;
  assert(n != 0);
  if (n == 1) {
    out->lo.push_back(child.lo[rows[0]]);
    out->hi.push_back(child.hi[rows[0]]);
    out->lineage.AppendFrom(lt, rows[0]);
    return;
  }

  // Correlation components (mirrors CorrelationComponents): DSU over
  // the members, unioning events that share a base block; components
  // numbered by ascending first member index.
  s->parent.resize(n);
  std::iota(s->parent.begin(), s->parent.end(), 0);
  auto find = [&](size_t x) {
    while (s->parent[x] != x) {
      s->parent[x] = s->parent[s->parent[x]];
      x = s->parent[x];
    }
    return x;
  };
  if (s->block_base.empty()) {
    s->block_base.resize(sources.size() + 1, 0);
    for (size_t i = 0; i < sources.size(); ++i) {
      s->block_base[i + 1] =
          s->block_base[i] + (sources[i] != nullptr ? sources[i]->num_blocks()
                                                    : 0);
    }
    s->owner_of_block.assign(s->block_base.back(), 0);
    s->owner_epoch.assign(s->block_base.back(), 0);
  }
  ++s->epoch;
  constexpr uint64_t kBlockMask = (uint64_t{1} << 40) - 1;
  for (size_t i = 0; i < n; ++i) {
    const uint64_t* kb = lt.keys_begin(rows[i]);
    const size_t kn = lt.keys_size(rows[i]);
    for (size_t k = 0; k < kn; ++k) {
      const size_t slot =
          s->block_base[kb[k] >> 40] + static_cast<size_t>(kb[k] & kBlockMask);
      if (s->owner_epoch[slot] != s->epoch) {
        s->owner_epoch[slot] = s->epoch;
        s->owner_of_block[slot] = static_cast<uint32_t>(i);
      } else {
        s->parent[find(i)] = find(s->owner_of_block[slot]);
      }
    }
  }
  s->comp_of_root.assign(n, UINT32_MAX);
  s->num_components = 0;
  for (size_t i = 0; i < n; ++i) {
    const size_t root = find(i);
    if (s->comp_of_root[root] == UINT32_MAX) {
      s->comp_of_root[root] = static_cast<uint32_t>(s->num_components);
      if (s->components.size() == s->num_components) {
        s->components.emplace_back();
      }
      s->components[s->num_components].clear();
      ++s->num_components;
    }
    s->components[s->comp_of_root[root]].push_back(static_cast<uint32_t>(i));
  }

  // One component: its merged event IS the output row (the row rules'
  // merged.size() == 1 shortcut). Several: they touch disjoint blocks,
  // hence are independent, and the union complement-multiplies in
  // component order.
  const bool lone = s->num_components == 1;
  double none_lo = 1.0;
  double none_hi = 1.0;
  for (size_t c = 0; c < s->num_components; ++c) {
    const std::vector<uint32_t>& comp = s->components[c];
    double clo = 0.0;
    double chi = 0.0;
    if (comp.size() == 1) {
      const uint32_t r = rows[comp[0]];
      clo = child.lo[r];
      chi = child.hi[r];
      if (lone) {
        out->lo.push_back(clo);
        out->hi.push_back(chi);
        out->lineage.AppendFrom(lt, r);
        return;
      }
    } else {
      const uint32_t r0 = rows[comp[0]];
      bool all_simple_same_block = true;
      for (uint32_t i : comp) {
        const uint32_t r = rows[i];
        if (lt.simple[r] == 0 || lt.source[r] != lt.source[r0] ||
            lt.block[r] != lt.block[r0]) {
          all_simple_same_block = false;
          break;
        }
      }
      if (all_simple_same_block) {
        // Disjoint-union rule: alternative sets of one block union
        // exactly.
        s->alt_set.clear();
        for (uint32_t i : comp) {
          const uint32_t r = rows[i];
          s->alt_set.insert(s->alt_set.end(), lt.alts_begin(r),
                            lt.alts_begin(r) + lt.alts_size(r));
        }
        std::sort(s->alt_set.begin(), s->alt_set.end());
        s->alt_set.erase(std::unique(s->alt_set.begin(), s->alt_set.end()),
                         s->alt_set.end());
        clo = chi = AltSetMass(*sources[lt.source[r0]],
                               static_cast<size_t>(lt.block[r0]), s->alt_set);
        if (lone) {
          out->lo.push_back(clo);
          out->hi.push_back(chi);
          out->lineage.AppendSimple(lt.source[r0], lt.block[r0], s->alt_set);
          return;
        }
      } else {
        // Correlated component: dissociate to Frechet disjunction
        // bounds.
        for (uint32_t i : comp) {
          const uint32_t r = rows[i];
          clo = std::max(clo, child.lo[r]);
          chi += child.hi[r];
        }
        chi = std::min(1.0, chi);
        *exact = false;
        if (lone) {
          CollectSortedKeys(lt, rows, comp.data(), comp.size(), &s->key_set);
          out->lo.push_back(clo);
          out->hi.push_back(chi);
          out->lineage.AppendComposite(s->key_set);
          return;
        }
      }
    }
    none_lo *= (1.0 - clo);
    none_hi *= (1.0 - chi);
  }

  // The combined lineage reads every member's blocks; the set is the
  // same whether unioned pairwise (row rules) or collected and
  // sort-uniqued once.
  s->key_set.clear();
  for (size_t i = 0; i < n; ++i) {
    const uint32_t r = rows[i];
    s->key_set.insert(s->key_set.end(), lt.keys_begin(r),
                      lt.keys_begin(r) + lt.keys_size(r));
  }
  std::sort(s->key_set.begin(), s->key_set.end());
  s->key_set.erase(std::unique(s->key_set.begin(), s->key_set.end()),
                   s->key_set.end());
  out->lo.push_back(Clamp01(1.0 - none_lo));
  out->hi.push_back(Clamp01(1.0 - none_hi));
  out->lineage.AppendComposite(s->key_set);
}

// Per-operator EXPLAIN ANALYZE + resource accounting: stamps the
// operator span with its input/output cardinalities and the arena
// footprint of the output lineage, folds the output batch into the
// request's PlanResources peaks/counters, then ends the span. Two early
// returns when both feeds are off.
void CloseOpSpan(const TraceSpan& span, size_t rows_in,
                 const ColumnBatch& out, PlanResources* res) {
  if (res != nullptr) {
    res->peak_batch_bytes =
        std::max<uint64_t>(res->peak_batch_bytes, out.ByteSize());
    res->peak_lineage_bytes =
        std::max<uint64_t>(res->peak_lineage_bytes, out.lineage.ByteSize());
    res->lineage_events += out.lineage.num_rows();
  }
  if (!span.active()) return;
  span.SetAttr("rows_in", static_cast<int64_t>(rows_in));
  span.SetAttr("rows_out", static_cast<int64_t>(out.num_rows()));
  span.SetAttr("lineage_size",
               static_cast<int64_t>(out.lineage.keys.size() +
                                    out.lineage.alts.size()));
  span.End();
}

Result<ColumnBatch> EvalNodeBatch(const PlanNode& node,
                                  const std::vector<const ProbDatabase*>& sources,
                                  TraceSpan trace, PlanResources* res) {
  switch (node.op) {
    case PlanNode::Op::kScan: {
      TraceSpan span = trace.StartChild("op.scan");
      MRSL_RETURN_IF_ERROR(ValidateSource(node.source, sources));
      ColumnBatch out = ScanToBatch(*sources[node.source],
                                    static_cast<uint32_t>(node.source));
      CloseOpSpan(span, 0, out, res);
      return out;
    }

    case PlanNode::Op::kSelect: {
      TraceSpan span = trace.StartChild("op.select");
      auto child = EvalNodeBatch(*node.left, sources, span, res);
      if (!child.ok()) return child.status();
      const size_t rows_in = child->num_rows();
      AttrMask touched = node.pred.AttrsTouched();
      if (child->schema.num_attrs() < kMaxAttributes &&
          (touched >> child->schema.num_attrs()) != 0) {
        return Status::InvalidArgument("select predicate attr out of range");
      }
      if (node.pred.atoms().empty()) {
        CloseOpSpan(span, rows_in, *child, res);
        return child;
      }
      // Predicate sweep: each atom scans ONE column, refining the
      // selection vector; the single gather afterwards applies it.
      std::vector<uint32_t> sel;
      bool first = true;
      for (const PredicateAtom& atom : node.pred.atoms()) {
        const std::vector<ValueId>& col = child->cols[atom.attr];
        if (first) {
          const size_t n = child->num_rows();
          sel.reserve(n);
          for (size_t r = 0; r < n; ++r) {
            if ((col[r] == atom.value) != atom.negated) {
              sel.push_back(static_cast<uint32_t>(r));
            }
          }
          first = false;
        } else {
          size_t w = 0;
          for (uint32_t r : sel) {
            if ((col[r] == atom.value) != atom.negated) sel[w++] = r;
          }
          sel.resize(w);
        }
      }
      child->Keep(sel);
      CloseOpSpan(span, rows_in, *child, res);
      return child;
    }

    case PlanNode::Op::kProject: {
      TraceSpan span = trace.StartChild("op.project");
      auto child = EvalNodeBatch(*node.left, sources, span, res);
      if (!child.ok()) return child.status();
      auto schema = ProjectSchema(child->schema, node.attrs);
      if (!schema.ok()) return schema.status();

      // Group-id sweep over the projected columns (first-seen order),
      // then a stable counting sort so each group's member rows are
      // contiguous for the single disjoin pass.
      GroupIds groups = AssignGroupIds(*child, node.attrs);
      const size_t n = child->num_rows();
      const size_t g_count = groups.num_groups();
      std::vector<uint32_t> offsets(g_count + 1, 0);
      for (size_t r = 0; r < n; ++r) ++offsets[groups.group_of_row[r] + 1];
      for (size_t g = 0; g < g_count; ++g) offsets[g + 1] += offsets[g];
      std::vector<uint32_t> members(n);
      {
        std::vector<uint32_t> cursor(offsets.begin(), offsets.end() - 1);
        for (size_t r = 0; r < n; ++r) {
          members[cursor[groups.group_of_row[r]]++] =
              static_cast<uint32_t>(r);
        }
      }

      ColumnBatch out;
      out.SetSchema(std::move(schema).value());
      out.safe = child->safe;
      out.ReserveRows(g_count);
      EventScratch scratch;
      for (size_t g = 0; g < g_count; ++g) {
        DisjoinGroupToBatch(*child, members.data() + offsets[g],
                            offsets[g + 1] - offsets[g], sources, &out,
                            &out.safe, &scratch);
        const uint32_t rep = groups.rep_row[g];
        for (size_t k = 0; k < node.attrs.size(); ++k) {
          out.cols[k].push_back(child->cols[node.attrs[k]][rep]);
        }
      }
      CloseOpSpan(span, n, out, res);
      return out;
    }

    case PlanNode::Op::kJoin: {
      TraceSpan span = trace.StartChild("op.join");
      auto left = EvalNodeBatch(*node.left, sources, span, res);
      if (!left.ok()) return left.status();
      auto right = EvalNodeBatch(*node.right, sources, span, res);
      if (!right.ok()) return right.status();
      if (node.left_attr >= left->schema.num_attrs() ||
          node.right_attr >= right->schema.num_attrs()) {
        return Status::InvalidArgument("join attribute out of range");
      }
      auto schema = ConcatSchemas(left->schema, right->schema);
      if (!schema.ok()) return schema.status();

      // Hash build on the raw right key column.
      std::unordered_map<ValueId, std::vector<uint32_t>> right_index =
          BuildKeyIndex(right->cols[node.right_attr]);

      ColumnBatch out;
      out.SetSchema(std::move(schema).value());
      out.safe = left->safe && right->safe;

      // Pass 1 — probe and combine events, recording the surviving
      // (left, right) row pairs. Only the event math runs per pair; no
      // values move yet.
      const std::vector<ValueId>& left_keys = left->cols[node.left_attr];
      const size_t left_n = left->num_rows();
      std::vector<uint32_t> lrows;
      std::vector<uint32_t> rrows;
      EventScratch scratch;
      for (size_t l = 0; l < left_n; ++l) {
        auto it = right_index.find(left_keys[l]);
        if (it == right_index.end()) continue;
        for (uint32_t r : it->second) {
          if (!ConjoinRowsToBatch(*left, l, *right, r, sources, &out,
                                  &out.safe, &scratch)) {
            continue;
          }
          lrows.push_back(static_cast<uint32_t>(l));
          rrows.push_back(r);
        }
      }

      // Pass 2 — batched output append: one contiguous gather per
      // output column.
      const size_t out_n = lrows.size();
      const size_t ln = left->num_attrs();
      const size_t rn = right->num_attrs();
      for (size_t a = 0; a < ln; ++a) {
        const std::vector<ValueId>& src = left->cols[a];
        std::vector<ValueId>& dst = out.cols[a];
        dst.resize(out_n);
        for (size_t k = 0; k < out_n; ++k) dst[k] = src[lrows[k]];
      }
      for (size_t a = 0; a < rn; ++a) {
        const std::vector<ValueId>& src = right->cols[a];
        std::vector<ValueId>& dst = out.cols[ln + a];
        dst.resize(out_n);
        for (size_t k = 0; k < out_n; ++k) dst[k] = src[rrows[k]];
      }
      CloseOpSpan(span, left_n + right->num_rows(), out, res);
      return out;
    }
  }
  return Status::Internal("unknown plan operator");
}

}  // namespace

std::string ProbInterval::ToString() const {
  if (exact()) return FormatDouble(lo, 4);
  return "[" + FormatDouble(lo, 4) + ", " + FormatDouble(hi, 4) + "]";
}

PlanPtr ScanPlan(size_t source) {
  auto node = std::make_shared<PlanNode>();
  node->op = PlanNode::Op::kScan;
  node->source = source;
  return node;
}

PlanPtr SelectPlan(Predicate pred, PlanPtr child) {
  auto node = std::make_shared<PlanNode>();
  node->op = PlanNode::Op::kSelect;
  node->pred = std::move(pred);
  node->left = std::move(child);
  return node;
}

PlanPtr ProjectPlan(std::vector<AttrId> attrs, PlanPtr child) {
  auto node = std::make_shared<PlanNode>();
  node->op = PlanNode::Op::kProject;
  node->attrs = std::move(attrs);
  node->left = std::move(child);
  return node;
}

PlanPtr JoinPlan(PlanPtr left, PlanPtr right, AttrId left_attr,
                 AttrId right_attr) {
  auto node = std::make_shared<PlanNode>();
  node->op = PlanNode::Op::kJoin;
  node->left = std::move(left);
  node->right = std::move(right);
  node->left_attr = left_attr;
  node->right_attr = right_attr;
  return node;
}

Result<Schema> PlanOutputSchema(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources) {
  switch (plan.op) {
    case PlanNode::Op::kScan: {
      MRSL_RETURN_IF_ERROR(ValidateSource(plan.source, sources));
      return sources[plan.source]->schema();
    }
    case PlanNode::Op::kSelect: {
      auto child = PlanOutputSchema(*plan.left, sources);
      if (!child.ok()) return child.status();
      // The oracle paths (MonteCarloPlanOracle, EvaluatePlanInWorld)
      // validate plans only through this function before calling
      // Predicate::Eval, whose cell access is unchecked.
      AttrMask touched = plan.pred.AttrsTouched();
      if (child->num_attrs() < kMaxAttributes &&
          (touched >> child->num_attrs()) != 0) {
        return Status::InvalidArgument("select predicate attr out of range");
      }
      return child;
    }
    case PlanNode::Op::kProject: {
      auto child = PlanOutputSchema(*plan.left, sources);
      if (!child.ok()) return child.status();
      return ProjectSchema(*child, plan.attrs);
    }
    case PlanNode::Op::kJoin: {
      auto left = PlanOutputSchema(*plan.left, sources);
      if (!left.ok()) return left.status();
      auto right = PlanOutputSchema(*plan.right, sources);
      if (!right.ok()) return right.status();
      if (plan.left_attr >= left->num_attrs() ||
          plan.right_attr >= right->num_attrs()) {
        return Status::InvalidArgument("join attribute out of range");
      }
      return ConcatSchemas(*left, *right);
    }
  }
  return Status::Internal("unknown plan operator");
}

Result<std::string> PlanToString(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources) {
  switch (plan.op) {
    case PlanNode::Op::kScan: {
      MRSL_RETURN_IF_ERROR(ValidateSource(plan.source, sources));
      return "scan(" + std::to_string(plan.source) + ")";
    }
    case PlanNode::Op::kSelect: {
      auto schema = PlanOutputSchema(*plan.left, sources);
      if (!schema.ok()) return schema.status();
      auto child = PlanToString(*plan.left, sources);
      if (!child.ok()) return child.status();
      return "select(" + plan.pred.ToString(*schema) + "; " + *child + ")";
    }
    case PlanNode::Op::kProject: {
      auto schema = PlanOutputSchema(*plan.left, sources);
      if (!schema.ok()) return schema.status();
      auto child = PlanToString(*plan.left, sources);
      if (!child.ok()) return child.status();
      std::vector<std::string> names;
      for (AttrId a : plan.attrs) {
        if (a >= schema->num_attrs()) {
          return Status::InvalidArgument("project attr out of range");
        }
        names.push_back(schema->attr(a).name());
      }
      return "project(" + Join(names, ",") + "; " + *child + ")";
    }
    case PlanNode::Op::kJoin: {
      auto lschema = PlanOutputSchema(*plan.left, sources);
      if (!lschema.ok()) return lschema.status();
      auto rschema = PlanOutputSchema(*plan.right, sources);
      if (!rschema.ok()) return rschema.status();
      if (plan.left_attr >= lschema->num_attrs() ||
          plan.right_attr >= rschema->num_attrs()) {
        return Status::InvalidArgument("join attribute out of range");
      }
      auto left = PlanToString(*plan.left, sources);
      if (!left.ok()) return left.status();
      auto right = PlanToString(*plan.right, sources);
      if (!right.ok()) return right.status();
      return "join(" + *left + "; " + *right + "; " +
             lschema->attr(plan.left_attr).name() + "=" +
             rschema->attr(plan.right_attr).name() + ")";
    }
  }
  return Status::Internal("unknown plan operator");
}

void PlanResources::Merge(const PlanResources& other) {
  peak_batch_bytes = std::max(peak_batch_bytes, other.peak_batch_bytes);
  peak_lineage_bytes = std::max(peak_lineage_bytes, other.peak_lineage_bytes);
  lineage_events += other.lineage_events;
  worlds_sampled += other.worlds_sampled;
}

Result<PlanResult> EvaluatePlan(const PlanNode& plan,
                                const std::vector<const ProbDatabase*>& sources,
                                TraceSpan trace, PlanResources* resources) {
  auto batch = EvalNodeBatch(plan, sources, trace, resources);
  if (!batch.ok()) return batch.status();
  return BatchToPlanResult(std::move(*batch));
}

Result<PlanResult> EvaluatePlanRowwise(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources) {
  return EvalNode(plan, sources);
}

std::vector<DistinctMarginal> DistinctMarginals(
    const PlanResult& result,
    const std::vector<const ProbDatabase*>& sources) {
  std::unordered_map<Tuple, size_t, TupleHash> index;
  std::vector<std::pair<Tuple, std::vector<size_t>>> groups;
  for (size_t r = 0; r < result.rows.size(); ++r) {
    auto [it, inserted] = index.emplace(result.rows[r].tuple, groups.size());
    if (inserted) {
      groups.emplace_back(result.rows[r].tuple, std::vector<size_t>());
    }
    groups[it->second].second.push_back(r);
  }
  std::vector<DistinctMarginal> out;
  out.reserve(groups.size());
  bool exact = true;  // per-marginal exactness shows in the interval
  std::vector<EventRef> group_events;
  for (auto& [tuple, members] : groups) {
    group_events.clear();
    group_events.reserve(members.size());
    for (size_t r : members) {
      group_events.push_back(
          EventRef{result.rows[r].prob, &result.rows[r].lineage});
    }
    Event ev = DisjoinEvents(group_events, sources, &exact);
    out.push_back(DistinctMarginal{std::move(tuple), ev.prob});
  }
  return out;
}

ExistsResult ExistsFromResult(
    const PlanResult& result,
    const std::vector<const ProbDatabase*>& sources) {
  ExistsResult out;
  out.safe = result.safe;
  if (result.rows.empty()) {
    out.prob = ProbInterval::Exact(0.0);
    return out;
  }
  std::vector<EventRef> events;
  events.reserve(result.rows.size());
  for (const PlanRow& row : result.rows) {
    events.push_back(EventRef{row.prob, &row.lineage});
  }
  Event ev = DisjoinEvents(events, sources, &out.safe);
  out.prob = ev.prob;
  return out;
}

Result<ExistsResult> EvaluateExists(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources) {
  auto result = EvaluatePlan(plan, sources);
  if (!result.ok()) return result.status();
  return ExistsFromResult(*result, sources);
}

CountResult CountFromResult(
    const PlanResult& result,
    const std::vector<const ProbDatabase*>& sources) {
  // `sources` keeps the signature parallel to ExistsFromResult; the
  // count rules below need only the rows' own events.
  (void)sources;
  CountResult out;
  out.safe = result.safe;

  // Linearity of expectation: the expected bag count is the sum of row
  // probabilities regardless of correlation, so the interval sum is
  // always sound and exact whenever every row is exact.
  double lo = 0.0;
  double hi = 0.0;
  bool all_exact = true;
  for (const PlanRow& row : result.rows) {
    lo += row.prob.lo;
    hi += row.prob.hi;
    all_exact = all_exact && row.prob.exact();
  }
  out.expected = ProbInterval::Bounds(lo, hi);

  // The full count distribution needs independent Bernoulli
  // contributions: rows in distinct correlation components, or simple
  // same-block rows with pairwise-disjoint alternative sets (at most one
  // of them exists per world -> one Bernoulli of the summed mass).
  if (!all_exact) return out;
  std::vector<EventRef> events;
  events.reserve(result.rows.size());
  for (const PlanRow& row : result.rows) {
    events.push_back(EventRef{row.prob, &row.lineage});
  }
  std::vector<double> bernoullis;
  for (const std::vector<size_t>& comp : CorrelationComponents(events)) {
    if (comp.size() == 1) {
      bernoullis.push_back(events[comp[0]].prob.lo);
      continue;
    }
    double mass = 0.0;
    size_t distinct_alts = 0;
    std::vector<uint32_t> seen;
    bool mergeable = true;
    for (size_t i : comp) {
      const Lineage& l = *events[i].lineage;
      if (!l.simple || l.source != events[comp[0]].lineage->source ||
          l.block != events[comp[0]].lineage->block) {
        mergeable = false;
        break;
      }
      seen.insert(seen.end(), l.alts.begin(), l.alts.end());
      distinct_alts += l.alts.size();
      mass += events[i].prob.lo;
    }
    if (mergeable) {
      std::sort(seen.begin(), seen.end());
      seen.erase(std::unique(seen.begin(), seen.end()), seen.end());
      // Overlapping alternative sets would let one world satisfy two
      // rows at once — the contribution is no longer Bernoulli.
      if (seen.size() != distinct_alts) mergeable = false;
    }
    if (!mergeable) return out;  // expected interval only
    bernoullis.push_back(Clamp01(mass));
  }

  std::vector<double> dist(1, 1.0);
  for (double q : bernoullis) {
    dist.push_back(0.0);
    for (size_t k = dist.size() - 1; k > 0; --k) {
      dist[k] = dist[k] * (1.0 - q) + dist[k - 1] * q;
    }
    dist[0] *= (1.0 - q);
  }
  out.has_distribution = true;
  out.distribution = std::move(dist);
  return out;
}

Result<CountResult> EvaluateCount(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources) {
  auto result = EvaluatePlan(plan, sources);
  if (!result.ok()) return result.status();
  return CountFromResult(*result, sources);
}

// ---------------------------------------------------------------------------
// Plan text parser.
// ---------------------------------------------------------------------------

namespace {

// Parse-time context: the original query buffer (so every error can
// carry the byte offset of the offending token — views handed around
// the parser are substrings of it) and a recursion depth guard against
// adversarially nested input.
struct ParseContext {
  const char* begin = nullptr;
  const char* end = nullptr;
  int depth = 0;
};

constexpr int kMaxParseDepth = 64;

// An InvalidArgument anchored at `where` (a substring of the original
// text; locations outside the buffer — e.g. views of normalized copies
// — fall back to the buffer start).
Status ParseError(const ParseContext& ctx, std::string_view where,
                  std::string message) {
  size_t offset = 0;
  if (where.data() >= ctx.begin && where.data() <= ctx.end) {
    offset = static_cast<size_t>(where.data() - ctx.begin);
  }
  return Status::InvalidArgument(message + " at byte " +
                                 std::to_string(offset));
}

// Splits the argument list of "op( ... )" on top-level ';', respecting
// nested parentheses. `text` excludes the outer parens.
Result<std::vector<std::string_view>> SplitArgs(std::string_view text,
                                                const ParseContext& ctx) {
  std::vector<std::string_view> args;
  int depth = 0;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c == '(') ++depth;
    if (c == ')') {
      --depth;
      if (depth < 0) {
        return ParseError(ctx, text.substr(i), "unbalanced ')'");
      }
    }
    if (c == ';' && depth == 0) {
      args.push_back(Trim(text.substr(start, i - start)));
      start = i + 1;
    }
  }
  if (depth != 0) return ParseError(ctx, text, "unbalanced '('");
  args.push_back(Trim(text.substr(start)));
  return args;
}

// "op" and the parenthesized payload of "op( ... )"; payload is empty
// (and *has_args false) for a bare identifier like "scan".
Status SplitCall(std::string_view text, const ParseContext& ctx,
                 std::string_view* op, std::string_view* payload,
                 bool* has_args) {
  text = Trim(text);
  size_t paren = text.find('(');
  if (paren == std::string_view::npos) {
    *op = text;
    *payload = std::string_view();
    *has_args = false;
    return Status::OK();
  }
  if (text.back() != ')') {
    return ParseError(ctx, text.substr(text.size() - 1),
                      "expected ')' at end of: " + std::string(text));
  }
  *op = Trim(text.substr(0, paren));
  *payload = text.substr(paren + 1, text.size() - paren - 2);
  *has_args = true;
  return Status::OK();
}

Result<AttrId> ResolveAttr(std::string_view name, const Schema& schema,
                           const ParseContext& ctx,
                           std::string_view location) {
  AttrId id = 0;
  if (!schema.FindAttr(std::string(Trim(name)), &id)) {
    return ParseError(ctx, location,
                      "unknown attribute: " + std::string(Trim(name)));
  }
  return id;
}

Result<Predicate> ParsePredicateText(std::string_view text,
                                     const Schema& schema,
                                     const ParseContext& ctx) {
  std::string norm(Trim(text));
  if (norm.empty() || norm == "true" || norm == "TRUE") return Predicate();
  // Predicate::ToString joins atoms with " AND "; accept it back.
  for (size_t pos = 0; (pos = norm.find(" AND ", pos)) != std::string::npos;) {
    norm.replace(pos, 5, " & ");
  }
  Predicate pred;
  for (const std::string& atom : Split(norm, '&')) {
    std::string_view a = Trim(atom);
    size_t ne = a.find("!=");
    size_t eq = a.find('=');
    bool negated = ne != std::string_view::npos;
    size_t op_pos = negated ? ne : eq;
    if (op_pos == std::string_view::npos) {
      // `a` views the normalized copy; anchor at the predicate text.
      return ParseError(ctx, text,
                        "bad predicate atom: " + std::string(a));
    }
    auto attr = ResolveAttr(a.substr(0, op_pos), schema, ctx, text);
    if (!attr.ok()) return attr.status();
    std::string label(Trim(a.substr(op_pos + (negated ? 2 : 1))));
    ValueId value = schema.attr(*attr).Find(label);
    if (value == kMissingValue) {
      return ParseError(ctx, text,
                        "unknown value '" + label + "' for attribute " +
                            schema.attr(*attr).name());
    }
    pred = pred.And(negated ? Predicate::Ne(*attr, value)
                            : Predicate::Eq(*attr, value));
  }
  return pred;
}

struct ParsedNode {
  PlanPtr plan;
  Schema schema;
};

Result<ParsedNode> ParseNodeText(std::string_view text,
                                 const std::vector<const ProbDatabase*>& sources,
                                 ParseContext* ctx) {
  if (++ctx->depth > kMaxParseDepth) {
    --ctx->depth;
    return ParseError(*ctx, text,
                      "plan nested deeper than " +
                          std::to_string(kMaxParseDepth) + " levels");
  }
  struct DepthGuard {
    ParseContext* ctx;
    ~DepthGuard() { --ctx->depth; }
  } guard{ctx};

  std::string_view op;
  std::string_view payload;
  bool has_args = false;
  MRSL_RETURN_IF_ERROR(SplitCall(text, *ctx, &op, &payload, &has_args));

  if (op == "scan") {
    size_t source = 0;
    if (has_args && !Trim(payload).empty()) {
      int64_t idx = 0;
      if (!ParseInt(Trim(payload), &idx) || idx < 0) {
        return ParseError(*ctx, payload,
                          "bad scan source: " + std::string(payload));
      }
      source = static_cast<size_t>(idx);
    }
    Status valid = ValidateSource(source, sources);
    if (!valid.ok()) return ParseError(*ctx, text, valid.message());
    return ParsedNode{ScanPlan(source), sources[source]->schema()};
  }
  if (!has_args) {
    return ParseError(*ctx, text.empty() ? op : text,
                      "unknown plan operator: " + std::string(op));
  }
  auto args = SplitArgs(payload, *ctx);
  if (!args.ok()) return args.status();

  if (op == "select") {
    if (args->size() != 2) {
      return ParseError(*ctx, payload,
                        "select(pred; node) takes 2 arguments");
    }
    auto child = ParseNodeText((*args)[1], sources, ctx);
    if (!child.ok()) return child.status();
    auto pred = ParsePredicateText((*args)[0], child->schema, *ctx);
    if (!pred.ok()) return pred.status();
    Schema schema = child->schema;
    return ParsedNode{SelectPlan(std::move(pred).value(),
                                 std::move(child->plan)),
                      std::move(schema)};
  }
  if (op == "project") {
    if (args->size() != 2) {
      return ParseError(*ctx, payload,
                        "project(attrs; node) takes 2 arguments");
    }
    auto child = ParseNodeText((*args)[1], sources, ctx);
    if (!child.ok()) return child.status();
    std::vector<AttrId> attrs;
    for (const std::string& name : Split((*args)[0], ',')) {
      auto attr = ResolveAttr(name, child->schema, *ctx, (*args)[0]);
      if (!attr.ok()) return attr.status();
      attrs.push_back(*attr);
    }
    auto schema = ProjectSchema(child->schema, attrs);
    if (!schema.ok()) return schema.status();
    return ParsedNode{ProjectPlan(std::move(attrs), std::move(child->plan)),
                      std::move(schema).value()};
  }
  if (op == "join") {
    if (args->size() != 3) {
      return ParseError(*ctx, payload,
                        "join(left; right; attr=attr) takes 3 arguments");
    }
    auto left = ParseNodeText((*args)[0], sources, ctx);
    if (!left.ok()) return left.status();
    auto right = ParseNodeText((*args)[1], sources, ctx);
    if (!right.ok()) return right.status();
    std::string_view cond = (*args)[2];
    size_t eq = cond.find('=');
    if (eq == std::string_view::npos) {
      return ParseError(*ctx, cond, "join condition must be attr=attr");
    }
    auto la = ResolveAttr(cond.substr(0, eq), left->schema, *ctx,
                          cond.substr(0, eq));
    if (!la.ok()) return la.status();
    auto ra = ResolveAttr(cond.substr(eq + 1), right->schema, *ctx,
                          cond.substr(eq + 1));
    if (!ra.ok()) return ra.status();
    auto schema = ConcatSchemas(left->schema, right->schema);
    if (!schema.ok()) return schema.status();
    return ParsedNode{JoinPlan(std::move(left->plan), std::move(right->plan),
                               *la, *ra),
                      std::move(schema).value()};
  }
  return ParseError(*ctx, op, "unknown plan operator: " + std::string(op));
}

}  // namespace

Result<ParsedQuery> ParsePlan(std::string_view text,
                              const std::vector<const ProbDatabase*>& sources) {
  ParseContext ctx;
  ctx.begin = text.data();
  ctx.end = text.data() + text.size();

  std::string_view trimmed = Trim(text);
  if (trimmed.empty()) {
    return ParseError(ctx, trimmed, "empty plan text");
  }
  std::string_view op;
  std::string_view payload;
  bool has_args = false;
  MRSL_RETURN_IF_ERROR(SplitCall(trimmed, ctx, &op, &payload, &has_args));

  ParsedQuery out;
  std::string_view body = trimmed;
  if (op == "exists" || op == "count") {
    if (!has_args) {
      return ParseError(ctx, trimmed, std::string(op) + " needs a plan");
    }
    out.kind = op == "exists" ? ParsedQuery::Kind::kExists
                              : ParsedQuery::Kind::kCount;
    body = payload;
  }
  auto node = ParseNodeText(body, sources, &ctx);
  if (!node.ok()) return node.status();
  out.plan = std::move(node->plan);
  return out;
}

// ---------------------------------------------------------------------------
// The Monte-Carlo differential-testing oracle.
// ---------------------------------------------------------------------------

namespace {

// SplitMix64 finalizer over (seed, chunk): a pure function, so chunk c
// always replays the same worlds whatever thread executes it.
uint64_t OracleChunkSeed(uint64_t seed, uint64_t chunk) {
  uint64_t z = seed + 0x9E3779B97F4A7C15ULL * (chunk + 1);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

// Deterministic single-world evaluation; the plan must be validated
// before the trial loop (this cannot fail).
void EvalWorld(const PlanNode& node,
               const std::vector<const ProbDatabase*>& sources,
               const std::vector<std::vector<int32_t>>& choices,
               std::vector<Tuple>* out) {
  switch (node.op) {
    case PlanNode::Op::kScan: {
      const ProbDatabase& db = *sources[node.source];
      const std::vector<int32_t>& picks = choices[node.source];
      for (size_t b = 0; b < db.num_blocks(); ++b) {
        if (picks[b] == kNoAlternative) continue;
        out->push_back(
            db.block(b).alternatives[static_cast<size_t>(picks[b])].tuple);
      }
      return;
    }
    case PlanNode::Op::kSelect: {
      std::vector<Tuple> child;
      EvalWorld(*node.left, sources, choices, &child);
      for (Tuple& t : child) {
        if (node.pred.Eval(t)) out->push_back(std::move(t));
      }
      return;
    }
    case PlanNode::Op::kProject: {
      std::vector<Tuple> child;
      EvalWorld(*node.left, sources, choices, &child);
      std::unordered_set<Tuple, TupleHash> seen;
      for (const Tuple& t : child) {
        Tuple proj(node.attrs.size());
        for (size_t k = 0; k < node.attrs.size(); ++k) {
          proj.set_value(static_cast<AttrId>(k), t.value(node.attrs[k]));
        }
        if (seen.insert(proj).second) out->push_back(std::move(proj));
      }
      return;
    }
    case PlanNode::Op::kJoin: {
      std::vector<Tuple> left;
      std::vector<Tuple> right;
      EvalWorld(*node.left, sources, choices, &left);
      EvalWorld(*node.right, sources, choices, &right);
      std::unordered_map<ValueId, std::vector<const Tuple*>> right_index;
      for (const Tuple& t : right) {
        right_index[t.value(node.right_attr)].push_back(&t);
      }
      const size_t rn = right.empty() ? 0 : right[0].num_attrs();
      for (const Tuple& lt : left) {
        auto it = right_index.find(lt.value(node.left_attr));
        if (it == right_index.end()) continue;
        const size_t ln = lt.num_attrs();
        for (const Tuple* rt : it->second) {
          Tuple joined(ln + rn);
          for (AttrId a = 0; a < ln; ++a) joined.set_value(a, lt.value(a));
          for (AttrId a = 0; a < rn; ++a) {
            joined.set_value(static_cast<AttrId>(ln + a), rt->value(a));
          }
          out->push_back(std::move(joined));
        }
      }
      return;
    }
  }
}

}  // namespace

Result<std::vector<Tuple>> EvaluatePlanInWorld(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources,
    const std::vector<std::vector<int32_t>>& choices) {
  MRSL_RETURN_IF_ERROR(PlanOutputSchema(plan, sources).status());
  if (choices.size() != sources.size()) {
    return Status::InvalidArgument("need one choice vector per source");
  }
  for (size_t s = 0; s < sources.size(); ++s) {
    if (choices[s].size() != sources[s]->num_blocks()) {
      return Status::InvalidArgument("choice vector/block count mismatch");
    }
  }
  std::vector<Tuple> out;
  EvalWorld(plan, sources, choices, &out);
  return out;
}

Result<OracleResult> MonteCarloPlanOracle(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources,
    const OracleOptions& options) {
  auto schema = PlanOutputSchema(plan, sources);
  if (!schema.ok()) return schema.status();
  if (options.trials == 0) {
    return Status::InvalidArgument("oracle needs at least one trial");
  }

  const size_t chunk_size = std::max<size_t>(1, options.chunk_size);
  const size_t num_chunks = (options.trials + chunk_size - 1) / chunk_size;

  // Integer tallies per chunk; merged in chunk order below, so the
  // result is a pure function of (plan, sources, trials, seed).
  struct ChunkTally {
    uint64_t nonempty = 0;
    uint64_t total_count = 0;
    std::vector<uint64_t> count_hist;
    std::vector<std::pair<Tuple, uint64_t>> tuple_counts;  // first-seen order
  };
  std::vector<ChunkTally> tallies(num_chunks);

  auto run_chunk = [&](size_t c) {
    ChunkTally& tally = tallies[c];
    Rng rng(OracleChunkSeed(options.seed, c));
    std::vector<std::vector<int32_t>> choices(sources.size());
    std::unordered_map<Tuple, size_t, TupleHash> index;
    std::unordered_set<Tuple, TupleHash> distinct;
    std::vector<Tuple> bag;
    const size_t begin = c * chunk_size;
    const size_t end = std::min(options.trials, begin + chunk_size);
    for (size_t t = begin; t < end; ++t) {
      for (size_t s = 0; s < sources.size(); ++s) {
        SampleWorldChoices(*sources[s], &rng, &choices[s]);
      }
      bag.clear();
      EvalWorld(plan, sources, choices, &bag);
      if (!bag.empty()) ++tally.nonempty;
      tally.total_count += bag.size();
      if (tally.count_hist.size() <= bag.size()) {
        tally.count_hist.resize(bag.size() + 1, 0);
      }
      ++tally.count_hist[bag.size()];
      distinct.clear();
      for (const Tuple& tuple : bag) {
        if (!distinct.insert(tuple).second) continue;
        auto [it, inserted] = index.emplace(tuple, tally.tuple_counts.size());
        if (inserted) tally.tuple_counts.emplace_back(tuple, 0);
        ++tally.tuple_counts[it->second].second;
      }
    }
  };

  if (options.num_threads > 0) {
    ThreadPool pool(options.num_threads);
    pool.ParallelFor(num_chunks, options.num_threads, run_chunk);
  } else {
    ThreadPool::Global().ParallelFor(num_chunks, 0, run_chunk);
  }

  OracleResult out;
  out.trials = options.trials;
  out.schema = std::move(schema).value();
  uint64_t nonempty = 0;
  uint64_t total_count = 0;
  std::vector<uint64_t> hist;
  std::unordered_map<Tuple, size_t, TupleHash> index;
  std::vector<std::pair<Tuple, uint64_t>> tuple_counts;
  for (const ChunkTally& tally : tallies) {
    nonempty += tally.nonempty;
    total_count += tally.total_count;
    if (hist.size() < tally.count_hist.size()) {
      hist.resize(tally.count_hist.size(), 0);
    }
    for (size_t k = 0; k < tally.count_hist.size(); ++k) {
      hist[k] += tally.count_hist[k];
    }
    for (const auto& [tuple, count] : tally.tuple_counts) {
      auto [it, inserted] = index.emplace(tuple, tuple_counts.size());
      if (inserted) tuple_counts.emplace_back(tuple, 0);
      tuple_counts[it->second].second += count;
    }
  }
  const double n = static_cast<double>(options.trials);
  out.exists = static_cast<double>(nonempty) / n;
  out.expected_count = static_cast<double>(total_count) / n;
  if (hist.empty()) hist.resize(1, options.trials);
  out.count_distribution.reserve(hist.size());
  for (uint64_t h : hist) {
    out.count_distribution.push_back(static_cast<double>(h) / n);
  }
  out.marginals.reserve(tuple_counts.size());
  for (auto& [tuple, count] : tuple_counts) {
    out.marginals.push_back(
        ProbTuple{std::move(tuple), static_cast<double>(count) / n});
  }
  return out;
}

}  // namespace mrsl
