// Commit pipeline: partition the new workload into engine components
// (PlanIncrementalDerivation mirrors Engine::InferBatch exactly), batch
// every dirty component through ONE InferBatch call — concatenating
// whole components preserves each component's ordered tuple list, hence
// its canonical seed, hence bit-identity with a from-scratch derivation
// — then assemble the new database, aliasing the previous epoch's block
// pointers wherever neither the row nor its Δt changed. Publication is
// a single atomic_store; readers pin epochs with atomic_load and never
// take the writer mutex.

#include "pdb/store.h"

#include <sys/stat.h>

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "pdb/fingerprint.h"
#include "pdb/plan.h"
#include "pdb/snapshot_io.h"
#include "util/timer.h"

namespace mrsl {

const JointDist* StoreSnapshot::FindDist(const Tuple& t) const {
  auto it = dist_index_.find(t);
  return it == dist_index_.end() ? nullptr : it->second.get();
}

BidStore::BidStore(Engine* engine, StoreOptions options)
    : engine_(engine),
      options_(std::move(options)),
      plan_cache_(options_.plan_cache_capacity) {}

SnapshotPtr BidStore::snapshot() const {
  return std::atomic_load(&head_);
}

uint64_t BidStore::epoch() const {
  SnapshotPtr snap = snapshot();
  return snap == nullptr ? 0 : snap->epoch();
}

StoreOptions BidStore::options() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return options_;
}

Result<CommitStats> BidStore::Commit(Relation rel) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (wal_ != nullptr) {
    // A wholesale replacement is not representable as a WAL record, so
    // replaying the log over the pre-replacement snapshot would rebuild
    // the wrong store.
    return Status::FailedPrecondition(
        "Commit would bypass the write-ahead log; checkpoint and reopen "
        "instead of replacing the base relation wholesale");
  }
  SnapshotPtr parent = std::atomic_load(&head_);
  const uint64_t next_epoch = parent == nullptr ? 1 : parent->epoch() + 1;
  // A wholesale replacement has no index mapping to the parent: block
  // positions may shift arbitrarily, so the plan cache cannot carry
  // entries forward (component-level Δt reuse still applies).
  return CommitInternal(std::move(rel), parent.get(), next_epoch,
                        /*index_stable=*/false);
}

Result<CommitStats> BidStore::ApplyDelta(const RelationDelta& delta,
                                         uint64_t expected_epoch,
                                         TraceSpan trace) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  SnapshotPtr parent = std::atomic_load(&head_);
  if (parent == nullptr) {
    return Status::FailedPrecondition(
        "ApplyDelta needs a base epoch: call Commit or Restore first");
  }
  if (wal_failed_) {
    return Status::IOError(
        "the write-ahead log failed earlier; the store is read-only "
        "until restarted");
  }
  if (expected_epoch != 0 && parent->epoch() != expected_epoch) {
    return Status::FailedPrecondition(
        "delta targets epoch " + std::to_string(expected_epoch) +
        " but the store is at epoch " +
        std::to_string(parent->epoch()) +
        "; re-read the current epoch and re-address the delta");
  }
  MRSL_ASSIGN_OR_RETURN(Relation new_rel,
                        mrsl::ApplyDelta(parent->base(), delta));
  MRSL_ASSIGN_OR_RETURN(
      CommitStats stats,
      CommitInternal(std::move(new_rel), parent.get(), parent->epoch() + 1,
                     delta.IndexStable(), trace));
  if (wal_ != nullptr) {
    // Log after the commit published (a failed inference must not leave
    // a phantom record) but before returning: the caller may only
    // acknowledge once the covering Sync returned — immediately in
    // kAlways mode, at the group leader's SyncWal otherwise.
    TraceSpan wal_span = trace.StartChild("wal_append");
    Status logged = wal_->Append(stats.epoch, delta);
    wal_span.End();
    if (!logged.ok()) {
      // Memory is now ahead of the log; further commits would leave an
      // epoch gap that replay must reject. Freeze the write path.
      wal_failed_ = true;
      return logged;
    }
  }
  return stats;
}

Result<CommitStats> BidStore::CommitInternal(Relation new_rel,
                                             const StoreSnapshot* parent,
                                             uint64_t epoch,
                                             bool index_stable,
                                             TraceSpan trace) {
  if (options_.mode == SamplingMode::kAllAtATime) {
    return Status::InvalidArgument(
        "kAllAtATime has no component structure to re-derive "
        "incrementally; use another sampling mode");
  }
  WallTimer timer;
  CommitStats stats;
  stats.epoch = epoch;
  stats.index_stable = index_stable;

  // The engine workload: incomplete rows in row order (duplicates kept,
  // exactly what Engine::DeriveBatch would submit).
  TraceSpan partition_span = trace.StartChild("partition");
  std::vector<Tuple> workload;
  for (uint32_t r : new_rel.IncompleteRowIndices()) {
    workload.push_back(new_rel.row(r));
  }

  IncrementalPlan plan = PlanIncrementalDerivation(
      workload, [parent](const std::vector<Tuple>& component) {
        return parent != nullptr &&
               parent->component_index_.count(component) != 0;
      });
  stats.components_total = plan.components.size();
  stats.components_reinferred = plan.num_dirty_components;
  stats.tuples_reinferred = plan.dirty_workload.size();
  for (const std::vector<Tuple>& component : plan.components) {
    stats.tuples_total += component.size();
  }
  if (partition_span.active()) {
    partition_span.SetAttr("components",
                           static_cast<int64_t>(stats.components_total));
    partition_span.SetAttr(
        "components_dirty",
        static_cast<int64_t>(stats.components_reinferred));
    partition_span.End();
  }

  // One batch over the concatenated dirty components: same per-component
  // sub-workloads and seeds as a full derivation, so the results are
  // bit-identical to deriving everything from scratch.
  std::vector<JointDist> fresh;
  if (!plan.dirty_workload.empty()) {
    TraceSpan infer_span = trace.StartChild("infer");
    if (infer_span.active()) {
      infer_span.SetAttr("tuples",
                         static_cast<int64_t>(plan.dirty_workload.size()));
    }
    auto inferred =
        engine_->InferBatch(plan.dirty_workload, options_.mode,
                            options_.workload, &stats.inference, infer_span);
    infer_span.End();
    if (!inferred.ok()) return inferred.status();
    fresh = std::move(inferred).value();
  }

  TraceSpan assemble_span = trace.StartChild("assemble");
  auto snap = std::make_shared<StoreSnapshot>();
  snap->epoch_ = epoch;

  // Stitch components: clean ones alias the parent's shared Δt pointers,
  // dirty ones adopt the fresh results in concatenation order.
  size_t next_fresh = 0;
  std::unordered_set<const JointDist*> from_parent_dists;
  for (size_t c = 0; c < plan.components.size(); ++c) {
    StoreSnapshot::Component comp;
    comp.tuples = plan.components[c];
    if (plan.dirty[c]) {
      comp.dists.reserve(comp.tuples.size());
      for (size_t i = 0; i < comp.tuples.size(); ++i) {
        comp.dists.push_back(
            std::make_shared<const JointDist>(std::move(fresh[next_fresh])));
        ++next_fresh;
      }
    } else {
      const StoreSnapshot::Component& old =
          parent->components_[parent->component_index_.at(comp.tuples)];
      comp.dists = old.dists;
      for (const std::shared_ptr<const JointDist>& d : comp.dists) {
        from_parent_dists.insert(d.get());
      }
    }
    for (size_t i = 0; i < comp.tuples.size(); ++i) {
      snap->dist_index_.emplace(comp.tuples[i], comp.dists[i]);
    }
    snap->component_index_.emplace(comp.tuples, snap->components_.size());
    snap->components_.push_back(std::move(comp));
  }

  // Assemble the database, sharing every block whose row and Δt both
  // survived from the parent epoch. Everything else is rebuilt (a pure
  // function of row, Δt, and min_prob) and reported dirty to the plan
  // cache.
  auto db = std::make_shared<ProbDatabase>(new_rel.schema());
  std::vector<uint64_t> dirty_block_keys;
  std::unordered_map<Tuple, bool, TupleHash> reused_from_parent;
  for (size_t r = 0; r < new_rel.num_rows(); ++r) {
    const Tuple& row = new_rel.row(r);
    std::shared_ptr<const Block> block;
    auto cached = snap->block_cache_.find(row);
    if (cached != snap->block_cache_.end()) {
      block = cached->second;  // duplicate row within this commit
    } else {
      bool reusable = false;
      if (parent != nullptr) {
        auto old = parent->block_cache_.find(row);
        if (old != parent->block_cache_.end()) {
          if (row.IsComplete()) {
            reusable = true;  // certain blocks depend on the row alone
          } else {
            auto dist = snap->dist_index_.find(row);
            reusable = dist != snap->dist_index_.end() &&
                       from_parent_dists.count(dist->second.get()) != 0;
          }
          if (reusable) block = old->second;
        }
      }
      if (!reusable) {
        if (row.IsComplete()) {
          Block fresh_block;
          fresh_block.alternatives.push_back(Alternative{row, 1.0});
          block = std::make_shared<const Block>(std::move(fresh_block));
        } else {
          auto dist = snap->dist_index_.find(row);
          if (dist == snap->dist_index_.end()) {
            return Status::Internal("incomplete row missing its Δt");
          }
          MRSL_ASSIGN_OR_RETURN(
              Block fresh_block,
              BlockFromInference(row, *dist->second, options_.min_prob));
          block = std::make_shared<const Block>(std::move(fresh_block));
        }
      }
      snap->block_cache_.emplace(row, block);
      reused_from_parent.emplace(row, reusable);
    }
    MRSL_RETURN_IF_ERROR(db->AddSharedBlock(block));
    if (reused_from_parent.at(row)) ++stats.blocks_reused;
    // Dirty reporting for the plan cache is POSITIONAL, not content
    // based: an index-stable update that rewrites row r to a tuple some
    // other row already had reuses that tuple's block object (correct
    // structural sharing) but still changes what block index r holds —
    // cached plans that read index r must be invalidated. Clean means
    // "the parent epoch had this very block object at this very index".
    const size_t index = db->num_blocks() - 1;
    const bool position_clean =
        index_stable && parent != nullptr &&
        index < parent->database().num_blocks() &&
        block.get() == parent->shared_database()->shared_block(index).get();
    if (!position_clean) {
      dirty_block_keys.push_back(Lineage::BlockKey(0, index));
    }
  }
  stats.blocks_total = db->num_blocks();

  snap->db_ = std::move(db);
  snap->base_ = std::move(new_rel);
  if (assemble_span.active()) {
    assemble_span.SetAttr("blocks",
                          static_cast<int64_t>(stats.blocks_total));
    assemble_span.SetAttr("blocks_reused",
                          static_cast<int64_t>(stats.blocks_reused));
    assemble_span.End();
  }

  TraceSpan publish_span = trace.StartChild("publish");
  std::sort(dirty_block_keys.begin(), dirty_block_keys.end());
  plan_cache_.OnCommit(epoch, index_stable, dirty_block_keys,
                       snap->database());

  std::atomic_store(&head_, SnapshotPtr(std::move(snap)));
  publish_span.End();
  stats.wall_seconds = timer.ElapsedSeconds();
  return stats;
}

Result<StoreQueryResult> BidStore::Query(const std::string& plan_text) {
  return QueryOn(snapshot(), plan_text);
}

Result<StoreQueryResult> BidStore::Query(
    const std::string& plan_text, const CompileOptions& compile_options) {
  return QueryOn(snapshot(), plan_text, &compile_options);
}

std::vector<Result<StoreQueryResult>> BidStore::QueryBatch(
    const std::vector<std::string>& plan_texts) {
  return QueryBatch(plan_texts, std::vector<TraceSpan>());
}

std::vector<Result<StoreQueryResult>> BidStore::QueryBatch(
    const std::vector<std::string>& plan_texts,
    const std::vector<TraceSpan>& spans) {
  // One atomic load pins the epoch for the whole batch: every answer
  // comes from the same consistent snapshot no matter how many commits
  // land while the batch is being evaluated.
  SnapshotPtr snap = snapshot();
  std::vector<Result<StoreQueryResult>> results;
  results.reserve(plan_texts.size());
  for (size_t i = 0; i < plan_texts.size(); ++i) {
    results.push_back(QueryOn(snap, plan_texts[i], nullptr,
                              i < spans.size() ? spans[i] : TraceSpan()));
  }
  return results;
}

Result<StoreQueryResult> BidStore::QueryOn(const SnapshotPtr& snap,
                                           const std::string& plan_text,
                                           const CompileOptions* compile,
                                           TraceSpan trace) {
  if (snap == nullptr) {
    return Status::FailedPrecondition("store has no epoch yet");
  }
  std::vector<const ProbDatabase*> sources = {&snap->database()};
  WallTimer stage_timer;
  TraceSpan parse_span = trace.StartChild("parse");
  MRSL_ASSIGN_OR_RETURN(ParsedQuery parsed, ParsePlan(plan_text, sources));
  MRSL_ASSIGN_OR_RETURN(std::string rendered,
                        PlanToString(*parsed.plan, sources));
  StoreQueryResult out;
  out.epoch = snap->epoch();
  switch (parsed.kind) {
    case ParsedQuery::Kind::kRelation:
      out.canonical_text = rendered;
      break;
    case ParsedQuery::Kind::kExists:
      out.canonical_text = "exists(" + rendered + ")";
      break;
    case ParsedQuery::Kind::kCount:
      out.canonical_text = "count(" + rendered + ")";
      break;
  }
  // The digest identity rides along on every call — cache hits too, so
  // the statement store attributes hits to their shape. PlanToString
  // succeeded above, so normalization (same validation walk) cannot
  // fail; folded into parse time since it is the same kind of work.
  if (auto fp = FingerprintQuery(parsed, sources); fp.ok()) {
    out.fingerprint = fp->hash;
    out.normalized_text = std::move(fp->normalized);
  }
  out.stages.parse_seconds = stage_timer.ElapsedSeconds();
  parse_span.End();

  // Compiled answers depend on the compiler configuration, not just the
  // plan: the same canonical text at two width targets yields two
  // different envelopes. The suffix (never empty for a compiled query)
  // keys them apart — and apart from plain-evaluator entries, whose key
  // is the bare canonical text.
  std::string cache_key = out.canonical_text;
  if (compile != nullptr) cache_key += CompileCacheSuffix(*compile);

  if (auto hit = plan_cache_.Lookup(cache_key, out.epoch)) {
    out.from_cache = true;
    out.eval = std::move(hit);
    trace.SetAttr("cache", "hit");
    return out;
  }
  trace.SetAttr("cache", "miss");

  auto eval = std::make_shared<PlanEvaluation>();
  eval->kind = parsed.kind;
  if (compile != nullptr) {
    stage_timer.Reset();
    // Scope the compiler to the answers this query kind reads, mirroring
    // the plain path's kind switch below. The cache key stays on the
    // caller's options: the canonical text already carries the kind.
    CompileOptions scoped = *compile;
    scoped.want_exists = parsed.kind == ParsedQuery::Kind::kExists;
    scoped.want_count = parsed.kind == ParsedQuery::Kind::kCount;
    // The compiler nests its own phase1/phase2/combine children under
    // this request's "evaluate" span.
    TraceSpan eval_span = trace.StartChild("evaluate");
    MRSL_ASSIGN_OR_RETURN(
        CompiledQuery cq,
        CompileQuery(*parsed.plan, sources, scoped, eval_span,
                     &out.resources));
    eval_span.End();
    out.stages.evaluate_seconds = stage_timer.ElapsedSeconds();
    eval->compiled = true;
    eval->result = std::move(cq.result);
    eval->marginals = std::move(cq.marginals);
    eval->exists = cq.exists;
    eval->count = cq.count;
    eval->compile_stats = cq.stats;
    // Wall time is per-request, not part of the answer: a cache hit must
    // return a body identical to the miss that populated it.
    eval->compile_stats.compile_seconds = 0.0;
  } else {
    stage_timer.Reset();
    TraceSpan eval_span = trace.StartChild("evaluate");
    MRSL_ASSIGN_OR_RETURN(
        eval->result,
        EvaluatePlan(*parsed.plan, sources, eval_span, &out.resources));
    if (eval_span.active()) {
      eval_span.SetAttr("rows",
                        static_cast<int64_t>(eval->result.rows.size()));
      eval_span.End();
    }
    out.stages.evaluate_seconds = stage_timer.ElapsedSeconds();
    // Combine: aggregate the evaluated rows. The aggregates reuse the
    // relation result (ExistsFromResult / CountFromResult) instead of
    // evaluating the plan a second time.
    stage_timer.Reset();
    TraceSpan combine_span = trace.StartChild("combine");
    switch (parsed.kind) {
      case ParsedQuery::Kind::kRelation:
        eval->marginals = DistinctMarginals(eval->result, sources);
        break;
      case ParsedQuery::Kind::kExists:
        eval->exists = ExistsFromResult(eval->result, sources);
        break;
      case ParsedQuery::Kind::kCount:
        eval->count = CountFromResult(eval->result, sources);
        break;
    }
    combine_span.End();
    out.stages.combine_seconds = stage_timer.ElapsedSeconds();
  }

  // The entry's dependency set: every block any surviving row reads.
  std::vector<uint64_t> touched;
  for (const PlanRow& row : eval->result.rows) {
    touched.insert(touched.end(), row.lineage.blocks.begin(),
                   row.lineage.blocks.end());
  }
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()),
                touched.end());
  plan_cache_.Insert(cache_key, parsed.plan, out.epoch,
                     std::move(touched), eval);
  out.eval = std::move(eval);
  return out;
}

Result<SnapshotImage> BidStore::BuildSnapshotImage() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return BuildSnapshotImageLocked();
}

Result<SnapshotImage> BidStore::BuildSnapshotImageLocked() const {
  // Epoch and options must be captured as a consistent pair — Restore
  // swaps both, and a file pairing one epoch's components with another
  // restore's options would poison every cached Δt it carries.
  SnapshotPtr snap = std::atomic_load(&head_);
  StoreOptions opts = options_;
  if (snap == nullptr) {
    return Status::FailedPrecondition("store has no epoch to save");
  }
  SnapshotImage image;
  image.epoch = snap->epoch();
  image.mode = opts.mode;
  image.workload = opts.workload;
  image.min_prob = opts.min_prob;
  image.base = snap->base();
  image.components.reserve(snap->components().size());
  for (const StoreSnapshot::Component& comp : snap->components()) {
    SnapshotComponentImage ci;
    ci.tuples = comp.tuples;
    ci.dists = comp.dists;
    image.components.push_back(std::move(ci));
  }
  return image;
}

Status BidStore::SaveSnapshot(const std::string& path) const {
  MRSL_ASSIGN_OR_RETURN(SnapshotImage image, BuildSnapshotImage());
  return SaveSnapshotFile(image, path);
}

Result<std::string> BidStore::SerializeCurrentSnapshot(
    uint64_t* epoch) const {
  MRSL_ASSIGN_OR_RETURN(SnapshotImage image, BuildSnapshotImage());
  if (epoch != nullptr) *epoch = image.epoch;
  return SerializeSnapshot(image);
}

Status BidStore::Restore(const std::string& path) {
  MRSL_ASSIGN_OR_RETURN(SnapshotImage image, LoadSnapshotFile(path));

  // The snapshot's ValueIds are indices into ITS schema's label lists;
  // feeding them to a model with different labels would silently
  // misinterpret every cell, so names, cardinalities, and labels must
  // all line up.
  Status compatible =
      CheckSchemasMatch(engine_->model().schema(), image.base.schema());
  if (!compatible.ok()) {
    return Status::InvalidArgument("snapshot does not fit the engine's "
                                   "model: " +
                                   compatible.message());
  }

  std::lock_guard<std::mutex> lock(writer_mutex_);

  // A pseudo-parent carrying the file's derivation cache: the commit
  // below then reuses every saved component and re-infers only what the
  // file is missing (nothing, for an intact snapshot).
  StoreSnapshot seed;
  for (SnapshotComponentImage& ci : image.components) {
    StoreSnapshot::Component comp;
    comp.tuples = std::move(ci.tuples);
    comp.dists = std::move(ci.dists);
    for (size_t i = 0; i < comp.tuples.size(); ++i) {
      if (i >= comp.dists.size()) {
        return Status::Corruption("snapshot component missing dists");
      }
      seed.dist_index_.emplace(comp.tuples[i], comp.dists[i]);
    }
    seed.component_index_.emplace(comp.tuples, seed.components_.size());
    seed.components_.push_back(std::move(comp));
  }

  // Adopt the file's derivation options only around the commit — the
  // seed's cached Δt values are only valid under them.
  const StoreOptions previous_options = options_;
  options_.mode = image.mode;
  options_.workload = image.workload;
  options_.min_prob = image.min_prob;
  auto committed = CommitInternal(std::move(image.base), &seed, image.epoch,
                                  /*index_stable=*/false);
  if (!committed.ok()) {
    // Nothing was published: roll the options back too, or a later
    // commit would reuse the CURRENT epoch's cached components under
    // options that did not produce them.
    options_ = previous_options;
    return committed.status();
  }
  return Status::OK();
}

Result<WalRecoveryStats> BidStore::OpenWal(const std::string& dir,
                                           WalSyncMode mode) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (wal_ != nullptr) {
    return Status::FailedPrecondition("a write-ahead log is already open");
  }
  SnapshotPtr head = std::atomic_load(&head_);
  if (head == nullptr) {
    return Status::FailedPrecondition(
        "OpenWal needs a base epoch: call Commit or Restore first");
  }

  MRSL_ASSIGN_OR_RETURN(WalReplay replay,
                        ReplayWalDir(dir, head->base().schema()));
  WalRecoveryStats recovery;
  for (const WalRecord& record : replay.records) {
    SnapshotPtr parent = std::atomic_load(&head_);
    if (record.epoch <= parent->epoch()) {
      // The snapshot the store restored from already covers this record
      // (a checkpoint raced the crash).
      ++recovery.skipped_records;
      continue;
    }
    if (record.epoch != parent->epoch() + 1) {
      return Status::Corruption(
          "WAL replay hit an epoch gap: store is at " +
          std::to_string(parent->epoch()) + ", next record is " +
          std::to_string(record.epoch));
    }
    // Re-deriving the logged delta reproduces the pre-crash epoch bit
    // for bit — the same incremental-derivation invariant every commit
    // relies on.
    MRSL_ASSIGN_OR_RETURN(Relation new_rel,
                          mrsl::ApplyDelta(parent->base(), record.delta));
    MRSL_ASSIGN_OR_RETURN(
        CommitStats stats,
        CommitInternal(std::move(new_rel), parent.get(), record.epoch,
                       record.delta.IndexStable()));
    (void)stats;
    ++recovery.replayed_records;
  }

  if (!replay.tail.ok()) {
    recovery.torn_tail = true;
    struct stat st;
    if (::stat(replay.tail_path.c_str(), &st) == 0 &&
        static_cast<uint64_t>(st.st_size) > replay.tail_valid_bytes) {
      recovery.truncated_bytes =
          static_cast<uint64_t>(st.st_size) - replay.tail_valid_bytes;
    }
    MRSL_RETURN_IF_ERROR(
        TruncateWalSegment(replay.tail_path, replay.tail_valid_bytes));
  }

  MRSL_ASSIGN_OR_RETURN(
      wal_, WriteAheadLog::Open(dir, std::atomic_load(&head_)->epoch(),
                                mode, replay.records.size()));
  return recovery;
}

Status BidStore::SyncWal() {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  if (wal_ == nullptr) return Status::OK();
  Status synced = wal_->Sync();
  if (!synced.ok()) wal_failed_ = true;
  return synced;
}

Status BidStore::Checkpoint(const std::string& path) {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  MRSL_ASSIGN_OR_RETURN(SnapshotImage image, BuildSnapshotImageLocked());
  MRSL_RETURN_IF_ERROR(SaveSnapshotFile(image, path));
  if (wal_ != nullptr) {
    // The snapshot (atomically in place) now covers every record; held
    // under the writer mutex, no commit can append past image.epoch
    // before the compaction lands.
    MRSL_RETURN_IF_ERROR(wal_->Compact(image.epoch));
  }
  return Status::OK();
}

bool BidStore::has_wal() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return wal_ != nullptr;
}

WalStats BidStore::wal_stats() const {
  std::lock_guard<std::mutex> lock(writer_mutex_);
  return wal_ == nullptr ? WalStats() : wal_->stats();
}

}  // namespace mrsl
