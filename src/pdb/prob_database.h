// ProbDatabase: a disjoint-independent (block-independent-disjoint)
// probabilistic database — the output model of the paper (Sec I-A).
//
// Every incomplete tuple of the source relation becomes a block: a set of
// mutually exclusive complete alternatives annotated with probabilities
// summing to (at most) 1. Complete source tuples become certain blocks
// with a single probability-1 alternative. A possible world picks one
// alternative from each block independently (or none, when the block's
// mass is below 1).

#ifndef MRSL_PDB_PROB_DATABASE_H_
#define MRSL_PDB_PROB_DATABASE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relational/joint_dist.h"
#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "util/result.h"

namespace mrsl {

/// One complete alternative of a block.
struct Alternative {
  Tuple tuple;
  double prob = 0.0;
};

/// A block of mutually exclusive alternatives (the paper's Δt).
struct Block {
  std::vector<Alternative> alternatives;

  /// Total probability mass; 1 - TotalMass() is the chance the block
  /// contributes no tuple to a world. May exceed 1 by up to the
  /// validation epsilon (AddBlock tolerates tiny floating-point
  /// overshoot), so consumers must not assume 1 - TotalMass() >= 0.
  double TotalMass() const;

  /// Probability that the block contributes no tuple, clamped to
  /// [0, 1]: max(0, 1 - TotalMass()). Use this instead of hand-rolled
  /// 1 - TotalMass() arithmetic, which goes (slightly) negative when a
  /// block's mass overshoots 1 within the epsilon.
  double AbsentMass() const;
};

/// Derives one block from an incomplete row and its inferred Δt: every
/// combination of `dist` completes the row's missing cells, alternatives
/// below `min_prob` are dropped, and the block is renormalized to full
/// mass. Blocks are pure functions of (row, dist, min_prob) — the
/// versioned store (pdb/store.h) relies on this to reuse blocks across
/// epochs bit-identically.
Result<Block> BlockFromInference(const Tuple& row, const JointDist& dist,
                                 double min_prob = 0.0);

/// A BID probabilistic database. Blocks are held behind shared immutable
/// pointers, so two databases (e.g. consecutive store epochs) can share
/// every block the newer one did not change.
class ProbDatabase {
 public:
  ProbDatabase() = default;
  explicit ProbDatabase(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  size_t num_blocks() const { return blocks_.size(); }
  const Block& block(size_t i) const { return *blocks_[i]; }

  /// The shared handle of block `i`, for structural sharing across
  /// database versions (see pdb/store.h).
  const std::shared_ptr<const Block>& shared_block(size_t i) const {
    return blocks_[i];
  }

  /// Adds a certain tuple (single alternative, probability 1).
  /// Fails if `t` is incomplete or of the wrong arity.
  Status AddCertain(Tuple t);

  /// Adds a block. Fails if any alternative is incomplete, a probability
  /// is outside [0, 1], or the block's mass exceeds 1 (+ epsilon).
  Status AddBlock(Block block);

  /// Adds an already-validated shared block without copying it — the
  /// structural-sharing path. Runs the same validation as AddBlock.
  Status AddSharedBlock(std::shared_ptr<const Block> block);

  /// Builds the probabilistic database the paper derives: complete rows
  /// of `rel` become certain tuples; for the i-th incomplete row, the
  /// i-th entry of `dists` (aligned with rel.IncompleteRowIndices())
  /// supplies Δt. Alternatives below `min_prob` are dropped and the block
  /// renormalized, bounding block width for downstream query processing
  /// (pass 0 to keep everything).
  static Result<ProbDatabase> FromInference(const Relation& rel,
                                            const std::vector<JointDist>& dists,
                                            double min_prob = 0.0);

  /// Product of per-block choice counts (worlds with an "absent" choice
  /// counted when mass < 1); saturates at uint64 max.
  uint64_t NumPossibleWorlds() const;

  /// Enumerates every possible world: `fn(world_tuples, probability)`.
  /// Fails when NumPossibleWorlds() exceeds `max_worlds`.
  Status ForEachWorld(
      uint64_t max_worlds,
      const std::function<void(const std::vector<const Tuple*>&, double)>& fn)
      const;

  /// Human-readable dump (blocks with alternatives and probabilities).
  std::string ToString(size_t max_blocks = 20) const;

 private:
  Schema schema_;
  std::vector<std::shared_ptr<const Block>> blocks_;
};

}  // namespace mrsl

#endif  // MRSL_PDB_PROB_DATABASE_H_
