// Binary snapshot format for the versioned BID store (pdb/store.h).
//
// A snapshot file carries everything needed to resume serving and stay
// incremental after a restart: the epoch, the derivation options the
// store must keep using (sampling mode, Gibbs parameters, min_prob — a
// cached Δt is only reusable under the exact options that produced it),
// the base relation (schema + rows), and every derivation component
// with its per-tuple joint distributions, raw double bits included.
// Blocks are NOT serialized: they are pure functions of (row, Δt,
// min_prob) and are rebuilt deterministically on load, which also makes
// save → load → save byte-identical.
//
// Layout (all integers little-endian, doubles as raw IEEE-754 bits):
//
//   [magic "MRSLSNAP"][version u32][payload_size u64][fnv1a64 checksum]
//   [payload]
//
// Loads fail with a clean Status (never crash) on short files, bad
// magic, unsupported versions, checksum mismatches, and any count that
// does not fit the remaining bytes.

#ifndef MRSL_PDB_SNAPSHOT_IO_H_
#define MRSL_PDB_SNAPSHOT_IO_H_

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/workload.h"
#include "relational/joint_dist.h"
#include "relational/relation.h"
#include "util/result.h"

namespace mrsl {

/// Current snapshot format version.
inline constexpr uint32_t kSnapshotFormatVersion = 1;

/// One derivation component: the engine's ordered sub-workload and the
/// inferred Δt of each tuple, aligned.
struct SnapshotComponentImage {
  std::vector<Tuple> tuples;
  std::vector<std::shared_ptr<const JointDist>> dists;
};

/// The serializable content of a store snapshot.
struct SnapshotImage {
  uint64_t epoch = 0;
  SamplingMode mode = SamplingMode::kTupleDag;
  WorkloadOptions workload;  // gibbs parameters + cycle cap
  double min_prob = 0.0;
  Relation base;
  std::vector<SnapshotComponentImage> components;
};

/// Serializes `image` to the binary snapshot format.
std::string SerializeSnapshot(const SnapshotImage& image);

/// Parses a serialized snapshot; Corruption/InvalidArgument on damage.
Result<SnapshotImage> DeserializeSnapshot(std::string_view bytes);

/// File conveniences.
Status SaveSnapshotFile(const SnapshotImage& image, const std::string& path);
Result<SnapshotImage> LoadSnapshotFile(const std::string& path);

/// FNV-1a 64-bit checksum (exposed for the corruption tests).
uint64_t SnapshotChecksum(std::string_view payload);

}  // namespace mrsl

#endif  // MRSL_PDB_SNAPSHOT_IO_H_
