// ColumnBatch primitives: the CSR lineage arena, gathers, key indexing,
// and group-id assignment. Everything here is deterministic in row
// order — hash containers are only probed, never iterated — so the
// batch evaluator built on top stays bit-identical to the row
// reference.

#include "pdb/columnar.h"

#include <algorithm>
#include <utility>

namespace mrsl {
namespace {

double ClampProb01(double p) { return std::min(1.0, std::max(0.0, p)); }

// SplitMix64-style finalizer for value hashing; mixing per cell keeps
// multi-column group keys well distributed without materializing them.
uint64_t MixValue(uint64_t h, ValueId v) {
  h ^= static_cast<uint64_t>(static_cast<uint32_t>(v)) + 0x9E3779B97F4A7C15ULL +
       (h << 6) + (h >> 2);
  h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9ULL;
  return h ^ (h >> 27);
}

}  // namespace

size_t LineageTable::ByteSize() const {
  return keys.size() * sizeof(uint64_t) + key_off.size() * sizeof(uint32_t) +
         simple.size() * sizeof(uint8_t) + source.size() * sizeof(uint32_t) +
         block.size() * sizeof(uint64_t) + alts.size() * sizeof(uint32_t) +
         alt_off.size() * sizeof(uint32_t);
}

void LineageTable::ReserveRows(size_t n) {
  // Simple events dominate (one key, one alternative per row); composite
  // rows grow the arenas past the guess, which is just a realloc.
  keys.reserve(n);
  key_off.reserve(n + 1);
  simple.reserve(n);
  source.reserve(n);
  block.reserve(n);
  alts.reserve(n);
  alt_off.reserve(n + 1);
}

void LineageTable::AppendSimple(uint32_t src, uint64_t blk,
                                const std::vector<uint32_t>& alt_set) {
  keys.push_back(Lineage::BlockKey(src, blk));
  key_off.push_back(static_cast<uint32_t>(keys.size()));
  simple.push_back(1);
  source.push_back(src);
  block.push_back(blk);
  alts.insert(alts.end(), alt_set.begin(), alt_set.end());
  alt_off.push_back(static_cast<uint32_t>(alts.size()));
}

void LineageTable::AppendComposite(const std::vector<uint64_t>& key_set) {
  keys.insert(keys.end(), key_set.begin(), key_set.end());
  key_off.push_back(static_cast<uint32_t>(keys.size()));
  simple.push_back(0);
  source.push_back(0);
  block.push_back(0);
  alt_off.push_back(static_cast<uint32_t>(alts.size()));
}

void LineageTable::AppendFrom(const LineageTable& other, size_t r) {
  keys.insert(keys.end(), other.keys_begin(r),
              other.keys_begin(r) + other.keys_size(r));
  key_off.push_back(static_cast<uint32_t>(keys.size()));
  simple.push_back(other.simple[r]);
  source.push_back(other.source[r]);
  block.push_back(other.block[r]);
  alts.insert(alts.end(), other.alts_begin(r),
              other.alts_begin(r) + other.alts_size(r));
  alt_off.push_back(static_cast<uint32_t>(alts.size()));
}

void LineageTable::Append(const Lineage& lin) {
  keys.insert(keys.end(), lin.blocks.begin(), lin.blocks.end());
  key_off.push_back(static_cast<uint32_t>(keys.size()));
  simple.push_back(lin.simple ? 1 : 0);
  source.push_back(lin.source);
  block.push_back(static_cast<uint64_t>(lin.block));
  alts.insert(alts.end(), lin.alts.begin(), lin.alts.end());
  alt_off.push_back(static_cast<uint32_t>(alts.size()));
}

Lineage LineageTable::MaterializeRow(size_t r) const {
  Lineage out;
  out.blocks.assign(keys_begin(r), keys_begin(r) + keys_size(r));
  out.simple = simple[r] != 0;
  if (out.simple) {
    out.source = source[r];
    out.block = static_cast<size_t>(block[r]);
    out.alts.assign(alts_begin(r), alts_begin(r) + alts_size(r));
  }
  return out;
}

void LineageTable::Keep(const std::vector<uint32_t>& sel) {
  // Forward compaction of both arenas. sel is ascending and unique, so
  // every write cursor trails the range it reads: row k lands at or
  // before row sel[k]'s old position, and the offsets read for sel[k]
  // are still original when we get there (an overwritten offset slot
  // implies an identity prefix, where the write was a no-op).
  size_t kw = 0;
  size_t aw = 0;
  for (size_t k = 0; k < sel.size(); ++k) {
    const uint32_t r = sel[k];
    const uint32_t kb = key_off[r];
    const uint32_t ke = key_off[r + 1];
    const uint32_t ab = alt_off[r];
    const uint32_t ae = alt_off[r + 1];
    for (uint32_t i = kb; i < ke; ++i) keys[kw++] = keys[i];
    for (uint32_t i = ab; i < ae; ++i) alts[aw++] = alts[i];
    simple[k] = simple[r];
    source[k] = source[r];
    block[k] = block[r];
    key_off[k + 1] = static_cast<uint32_t>(kw);
    alt_off[k + 1] = static_cast<uint32_t>(aw);
  }
  keys.resize(kw);
  alts.resize(aw);
  simple.resize(sel.size());
  source.resize(sel.size());
  block.resize(sel.size());
  key_off.resize(sel.size() + 1);
  alt_off.resize(sel.size() + 1);
}

size_t ColumnBatch::ByteSize() const {
  size_t bytes = lineage.ByteSize() +
                 (lo.size() + hi.size()) * sizeof(double);
  for (const auto& col : cols) bytes += col.size() * sizeof(ValueId);
  return bytes;
}

void ColumnBatch::SetSchema(Schema s) {
  schema = std::move(s);
  cols.assign(schema.num_attrs(), {});
}

void ColumnBatch::ReserveRows(size_t n) {
  for (std::vector<ValueId>& col : cols) col.reserve(n);
  lo.reserve(n);
  hi.reserve(n);
  lineage.ReserveRows(n);
}

void ColumnBatch::AppendRow(const ValueId* values, double lo_p, double hi_p,
                            const Lineage& lin) {
  for (size_t a = 0; a < cols.size(); ++a) cols[a].push_back(values[a]);
  lo.push_back(lo_p);
  hi.push_back(hi_p);
  lineage.Append(lin);
}

void ColumnBatch::Keep(const std::vector<uint32_t>& sel) {
  // sel is ascending, so the forward in-place gather never reads a slot
  // it already overwrote (k <= sel[k]).
  for (std::vector<ValueId>& col : cols) {
    for (size_t k = 0; k < sel.size(); ++k) col[k] = col[sel[k]];
    col.resize(sel.size());
  }
  for (size_t k = 0; k < sel.size(); ++k) {
    lo[k] = lo[sel[k]];
    hi[k] = hi[sel[k]];
  }
  lo.resize(sel.size());
  hi.resize(sel.size());
  lineage.Keep(sel);
}

ColumnBatch ScanToBatch(const ProbDatabase& db, uint32_t source) {
  ColumnBatch out;
  out.SetSchema(db.schema());
  size_t total = 0;
  for (size_t b = 0; b < db.num_blocks(); ++b) {
    total += db.block(b).alternatives.size();
  }
  out.ReserveRows(total);
  std::vector<uint32_t> one_alt(1);
  for (size_t b = 0; b < db.num_blocks(); ++b) {
    const Block& block = db.block(b);
    for (size_t j = 0; j < block.alternatives.size(); ++j) {
      const Alternative& alt = block.alternatives[j];
      for (AttrId a = 0; a < out.schema.num_attrs(); ++a) {
        out.cols[a].push_back(alt.tuple.value(a));
      }
      const double p = ClampProb01(alt.prob);
      out.lo.push_back(p);
      out.hi.push_back(p);
      one_alt[0] = static_cast<uint32_t>(j);
      out.lineage.AppendSimple(source, b, one_alt);
    }
  }
  return out;
}

PlanResult BatchToPlanResult(ColumnBatch&& batch) {
  PlanResult out;
  out.schema = std::move(batch.schema);
  out.safe = batch.safe;
  const size_t n = batch.num_rows();
  const size_t arity = batch.cols.size();
  out.rows.resize(n);
  for (size_t r = 0; r < n; ++r) {
    PlanRow& row = out.rows[r];
    row.tuple = Tuple(arity);
    for (AttrId a = 0; a < arity; ++a) {
      row.tuple.set_value(a, batch.cols[a][r]);
    }
    row.prob = ProbInterval::Bounds(batch.lo[r], batch.hi[r]);
    row.lineage = batch.lineage.MaterializeRow(r);
  }
  return out;
}

std::unordered_map<ValueId, std::vector<uint32_t>> BuildKeyIndex(
    const std::vector<ValueId>& key_col) {
  std::unordered_map<ValueId, std::vector<uint32_t>> index;
  index.reserve(key_col.size());
  for (size_t r = 0; r < key_col.size(); ++r) {
    index[key_col[r]].push_back(static_cast<uint32_t>(r));
  }
  return index;
}

GroupIds AssignGroupIds(const ColumnBatch& batch,
                        const std::vector<AttrId>& attrs) {
  GroupIds out;
  const size_t n = batch.num_rows();
  out.group_of_row.resize(n);
  // Open hashing on the projected cells: bucket by a mixed hash, resolve
  // collisions by comparing the candidate group's representative row
  // column-by-column. Group ids are assigned in row-scan order, so the
  // numbering is exactly the row evaluator's first-seen order.
  std::unordered_map<uint64_t, std::vector<uint32_t>> buckets;
  buckets.reserve(n);
  for (size_t r = 0; r < n; ++r) {
    uint64_t h = 0xA5A5A5A5DEADBEEFULL;
    for (AttrId a : attrs) h = MixValue(h, batch.cols[a][r]);
    std::vector<uint32_t>& candidates = buckets[h];
    uint32_t group = static_cast<uint32_t>(out.rep_row.size());
    for (uint32_t g : candidates) {
      const uint32_t rep = out.rep_row[g];
      bool equal = true;
      for (AttrId a : attrs) {
        if (batch.cols[a][r] != batch.cols[a][rep]) {
          equal = false;
          break;
        }
      }
      if (equal) {
        group = g;
        break;
      }
    }
    if (group == out.rep_row.size()) {
      out.rep_row.push_back(static_cast<uint32_t>(r));
      candidates.push_back(group);
    }
    out.group_of_row[r] = group;
  }
  return out;
}

}  // namespace mrsl
