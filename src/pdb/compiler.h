// Safe-plan compiler over the extensional plan algebra (pdb/plan.h).
//
// EvaluatePlan applies ONE fixed dissociation at each correlated
// operator: the Frechet-style oblivious bounds of Gatterbauer & Suciu
// (AND: [max(0,p+q-1), min(p,q)], OR: [max_i p_i, min(1, sum_i p_i)]).
// Those bounds are sound but loose, so hard (unsafe) queries used to pay
// Monte-Carlo prices for tight answers. The compiler closes that gap:
//
//   1. It evaluates the plan with FACTORED events: every row carries its
//      lineage as a positive DNF over (block, alternative-set) atoms,
//      not just a block-key summary. Conjunctions of independent or
//      same-block operands stay exact (and provably impossible join
//      pairs are pruned to zero instead of bounded).
//   2. Where rows correlate — duplicate elimination or EXISTS over rows
//      sharing base blocks — it searches the dissociation lattice: the
//      subset lattice of the group's correlated blocks, ordered by how
//      many blocks a candidate conditions away. The bottom element is
//      the oblivious dissociation bound itself (zero extra work); the
//      top element conditions every shared block and is exact. Each
//      candidate is costed by its world count (product of block branch
//      factors, from block statistics), groups are refined cheapest
//      first, and every refinement is intersected into a
//      min-upper/max-lower envelope, so bounds only ever tighten and
//      never regress below the fixed dissociation (the monotone-
//      improvement property the differential suite checks).
//   3. Anytime mode: refinement stops as soon as the mean bounds width
//      reaches `width_target` or the wall-clock budget `budget_ms` is
//      exhausted; whatever was not refined keeps its sound dissociation
//      interval. With budget_ms == 0 the result is a pure function of
//      (plan, sources, options) — bit-identical across runs and thread
//      counts — which is what the conformance suite pins.
//   4. A propagation-score fast path for ranking-only consumers:
//      disjuncts are scored as if independent (the relevance-propagation
//      recurrence), one pass, no lattice search. Scores order tuples
//      well but are NOT sound probability bounds; they are flagged as
//      such and never enter the envelope.
//
// Soundness of the lattice step is total probability: conditioning a
// block on each alternative (plus absence) splits the event space into
// disjoint cases whose recursive bounds, weighted by the case masses,
// bracket the true probability; with enough budget every base case is
// exact (single disjunct -> independent product; one shared block of
// simple atoms -> alternative-set union mass).

#ifndef MRSL_PDB_COMPILER_H_
#define MRSL_PDB_COMPILER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "pdb/plan.h"
#include "pdb/prob_database.h"
#include "util/result.h"

namespace mrsl {

/// Knobs for one compilation. The defaults refine every correlated
/// group up to 4096 conditioned worlds with no time limit — exact on
/// small correlated cores, sound dissociation bounds beyond.
struct CompileOptions {
  /// Anytime width target: stop refining once the mean width of the
  /// reported marginal intervals is <= this. 0 means "as tight as the
  /// world budget allows".
  double width_target = 0.0;

  /// Anytime wall-clock budget in milliseconds; refinement (never the
  /// base evaluation) is cut off when it expires. 0 disables the clock
  /// and makes the result deterministic.
  double budget_ms = 0.0;

  /// Lattice depth: the maximum number of conditioned worlds a single
  /// correlated group may expand. The cheapest candidates fit entirely;
  /// costlier ones fall back to the dissociation bound partway down.
  size_t max_worlds_per_group = 4096;

  /// When > 0, refine only the k cheapest correlated groups per query
  /// (by estimated world count); the rest keep dissociation bounds.
  size_t refine_limit = 0;

  /// Ranking fast path: report propagation scores (disjuncts treated as
  /// independent) instead of sound bounds. One pass, no lattice search.
  bool propagation_only = false;

  /// Which auxiliary answers to materialize. The relation marginals are
  /// always computed (they ARE the envelope); EXISTS and COUNT cost
  /// extra passes over the result, so a caller that knows the query
  /// kind skips the ones it will not read — the same economy as the
  /// plain evaluator's kind switch in BidStore::QueryOn. When false,
  /// the corresponding CompiledQuery field is default-initialized and
  /// must not be read. These do NOT join the cache key: the canonical
  /// query text already carries the kind.
  bool want_exists = true;
  bool want_count = true;
};

/// What the compiler did, for telemetry (mrsl_compile_seconds /
/// mrsl_bounds_width), response headers, and the bench frontier.
struct CompileStats {
  /// True iff every operator application used an exact rule — the same
  /// predicate EvaluatePlan::safe reports.
  bool plan_safe = false;

  size_t groups_total = 0;    ///< distinct answer tuples (marginal groups)
  size_t groups_unsafe = 0;   ///< groups whose base interval was non-exact
  size_t groups_refined = 0;  ///< groups tightened by the lattice search
  size_t groups_exact = 0;    ///< refined groups that reached a point answer
  size_t worlds_expanded = 0; ///< conditioning branches taken, all groups

  double mean_width_base = 0.0;   ///< mean marginal width before refinement
  double mean_width_final = 0.0;  ///< mean marginal width reported
  double compile_seconds = 0.0;   ///< wall time inside CompileQuery

  bool width_target_met = false;  ///< anytime loop hit the width target
  bool budget_exhausted = false;  ///< anytime loop ran out of clock
  bool propagation = false;       ///< scores, not sound bounds
};

/// A compiled query answer: the relation result plus the three derived
/// answers the store serves, all under the envelope bounds.
struct CompiledQuery {
  Schema schema;

  /// Final rows (bag semantics, like EvaluatePlan) with envelope
  /// intervals and lineage summaries. `result.safe` is true iff every
  /// REPORTED interval is a point — a refined unsafe plan can earn it.
  PlanResult result;

  /// Distinct-value marginals under the envelope (what ranking and the
  /// oracle comparison consume).
  std::vector<DistinctMarginal> marginals;

  ExistsResult exists;
  CountResult count;

  CompileStats stats;
};

/// Compiles and evaluates `plan` over `sources`. Exact on safe plans
/// (and then identical to EvaluatePlan's answers); on unsafe plans every
/// reported interval is sound, contained in the fixed-dissociation
/// interval, and tightened as far as `options` allows.
///
/// `trace` (when active) receives "phase1" (the columnar base pass,
/// with EvaluatePlan's per-operator spans nested inside), "phase2" (the
/// factored pass + anytime lattice walk, with candidates-tried /
/// worlds-evaluated attributes and one "lattice.refine" child per
/// candidate actually expanded), and "combine" (answer assembly). Spans
/// never influence the result; trace does NOT join the cache key
/// (CompileCacheSuffix below ignores it).
///
/// `resources` (when non-null) accumulates the phase-1 evaluation's
/// peaks/counters and adds the lattice walk's conditioning branches
/// (CompileStats::worlds_expanded) to `worlds_sampled` — the
/// workload-analytics feed. Like the spans, it never influences the
/// result and does not join the cache key.
Result<CompiledQuery> CompileQuery(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources,
    const CompileOptions& options = {}, TraceSpan trace = TraceSpan(),
    PlanResources* resources = nullptr);

/// The cache-key suffix for a compiled evaluation: compiler mode, width
/// target, and world budget all change the answer, so they must join the
/// plan-cache key next to the canonical plan text (store.cc). Returns ""
/// for the non-compiled path, keeping legacy keys stable.
std::string CompileCacheSuffix(const CompileOptions& options);

}  // namespace mrsl

#endif  // MRSL_PDB_COMPILER_H_
