// Query processing over BID probabilistic databases.
//
// Extensional evaluation exploiting the model's independence structure:
// alternatives within a block are mutually exclusive (probabilities add),
// distinct blocks are independent (probabilities multiply). A Monte-Carlo
// evaluator over sampled possible worlds serves as the differential-
// testing oracle for all extensional operators.

#ifndef MRSL_PDB_QUERY_H_
#define MRSL_PDB_QUERY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "pdb/prob_database.h"
#include "util/result.h"
#include "util/rng.h"

namespace mrsl {

/// One =/!= atom of a predicate conjunction.
struct PredicateAtom {
  AttrId attr;
  ValueId value;
  bool negated;
};

/// A conjunction of (attr = value) / (attr != value) atoms.
class Predicate {
 public:
  /// The always-true predicate.
  Predicate() = default;

  /// attr = value.
  static Predicate Eq(AttrId attr, ValueId value);

  /// attr != value.
  static Predicate Ne(AttrId attr, ValueId value);

  /// Conjunction with another predicate.
  Predicate And(const Predicate& other) const;

  /// Evaluates against a complete tuple.
  bool Eval(const Tuple& t) const;

  /// Three-valued evaluation against a possibly incomplete tuple:
  /// kTrue/kFalse when every needed cell is assigned and decides the
  /// outcome, kUnknown when a missing cell could flip it. Drives the
  /// lazy query-targeted derivation (see pdb/lazy.h).
  enum class Tri { kFalse, kTrue, kUnknown };
  Tri EvalPartial(const Tuple& t) const;

  /// Bitmask of the attributes this predicate reads.
  AttrMask AttrsTouched() const;

  /// e.g. "inc=100K AND nw!=500K".
  std::string ToString(const Schema& schema) const;

  /// The conjunction's atoms in evaluation order — the columnar
  /// evaluator (pdb/columnar.h) sweeps one column per atom.
  const std::vector<PredicateAtom>& atoms() const { return atoms_; }

 private:
  std::vector<PredicateAtom> atoms_;
};

/// An answer tuple with its marginal probability.
struct ProbTuple {
  Tuple tuple;
  double prob = 0.0;
};

/// σ_pred: keeps only alternatives satisfying `pred` (block structure and
/// alternative probabilities preserved, so selection composes).
ProbDatabase Select(const ProbDatabase& db, const Predicate& pred);

/// π_attrs with duplicate elimination: distinct projected tuples with the
/// exact marginal probability of appearing in a world. Within a block
/// probabilities add (disjointness); across blocks the complement
/// probabilities multiply (independence).
std::vector<ProbTuple> ProjectDistinct(const ProbDatabase& db,
                                       const std::vector<AttrId>& attrs);

/// Marginal probability that at least one tuple satisfies `pred`.
double ProbExists(const ProbDatabase& db, const Predicate& pred);

/// Expected number of tuples satisfying `pred`.
double ExpectedCount(const ProbDatabase& db, const Predicate& pred);

/// Exact distribution of COUNT(σ_pred): per-block satisfaction is an
/// independent Bernoulli, so the count is Poisson-binomial; computed by
/// dynamic programming. Entry k = P(count = k).
std::vector<double> CountDistribution(const ProbDatabase& db,
                                      const Predicate& pred);

/// Equi-join of two independent BID databases on left.attr == right.attr.
/// Answer tuples concatenate left and right values; probability is the
/// product of the two alternatives' marginals. Returns pairs of matching
/// alternatives with probabilities (duplicates possible across block
/// pairs; callers may aggregate).
struct JoinResult {
  Schema schema;                 // concatenated schema
  std::vector<ProbTuple> tuples;
};
Result<JoinResult> EquiJoin(const ProbDatabase& left,
                            const ProbDatabase& right, AttrId left_attr,
                            AttrId right_attr);

/// Sentinel world choice: the block contributes no tuple to the world.
inline constexpr int32_t kNoAlternative = -1;

/// Samples one possible world of `db`: per block, the index of the
/// chosen alternative, or kNoAlternative with the block's (clamped)
/// absent mass. `choices` is resized to db.num_blocks(). This is the
/// shared sampling primitive behind MonteCarloCountDistribution and the
/// plan-generic oracle (pdb/plan.h).
void SampleWorldChoices(const ProbDatabase& db, Rng* rng,
                        std::vector<int32_t>* choices);

/// Monte-Carlo oracle: samples `trials` possible worlds and returns the
/// empirical distribution of COUNT(σ_pred) (index k = P(count = k)).
std::vector<double> MonteCarloCountDistribution(const ProbDatabase& db,
                                                const Predicate& pred,
                                                size_t trials, Rng* rng);

}  // namespace mrsl

#endif  // MRSL_PDB_QUERY_H_
