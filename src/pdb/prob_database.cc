// AddBlock is the single validation gate: complete alternatives, arity
// match, per-alternative and total mass within [0, 1+eps] — everything
// downstream (query evaluation) trusts these invariants instead of
// re-checking. FromInference pairs the relation's incomplete rows with
// the distributions in row order, drops alternatives below min_prob, and
// renormalizes each block, so a derived block always carries full mass
// even after truncation.

#include "pdb/prob_database.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/string_util.h"

namespace mrsl {
namespace {

constexpr double kMassEpsilon = 1e-6;

}  // namespace

double Block::TotalMass() const {
  double mass = 0.0;
  for (const Alternative& a : alternatives) mass += a.prob;
  return mass;
}

double Block::AbsentMass() const {
  return std::max(0.0, 1.0 - TotalMass());
}

Status ProbDatabase::AddCertain(Tuple t) {
  if (!t.IsComplete()) {
    return Status::InvalidArgument("certain tuple must be complete");
  }
  Block b;
  b.alternatives.push_back(Alternative{std::move(t), 1.0});
  return AddBlock(std::move(b));
}

Status ProbDatabase::AddBlock(Block block) {
  return AddSharedBlock(std::make_shared<const Block>(std::move(block)));
}

Status ProbDatabase::AddSharedBlock(std::shared_ptr<const Block> block) {
  if (block == nullptr || block->alternatives.empty()) {
    return Status::InvalidArgument("block has no alternatives");
  }
  double mass = 0.0;
  for (const Alternative& a : block->alternatives) {
    if (a.tuple.num_attrs() != schema_.num_attrs()) {
      return Status::InvalidArgument("alternative arity mismatch");
    }
    if (!a.tuple.IsComplete()) {
      return Status::InvalidArgument("alternative must be complete");
    }
    if (a.prob < 0.0 || a.prob > 1.0 + kMassEpsilon) {
      return Status::InvalidArgument("alternative probability out of range");
    }
    mass += a.prob;
  }
  if (mass > 1.0 + kMassEpsilon) {
    return Status::InvalidArgument("block mass exceeds 1: " +
                                   FormatDouble(mass, 6));
  }
  blocks_.push_back(std::move(block));
  return Status::OK();
}

Result<Block> BlockFromInference(const Tuple& row, const JointDist& dist,
                                 double min_prob) {
  Block block;
  std::vector<ValueId> combo(dist.vars().size());
  for (uint64_t code = 0; code < dist.size(); ++code) {
    double p = dist.prob(code);
    if (p <= 0.0 || p < min_prob) continue;
    dist.codec().DecodeInto(code, combo.data());
    Tuple completed = row;
    for (size_t i = 0; i < dist.vars().size(); ++i) {
      completed.set_value(dist.vars()[i], combo[i]);
    }
    block.alternatives.push_back(Alternative{std::move(completed), p});
  }
  // Renormalize after the min_prob cut so the block stays a proper Δt.
  double mass = block.TotalMass();
  if (mass <= 0.0) {
    return Status::Internal("block lost all probability mass");
  }
  for (Alternative& a : block.alternatives) a.prob /= mass;
  return block;
}

Result<ProbDatabase> ProbDatabase::FromInference(
    const Relation& rel, const std::vector<JointDist>& dists,
    double min_prob) {
  std::vector<uint32_t> incomplete = rel.IncompleteRowIndices();
  if (incomplete.size() != dists.size()) {
    return Status::InvalidArgument(
        "need one distribution per incomplete row: have " +
        std::to_string(dists.size()) + ", want " +
        std::to_string(incomplete.size()));
  }
  ProbDatabase db(rel.schema());
  size_t next_dist = 0;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    const Tuple& row = rel.row(r);
    if (row.IsComplete()) {
      MRSL_RETURN_IF_ERROR(db.AddCertain(row));
      continue;
    }
    MRSL_ASSIGN_OR_RETURN(Block block,
                          BlockFromInference(row, dists[next_dist++],
                                             min_prob));
    MRSL_RETURN_IF_ERROR(db.AddBlock(std::move(block)));
  }
  return db;
}

uint64_t ProbDatabase::NumPossibleWorlds() const {
  uint64_t worlds = 1;
  for (const std::shared_ptr<const Block>& bp : blocks_) {
    const Block& b = *bp;
    uint64_t choices = b.alternatives.size() +
                       (b.AbsentMass() > kMassEpsilon ? 1 : 0);
    if (worlds > std::numeric_limits<uint64_t>::max() / choices) {
      return std::numeric_limits<uint64_t>::max();
    }
    worlds *= choices;
  }
  return worlds;
}

Status ProbDatabase::ForEachWorld(
    uint64_t max_worlds,
    const std::function<void(const std::vector<const Tuple*>&, double)>& fn)
    const {
  uint64_t total = NumPossibleWorlds();
  if (total > max_worlds) {
    return Status::FailedPrecondition(
        "too many possible worlds: " + std::to_string(total) + " > " +
        std::to_string(max_worlds));
  }
  std::vector<const Tuple*> world;
  std::function<void(size_t, double)> rec = [&](size_t i, double p) {
    if (i == blocks_.size()) {
      fn(world, p);
      return;
    }
    const Block& b = *blocks_[i];
    for (const Alternative& a : b.alternatives) {
      world.push_back(&a.tuple);
      rec(i + 1, p * a.prob);
      world.pop_back();
    }
    double absent = b.AbsentMass();
    if (absent > kMassEpsilon) rec(i + 1, p * absent);
  };
  rec(0, 1.0);
  return Status::OK();
}

std::string ProbDatabase::ToString(size_t max_blocks) const {
  std::string out = "ProbDatabase: " + std::to_string(blocks_.size()) +
                    " blocks\n";
  for (size_t i = 0; i < blocks_.size() && i < max_blocks; ++i) {
    out += "block " + std::to_string(i) + ":\n";
    for (const Alternative& a : blocks_[i]->alternatives) {
      out += "  " + a.tuple.ToString(schema_) + "  p=" +
             FormatDouble(a.prob, 4) + "\n";
    }
  }
  if (blocks_.size() > max_blocks) out += "  ...\n";
  return out;
}

}  // namespace mrsl
