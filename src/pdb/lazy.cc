// Inference is the expensive step, so RowProbability first evaluates the
// predicate three-valued on the raw tuple: rows decided true/false by
// their observed cells alone short-circuit without deriving Δt (counted
// in short_circuits_). Only genuinely uncertain rows are materialized,
// memoized per distinct tuple. CountDistribution is the standard
// Poisson-binomial DP over per-row probabilities.

#include "pdb/lazy.h"

#include <unordered_set>

#include "pdb/store.h"

namespace mrsl {

LazyDeriver::LazyDeriver(const MrslModel* model, const Relation* rel,
                         const GibbsOptions& gibbs)
    : model_(model), rel_(rel), gibbs_(gibbs) {
  sampler_.emplace(model, gibbs);
}

LazyDeriver::LazyDeriver(Engine* engine, const Relation* rel,
                         const GibbsOptions& gibbs)
    : model_(&engine->model()),
      rel_(rel),
      gibbs_(gibbs),
      engine_(engine) {}

size_t LazyDeriver::SeedFromSnapshot(const StoreSnapshot& snapshot) {
  // ValueIds are only meaningful against the schema that produced them:
  // names, cardinalities, and labels must all match or a cached Δt
  // would silently describe different values. Seed nothing otherwise.
  if (!CheckSchemasMatch(rel_->schema(), snapshot.base().schema()).ok()) {
    return 0;
  }

  size_t seeded = 0;
  for (size_t r = 0; r < rel_->num_rows(); ++r) {
    const Tuple& t = rel_->row(r);
    if (t.IsComplete() || cache_.find(t) != cache_.end()) continue;
    const JointDist* dist = snapshot.FindDist(t);
    if (dist == nullptr) continue;
    cache_.emplace(t, *dist);
    ++seeded;
  }
  return seeded;
}

Result<const JointDist*> LazyDeriver::Materialize(const Tuple& t) {
  auto it = cache_.find(t);
  if (it != cache_.end()) return &it->second;
  Result<JointDist> dist = [&]() -> Result<JointDist> {
    if (engine_ != nullptr) {
      WorkloadOptions wl;
      wl.gibbs = gibbs_;
      return engine_->Infer(t, wl);
    }
    return sampler_->Infer(t);
  }();
  if (!dist.ok()) return dist.status();
  auto [ins, inserted] = cache_.emplace(t, std::move(dist).value());
  (void)inserted;
  return &ins->second;
}

Status LazyDeriver::InferPending(const std::vector<Tuple>& pending,
                                 size_t batch_size) {
  if (engine_ == nullptr || pending.empty()) {
    for (const Tuple& t : pending) {
      auto dist = Materialize(t);
      if (!dist.ok()) return dist.status();
    }
    return Status::OK();
  }
  WorkloadOptions wl;
  wl.gibbs = gibbs_;
  auto dists = engine_->InferChunked(pending, SamplingMode::kTupleAtATime,
                                     wl, batch_size);
  if (!dists.ok()) return dists.status();
  for (size_t i = 0; i < pending.size(); ++i) {
    cache_.emplace(pending[i], std::move((*dists)[i]));
  }
  return Status::OK();
}

Result<size_t> LazyDeriver::MaterializeUncertain(const Predicate& pred,
                                                 size_t batch_size) {
  // Distinct incomplete rows the predicate cannot decide, minus what the
  // memo already holds.
  std::vector<Tuple> pending;
  std::unordered_set<Tuple, TupleHash> seen;
  for (size_t r = 0; r < rel_->num_rows(); ++r) {
    const Tuple& t = rel_->row(r);
    if (t.IsComplete()) continue;
    if (pred.EvalPartial(t) != Predicate::Tri::kUnknown) continue;
    if (cache_.find(t) != cache_.end() || !seen.insert(t).second) continue;
    pending.push_back(t);
  }
  MRSL_RETURN_IF_ERROR(InferPending(pending, batch_size));
  return pending.size();
}

Result<ProbDatabase> LazyDeriver::MaterializeDatabase(size_t batch_size,
                                                      double min_prob) {
  // Distinct incomplete rows still missing from the memo.
  std::vector<Tuple> pending;
  std::unordered_set<Tuple, TupleHash> seen;
  for (uint32_t r : rel_->IncompleteRowIndices()) {
    const Tuple& t = rel_->row(r);
    if (cache_.find(t) != cache_.end() || !seen.insert(t).second) continue;
    pending.push_back(t);
  }
  MRSL_RETURN_IF_ERROR(InferPending(pending, batch_size));
  // Assemble in IncompleteRowIndices order, as FromInference expects.
  std::vector<JointDist> dists;
  dists.reserve(rel_->IncompleteRowIndices().size());
  for (uint32_t r : rel_->IncompleteRowIndices()) {
    auto it = cache_.find(rel_->row(r));
    if (it == cache_.end()) {
      return Status::Internal("incomplete row missing from memo");
    }
    dists.push_back(it->second);
  }
  return ProbDatabase::FromInference(*rel_, dists, min_prob);
}

Result<double> LazyDeriver::RowProbability(size_t row,
                                           const Predicate& pred) {
  if (row >= rel_->num_rows()) {
    return Status::InvalidArgument("row out of range");
  }
  const Tuple& t = rel_->row(row);
  switch (pred.EvalPartial(t)) {
    case Predicate::Tri::kFalse:
      if (!t.IsComplete()) ++short_circuits_;
      return 0.0;
    case Predicate::Tri::kTrue:
      if (!t.IsComplete()) ++short_circuits_;
      return 1.0;
    case Predicate::Tri::kUnknown:
      break;
  }
  // Uncertain: integrate the predicate over Δt.
  auto dist_or = Materialize(t);
  if (!dist_or.ok()) return dist_or.status();
  const JointDist& dist = **dist_or;
  double p = 0.0;
  std::vector<ValueId> combo(dist.vars().size());
  Tuple completed = t;
  for (uint64_t code = 0; code < dist.size(); ++code) {
    double mass = dist.prob(code);
    if (mass <= 0.0) continue;
    dist.codec().DecodeInto(code, combo.data());
    for (size_t i = 0; i < dist.vars().size(); ++i) {
      completed.set_value(dist.vars()[i], combo[i]);
    }
    if (pred.Eval(completed)) p += mass;
  }
  return p;
}

Result<double> LazyDeriver::ExpectedCount(const Predicate& pred) {
  double total = 0.0;
  for (size_t r = 0; r < rel_->num_rows(); ++r) {
    auto p = RowProbability(r, pred);
    if (!p.ok()) return p.status();
    total += *p;
  }
  return total;
}

Result<double> LazyDeriver::ProbExists(const Predicate& pred) {
  double none = 1.0;
  for (size_t r = 0; r < rel_->num_rows(); ++r) {
    auto p = RowProbability(r, pred);
    if (!p.ok()) return p.status();
    none *= (1.0 - *p);
  }
  return 1.0 - none;
}

Result<std::vector<double>> LazyDeriver::CountDistribution(
    const Predicate& pred) {
  std::vector<double> dist(1, 1.0);
  for (size_t r = 0; r < rel_->num_rows(); ++r) {
    auto p = RowProbability(r, pred);
    if (!p.ok()) return p.status();
    double q = *p;
    dist.push_back(0.0);
    for (size_t k = dist.size() - 1; k > 0; --k) {
      dist[k] = dist[k] * (1.0 - q) + dist[k - 1] * q;
    }
    dist[0] *= (1.0 - q);
  }
  return dist;
}

}  // namespace mrsl
