// Extensional evaluation on the BID independence structure: within a
// block alternatives are disjoint (probabilities add), across blocks
// independent (existence composes as 1 - Π(1 - p)). Predicates are
// conjunctions of =/!= atoms with a three-valued EvalPartial so callers
// can decide rows on observed cells alone; Select filters alternatives
// without renormalizing (mass < 1 means "tuple absent from this world").

#include "pdb/query.h"

#include <algorithm>
#include <unordered_map>

namespace mrsl {

Predicate Predicate::Eq(AttrId attr, ValueId value) {
  Predicate p;
  p.atoms_.push_back(PredicateAtom{attr, value, false});
  return p;
}

Predicate Predicate::Ne(AttrId attr, ValueId value) {
  Predicate p;
  p.atoms_.push_back(PredicateAtom{attr, value, true});
  return p;
}

Predicate Predicate::And(const Predicate& other) const {
  Predicate p = *this;
  p.atoms_.insert(p.atoms_.end(), other.atoms_.begin(), other.atoms_.end());
  return p;
}

bool Predicate::Eval(const Tuple& t) const {
  for (const PredicateAtom& a : atoms_) {
    bool eq = t.value(a.attr) == a.value;
    if (eq == a.negated) return false;
  }
  return true;
}

Predicate::Tri Predicate::EvalPartial(const Tuple& t) const {
  bool unknown = false;
  for (const PredicateAtom& a : atoms_) {
    ValueId v = t.value(a.attr);
    if (v == kMissingValue) {
      unknown = true;
      continue;
    }
    bool eq = v == a.value;
    if (eq == a.negated) return Tri::kFalse;  // decided false already
  }
  return unknown ? Tri::kUnknown : Tri::kTrue;
}

AttrMask Predicate::AttrsTouched() const {
  AttrMask mask = 0;
  for (const PredicateAtom& a : atoms_) mask |= AttrMask{1} << a.attr;
  return mask;
}

std::string Predicate::ToString(const Schema& schema) const {
  if (atoms_.empty()) return "TRUE";
  std::string out;
  for (size_t i = 0; i < atoms_.size(); ++i) {
    if (i != 0) out += " AND ";
    out += schema.attr(atoms_[i].attr).name();
    out += atoms_[i].negated ? "!=" : "=";
    out += schema.attr(atoms_[i].attr).label(atoms_[i].value);
  }
  return out;
}

ProbDatabase Select(const ProbDatabase& db, const Predicate& pred) {
  ProbDatabase out(db.schema());
  for (size_t i = 0; i < db.num_blocks(); ++i) {
    Block filtered;
    for (const Alternative& a : db.block(i).alternatives) {
      if (pred.Eval(a.tuple)) filtered.alternatives.push_back(a);
    }
    if (!filtered.alternatives.empty()) {
      Status st = out.AddBlock(std::move(filtered));
      (void)st;  // filtering preserves validity
    }
  }
  return out;
}

std::vector<ProbTuple> ProjectDistinct(const ProbDatabase& db,
                                       const std::vector<AttrId>& attrs) {
  // For each projected value combination: per-block probability of
  // producing it (sum of matching alternatives — disjoint), then across
  // blocks P(appears) = 1 - Π(1 - p_block).
  std::unordered_map<Tuple, double, TupleHash> complement;  // Π(1 - p_b)
  std::vector<Tuple> order;

  std::unordered_map<Tuple, double, TupleHash> per_block;
  for (size_t i = 0; i < db.num_blocks(); ++i) {
    per_block.clear();
    for (const Alternative& a : db.block(i).alternatives) {
      Tuple proj(attrs.size());
      for (size_t k = 0; k < attrs.size(); ++k) {
        proj.set_value(static_cast<AttrId>(k), a.tuple.value(attrs[k]));
      }
      per_block[proj] += a.prob;
    }
    for (const auto& [proj, p] : per_block) {
      auto [it, inserted] = complement.emplace(proj, 1.0);
      if (inserted) order.push_back(proj);
      it->second *= (1.0 - std::min(p, 1.0));
    }
  }

  std::vector<ProbTuple> out;
  out.reserve(order.size());
  for (const Tuple& proj : order) {
    out.push_back(ProbTuple{proj, 1.0 - complement[proj]});
  }
  return out;
}

namespace {

// Per-block probability that its chosen alternative satisfies pred.
std::vector<double> BlockSatisfaction(const ProbDatabase& db,
                                      const Predicate& pred) {
  std::vector<double> qs;
  qs.reserve(db.num_blocks());
  for (size_t i = 0; i < db.num_blocks(); ++i) {
    double q = 0.0;
    for (const Alternative& a : db.block(i).alternatives) {
      if (pred.Eval(a.tuple)) q += a.prob;
    }
    qs.push_back(std::min(q, 1.0));
  }
  return qs;
}

}  // namespace

double ProbExists(const ProbDatabase& db, const Predicate& pred) {
  double none = 1.0;
  for (double q : BlockSatisfaction(db, pred)) none *= (1.0 - q);
  return 1.0 - none;
}

double ExpectedCount(const ProbDatabase& db, const Predicate& pred) {
  double total = 0.0;
  for (double q : BlockSatisfaction(db, pred)) total += q;
  return total;
}

std::vector<double> CountDistribution(const ProbDatabase& db,
                                      const Predicate& pred) {
  // Poisson-binomial DP: dist[k] after processing blocks 0..i.
  std::vector<double> dist(1, 1.0);
  for (double q : BlockSatisfaction(db, pred)) {
    dist.push_back(0.0);
    for (size_t k = dist.size() - 1; k > 0; --k) {
      dist[k] = dist[k] * (1.0 - q) + dist[k - 1] * q;
    }
    dist[0] *= (1.0 - q);
  }
  return dist;
}

Result<JoinResult> EquiJoin(const ProbDatabase& left,
                            const ProbDatabase& right, AttrId left_attr,
                            AttrId right_attr) {
  if (left_attr >= left.schema().num_attrs() ||
      right_attr >= right.schema().num_attrs()) {
    return Status::InvalidArgument("join attribute out of range");
  }
  // Concatenated schema with right-hand names suffixed to avoid clashes.
  std::vector<Attribute> attrs;
  for (AttrId a = 0; a < left.schema().num_attrs(); ++a) {
    attrs.push_back(left.schema().attr(a));
  }
  for (AttrId a = 0; a < right.schema().num_attrs(); ++a) {
    const Attribute& src = right.schema().attr(a);
    std::vector<std::string> labels;
    for (size_t v = 0; v < src.cardinality(); ++v) {
      labels.push_back(src.label(static_cast<ValueId>(v)));
    }
    attrs.emplace_back(src.name() + "_r", std::move(labels));
  }
  auto schema = Schema::Create(std::move(attrs));
  if (!schema.ok()) return schema.status();

  // Hash the right side on the join value.
  std::unordered_map<ValueId, std::vector<std::pair<const Tuple*, double>>>
      right_index;
  for (size_t i = 0; i < right.num_blocks(); ++i) {
    for (const Alternative& a : right.block(i).alternatives) {
      right_index[a.tuple.value(right_attr)].emplace_back(&a.tuple, a.prob);
    }
  }

  JoinResult result;
  result.schema = std::move(schema).value();
  const size_t ln = left.schema().num_attrs();
  const size_t rn = right.schema().num_attrs();
  for (size_t i = 0; i < left.num_blocks(); ++i) {
    for (const Alternative& la : left.block(i).alternatives) {
      auto it = right_index.find(la.tuple.value(left_attr));
      if (it == right_index.end()) continue;
      for (const auto& [rt, rp] : it->second) {
        Tuple joined(ln + rn);
        for (AttrId a = 0; a < ln; ++a) joined.set_value(a, la.tuple.value(a));
        for (AttrId a = 0; a < rn; ++a) {
          joined.set_value(static_cast<AttrId>(ln + a), rt->value(a));
        }
        result.tuples.push_back(ProbTuple{std::move(joined), la.prob * rp});
      }
    }
  }
  return result;
}

void SampleWorldChoices(const ProbDatabase& db, Rng* rng,
                        std::vector<int32_t>* choices) {
  choices->resize(db.num_blocks());
  std::vector<double> weights;
  for (size_t i = 0; i < db.num_blocks(); ++i) {
    const Block& b = db.block(i);
    // Sample an alternative (or absence) from the block. AbsentMass is
    // clamped, so a block whose mass overshoots 1 within the validation
    // epsilon never yields a negative weight.
    weights.clear();
    for (const Alternative& a : b.alternatives) weights.push_back(a.prob);
    double absent = b.AbsentMass();
    if (absent > 0.0) weights.push_back(absent);
    size_t pick = rng->SampleDiscrete(weights);
    (*choices)[i] = pick < b.alternatives.size()
                        ? static_cast<int32_t>(pick)
                        : kNoAlternative;
  }
}

std::vector<double> MonteCarloCountDistribution(const ProbDatabase& db,
                                                const Predicate& pred,
                                                size_t trials, Rng* rng) {
  std::vector<double> counts(db.num_blocks() + 1, 0.0);
  std::vector<int32_t> choices;
  for (size_t t = 0; t < trials; ++t) {
    SampleWorldChoices(db, rng, &choices);
    size_t count = 0;
    for (size_t i = 0; i < db.num_blocks(); ++i) {
      int32_t pick = choices[i];
      if (pick != kNoAlternative &&
          pred.Eval(db.block(i).alternatives[static_cast<size_t>(pick)]
                        .tuple)) {
        ++count;
      }
    }
    counts[count] += 1.0;
  }
  for (double& c : counts) c /= static_cast<double>(trials);
  return counts;
}

}  // namespace mrsl
