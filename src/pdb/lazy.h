// Lazy, query-targeted derivation (the paper's future work, Sec VIII:
// "partial materialization of probability values, as well as lazy,
// query-targeted learning and inference").
//
// Instead of materializing Δt for every incomplete tuple up front, a
// LazyDeriver answers queries directly over the incomplete relation and
// runs (cached) Gibbs inference only for the tuples whose query outcome
// is genuinely uncertain:
//   * a tuple whose observed cells already refute the predicate
//     contributes probability 0 — no inference;
//   * a tuple whose observed cells already satisfy every atom
//     contributes probability 1 — no inference;
//   * only tuples where a missing cell could flip the outcome are
//     sampled, and their Δt is memoized for later queries.

#ifndef MRSL_PDB_LAZY_H_
#define MRSL_PDB_LAZY_H_

#include <cstddef>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/engine.h"
#include "core/gibbs.h"
#include "core/model.h"
#include "pdb/query.h"
#include "relational/relation.h"
#include "util/result.h"

namespace mrsl {

class StoreSnapshot;  // pdb/store.h

/// Query-driven view over an incomplete relation and an MRSL model.
class LazyDeriver {
 public:
  /// `model` and `rel` must outlive the deriver. Inference runs on a
  /// private sequential sampler.
  LazyDeriver(const MrslModel* model, const Relation* rel,
              const GibbsOptions& gibbs);

  /// Engine-backed form: `engine` and `rel` must outlive the deriver.
  /// Materializations run on the engine's pooled contexts (warm CPD
  /// caches) and MaterializeUncertain batches them across the engine's
  /// thread pool.
  LazyDeriver(Engine* engine, const Relation* rel,
              const GibbsOptions& gibbs);

  /// Marginal probability that row `r` satisfies `pred` (complete rows
  /// evaluate exactly; incomplete rows trigger inference only when the
  /// outcome is uncertain).
  Result<double> RowProbability(size_t row, const Predicate& pred);

  /// Expected number of rows satisfying `pred`.
  Result<double> ExpectedCount(const Predicate& pred);

  /// Probability that at least one row satisfies `pred`.
  Result<double> ProbExists(const Predicate& pred);

  /// Exact distribution of COUNT(σ_pred) (Poisson-binomial DP).
  Result<std::vector<double>> CountDistribution(const Predicate& pred);

  /// Pre-materializes Δt for every distinct row whose outcome under
  /// `pred` is genuinely uncertain, `batch_size` tuples per engine batch
  /// (0 = one batch). Subsequent queries touching those rows are pure
  /// cache lookups. Returns the number of newly materialized tuples.
  /// Without an engine this degrades to sequential materialization; with
  /// one, batches run in parallel (the sampled stream may then differ
  /// from on-demand materialization — both are equally valid estimates,
  /// and whichever lands in the memo first is served thereafter).
  Result<size_t> MaterializeUncertain(const Predicate& pred,
                                      size_t batch_size = 0);

  /// Fully materializes the BID database for the relation: Δt for every
  /// distinct incomplete row (reusing the memo, batching new inference
  /// `batch_size` tuples per engine batch when an engine backs the
  /// deriver), assembled via ProbDatabase::FromInference. This is the
  /// bridge from lazy per-predicate answering to the plan algebra
  /// (pdb/plan.h), whose Scan needs every block. Alternatives below
  /// `min_prob` are dropped and the block renormalized (see
  /// ProbDatabase::FromInference).
  Result<ProbDatabase> MaterializeDatabase(size_t batch_size = 0,
                                           double min_prob = 0.0);

  /// Warms the memo from a store epoch (pdb/store.h): every distinct
  /// incomplete tuple of this deriver's relation whose Δt the snapshot
  /// already carries is copied into the cache, so subsequent queries on
  /// those rows run without inference. Returns the number of tuples
  /// newly seeded; seeds nothing (returns 0) unless the snapshot's
  /// schema matches the relation's exactly — names, cardinalities, and
  /// labels — since ValueIds are only meaningful against the schema
  /// that produced them. The snapshot must also have been derived
  /// under this deriver's Gibbs options for the memo to stay
  /// equivalent to on-demand materialization.
  size_t SeedFromSnapshot(const StoreSnapshot& snapshot);

  /// Number of tuples whose Δt has been materialized so far.
  size_t materialized() const { return cache_.size(); }

  /// Number of incomplete-tuple query evaluations answered without
  /// inference (outcome decided by observed cells alone).
  size_t short_circuits() const { return short_circuits_; }

 private:
  Result<const JointDist*> Materialize(const Tuple& t);

  /// Infers Δt for every tuple of `pending` into the memo: one engine
  /// batch of `batch_size` tuples at a time when an engine backs the
  /// deriver, sequentially on the private sampler otherwise.
  Status InferPending(const std::vector<Tuple>& pending, size_t batch_size);

  const MrslModel* model_;
  const Relation* rel_;
  GibbsOptions gibbs_;
  Engine* engine_ = nullptr;  // pooled/batched inference when set...
  std::optional<GibbsSampler> sampler_;  // ...private sampler otherwise
  std::unordered_map<Tuple, JointDist, TupleHash> cache_;
  size_t short_circuits_ = 0;
};

}  // namespace mrsl

#endif  // MRSL_PDB_LAZY_H_
