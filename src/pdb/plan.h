// Extensional query plans over BID probabilistic databases.
//
// A Plan is a small relational-algebra tree — Scan, Select (reusing
// Predicate), Project with duplicate elimination, and equi-Join — plus
// the Exists / Count aggregates, evaluated bottom-up over ProbDatabase
// blocks in the style of Gatterbauer & Suciu's extensional (lifted)
// evaluation. Every intermediate row carries its probability and a
// lineage summary (the set of base blocks its event depends on, plus,
// when the event is exactly "block b chooses an alternative in S", that
// alternative set). The evaluator performs a safety check at every
// operator:
//
//   * operands whose lineages touch disjoint block sets are independent
//     -> the independent-product / independent-union rule is exact;
//   * rows that are alternative sets of the SAME block are disjoint
//     -> the disjoint-union / intersection rule is exact;
//   * anything else is correlated: the operator dissociates the shared
//     blocks and returns sound [lower, upper] probability bounds
//     (Frechet-style oblivious bounds) instead of a point estimate.
//
// The result is exact on safe plans and a guaranteed bracket on unsafe
// ones — the property the differential-testing oracle
// (MonteCarloPlanOracle) checks against sampled possible worlds.

#ifndef MRSL_PDB_PLAN_H_
#define MRSL_PDB_PLAN_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "pdb/prob_database.h"
#include "pdb/query.h"
#include "util/result.h"
#include "util/trace.h"

namespace mrsl {

/// A probability known exactly (lo == hi) or bracketed by dissociation
/// bounds (lo < hi). Both endpoints always lie in [0, 1] for event
/// probabilities; expected counts may exceed 1.
struct ProbInterval {
  double lo = 0.0;
  double hi = 0.0;

  static ProbInterval Exact(double p) { return ProbInterval{p, p}; }
  static ProbInterval Bounds(double lo, double hi) {
    return ProbInterval{lo, hi};
  }

  /// True when the interval is a point estimate (safe evaluation).
  bool exact() const { return lo == hi; }

  /// Midpoint — the single number to report when one is demanded.
  double mid() const { return 0.5 * (lo + hi); }

  /// "0.7312" or "[0.4000, 0.8000]".
  std::string ToString() const;
};

/// Lineage summary of an intermediate row's event: which base blocks it
/// depends on, and — when the event is exactly "block `block` of source
/// `source` chooses an alternative in `alts`" — the alternative set, so
/// same-block combinations stay exact (disjointness / intersection).
struct Lineage {
  /// Sorted, unique keys of every base block the event reads
  /// ((source, block) packed by BlockKey).
  std::vector<uint64_t> blocks;

  /// Simple event: "block picks an alternative in `alts`".
  bool simple = false;
  uint32_t source = 0;            // valid when simple
  size_t block = 0;               // valid when simple
  std::vector<uint32_t> alts;     // sorted alternative indices, when simple

  static uint64_t BlockKey(uint32_t source, size_t block) {
    return (static_cast<uint64_t>(source) << 40) | static_cast<uint64_t>(block);
  }
};

/// One operator of a plan tree. Build trees with the factory functions
/// below; nodes are immutable and shareable across plans.
struct PlanNode {
  enum class Op { kScan, kSelect, kProject, kJoin };

  Op op = Op::kScan;
  size_t source = 0;                  // kScan: index into the sources list
  Predicate pred;                     // kSelect
  std::vector<AttrId> attrs;          // kProject: attributes kept, in order
  AttrId left_attr = 0;               // kJoin: left child's join attribute
  AttrId right_attr = 0;              // kJoin: right child's join attribute
  std::shared_ptr<const PlanNode> left;   // unary child / join left
  std::shared_ptr<const PlanNode> right;  // join right
};

using PlanPtr = std::shared_ptr<const PlanNode>;

/// Leaf: all blocks of sources[source].
PlanPtr ScanPlan(size_t source = 0);

/// σ_pred over `child`.
PlanPtr SelectPlan(Predicate pred, PlanPtr child);

/// π_attrs with duplicate elimination over `child`.
PlanPtr ProjectPlan(std::vector<AttrId> attrs, PlanPtr child);

/// Equi-join: left.left_attr == right.right_attr; output tuples
/// concatenate left and right values (right-hand attribute names get a
/// "_r" suffix on clashes, as EquiJoin does).
PlanPtr JoinPlan(PlanPtr left, PlanPtr right, AttrId left_attr,
                 AttrId right_attr);

/// Output schema of `plan` over `sources` (validates attribute ids).
Result<Schema> PlanOutputSchema(const PlanNode& plan,
                                const std::vector<const ProbDatabase*>& sources);

/// Parser-compatible rendering, e.g.
/// "project(age; select(edu=HS; scan(0)))".
Result<std::string> PlanToString(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources);

/// Per-request resource accounting accumulated by the evaluator (and,
/// above it, the compiler and the oracle paths). Peaks are per-operator
/// maxima of the columnar arenas' logical footprint — what one request
/// holds live at the widest point of the plan, the number admission
/// control and the statement digests care about. Counters are totals.
/// Deterministic for a fixed (epoch, plan): derived from element
/// counts, never allocator capacities. Accounting never influences
/// evaluation — results are bit-identical with or without it.
struct PlanResources {
  uint64_t peak_batch_bytes = 0;    ///< max ColumnBatch::ByteSize() seen
  uint64_t peak_lineage_bytes = 0;  ///< max LineageTable::ByteSize() seen
  uint64_t lineage_events = 0;      ///< lineage rows emitted across operators
  uint64_t worlds_sampled = 0;      ///< oracle trials + compiler worlds

  /// Member-wise accumulation (max peaks, summed counters) — how a
  /// compiled query folds its phase-1 and phase-2 evaluations together.
  void Merge(const PlanResources& other);
};

/// An intermediate or final row: values, probability (exact or bounds),
/// and the lineage driving the safety check.
struct PlanRow {
  Tuple tuple;
  ProbInterval prob;
  Lineage lineage;
};

/// A fully evaluated plan: bag semantics (Join may emit several rows
/// with identical values; Project deduplicates). `safe` is true iff
/// every operator application used an exact rule — equivalently, every
/// row interval is a point estimate produced without dissociation.
struct PlanResult {
  Schema schema;
  std::vector<PlanRow> rows;
  bool safe = true;
};

/// Bottom-up extensional evaluation of `plan` over `sources`. This is
/// the production path: it runs on columnar batches (pdb/columnar.h) —
/// Select as a predicate sweep over one column per atom, Join as a hash
/// build on a raw key column with batched output gathers, Project as a
/// group-id sweep plus one disjoin pass — and materializes rows only at
/// the root. Bit-identical (row order, doubles, lineage) to the row
/// reference evaluator below.
///
/// `trace` (when active) receives one child span per plan operator
/// ("op.scan" / "op.select" / "op.project" / "op.join") with rows-in /
/// rows-out / lineage-size attributes — the EXPLAIN ANALYZE feed. The
/// spans never influence evaluation: traced and untraced runs are
/// bit-identical.
///
/// `resources` (when non-null) accumulates per-operator peaks and
/// counters (see PlanResources) — the workload-analytics feed. Like the
/// spans, it never influences evaluation.
Result<PlanResult> EvaluatePlan(const PlanNode& plan,
                                const std::vector<const ProbDatabase*>& sources,
                                TraceSpan trace = TraceSpan(),
                                PlanResources* resources = nullptr);

/// The row-at-a-time reference evaluator: one PlanRow per intermediate
/// row. Kept compiled as the differential baseline for the columnar
/// path (tests hold the two to exact equality); not used in serving.
Result<PlanResult> EvaluatePlanRowwise(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources);

/// Marginal appearance probability per distinct tuple value of `result`
/// (disjoins the events of duplicate rows; exact when their lineages
/// permit). This is what the differential oracle compares against.
struct DistinctMarginal {
  Tuple tuple;
  ProbInterval prob;
};
std::vector<DistinctMarginal> DistinctMarginals(
    const PlanResult& result,
    const std::vector<const ProbDatabase*>& sources);

/// P(plan result is non-empty): the disjunction of every row event.
struct ExistsResult {
  ProbInterval prob;
  bool safe = true;
};
Result<ExistsResult> EvaluateExists(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources);

/// EvaluateExists over an already-evaluated plan result — lets callers
/// that hold the relation result (the store's query path) skip the
/// second plan evaluation EvaluateExists would perform.
ExistsResult ExistsFromResult(const PlanResult& result,
                              const std::vector<const ProbDatabase*>& sources);

/// COUNT(*) over the plan's bag of rows. The expectation is exact
/// whenever every row probability is exact (linearity of expectation
/// holds under any correlation); the full Poisson-binomial distribution
/// is only emitted when rows are independent or same-block disjoint
/// (`has_distribution`).
struct CountResult {
  ProbInterval expected;
  bool safe = true;
  bool has_distribution = false;
  std::vector<double> distribution;  // P(count = k), when has_distribution
};
Result<CountResult> EvaluateCount(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources);

/// EvaluateCount over an already-evaluated plan result (see
/// ExistsFromResult).
CountResult CountFromResult(const PlanResult& result,
                            const std::vector<const ProbDatabase*>& sources);

// ---------------------------------------------------------------------------
// Plan text syntax (the CLI's `--plan` argument).
//
//   node    := scan | select | project | join
//   scan    := "scan" [ "(" INT ")" ]
//   select  := "select(" pred ";" node ")"
//   pred    := "true" | atom { "&" atom }     atom := NAME ("="|"!=") LABEL
//   project := "project(" NAME {"," NAME} ";" node ")"
//   join    := "join(" node ";" node ";" NAME "=" NAME ")"
//   query   := node | "exists(" node ")" | "count(" node ")"
//
// Attribute and value names resolve against the child's output schema
// (join attributes against the respective child). Whitespace is free.
// ---------------------------------------------------------------------------

/// A parsed top-level query: a relation-valued plan, or an aggregate
/// wrapped around one.
struct ParsedQuery {
  enum class Kind { kRelation, kExists, kCount };
  Kind kind = Kind::kRelation;
  PlanPtr plan;
};

Result<ParsedQuery> ParsePlan(std::string_view text,
                              const std::vector<const ProbDatabase*>& sources);

// ---------------------------------------------------------------------------
// The differential-testing oracle: Monte-Carlo over sampled possible
// worlds. Each trial samples one alternative (or absence) per block of
// every source, evaluates the plan deterministically in that world, and
// tallies. Trials are partitioned into fixed-size chunks, each with an
// RNG seeded purely by (seed, chunk index); chunk tallies are integers
// merged in chunk order, so the result is bit-identical for every
// thread count.
// ---------------------------------------------------------------------------

struct OracleOptions {
  size_t trials = 20000;
  uint64_t seed = 0x0DDBA11;
  /// Worker threads: 0 = the process-wide shared pool, N > 0 = a
  /// private pool of exactly N. Results never depend on this.
  size_t num_threads = 0;
  /// Trials per deterministic chunk (the parallelism grain).
  size_t chunk_size = 512;
};

struct OracleResult {
  size_t trials = 0;
  Schema schema;
  double exists = 0.0;          // fraction of worlds with a non-empty result
  double expected_count = 0.0;  // mean bag count per world
  std::vector<double> count_distribution;  // empirical P(count = k)
  std::vector<ProbTuple> marginals;        // distinct value -> frequency
};

Result<OracleResult> MonteCarloPlanOracle(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources,
    const OracleOptions& options);

/// Deterministic single-world evaluation (the oracle's inner loop,
/// exposed for tests): `choices[s][b]` is the alternative index chosen
/// for block b of source s, or kNoAlternative when the block contributes
/// nothing. Returns the bag of result tuples.
Result<std::vector<Tuple>> EvaluatePlanInWorld(
    const PlanNode& plan, const std::vector<const ProbDatabase*>& sources,
    const std::vector<std::vector<int32_t>>& choices);

}  // namespace mrsl

#endif  // MRSL_PDB_PLAN_H_
