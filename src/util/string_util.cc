// Numeric parsing goes through std::from_chars exclusively: unlike
// strtod/stoi it is locale-independent and rejects trailing junk, which
// keeps CSV ingestion deterministic across environments. ParseDouble
// additionally rejects inf/nan so no non-finite value can enter a model.

#include "util/string_util.h"

#include <cstddef>
#include <cctype>
#include <cmath>
#include <charconv>
#include <cstdio>

namespace mrsl {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

bool ParseDouble(std::string_view s, double* out) {
  s = Trim(s);
  if (s.empty()) return false;
  // std::from_chars for double is available in libstdc++ >= 11.
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last && std::isfinite(*out);
}

bool ParseInt(std::string_view s, int64_t* out) {
  s = Trim(s);
  if (s.empty()) return false;
  const char* first = s.data();
  const char* last = s.data() + s.size();
  auto [ptr, ec] = std::from_chars(first, last, *out);
  return ec == std::errc() && ptr == last;
}

}  // namespace mrsl
