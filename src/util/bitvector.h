// BitVector: a fixed-size bitmap with word-level bulk operations.
//
// Used as the vertical (TID-set) representation in frequent-itemset mining:
// the support of an itemset is the popcount of the AND of its items'
// bitmaps, which is dramatically faster than re-scanning rows.

#ifndef MRSL_UTIL_BITVECTOR_H_
#define MRSL_UTIL_BITVECTOR_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mrsl {

/// Fixed-size bitmap with AND/OR/count bulk operations.
class BitVector {
 public:
  BitVector() = default;

  /// Creates a bitmap of `size` bits, all zero.
  explicit BitVector(size_t size);

  /// Number of addressable bits.
  size_t size() const { return size_; }

  /// Sets bit `i` to 1. Requires i < size().
  void Set(size_t i);

  /// Clears bit `i`. Requires i < size().
  void Clear(size_t i);

  /// Reads bit `i`. Requires i < size().
  bool Get(size_t i) const;

  /// Number of set bits.
  size_t Count() const;

  /// Replaces this with (this AND other). Sizes must match.
  void AndWith(const BitVector& other);

  /// Replaces this with (this OR other). Sizes must match.
  void OrWith(const BitVector& other);

  /// popcount(this AND other) without materializing the intersection.
  size_t AndCount(const BitVector& other) const;

  /// Returns this AND other as a new bitmap.
  BitVector And(const BitVector& other) const;

  /// True iff no bit is set.
  bool Empty() const;

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> ToIndices() const;

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

 private:
  size_t size_ = 0;
  std::vector<uint64_t> words_;
};

}  // namespace mrsl

#endif  // MRSL_UTIL_BITVECTOR_H_
