// Minimal CSV reader/writer (RFC-4180-ish: quoted fields, embedded commas
// and quotes). Used for relation import/export and for dumping experiment
// series in a plot-friendly format.

#ifndef MRSL_UTIL_CSV_H_
#define MRSL_UTIL_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "util/status.h"

namespace mrsl {

/// Parses a full CSV document into rows of fields.
/// Handles quoted fields with embedded separators, quotes ("" escape) and
/// newlines. The trailing newline does not produce an empty row.
Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text);

/// Serializes rows to CSV, quoting fields only when needed.
std::string WriteCsv(const std::vector<std::vector<std::string>>& rows);

/// Reads an entire file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes `content` to `path`, truncating.
Status WriteFile(const std::string& path, std::string_view content);

}  // namespace mrsl

#endif  // MRSL_UTIL_CSV_H_
