// A long-lived work-stealing thread pool.
//
// The serving-oriented layers (core/engine.h) keep one pool alive for the
// whole process instead of spawning std::threads per request, so steady-
// state inference pays no thread start-up cost. Each worker owns a deque:
// submissions are distributed round-robin, a worker pops from the front
// of its own deque (LIFO for locality) and steals from the back of its
// siblings' when empty. Tasks are coarse (one DAG component each), so the
// queues are guarded by plain mutexes rather than lock-free machinery.
//
// Determinism note: the pool never influences results. Every task writes
// to its own preassigned output slot and derives any randomness from its
// own deterministic seed, so scheduling order and thread count are
// invisible in the output (the property the concurrency tests pin down).

#ifndef MRSL_UTIL_THREAD_POOL_H_
#define MRSL_UTIL_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mrsl {

/// Fixed-size work-stealing thread pool.
class ThreadPool {
 public:
  /// Starts `num_threads` workers (0 = hardware concurrency, min 1).
  explicit ThreadPool(size_t num_threads = 0);

  /// Drains nothing: outstanding tasks are completed before joining.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  size_t num_threads() const { return workers_.size(); }

  /// Enqueues `fn` for asynchronous execution.
  void Submit(std::function<void()> fn);

  /// Runs fn(i) for every i in [0, n), using at most `max_parallelism`
  /// concurrent executors (0 = pool width + caller). The calling thread
  /// participates, so progress is guaranteed even on a saturated pool;
  /// returns when all n calls have finished. fn must not throw.
  void ParallelFor(size_t n, size_t max_parallelism,
                   const std::function<void(size_t)>& fn);

  /// The process-wide shared pool (hardware-concurrency sized), created
  /// on first use and alive until exit. Back-compat wrappers use this so
  /// legacy free functions stop spawning threads per call.
  static ThreadPool& Global();

 private:
  void WorkerLoop(size_t self);
  bool PopOrSteal(size_t self, std::function<void()>* task);

  struct Queue {
    std::mutex mutex;
    std::deque<std::function<void()>> tasks;
  };

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  std::size_t next_queue_ = 0;        // round-robin submission cursor
  std::atomic<size_t> pending_{0};    // queued-but-not-started tasks
  bool shutdown_ = false;
};

}  // namespace mrsl

#endif  // MRSL_UTIL_THREAD_POOL_H_
