// Reusable serving metrics: counters, gauges, latency histograms, and a
// registry that renders the Prometheus text exposition format.
//
// The server layer (src/server/) instruments every endpoint with a
// request counter and a latency histogram; anything else in the process
// (plan cache, store commits, batchers) can hang its own series off the
// same registry and they all come out of one GET /metrics scrape.
//
// Concurrency model: registration (GetCounter / GetGauge /
// GetHistogram) takes the registry mutex and returns a stable pointer —
// registries never move or drop a registered series. Observations on the
// returned objects are lock-free atomics (a Gauge::Set is one relaxed
// store), so the hot path (one Increment + one Observe per request)
// never contends on the registry. Rendering walks the families
// under the mutex but reads the atomics with relaxed loads; a scrape
// concurrent with traffic sees some consistent recent value of every
// series, which is all Prometheus asks for.

#ifndef MRSL_UTIL_METRICS_H_
#define MRSL_UTIL_METRICS_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mrsl {

/// A monotonically increasing counter.
class Counter {
 public:
  void Increment(uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// A settable level (Prometheus "gauge" type) — e.g. the WAL's live
/// record count, which drops back to zero at every compaction.
class Gauge {
 public:
  void Set(double v) { value_.store(v, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// A fixed-bucket histogram (Prometheus "histogram" type): cumulative
/// bucket counts are computed at render time from the per-bucket tallies
/// kept here. Bounds are upper-inclusive (`v <= bound`), matching
/// Prometheus `le` semantics; one implicit +Inf bucket catches the rest.
class Histogram {
 public:
  /// `bounds` must be strictly increasing (asserted). The histogram owns
  /// bounds.size() + 1 buckets; the last is +Inf.
  explicit Histogram(std::vector<double> bounds);

  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void Observe(double value);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Non-cumulative count of bucket `i` (i == bounds().size() is +Inf).
  uint64_t bucket_count(size_t i) const {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const { return sum_.load(std::memory_order_relaxed); }

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<uint64_t>[]> buckets_;
  std::atomic<uint64_t> count_{0};
  std::atomic<double> sum_{0.0};  // CAS-accumulated (no atomic fetch_add
                                  // for doubles in C++17)
};

/// Label set of one series, e.g. {{"endpoint", "/query"}}. Order given
/// at registration is preserved in the rendered output.
using MetricLabels = std::vector<std::pair<std::string, std::string>>;

/// A family-ordered registry of counters and histograms.
///
/// A (name, labels) pair identifies one series; registering it twice
/// returns the same object, so call sites can re-register on every
/// request without keeping pointers around (though keeping the pointer
/// skips the registry mutex).
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Registers (or finds) a counter series. The help text of the first
  /// registration of `name` wins. Never returns nullptr; the pointer
  /// stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name, const std::string& help,
                      const MetricLabels& labels = {});

  /// Registers (or finds) a gauge series.
  Gauge* GetGauge(const std::string& name, const std::string& help,
                  const MetricLabels& labels = {});

  /// Registers (or finds) a histogram series with the given bucket
  /// bounds (ignored when the series already exists).
  Histogram* GetHistogram(const std::string& name, const std::string& help,
                          std::vector<double> bounds,
                          const MetricLabels& labels = {});

  /// The Prometheus text exposition format: families in name order, one
  /// # HELP / # TYPE header each, series in label order. Histograms emit
  /// cumulative _bucket{le=...} series plus _sum and _count.
  std::string RenderPrometheus() const;

  /// Request-latency bucket bounds shared by the serving layers:
  /// 100µs .. ~100s, quarter-decade steps.
  static std::vector<double> DefaultLatencyBoundsSeconds();

 private:
  struct Family {
    std::string help;
    bool is_histogram = false;
    bool is_gauge = false;
    // Rendered label string ('{k="v",...}' or "") -> series.
    std::map<std::string, std::unique_ptr<Counter>> counters;
    std::map<std::string, std::unique_ptr<Gauge>> gauges;
    std::map<std::string, std::unique_ptr<Histogram>> histograms;
  };

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace mrsl

#endif  // MRSL_UTIL_METRICS_H_
