// Request-scoped tracing: a TraceContext carries a 64-bit trace id and a
// tree of timed spans across the whole serving path (HTTP dispatch →
// batch leader → plan cache → evaluator/compiler → engine → WAL), a
// process-wide TraceStore keeps a ring buffer of recent completed
// traces, and exporters render either an EXPLAIN-ANALYZE-style nested
// span tree (the ?trace=1 response body) or the Chrome trace_event JSON
// that chrome://tracing loads directly.
//
// Cost model: every instrumented call site holds a TraceSpan by value. A
// default-constructed span is inert — StartChild / SetAttr / End are one
// null-pointer branch each — so tracing-off adds one predictable branch
// per span site and no allocation, lock, or clock read. When a span IS
// active, all mutation goes through its TraceContext under that
// context's mutex, so concurrently running children (the engine's
// per-component fan-out on the compute pool) can attach spans to one
// trace safely.
//
// Sampling is deterministic in the trace id: ShouldSample(id, rate)
// hashes the id to a point in [0, 1) and compares against the rate, so a
// given id either always samples at a rate or never does — replayable in
// tests and stable across processes.

#ifndef MRSL_UTIL_TRACE_H_
#define MRSL_UTIL_TRACE_H_

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace mrsl {

class TraceContext;

/// One recorded span, as exported by TraceContext::Snapshot(). Times are
/// nanoseconds relative to the context's creation; duration_ns stays 0
/// until End (an exporter may render an unfinished span).
struct TraceSpanData {
  std::string name;
  uint32_t parent = 0xFFFFFFFFu;  // TraceContext::kNoParent for the root
  uint32_t tid = 0;               // small per-process thread number
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  std::vector<std::pair<std::string, int64_t>> int_attrs;
  std::vector<std::pair<std::string, std::string>> str_attrs;
};

/// A lightweight handle to one span of a TraceContext. Copyable and
/// default-constructible; a default span is inert and every operation on
/// it is a single branch (the tracing-off fast path).
class TraceSpan {
 public:
  TraceSpan() = default;

  bool active() const { return ctx_ != nullptr; }
  TraceContext* context() const { return ctx_; }
  uint32_t index() const { return index_; }

  /// Starts a child span (inert when this span is inert). Thread-safe:
  /// concurrent children of one parent are fine.
  TraceSpan StartChild(std::string name) const;

  /// Attaches an attribute (last write wins is NOT implemented — repeats
  /// append; exporters render them in order).
  void SetAttr(std::string key, int64_t value) const;
  void SetAttr(std::string key, std::string value) const;

  /// Stamps the span's duration. Idempotent (the first End wins).
  void End() const;

 private:
  friend class TraceContext;
  TraceSpan(TraceContext* ctx, uint32_t index) : ctx_(ctx), index_(index) {}

  TraceContext* ctx_ = nullptr;
  uint32_t index_ = 0;
};

/// One request's trace: an id plus a flat, parent-indexed span arena.
/// Span creation/mutation is mutex-guarded (thread-safe); reads go
/// through Snapshot(), which copies the arena under the same mutex.
class TraceContext {
 public:
  static constexpr uint32_t kNoParent = 0xFFFFFFFFu;

  /// Creates the context with its root span (index 0) already started.
  TraceContext(uint64_t trace_id, std::string name);

  uint64_t trace_id() const { return trace_id_; }
  /// The id as 16 lowercase hex digits (the X-Mrsl-Trace-Id form).
  std::string trace_id_hex() const;
  const std::string& name() const { return name_; }
  /// Wall-clock microseconds since the Unix epoch at creation — the
  /// Chrome export's timestamp base, so traces lay out on one timeline.
  int64_t wall_start_us() const { return wall_start_us_; }

  TraceSpan root() { return TraceSpan(this, 0); }

  /// Raw span API (TraceSpan is the ergonomic face). All thread-safe.
  uint32_t StartSpan(uint32_t parent, std::string name);
  void EndSpan(uint32_t index);
  void SetIntAttr(uint32_t index, std::string key, int64_t value);
  void SetStrAttr(uint32_t index, std::string key, std::string value);

  /// A consistent copy of every span recorded so far.
  std::vector<TraceSpanData> Snapshot() const;
  size_t num_spans() const;
  /// The root span's duration (0 until root().End()).
  uint64_t duration_ns() const;

 private:
  uint64_t NowNs() const;

  const uint64_t trace_id_;
  const std::string name_;
  const std::chrono::steady_clock::time_point start_;
  const int64_t wall_start_us_;

  mutable std::mutex mutex_;
  std::vector<TraceSpanData> spans_;
};

inline TraceSpan TraceSpan::StartChild(std::string name) const {
  if (ctx_ == nullptr) return TraceSpan();
  return TraceSpan(ctx_, ctx_->StartSpan(index_, std::move(name)));
}
inline void TraceSpan::SetAttr(std::string key, int64_t value) const {
  if (ctx_ != nullptr) ctx_->SetIntAttr(index_, std::move(key), value);
}
inline void TraceSpan::SetAttr(std::string key, std::string value) const {
  if (ctx_ != nullptr) {
    ctx_->SetStrAttr(index_, std::move(key), std::move(value));
  }
}
inline void TraceSpan::End() const {
  if (ctx_ != nullptr) ctx_->EndSpan(index_);
}

/// Process-unique trace ids (an atomic counter fed through a 64-bit
/// mixer, seeded once per process — ids are unique and well-scattered,
/// not secret).
uint64_t NextTraceId();

/// The ring buffer of recent completed traces behind GET /debug/traces.
class TraceStore {
 public:
  explicit TraceStore(size_t capacity = 128);

  /// The process-wide store the serving layer records into.
  static TraceStore& Global();

  /// Deterministic sampling decision: hashes `trace_id` to [0, 1) and
  /// samples iff the point falls below `rate` (<=0 never, >=1 always).
  static bool ShouldSample(uint64_t trace_id, double rate);

  /// Appends a completed trace, evicting the oldest past capacity.
  void Record(std::shared_ptr<const TraceContext> trace);

  /// Retained traces, oldest first (at most `limit` newest when > 0).
  std::vector<std::shared_ptr<const TraceContext>> Recent(
      size_t limit = 0) const;

  /// Traces ever recorded (keeps counting past wraparound).
  uint64_t recorded() const;
  size_t size() const;
  size_t capacity() const { return capacity_; }
  void Clear();

 private:
  const size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<std::shared_ptr<const TraceContext>> ring_;  // ring storage
  size_t next_ = 0;        // ring write cursor (valid once full)
  uint64_t recorded_ = 0;  // total ever recorded
};

/// Renders the subtree rooted at span `root_index` as a nested JSON
/// object: {"name","start_us","dur_us","attrs"?,"children"?} — the
/// EXPLAIN-ANALYZE tree embedded in ?trace=1 response bodies.
std::string SpanSubtreeJson(const std::vector<TraceSpanData>& spans,
                            uint32_t root_index);
std::string SpanSubtreeJson(const TraceContext& trace, uint32_t root_index);

/// One whole trace: {"trace_id","name","start_unix_us","dur_us",
/// "spans":<root subtree>}.
std::string TraceJson(const TraceContext& trace);

/// GET /debug/traces: {"count":N,"traces":[TraceJson...]} oldest first.
std::string TracesJson(
    const std::vector<std::shared_ptr<const TraceContext>>& traces);

/// GET /debug/traces?format=chrome: the Chrome trace_event JSON object
/// ({"traceEvents":[...]}) with one complete ("ph":"X") event per span,
/// timestamped on the shared wall clock so chrome://tracing lays the
/// traces out side by side.
std::string TracesChromeJson(
    const std::vector<std::shared_ptr<const TraceContext>>& traces);

}  // namespace mrsl

#endif  // MRSL_UTIL_TRACE_H_
