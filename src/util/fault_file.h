// Durable file primitives with injectable faults — the write path every
// crash-safety guarantee in the tree goes through.
//
// Two building blocks:
//
//   AtomicWriteFile  writes content to a sibling temp file, fsyncs it,
//                    renames it over the target, and fsyncs the parent
//                    directory — so the target is always either the old
//                    complete file or the new complete file, never a
//                    half-written hybrid (the snapshot-compaction
//                    requirement of pdb/store.h).
//   AppendOnlyFile   an O_APPEND fd with explicit Sync(), the backing of
//                    the write-ahead log (pdb/wal.h). Append returns
//                    only after the bytes are handed to the kernel;
//                    Sync() returns only after fdatasync, which is the
//                    moment a record may be acknowledged.
//
// Fault injection: every operation consults a process-wide hook before
// touching the file system, identified by an operation name ("open",
// "write", "sync", "rename", "syncdir", "truncate", "unlink") and the
// target path. A test installs a hook to fail a specific step (the hook
// returns non-OK and the step does not run) or to simulate a crash
// point (the hook calls _exit). The hot path costs one relaxed atomic
// load when no hook is installed.

#ifndef MRSL_UTIL_FAULT_FILE_H_
#define MRSL_UTIL_FAULT_FILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "util/result.h"

namespace mrsl {

/// Decides the fate of one file-system step: OK lets the real operation
/// run; any other status is returned in its place (the operation is
/// skipped). `op` is one of the operation names above.
using FaultHook = std::function<Status(const char* op,
                                       const std::string& path)>;

/// Installs (or, with nullptr, clears) the process-wide fault hook.
/// Tests only; not intended for concurrent installation.
void SetFaultHook(FaultHook hook);

/// Consults the installed hook (OK when none). Exposed so that other
/// durable layers can add their own crash points.
Status CheckFault(const char* op, const std::string& path);

/// Fsyncs the directory containing `path`, making a rename or unlink in
/// it durable.
Status SyncParentDir(const std::string& path);

/// Atomically replaces `path` with `content` (temp file + fsync + rename
/// + parent-dir fsync). On any failure the previous `path`, if one
/// existed, is left untouched and the temp file is cleaned up.
Status AtomicWriteFile(const std::string& path, std::string_view content);

/// An append-only file handle for log writing. Not thread-safe; the
/// owner serializes access (the store's writer mutex, in practice).
class AppendOnlyFile {
 public:
  AppendOnlyFile() = default;
  ~AppendOnlyFile();
  AppendOnlyFile(const AppendOnlyFile&) = delete;
  AppendOnlyFile& operator=(const AppendOnlyFile&) = delete;

  /// Opens `path` for appending, creating it (0644) if missing. When
  /// `truncate` is set the previous content is discarded.
  Status Open(const std::string& path, bool truncate);

  /// Appends all of `data` (retrying short writes). The bytes are in the
  /// kernel after this returns, but NOT durable until Sync().
  Status Append(std::string_view data);

  /// fdatasync: everything appended so far survives a crash.
  Status Sync();

  Status Close();

  bool is_open() const { return fd_ >= 0; }
  const std::string& path() const { return path_; }
  /// Bytes appended through this handle plus the size found at Open.
  uint64_t size() const { return size_; }

 private:
  int fd_ = -1;
  std::string path_;
  uint64_t size_ = 0;
};

}  // namespace mrsl

#endif  // MRSL_UTIL_FAULT_FILE_H_
