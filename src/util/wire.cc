#include "util/wire.h"

namespace mrsl {
namespace wire {

uint64_t Fnv1a64(std::string_view bytes) {
  uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

void PutI32(std::string* out, int32_t v) {
  PutU32(out, static_cast<uint32_t>(v));
}

void PutF64(std::string* out, double v) {
  uint64_t bits = 0;
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

void PutString(std::string* out, const std::string& s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

Status Cursor::Bytes(void* out, size_t n) {
  if (remaining() < n) {
    return Status::Corruption("payload truncated");
  }
  std::memcpy(out, data_.data() + pos_, n);
  pos_ += n;
  return Status::OK();
}

Result<uint8_t> Cursor::U8() {
  uint8_t v = 0;
  MRSL_RETURN_IF_ERROR(Bytes(&v, 1));
  return v;
}

Result<uint32_t> Cursor::U32() {
  unsigned char b[4];
  MRSL_RETURN_IF_ERROR(Bytes(b, 4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(b[i]) << (8 * i);
  return v;
}

Result<uint64_t> Cursor::U64() {
  unsigned char b[8];
  MRSL_RETURN_IF_ERROR(Bytes(b, 8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(b[i]) << (8 * i);
  return v;
}

Result<int32_t> Cursor::I32() {
  MRSL_ASSIGN_OR_RETURN(uint32_t v, U32());
  return static_cast<int32_t>(v);
}

Result<double> Cursor::F64() {
  MRSL_ASSIGN_OR_RETURN(uint64_t bits, U64());
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

Result<std::string> Cursor::String() {
  MRSL_ASSIGN_OR_RETURN(uint32_t n, U32());
  if (remaining() < n) {
    return Status::Corruption("string runs past payload");
  }
  std::string s(data_.substr(pos_, n));
  pos_ += n;
  return s;
}

Result<std::string_view> Cursor::View(size_t n) {
  if (remaining() < n) {
    return Status::Corruption("payload truncated");
  }
  std::string_view v = data_.substr(pos_, n);
  pos_ += n;
  return v;
}

Status Cursor::Fits(uint64_t count, uint64_t min_bytes_each) {
  if (min_bytes_each != 0 && count > remaining() / min_bytes_each) {
    return Status::Corruption("count exceeds payload size");
  }
  return Status::OK();
}

}  // namespace wire
}  // namespace mrsl
