// Strides are precomputed right-to-left (last digit varies fastest, i.e.
// row-major). A product overflowing uint64 marks the space `saturated_`:
// Size() stays usable as a sentinel but Encode/Decode assert, so callers
// must check Saturated() before materializing anything dense.

#include "util/mixed_radix.h"

#include <cstddef>
#include <cassert>
#include <limits>

namespace mrsl {

MixedRadix::MixedRadix(std::vector<uint32_t> cards)
    : cards_(std::move(cards)), strides_(cards_.size()) {
  for (size_t i = cards_.size(); i-- > 0;) {
    assert(cards_[i] >= 1);
    strides_[i] = size_;
    if (size_ > std::numeric_limits<uint64_t>::max() / cards_[i]) {
      saturated_ = true;
      size_ = std::numeric_limits<uint64_t>::max();
    } else {
      size_ *= cards_[i];
    }
  }
}

uint64_t MixedRadix::Encode(const std::vector<int32_t>& digits) const {
  assert(!saturated_);
  assert(digits.size() == cards_.size());
  uint64_t code = 0;
  for (size_t i = 0; i < cards_.size(); ++i) {
    assert(digits[i] >= 0 &&
           static_cast<uint32_t>(digits[i]) < cards_[i]);
    code += static_cast<uint64_t>(digits[i]) * strides_[i];
  }
  return code;
}

uint64_t MixedRadix::EncodeWithZero(const std::vector<int32_t>& digits,
                                    size_t zero_pos) const {
  assert(!saturated_);
  assert(digits.size() == cards_.size());
  uint64_t code = 0;
  for (size_t i = 0; i < cards_.size(); ++i) {
    if (i == zero_pos) continue;
    assert(digits[i] >= 0 && static_cast<uint32_t>(digits[i]) < cards_[i]);
    code += static_cast<uint64_t>(digits[i]) * strides_[i];
  }
  return code;
}

std::vector<int32_t> MixedRadix::Decode(uint64_t code) const {
  std::vector<int32_t> out(cards_.size());
  DecodeInto(code, out.data());
  return out;
}

void MixedRadix::DecodeInto(uint64_t code, int32_t* out) const {
  assert(!saturated_);
  for (size_t i = 0; i < cards_.size(); ++i) {
    out[i] = static_cast<int32_t>(code / strides_[i]);
    code %= strides_[i];
  }
}

}  // namespace mrsl
