#include "util/bitvector.h"

#include <cassert>
#include <cstddef>

namespace mrsl {
namespace {

// C++17-portable stand-ins for std::popcount / std::countr_zero (C++20).
inline int PopCount64(uint64_t w) {
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_popcountll(w);
#else
  int n = 0;
  while (w != 0) {
    w &= w - 1;
    ++n;
  }
  return n;
#endif
}

inline int CountTrailingZeros64(uint64_t w) {
  assert(w != 0);
#if defined(__GNUC__) || defined(__clang__)
  return __builtin_ctzll(w);
#else
  int n = 0;
  while ((w & 1) == 0) {
    w >>= 1;
    ++n;
  }
  return n;
#endif
}

}  // namespace

BitVector::BitVector(size_t size) : size_(size), words_((size + 63) / 64, 0) {}

void BitVector::Set(size_t i) {
  assert(i < size_);
  words_[i >> 6] |= (uint64_t{1} << (i & 63));
}

void BitVector::Clear(size_t i) {
  assert(i < size_);
  words_[i >> 6] &= ~(uint64_t{1} << (i & 63));
}

bool BitVector::Get(size_t i) const {
  assert(i < size_);
  return (words_[i >> 6] >> (i & 63)) & 1;
}

size_t BitVector::Count() const {
  size_t n = 0;
  for (uint64_t w : words_) n += static_cast<size_t>(PopCount64(w));
  return n;
}

void BitVector::AndWith(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] &= other.words_[i];
}

void BitVector::OrWith(const BitVector& other) {
  assert(size_ == other.size_);
  for (size_t i = 0; i < words_.size(); ++i) words_[i] |= other.words_[i];
}

size_t BitVector::AndCount(const BitVector& other) const {
  assert(size_ == other.size_);
  size_t n = 0;
  for (size_t i = 0; i < words_.size(); ++i) {
    n += static_cast<size_t>(PopCount64(words_[i] & other.words_[i]));
  }
  return n;
}

BitVector BitVector::And(const BitVector& other) const {
  BitVector out = *this;
  out.AndWith(other);
  return out;
}

bool BitVector::Empty() const {
  for (uint64_t w : words_) {
    if (w != 0) return false;
  }
  return true;
}

std::vector<uint32_t> BitVector::ToIndices() const {
  std::vector<uint32_t> out;
  out.reserve(Count());
  for (size_t wi = 0; wi < words_.size(); ++wi) {
    uint64_t w = words_[wi];
    while (w != 0) {
      int bit = CountTrailingZeros64(w);
      out.push_back(static_cast<uint32_t>(wi * 64 + static_cast<size_t>(bit)));
      w &= w - 1;
    }
  }
  return out;
}

}  // namespace mrsl
