// TablePrinter: aligned console tables for the benchmark drivers, so every
// experiment prints the same rows/series the paper reports in a readable
// form, plus an optional CSV dump for plotting.

#ifndef MRSL_UTIL_TABLE_PRINTER_H_
#define MRSL_UTIL_TABLE_PRINTER_H_

#include <cstddef>
#include <string>
#include <vector>

namespace mrsl {

/// Collects rows and renders them as an aligned ASCII table.
class TablePrinter {
 public:
  /// Creates a table with the given column headers.
  explicit TablePrinter(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are dropped.
  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header underline.
  std::string ToString() const;

  /// Renders rows as CSV (headers first).
  std::string ToCsv() const;

  /// Number of data rows.
  size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace mrsl

#endif  // MRSL_UTIL_TABLE_PRINTER_H_
