#include "util/trace.h"

#include <atomic>
#include <cstdio>
#include <thread>

namespace mrsl {
namespace {

// splitmix64: the standard 64-bit finalizer — full avalanche, so
// consecutive counter values land uniformly in [0, 2^64).
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Small per-process thread numbers for the Chrome export's "tid" field
// (std::thread::id renders as an opaque hash; 1, 2, 3... reads better
// on a timeline).
uint32_t CurrentTraceTid() {
  static std::atomic<uint32_t> next{1};
  thread_local uint32_t id = next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void AppendMicros(std::string* out, uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1000.0);
  *out += buf;
}

void AppendAttrs(std::string* out, const TraceSpanData& span) {
  if (span.int_attrs.empty() && span.str_attrs.empty()) return;
  *out += ",\"attrs\":{";
  bool first = true;
  for (const auto& [key, value] : span.int_attrs) {
    if (!first) *out += ",";
    first = false;
    *out += "\"" + JsonEscape(key) + "\":" + std::to_string(value);
  }
  for (const auto& [key, value] : span.str_attrs) {
    if (!first) *out += ",";
    first = false;
    *out += "\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
  }
  *out += "}";
}

void AppendSubtree(const std::vector<TraceSpanData>& spans,
                   const std::vector<std::vector<uint32_t>>& children,
                   uint32_t index, std::string* out) {
  const TraceSpanData& span = spans[index];
  *out += "{\"name\":\"" + JsonEscape(span.name) + "\",\"start_us\":";
  AppendMicros(out, span.start_ns);
  *out += ",\"dur_us\":";
  AppendMicros(out, span.duration_ns);
  AppendAttrs(out, span);
  if (!children[index].empty()) {
    *out += ",\"children\":[";
    for (size_t i = 0; i < children[index].size(); ++i) {
      if (i > 0) *out += ",";
      AppendSubtree(spans, children, children[index][i], out);
    }
    *out += "]";
  }
  *out += "}";
}

std::vector<std::vector<uint32_t>> ChildIndex(
    const std::vector<TraceSpanData>& spans) {
  std::vector<std::vector<uint32_t>> children(spans.size());
  for (size_t i = 0; i < spans.size(); ++i) {
    const uint32_t parent = spans[i].parent;
    if (parent != TraceContext::kNoParent && parent < spans.size()) {
      children[parent].push_back(static_cast<uint32_t>(i));
    }
  }
  return children;
}

}  // namespace

TraceContext::TraceContext(uint64_t trace_id, std::string name)
    : trace_id_(trace_id),
      name_(std::move(name)),
      start_(std::chrono::steady_clock::now()),
      wall_start_us_(std::chrono::duration_cast<std::chrono::microseconds>(
                         std::chrono::system_clock::now().time_since_epoch())
                         .count()) {
  TraceSpanData root;
  root.name = name_;
  root.parent = kNoParent;
  root.tid = CurrentTraceTid();
  spans_.push_back(std::move(root));
}

std::string TraceContext::trace_id_hex() const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(trace_id_));
  return std::string(buf);
}

uint64_t TraceContext::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start_)
          .count());
}

uint32_t TraceContext::StartSpan(uint32_t parent, std::string name) {
  TraceSpanData span;
  span.name = std::move(name);
  span.parent = parent;
  span.tid = CurrentTraceTid();
  span.start_ns = NowNs();
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.push_back(std::move(span));
  return static_cast<uint32_t>(spans_.size() - 1);
}

void TraceContext::EndSpan(uint32_t index) {
  const uint64_t now = NowNs();
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= spans_.size()) return;
  TraceSpanData& span = spans_[index];
  if (span.duration_ns == 0) {
    span.duration_ns = now > span.start_ns ? now - span.start_ns : 1;
  }
}

void TraceContext::SetIntAttr(uint32_t index, std::string key,
                              int64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= spans_.size()) return;
  spans_[index].int_attrs.emplace_back(std::move(key), value);
}

void TraceContext::SetStrAttr(uint32_t index, std::string key,
                              std::string value) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (index >= spans_.size()) return;
  spans_[index].str_attrs.emplace_back(std::move(key), std::move(value));
}

std::vector<TraceSpanData> TraceContext::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t TraceContext::num_spans() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

uint64_t TraceContext::duration_ns() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_[0].duration_ns;
}

uint64_t NextTraceId() {
  // The seed folds in a clock reading and an address so two processes
  // started together diverge; within a process, the mixed counter alone
  // guarantees uniqueness.
  static const uint64_t seed =
      Mix64(static_cast<uint64_t>(
                std::chrono::steady_clock::now().time_since_epoch().count()) ^
            reinterpret_cast<uintptr_t>(&NextTraceId));
  static std::atomic<uint64_t> counter{0};
  uint64_t id =
      Mix64(seed ^ counter.fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;  // 0 is reserved as "no trace"
}

TraceStore::TraceStore(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

TraceStore& TraceStore::Global() {
  static TraceStore* store = new TraceStore();
  return *store;
}

bool TraceStore::ShouldSample(uint64_t trace_id, double rate) {
  if (rate <= 0.0) return false;
  if (rate >= 1.0) return true;
  // Upper 53 bits of the mixed id -> a uniform point in [0, 1).
  const double point =
      static_cast<double>(Mix64(trace_id) >> 11) / 9007199254740992.0;
  return point < rate;
}

void TraceStore::Record(std::shared_ptr<const TraceContext> trace) {
  if (trace == nullptr) return;
  std::lock_guard<std::mutex> lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
  } else {
    ring_[next_] = std::move(trace);
    next_ = (next_ + 1) % capacity_;
  }
  ++recorded_;
}

std::vector<std::shared_ptr<const TraceContext>> TraceStore::Recent(
    size_t limit) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::shared_ptr<const TraceContext>> out;
  out.reserve(ring_.size());
  // next_ is the oldest entry once the ring has wrapped.
  const size_t start = ring_.size() < capacity_ ? 0 : next_;
  for (size_t i = 0; i < ring_.size(); ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  if (limit > 0 && out.size() > limit) {
    out.erase(out.begin(), out.end() - static_cast<ptrdiff_t>(limit));
  }
  return out;
}

uint64_t TraceStore::recorded() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return recorded_;
}

size_t TraceStore::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return ring_.size();
}

void TraceStore::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  ring_.clear();
  next_ = 0;
  recorded_ = 0;
}

std::string SpanSubtreeJson(const std::vector<TraceSpanData>& spans,
                            uint32_t root_index) {
  if (root_index >= spans.size()) return "null";
  std::string out;
  AppendSubtree(spans, ChildIndex(spans), root_index, &out);
  return out;
}

std::string SpanSubtreeJson(const TraceContext& trace, uint32_t root_index) {
  return SpanSubtreeJson(trace.Snapshot(), root_index);
}

std::string TraceJson(const TraceContext& trace) {
  std::string out = "{\"trace_id\":\"" + trace.trace_id_hex() +
                    "\",\"name\":\"" + JsonEscape(trace.name()) +
                    "\",\"start_unix_us\":" +
                    std::to_string(trace.wall_start_us()) + ",\"dur_us\":";
  AppendMicros(&out, trace.duration_ns());
  out += ",\"spans\":" + SpanSubtreeJson(trace, 0) + "}";
  return out;
}

std::string TracesJson(
    const std::vector<std::shared_ptr<const TraceContext>>& traces) {
  std::string out =
      "{\"count\":" + std::to_string(traces.size()) + ",\"traces\":[";
  for (size_t i = 0; i < traces.size(); ++i) {
    if (i > 0) out += ",";
    out += TraceJson(*traces[i]);
  }
  out += "]}\n";
  return out;
}

std::string TracesChromeJson(
    const std::vector<std::shared_ptr<const TraceContext>>& traces) {
  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const auto& trace : traces) {
    const std::vector<TraceSpanData> spans = trace->Snapshot();
    const std::string id = trace->trace_id_hex();
    for (const TraceSpanData& span : spans) {
      if (!first) out += ",";
      first = false;
      out += "{\"name\":\"" + JsonEscape(span.name) +
             "\",\"cat\":\"mrsl\",\"ph\":\"X\",\"ts\":";
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.3f",
                    static_cast<double>(trace->wall_start_us()) +
                        static_cast<double>(span.start_ns) / 1000.0);
      out += buf;
      out += ",\"dur\":";
      AppendMicros(&out, span.duration_ns);
      out += ",\"pid\":1,\"tid\":" + std::to_string(span.tid) +
             ",\"args\":{\"trace_id\":\"" + id + "\"";
      for (const auto& [key, value] : span.int_attrs) {
        out += ",\"" + JsonEscape(key) + "\":" + std::to_string(value);
      }
      for (const auto& [key, value] : span.str_attrs) {
        out += ",\"" + JsonEscape(key) + "\":\"" + JsonEscape(value) + "\"";
      }
      out += "}}";
    }
  }
  out += "]}\n";
  return out;
}

}  // namespace mrsl
