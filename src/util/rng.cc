// The core generator is xoshiro256** (Blackman & Vigna), seeded through
// SplitMix64 so that nearby user seeds still land in well-separated
// states. Derived draws use textbook rejection methods chosen for exact
// distribution (not speed): Lemire multiply-shift for bounded integers,
// Marsaglia polar for normals, Marsaglia-Tsang for gamma. Fork() seeds an
// independent stream from the parent, giving per-thread reproducibility.

#include "util/rng.h"

#include <cstddef>
#include <cassert>
#include <cmath>

namespace mrsl {
namespace {

// SplitMix64: used only to expand the user seed into xoshiro state.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  // 53 high bits -> uniform in [0,1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

uint64_t Rng::UniformInt(uint64_t bound) {
  assert(bound > 0);
  // Lemire's multiply-shift rejection method.
  uint64_t x = NextUint64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  uint64_t low = static_cast<uint64_t>(m);
  if (low < bound) {
    uint64_t threshold = -bound % bound;
    while (low < threshold) {
      x = NextUint64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<uint64_t>(m);
    }
  }
  return static_cast<uint64_t>(m >> 64);
}

int64_t Rng::UniformRange(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

size_t Rng::SampleDiscrete(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w;
  assert(total > 0.0);
  double target = NextDouble() * total;
  double acc = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    acc += weights[i];
    if (target < acc) return i;
  }
  // Floating point slack: return last index with positive weight.
  for (size_t i = weights.size(); i-- > 0;) {
    if (weights[i] > 0.0) return i;
  }
  return weights.size() - 1;
}

double Rng::StandardNormal() {
  // Marsaglia polar method.
  while (true) {
    double u = 2.0 * NextDouble() - 1.0;
    double v = 2.0 * NextDouble() - 1.0;
    double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) {
      return u * std::sqrt(-2.0 * std::log(s) / s);
    }
  }
}

double Rng::Gamma(double shape) {
  assert(shape > 0.0);
  if (shape < 1.0) {
    // Boost to shape+1 and scale back (Marsaglia-Tsang trick).
    double u = NextDouble();
    while (u <= 0.0) u = NextDouble();
    return Gamma(shape + 1.0) * std::pow(u, 1.0 / shape);
  }
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  while (true) {
    double x = StandardNormal();
    double v = 1.0 + c * x;
    if (v <= 0.0) continue;
    v = v * v * v;
    double u = NextDouble();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v;
    if (u > 0.0 && std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v;
    }
  }
}

std::vector<double> Rng::Dirichlet(size_t dim, double alpha) {
  std::vector<double> out(dim);
  double total = 0.0;
  for (auto& x : out) {
    x = Gamma(alpha);
    total += x;
  }
  if (total <= 0.0) {
    // Degenerate draw (numerically possible for tiny alpha): fall back to
    // a uniform distribution.
    for (auto& x : out) x = 1.0 / static_cast<double>(dim);
    return out;
  }
  for (auto& x : out) x /= total;
  return out;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

}  // namespace mrsl
