// MixedRadix: bijective encoding between value vectors and dense indices.
//
// Used to (a) index CPT rows by parent configuration, (b) store joint
// distributions over the Cartesian product of missing-attribute domains as
// dense arrays, and (c) pack complete samples into 64-bit codes for the
// tuple-DAG sample-sharing optimization.

#ifndef MRSL_UTIL_MIXED_RADIX_H_
#define MRSL_UTIL_MIXED_RADIX_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mrsl {

/// Mixed-radix positional codec over fixed per-position cardinalities.
/// Position 0 is the most significant digit.
class MixedRadix {
 public:
  MixedRadix() = default;

  /// Creates a codec for the given per-position cardinalities (each >= 1).
  explicit MixedRadix(std::vector<uint32_t> cards);

  /// Number of positions.
  size_t num_positions() const { return cards_.size(); }

  /// Cardinality of position `i`.
  uint32_t card(size_t i) const { return cards_[i]; }

  /// Product of all cardinalities (the code space size). Saturates at
  /// uint64 max; Encode/Decode must not be used when saturated.
  uint64_t Size() const { return size_; }

  /// True iff Size() overflowed uint64.
  bool Saturated() const { return saturated_; }

  /// Encodes digits (digits[i] in [0, card(i))) into a dense code.
  uint64_t Encode(const std::vector<int32_t>& digits) const;

  /// Encodes with position `zero_pos` forced to digit 0 — the conditional
  /// CPD cache key, which must ignore the resampled attribute's own value.
  uint64_t EncodeWithZero(const std::vector<int32_t>& digits,
                          size_t zero_pos) const;

  /// Decodes `code` into digits; inverse of Encode.
  std::vector<int32_t> Decode(uint64_t code) const;

  /// Decodes into a caller-provided buffer of num_positions() entries.
  void DecodeInto(uint64_t code, int32_t* out) const;

 private:
  std::vector<uint32_t> cards_;
  std::vector<uint64_t> strides_;
  uint64_t size_ = 1;
  bool saturated_ = false;
};

}  // namespace mrsl

#endif  // MRSL_UTIL_MIXED_RADIX_H_
