// Library version (semver), in its own header so low-level consumers —
// the mrsl_build_info gauge, /healthz, the CLI banner — can stamp the
// version without pulling in the whole umbrella header.

#ifndef MRSL_UTIL_VERSION_H_
#define MRSL_UTIL_VERSION_H_

#define MRSL_VERSION_MAJOR 1
#define MRSL_VERSION_MINOR 9
#define MRSL_VERSION_PATCH 0
#define MRSL_VERSION_STRING "1.9.0"

#endif  // MRSL_UTIL_VERSION_H_
