// Small string helpers shared across the library.

#ifndef MRSL_UTIL_STRING_UTIL_H_
#define MRSL_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace mrsl {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Formats a double with `precision` digits after the decimal point.
std::string FormatDouble(double v, int precision);

/// True iff `s` parses fully as a finite double; stores it in *out.
bool ParseDouble(std::string_view s, double* out);

/// True iff `s` parses fully as an int64; stores it in *out.
bool ParseInt(std::string_view s, int64_t* out);

}  // namespace mrsl

#endif  // MRSL_UTIL_STRING_UTIL_H_
