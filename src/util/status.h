// Status: lightweight error propagation for fallible operations.
//
// Modeled after the Status idiom used throughout database engines
// (LevelDB/RocksDB): a cheap value type carrying an error code and a
// human-readable message. Functions that can fail return a Status (or a
// Result<T>, see result.h) instead of throwing exceptions; internal
// invariants are enforced with assertions.

#ifndef MRSL_UTIL_STATUS_H_
#define MRSL_UTIL_STATUS_H_

#include <iosfwd>
#include <string>
#include <string_view>
#include <utility>

namespace mrsl {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kCorruption,
  kIOError,
  kInternal,
};

/// Returns the canonical name of a status code (e.g. "InvalidArgument").
std::string_view StatusCodeName(StatusCode code);

/// A cheap value type describing the outcome of a fallible operation.
///
/// The OK state carries no allocation; error states carry a message.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Factory helpers, one per error category.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  /// True iff this status represents success.
  bool ok() const { return code_ == StatusCode::kOk; }

  /// The status code.
  StatusCode code() const { return code_; }

  /// The error message; empty for OK statuses.
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Streams ToString() — lets error paths write
/// `std::cerr << "error: " << status << "\n"` instead of spelling out
/// the conversion at every call site.
std::ostream& operator<<(std::ostream& os, const Status& status);

/// Propagates a non-OK status to the caller.
#define MRSL_RETURN_IF_ERROR(expr)               \
  do {                                           \
    ::mrsl::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace mrsl

#endif  // MRSL_UTIL_STATUS_H_
