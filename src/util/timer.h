// Wall-clock timing for the experiment drivers.

#ifndef MRSL_UTIL_TIMER_H_
#define MRSL_UTIL_TIMER_H_

#include <chrono>

namespace mrsl {

/// Monotonic wall-clock stopwatch.
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction / last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction / last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace mrsl

#endif  // MRSL_UTIL_TIMER_H_
