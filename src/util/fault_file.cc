#include "util/fault_file.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <mutex>
#include <utility>

namespace mrsl {
namespace {

// The hook itself lives behind a mutex (installation is rare and
// test-only); the flag keeps the no-hook hot path to one relaxed load.
std::atomic<bool> g_fault_hook_installed{false};
std::mutex g_fault_hook_mutex;
FaultHook g_fault_hook;

Status Errno(const std::string& what, const std::string& path) {
  return Status::IOError(what + " " + path + ": " + std::strerror(errno));
}

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

}  // namespace

void SetFaultHook(FaultHook hook) {
  std::lock_guard<std::mutex> lock(g_fault_hook_mutex);
  g_fault_hook = std::move(hook);
  g_fault_hook_installed.store(g_fault_hook != nullptr,
                               std::memory_order_relaxed);
}

Status CheckFault(const char* op, const std::string& path) {
  if (!g_fault_hook_installed.load(std::memory_order_relaxed)) {
    return Status::OK();
  }
  FaultHook hook;
  {
    std::lock_guard<std::mutex> lock(g_fault_hook_mutex);
    hook = g_fault_hook;
  }
  return hook == nullptr ? Status::OK() : hook(op, path);
}

Status SyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  MRSL_RETURN_IF_ERROR(CheckFault("syncdir", dir));
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) return Errno("cannot open directory", dir);
  Status status = Status::OK();
  if (::fsync(fd) != 0) status = Errno("cannot fsync directory", dir);
  ::close(fd);
  return status;
}

Status AtomicWriteFile(const std::string& path, std::string_view content) {
  const std::string tmp =
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()));
  Status status = [&]() -> Status {
    MRSL_RETURN_IF_ERROR(CheckFault("open", tmp));
    const int fd =
        ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0) return Errno("cannot create", tmp);
    Status io = Status::OK();
    size_t off = 0;
    while (io.ok() && off < content.size()) {
      io = CheckFault("write", tmp);
      if (!io.ok()) break;
      const ssize_t n =
          ::write(fd, content.data() + off, content.size() - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        io = Errno("cannot write", tmp);
        break;
      }
      off += static_cast<size_t>(n);
    }
    if (io.ok()) {
      io = CheckFault("sync", tmp);
      if (io.ok() && ::fsync(fd) != 0) io = Errno("cannot fsync", tmp);
    }
    if (::close(fd) != 0 && io.ok()) io = Errno("cannot close", tmp);
    MRSL_RETURN_IF_ERROR(io);
    MRSL_RETURN_IF_ERROR(CheckFault("rename", path));
    if (::rename(tmp.c_str(), path.c_str()) != 0) {
      return Errno("cannot rename " + tmp + " over", path);
    }
    // After the rename the new content is visible; the directory fsync
    // pins the rename itself across a power failure.
    return SyncParentDir(path);
  }();
  if (!status.ok()) ::unlink(tmp.c_str());
  return status;
}

AppendOnlyFile::~AppendOnlyFile() {
  if (fd_ >= 0) ::close(fd_);
}

Status AppendOnlyFile::Open(const std::string& path, bool truncate) {
  if (fd_ >= 0) return Status::FailedPrecondition("file already open");
  MRSL_RETURN_IF_ERROR(CheckFault("open", path));
  int flags = O_WRONLY | O_CREAT | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  fd_ = ::open(path.c_str(), flags, 0644);
  if (fd_ < 0) return Errno("cannot open for append", path);
  struct stat st;
  if (::fstat(fd_, &st) != 0) {
    Status status = Errno("cannot stat", path);
    ::close(fd_);
    fd_ = -1;
    return status;
  }
  path_ = path;
  size_ = static_cast<uint64_t>(st.st_size);
  return Status::OK();
}

Status AppendOnlyFile::Append(std::string_view data) {
  if (fd_ < 0) return Status::FailedPrecondition("file not open");
  size_t off = 0;
  while (off < data.size()) {
    MRSL_RETURN_IF_ERROR(CheckFault("write", path_));
    const ssize_t n = ::write(fd_, data.data() + off, data.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("cannot append to", path_);
    }
    off += static_cast<size_t>(n);
    size_ += static_cast<uint64_t>(n);
  }
  return Status::OK();
}

Status AppendOnlyFile::Sync() {
  if (fd_ < 0) return Status::FailedPrecondition("file not open");
  MRSL_RETURN_IF_ERROR(CheckFault("sync", path_));
  if (::fdatasync(fd_) != 0) return Errno("cannot fdatasync", path_);
  return Status::OK();
}

Status AppendOnlyFile::Close() {
  if (fd_ < 0) return Status::OK();
  const int fd = fd_;
  fd_ = -1;
  if (::close(fd) != 0) return Errno("cannot close", path_);
  return Status::OK();
}

}  // namespace mrsl
