// Deterministic pseudo-random number generation.
//
// All stochastic components of the library (BN instance generation, forward
// sampling, train/test splits, missing-value masking, Gibbs sampling) draw
// from an explicitly seeded Rng so that every experiment is exactly
// repeatable across runs and platforms. The generator is xoshiro256**,
// seeded via SplitMix64 — fast, high quality, and independent of the
// standard library's unspecified distributions.

#ifndef MRSL_UTIL_RNG_H_
#define MRSL_UTIL_RNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mrsl {

/// Deterministic random number generator (xoshiro256**).
class Rng {
 public:
  /// Seeds the generator; identical seeds yield identical streams.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL);

  /// Next raw 64-bit output.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform integer in [0, bound) using Lemire's unbiased method.
  /// `bound` must be > 0.
  uint64_t UniformInt(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformRange(int64_t lo, int64_t hi);

  /// Bernoulli draw with probability `p` of true.
  bool Bernoulli(double p);

  /// Samples an index from a discrete distribution given by `weights`
  /// (non-negative, not necessarily normalized). Requires a positive total.
  size_t SampleDiscrete(const std::vector<double>& weights);

  /// Samples from Gamma(shape, 1) via Marsaglia-Tsang; `shape` > 0.
  double Gamma(double shape);

  /// Samples a point from the Dirichlet(alpha,...,alpha) simplex of the
  /// given dimension; used to generate random BN conditional distributions.
  std::vector<double> Dirichlet(size_t dim, double alpha);

  /// Fisher-Yates shuffle of an index-addressable container.
  template <typename Container>
  void Shuffle(Container* c) {
    if (c->size() < 2) return;
    for (size_t i = c->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(UniformInt(i + 1));
      std::swap((*c)[i], (*c)[j]);
    }
  }

  /// Forks an independent generator (used to give each experiment
  /// repetition its own stream derived from a master seed).
  Rng Fork();

 private:
  double StandardNormal();

  uint64_t state_[4];
};

}  // namespace mrsl

#endif  // MRSL_UTIL_RNG_H_
