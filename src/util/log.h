// Dependency-free leveled structured logging.
//
// One process-wide Logger emits single-line records to a FILE* (stderr
// by default) in either human-readable text or JSON-lines, each record
// carrying a UTC timestamp, level, component, message, and typed
// key=value fields. Levels filter per component (`--log-level
// info,wal=debug` style specs), and a token bucket per (component,
// level) caps bursty non-error chatter — a hot loop logging the same
// warning cannot drown the stream; suppressed counts surface on the
// next record that gets through. Errors are exempt from rate limiting:
// losing the record that explains an outage is worse than a noisy
// stream.
//
// Everything is thread-safe (one mutex around the emit; formatting
// happens outside it) and allocation-light; an emit below the active
// level costs one relaxed atomic load.

#ifndef MRSL_UTIL_LOG_H_
#define MRSL_UTIL_LOG_H_

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/result.h"

namespace mrsl {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
  kOff = 4,
};

/// "debug" / "info" / "warn" / "error" / "off".
const char* LogLevelName(LogLevel level);

/// Inverse of LogLevelName (case-insensitive). "warning" also accepted.
Result<LogLevel> ParseLogLevel(const std::string& name);

/// One key=value field of a record. Numbers keep their type so the
/// JSON rendering emits them unquoted.
struct LogField {
  enum class Type { kString, kInt, kDouble };
  std::string key;
  Type type = Type::kString;
  std::string str;
  int64_t i64 = 0;
  double f64 = 0.0;

  LogField(std::string k, std::string v)
      : key(std::move(k)), type(Type::kString), str(std::move(v)) {}
  LogField(std::string k, const char* v)
      : key(std::move(k)), type(Type::kString), str(v) {}
  LogField(std::string k, int64_t v)
      : key(std::move(k)), type(Type::kInt), i64(v) {}
  LogField(std::string k, uint64_t v)
      : key(std::move(k)), type(Type::kInt), i64(static_cast<int64_t>(v)) {}
  LogField(std::string k, int v)
      : key(std::move(k)), type(Type::kInt), i64(v) {}
  LogField(std::string k, double v)
      : key(std::move(k)), type(Type::kDouble), f64(v) {}
};

struct LogOptions {
  LogLevel level = LogLevel::kInfo;
  /// Per-component overrides, e.g. {"wal", kDebug}.
  std::unordered_map<std::string, LogLevel> component_levels;
  bool json = false;             ///< JSON-lines instead of text
  double rate_per_sec = 50.0;    ///< sustained records/sec per (component, level)
  double burst = 100.0;          ///< token-bucket depth
  FILE* sink = nullptr;          ///< nullptr -> stderr
};

/// Parses "info" or "info,wal=debug,server=warn" — a default level plus
/// per-component overrides in any order (a bare level anywhere resets
/// the default). Populates `level` / `component_levels` of an existing
/// options struct.
Status ParseLogLevelSpec(const std::string& spec, LogOptions* options);

class Logger {
 public:
  /// The process-wide logger (what the convenience wrappers below use).
  static Logger& Global();

  Logger() = default;
  explicit Logger(LogOptions options) { Configure(std::move(options)); }

  /// Replaces the configuration (thread-safe; applies to subsequent
  /// records).
  void Configure(LogOptions options);

  /// True when a record at (component, level) would be emitted — the
  /// cheap guard for callers that build expensive fields.
  bool Enabled(const std::string& component, LogLevel level) const;

  /// Emits one record (subject to level filtering and rate limiting).
  void Log(LogLevel level, const std::string& component,
           const std::string& message, std::vector<LogField> fields = {});

  /// Records emitted / suppressed by the rate limiter since start.
  uint64_t emitted() const { return emitted_.load(std::memory_order_relaxed); }
  uint64_t suppressed() const {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  struct Bucket {
    double tokens = 0.0;
    double last_seconds = 0.0;
    uint64_t suppressed = 0;  // since the last emitted record
  };

  LogLevel LevelFor(const std::string& component) const;

  mutable std::mutex mutex_;
  LogOptions options_;
  // min over (global, every override) — the Enabled() fast-path floor.
  std::atomic<int> min_level_{static_cast<int>(LogLevel::kInfo)};
  std::unordered_map<std::string, Bucket> buckets_;
  std::atomic<uint64_t> emitted_{0};
  std::atomic<uint64_t> suppressed_{0};
};

/// Convenience wrappers over Logger::Global().
void LogDebug(const std::string& component, const std::string& message,
              std::vector<LogField> fields = {});
void LogInfo(const std::string& component, const std::string& message,
             std::vector<LogField> fields = {});
void LogWarn(const std::string& component, const std::string& message,
             std::vector<LogField> fields = {});
void LogError(const std::string& component, const std::string& message,
              std::vector<LogField> fields = {});

/// Process start time (unix seconds, captured at static initialization)
/// and seconds elapsed since — the /healthz + mrsl_uptime_seconds feed.
double ProcessStartUnixSeconds();
double ProcessUptimeSeconds();

}  // namespace mrsl

#endif  // MRSL_UTIL_LOG_H_
