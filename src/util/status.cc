#include "util/status.h"

#include <ostream>

namespace mrsl {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  out += ": ";
  out += message_;
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace mrsl
