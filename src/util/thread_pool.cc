// Workers sleep on a single condition variable keyed by a pending-task
// counter (cheap for the coarse task sizes used here), pop newest-first
// from their own deque for cache locality, and steal oldest-first from
// siblings so the longest-queued work migrates first. ParallelFor
// keeps its loop state in a shared_ptr so a straggler helper that wakes
// after the loop finished finds the index range exhausted and exits
// without touching anything freed.

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <memory>
#include <utility>

namespace mrsl {

ThreadPool::ThreadPool(size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  queues_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    shutdown_ = true;
  }
  wake_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  size_t target;
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(fn));
  }
  // The increment must be ordered before the notify, and the waiters
  // recheck pending_ under wake_mutex_, so no submission can slip into
  // the window between a failed steal scan and the wait.
  pending_.fetch_add(1);
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
  }
  wake_cv_.notify_one();
}

bool ThreadPool::PopOrSteal(size_t self, std::function<void()>* task) {
  {  // Own queue: newest first (LIFO, cache locality).
    Queue& q = *queues_[self];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.back());
      q.tasks.pop_back();
      return true;
    }
  }
  // Steal from siblings: oldest first (FIFO).
  for (size_t off = 1; off < queues_.size(); ++off) {
    Queue& q = *queues_[(self + off) % queues_.size()];
    std::lock_guard<std::mutex> lock(q.mutex);
    if (!q.tasks.empty()) {
      *task = std::move(q.tasks.front());
      q.tasks.pop_front();
      return true;
    }
  }
  return false;
}

void ThreadPool::WorkerLoop(size_t self) {
  std::function<void()> task;
  while (true) {
    if (PopOrSteal(self, &task)) {
      pending_.fetch_sub(1);
      task();
      task = nullptr;
      continue;
    }
    std::unique_lock<std::mutex> lock(wake_mutex_);
    wake_cv_.wait(lock,
                  [&] { return shutdown_ || pending_.load() > 0; });
    if (shutdown_ && pending_.load() == 0) return;  // queues drained
  }
}

void ThreadPool::ParallelFor(size_t n, size_t max_parallelism,
                             const std::function<void(size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }

  struct LoopState {
    std::function<void(size_t)> fn;
    std::atomic<size_t> next{0};
    std::atomic<size_t> done{0};
    size_t total = 0;
    std::mutex mutex;
    std::condition_variable cv;
  };
  auto state = std::make_shared<LoopState>();
  state->fn = fn;
  state->total = n;

  auto drain = [](const std::shared_ptr<LoopState>& s) {
    while (true) {
      size_t i = s->next.fetch_add(1);
      if (i >= s->total) return;
      s->fn(i);
      if (s->done.fetch_add(1) + 1 == s->total) {
        std::lock_guard<std::mutex> lock(s->mutex);
        s->cv.notify_all();
      }
    }
  };

  size_t width = num_threads() + 1;  // workers + the calling thread
  if (max_parallelism != 0) width = std::min(width, max_parallelism);
  width = std::min(width, n);
  for (size_t h = 0; h + 1 < width; ++h) {
    Submit([state, drain] { drain(state); });
  }
  drain(state);

  std::unique_lock<std::mutex> lock(state->mutex);
  state->cv.wait(lock, [&] {
    return state->done.load() == state->total;
  });
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(0);  // intentionally leaked:
  // outlives every static-destruction-order consumer.
  return *pool;
}

}  // namespace mrsl
