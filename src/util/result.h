// Result<T>: a value-or-Status union, the return type of fallible
// constructors and parsers. Mirrors absl::StatusOr / arrow::Result.

#ifndef MRSL_UTIL_RESULT_H_
#define MRSL_UTIL_RESULT_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace mrsl {

/// Holds either a successfully produced T or the Status explaining failure.
template <typename T>
class Result {
 public:
  /// Implicit construction from a value (success).
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit construction from a non-OK status (failure).
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result constructed from OK status without value");
  }

  /// True iff a value is present.
  bool ok() const { return value_.has_value(); }

  /// The status; OK when a value is present.
  const Status& status() const { return status_; }

  /// Access to the contained value. Requires ok().
  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value or `fallback` when in error state.
  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  std::optional<T> value_;
  Status status_ = Status::OK();
};

/// Propagates the error of a Result-returning expression, otherwise binds
/// the value to `lhs`.
#define MRSL_ASSIGN_OR_RETURN(lhs, expr)            \
  auto MRSL_CONCAT_(res_, __LINE__) = (expr);       \
  if (!MRSL_CONCAT_(res_, __LINE__).ok())           \
    return MRSL_CONCAT_(res_, __LINE__).status();   \
  lhs = std::move(MRSL_CONCAT_(res_, __LINE__)).value()

#define MRSL_CONCAT_INNER_(a, b) a##b
#define MRSL_CONCAT_(a, b) MRSL_CONCAT_INNER_(a, b)

}  // namespace mrsl

#endif  // MRSL_UTIL_RESULT_H_
