#include "util/table_printer.h"

#include <cstddef>
#include <algorithm>

#include "util/csv.h"

namespace mrsl {

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TablePrinter::ToString() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto render_row = [&](const std::vector<std::string>& row) {
    std::string line;
    for (size_t c = 0; c < headers_.size(); ++c) {
      const std::string& cell = c < row.size() ? row[c] : std::string();
      line += cell;
      if (c + 1 < headers_.size()) {
        line.append(widths[c] - cell.size() + 2, ' ');
      }
    }
    line += '\n';
    return line;
  };

  std::string out = render_row(headers_);
  size_t total = 0;
  for (size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  out.append(total, '-');
  out += '\n';
  for (const auto& row : rows_) out += render_row(row);
  return out;
}

std::string TablePrinter::ToCsv() const {
  std::vector<std::vector<std::string>> all;
  all.push_back(headers_);
  all.insert(all.end(), rows_.begin(), rows_.end());
  return WriteCsv(all);
}

}  // namespace mrsl
