#include "util/log.h"

#include <chrono>
#include <cstring>
#include <ctime>

#include "util/string_util.h"

namespace mrsl {

namespace {

// Wall clock for record timestamps; monotonic clock for the token
// buckets and uptime (a clock step must not refill or drain a bucket).
double WallNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

double MonoNowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Captured at static initialization — as close to process start as a
// dependency-free library gets, and early enough that every uptime
// reading is monotone from here.
const double kProcessStartWall = WallNowSeconds();
const double kProcessStartMono = MonoNowSeconds();

// "2026-08-07T12:34:56.789Z".
std::string FormatTimestamp(double unix_seconds) {
  const time_t secs = static_cast<time_t>(unix_seconds);
  const int millis =
      static_cast<int>((unix_seconds - static_cast<double>(secs)) * 1000.0);
  struct tm utc;
  gmtime_r(&secs, &utc);
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02dT%02d:%02d:%02d.%03dZ",
                utc.tm_year + 1900, utc.tm_mon + 1, utc.tm_mday, utc.tm_hour,
                utc.tm_min, utc.tm_sec, millis);
  return buf;
}

void AppendJsonEscaped(const std::string& in, std::string* out) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\r':
        *out += "\\r";
        break;
      case '\t':
        *out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

void AppendFieldValue(const LogField& field, bool json, std::string* out) {
  switch (field.type) {
    case LogField::Type::kString:
      if (json) {
        *out += '"';
        AppendJsonEscaped(field.str, out);
        *out += '"';
      } else {
        *out += field.str;
      }
      break;
    case LogField::Type::kInt:
      *out += std::to_string(field.i64);
      break;
    case LogField::Type::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%g", field.f64);
      *out += buf;
      break;
    }
  }
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "unknown";
}

Result<LogLevel> ParseLogLevel(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower += static_cast<char>(c >= 'A' && c <= 'Z' ? c - 'A' + 'a' : c);
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  if (lower == "off" || lower == "none") return LogLevel::kOff;
  return Status::InvalidArgument("unknown log level '" + name +
                                 "' (want debug|info|warn|error|off)");
}

Status ParseLogLevelSpec(const std::string& spec, LogOptions* options) {
  for (const std::string& raw : Split(spec, ',')) {
    std::string part(Trim(raw));
    if (part.empty()) continue;
    size_t eq = part.find('=');
    if (eq == std::string::npos) {
      MRSL_ASSIGN_OR_RETURN(options->level, ParseLogLevel(part));
    } else {
      std::string component(Trim(part.substr(0, eq)));
      if (component.empty()) {
        return Status::InvalidArgument("empty component in log spec '" +
                                       spec + "'");
      }
      MRSL_ASSIGN_OR_RETURN(LogLevel level,
                            ParseLogLevel(std::string(Trim(part.substr(eq + 1)))));
      options->component_levels[component] = level;
    }
  }
  return Status::OK();
}

Logger& Logger::Global() {
  static Logger* logger = new Logger();
  return *logger;
}

void Logger::Configure(LogOptions options) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_ = std::move(options);
  int floor = static_cast<int>(options_.level);
  for (const auto& [component, level] : options_.component_levels) {
    floor = std::min(floor, static_cast<int>(level));
  }
  min_level_.store(floor, std::memory_order_relaxed);
  buckets_.clear();
}

LogLevel Logger::LevelFor(const std::string& component) const {
  auto it = options_.component_levels.find(component);
  return it != options_.component_levels.end() ? it->second : options_.level;
}

bool Logger::Enabled(const std::string& component, LogLevel level) const {
  if (static_cast<int>(level) < min_level_.load(std::memory_order_relaxed)) {
    return false;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  return level >= LevelFor(component);
}

void Logger::Log(LogLevel level, const std::string& component,
                 const std::string& message, std::vector<LogField> fields) {
  if (level == LogLevel::kOff) return;
  if (static_cast<int>(level) < min_level_.load(std::memory_order_relaxed)) {
    return;
  }

  uint64_t dropped = 0;
  FILE* sink = nullptr;
  bool json = false;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (level < LevelFor(component)) return;

    // Token bucket per (component, level); errors bypass it.
    if (level < LogLevel::kError && options_.rate_per_sec > 0.0) {
      Bucket& bucket = buckets_[component + '\0' + LogLevelName(level)];
      const double now = MonoNowSeconds();
      if (bucket.last_seconds == 0.0) {
        bucket.tokens = options_.burst;
      } else {
        bucket.tokens = std::min(
            options_.burst,
            bucket.tokens + (now - bucket.last_seconds) * options_.rate_per_sec);
      }
      bucket.last_seconds = now;
      if (bucket.tokens < 1.0) {
        ++bucket.suppressed;
        suppressed_.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      bucket.tokens -= 1.0;
      dropped = bucket.suppressed;
      bucket.suppressed = 0;
    }
    sink = options_.sink != nullptr ? options_.sink : stderr;
    json = options_.json;
  }

  // Format outside the lock; a single fwrite keeps the line atomic
  // enough for line-oriented consumers.
  std::string line;
  line.reserve(128);
  const std::string ts = FormatTimestamp(WallNowSeconds());
  if (json) {
    line += "{\"ts\":\"" + ts + "\",\"level\":\"";
    line += LogLevelName(level);
    line += "\",\"component\":\"";
    AppendJsonEscaped(component, &line);
    line += "\",\"msg\":\"";
    AppendJsonEscaped(message, &line);
    line += '"';
    for (const LogField& field : fields) {
      line += ",\"";
      AppendJsonEscaped(field.key, &line);
      line += "\":";
      AppendFieldValue(field, true, &line);
    }
    if (dropped > 0) line += ",\"suppressed\":" + std::to_string(dropped);
    line += "}\n";
  } else {
    line += ts;
    line += ' ';
    const char* name = LogLevelName(level);
    line += name;
    for (size_t i = std::strlen(name); i < 5; ++i) line += ' ';
    line += ' ';
    line += component;
    line += ": ";
    line += message;
    for (const LogField& field : fields) {
      line += ' ';
      line += field.key;
      line += '=';
      AppendFieldValue(field, false, &line);
    }
    if (dropped > 0) line += " suppressed=" + std::to_string(dropped);
    line += '\n';
  }
  std::fwrite(line.data(), 1, line.size(), sink);
  std::fflush(sink);
  emitted_.fetch_add(1, std::memory_order_relaxed);
}

void LogDebug(const std::string& component, const std::string& message,
              std::vector<LogField> fields) {
  Logger::Global().Log(LogLevel::kDebug, component, message,
                       std::move(fields));
}

void LogInfo(const std::string& component, const std::string& message,
             std::vector<LogField> fields) {
  Logger::Global().Log(LogLevel::kInfo, component, message, std::move(fields));
}

void LogWarn(const std::string& component, const std::string& message,
             std::vector<LogField> fields) {
  Logger::Global().Log(LogLevel::kWarn, component, message, std::move(fields));
}

void LogError(const std::string& component, const std::string& message,
              std::vector<LogField> fields) {
  Logger::Global().Log(LogLevel::kError, component, message,
                       std::move(fields));
}

double ProcessStartUnixSeconds() { return kProcessStartWall; }

double ProcessUptimeSeconds() {
  return MonoNowSeconds() - kProcessStartMono;
}

}  // namespace mrsl
