#include "util/metrics.h"

#include <cassert>
#include <cstdio>

namespace mrsl {
namespace {

// Prometheus label values escape backslash, double quote, and newline.
std::string EscapeLabelValue(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (char c : v) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string RenderLabels(const MetricLabels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + EscapeLabelValue(labels[i].second) +
           "\"";
  }
  out += "}";
  return out;
}

// Inserts `extra` into a rendered label string, e.g.
// ('{a="b"}', 'le="0.1"') -> '{a="b",le="0.1"}'.
std::string WithExtraLabel(const std::string& rendered,
                           const std::string& extra) {
  if (rendered.empty()) return "{" + extra + "}";
  std::string out = rendered;
  out.insert(out.size() - 1, "," + extra);
  return out;
}

std::string FormatNum(double v) {
  // %.10g keeps bucket bounds like 0.01 rendering as "0.01", not the
  // 17-significant-digit binary expansion.
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(std::move(bounds)),
      buckets_(new std::atomic<uint64_t>[bounds_.size() + 1]) {
  for (size_t i = 1; i < bounds_.size(); ++i) {
    assert(bounds_[i - 1] < bounds_[i] && "bounds must strictly increase");
  }
  for (size_t i = 0; i <= bounds_.size(); ++i) {
    buckets_[i].store(0, std::memory_order_relaxed);
  }
}

void Histogram::Observe(double value) {
  size_t b = 0;
  while (b < bounds_.size() && value > bounds_[b]) ++b;
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  double old = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(old, old + value,
                                     std::memory_order_relaxed)) {
  }
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help,
                                     const MetricLabels& labels) {
  const std::string key = RenderLabels(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = families_[name];
  if (family.help.empty()) family.help = help;
  auto it = family.counters.find(key);
  if (it == family.counters.end()) {
    it = family.counters.emplace(key, std::make_unique<Counter>()).first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help,
                                 const MetricLabels& labels) {
  const std::string key = RenderLabels(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = families_[name];
  if (family.help.empty()) family.help = help;
  family.is_gauge = true;
  auto it = family.gauges.find(key);
  if (it == family.gauges.end()) {
    it = family.gauges.emplace(key, std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         const std::string& help,
                                         std::vector<double> bounds,
                                         const MetricLabels& labels) {
  const std::string key = RenderLabels(labels);
  std::lock_guard<std::mutex> lock(mutex_);
  Family& family = families_[name];
  if (family.help.empty()) family.help = help;
  family.is_histogram = true;
  auto it = family.histograms.find(key);
  if (it == family.histograms.end()) {
    it = family.histograms
             .emplace(key, std::make_unique<Histogram>(std::move(bounds)))
             .first;
  }
  return it->second.get();
}

std::string MetricsRegistry::RenderPrometheus() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string out;
  for (const auto& [name, family] : families_) {
    out += "# HELP " + name + " " + family.help + "\n";
    out += "# TYPE " + name +
           (family.is_histogram
                ? " histogram\n"
                : family.is_gauge ? " gauge\n" : " counter\n");
    for (const auto& [labels, counter] : family.counters) {
      out += name + labels + " " + std::to_string(counter->value()) + "\n";
    }
    for (const auto& [labels, gauge] : family.gauges) {
      out += name + labels + " " + FormatNum(gauge->value()) + "\n";
    }
    for (const auto& [labels, hist] : family.histograms) {
      uint64_t cumulative = 0;
      for (size_t b = 0; b <= hist->bounds().size(); ++b) {
        cumulative += hist->bucket_count(b);
        const std::string le =
            b < hist->bounds().size() ? FormatNum(hist->bounds()[b]) : "+Inf";
        out += name + "_bucket" +
               WithExtraLabel(labels, "le=\"" + le + "\"") + " " +
               std::to_string(cumulative) + "\n";
      }
      out += name + "_sum" + labels + " " + FormatNum(hist->sum()) + "\n";
      out += name + "_count" + labels + " " +
             std::to_string(hist->count()) + "\n";
    }
  }
  return out;
}

std::vector<double> MetricsRegistry::DefaultLatencyBoundsSeconds() {
  return {1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 3e-2, 1e-1, 3e-1, 1.0, 3.0, 10.0,
          30.0, 100.0};
}

}  // namespace mrsl
