// Single-pass character state machine (in_quotes / field_started) rather
// than a line-splitting pass, so quoted fields may contain embedded
// newlines and CRLF input needs no pre-normalization. A quote opening
// mid-field is rejected as corruption instead of being silently folded in.

#include "util/csv.h"

#include <cstddef>
#include <fstream>
#include <sstream>

namespace mrsl {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    row.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_row = [&] {
    end_field();
    rows.push_back(std::move(row));
    row.clear();
  };

  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < text.size() && text[i + 1] == '"') {
          field += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field += c;
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::Corruption("quote inside unquoted CSV field");
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = false;
        break;
      case '\r':
        // Swallow; \r\n handled by the \n branch.
        break;
      case '\n':
        end_row();
        break;
      default:
        field += c;
        field_started = true;
        break;
    }
  }
  if (in_quotes) return Status::Corruption("unterminated quoted CSV field");
  if (!row.empty() || !field.empty() || field_started) end_row();
  return rows;
}

std::string WriteCsv(const std::vector<std::vector<std::string>>& rows) {
  std::string out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out += ',';
      const std::string& f = row[i];
      bool needs_quote = f.find_first_of(",\"\n\r") != std::string::npos;
      if (needs_quote) {
        out += '"';
        for (char c : f) {
          if (c == '"') out += '"';
          out += c;
        }
        out += '"';
      } else {
        out += f;
      }
    }
    out += '\n';
  }
  return out;
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IOError("read failed: " + path);
  return ss.str();
}

Status WriteFile(const std::string& path, std::string_view content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IOError("cannot open for writing: " + path);
  out.write(content.data(), static_cast<std::streamsize>(content.size()));
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

}  // namespace mrsl
