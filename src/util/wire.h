// Shared wire-format primitives for every on-disk binary format in the
// tree (pdb/snapshot_io.h, pdb/wal.h, core/delta.h serialization).
//
// Writers append to a std::string through the Put* helpers; readers run
// through a bounds-checked Cursor that validates every count against the
// bytes actually remaining BEFORE allocating, so a truncated or
// bit-flipped input fails with Status::Corruption instead of a bad_alloc
// or a crash. All integers are little-endian; doubles travel as raw
// IEEE-754 bits so a round trip is bit-identical.
//
// Everything lives under mrsl::wire so the short names (PutU32, Cursor)
// never collide with a format's own file-local helpers.

#ifndef MRSL_UTIL_WIRE_H_
#define MRSL_UTIL_WIRE_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "util/result.h"

namespace mrsl {
namespace wire {

/// FNV-1a 64-bit over `bytes` — the checksum every framed format uses.
uint64_t Fnv1a64(std::string_view bytes);

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutI32(std::string* out, int32_t v);
void PutF64(std::string* out, double v);
/// Length-prefixed (u32) string.
void PutString(std::string* out, const std::string& s);

/// Bounds-checked read cursor. Every read fails with Status::Corruption
/// once the input runs out; nothing is consumed by a failed read.
class Cursor {
 public:
  explicit Cursor(std::string_view data) : data_(data) {}

  size_t remaining() const { return data_.size() - pos_; }
  size_t position() const { return pos_; }
  bool done() const { return pos_ == data_.size(); }

  Status Bytes(void* out, size_t n);
  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<int32_t> I32();
  Result<double> F64();
  /// Length-prefixed (u32) string; the length is validated against the
  /// remaining bytes before the copy.
  Result<std::string> String();
  /// A view of the next `n` bytes, consumed.
  Result<std::string_view> View(size_t n);

  /// Validates that `count` items of at least `min_bytes_each` bytes can
  /// still fit — the guard against allocating from corrupt counts.
  Status Fits(uint64_t count, uint64_t min_bytes_each);

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

}  // namespace wire
}  // namespace mrsl

#endif  // MRSL_UTIL_WIRE_H_
