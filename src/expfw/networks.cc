// The paper publishes only summary statistics per network (attr count,
// average cardinality, domain size, depth — Table I), not the graphs, so
// each catalog entry here is a concrete topology constructed to hit those
// published numbers exactly; the comments per entry show the arithmetic.
// The catalog is built once on first use and the paper statistics are
// stored alongside each spec so benchmarks can report both.

#include "expfw/networks.h"

namespace mrsl {
namespace {

BnSpec Make(std::string name, Topology topo, size_t attrs, double avg_card,
            uint64_t dom, size_t depth) {
  BnSpec spec;
  spec.name = std::move(name);
  spec.topology = std::move(topo);
  spec.paper_num_attrs = attrs;
  spec.paper_avg_card = avg_card;
  spec.paper_dom_size = dom;
  spec.paper_depth = depth;
  return spec;
}

std::vector<BnSpec> BuildCatalog() {
  std::vector<BnSpec> catalog;

  // BN1: 4 attrs, avg card 4, dom 300, depth 2. Diamond (= crown of 4)
  // with cards {3,4,5,5}: 3*4*5*5 = 300.
  catalog.push_back(Make(
      "BN1", Topology::Crown(4, 2).WithCards({3, 4, 5, 5}), 4, 4.0, 300, 2));

  // BN2: 5 attrs, avg 4.4, dom 1400, depth 3. Chain A0->A1->A2->A3 plus
  // leaf A0->A4; cards {2,4,5,5,7}: 2*4*5*5*7 = 1400.
  {
    auto topo = Topology::Create(
        {"A0", "A1", "A2", "A3", "A4"}, {2, 4, 5, 5, 7},
        {{}, {0}, {1}, {2}, {0}});
    catalog.push_back(
        Make("BN2", std::move(topo).value(), 5, 4.4, 1400, 3));
  }

  // BN3/BN4/BN5: 5 attrs, avg 5.2, dom 2400, depths 3 / 0 / 2. Cards
  // {2,5,5,6,8}: 2*5*5*6*8 = 2400.
  {
    auto topo = Topology::Create(
        {"A0", "A1", "A2", "A3", "A4"}, {2, 5, 5, 6, 8},
        {{}, {0}, {1}, {2}, {0}});
    catalog.push_back(Make("BN3", std::move(topo).value(), 5, 5.2, 2400, 3));
  }
  catalog.push_back(Make(
      "BN4", Topology::Independent(5, 2).WithCards({2, 5, 5, 6, 8}), 5, 5.2,
      2400, 0));
  catalog.push_back(Make(
      "BN5", Topology::Crown(5, 2).WithCards({2, 5, 5, 6, 8}), 5, 5.2, 2400,
      2));

  // BN6: 10 binary attrs, dom 1024, depth 4: five layers of two.
  catalog.push_back(Make(
      "BN6", Topology::Layered({2, 2, 2, 2, 2}, std::vector<uint32_t>(10, 2),
                               2),
      10, 2.0, 1024, 4));

  // BN7: 10 attrs, avg 4, dom 518,400, depth 4. Same layered shape,
  // cards {3,3,3,3,4,4,4,4,5,5}: 3^4 * 4^4 * 5^2 = 518,400.
  catalog.push_back(Make(
      "BN7",
      Topology::Layered({2, 2, 2, 2, 2}, {3, 3, 3, 3, 4, 4, 4, 4, 5, 5}, 2),
      10, 4.0, 518400, 4));

  // BN8-BN12 + BN17-BN18: crowns (Fig 7).
  catalog.push_back(Make("BN8", Topology::Crown(4, 2), 4, 2, 16, 2));
  catalog.push_back(Make("BN9", Topology::Crown(6, 2), 6, 2, 64, 2));
  catalog.push_back(Make("BN10", Topology::Crown(6, 4), 6, 4, 4096, 2));
  catalog.push_back(Make("BN11", Topology::Crown(6, 6), 6, 6, 46656, 2));
  catalog.push_back(Make("BN12", Topology::Crown(6, 8), 6, 8, 262144, 2));

  // BN13-BN16: lines of six (Fig 7), cardinality sweep 2/4/6/8. The
  // paper's Table I lists depth 6 (node count); the longest path has 5
  // edges — see EXPERIMENTS.md.
  catalog.push_back(Make("BN13", Topology::Chain(6, 2), 6, 2, 64, 6));
  catalog.push_back(Make("BN14", Topology::Chain(6, 4), 6, 4, 4096, 6));
  catalog.push_back(Make("BN15", Topology::Chain(6, 6), 6, 6, 46656, 6));
  catalog.push_back(Make("BN16", Topology::Chain(6, 8), 6, 8, 262144, 6));

  catalog.push_back(Make("BN17", Topology::Crown(8, 2), 8, 2, 256, 2));
  catalog.push_back(Make("BN18", Topology::Crown(10, 2), 10, 2, 1024, 2));

  // BN19: 10 binary attrs, depth 3: layers {3,3,2,2}.
  catalog.push_back(Make(
      "BN19", Topology::Layered({3, 3, 2, 2}, std::vector<uint32_t>(10, 2),
                                2),
      10, 2.0, 1024, 3));

  // BN20: 10 binary attrs, depth 5: layers {2,2,2,2,1,1}.
  catalog.push_back(Make(
      "BN20",
      Topology::Layered({2, 2, 2, 2, 1, 1}, std::vector<uint32_t>(10, 2), 2),
      10, 2.0, 1024, 5));

  return catalog;
}

}  // namespace

const std::vector<BnSpec>& NetworkCatalog() {
  static const std::vector<BnSpec>* catalog =
      new std::vector<BnSpec>(BuildCatalog());
  return *catalog;
}

Result<BnSpec> NetworkByName(const std::string& name) {
  for (const BnSpec& spec : NetworkCatalog()) {
    if (spec.name == name) return spec;
  }
  return Status::NotFound("unknown network: " + name);
}

}  // namespace mrsl
