// Accuracy metrics of Sec VI-A: Kullback-Leibler divergence between the
// true (BN) distribution and the MRSL estimate, and top-1 accuracy (did
// the most probable prediction match the true most probable value).

#ifndef MRSL_EXPFW_METRICS_H_
#define MRSL_EXPFW_METRICS_H_

#include <cstddef>
#include <vector>

#include "relational/joint_dist.h"

namespace mrsl {

/// KL(p_true || q_est) in nats. `q_est` must be strictly positive wherever
/// `p_true` is (guaranteed by CPD smoothing / joint smoothing epsilon).
double KlDivergence(const std::vector<double>& p_true,
                    const std::vector<double>& q_est);

/// KL over two joint distributions on the same variables.
double KlDivergence(const JointDist& p_true, const JointDist& q_est);

/// True iff the argmax cells coincide.
bool Top1Match(const std::vector<double>& p_true,
               const std::vector<double>& q_est);
bool Top1Match(const JointDist& p_true, const JointDist& q_est);

/// Streaming mean of KL and top-1 over a test set.
class AccuracyAccumulator {
 public:
  void Add(double kl, bool top1);
  void Merge(const AccuracyAccumulator& other);

  size_t count() const { return n_; }
  double MeanKl() const;
  double Top1Rate() const;

 private:
  size_t n_ = 0;
  double kl_sum_ = 0.0;
  size_t top1_hits_ = 0;
};

}  // namespace mrsl

#endif  // MRSL_EXPFW_METRICS_H_
