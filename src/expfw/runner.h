// Experiment runners (Sec VI): repeatable, averaged experiment loops.
//
// Every experiment follows the paper's protocol: 3 random network
// instances per topology x 3 random train/test splits per instance, all
// results averaged, with deterministic seeds derived from a master seed.

#ifndef MRSL_EXPFW_RUNNER_H_
#define MRSL_EXPFW_RUNNER_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/learner.h"
#include "core/options.h"
#include "core/workload.h"
#include "expfw/datagen.h"
#include "expfw/metrics.h"
#include "expfw/networks.h"
#include "util/result.h"

namespace mrsl {

/// Shared experiment repetition parameters.
struct RepetitionOptions {
  size_t num_instances = 3;  // random network instances per topology
  size_t num_splits = 3;     // random train/test splits per instance
  uint64_t master_seed = 20110411;  // ICDE 2011 :)
  /// Cap on evaluated test tuples per repetition (0 = all); keeps the
  /// default benchmark run fast while preserving the averaging protocol.
  size_t max_eval_tuples = 500;
};

/// Configuration of a learning-phase measurement (Fig 4).
struct LearnExperimentConfig {
  std::string network;
  size_t train_size = 10000;
  double support = 0.02;
  RepetitionOptions reps;
};

/// Averages of the learning measurements.
struct LearnExperimentResult {
  double build_seconds = 0.0;   // mean model building time
  double model_size = 0.0;      // mean total meta-rules
  double itemsets = 0.0;        // mean frequent itemsets mined
};

Result<LearnExperimentResult> RunLearnExperiment(
    const LearnExperimentConfig& config);

/// Configuration of a single-attribute accuracy run (Table II, Figs 5-8).
struct SingleAttrConfig {
  std::string network;
  size_t train_size = 10000;
  double support = 0.001;
  VotingOptions voting;
  RepetitionOptions reps;
};

/// Averaged single-attribute results.
struct SingleAttrResult {
  double kl = 0.0;
  double top1 = 0.0;
  double model_size = 0.0;
  double infer_seconds_total = 0.0;  // total inference wall time
  size_t tuples_evaluated = 0;
};

Result<SingleAttrResult> RunSingleAttrExperiment(
    const SingleAttrConfig& config);

/// Configuration of a multi-attribute (Gibbs) accuracy run (Fig 10).
struct MultiAttrConfig {
  std::string network;
  size_t train_size = 10000;
  double support = 0.001;
  size_t num_missing = 2;
  GibbsOptions gibbs;
  SamplingMode mode = SamplingMode::kTupleDag;
  RepetitionOptions reps;
};

/// Averaged multi-attribute results plus aggregate sampling cost.
struct MultiAttrResult {
  double kl = 0.0;
  double top1 = 0.0;
  WorkloadStats stats;            // summed over repetitions
  size_t tuples_evaluated = 0;
};

Result<MultiAttrResult> RunMultiAttrExperiment(const MultiAttrConfig& config);

}  // namespace mrsl

#endif  // MRSL_EXPFW_RUNNER_H_
