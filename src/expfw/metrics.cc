// KL is computed true||estimate with the estimate clamped to 1e-12 — a
// single zero-probability cell would otherwise send one repetition's KL
// to infinity and poison the experiment mean. AccuracyAccumulator keeps
// only sums and counts, so per-thread accumulators Merge exactly.

#include "expfw/metrics.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mrsl {

double KlDivergence(const std::vector<double>& p_true,
                    const std::vector<double>& q_est) {
  assert(p_true.size() == q_est.size());
  double kl = 0.0;
  for (size_t i = 0; i < p_true.size(); ++i) {
    if (p_true[i] <= 0.0) continue;
    // Guard against zero estimates (upstream smoothing should prevent
    // them); clamp to keep the metric finite rather than poisoning means.
    double q = std::max(q_est[i], 1e-12);
    kl += p_true[i] * std::log(p_true[i] / q);
  }
  return std::max(kl, 0.0);
}

double KlDivergence(const JointDist& p_true, const JointDist& q_est) {
  assert(p_true.vars() == q_est.vars());
  return KlDivergence(p_true.probs(), q_est.probs());
}

bool Top1Match(const std::vector<double>& p_true,
               const std::vector<double>& q_est) {
  assert(p_true.size() == q_est.size());
  size_t am_p = static_cast<size_t>(
      std::max_element(p_true.begin(), p_true.end()) - p_true.begin());
  size_t am_q = static_cast<size_t>(
      std::max_element(q_est.begin(), q_est.end()) - q_est.begin());
  return am_p == am_q;
}

bool Top1Match(const JointDist& p_true, const JointDist& q_est) {
  assert(p_true.vars() == q_est.vars());
  return Top1Match(p_true.probs(), q_est.probs());
}

void AccuracyAccumulator::Add(double kl, bool top1) {
  ++n_;
  kl_sum_ += kl;
  top1_hits_ += top1 ? 1 : 0;
}

void AccuracyAccumulator::Merge(const AccuracyAccumulator& other) {
  n_ += other.n_;
  kl_sum_ += other.kl_sum_;
  top1_hits_ += other.top1_hits_;
}

double AccuracyAccumulator::MeanKl() const {
  return n_ == 0 ? 0.0 : kl_sum_ / static_cast<double>(n_);
}

double AccuracyAccumulator::Top1Rate() const {
  return n_ == 0 ? 0.0
                 : static_cast<double>(top1_hits_) / static_cast<double>(n_);
}

}  // namespace mrsl
