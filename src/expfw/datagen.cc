// GenerateDataset over-samples so that exactly train_size rows remain
// after the test split is carved off, shuffles once, and masks the test
// copy by per-row shuffling of the attribute list (uniform choice of
// which num_missing attributes go missing, per Sec VI-A). The unmasked
// test relation is kept alongside the masked one so metrics can look up
// ground-truth cells.

#include "expfw/datagen.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace mrsl {

Relation MaskRelation(const Relation& rel, size_t num_missing, Rng* rng) {
  Relation out(rel.schema());
  const size_t n = rel.schema().num_attrs();
  std::vector<AttrId> attrs(n);
  for (size_t i = 0; i < n; ++i) attrs[i] = static_cast<AttrId>(i);

  for (const Tuple& row : rel.rows()) {
    // Uniform choice of which attributes go missing (Sec VI-A).
    rng->Shuffle(&attrs);
    Tuple masked = row;
    for (size_t k = 0; k < num_missing && k < n; ++k) {
      masked.set_value(attrs[k], kMissingValue);
    }
    Status st = out.Append(std::move(masked));
    assert(st.ok());
    (void)st;
  }
  return out;
}

Result<Dataset> GenerateDataset(const BayesNet& bn,
                                const DatasetOptions& options, Rng* rng) {
  const size_t n = bn.num_vars();
  if (options.num_missing < 1 || options.num_missing >= n) {
    return Status::InvalidArgument(
        "num_missing must be in [1, num_attrs - 1]");
  }
  if (options.test_fraction <= 0.0 || options.test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in (0, 1)");
  }
  if (options.train_size == 0) {
    return Status::InvalidArgument("train_size must be positive");
  }

  // Total sample so that train_size tuples form the training split.
  const size_t total = static_cast<size_t>(std::llround(
      static_cast<double>(options.train_size) /
      (1.0 - options.test_fraction)));
  Relation sample = bn.SampleRelation(total, rng);

  // Random split: shuffle row indices, take the head as training.
  std::vector<uint32_t> order(sample.num_rows());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  rng->Shuffle(&order);

  Dataset ds;
  ds.bn = bn;
  ds.train = Relation(sample.schema());
  ds.test_original = Relation(sample.schema());
  for (size_t i = 0; i < order.size(); ++i) {
    const Tuple& row = sample.row(order[i]);
    Status st = (i < options.train_size) ? ds.train.Append(row)
                                         : ds.test_original.Append(row);
    assert(st.ok());
    (void)st;
  }
  ds.test_masked = MaskRelation(ds.test_original, options.num_missing, rng);
  return ds;
}

}  // namespace mrsl
