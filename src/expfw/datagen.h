// Dataset generation (Sec VI-A): instantiate a network, forward-sample a
// complete relation, split it into train/test, and mask attribute values
// in the test split with "?" uniformly at random.

#ifndef MRSL_EXPFW_DATAGEN_H_
#define MRSL_EXPFW_DATAGEN_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bn/bayes_net.h"
#include "relational/relation.h"
#include "util/result.h"
#include "util/rng.h"

namespace mrsl {

/// One generated experiment dataset.
struct Dataset {
  BayesNet bn;             // the ground-truth instance
  Relation train;          // complete training tuples (90% by default)
  Relation test_masked;    // test tuples with missing values injected
  Relation test_original;  // the same test tuples before masking
};

/// Controls for GenerateDataset.
struct DatasetOptions {
  /// Number of *training* tuples; the total sample is scaled so the
  /// train/test split matches `test_fraction` (paper: 90%/10%).
  size_t train_size = 10000;

  /// Fraction of the sample held out as test data.
  double test_fraction = 0.1;

  /// Missing values injected per test tuple (uniformly chosen attributes).
  /// Must be in [1, num_attrs - 1]: the paper keeps at most
  /// networkSize - 1 attributes missing.
  size_t num_missing = 1;

  /// Dirichlet concentration for the random CPTs.
  double cpt_alpha = 1.0;
};

/// Generates a dataset from an already-instantiated network.
Result<Dataset> GenerateDataset(const BayesNet& bn,
                                const DatasetOptions& options, Rng* rng);

/// Masks `num_missing` uniformly chosen attributes in every row of `rel`,
/// returning the incomplete copy.
Relation MaskRelation(const Relation& rel, size_t num_missing, Rng* rng);

}  // namespace mrsl

#endif  // MRSL_EXPFW_DATAGEN_H_
