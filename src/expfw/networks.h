// The benchmark catalog: concrete topologies for the paper's twenty
// Bayesian networks (Table I, Fig 7).
//
// The paper publishes only summary statistics (number of attributes,
// average cardinality, domain size, depth) plus the shapes in Fig 7
// (crowns for BN8/9/17/18, lines for BN13-16, "no edges" for BN4). This
// catalog reproduces every published statistic; where only the average
// cardinality is given, cardinalities are factored to match the published
// domain size exactly (see DESIGN.md "Substitutions").

#ifndef MRSL_EXPFW_NETWORKS_H_
#define MRSL_EXPFW_NETWORKS_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "bn/topology.h"
#include "util/result.h"

namespace mrsl {

/// One catalog entry with the paper-reported reference statistics.
struct BnSpec {
  std::string name;          // "BN1" .. "BN20"
  Topology topology;

  // Values printed in Table I, kept for side-by-side reporting.
  size_t paper_num_attrs = 0;
  double paper_avg_card = 0.0;
  uint64_t paper_dom_size = 0;
  size_t paper_depth = 0;
};

/// The full catalog BN1..BN20, in order.
const std::vector<BnSpec>& NetworkCatalog();

/// Lookup by name ("BN7"); fails for unknown names.
Result<BnSpec> NetworkByName(const std::string& name);

}  // namespace mrsl

#endif  // MRSL_EXPFW_NETWORKS_H_
