// Every runner follows the paper's averaging protocol (instances x
// splits) with a deterministic RNG derived per (instance, split) from the
// master seed — so instance i / split j sees identical data no matter
// which experiment, config order, or thread asks for it, and any single
// repetition can be reproduced in isolation. Results are plain means over
// the repetitions.

#include "expfw/runner.h"

#include <algorithm>

#include "bn/exact.h"
#include "core/engine.h"
#include "core/infer_single.h"
#include "util/timer.h"

namespace mrsl {
namespace {

// Derives a per-repetition RNG from the master seed so instance i /
// split j is identical no matter which experiment asks for it.
Rng RepetitionRng(uint64_t master, size_t instance, size_t split) {
  return Rng(master ^ (0x9E3779B97F4A7C15ULL * (instance * 1000 + split + 1)));
}

}  // namespace

Result<LearnExperimentResult> RunLearnExperiment(
    const LearnExperimentConfig& config) {
  auto spec = NetworkByName(config.network);
  if (!spec.ok()) return spec.status();

  LearnExperimentResult out;
  size_t reps = 0;
  for (size_t i = 0; i < config.reps.num_instances; ++i) {
    Rng inst_rng = RepetitionRng(config.reps.master_seed, i, 0);
    BayesNet bn = BayesNet::RandomInstance(spec->topology, &inst_rng);
    for (size_t j = 0; j < config.reps.num_splits; ++j) {
      Rng rng = RepetitionRng(config.reps.master_seed, i, j + 1);
      DatasetOptions ds_opts;
      ds_opts.train_size = config.train_size;
      auto ds = GenerateDataset(bn, ds_opts, &rng);
      if (!ds.ok()) return ds.status();

      LearnOptions learn;
      learn.support_threshold = config.support;
      LearnStats stats;
      auto model = LearnModel(ds->train, learn, &stats);
      if (!model.ok()) return model.status();

      out.build_seconds += stats.total_seconds;
      out.model_size += static_cast<double>(model->TotalMetaRules());
      out.itemsets += static_cast<double>(stats.num_frequent_itemsets);
      ++reps;
    }
  }
  out.build_seconds /= static_cast<double>(reps);
  out.model_size /= static_cast<double>(reps);
  out.itemsets /= static_cast<double>(reps);
  return out;
}

Result<SingleAttrResult> RunSingleAttrExperiment(
    const SingleAttrConfig& config) {
  auto spec = NetworkByName(config.network);
  if (!spec.ok()) return spec.status();

  SingleAttrResult out;
  AccuracyAccumulator acc;
  double model_size_sum = 0.0;
  size_t reps = 0;

  for (size_t i = 0; i < config.reps.num_instances; ++i) {
    Rng inst_rng = RepetitionRng(config.reps.master_seed, i, 0);
    BayesNet bn = BayesNet::RandomInstance(spec->topology, &inst_rng);
    for (size_t j = 0; j < config.reps.num_splits; ++j) {
      Rng rng = RepetitionRng(config.reps.master_seed, i, j + 1);
      DatasetOptions ds_opts;
      ds_opts.train_size = config.train_size;
      ds_opts.num_missing = 1;
      auto ds = GenerateDataset(bn, ds_opts, &rng);
      if (!ds.ok()) return ds.status();

      LearnOptions learn;
      learn.support_threshold = config.support;
      auto model = LearnModel(ds->train, learn);
      if (!model.ok()) return model.status();
      model_size_sum += static_cast<double>(model->TotalMetaRules());
      ++reps;

      size_t limit = ds->test_masked.num_rows();
      if (config.reps.max_eval_tuples > 0) {
        limit = std::min(limit, config.reps.max_eval_tuples);
      }
      // One scratch set per repetition: voter matching reuses it across
      // the whole test split instead of rebuilding per call.
      std::vector<Mrsl::MatchScratch> scratch(model->num_attrs());
      WallTimer timer;
      for (size_t r = 0; r < limit; ++r) {
        const Tuple& t = ds->test_masked.row(r);
        auto missing = t.MissingAttrs();
        if (missing.size() != 1) continue;

        auto est = InferSingleAttribute(*model, t, missing[0], config.voting,
                                        &scratch[missing[0]]);
        if (!est.ok()) return est.status();

        auto truth = ExactConditionalEnum(bn, t, {missing[0]});
        if (!truth.ok()) return truth.status();

        acc.Add(KlDivergence(truth->probs(), est->probs()),
                Top1Match(truth->probs(), est->probs()));
      }
      out.infer_seconds_total += timer.ElapsedSeconds();
      out.tuples_evaluated += limit;
    }
  }
  out.kl = acc.MeanKl();
  out.top1 = acc.Top1Rate();
  out.model_size = model_size_sum / static_cast<double>(reps);
  return out;
}

Result<MultiAttrResult> RunMultiAttrExperiment(const MultiAttrConfig& config) {
  auto spec = NetworkByName(config.network);
  if (!spec.ok()) return spec.status();

  MultiAttrResult out;
  AccuracyAccumulator acc;

  for (size_t i = 0; i < config.reps.num_instances; ++i) {
    Rng inst_rng = RepetitionRng(config.reps.master_seed, i, 0);
    BayesNet bn = BayesNet::RandomInstance(spec->topology, &inst_rng);
    for (size_t j = 0; j < config.reps.num_splits; ++j) {
      Rng rng = RepetitionRng(config.reps.master_seed, i, j + 1);
      DatasetOptions ds_opts;
      ds_opts.train_size = config.train_size;
      ds_opts.num_missing = config.num_missing;
      auto ds = GenerateDataset(bn, ds_opts, &rng);
      if (!ds.ok()) return ds.status();

      LearnOptions learn;
      learn.support_threshold = config.support;
      auto model = LearnModel(ds->train, learn);
      if (!model.ok()) return model.status();

      size_t limit = ds->test_masked.num_rows();
      if (config.reps.max_eval_tuples > 0) {
        limit = std::min(limit, config.reps.max_eval_tuples);
      }
      std::vector<Tuple> workload(
          ds->test_masked.rows().begin(),
          ds->test_masked.rows().begin() + static_cast<long>(limit));

      WorkloadOptions wl_opts;
      wl_opts.gibbs = config.gibbs;
      wl_opts.gibbs.seed = rng.NextUint64();
      WorkloadStats stats;
      // The engine path: batched inference over the shared thread pool
      // with deterministic per-component seeding (results independent of
      // the machine's thread count).
      Engine engine(std::move(*model));
      auto dists = engine.InferBatch(workload, config.mode, wl_opts,
                                     &stats);
      if (!dists.ok()) return dists.status();

      out.stats.points_sampled += stats.points_sampled;
      out.stats.burn_in_points += stats.burn_in_points;
      out.stats.shared_samples += stats.shared_samples;
      out.stats.distinct_tuples += stats.distinct_tuples;
      out.stats.cache_hits += stats.cache_hits;
      out.stats.cpd_evaluations += stats.cpd_evaluations;
      out.stats.wall_seconds += stats.wall_seconds;

      for (size_t r = 0; r < workload.size(); ++r) {
        auto truth = TrueDistribution(bn, workload[r]);
        if (!truth.ok()) return truth.status();
        acc.Add(KlDivergence(*truth, (*dists)[r]),
                Top1Match(*truth, (*dists)[r]));
      }
      out.tuples_evaluated += workload.size();
    }
  }
  out.kl = acc.MeanKl();
  out.top1 = acc.Top1Rate();
  return out;
}

}  // namespace mrsl
