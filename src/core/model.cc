#include "core/model.h"

namespace mrsl {

size_t MrslModel::TotalMetaRules() const {
  size_t n = 0;
  for (const Mrsl& l : lattices_) n += l.num_rules();
  return n;
}

std::string MrslModel::ToString() const {
  std::string out;
  for (AttrId a = 0; a < lattices_.size(); ++a) {
    out += "MRSL for ";
    out += schema_.attr(a).name();
    out += " (" + std::to_string(lattices_[a].num_rules()) + " meta-rules)\n";
    out += lattices_[a].ToString(schema_);
  }
  return out;
}

}  // namespace mrsl
