// Algorithm 1 with steps 2 and 3 fused: rather than materializing
// association rules and then grouping them, each frequent itemset I is
// split into (body, head item) pairs directly and confidences
// count(I)/count(body) accumulate into per-(attribute, body) groups —
// each group becomes one MetaRule. A body lookup can miss only when the
// per-round itemset cap broke Apriori's downward closure; such orphan
// rules are skipped. Timings for the mining and rule phases are recorded
// separately in LearnStats (they are reported separately by Fig 4).

#include "core/learner.h"

#include <algorithm>
#include <unordered_map>

#include "util/timer.h"

namespace mrsl {
namespace {

// Converts a (sorted) item vector into a body pattern tuple.
Tuple ItemsToPattern(const ItemVec& items, size_t num_attrs) {
  Tuple t(num_attrs);
  for (const Item& it : items) t.set_value(it.attr, it.value);
  return t;
}

}  // namespace

Result<MrslModel> LearnModel(const Relation& rel, const LearnOptions& options,
                             LearnStats* stats) {
  return LearnModelFromRows(rel, rel.CompleteRowIndices(), options, stats);
}

Result<MrslModel> LearnModelFromRows(const Relation& rel,
                                     const std::vector<uint32_t>& row_indices,
                                     const LearnOptions& options,
                                     LearnStats* stats) {
  if (options.min_prob <= 0.0 || options.min_prob >= 1.0) {
    return Status::InvalidArgument("min_prob must be in (0, 1)");
  }
  LearnStats local;
  WallTimer total_timer;

  // Step 1: ComputeFreqItemsets.
  WallTimer mining_timer;
  AprioriOptions apriori_opts;
  apriori_opts.support_threshold = options.support_threshold;
  apriori_opts.max_itemsets = options.max_itemsets;
  auto mined =
      MineFrequentItemsets(rel, row_indices, apriori_opts, &local.mining);
  if (!mined.ok()) return mined.status();
  const FrequentItemsets& freq = mined.value();
  local.num_frequent_itemsets = freq.size();
  local.mining_seconds = mining_timer.ElapsedSeconds();

  // Steps 2+3: ComputeAssocRules / ComputeMetaRules, fused per attribute.
  // For every frequent itemset I and every item (a, v) in I, the rule
  // (I \ {a=v}) -> a=v exists with confidence count(I)/count(body); rules
  // sharing (a, body) form one meta-rule. No confidence threshold applies.
  WallTimer rule_timer;
  const Schema& schema = rel.schema();
  const size_t num_attrs = schema.num_attrs();

  // meta_groups[a]: body itemset index -> list of (head value, confidence).
  std::vector<
      std::unordered_map<int32_t, std::vector<std::pair<ValueId, double>>>>
      meta_groups(num_attrs);

  ItemVec body;
  for (size_t idx = 0; idx < freq.size(); ++idx) {
    const ItemsetEntry& entry = freq.entry(static_cast<int32_t>(idx));
    if (entry.items.empty()) continue;
    for (size_t drop = 0; drop < entry.items.size(); ++drop) {
      const Item& head = entry.items[drop];
      body.clear();
      for (size_t k = 0; k < entry.items.size(); ++k) {
        if (k != drop) body.push_back(entry.items[k]);
      }
      int32_t body_idx = freq.Find(body);
      if (body_idx == kNoItemset) {
        // Possible only when the round cap recorded a superset whose
        // subset fell below threshold — such rules are not well defined
        // (Apriori closure normally guarantees the subset is present).
        continue;
      }
      double conf = static_cast<double>(entry.count) /
                    static_cast<double>(freq.entry(body_idx).count);
      meta_groups[head.attr][body_idx].emplace_back(head.value, conf);
      ++local.num_association_rules;
    }
  }

  // Step 4: ComputeSubsumption — build one lattice per attribute.
  std::vector<Mrsl> lattices;
  lattices.reserve(num_attrs);
  for (AttrId a = 0; a < num_attrs; ++a) {
    std::vector<MetaRule> rules;
    rules.reserve(meta_groups[a].size());
    for (auto& [body_idx, confs] : meta_groups[a]) {
      const ItemsetEntry& body_entry = freq.entry(body_idx);
      MetaRule rule;
      rule.head_attr = a;
      rule.body = ItemsToPattern(body_entry.items, num_attrs);
      rule.support_count = body_entry.count;
      rule.weight = freq.Support(body_idx);
      rule.cpd = Cpd::FromConfidences(schema.attr(a).cardinality(), confs,
                                      options.min_prob);
      rules.push_back(std::move(rule));
    }
    local.num_meta_rules += rules.size();
    lattices.emplace_back(a, num_attrs, schema.attr(a).cardinality(),
                          std::move(rules));
  }
  local.rule_seconds = rule_timer.ElapsedSeconds();
  local.total_seconds = total_timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;

  return MrslModel(schema, std::move(lattices));
}

}  // namespace mrsl
