// Line/space-separated text format, "mrsl-model v1" header, labels
// percent-escaped (%20/%25/%0A) so they can carry spaces and newlines.
// Probabilities print at precision 17, enough for doubles to round-trip
// bit-exactly — serialize(parse(serialize(m))) == serialize(m), which the
// umbrella test asserts. Parsing rebuilds each Mrsl from its rule list,
// so lattice edges and match indexes are reconstructed, never stored.

#include "core/model_io.h"

#include <sstream>

#include "util/csv.h"
#include "util/string_util.h"

namespace mrsl {
namespace {

// Escapes spaces in labels (the format is space-separated).
std::string Escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '%') {
      out += "%25";
    } else if (c == ' ') {
      out += "%20";
    } else if (c == '\n') {
      out += "%0A";
    } else {
      out += c;
    }
  }
  return out;
}

Result<std::string> Unescape(const std::string& s) {
  std::string out;
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '%') {
      out += s[i];
      continue;
    }
    if (i + 2 >= s.size()) return Status::Corruption("bad escape");
    std::string hex = s.substr(i + 1, 2);
    if (hex == "25") {
      out += '%';
    } else if (hex == "20") {
      out += ' ';
    } else if (hex == "0A") {
      out += '\n';
    } else {
      return Status::Corruption("unknown escape %" + hex);
    }
    i += 2;
  }
  return out;
}

}  // namespace

std::string ModelToText(const MrslModel& model) {
  std::ostringstream out;
  out.precision(17);
  const Schema& schema = model.schema();
  out << "mrsl-model v1\n";
  out << "attrs " << schema.num_attrs() << "\n";
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const Attribute& attr = schema.attr(a);
    out << "attr " << Escape(attr.name());
    for (size_t v = 0; v < attr.cardinality(); ++v) {
      out << " " << Escape(attr.label(static_cast<ValueId>(v)));
    }
    out << "\n";
  }
  for (AttrId a = 0; a < model.num_attrs(); ++a) {
    const Mrsl& lattice = model.mrsl(a);
    out << "lattice " << a << " " << lattice.num_rules() << "\n";
    for (size_t i = 0; i < lattice.num_rules(); ++i) {
      const MetaRule& r = lattice.rule(i);
      out << "rule " << r.weight << " " << r.support_count << " body";
      for (AttrId b = 0; b < r.body.num_attrs(); ++b) {
        ValueId v = r.body.value(b);
        if (v != kMissingValue) out << " " << b << "=" << v;
      }
      out << " cpd";
      for (double p : r.cpd.probs()) out << " " << p;
      out << "\n";
    }
  }
  return out.str();
}

Result<MrslModel> ModelFromText(std::string_view text) {
  std::vector<std::string> lines = Split(text, '\n');
  size_t pos = 0;
  auto next_line = [&]() -> std::string_view {
    while (pos < lines.size()) {
      std::string_view line = Trim(lines[pos]);
      ++pos;
      if (!line.empty()) return line;
    }
    return {};
  };

  if (Trim(next_line()) != "mrsl-model v1") {
    return Status::Corruption("missing mrsl-model header");
  }
  auto header = Split(next_line(), ' ');
  if (header.size() != 2 || header[0] != "attrs") {
    return Status::Corruption("missing attrs line");
  }
  int64_t num_attrs = 0;
  if (!ParseInt(header[1], &num_attrs) || num_attrs < 0) {
    return Status::Corruption("bad attr count");
  }

  std::vector<Attribute> attrs;
  for (int64_t a = 0; a < num_attrs; ++a) {
    auto fields = Split(next_line(), ' ');
    if (fields.size() < 2 || fields[0] != "attr") {
      return Status::Corruption("missing attr line");
    }
    auto name = Unescape(fields[1]);
    if (!name.ok()) return name.status();
    std::vector<std::string> labels;
    for (size_t i = 2; i < fields.size(); ++i) {
      auto label = Unescape(fields[i]);
      if (!label.ok()) return label.status();
      labels.push_back(std::move(label).value());
    }
    attrs.emplace_back(std::move(name).value(), std::move(labels));
  }
  auto schema = Schema::Create(std::move(attrs));
  if (!schema.ok()) return schema.status();

  std::vector<Mrsl> lattices;
  for (int64_t a = 0; a < num_attrs; ++a) {
    auto lat_fields = Split(next_line(), ' ');
    if (lat_fields.size() != 3 || lat_fields[0] != "lattice") {
      return Status::Corruption("missing lattice line for attr " +
                                std::to_string(a));
    }
    int64_t attr_id = 0;
    int64_t num_rules = 0;
    if (!ParseInt(lat_fields[1], &attr_id) || attr_id != a ||
        !ParseInt(lat_fields[2], &num_rules) || num_rules < 0) {
      return Status::Corruption("bad lattice header");
    }
    std::vector<MetaRule> rules;
    for (int64_t i = 0; i < num_rules; ++i) {
      auto fields = Split(next_line(), ' ');
      if (fields.size() < 4 || fields[0] != "rule") {
        return Status::Corruption("missing rule line");
      }
      MetaRule rule;
      rule.head_attr = static_cast<AttrId>(a);
      rule.body = Tuple(static_cast<size_t>(num_attrs));
      double weight = 0.0;
      int64_t support = 0;
      if (!ParseDouble(fields[1], &weight) ||
          !ParseInt(fields[2], &support) || fields[3] != "body") {
        return Status::Corruption("bad rule prefix");
      }
      rule.weight = weight;
      rule.support_count = static_cast<uint64_t>(support);
      size_t f = 4;
      for (; f < fields.size() && fields[f] != "cpd"; ++f) {
        auto kv = Split(fields[f], '=');
        int64_t attr = 0;
        int64_t value = 0;
        if (kv.size() != 2 || !ParseInt(kv[0], &attr) ||
            !ParseInt(kv[1], &value) || attr < 0 || attr >= num_attrs) {
          return Status::Corruption("bad body item: " + fields[f]);
        }
        rule.body.set_value(static_cast<AttrId>(attr),
                            static_cast<ValueId>(value));
      }
      if (f >= fields.size() || fields[f] != "cpd") {
        return Status::Corruption("rule missing cpd");
      }
      std::vector<double> probs;
      for (++f; f < fields.size(); ++f) {
        double p = 0.0;
        if (!ParseDouble(fields[f], &p)) {
          return Status::Corruption("bad cpd entry");
        }
        probs.push_back(p);
      }
      if (probs.size() !=
          schema->attr(static_cast<AttrId>(a)).cardinality()) {
        return Status::Corruption("cpd arity mismatch");
      }
      rule.cpd = Cpd(std::move(probs));
      rules.push_back(std::move(rule));
    }
    lattices.emplace_back(static_cast<AttrId>(a),
                          static_cast<size_t>(num_attrs),
                          schema->attr(static_cast<AttrId>(a)).cardinality(),
                          std::move(rules));
  }
  return MrslModel(std::move(schema).value(), std::move(lattices));
}

Status SaveModelFile(const MrslModel& model, const std::string& path) {
  return WriteFile(path, ModelToText(model));
}

Result<MrslModel> LoadModelFile(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return ModelFromText(text.value());
}

}  // namespace mrsl
