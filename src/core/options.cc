#include "core/options.h"

namespace mrsl {

const char* VoterChoiceName(VoterChoice c) {
  switch (c) {
    case VoterChoice::kAll:
      return "all";
    case VoterChoice::kBest:
      return "best";
  }
  return "?";
}

const char* VotingSchemeName(VotingScheme s) {
  switch (s) {
    case VotingScheme::kAveraged:
      return "averaged";
    case VotingScheme::kWeighted:
      return "weighted";
  }
  return "?";
}

}  // namespace mrsl
