// Ordered Gibbs sampling over MRSL models (Sec V-A).
//
// The per-attribute lattices play the role of the local conditionals of a
// dependency network (Heckerman et al., JMLR 2000): a chain repeatedly
// cycles through the missing attributes of a tuple, resampling each from
// the voted CPD estimate conditioned on every other attribute's current
// value. After a burn-in of B cycles, N recorded cycles estimate the
// joint distribution Δt over the missing attributes.
//
// Because Gibbs revisits the same evidence states over and over, the
// sampler memoizes conditionals in a CPD cache keyed by
// (attribute, full-state-with-that-attribute-zeroed); see bench_ablation
// for its effect.

#ifndef MRSL_CORE_GIBBS_H_
#define MRSL_CORE_GIBBS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/infer_single.h"
#include "core/model.h"
#include "core/options.h"
#include "relational/joint_dist.h"
#include "util/result.h"

namespace mrsl {

/// Memo table for conditional CPD estimates.
class CpdCache {
 public:
  /// Builds a cache for `schema`; disabled automatically when the packed
  /// state space exceeds 2^64 (cannot happen at the paper's scales).
  explicit CpdCache(const Schema& schema, size_t max_entries_per_attr = 1
                                                                        << 20);

  bool enabled() const { return enabled_; }

  /// Cache key for resampling `attr` in `state` (all cells assigned).
  uint64_t Key(const std::vector<ValueId>& state, AttrId attr) const {
    return codec_.EncodeWithZero(state, attr);
  }

  /// Returns the cached CPD or nullptr.
  const Cpd* Lookup(AttrId attr, uint64_t key);

  /// Inserts unless the per-attribute cap is reached.
  void Insert(AttrId attr, uint64_t key, Cpd cpd);

  /// Drops every entry, optionally changing the per-attribute cap
  /// (kKeepCap leaves it unchanged). Statistics survive.
  static constexpr size_t kKeepCap = static_cast<size_t>(-1);
  void Clear(size_t new_max_entries_per_attr = kKeepCap);

  size_t max_entries_per_attr() const { return max_entries_; }

  /// Entries currently cached for `attr` / across all attributes.
  size_t entries(AttrId attr) const { return maps_[attr].size(); }
  size_t total_entries() const;

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetStats() { hits_ = misses_ = 0; }

 private:
  bool enabled_ = false;
  size_t max_entries_;
  MixedRadix codec_;
  std::vector<std::unordered_map<uint64_t, Cpd>> maps_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Cumulative sampler statistics.
struct GibbsStats {
  uint64_t cycles = 0;          // full resampling sweeps executed
  uint64_t cpd_evaluations = 0; // conditional estimates computed (misses)
  uint64_t cache_hits = 0;      // conditional estimates served from cache
};

/// The ordered Gibbs sampler. Not thread-safe; create one per thread.
/// Designed for reuse: a long-lived sampler (see core/engine.h) keeps its
/// CPD cache and scratch across requests and is re-aimed at a new request
/// stream with Reconfigure().
class GibbsSampler {
 public:
  /// `model` must outlive the sampler.
  GibbsSampler(const MrslModel* model, const GibbsOptions& options);

  /// Re-points a persistent sampler at a new option set: reseeds the RNG
  /// from `options.seed`, resets the statistics, and keeps the CPD cache
  /// warm unless a cache-relevant option (voting method, cache cap)
  /// changed — cached conditionals are pure functions of the model and
  /// those options, so reuse never alters results.
  void Reconfigure(const GibbsOptions& options);

  /// A single tuple's Markov chain.
  struct Chain {
    std::vector<AttrId> missing;   // attributes being resampled
    std::vector<ValueId> state;    // current full assignment (observed
                                   // cells fixed, missing cells evolving)
    bool initialized = false;      // becomes true after the first sweep
  };

  /// Creates a chain for `t`; fails if `t` is complete or has the wrong
  /// arity.
  Result<Chain> MakeChain(const Tuple& t) const;

  /// One ordered-Gibbs sweep: resamples every missing attribute in
  /// ascending order, conditioning on all current values.
  void Step(Chain* chain);

  /// Full single-tuple inference: burn-in + N recorded sweeps, returning
  /// the (smoothed, normalized) empirical joint Δt.
  Result<JointDist> Infer(const Tuple& t);

  /// Builds an empty accumulator distribution for a chain.
  JointDist MakeAccumulator(const Chain& chain) const;

  /// Adds the chain's current missing-value combination to `acc`.
  void Record(const Chain& chain, JointDist* acc) const;

  const GibbsStats& stats() const { return stats_; }
  void ResetStats() { stats_ = GibbsStats(); }
  Rng* rng() { return &rng_; }
  const MrslModel* model() const { return model_; }
  const GibbsOptions& options() const { return options_; }
  const CpdCache& cache() const { return cache_; }

  /// Per-attribute matcher scratch, shared with the workload driver's
  /// non-sampling paths so one context owns all matching state.
  std::vector<Mrsl::MatchScratch>* lattice_scratch() {
    return &lattice_scratch_;
  }

 private:
  /// Conditional estimate for `attr` given every other value in `state`
  /// (consults the cache when the state is fully assigned).
  Cpd EstimateConditional(AttrId attr, const std::vector<ValueId>& state,
                          bool cacheable);

  const MrslModel* model_;
  GibbsOptions options_;
  Rng rng_;
  CpdCache cache_;
  GibbsStats stats_;
  std::vector<uint32_t> match_scratch_;
  // Per-attribute matcher scratch, owned here so concurrent samplers over
  // a shared model never touch shared mutable state.
  std::vector<Mrsl::MatchScratch> lattice_scratch_;
};

}  // namespace mrsl

#endif  // MRSL_CORE_GIBBS_H_
