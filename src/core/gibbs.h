// Ordered Gibbs sampling over MRSL models (Sec V-A).
//
// The per-attribute lattices play the role of the local conditionals of a
// dependency network (Heckerman et al., JMLR 2000): a chain repeatedly
// cycles through the missing attributes of a tuple, resampling each from
// the voted CPD estimate conditioned on every other attribute's current
// value. After a burn-in of B cycles, N recorded cycles estimate the
// joint distribution Δt over the missing attributes.
//
// Because Gibbs revisits the same evidence states over and over, the
// sampler memoizes conditionals in a CPD cache keyed by
// (attribute, full-state-with-that-attribute-zeroed); see bench_ablation
// for its effect.

#ifndef MRSL_CORE_GIBBS_H_
#define MRSL_CORE_GIBBS_H_

#include <cstddef>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/infer_single.h"
#include "core/model.h"
#include "core/options.h"
#include "relational/joint_dist.h"
#include "util/result.h"

namespace mrsl {

/// Memo table for conditional CPD estimates.
class CpdCache {
 public:
  /// Builds a cache for `schema`; disabled automatically when the packed
  /// state space exceeds 2^64 (cannot happen at the paper's scales).
  explicit CpdCache(const Schema& schema, size_t max_entries_per_attr = 1
                                                                        << 20);

  bool enabled() const { return enabled_; }

  /// Cache key for resampling `attr` in `state` (all cells assigned).
  uint64_t Key(const std::vector<ValueId>& state, AttrId attr) const {
    return codec_.EncodeWithZero(state, attr);
  }

  /// Returns the cached CPD or nullptr.
  const Cpd* Lookup(AttrId attr, uint64_t key);

  /// Inserts unless the per-attribute cap is reached.
  void Insert(AttrId attr, uint64_t key, Cpd cpd);

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetStats() { hits_ = misses_ = 0; }

 private:
  bool enabled_ = false;
  size_t max_entries_;
  MixedRadix codec_;
  std::vector<std::unordered_map<uint64_t, Cpd>> maps_;
  uint64_t hits_ = 0;
  uint64_t misses_ = 0;
};

/// Cumulative sampler statistics.
struct GibbsStats {
  uint64_t cycles = 0;          // full resampling sweeps executed
  uint64_t cpd_evaluations = 0; // conditional estimates computed (misses)
  uint64_t cache_hits = 0;      // conditional estimates served from cache
};

/// The ordered Gibbs sampler. Not thread-safe; create one per thread.
class GibbsSampler {
 public:
  /// `model` must outlive the sampler.
  GibbsSampler(const MrslModel* model, const GibbsOptions& options);

  /// A single tuple's Markov chain.
  struct Chain {
    std::vector<AttrId> missing;   // attributes being resampled
    std::vector<ValueId> state;    // current full assignment (observed
                                   // cells fixed, missing cells evolving)
    bool initialized = false;      // becomes true after the first sweep
  };

  /// Creates a chain for `t`; fails if `t` is complete or has the wrong
  /// arity.
  Result<Chain> MakeChain(const Tuple& t) const;

  /// One ordered-Gibbs sweep: resamples every missing attribute in
  /// ascending order, conditioning on all current values.
  void Step(Chain* chain);

  /// Full single-tuple inference: burn-in + N recorded sweeps, returning
  /// the (smoothed, normalized) empirical joint Δt.
  Result<JointDist> Infer(const Tuple& t);

  /// Builds an empty accumulator distribution for a chain.
  JointDist MakeAccumulator(const Chain& chain) const;

  /// Adds the chain's current missing-value combination to `acc`.
  void Record(const Chain& chain, JointDist* acc) const;

  const GibbsStats& stats() const { return stats_; }
  void ResetStats() { stats_ = GibbsStats(); }
  Rng* rng() { return &rng_; }
  const GibbsOptions& options() const { return options_; }

 private:
  /// Conditional estimate for `attr` given every other value in `state`
  /// (consults the cache when the state is fully assigned).
  Cpd EstimateConditional(AttrId attr, const std::vector<ValueId>& state,
                          bool cacheable);

  const MrslModel* model_;
  GibbsOptions options_;
  Rng rng_;
  CpdCache cache_;
  GibbsStats stats_;
  std::vector<uint32_t> match_scratch_;
  // Per-attribute matcher scratch, owned here so concurrent samplers over
  // a shared model never touch shared mutable state.
  std::vector<Mrsl::MatchScratch> lattice_scratch_;
};

}  // namespace mrsl

#endif  // MRSL_CORE_GIBBS_H_
