// Thin composition of the lattice's matching pass and Cpd's averaging:
// collect voters (all matching meta-rules, or only subsumption-maximal
// ones), then combine plain or weighted by rule support. A tuple matching
// no meta-rule at all yields the uniform CPD rather than an error, so a
// too-aggressive support threshold degrades accuracy, not availability.
// The MatchScratch overload exists for the Gibbs inner loop, which calls
// this per attribute per sweep and cannot afford fresh allocations.

#include "core/infer_single.h"

#include <cassert>

namespace mrsl {

Cpd CombineVotes(const Mrsl& lattice, const std::vector<uint32_t>& voters,
                 VotingScheme scheme) {
  assert(!voters.empty());
  std::vector<const Cpd*> cpds;
  cpds.reserve(voters.size());
  for (uint32_t r : voters) cpds.push_back(&lattice.rule(r).cpd);
  if (scheme == VotingScheme::kWeighted) {
    std::vector<double> weights;
    weights.reserve(voters.size());
    for (uint32_t r : voters) weights.push_back(lattice.rule(r).weight);
    return Cpd::WeightedAverage(cpds, weights);
  }
  return Cpd::Average(cpds);
}

Result<Cpd> InferSingleAttribute(const MrslModel& model, const Tuple& t,
                                 AttrId attr, const VotingOptions& voting,
                                 Mrsl::MatchScratch* scratch) {
  if (attr >= model.num_attrs()) {
    return Status::InvalidArgument("attribute id out of range");
  }
  if (t.num_attrs() != model.num_attrs()) {
    return Status::InvalidArgument("tuple arity does not match model");
  }
  if (t.value(attr) != kMissingValue) {
    return Status::InvalidArgument("attribute is not missing in the tuple");
  }
  const Mrsl& lattice = model.mrsl(attr);
  std::vector<uint32_t> voters;
  if (scratch != nullptr) {
    lattice.MatchValues(t.values(), voting.choice, scratch, &voters);
  } else {
    lattice.Match(t, voting.choice, &voters);
  }
  if (voters.empty()) {
    // No evidence at all (e.g. a support threshold that filtered out even
    // the 1-itemsets): uniform fallback keeps the estimate positive.
    return Cpd(lattice.head_card());
  }
  return CombineVotes(lattice, voters, voting.scheme);
}

Result<Cpd> InferSingleAttribute(const MrslModel& model, const Tuple& t,
                                 AttrId attr, const VotingOptions& voting) {
  return InferSingleAttribute(model, t, attr, voting, nullptr);
}

Result<Cpd> InferSingle(const MrslModel& model, const Tuple& t,
                        const VotingOptions& voting) {
  auto missing = t.MissingAttrs();
  if (missing.size() != 1) {
    return Status::InvalidArgument(
        "InferSingle requires exactly one missing attribute, tuple has " +
        std::to_string(missing.size()));
  }
  return InferSingleAttribute(model, t, missing[0], voting);
}

}  // namespace mrsl
