// Back-compat wrapper: the component partitioning, per-component
// deterministic seeding, and result stitching that used to live here
// (with per-call std::thread spawning) moved into the persistent
// mrsl::Engine. This entry point now borrows the process-wide shared
// thread pool through a transient engine, so legacy callers stop paying
// thread start-up per invocation while producing bit-identical results
// for any thread count — the property the concurrency tests pin down.
// New code should hold a long-lived Engine instead (core/engine.h): it
// additionally keeps the per-thread CPD caches warm across calls.

#include "core/workload_parallel.h"

#include "core/engine.h"

namespace mrsl {

Result<std::vector<JointDist>> RunWorkloadParallel(
    const MrslModel& model, const std::vector<Tuple>& workload,
    SamplingMode mode, const WorkloadOptions& options, size_t num_threads,
    WorkloadStats* stats) {
  if (mode == SamplingMode::kAllAtATime) {
    return Status::InvalidArgument(
        "all-at-a-time uses one global chain and cannot run in parallel");
  }
  if (workload.empty()) return std::vector<JointDist>{};

  EngineOptions opts;
  opts.max_parallelism = num_threads;  // 0 = full pool width, as before
  Engine engine(&model, opts);
  return engine.InferBatch(workload, mode, options, stats);
}

}  // namespace mrsl
