// Parallelizes RunWorkload by union-find partitioning of the tuple DAG
// into connected components (sample sharing never crosses components) and
// running each component as an independent sub-workload on a thread pool.
// Each component gets a deterministic seed derived from the base seed and
// an order-independent XOR of its tuple hashes, so results are identical
// regardless of thread count or scheduling — the property the concurrency
// test pins down.

#include "core/workload_parallel.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <thread>

#include "core/tuple_dag.h"
#include "util/timer.h"

namespace mrsl {
namespace {

// Union-find over DAG nodes.
class UnionFind {
 public:
  explicit UnionFind(size_t n) : parent_(n) {
    for (size_t i = 0; i < n; ++i) parent_[i] = static_cast<uint32_t>(i);
  }
  uint32_t Find(uint32_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }
  void Union(uint32_t a, uint32_t b) { parent_[Find(a)] = Find(b); }

 private:
  std::vector<uint32_t> parent_;
};

// Deterministic per-component seed: combines the base seed with the
// hashes of the component's tuples (order-independent via XOR).
uint64_t ComponentSeed(uint64_t base, const std::vector<Tuple>& tuples) {
  TupleHash hasher;
  uint64_t h = 0x6D52534C;  // 'mRSL'
  for (const Tuple& t : tuples) h ^= hasher(t);
  return base ^ (h * 0x9E3779B97F4A7C15ULL);
}

}  // namespace

Result<std::vector<JointDist>> RunWorkloadParallel(
    const MrslModel& model, const std::vector<Tuple>& workload,
    SamplingMode mode, const WorkloadOptions& options, size_t num_threads,
    WorkloadStats* stats) {
  if (mode == SamplingMode::kAllAtATime) {
    return Status::InvalidArgument(
        "all-at-a-time uses one global chain and cannot run in parallel");
  }
  if (workload.empty()) return std::vector<JointDist>{};
  if (num_threads == 0) {
    num_threads = std::max<size_t>(1, std::thread::hardware_concurrency());
  }
  WallTimer timer;

  // Partition the distinct tuples into DAG components.
  TupleDag dag(workload);
  UnionFind uf(dag.num_nodes());
  for (size_t v = 0; v < dag.num_nodes(); ++v) {
    for (uint32_t p : dag.parents(v)) {
      uf.Union(static_cast<uint32_t>(v), p);
    }
  }
  std::vector<std::vector<uint32_t>> components;  // node ids per component
  {
    std::vector<int32_t> comp_of_root(dag.num_nodes(), -1);
    for (size_t v = 0; v < dag.num_nodes(); ++v) {
      uint32_t root = uf.Find(static_cast<uint32_t>(v));
      if (comp_of_root[root] < 0) {
        comp_of_root[root] = static_cast<int32_t>(components.size());
        components.emplace_back();
      }
      components[static_cast<size_t>(comp_of_root[root])].push_back(
          static_cast<uint32_t>(v));
    }
  }

  // Per-component node tuples (the sub-workloads).
  std::vector<std::vector<Tuple>> sub_workloads(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    for (uint32_t node : components[c]) {
      sub_workloads[c].push_back(dag.node(node));
    }
  }

  // Run components on a simple work queue.
  std::vector<std::vector<JointDist>> sub_results(components.size());
  std::vector<WorkloadStats> sub_stats(components.size());
  std::atomic<size_t> next{0};
  std::mutex error_mutex;
  Status first_error = Status::OK();

  auto worker = [&]() {
    while (true) {
      size_t c = next.fetch_add(1);
      if (c >= components.size()) return;
      WorkloadOptions opts = options;
      opts.gibbs.seed =
          ComponentSeed(options.gibbs.seed, sub_workloads[c]);
      auto result = RunWorkload(model, sub_workloads[c], mode, opts,
                                &sub_stats[c]);
      if (!result.ok()) {
        std::lock_guard<std::mutex> lock(error_mutex);
        if (first_error.ok()) first_error = result.status();
        return;
      }
      sub_results[c] = std::move(result).value();
    }
  };
  std::vector<std::thread> threads;
  size_t spawn = std::min(num_threads, components.size());
  threads.reserve(spawn);
  for (size_t t = 0; t < spawn; ++t) threads.emplace_back(worker);
  for (auto& t : threads) t.join();
  if (!first_error.ok()) return first_error;

  // Stitch node results back to workload positions.
  std::vector<const JointDist*> by_node(dag.num_nodes(), nullptr);
  for (size_t c = 0; c < components.size(); ++c) {
    for (size_t i = 0; i < components[c].size(); ++i) {
      by_node[components[c][i]] = &sub_results[c][i];
    }
  }
  std::vector<JointDist> out;
  out.reserve(workload.size());
  for (size_t pos = 0; pos < workload.size(); ++pos) {
    out.push_back(*by_node[dag.workload_to_node()[pos]]);
  }

  if (stats != nullptr) {
    WorkloadStats total;
    for (const WorkloadStats& s : sub_stats) {
      total.points_sampled += s.points_sampled;
      total.burn_in_points += s.burn_in_points;
      total.shared_samples += s.shared_samples;
      total.distinct_tuples += s.distinct_tuples;
      total.cache_hits += s.cache_hits;
      total.cpd_evaluations += s.cpd_evaluations;
    }
    total.wall_seconds = timer.ElapsedSeconds();
    *stats = total;
  }
  return out;
}

}  // namespace mrsl
