// One driver for the four Sec V-B strategies, all sharing the same
// dedup-through-TupleDag front end and accumulator plumbing. In the
// tuple-DAG mode, full sweep states are packed into single mixed-radix
// uint64 codes (hence the hard 64-bit domain-size precondition) so that
// routing a sample down to subsumed descendants is an integer compare +
// decode, not a tuple materialization; nodes activate when all their DAG
// parents complete, and capped sample lists keep memory at O(N) codes per
// node. The independent-product mode never samples: it multiplies
// single-attribute ensemble CPDs cell by cell as the paper's baseline.

#include "core/workload.h"

#include <algorithm>
#include <cassert>

#include "util/timer.h"

namespace mrsl {
namespace {

std::vector<uint32_t> SchemaCards(const Schema& schema) {
  std::vector<uint32_t> cards;
  cards.reserve(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    cards.push_back(static_cast<uint32_t>(schema.attr(a).cardinality()));
  }
  return cards;
}

// Builds the accumulator distribution for one node's missing attributes.
JointDist MakeNodeDist(const Schema& schema, const Tuple& node) {
  std::vector<AttrId> missing = node.MissingAttrs();
  std::vector<uint32_t> cards;
  cards.reserve(missing.size());
  for (AttrId a : missing) {
    cards.push_back(static_cast<uint32_t>(schema.attr(a).cardinality()));
  }
  return JointDist(std::move(missing), std::move(cards));
}

// Accumulates a full-state sample into a node's distribution.
void AccumulateState(const std::vector<ValueId>& state, JointDist* dist) {
  std::vector<ValueId> combo(dist->vars().size());
  for (size_t i = 0; i < dist->vars().size(); ++i) {
    combo[i] = state[dist->vars()[i]];
  }
  dist->add_prob(dist->codec().Encode(combo), 1.0);
}

// True iff `state` agrees with every assigned cell of `node`.
bool StateMatches(const std::vector<ValueId>& state, const Tuple& node) {
  for (AttrId a = 0; a < node.num_attrs(); ++a) {
    ValueId v = node.value(a);
    if (v != kMissingValue && state[a] != v) return false;
  }
  return true;
}

void FinalizeDist(const GibbsOptions& opts, JointDist* dist) {
  if (opts.smoothing_epsilon > 0.0) {
    dist->SmoothAdditive(opts.smoothing_epsilon);
  } else {
    dist->Normalize();
  }
}

Status ValidateWorkload(const MrslModel& model,
                        const std::vector<Tuple>& workload) {
  for (const Tuple& t : workload) {
    if (t.num_attrs() != model.num_attrs()) {
      return Status::InvalidArgument("workload tuple arity mismatch");
    }
    if (t.IsComplete()) {
      return Status::InvalidArgument(
          "workload tuples must have at least one missing value");
    }
  }
  return Status::OK();
}

// Algorithm 3 driver state for one DAG node.
struct NodeState {
  std::vector<uint64_t> own_codes;    // samples drawn by this node's chain
  std::vector<uint64_t> all_codes;    // own + received via sharing, <= N
  bool completed = false;
  bool active = false;
  bool burned = false;
  GibbsSampler::Chain chain;
  bool has_chain = false;
};

}  // namespace

const char* SamplingModeName(SamplingMode mode) {
  switch (mode) {
    case SamplingMode::kTupleAtATime:
      return "tuple-at-a-time";
    case SamplingMode::kTupleDag:
      return "tuple-DAG";
    case SamplingMode::kAllAtATime:
      return "all-at-a-time";
    case SamplingMode::kIndependentProduct:
      return "independent-product";
  }
  return "?";
}

Result<std::vector<JointDist>> RunWorkload(const MrslModel& model,
                                           const std::vector<Tuple>& workload,
                                           SamplingMode mode,
                                           const WorkloadOptions& options,
                                           WorkloadStats* stats) {
  GibbsSampler sampler(&model, options.gibbs);
  return RunWorkloadOn(&sampler, workload, mode, options, stats);
}

Result<std::vector<JointDist>> RunWorkloadOn(
    GibbsSampler* sampler_ptr, const std::vector<Tuple>& workload,
    SamplingMode mode, const WorkloadOptions& options,
    WorkloadStats* stats) {
  GibbsSampler& sampler = *sampler_ptr;
  const MrslModel& model = *sampler.model();
  MRSL_RETURN_IF_ERROR(ValidateWorkload(model, workload));
  WallTimer timer;
  WorkloadStats local;
  // A persistent sampler carries statistics from earlier calls; report
  // only this call's increments.
  const GibbsStats stats_before = sampler.stats();
  const Schema& schema = model.schema();
  const size_t N = options.gibbs.samples;
  const size_t B = options.gibbs.burn_in;

  TupleDag dag(workload);
  local.distinct_tuples = dag.num_nodes();
  std::vector<JointDist> node_dists;
  node_dists.reserve(dag.num_nodes());
  for (size_t i = 0; i < dag.num_nodes(); ++i) {
    node_dists.push_back(MakeNodeDist(schema, dag.node(i)));
  }

  switch (mode) {
    case SamplingMode::kIndependentProduct: {
      // P(a1..ak | evidence) ~= Π P(ai | evidence): per-attribute single
      // inference with only the observed cells as evidence. Matching uses
      // the sampler context's scratch so concurrent runs stay race-free.
      std::vector<Mrsl::MatchScratch>& scratch =
          *sampler.lattice_scratch();
      for (size_t i = 0; i < dag.num_nodes(); ++i) {
        const Tuple& node = dag.node(i);
        JointDist& dist = node_dists[i];
        std::vector<Cpd> cpds;
        for (AttrId a : dist.vars()) {
          auto cpd = InferSingleAttribute(model, node, a,
                                          options.gibbs.voting,
                                          &scratch[a]);
          if (!cpd.ok()) return cpd.status();
          cpds.push_back(std::move(cpd).value());
        }
        std::vector<ValueId> combo(dist.vars().size());
        for (uint64_t code = 0; code < dist.size(); ++code) {
          dist.codec().DecodeInto(code, combo.data());
          double p = 1.0;
          for (size_t k = 0; k < combo.size(); ++k) {
            p *= cpds[k].prob(combo[k]);
          }
          dist.set_prob(code, p);
        }
        dist.Normalize();
      }
      break;
    }

    case SamplingMode::kTupleAtATime: {
      for (size_t i = 0; i < dag.num_nodes(); ++i) {
        auto chain_or = sampler.MakeChain(dag.node(i));
        if (!chain_or.ok()) return chain_or.status();
        GibbsSampler::Chain chain = std::move(chain_or).value();
        for (size_t b = 0; b < B; ++b) sampler.Step(&chain);
        local.burn_in_points += B;
        local.points_sampled += B;
        for (size_t s = 0; s < N; ++s) {
          sampler.Step(&chain);
          ++local.points_sampled;
          sampler.Record(chain, &node_dists[i]);
        }
        FinalizeDist(options.gibbs, &node_dists[i]);
      }
      break;
    }

    case SamplingMode::kTupleDag: {
      MixedRadix codec(SchemaCards(schema));
      if (codec.Saturated()) {
        return Status::FailedPrecondition(
            "schema domain exceeds 64-bit sample codes");
      }
      std::vector<NodeState> nodes(dag.num_nodes());
      std::vector<uint32_t> active = dag.Roots();
      for (uint32_t r : active) nodes[r].active = true;
      size_t completed_count = 0;

      // Promotes every incomplete, inactive node whose parents are all
      // completed (Alg 3 lines 18-20 generalized to transitive sharing).
      auto promote = [&](std::vector<uint32_t>* out) {
        for (uint32_t s = 0; s < dag.num_nodes(); ++s) {
          NodeState& ns = nodes[s];
          if (ns.completed || ns.active) continue;
          bool ready = true;
          for (uint32_t p : dag.parents(s)) {
            if (!nodes[p].completed) {
              ready = false;
              break;
            }
          }
          if (ready) {
            ns.active = true;
            out->push_back(s);
          }
        }
      };

      // Marks a node completed and shares its own samples with every
      // incomplete descendant.
      std::vector<ValueId> decoded(schema.num_attrs());
      auto complete_node = [&](uint32_t x) {
        nodes[x].completed = true;
        nodes[x].active = false;
        ++completed_count;
        for (uint32_t s : dag.descendants(x)) {
          NodeState& ns = nodes[s];
          if (ns.completed) continue;
          for (uint64_t code : nodes[x].own_codes) {
            if (ns.all_codes.size() >= N) break;
            codec.DecodeInto(code, decoded.data());
            if (StateMatches(decoded, dag.node(s))) {
              ns.all_codes.push_back(code);
              ++local.shared_samples;
            }
          }
        }
      };

      size_t cursor = 0;
      while (!active.empty()) {
        if (cursor >= active.size()) cursor = 0;
        uint32_t r = active[cursor];
        NodeState& nr = nodes[r];
        assert(nr.active && !nr.completed);
        if (!nr.has_chain) {
          auto chain_or = sampler.MakeChain(dag.node(r));
          if (!chain_or.ok()) return chain_or.status();
          nr.chain = std::move(chain_or).value();
          nr.has_chain = true;
        }
        if (!nr.burned) {
          for (size_t b = 0; b < B; ++b) sampler.Step(&nr.chain);
          local.burn_in_points += B;
          local.points_sampled += B;
          nr.burned = true;
        }
        sampler.Step(&nr.chain);
        ++local.points_sampled;
        uint64_t code = codec.Encode(nr.chain.state);
        nr.own_codes.push_back(code);
        if (nr.all_codes.size() < N) nr.all_codes.push_back(code);

        if (nr.all_codes.size() >= N) {
          complete_node(r);
          // A shared batch may have pushed descendants to N as well.
          bool changed = true;
          while (changed) {
            changed = false;
            for (uint32_t s = 0; s < dag.num_nodes(); ++s) {
              if (!nodes[s].completed && nodes[s].all_codes.size() >= N) {
                complete_node(s);
                changed = true;
              }
            }
          }
          // Rebuild the active list and promote newly rooted nodes.
          std::vector<uint32_t> next_active;
          for (uint32_t a : active) {
            if (!nodes[a].completed) next_active.push_back(a);
          }
          promote(&next_active);
          for (uint32_t a : next_active) nodes[a].active = true;
          active = std::move(next_active);
          cursor = 0;
        } else {
          ++cursor;
        }
      }
      assert(completed_count == dag.num_nodes());
      (void)completed_count;

      // Turn collected codes into distributions.
      for (size_t i = 0; i < dag.num_nodes(); ++i) {
        for (uint64_t code : nodes[i].all_codes) {
          codec.DecodeInto(code, decoded.data());
          AccumulateState(decoded, &node_dists[i]);
        }
        FinalizeDist(options.gibbs, &node_dists[i]);
      }
      break;
    }

    case SamplingMode::kAllAtATime: {
      MixedRadix codec(SchemaCards(schema));
      if (codec.Saturated()) {
        return Status::FailedPrecondition(
            "schema domain exceeds 64-bit sample codes");
      }
      // One chain over t* = the all-missing tuple.
      Tuple t_star(schema.num_attrs());
      auto chain_or = sampler.MakeChain(t_star);
      if (!chain_or.ok()) return chain_or.status();
      GibbsSampler::Chain chain = std::move(chain_or).value();
      for (size_t b = 0; b < B; ++b) sampler.Step(&chain);
      local.burn_in_points += B;
      local.points_sampled += B;

      std::vector<size_t> counts(dag.num_nodes(), 0);
      size_t remaining = dag.num_nodes();
      while (remaining > 0 &&
             (options.max_total_cycles == 0 ||
              local.points_sampled < options.max_total_cycles)) {
        sampler.Step(&chain);
        ++local.points_sampled;
        for (size_t i = 0; i < dag.num_nodes(); ++i) {
          if (counts[i] >= N) continue;
          if (StateMatches(chain.state, dag.node(i))) {
            AccumulateState(chain.state, &node_dists[i]);
            if (++counts[i] == N) --remaining;
          }
        }
      }
      for (auto& dist : node_dists) FinalizeDist(options.gibbs, &dist);
      break;
    }
  }

  // Map node distributions back to workload positions.
  std::vector<JointDist> out;
  out.reserve(workload.size());
  for (size_t pos = 0; pos < workload.size(); ++pos) {
    out.push_back(node_dists[dag.workload_to_node()[pos]]);
  }

  local.cache_hits = sampler.stats().cache_hits - stats_before.cache_hits;
  local.cpd_evaluations =
      sampler.stats().cpd_evaluations - stats_before.cpd_evaluations;
  local.wall_seconds = timer.ElapsedSeconds();
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace mrsl
