// Option structs for the learning and inference phases.

#ifndef MRSL_CORE_OPTIONS_H_
#define MRSL_CORE_OPTIONS_H_

#include <cstddef>
#include <cstdint>

namespace mrsl {

/// Voter selection mechanism of Algorithm 2 (Sec IV).
enum class VoterChoice {
  kAll,   // every matching meta-rule votes
  kBest,  // only the most specific matches vote (those that do not
          // subsume any other match)
};

/// Vote combination scheme of Algorithm 2 (Sec IV).
enum class VotingScheme {
  kAveraged,  // plain position-wise average of the voters' CPDs
  kWeighted,  // support-weighted average
};

/// Human-readable names ("all averaged", "best weighted", ...).
const char* VoterChoiceName(VoterChoice c);
const char* VotingSchemeName(VotingScheme s);

/// The four voting methods evaluated in Table II / Figs 5-6.
struct VotingOptions {
  VoterChoice choice = VoterChoice::kBest;
  VotingScheme scheme = VotingScheme::kAveraged;
};

/// Parameters of the learning phase (Algorithm 1).
struct LearnOptions {
  /// Support threshold θ for frequent-itemset mining.
  double support_threshold = 0.02;

  /// Apriori round cap (the paper's maxItemsets = 1000).
  size_t max_itemsets = 1000;

  /// Minimum probability assigned to each domain value when smoothing a
  /// meta-rule CPD (the paper uses 0.00001); guarantees positivity, which
  /// the Gibbs sampler requires for convergence.
  double min_prob = 1e-5;
};

/// Parameters of multi-attribute (Gibbs) inference (Sec V).
struct GibbsOptions {
  /// Burn-in cycles B discarded before recording.
  size_t burn_in = 100;

  /// Recorded samples N per tuple.
  size_t samples = 2000;

  /// Voting used for the per-attribute conditionals inside the sampler.
  VotingOptions voting;

  /// Enables the conditional-CPD cache keyed by (attr, evidence state).
  bool enable_cpd_cache = true;

  /// Per-attribute entry cap of the conditional-CPD cache. Bounds the
  /// memory of a long-lived sampler (engine contexts keep their cache
  /// across batches); the cache is insert-only up to the cap.
  size_t cpd_cache_max_entries = size_t{1} << 20;

  /// Pseudo-count added to every cell of the empirical joint before
  /// normalization (Jeffreys-prior style). Keeps unvisited combinations
  /// at a small positive probability so KL divergence against the
  /// estimate stays finite and stable for sparsely sampled domains.
  double smoothing_epsilon = 0.5;

  /// RNG seed for the sampler.
  uint64_t seed = 42;
};

}  // namespace mrsl

#endif  // MRSL_CORE_OPTIONS_H_
