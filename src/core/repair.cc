// Derives distributions for all incomplete rows in one workload pass (so
// repair benefits from tuple-DAG sample sharing), then takes each
// distribution's joint argmax — decoding the single best cell combination
// rather than per-attribute maxima, which could be jointly inconsistent.
// Rows whose argmax probability misses min_confidence pass through
// unrepaired, preserving row order and count. The engine-backed overload
// runs the same argmax pass over batched parallel derivation.

#include "core/repair.h"

namespace mrsl {
namespace {

std::vector<Tuple> IncompleteRows(const Relation& rel) {
  std::vector<Tuple> workload;
  for (uint32_t r : rel.IncompleteRowIndices()) {
    workload.push_back(rel.row(r));
  }
  return workload;
}

// Joint-argmax completion of every incomplete row from its Δt (aligned
// with the incomplete-row order).
Result<Relation> ApplyRepairs(const Relation& rel,
                              const std::vector<JointDist>& dists,
                              const RepairOptions& options,
                              RepairStats* stats) {
  RepairStats local;
  double conf_sum = 0.0;
  Relation out(rel.schema());
  size_t next = 0;
  for (size_t r = 0; r < rel.num_rows(); ++r) {
    const Tuple& row = rel.row(r);
    if (row.IsComplete()) {
      MRSL_RETURN_IF_ERROR(out.Append(row));
      continue;
    }
    const JointDist& dist = dists[next++];
    uint64_t best = dist.ArgMax();
    double confidence = dist.prob(best);
    if (confidence < options.min_confidence) {
      ++local.skipped_low_conf;
      MRSL_RETURN_IF_ERROR(out.Append(row));
      continue;
    }
    std::vector<ValueId> combo(dist.vars().size());
    dist.codec().DecodeInto(best, combo.data());
    Tuple repaired = row;
    for (size_t i = 0; i < dist.vars().size(); ++i) {
      repaired.set_value(dist.vars()[i], combo[i]);
    }
    ++local.repaired;
    conf_sum += confidence;
    MRSL_RETURN_IF_ERROR(out.Append(std::move(repaired)));
  }
  if (local.repaired > 0) {
    local.mean_confidence = conf_sum / static_cast<double>(local.repaired);
  }
  if (stats != nullptr) *stats = local;
  return out;
}

}  // namespace

Result<Relation> RepairRelation(const MrslModel& model, const Relation& rel,
                                const RepairOptions& options,
                                RepairStats* stats) {
  std::vector<Tuple> workload = IncompleteRows(rel);
  std::vector<JointDist> dists;
  if (!workload.empty()) {
    auto result =
        RunWorkload(model, workload, options.mode, options.workload);
    if (!result.ok()) return result.status();
    dists = std::move(result).value();
  }
  return ApplyRepairs(rel, dists, options, stats);
}

Result<Relation> RepairRelation(Engine* engine, const Relation& rel,
                                const RepairOptions& options,
                                RepairStats* stats) {
  auto dists = engine->DeriveBatch(rel, options.mode, options.workload,
                                   options.batch_size);
  if (!dists.ok()) return dists.status();
  return ApplyRepairs(rel, *dists, options, stats);
}

}  // namespace mrsl
