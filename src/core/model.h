// MrslModel: one meta-rule semi-lattice per attribute (Def 2.9) — the
// output of the learning phase and the input of both inference phases.

#ifndef MRSL_CORE_MODEL_H_
#define MRSL_CORE_MODEL_H_

#include <cstddef>
#include <string>
#include <vector>

#include "core/mrsl.h"
#include "relational/schema.h"

namespace mrsl {

/// The learned MRSL model.
class MrslModel {
 public:
  MrslModel() = default;

  /// Takes ownership of the per-attribute lattices (index = attribute id)
  /// and the schema they were learned against.
  MrslModel(Schema schema, std::vector<Mrsl> lattices)
      : schema_(std::move(schema)), lattices_(std::move(lattices)) {}

  const Schema& schema() const { return schema_; }
  size_t num_attrs() const { return lattices_.size(); }
  const Mrsl& mrsl(AttrId a) const { return lattices_[a]; }

  /// Total number of meta-rules across all lattices — the paper's "model
  /// size" metric (Fig 4(c), Fig 9).
  size_t TotalMetaRules() const;

  /// Multi-line dump of every lattice.
  std::string ToString() const;

 private:
  Schema schema_;
  std::vector<Mrsl> lattices_;
};

}  // namespace mrsl

#endif  // MRSL_CORE_MODEL_H_
