#include "core/meta_rule.h"

#include "util/string_util.h"

namespace mrsl {

std::string MetaRule::ToString(const Schema& schema) const {
  std::string out = "P(";
  out += schema.attr(head_attr).name();
  bool first = true;
  for (AttrId a = 0; a < body.num_attrs(); ++a) {
    ValueId v = body.value(a);
    if (v == kMissingValue) continue;
    out += first ? " | " : ", ";
    first = false;
    out += schema.attr(a).name();
    out += '=';
    out += schema.attr(a).label(v);
  }
  out += ") w=";
  out += FormatDouble(weight, 3);
  return out;
}

}  // namespace mrsl
