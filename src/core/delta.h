// Relation deltas and the incremental-derivation planner.
//
// A RelationDelta is the serving-side unit of change: tuples inserted,
// rows replaced in place, rows deleted. ApplyDelta materializes the
// post-delta relation; PlanIncrementalDerivation partitions the new
// workload into the subsumption-DAG components the engine would execute
// (core/engine.h) and classifies each as clean (an identical ordered
// component existed before, so its cached Δt values are bit-identical to
// what a from-scratch derivation would produce) or dirty (must be
// re-inferred). Because the engine seeds every component purely from its
// ordered tuple list, re-inferring only the dirty components and reusing
// the clean ones reproduces a full derivation bit for bit — the
// invariant the versioned store (pdb/store.h) is built on.

#ifndef MRSL_CORE_DELTA_H_
#define MRSL_CORE_DELTA_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "relational/relation.h"
#include "relational/tuple.h"
#include "util/result.h"

namespace mrsl {

/// A batch of changes against one relation version. Deletes and updates
/// address rows by index in the PRE-delta relation; the delta applies as
/// updates first, then deletes (higher indices first), then inserts
/// appended in order — so row indices never shift under the caller's
/// feet while the delta is being described.
struct RelationDelta {
  struct Update {
    uint32_t row = 0;  // index in the pre-delta relation
    Tuple tuple;       // full replacement row ("?" cells allowed)
  };

  std::vector<Tuple> inserts;
  std::vector<Update> updates;
  std::vector<uint32_t> deletes;  // indices in the pre-delta relation

  bool empty() const {
    return inserts.empty() && updates.empty() && deletes.empty();
  }

  /// True when the delta leaves every surviving pre-delta row at its old
  /// index (no deletes): updated rows keep their position and inserts
  /// only append. Block-granular cache carry-forward (pdb/plan_cache.h)
  /// requires this.
  bool IndexStable() const { return deletes.empty(); }
};

/// Materializes the post-delta relation. Fails on out-of-range row
/// indices, duplicate updates/deletes of the same row, an update and a
/// delete addressing the same row, or arity mismatches.
Result<Relation> ApplyDelta(const Relation& rel, const RelationDelta& delta);

/// Parses a delta from CSV. The header must be `op,row` followed by the
/// schema's attribute names in order; each data row is one change:
///
///   insert,,20,HS,?,?     appended tuple (row cell empty)
///   update,3,20,BS,?,100K  replaces row 3 wholesale
///   delete,7,,,,           removes row 7 (value cells ignored)
///
/// Values resolve against `schema` (labels must already exist — the
/// inference model cannot complete unseen labels); "?" or an empty cell
/// marks a missing value.
Result<RelationDelta> ParseDeltaCsv(const Schema& schema,
                                    std::string_view text);

/// Appends the binary wire form of `delta` to `out` (util/wire.h
/// primitives, little-endian) — the payload format of the write-ahead
/// log (pdb/wal.h). Layout:
///
///   [u32 arity]
///   [u32 #inserts][tuples...]
///   [u32 #updates][(u32 row, tuple)...]
///   [u32 #deletes][u32 rows...]
///
/// where a tuple is `arity` i32 cells (kMissingValue for "?").
void SerializeDelta(std::string* out, const RelationDelta& delta);

/// Parses a binary delta against `schema`: arity and every cell value
/// are validated (Corruption on any mismatch, truncation, or trailing
/// bytes — never a crash or partial result).
Result<RelationDelta> DeserializeDelta(const Schema& schema,
                                       std::string_view bytes);

/// The engine-exact component partition of a workload, with each
/// component classified clean/dirty by the caller's cache predicate.
struct IncrementalPlan {
  /// Ordered sub-workloads, exactly as Engine::InferBatch would build
  /// them over `workload`: distinct tuples, grouped into subsumption-DAG
  /// components, each listed in first-appearance (node-id) order.
  std::vector<std::vector<Tuple>> components;

  /// components[i] needs re-inference (no identical cached component).
  std::vector<bool> dirty;

  /// Concatenation of the dirty components, in component order. Feeding
  /// this to Engine::InferBatch as ONE batch re-creates exactly the
  /// dirty components with their canonical per-component seeds.
  std::vector<Tuple> dirty_workload;

  size_t num_dirty_components = 0;
};

/// Partitions `workload` (incomplete tuples, duplicates allowed) into
/// engine components and marks each dirty unless `is_clean(component)`
/// says an identical ordered component is already cached.
IncrementalPlan PlanIncrementalDerivation(
    const std::vector<Tuple>& workload,
    const std::function<bool(const std::vector<Tuple>&)>& is_clean);

/// Order-dependent hash over a tuple sequence — the cache key of an
/// engine component (the per-component seed and sweep schedule both
/// depend on tuple order, so order is part of identity).
struct TupleVectorHash {
  size_t operator()(const std::vector<Tuple>& tuples) const;
};

}  // namespace mrsl

#endif  // MRSL_CORE_DELTA_H_
