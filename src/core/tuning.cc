// Masked-holdout model selection: split the complete rows once (seeded
// shuffle), pre-draw one masked attribute per holdout row, then score
// every candidate threshold on the identical prediction tasks — only the
// learned model varies between candidates, so log-loss differences are
// attributable to θ alone. Best = lowest mean log-loss; top-1 accuracy
// and model size are reported per candidate but do not drive selection.

#include "core/tuning.h"

#include <algorithm>
#include <cmath>

#include "core/infer_single.h"
#include "util/rng.h"

namespace mrsl {

Result<TuningResult> TuneSupportThreshold(const Relation& rel,
                                          const TuningOptions& options) {
  if (options.candidates.empty()) {
    return Status::InvalidArgument("no candidate thresholds");
  }
  if (options.holdout_fraction <= 0.0 || options.holdout_fraction >= 1.0) {
    return Status::InvalidArgument("holdout_fraction must be in (0, 1)");
  }
  std::vector<uint32_t> complete = rel.CompleteRowIndices();
  if (complete.size() < 20) {
    return Status::FailedPrecondition(
        "need at least 20 complete rows to tune");
  }

  // Deterministic split of the complete rows.
  Rng rng(options.seed);
  rng.Shuffle(&complete);
  size_t holdout_size = std::max<size_t>(
      1, static_cast<size_t>(static_cast<double>(complete.size()) *
                             options.holdout_fraction));
  std::vector<uint32_t> holdout(complete.begin(),
                                complete.begin() +
                                    static_cast<long>(holdout_size));
  std::vector<uint32_t> training(complete.begin() +
                                     static_cast<long>(holdout_size),
                                 complete.end());
  if (training.empty()) {
    return Status::FailedPrecondition("holdout leaves no training rows");
  }

  // Pre-draw the masked attribute per holdout row so every candidate is
  // scored on the identical prediction tasks.
  const size_t n_attrs = rel.schema().num_attrs();
  std::vector<AttrId> masked_attr(holdout.size());
  for (size_t i = 0; i < holdout.size(); ++i) {
    masked_attr[i] = static_cast<AttrId>(rng.UniformInt(n_attrs));
  }

  TuningResult result;
  double best_loss = 0.0;
  for (double theta : options.candidates) {
    LearnOptions learn;
    learn.support_threshold = theta;
    learn.max_itemsets = options.max_itemsets;
    auto model = LearnModelFromRows(rel, training, learn);
    if (!model.ok()) return model.status();

    CandidateScore score;
    score.support = theta;
    score.model_size = model->TotalMetaRules();
    double loss_sum = 0.0;
    size_t top1_hits = 0;
    size_t evals = 0;
    std::vector<Mrsl::MatchScratch> scratch(n_attrs);
    for (size_t i = 0; i < holdout.size(); ++i) {
      if (options.max_evaluations != 0 &&
          evals >= options.max_evaluations) {
        break;
      }
      const Tuple& truth = rel.row(holdout[i]);
      AttrId a = masked_attr[i];
      Tuple masked = truth;
      masked.set_value(a, kMissingValue);
      auto cpd = InferSingleAttribute(*model, masked, a, options.voting,
                                      &scratch[a]);
      if (!cpd.ok()) return cpd.status();
      double p = cpd->prob(truth.value(a));
      loss_sum += -std::log(std::max(p, 1e-12));
      top1_hits += cpd->ArgMax() == truth.value(a);
      ++evals;
    }
    if (evals == 0) {
      return Status::Internal("no holdout evaluations performed");
    }
    score.log_loss = loss_sum / static_cast<double>(evals);
    score.top1 = static_cast<double>(top1_hits) / static_cast<double>(evals);
    score.evaluations = evals;

    if (result.scores.empty() || score.log_loss < best_loss) {
      best_loss = score.log_loss;
      result.best_support = theta;
    }
    result.scores.push_back(score);
  }
  return result;
}

}  // namespace mrsl
