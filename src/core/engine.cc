// Batch execution: partition the batch's tuple DAG into connected
// components, run each component through RunWorkloadOn on a checked-out
// context, stitch node results back to batch positions. The per-component
// seed is a pure function of the request seed and the component's tuples,
// so neither the thread count, nor the context checkout order, nor the
// warmth of a context's CPD cache can show up in the output — components
// write to preassigned slots and the first (lowest-index) component error
// wins deterministically.

#include "core/engine.h"

#include <algorithm>
#include <cstddef>
#include <utility>

#include "core/infer_single.h"
#include "core/tuple_dag.h"
#include "pdb/prob_database.h"
#include "util/timer.h"

namespace mrsl {

uint64_t WorkloadComponentSeed(uint64_t base,
                               const std::vector<Tuple>& tuples) {
  TupleHash hasher;
  uint64_t h = 0x6D52534C;  // 'mRSL'
  for (const Tuple& t : tuples) h ^= hasher(t);
  return base ^ (h * 0x9E3779B97F4A7C15ULL);
}

Engine::Engine(MrslModel model, EngineOptions options)
    : owned_model_(std::move(model)),
      model_(&owned_model_),
      options_(options) {
  if (options_.num_threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = &ThreadPool::Global();
  }
}

Engine::Engine(const MrslModel* model, EngineOptions options)
    : model_(model), options_(options) {
  if (options_.num_threads > 0) {
    owned_pool_ = std::make_unique<ThreadPool>(options_.num_threads);
    pool_ = owned_pool_.get();
  } else {
    pool_ = &ThreadPool::Global();
  }
}

InferenceContext* Engine::AcquireContext() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!free_.empty()) {
    InferenceContext* ctx = free_.back();
    free_.pop_back();
    return ctx;
  }
  contexts_.push_back(std::make_unique<InferenceContext>(model_));
  ++stats_.contexts_created;
  return contexts_.back().get();
}

void Engine::ReleaseContext(InferenceContext* ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  free_.push_back(ctx);
}

void Engine::RecordBatch(const WorkloadStats& stats, size_t components,
                         size_t tuples) {
  std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.batches;
  stats_.tuples += tuples;
  stats_.components += components;
  stats_.cache_hits += stats.cache_hits;
  stats_.cpd_evaluations += stats.cpd_evaluations;
}

Result<std::vector<JointDist>> Engine::InferBatch(
    const std::vector<Tuple>& batch, SamplingMode mode,
    const WorkloadOptions& options, WorkloadStats* stats, TraceSpan trace) {
  WallTimer timer;
  if (batch.empty()) {
    if (stats != nullptr) *stats = WorkloadStats();
    return std::vector<JointDist>{};
  }

  if (mode == SamplingMode::kAllAtATime) {
    // One global chain over t*: inherently sequential, one context.
    TraceSpan span = trace.StartChild("component");
    span.SetAttr("tuples", static_cast<int64_t>(batch.size()));
    InferenceContext* ctx = AcquireContext();
    GibbsSampler* sampler = ctx->PrepareSampler(options.gibbs);
    WorkloadStats local;
    auto result = RunWorkloadOn(sampler, batch, mode, options, &local);
    ReleaseContext(ctx);
    span.End();
    if (!result.ok()) return result.status();
    local.wall_seconds = timer.ElapsedSeconds();
    RecordBatch(local, 1, batch.size());
    if (stats != nullptr) *stats = local;
    return result;
  }

  // Partition into DAG components and build the per-component
  // sub-workloads (component node tuples are distinct by construction).
  TupleDag dag(batch);
  const std::vector<std::vector<uint32_t>> components = dag.Components();
  std::vector<std::vector<Tuple>> subs(components.size());
  for (size_t c = 0; c < components.size(); ++c) {
    subs[c].reserve(components[c].size());
    for (uint32_t node : components[c]) subs[c].push_back(dag.node(node));
  }

  std::vector<std::vector<JointDist>> sub_results(components.size());
  std::vector<WorkloadStats> sub_stats(components.size());
  std::vector<Status> sub_status(components.size());

  // Effective executor cap: an explicit max_parallelism wins; otherwise
  // a private pool means "exactly num_threads executors" (ParallelFor's
  // caller participation would otherwise make num_threads=1 two-wide
  // and skew thread-scaling baselines).
  size_t max_parallelism = options_.max_parallelism;
  if (max_parallelism == 0 && owned_pool_ != nullptr) {
    max_parallelism = options_.num_threads;
  }

  pool_->ParallelFor(
      components.size(), max_parallelism, [&](size_t c) {
        TraceSpan span = trace.StartChild("component");
        if (span.active()) {
          span.SetAttr("component", static_cast<int64_t>(c));
          span.SetAttr("tuples", static_cast<int64_t>(subs[c].size()));
        }
        InferenceContext* ctx = AcquireContext();
        WorkloadOptions opts = options;
        opts.gibbs.seed =
            WorkloadComponentSeed(options.gibbs.seed, subs[c]);
        GibbsSampler* sampler = ctx->PrepareSampler(opts.gibbs);
        auto result =
            RunWorkloadOn(sampler, subs[c], mode, opts, &sub_stats[c]);
        if (result.ok()) {
          sub_results[c] = std::move(result).value();
        } else {
          sub_status[c] = result.status();
        }
        ReleaseContext(ctx);
        span.End();
      });

  for (const Status& s : sub_status) {
    if (!s.ok()) return s;
  }

  // Stitch node results back to batch positions.
  std::vector<const JointDist*> by_node(dag.num_nodes(), nullptr);
  for (size_t c = 0; c < components.size(); ++c) {
    for (size_t i = 0; i < components[c].size(); ++i) {
      by_node[components[c][i]] = &sub_results[c][i];
    }
  }
  std::vector<JointDist> out;
  out.reserve(batch.size());
  for (size_t pos = 0; pos < batch.size(); ++pos) {
    out.push_back(*by_node[dag.workload_to_node()[pos]]);
  }

  WorkloadStats total;
  for (const WorkloadStats& s : sub_stats) {
    total.points_sampled += s.points_sampled;
    total.burn_in_points += s.burn_in_points;
    total.shared_samples += s.shared_samples;
    total.distinct_tuples += s.distinct_tuples;
    total.cache_hits += s.cache_hits;
    total.cpd_evaluations += s.cpd_evaluations;
  }
  total.wall_seconds = timer.ElapsedSeconds();
  RecordBatch(total, components.size(), batch.size());
  if (stats != nullptr) *stats = total;
  return out;
}

Result<std::vector<JointDist>> Engine::InferChunked(
    const std::vector<Tuple>& tuples, SamplingMode mode,
    const WorkloadOptions& options, size_t batch_size,
    WorkloadStats* stats) {
  std::vector<JointDist> out;
  out.reserve(tuples.size());
  WorkloadStats total;
  const size_t chunk = batch_size == 0 ? tuples.size() : batch_size;
  for (size_t start = 0; start < tuples.size(); start += chunk) {
    const size_t end = std::min(start + chunk, tuples.size());
    std::vector<Tuple> batch(
        tuples.begin() + static_cast<ptrdiff_t>(start),
        tuples.begin() + static_cast<ptrdiff_t>(end));
    WorkloadStats batch_stats;
    auto dists = InferBatch(batch, mode, options, &batch_stats);
    if (!dists.ok()) return dists.status();
    for (auto& d : *dists) out.push_back(std::move(d));
    total.points_sampled += batch_stats.points_sampled;
    total.burn_in_points += batch_stats.burn_in_points;
    total.shared_samples += batch_stats.shared_samples;
    total.distinct_tuples += batch_stats.distinct_tuples;
    total.cache_hits += batch_stats.cache_hits;
    total.cpd_evaluations += batch_stats.cpd_evaluations;
    total.wall_seconds += batch_stats.wall_seconds;
  }
  if (stats != nullptr) *stats = total;
  return out;
}

Result<JointDist> Engine::Infer(const Tuple& t,
                                const WorkloadOptions& options,
                                SamplingMode mode) {
  auto batch = InferBatch({t}, mode, options);
  if (!batch.ok()) return batch.status();
  return std::move((*batch)[0]);
}

Result<Cpd> Engine::InferAttribute(const Tuple& t, AttrId attr,
                                   const VotingOptions& voting) {
  if (attr >= model_->num_attrs()) {
    return Status::InvalidArgument("attribute id out of range");
  }
  InferenceContext* ctx = AcquireContext();
  auto result = InferSingleAttribute(
      *model_, t, attr, voting, &(*ctx->sampler()->lattice_scratch())[attr]);
  ReleaseContext(ctx);
  return result;
}

Result<std::vector<JointDist>> Engine::DeriveBatch(
    const Relation& rel, SamplingMode mode, const WorkloadOptions& options,
    size_t batch_size, WorkloadStats* stats) {
  std::vector<Tuple> workload;
  workload.reserve(rel.IncompleteRowIndices().size());
  for (uint32_t r : rel.IncompleteRowIndices()) {
    workload.push_back(rel.row(r));
  }
  return InferChunked(workload, mode, options, batch_size, stats);
}

Result<ProbDatabase> Engine::DeriveDatabase(const Relation& rel,
                                            SamplingMode mode,
                                            const WorkloadOptions& options,
                                            double min_prob,
                                            size_t batch_size,
                                            WorkloadStats* stats) {
  auto dists = DeriveBatch(rel, mode, options, batch_size, stats);
  if (!dists.ok()) return dists.status();
  return ProbDatabase::FromInference(rel, *dists, min_prob);
}

EngineStats Engine::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

size_t Engine::context_pool_size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return contexts_.size();
}

}  // namespace mrsl
