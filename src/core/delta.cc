// ApplyDelta validates every row index against the pre-delta relation
// and rejects conflicting changes up front, so a delta either applies
// atomically or not at all. PlanIncrementalDerivation mirrors
// Engine::InferBatch's partitioning exactly (TupleDag over the raw
// workload, Components() in node-id order) — any divergence here would
// silently break the store's bit-identity guarantee, which the tests
// cross-check against from-scratch derivations.

#include "core/delta.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "core/tuple_dag.h"
#include "util/csv.h"
#include "util/string_util.h"
#include "util/wire.h"

namespace mrsl {

Result<Relation> ApplyDelta(const Relation& rel,
                            const RelationDelta& delta) {
  const size_t arity = rel.schema().num_attrs();
  std::unordered_set<uint32_t> touched;
  for (const RelationDelta::Update& u : delta.updates) {
    if (u.row >= rel.num_rows()) {
      return Status::OutOfRange("update row out of range: " +
                                std::to_string(u.row));
    }
    if (u.tuple.num_attrs() != arity) {
      return Status::InvalidArgument("update tuple arity mismatch");
    }
    if (!touched.insert(u.row).second) {
      return Status::InvalidArgument("row changed twice in one delta: " +
                                     std::to_string(u.row));
    }
  }
  for (uint32_t r : delta.deletes) {
    if (r >= rel.num_rows()) {
      return Status::OutOfRange("delete row out of range: " +
                                std::to_string(r));
    }
    if (!touched.insert(r).second) {
      return Status::InvalidArgument("row changed twice in one delta: " +
                                     std::to_string(r));
    }
  }
  for (const Tuple& t : delta.inserts) {
    if (t.num_attrs() != arity) {
      return Status::InvalidArgument("insert tuple arity mismatch");
    }
  }

  std::vector<Tuple> rows(rel.rows());
  for (const RelationDelta::Update& u : delta.updates) {
    rows[u.row] = u.tuple;
  }
  std::vector<uint32_t> deletes = delta.deletes;
  std::sort(deletes.begin(), deletes.end(), std::greater<uint32_t>());
  for (uint32_t r : deletes) {
    rows.erase(rows.begin() + r);
  }
  rows.insert(rows.end(), delta.inserts.begin(), delta.inserts.end());

  Relation out(rel.schema());
  for (Tuple& t : rows) {
    MRSL_RETURN_IF_ERROR(out.Append(std::move(t)));
  }
  return out;
}

namespace {

// Parses the value cells of one delta CSV row into a tuple.
Result<Tuple> ParseDeltaTuple(const Schema& schema,
                              const std::vector<std::string>& cells,
                              size_t first_value_cell) {
  Tuple t(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    const std::string& cell = cells[first_value_cell + a];
    // Missing must be spelled "?": an empty cell is what a truncated
    // line looks like, and silently reading it as missing would apply a
    // weakened row instead of rejecting the damage.
    if (cell.empty()) {
      return Status::InvalidArgument(
          "empty value cell for attribute " + schema.attr(a).name() +
          " (use '?' for a missing value)");
    }
    if (cell == "?") continue;
    ValueId v = schema.attr(a).Find(cell);
    if (v == kMissingValue) {
      return Status::InvalidArgument("unknown value '" + cell +
                                     "' for attribute " +
                                     schema.attr(a).name());
    }
    t.set_value(a, v);
  }
  return t;
}

}  // namespace

Result<RelationDelta> ParseDeltaCsv(const Schema& schema,
                                    std::string_view text) {
  MRSL_ASSIGN_OR_RETURN(std::vector<std::vector<std::string>> rows,
                        ParseCsv(text));
  if (rows.empty()) {
    return Status::InvalidArgument("delta CSV has no header");
  }
  const size_t want_cols = 2 + schema.num_attrs();
  const std::vector<std::string>& header = rows[0];
  if (header.size() != want_cols || header[0] != "op" ||
      header[1] != "row") {
    return Status::InvalidArgument(
        "delta CSV header must be op,row,<schema attributes>");
  }
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    if (header[2 + a] != schema.attr(a).name()) {
      return Status::InvalidArgument("delta CSV column " +
                                     std::to_string(2 + a) + " is '" +
                                     header[2 + a] + "', want '" +
                                     schema.attr(a).name() + "'");
    }
  }

  RelationDelta delta;
  for (size_t r = 1; r < rows.size(); ++r) {
    const std::vector<std::string>& cells = rows[r];
    if (cells.size() != want_cols) {
      return Status::InvalidArgument("delta CSV row " + std::to_string(r) +
                                     " has " + std::to_string(cells.size()) +
                                     " cells, want " +
                                     std::to_string(want_cols));
    }
    const std::string& op = cells[0];
    if (op == "insert") {
      if (!cells[1].empty()) {
        return Status::InvalidArgument("insert must leave the row cell empty");
      }
      MRSL_ASSIGN_OR_RETURN(Tuple t, ParseDeltaTuple(schema, cells, 2));
      delta.inserts.push_back(std::move(t));
      continue;
    }
    int64_t row_index = 0;
    if (!ParseInt(cells[1], &row_index) || row_index < 0 ||
        row_index > std::numeric_limits<uint32_t>::max()) {
      return Status::InvalidArgument("bad row index '" + cells[1] +
                                     "' for op " + op);
    }
    if (op == "update") {
      RelationDelta::Update u;
      u.row = static_cast<uint32_t>(row_index);
      MRSL_ASSIGN_OR_RETURN(u.tuple, ParseDeltaTuple(schema, cells, 2));
      delta.updates.push_back(std::move(u));
    } else if (op == "delete") {
      delta.deletes.push_back(static_cast<uint32_t>(row_index));
    } else {
      return Status::InvalidArgument("unknown delta op '" + op +
                                     "' (want insert/update/delete)");
    }
  }
  return delta;
}

namespace {

void PutDeltaTuple(std::string* out, const Tuple& t) {
  for (AttrId a = 0; a < t.num_attrs(); ++a) {
    wire::PutI32(out, t.value(a));
  }
}

Result<Tuple> ReadDeltaTuple(wire::Cursor* in, const Schema& schema) {
  Tuple t(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    MRSL_ASSIGN_OR_RETURN(int32_t v, in->I32());
    if (v != kMissingValue &&
        (v < 0 || static_cast<size_t>(v) >= schema.attr(a).cardinality())) {
      return Status::Corruption("delta tuple value out of domain");
    }
    t.set_value(a, v);
  }
  return t;
}

}  // namespace

void SerializeDelta(std::string* out, const RelationDelta& delta) {
  uint32_t arity = 0;
  if (!delta.inserts.empty()) {
    arity = delta.inserts[0].num_attrs();
  } else if (!delta.updates.empty()) {
    arity = delta.updates[0].tuple.num_attrs();
  }
  wire::PutU32(out, arity);
  wire::PutU32(out, static_cast<uint32_t>(delta.inserts.size()));
  for (const Tuple& t : delta.inserts) PutDeltaTuple(out, t);
  wire::PutU32(out, static_cast<uint32_t>(delta.updates.size()));
  for (const RelationDelta::Update& u : delta.updates) {
    wire::PutU32(out, u.row);
    PutDeltaTuple(out, u.tuple);
  }
  wire::PutU32(out, static_cast<uint32_t>(delta.deletes.size()));
  for (uint32_t r : delta.deletes) wire::PutU32(out, r);
}

Result<RelationDelta> DeserializeDelta(const Schema& schema,
                                       std::string_view bytes) {
  wire::Cursor in(bytes);
  MRSL_ASSIGN_OR_RETURN(uint32_t arity, in.U32());
  RelationDelta delta;
  const uint64_t tuple_bytes = 4 * std::max<uint64_t>(1, arity);
  MRSL_ASSIGN_OR_RETURN(uint32_t n_inserts, in.U32());
  // The arity only matters once a tuple has to be decoded against the
  // schema; a pure-delete delta serializes arity 0.
  if (n_inserts > 0 && arity != schema.num_attrs()) {
    return Status::Corruption("delta arity does not match the schema");
  }
  MRSL_RETURN_IF_ERROR(in.Fits(n_inserts, tuple_bytes));
  delta.inserts.reserve(n_inserts);
  for (uint32_t i = 0; i < n_inserts; ++i) {
    MRSL_ASSIGN_OR_RETURN(Tuple t, ReadDeltaTuple(&in, schema));
    delta.inserts.push_back(std::move(t));
  }
  MRSL_ASSIGN_OR_RETURN(uint32_t n_updates, in.U32());
  if (n_updates > 0 && arity != schema.num_attrs()) {
    return Status::Corruption("delta arity does not match the schema");
  }
  MRSL_RETURN_IF_ERROR(in.Fits(n_updates, 4 + tuple_bytes));
  delta.updates.reserve(n_updates);
  for (uint32_t i = 0; i < n_updates; ++i) {
    RelationDelta::Update u;
    MRSL_ASSIGN_OR_RETURN(u.row, in.U32());
    MRSL_ASSIGN_OR_RETURN(u.tuple, ReadDeltaTuple(&in, schema));
    delta.updates.push_back(std::move(u));
  }
  MRSL_ASSIGN_OR_RETURN(uint32_t n_deletes, in.U32());
  MRSL_RETURN_IF_ERROR(in.Fits(n_deletes, 4));
  delta.deletes.reserve(n_deletes);
  for (uint32_t i = 0; i < n_deletes; ++i) {
    MRSL_ASSIGN_OR_RETURN(uint32_t r, in.U32());
    delta.deletes.push_back(r);
  }
  if (!in.done()) {
    return Status::Corruption("delta has trailing bytes");
  }
  return delta;
}

IncrementalPlan PlanIncrementalDerivation(
    const std::vector<Tuple>& workload,
    const std::function<bool(const std::vector<Tuple>&)>& is_clean) {
  IncrementalPlan plan;
  if (workload.empty()) return plan;

  TupleDag dag(workload);
  for (const std::vector<uint32_t>& nodes : dag.Components()) {
    std::vector<Tuple> sub;
    sub.reserve(nodes.size());
    for (uint32_t n : nodes) sub.push_back(dag.node(n));
    const bool clean = is_clean(sub);
    plan.dirty.push_back(!clean);
    if (!clean) {
      ++plan.num_dirty_components;
      plan.dirty_workload.insert(plan.dirty_workload.end(), sub.begin(),
                                 sub.end());
    }
    plan.components.push_back(std::move(sub));
  }
  return plan;
}

size_t TupleVectorHash::operator()(const std::vector<Tuple>& tuples) const {
  TupleHash hasher;
  size_t h = 0x9E3779B97F4A7C15ULL;
  for (const Tuple& t : tuples) {
    h ^= hasher(t) + 0x9E3779B9 + (h << 6) + (h >> 2);
  }
  return h;
}

}  // namespace mrsl
