// Automatic support-threshold selection.
//
// Fig 6 shows accuracy hinges on the mining threshold θ, and the best
// value depends on data volume (Fig 5): real deployments have no ground
// truth to sweep against. This module picks θ by masked holdout
// validation: split the complete rows, learn a model per candidate θ on
// the training part, mask one attribute per holdout row, and score the
// predicted CPD against the actually observed value by log-loss (strictly
// proper, so optimizing it recovers the best-calibrated distribution
// estimate) and top-1 accuracy.

#ifndef MRSL_CORE_TUNING_H_
#define MRSL_CORE_TUNING_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/learner.h"
#include "core/options.h"
#include "relational/relation.h"
#include "util/result.h"

namespace mrsl {

/// Controls for TuneSupportThreshold.
struct TuningOptions {
  /// Candidate thresholds, tried in order.
  std::vector<double> candidates = {0.001, 0.005, 0.01, 0.02, 0.05, 0.1};

  /// Fraction of the complete rows held out for validation.
  double holdout_fraction = 0.2;

  /// Voting used for validation predictions.
  VotingOptions voting;

  /// Cap on scored (row, attribute) predictions per candidate (0 = all).
  size_t max_evaluations = 20000;

  /// Apriori round cap (forwarded to learning).
  size_t max_itemsets = 1000;

  /// Seed for the split and masking choices.
  uint64_t seed = 7;
};

/// Scores for one candidate threshold.
struct CandidateScore {
  double support = 0.0;
  double log_loss = 0.0;     // mean -ln P(observed value); lower is better
  double top1 = 0.0;         // fraction of argmax hits
  size_t model_size = 0;     // meta-rules
  size_t evaluations = 0;
};

/// The tuning outcome: every candidate's score plus the winner.
struct TuningResult {
  std::vector<CandidateScore> scores;
  double best_support = 0.0;  // candidate with minimal log-loss
};

/// Runs the holdout sweep over `rel`'s complete rows. Fails when there
/// are too few complete rows to split or no candidates.
Result<TuningResult> TuneSupportThreshold(const Relation& rel,
                                          const TuningOptions& options);

}  // namespace mrsl

#endif  // MRSL_CORE_TUNING_H_
