// Workload-level multi-attribute inference (Sec V-B, Algorithm 3).
//
// Four strategies over a workload Ri of incomplete tuples:
//   * kTupleAtATime — an independent Gibbs chain per distinct tuple (the
//     paper's baseline in Fig 11);
//   * kTupleDag — Algorithm 3: round-robin sampling of the subsumption
//     DAG's roots, sharing each finished node's samples with all the
//     tuples it subsumes (the paper's optimization);
//   * kAllAtATime — one chain over the fully unknown tuple t*; every
//     tuple harvests the samples matching its complete portion (Sec V-A's
//     discussion of why this wastes most samples);
//   * kIndependentProduct — no sampling: the product of per-attribute
//     single-inference estimates, the strawman whose unwarranted
//     independence assumption motivates Gibbs sampling in Sec V.

#ifndef MRSL_CORE_WORKLOAD_H_
#define MRSL_CORE_WORKLOAD_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/gibbs.h"
#include "core/model.h"
#include "core/options.h"
#include "core/tuple_dag.h"
#include "relational/joint_dist.h"
#include "util/result.h"

namespace mrsl {

/// Sampling strategy for a workload.
enum class SamplingMode {
  kTupleAtATime,
  kTupleDag,
  kAllAtATime,
  kIndependentProduct,
};

const char* SamplingModeName(SamplingMode mode);

/// Cost counters for Fig 11.
struct WorkloadStats {
  uint64_t points_sampled = 0;    // Gibbs sweeps executed (incl. burn-in)
  uint64_t burn_in_points = 0;    // sweeps spent on burn-in
  uint64_t shared_samples = 0;    // samples obtained for free via the DAG
  uint64_t distinct_tuples = 0;   // workload size after dedup
  uint64_t cache_hits = 0;
  uint64_t cpd_evaluations = 0;
  double wall_seconds = 0.0;
};

/// Extra knobs for the workload driver.
struct WorkloadOptions {
  GibbsOptions gibbs;

  /// Safety cap on total sweeps for kAllAtATime, whose natural run time
  /// is unbounded when evidence combinations are rare. 0 = no cap.
  uint64_t max_total_cycles = 20'000'000;
};

/// Runs inference for every tuple of `workload` (each must have >= 1
/// missing attribute) and returns one Δt per input position, aligned with
/// the workload order. `stats` may be null.
Result<std::vector<JointDist>> RunWorkload(const MrslModel& model,
                                           const std::vector<Tuple>& workload,
                                           SamplingMode mode,
                                           const WorkloadOptions& options,
                                           WorkloadStats* stats = nullptr);

/// Same driver over a caller-owned sampler — the persistent-engine entry
/// point (core/engine.h): the sampler's CPD cache and scratch survive
/// across calls, so steady-state requests build no per-call state. The
/// sampler must be configured for `options.gibbs` (Reconfigure() with the
/// same options, seed included) before the call; cached conditionals from
/// earlier calls under compatible options are reused and never change
/// results. Reported cache/evaluation stats cover this call only.
Result<std::vector<JointDist>> RunWorkloadOn(
    GibbsSampler* sampler, const std::vector<Tuple>& workload,
    SamplingMode mode, const WorkloadOptions& options,
    WorkloadStats* stats = nullptr);

}  // namespace mrsl

#endif  // MRSL_CORE_WORKLOAD_H_
