// TupleDag: the subsumption DAG over a workload of incomplete tuples
// (Sec V-B, Fig 3). Nodes are the distinct incomplete tuples; tuple u is
// an ancestor of v when u subsumes v (u's complete portion is a proper,
// agreeing subset of v's), so samples drawn for u can be reused for v.

#ifndef MRSL_CORE_TUPLE_DAG_H_
#define MRSL_CORE_TUPLE_DAG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "relational/tuple.h"

namespace mrsl {

/// Subsumption DAG with both Hasse (immediate) edges and transitive
/// descendant lists.
class TupleDag {
 public:
  /// Builds the DAG over `workload`, de-duplicating identical tuples.
  explicit TupleDag(const std::vector<Tuple>& workload);

  size_t num_nodes() const { return nodes_.size(); }
  const Tuple& node(size_t i) const { return nodes_[i]; }

  /// Workload positions that collapsed into node `i`.
  const std::vector<uint32_t>& workload_rows(size_t i) const {
    return rows_[i];
  }

  /// For each workload position, the node it maps to.
  const std::vector<uint32_t>& workload_to_node() const {
    return workload_to_node_;
  }

  /// Immediate (Hasse) subsumers of node `i` — one step more general.
  const std::vector<uint32_t>& parents(size_t i) const { return parents_[i]; }

  /// Immediate subsumees of node `i` — one step more specific.
  const std::vector<uint32_t>& children(size_t i) const {
    return children_[i];
  }

  /// All transitive subsumees of node `i` (every node it subsumes).
  const std::vector<uint32_t>& descendants(size_t i) const {
    return descendants_[i];
  }

  /// Nodes with no parents — Algorithm 3's initial root set.
  std::vector<uint32_t> Roots() const;

  /// Connected components of the (undirected view of the) subsumption
  /// DAG, each a sorted list of node ids. Sample sharing never crosses a
  /// component boundary, so components are the engine's independent
  /// units of parallel work.
  std::vector<std::vector<uint32_t>> Components() const;

 private:
  std::vector<Tuple> nodes_;
  std::vector<std::vector<uint32_t>> rows_;
  std::vector<uint32_t> workload_to_node_;
  std::vector<std::vector<uint32_t>> parents_;
  std::vector<std::vector<uint32_t>> children_;
  std::vector<std::vector<uint32_t>> descendants_;
};

}  // namespace mrsl

#endif  // MRSL_CORE_TUPLE_DAG_H_
