// Construction sorts rules by body size (generality), builds the Hasse
// diagram by pairing rules whose bodies differ by exactly one item
// (sound because Apriori closure records every subset body), and builds
// an inverted index: per (attr, value) postings of the rules whose body
// contains that item. Matching is then counting-based — walk the
// postings of the evidence's assigned cells and emit a rule when its hit
// count reaches its body size — with an epoch trick so the per-rule
// counters never need clearing between calls (MatchScratch makes the
// counters caller-owned for concurrent use; the built-in scratch path is
// NOT thread-safe). MatchLinearScan is kept as the oracle/baseline the
// tests and bench_micro compare the index against.

#include "core/mrsl.h"

#include <algorithm>
#include <cassert>

namespace mrsl {

Mrsl::Mrsl(AttrId head_attr, size_t num_attrs, size_t head_card,
           std::vector<MetaRule> rules)
    : head_attr_(head_attr), head_card_(head_card), rules_(std::move(rules)) {
  // Cache masks/sizes and order by generality (body size ascending) so the
  // Hasse construction can scan level by level.
  for (MetaRule& r : rules_) {
    r.body_mask = r.body.CompleteMask();
    r.body_size = static_cast<uint32_t>(__builtin_popcountll(r.body_mask));
    assert((r.body_mask & (AttrMask{1} << head_attr_)) == 0 &&
           "meta-rule body must not mention the head attribute");
  }
  std::stable_sort(rules_.begin(), rules_.end(),
                   [](const MetaRule& a, const MetaRule& b) {
                     return a.body_size < b.body_size;
                   });
  for (size_t i = 0; i < rules_.size(); ++i) {
    if (rules_[i].body_size == 0) {
      root_ = static_cast<int32_t>(i);
      break;
    }
  }
  BuildHasse();
  BuildIndex(num_attrs);
}

void Mrsl::BuildHasse() {
  const size_t n = rules_.size();
  parents_.assign(n, {});
  children_.assign(n, {});

  // Candidate subsumers of rule j are rules i with body one attribute
  // smaller whose body is a subset of j's. (Meta-rule bodies are frequent
  // itemsets, and Apriori's closure guarantees every subset of a recorded
  // body is recorded too, so immediate Hasse neighbours differ by exactly
  // one item.)
  for (size_t j = 0; j < n; ++j) {
    for (size_t i = 0; i < j; ++i) {
      if (rules_[i].body_size + 1 != rules_[j].body_size) continue;
      if ((rules_[i].body_mask & ~rules_[j].body_mask) != 0) continue;
      if (!rules_[i].body.AgreesOn(rules_[j].body, rules_[i].body_mask)) {
        continue;
      }
      parents_[j].push_back(static_cast<uint32_t>(i));
      children_[i].push_back(static_cast<uint32_t>(j));
    }
  }
}

void Mrsl::BuildIndex(size_t num_attrs) {
  postings_.assign(num_attrs, {});
  empty_body_rules_.clear();
  for (size_t r = 0; r < rules_.size(); ++r) {
    const MetaRule& rule = rules_[r];
    if (rule.body_size == 0) {
      empty_body_rules_.push_back(static_cast<uint32_t>(r));
      continue;
    }
    for (AttrId a = 0; a < rule.body.num_attrs(); ++a) {
      ValueId v = rule.body.value(a);
      if (v == kMissingValue) continue;
      auto& per_attr = postings_[a];
      if (per_attr.size() <= static_cast<size_t>(v)) {
        per_attr.resize(static_cast<size_t>(v) + 1);
      }
      per_attr[static_cast<size_t>(v)].push_back(static_cast<uint32_t>(r));
    }
  }
  scratch_ = MatchScratch();
}

void Mrsl::Match(const Tuple& evidence, VoterChoice choice,
                 std::vector<uint32_t>* out) const {
  MatchValues(evidence.values(), choice, out);
}

void Mrsl::MatchValues(const std::vector<ValueId>& values, VoterChoice choice,
                       std::vector<uint32_t>* out) const {
  MatchValues(values, choice, &scratch_, out);
}

void Mrsl::MatchValues(const std::vector<ValueId>& values, VoterChoice choice,
                       MatchScratch* scratch,
                       std::vector<uint32_t>* out) const {
  if (scratch->hit_count.size() != rules_.size()) {
    scratch->hit_count.assign(rules_.size(), 0);
    scratch->hit_epoch.assign(rules_.size(), 0);
    scratch->epoch = 0;
  }
  out->clear();
  out->insert(out->end(), empty_body_rules_.begin(), empty_body_rules_.end());

  const uint64_t epoch = ++scratch->epoch;
  for (AttrId a = 0; a < values.size(); ++a) {
    if (a == head_attr_) continue;
    ValueId v = values[a];
    if (v == kMissingValue) continue;
    if (a >= postings_.size()) continue;
    const auto& per_attr = postings_[a];
    if (static_cast<size_t>(v) >= per_attr.size()) continue;
    for (uint32_t r : per_attr[static_cast<size_t>(v)]) {
      if (scratch->hit_epoch[r] != epoch) {
        scratch->hit_epoch[r] = epoch;
        scratch->hit_count[r] = 0;
      }
      if (++scratch->hit_count[r] == rules_[r].body_size) {
        out->push_back(r);
      }
    }
  }
  if (choice == VoterChoice::kBest && !out->empty()) {
    FilterBest(rules_, out);
  }
}

std::vector<uint32_t> Mrsl::Match(const Tuple& evidence,
                                  VoterChoice choice) const {
  std::vector<uint32_t> out;
  Match(evidence, choice, &out);
  return out;
}

std::vector<uint32_t> Mrsl::MatchLinearScan(const Tuple& evidence,
                                            VoterChoice choice) const {
  std::vector<uint32_t> out;
  AttrMask ev_mask = evidence.CompleteMask();
  for (size_t r = 0; r < rules_.size(); ++r) {
    const MetaRule& rule = rules_[r];
    if ((rule.body_mask & ~ev_mask) != 0) continue;
    if (rule.body.AgreesOn(evidence, rule.body_mask)) {
      out.push_back(static_cast<uint32_t>(r));
    }
  }
  if (choice == VoterChoice::kBest && !out.empty()) {
    FilterBest(rules_, &out);
  }
  return out;
}

void Mrsl::FilterBest(const std::vector<MetaRule>& rules,
                      std::vector<uint32_t>* matches) {
  // "Best" = matches that do not subsume any other match. Because every
  // match agrees with the same evidence on its body, subsumption between
  // matches reduces to proper containment of body masks.
  std::vector<uint32_t> best;
  for (uint32_t m : *matches) {
    bool subsumes_other = false;
    for (uint32_t other : *matches) {
      if (other == m) continue;
      AttrMask mm = rules[m].body_mask;
      AttrMask om = rules[other].body_mask;
      if (mm != om && (mm & ~om) == 0) {
        subsumes_other = true;  // m's body strictly inside other's
        break;
      }
    }
    if (!subsumes_other) best.push_back(m);
  }
  matches->swap(best);
}

std::string Mrsl::ToString(const Schema& schema) const {
  std::string out;
  for (size_t i = 0; i < rules_.size(); ++i) {
    out += "  [" + std::to_string(i) + "] " + rules_[i].ToString(schema);
    if (!parents_[i].empty()) {
      out += "  parents:";
      for (uint32_t p : parents_[i]) out += " " + std::to_string(p);
    }
    out += '\n';
  }
  return out;
}

}  // namespace mrsl
