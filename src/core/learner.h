// Algorithm 1: learning the MRSL model from the complete part of the data.
//
//   1. ComputeFreqItemsets  — Apriori over attribute-value pairs (mining/)
//   2. ComputeAssocRules    — rules with a single head attribute, NO
//                             confidence threshold (Def 2.5)
//   3. ComputeMetaRules     — group rules sharing a body; smooth CPDs
//   4. ComputeSubsumption   — order meta-rules into per-attribute lattices
//
// In keeping with Sec III we learn from Rc only by default, but callers
// may pass any row subset (e.g. to also exploit the complete portions of
// incomplete tuples).

#ifndef MRSL_CORE_LEARNER_H_
#define MRSL_CORE_LEARNER_H_

#include <cstddef>
#include <vector>

#include "core/model.h"
#include "core/options.h"
#include "mining/apriori.h"
#include "relational/relation.h"
#include "util/result.h"

namespace mrsl {

/// Learning-run statistics (drives the Fig 4 experiments).
struct LearnStats {
  AprioriStats mining;
  size_t num_frequent_itemsets = 0;
  size_t num_association_rules = 0;
  size_t num_meta_rules = 0;
  double mining_seconds = 0.0;
  double rule_seconds = 0.0;
  double total_seconds = 0.0;
};

/// Learns an MRSL model from the complete rows of `rel`.
/// Fails when the complete part is empty or options are invalid.
Result<MrslModel> LearnModel(const Relation& rel, const LearnOptions& options,
                             LearnStats* stats = nullptr);

/// Same, but mines exactly the rows in `row_indices` (all must be
/// complete rows of `rel`).
Result<MrslModel> LearnModelFromRows(const Relation& rel,
                                     const std::vector<uint32_t>& row_indices,
                                     const LearnOptions& options,
                                     LearnStats* stats = nullptr);

}  // namespace mrsl

#endif  // MRSL_CORE_LEARNER_H_
