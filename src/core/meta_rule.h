// AssociationRule (Def 2.5) and MetaRule (Def 2.6).
//
// An association rule pairs a frequent body itemset with one head value of
// one attribute; its confidence estimates P(head | body). A meta-rule
// groups every rule sharing a body and head attribute into a single
// smoothed CPD estimate, weighted by the body's support.

#ifndef MRSL_CORE_META_RULE_H_
#define MRSL_CORE_META_RULE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/cpd.h"
#include "relational/schema.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace mrsl {

/// One mined association rule body -> (head_attr = head_value).
struct AssociationRule {
  AttrId head_attr = 0;
  ValueId head_value = 0;
  /// Body as a pattern tuple (kMissingValue outside the body attributes).
  Tuple body;
  /// conf(r) = supp(body ∪ head) / supp(body).
  double confidence = 0.0;
  /// Absolute match counts backing the confidence.
  uint64_t body_count = 0;
  uint64_t full_count = 0;
};

/// A meta-rule: the ensemble member "P(head_attr | body)".
struct MetaRule {
  AttrId head_attr = 0;

  /// Body pattern; assigns values to body attributes only.
  Tuple body;

  /// Bitmask of the body attributes (cached from `body`).
  AttrMask body_mask = 0;

  /// Number of attribute-value assignments in the body.
  uint32_t body_size = 0;

  /// Relative support of the body (the weight W in Fig 2).
  double weight = 0.0;

  /// Absolute support count of the body.
  uint64_t support_count = 0;

  /// Smoothed, strictly positive estimate of P(head | body).
  Cpd cpd;

  /// Renders e.g. "P(age | edu=HS, inc=50K) w=0.30".
  std::string ToString(const Schema& schema) const;
};

}  // namespace mrsl

#endif  // MRSL_CORE_META_RULE_H_
