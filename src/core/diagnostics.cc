// Diagnostics run on 0/1 indicator series (one per missing-attribute
// value) extracted from a pilot chain: burn-in is the smallest point on a
// 5% grid where every indicator passes a Geweke early-vs-late mean test
// (batch-means variance), and the sample budget is scaled so the slowest-
// mixing modal indicator reaches the target effective sample size, with
// ESS computed via Geyer's initial-monotone-sequence autocorrelation sum.

#include "core/diagnostics.h"

#include <algorithm>
#include <cmath>

namespace mrsl {
namespace {

double Mean(const double* data, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) sum += data[i];
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

// Batch-means variance of the mean estimator over `n` points.
double BatchMeansVarOfMean(const double* data, size_t n) {
  const size_t batch = std::max<size_t>(10, n / 20);
  const size_t num_batches = n / batch;
  if (num_batches < 2) return 0.0;
  std::vector<double> means(num_batches);
  for (size_t b = 0; b < num_batches; ++b) {
    means[b] = Mean(data + b * batch, batch);
  }
  double grand = Mean(means.data(), num_batches);
  double var = 0.0;
  for (double m : means) var += (m - grand) * (m - grand);
  var /= static_cast<double>(num_batches - 1);
  // Var of the overall mean = var of batch means / num_batches.
  return var / static_cast<double>(num_batches);
}

}  // namespace

double GewekeZ(const std::vector<double>& series, double early_frac,
               double late_frac) {
  const size_t n = series.size();
  size_t na = static_cast<size_t>(static_cast<double>(n) * early_frac);
  size_t nb = static_cast<size_t>(static_cast<double>(n) * late_frac);
  if (na < 20 || nb < 20) return 0.0;
  const double* a = series.data();
  const double* b = series.data() + (n - nb);
  double mean_a = Mean(a, na);
  double mean_b = Mean(b, nb);
  double var = BatchMeansVarOfMean(a, na) + BatchMeansVarOfMean(b, nb);
  if (var <= 0.0) {
    // Both windows (near-)constant: converged iff the means agree.
    return std::abs(mean_a - mean_b) < 1e-12 ? 0.0 : 1e9;
  }
  return (mean_a - mean_b) / std::sqrt(var);
}

double EffectiveSampleSize(const std::vector<double>& series) {
  const size_t n = series.size();
  if (n < 10) return static_cast<double>(n);
  double mean = Mean(series.data(), n);
  double var = 0.0;
  for (double x : series) var += (x - mean) * (x - mean);
  var /= static_cast<double>(n);
  if (var <= 0.0) return static_cast<double>(n);

  // Initial positive-sequence estimator: sum autocorrelations while the
  // pairwise sums rho(2k)+rho(2k+1) stay positive.
  double rho_sum = 0.0;
  const size_t max_lag = std::min<size_t>(n / 2, 1000);
  double prev_pair = 1e30;
  for (size_t k = 1; k + 1 <= max_lag; k += 2) {
    auto rho = [&](size_t lag) {
      double acc = 0.0;
      for (size_t i = 0; i + lag < n; ++i) {
        acc += (series[i] - mean) * (series[i + lag] - mean);
      }
      return acc / (static_cast<double>(n) * var);
    };
    double pair = rho(k) + rho(k + 1);
    if (pair <= 0.0) break;
    // Enforce monotone decrease (Geyer's initial monotone sequence).
    pair = std::min(pair, prev_pair);
    prev_pair = pair;
    rho_sum += pair;
  }
  double ess = static_cast<double>(n) / (1.0 + 2.0 * rho_sum);
  return std::clamp(ess, 1.0, static_cast<double>(n));
}

Result<ChainDiagnostics> DiagnoseChain(GibbsSampler* sampler, const Tuple& t,
                                       size_t pilot_sweeps,
                                       double target_ess) {
  if (pilot_sweeps < 200) {
    return Status::InvalidArgument("pilot run needs at least 200 sweeps");
  }
  auto chain_or = sampler->MakeChain(t);
  if (!chain_or.ok()) return chain_or.status();
  GibbsSampler::Chain chain = std::move(chain_or).value();

  // Record the raw value trace per missing attribute.
  const auto& missing = chain.missing;
  std::vector<std::vector<ValueId>> trace(missing.size());
  for (auto& tr : trace) tr.reserve(pilot_sweeps);
  for (size_t s = 0; s < pilot_sweeps; ++s) {
    sampler->Step(&chain);
    for (size_t i = 0; i < missing.size(); ++i) {
      trace[i].push_back(chain.state[missing[i]]);
    }
  }

  // Indicator series per (attr, value); cardinalities are inferred from
  // the observed trace, which suffices for the diagnostics.
  auto indicator = [&](size_t attr_pos, ValueId v) {
    std::vector<double> series(pilot_sweeps);
    for (size_t s = 0; s < pilot_sweeps; ++s) {
      series[s] = trace[attr_pos][s] == v ? 1.0 : 0.0;
    }
    return series;
  };

  // Candidate burn-ins on a 5% grid; pick the smallest that passes
  // Geweke on every indicator.
  ChainDiagnostics diag;
  diag.pilot_sweeps = pilot_sweeps;
  const double kZThreshold = 1.96;
  size_t chosen_burn = pilot_sweeps / 2;  // pessimistic fallback
  for (size_t grid = 0; grid <= 10; ++grid) {
    size_t burn = pilot_sweeps * grid / 20;
    double max_z = 0.0;
    for (size_t i = 0; i < missing.size(); ++i) {
      ValueId max_v = *std::max_element(trace[i].begin(), trace[i].end());
      for (ValueId v = 0; v <= max_v; ++v) {
        auto series = indicator(i, v);
        series.erase(series.begin(),
                     series.begin() + static_cast<long>(burn));
        max_z = std::max(max_z, std::abs(GewekeZ(series)));
      }
    }
    if (max_z < kZThreshold) {
      chosen_burn = burn;
      diag.max_geweke_z = max_z;
      break;
    }
    if (grid == 10) diag.max_geweke_z = max_z;
  }
  diag.suggested_burn_in = chosen_burn;

  // ESS on the modal-value indicator of each attribute, past burn-in.
  double min_ess = static_cast<double>(pilot_sweeps);
  for (size_t i = 0; i < missing.size(); ++i) {
    // Modal value of the post-burn-in trace.
    std::vector<size_t> counts;
    for (size_t s = chosen_burn; s < pilot_sweeps; ++s) {
      size_t v = static_cast<size_t>(trace[i][s]);
      if (counts.size() <= v) counts.resize(v + 1, 0);
      ++counts[v];
    }
    ValueId modal = static_cast<ValueId>(
        std::max_element(counts.begin(), counts.end()) - counts.begin());
    auto series = indicator(i, modal);
    series.erase(series.begin(),
                 series.begin() + static_cast<long>(chosen_burn));
    min_ess = std::min(min_ess, EffectiveSampleSize(series));
  }
  diag.min_ess = min_ess;

  // Scale the post-burn-in run so the slowest indicator reaches the
  // target ESS: samples_per_ess = retained / ess.
  const double retained = static_cast<double>(pilot_sweeps - chosen_burn);
  double per_ess = min_ess > 0.0 ? retained / min_ess : retained;
  diag.suggested_samples =
      static_cast<size_t>(std::ceil(target_ess * per_ess));
  return diag;
}

}  // namespace mrsl
