// Convergence diagnostics for the Gibbs sampler.
//
// Sec V-A: "The length of burn-in (B), and the subsequent number of
// iterations (N), may be estimated using standard techniques." This
// module implements those standard techniques for the categorical chains
// at hand:
//   * Geweke's diagnostic on per-value indicator series (mean of the
//     early window vs the late window, z-scored with batch-means
//     variances) to detect an unconverged prefix, and
//   * effective sample size (ESS) from the indicator autocorrelation
//     function (initial positive-sequence estimator), to translate a
//     target precision into a concrete N.

#ifndef MRSL_CORE_DIAGNOSTICS_H_
#define MRSL_CORE_DIAGNOSTICS_H_

#include <cstddef>
#include <vector>

#include "core/gibbs.h"
#include "util/result.h"

namespace mrsl {

/// Result of a pilot-run diagnosis.
struct ChainDiagnostics {
  size_t pilot_sweeps = 0;

  /// Largest |z| of Geweke's statistic across all (attribute, value)
  /// indicator series, computed after the suggested burn-in. |z| < ~2
  /// indicates no detectable drift.
  double max_geweke_z = 0.0;

  /// Smallest effective sample size across the monitored indicators.
  double min_ess = 0.0;

  /// Smallest prefix whose removal brings every |z| under the 1.96
  /// threshold (rounded up to a 5% grid of the pilot run).
  size_t suggested_burn_in = 0;

  /// Sweeps needed so the slowest-mixing indicator reaches `target_ess`.
  size_t suggested_samples = 0;
};

/// Geweke z-statistic for one series: compares the mean of the first
/// `early_frac` against the last `late_frac` of `series`, with variance
/// estimated by batch means. Returns 0 for degenerate inputs.
double GewekeZ(const std::vector<double>& series, double early_frac = 0.1,
               double late_frac = 0.5);

/// Effective sample size of `series` using the initial positive-sequence
/// autocorrelation estimator. Bounded by series.size().
double EffectiveSampleSize(const std::vector<double>& series);

/// Runs a pilot chain of `pilot_sweeps` for tuple `t` on `sampler` and
/// derives burn-in and sample-count suggestions; `target_ess` is the
/// desired effective sample size (the paper's N=2000 corresponds to
/// target_ess ~= 2000 for a well-mixing chain).
Result<ChainDiagnostics> DiagnoseChain(GibbsSampler* sampler, const Tuple& t,
                                       size_t pilot_sweeps = 2000,
                                       double target_ess = 1000.0);

}  // namespace mrsl

#endif  // MRSL_CORE_DIAGNOSTICS_H_
