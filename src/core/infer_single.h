// Algorithm 2: single-attribute inference.
//
// Given an incomplete tuple and the lattice of its missing attribute,
// collect the matching meta-rules (all or best) and combine their CPDs by
// plain or support-weighted averaging.

#ifndef MRSL_CORE_INFER_SINGLE_H_
#define MRSL_CORE_INFER_SINGLE_H_

#include "core/model.h"
#include "core/options.h"
#include "relational/tuple.h"
#include "util/result.h"

namespace mrsl {

/// Estimates P(attr | complete portion of t). `t` may have any number of
/// assigned attributes; `attr` must be unassigned in `t`. When no
/// meta-rule matches (possible under a harsh support threshold), falls
/// back to the uniform distribution.
/// Thread-compatible; concurrent calls over a shared model must use the
/// scratch overload below.
Result<Cpd> InferSingleAttribute(const MrslModel& model, const Tuple& t,
                                 AttrId attr, const VotingOptions& voting);

/// Thread-safe variant: matching state lives in the caller's `scratch`.
Result<Cpd> InferSingleAttribute(const MrslModel& model, const Tuple& t,
                                 AttrId attr, const VotingOptions& voting,
                                 Mrsl::MatchScratch* scratch);

/// Convenience for tuples with exactly one missing attribute: infers it.
/// Fails if the tuple does not have exactly one missing value.
Result<Cpd> InferSingle(const MrslModel& model, const Tuple& t,
                        const VotingOptions& voting);

/// Shared vote-combination step, exposed for the Gibbs sampler: combines
/// the CPDs of `voters` (rule ids within `lattice`) under `scheme`.
/// `voters` must be non-empty.
Cpd CombineVotes(const Mrsl& lattice, const std::vector<uint32_t>& voters,
                 VotingScheme scheme);

}  // namespace mrsl

#endif  // MRSL_CORE_INFER_SINGLE_H_
