// MRSL model serialization: learning is an offline process (Sec VI-B),
// so learned models can be persisted and loaded independently of the
// training data. Line-oriented text format with full double precision;
// the schema travels with the model so inference needs nothing else.

#ifndef MRSL_CORE_MODEL_IO_H_
#define MRSL_CORE_MODEL_IO_H_

#include <string>

#include "core/model.h"
#include "util/result.h"

namespace mrsl {

/// Serializes a model (schema + every meta-rule with body, weight,
/// support count and CPD) to a text document.
std::string ModelToText(const MrslModel& model);

/// Parses ModelToText output; rebuilds lattices and matching indexes.
Result<MrslModel> ModelFromText(std::string_view text);

/// File convenience wrappers.
Status SaveModelFile(const MrslModel& model, const std::string& path);
Result<MrslModel> LoadModelFile(const std::string& path);

}  // namespace mrsl

#endif  // MRSL_CORE_MODEL_IO_H_
