// Repair: most-probable-completion data cleaning on top of the derived
// distributions — the bridge to the ERACER-style cleaning systems the
// paper compares against (Sec VII). Where the paper's output is the full
// distribution Δt, a cleaning consumer often wants one concrete repair;
// this module materializes the joint argmax (NOT the product of
// per-attribute argmaxes, which can be jointly inconsistent).

#ifndef MRSL_CORE_REPAIR_H_
#define MRSL_CORE_REPAIR_H_

#include <cstddef>
#include <vector>

#include "core/engine.h"
#include "core/model.h"
#include "core/workload.h"
#include "relational/relation.h"
#include "util/result.h"

namespace mrsl {

/// Options for RepairRelation.
struct RepairOptions {
  WorkloadOptions workload;
  SamplingMode mode = SamplingMode::kTupleDag;

  /// Completions whose joint probability falls below this value are left
  /// unrepaired (their "?" cells survive) — a guardrail against
  /// confidently wrong imputations. 0 repairs everything.
  double min_confidence = 0.0;

  /// Engine-backed form only: incomplete rows are derived `batch_size`
  /// tuples per engine batch (0 = one batch). Smaller batches bound
  /// peak memory; batch boundaries limit DAG sample sharing.
  size_t batch_size = 0;
};

/// Per-run statistics.
struct RepairStats {
  size_t repaired = 0;          // rows fully completed
  size_t skipped_low_conf = 0;  // rows left incomplete by the guardrail
  double mean_confidence = 0.0; // mean joint probability of applied repairs
};

/// Returns a copy of `rel` with every incomplete tuple replaced by its
/// most probable completion under the model (single-tuple inference via
/// `mode`). Complete tuples pass through unchanged.
Result<Relation> RepairRelation(const MrslModel& model, const Relation& rel,
                                const RepairOptions& options,
                                RepairStats* stats = nullptr);

/// Engine-backed form: derivation runs batched on the engine's thread
/// pool and warm per-thread contexts (see core/engine.h).
Result<Relation> RepairRelation(Engine* engine, const Relation& rel,
                                const RepairOptions& options,
                                RepairStats* stats = nullptr);

}  // namespace mrsl

#endif  // MRSL_CORE_REPAIR_H_
