// Parallel workload inference (legacy free-function form).
//
// Sample sharing in Algorithm 3 only ever flows along subsumption edges,
// so the connected components of the tuple DAG are fully independent
// units of work. RunWorkloadParallel partitions the workload into those
// components, runs each with its own deterministic per-component seed,
// and stitches the results back together. Results are bit-identical for
// any thread count (including 1), preserving the library's
// reproducibility guarantee.
//
// Since the engine refactor this is a thin wrapper over a transient
// mrsl::Engine borrowing the process-wide thread pool; long-running
// callers should hold their own Engine (core/engine.h) to also reuse
// warm per-thread inference contexts across calls.

#ifndef MRSL_CORE_WORKLOAD_PARALLEL_H_
#define MRSL_CORE_WORKLOAD_PARALLEL_H_

#include <cstddef>

#include "core/workload.h"

namespace mrsl {

/// Parallel counterpart of RunWorkload. `num_threads` 0 uses the
/// hardware concurrency. Supports every SamplingMode except
/// kAllAtATime, whose single global chain cannot be split.
Result<std::vector<JointDist>> RunWorkloadParallel(
    const MrslModel& model, const std::vector<Tuple>& workload,
    SamplingMode mode, const WorkloadOptions& options,
    size_t num_threads = 0, WorkloadStats* stats = nullptr);

}  // namespace mrsl

#endif  // MRSL_CORE_WORKLOAD_PARALLEL_H_
