// Mrsl: the Meta-Rule Semi-Lattice for one attribute (Defs 2.7-2.9) — the
// inference ensemble at the heart of the paper.
//
// Meta-rules are partially ordered by body subsumption (m2 < m1 iff
// body(m1) is a proper subset of body(m2) with agreeing values). The
// lattice stores the Hasse diagram of that order and answers the two
// matching queries of Algorithm 2:
//   * all matches:   every meta-rule whose body is contained in a tuple's
//                    complete portion, and
//   * best matches:  the most specific matches (those that do not subsume
//                    any other match).
//
// Matching is the hot path of Gibbs sampling, so it runs on an inverted
// index of (attr, value) -> rule-id postings with epoch-reset hit counters
// instead of scanning every rule body (see bench_ablation for the payoff).

#ifndef MRSL_CORE_MRSL_H_
#define MRSL_CORE_MRSL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/meta_rule.h"
#include "core/options.h"
#include "relational/schema.h"
#include "relational/tuple.h"

namespace mrsl {

/// The meta-rule semi-lattice of one head attribute.
class Mrsl {
 public:
  Mrsl() = default;

  /// Builds the lattice: takes ownership of the rules, orders them by
  /// subsumption, and prepares the matching index. `num_attrs` is the
  /// schema arity, `head_card` the head attribute's cardinality.
  Mrsl(AttrId head_attr, size_t num_attrs, size_t head_card,
       std::vector<MetaRule> rules);

  AttrId head_attr() const { return head_attr_; }
  size_t head_card() const { return head_card_; }
  size_t num_rules() const { return rules_.size(); }
  const MetaRule& rule(size_t i) const { return rules_[i]; }
  const std::vector<MetaRule>& rules() const { return rules_; }

  /// Immediate subsumers (more general, one Hasse step up) of rule `i`.
  const std::vector<uint32_t>& parents(size_t i) const {
    return parents_[i];
  }

  /// Immediate subsumees (more specific, one step down) of rule `i`.
  const std::vector<uint32_t>& children(size_t i) const {
    return children_[i];
  }

  /// Index of the root meta-rule P(head) with empty body, or -1 if the
  /// support threshold eliminated it.
  int32_t root() const { return root_; }

  /// Per-caller scratch for the hit-counting matcher. Concurrent Match
  /// calls on the same lattice are safe iff each thread passes its own
  /// scratch (the parallel workload runner relies on this).
  struct MatchScratch {
    std::vector<uint32_t> hit_count;
    std::vector<uint64_t> hit_epoch;
    uint64_t epoch = 0;
  };

  /// GetMatchingMetaRules (Algorithm 2): rule ids whose body is satisfied
  /// by the assigned cells of `evidence`, honoring `choice`.
  /// Thread-compatible but not thread-safe (uses internal scratch); for
  /// concurrent matching use the MatchScratch overload below.
  void Match(const Tuple& evidence, VoterChoice choice,
             std::vector<uint32_t>* out) const;

  /// Convenience wrapper returning a fresh vector.
  std::vector<uint32_t> Match(const Tuple& evidence,
                              VoterChoice choice) const;

  /// Allocation-free variant over a raw value vector (the Gibbs sampler's
  /// chain state). Any value stored for the head attribute is ignored, so
  /// chain states can be matched without blanking the resampled cell.
  /// Not thread-safe (internal scratch).
  void MatchValues(const std::vector<ValueId>& values, VoterChoice choice,
                   std::vector<uint32_t>* out) const;

  /// Fully thread-safe variant: all mutable state lives in `scratch`,
  /// which is lazily sized to the lattice on first use.
  void MatchValues(const std::vector<ValueId>& values, VoterChoice choice,
                   MatchScratch* scratch, std::vector<uint32_t>* out) const;

  /// Naive O(rules x body) matcher kept as the ablation baseline and as a
  /// differential-testing oracle for the indexed matcher.
  std::vector<uint32_t> MatchLinearScan(const Tuple& evidence,
                                        VoterChoice choice) const;

  /// Multi-line dump of the lattice (for examples/debugging).
  std::string ToString(const Schema& schema) const;

 private:
  void BuildHasse();
  void BuildIndex(size_t num_attrs);
  static void FilterBest(const std::vector<MetaRule>& rules,
                         std::vector<uint32_t>* matches);

  AttrId head_attr_ = 0;
  size_t head_card_ = 0;
  std::vector<MetaRule> rules_;            // sorted by body_size ascending
  std::vector<std::vector<uint32_t>> parents_;
  std::vector<std::vector<uint32_t>> children_;
  int32_t root_ = -1;

  // Inverted matching index: postings_[attr][value] = rule ids whose body
  // contains (attr, value); empty-body rules always match.
  std::vector<std::vector<std::vector<uint32_t>>> postings_;
  std::vector<uint32_t> empty_body_rules_;

  // Epoch-reset scratch for the convenience (single-threaded) matchers
  // (mutable: Match is logically const).
  mutable MatchScratch scratch_;
};

}  // namespace mrsl

#endif  // MRSL_CORE_MRSL_H_
