// The persistent inference engine: the serving-oriented entry point of
// the library.
//
// Every legacy entry point is a stateless free function that rebuilds its
// working state per call — InferSingleAttribute re-derives matcher
// scratch, each RunWorkload constructs a fresh GibbsSampler (and with it
// a cold CpdCache), and RunWorkloadParallel used to spawn std::threads
// per invocation. An Engine inverts that: it owns a loaded MrslModel, a
// long-lived work-stealing thread pool, and a checkout pool of reusable
// InferenceContexts, so a steady stream of batched requests executes with
// zero per-request index, cache, or thread construction.
//
// Determinism contract: InferBatch partitions a batch into the connected
// components of its tuple-subsumption DAG (sample sharing never crosses
// components) and gives each component an RNG stream seeded by
// WorkloadComponentSeed — a pure function of the request seed and the
// component's tuples. Results are therefore bit-identical for any thread
// count, any EngineOptions, and any interleaving with other batches, and
// they match the legacy RunWorkloadParallel output exactly. Context reuse
// is invisible in the output: a warm CpdCache only returns conditionals
// that recomputation would produce bit-for-bit.

#ifndef MRSL_CORE_ENGINE_H_
#define MRSL_CORE_ENGINE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "core/gibbs.h"
#include "core/model.h"
#include "core/workload.h"
#include "relational/relation.h"
#include "util/result.h"
#include "util/thread_pool.h"
#include "util/trace.h"

namespace mrsl {

// Defined in pdb/prob_database.h; forward-declared so the serving core
// does not depend on the pdb layer's headers (pdb already includes
// core, and the layering stays one-way). DeriveDatabase callers include
// pdb/prob_database.h themselves.
class ProbDatabase;

/// Deterministic per-component seed: combines the request's base seed
/// with an order-independent hash of the component's tuples. Shared by
/// the engine and the legacy parallel runner so both produce identical
/// streams (and exposed for the equivalence tests).
uint64_t WorkloadComponentSeed(uint64_t base, const std::vector<Tuple>& tuples);

/// One worker's reusable inference state: a persistent GibbsSampler
/// bundling the per-attribute MatchScratch, the conditional-CPD cache,
/// the deterministic per-stream RNG, and the match-result scratch
/// buffers. Contexts are checked out of the engine's pool for the span
/// of one component and returned warm; not thread-safe — one checkout,
/// one thread.
class InferenceContext {
 public:
  /// `model` must outlive the context.
  explicit InferenceContext(const MrslModel* model)
      : sampler_(model, GibbsOptions()) {}

  /// Re-aims the context at a request stream: reseeds the RNG from
  /// `options.seed`, keeps the CPD cache warm when the options allow it
  /// (see GibbsSampler::Reconfigure).
  GibbsSampler* PrepareSampler(const GibbsOptions& options) {
    sampler_.Reconfigure(options);
    return &sampler_;
  }

  GibbsSampler* sampler() { return &sampler_; }
  const CpdCache& cache() const { return sampler_.cache(); }

 private:
  GibbsSampler sampler_;
};

/// Engine construction knobs.
struct EngineOptions {
  /// Worker threads. 0 borrows the process-wide shared pool
  /// (ThreadPool::Global()); > 0 gives the engine a private pool AND
  /// caps concurrent executors at exactly that count (so num_threads=1
  /// is genuinely serial — the baseline thread-scaling benchmarks
  /// divide by). Results never depend on this.
  size_t num_threads = 0;

  /// Explicit cap on concurrently executing components per batch
  /// (0 = num_threads when set, otherwise pool width plus the calling
  /// thread). Results never depend on this either.
  size_t max_parallelism = 0;
};

/// Cumulative serving counters (monotone over the engine's lifetime).
struct EngineStats {
  uint64_t batches = 0;            // InferBatch/DeriveBatch calls served
  uint64_t tuples = 0;             // workload tuples answered
  uint64_t components = 0;         // DAG components executed
  uint64_t contexts_created = 0;   // InferenceContexts ever constructed
  uint64_t cache_hits = 0;         // CPD-cache hits across all requests
  uint64_t cpd_evaluations = 0;    // CPD-cache misses (computed CPDs)
};

/// A long-lived inference server over one loaded model. All public
/// methods are thread-safe; concurrent batches share the context pool.
class Engine {
 public:
  /// Owning constructor: the engine holds the model for its lifetime.
  explicit Engine(MrslModel model, EngineOptions options = EngineOptions());

  /// Borrowing constructor: `model` must outlive the engine. Used by the
  /// legacy free-function wrappers.
  explicit Engine(const MrslModel* model,
                  EngineOptions options = EngineOptions());

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const MrslModel& model() const { return *model_; }

  /// Width of the pool this engine schedules on.
  size_t num_threads() const { return pool_->num_threads(); }

  /// Batched multi-attribute inference: one Δt per tuple of `batch`,
  /// aligned with the batch order. Every SamplingMode is supported
  /// (kAllAtATime runs its single global chain on one context).
  /// Deterministic per the contract above. `stats` may be null.
  ///
  /// `trace` (when active) receives one "component" child span per DAG
  /// component executed (attrs: tuples, seed-derived component index);
  /// TraceContext is thread-safe, so the pool workers record into it
  /// directly. Spans never influence inference.
  Result<std::vector<JointDist>> InferBatch(const std::vector<Tuple>& batch,
                                            SamplingMode mode,
                                            const WorkloadOptions& options,
                                            WorkloadStats* stats = nullptr,
                                            TraceSpan trace = TraceSpan());

  /// InferBatch over `tuples` in chunks of `batch_size` (0 = one
  /// batch), concatenating the aligned results and summing `stats`.
  /// Bounds peak memory for very large workloads; chunk boundaries
  /// limit DAG sample sharing, so results depend on batch_size (never
  /// on thread count).
  Result<std::vector<JointDist>> InferChunked(
      const std::vector<Tuple>& tuples, SamplingMode mode,
      const WorkloadOptions& options, size_t batch_size,
      WorkloadStats* stats = nullptr);

  /// Single-tuple convenience: InferBatch of one. The default mode is
  /// the right one for a lone tuple (no DAG to share samples across).
  Result<JointDist> Infer(const Tuple& t, const WorkloadOptions& options,
                          SamplingMode mode = SamplingMode::kTupleAtATime);

  /// Single-attribute inference (Algorithm 2) on a pooled context.
  Result<Cpd> InferAttribute(const Tuple& t, AttrId attr,
                             const VotingOptions& voting);

  /// End-to-end derivation: Δt for every incomplete row of `rel`, in
  /// the order of rel.IncompleteRowIndices(), `batch_size` rows per
  /// engine batch (0 = one batch; see InferChunked). Feed the result to
  /// ProbDatabase::FromInference to materialize the probabilistic
  /// database.
  Result<std::vector<JointDist>> DeriveBatch(const Relation& rel,
                                             SamplingMode mode,
                                             const WorkloadOptions& options,
                                             size_t batch_size = 0,
                                             WorkloadStats* stats = nullptr);

  /// DeriveBatch followed by ProbDatabase::FromInference: the one-call
  /// path from an incomplete relation to the queryable BID database
  /// (the input of pdb/plan.h's extensional plans). Alternatives below
  /// `min_prob` are dropped and each block renormalized.
  Result<ProbDatabase> DeriveDatabase(const Relation& rel, SamplingMode mode,
                                      const WorkloadOptions& options,
                                      double min_prob = 0.0,
                                      size_t batch_size = 0,
                                      WorkloadStats* stats = nullptr);

  /// Snapshot of the serving counters.
  EngineStats stats() const;

  /// Contexts currently alive in the pool (grows to the high-water mark
  /// of concurrent component executions, then stays flat — the reuse the
  /// engine exists for).
  size_t context_pool_size() const;

 private:
  InferenceContext* AcquireContext();
  void ReleaseContext(InferenceContext* ctx);
  void RecordBatch(const WorkloadStats& stats, size_t components,
                   size_t tuples);

  MrslModel owned_model_;        // engaged only by the owning constructor
  const MrslModel* model_;       // always valid
  EngineOptions options_;
  std::unique_ptr<ThreadPool> owned_pool_;  // engaged when num_threads > 0
  ThreadPool* pool_;                        // always valid

  mutable std::mutex mutex_;  // guards contexts_, free_, stats_
  std::vector<std::unique_ptr<InferenceContext>> contexts_;
  std::vector<InferenceContext*> free_;
  EngineStats stats_;
};

}  // namespace mrsl

#endif  // MRSL_CORE_ENGINE_H_
