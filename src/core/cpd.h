// Cpd: an estimated conditional probability distribution over one
// attribute's domain — the Δ(m) attached to every meta-rule (Def 2.6).
//
// Because some head values may fall below the mining support threshold,
// raw rule confidences need not sum to 1; FromConfidences applies the
// paper's smoothing (Sec III): distribute the remaining mass equally and
// enforce a strictly positive floor, then renormalize.

#ifndef MRSL_CORE_CPD_H_
#define MRSL_CORE_CPD_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "relational/value.h"
#include "util/rng.h"

namespace mrsl {

/// A discrete probability distribution over [0, card) with positive mass
/// everywhere.
class Cpd {
 public:
  Cpd() = default;

  /// Uniform distribution over `card` values.
  explicit Cpd(size_t card)
      : probs_(card, card > 0 ? 1.0 / static_cast<double>(card) : 0.0) {}

  /// Builds from raw probabilities; caller guarantees positivity/sum-1.
  explicit Cpd(std::vector<double> probs) : probs_(std::move(probs)) {}

  /// The paper's smoothing: start from the rule confidences (value ->
  /// confidence, missing values 0), spread the leftover 1 - Σconf equally
  /// over all `card` values, clamp every value to at least `min_prob`,
  /// and renormalize.
  static Cpd FromConfidences(
      size_t card, const std::vector<std::pair<ValueId, double>>& confidences,
      double min_prob);

  size_t card() const { return probs_.size(); }
  double prob(ValueId v) const { return probs_[static_cast<size_t>(v)]; }
  const std::vector<double>& probs() const { return probs_; }

  /// Index of the most probable value (ties -> lowest index).
  ValueId ArgMax() const;

  /// Draws a value.
  ValueId Sample(Rng* rng) const;

  /// Position-wise mean of `cpds` (all same cardinality, non-empty).
  static Cpd Average(const std::vector<const Cpd*>& cpds);

  /// Support-weighted mean; weights need not be normalized but must have
  /// a positive total.
  static Cpd WeightedAverage(const std::vector<const Cpd*>& cpds,
                             const std::vector<double>& weights);

 private:
  std::vector<double> probs_;
};

}  // namespace mrsl

#endif  // MRSL_CORE_CPD_H_
