// FromConfidences is where Sec III's smoothing happens: head values whose
// rules fell below the mining threshold get an equal share of the leftover
// confidence mass, then a min_prob positivity floor plus renormalization
// guarantees every value stays reachable — the Gibbs sampler and log-loss
// scoring both rely on CPDs having full support.

#include "core/cpd.h"

#include <algorithm>
#include <cassert>

namespace mrsl {

Cpd Cpd::FromConfidences(
    size_t card, const std::vector<std::pair<ValueId, double>>& confidences,
    double min_prob) {
  assert(card > 0);
  std::vector<double> probs(card, 0.0);
  double mass = 0.0;
  for (const auto& [value, conf] : confidences) {
    assert(value >= 0 && static_cast<size_t>(value) < card);
    probs[static_cast<size_t>(value)] = conf;
    mass += conf;
  }
  // Leftover mass exists when some head values were not frequent enough to
  // yield an association rule; spread it uniformly (Sec III).
  double leftover = 1.0 - mass;
  if (leftover > 0.0) {
    double share = leftover / static_cast<double>(card);
    for (double& p : probs) p += share;
  }
  // Positivity floor + renormalization.
  double total = 0.0;
  for (double& p : probs) {
    p = std::max(p, min_prob);
    total += p;
  }
  for (double& p : probs) p /= total;
  return Cpd(std::move(probs));
}

ValueId Cpd::ArgMax() const {
  return static_cast<ValueId>(
      std::max_element(probs_.begin(), probs_.end()) - probs_.begin());
}

ValueId Cpd::Sample(Rng* rng) const {
  return static_cast<ValueId>(rng->SampleDiscrete(probs_));
}

Cpd Cpd::Average(const std::vector<const Cpd*>& cpds) {
  assert(!cpds.empty());
  const size_t card = cpds[0]->card();
  std::vector<double> probs(card, 0.0);
  for (const Cpd* c : cpds) {
    assert(c->card() == card);
    for (size_t i = 0; i < card; ++i) probs[i] += c->probs_[i];
  }
  for (double& p : probs) p /= static_cast<double>(cpds.size());
  return Cpd(std::move(probs));
}

Cpd Cpd::WeightedAverage(const std::vector<const Cpd*>& cpds,
                         const std::vector<double>& weights) {
  assert(!cpds.empty());
  assert(cpds.size() == weights.size());
  const size_t card = cpds[0]->card();
  std::vector<double> probs(card, 0.0);
  double total_w = 0.0;
  for (size_t k = 0; k < cpds.size(); ++k) {
    assert(cpds[k]->card() == card);
    total_w += weights[k];
    for (size_t i = 0; i < card; ++i) {
      probs[i] += weights[k] * cpds[k]->probs_[i];
    }
  }
  assert(total_w > 0.0);
  for (double& p : probs) p /= total_w;
  return Cpd(std::move(probs));
}

}  // namespace mrsl
