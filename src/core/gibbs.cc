// The sweep resamples each missing attribute from the ensemble CPD for
// the current state (EstimateConditional = lattice match + vote combine).
// Because at most 64 attributes exist, a full state packs into one
// mixed-radix uint64, which keys the per-attribute CpdCache: identical
// sweep states (common once the chain mixes) skip the match entirely.
// The cache is insert-only with a per-attribute entry cap — no eviction —
// and is bypassed during the first sweep while missing cells are still
// unassigned. Estimates are empirical sample counts, normalized (or
// additively smoothed) at the end.

#include "core/gibbs.h"

#include <cassert>

namespace mrsl {
namespace {

std::vector<uint32_t> SchemaCards(const Schema& schema) {
  std::vector<uint32_t> cards;
  cards.reserve(schema.num_attrs());
  for (AttrId a = 0; a < schema.num_attrs(); ++a) {
    cards.push_back(static_cast<uint32_t>(schema.attr(a).cardinality()));
  }
  return cards;
}

}  // namespace

CpdCache::CpdCache(const Schema& schema, size_t max_entries_per_attr)
    : max_entries_(max_entries_per_attr),
      codec_(SchemaCards(schema)),
      maps_(schema.num_attrs()) {
  enabled_ = !codec_.Saturated();
}

const Cpd* CpdCache::Lookup(AttrId attr, uint64_t key) {
  auto& map = maps_[attr];
  auto it = map.find(key);
  if (it == map.end()) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second;
}

void CpdCache::Insert(AttrId attr, uint64_t key, Cpd cpd) {
  auto& map = maps_[attr];
  if (map.size() >= max_entries_) return;
  map.emplace(key, std::move(cpd));
}

void CpdCache::Clear(size_t new_max_entries_per_attr) {
  if (new_max_entries_per_attr != kKeepCap) {
    max_entries_ = new_max_entries_per_attr;
  }
  for (auto& map : maps_) map.clear();
}

size_t CpdCache::total_entries() const {
  size_t total = 0;
  for (const auto& map : maps_) total += map.size();
  return total;
}

GibbsSampler::GibbsSampler(const MrslModel* model, const GibbsOptions& options)
    : model_(model),
      options_(options),
      rng_(options.seed),
      cache_(model->schema(), options.cpd_cache_max_entries),
      lattice_scratch_(model->num_attrs()) {}

void GibbsSampler::Reconfigure(const GibbsOptions& options) {
  const bool cache_compatible =
      options_.voting.choice == options.voting.choice &&
      options_.voting.scheme == options.voting.scheme &&
      options_.cpd_cache_max_entries == options.cpd_cache_max_entries;
  options_ = options;
  rng_ = Rng(options.seed);
  if (!cache_compatible) cache_.Clear(options.cpd_cache_max_entries);
  ResetStats();
}

Result<GibbsSampler::Chain> GibbsSampler::MakeChain(const Tuple& t) const {
  if (t.num_attrs() != model_->num_attrs()) {
    return Status::InvalidArgument("tuple arity does not match model");
  }
  Chain chain;
  chain.missing = t.MissingAttrs();
  if (chain.missing.empty()) {
    return Status::InvalidArgument("tuple is complete; nothing to sample");
  }
  chain.state = t.values();
  return chain;
}

Cpd GibbsSampler::EstimateConditional(AttrId attr,
                                      const std::vector<ValueId>& state,
                                      bool cacheable) {
  const bool use_cache =
      cacheable && options_.enable_cpd_cache && cache_.enabled();
  uint64_t key = 0;
  if (use_cache) {
    key = cache_.Key(state, attr);
    if (const Cpd* hit = cache_.Lookup(attr, key)) {
      ++stats_.cache_hits;
      return *hit;
    }
  }
  ++stats_.cpd_evaluations;
  const Mrsl& lattice = model_->mrsl(attr);
  lattice.MatchValues(state, options_.voting.choice,
                      &lattice_scratch_[attr], &match_scratch_);
  Cpd cpd = match_scratch_.empty()
                ? Cpd(lattice.head_card())
                : CombineVotes(lattice, match_scratch_,
                               options_.voting.scheme);
  if (use_cache) cache_.Insert(attr, key, cpd);
  return cpd;
}

void GibbsSampler::Step(Chain* chain) {
  // During the very first sweep some missing cells are still unassigned,
  // so states are not cacheable until the chain is initialized.
  const bool cacheable = chain->initialized;
  for (AttrId attr : chain->missing) {
    Cpd cpd = EstimateConditional(attr, chain->state, cacheable);
    chain->state[attr] = cpd.Sample(&rng_);
  }
  chain->initialized = true;
  ++stats_.cycles;
}

JointDist GibbsSampler::MakeAccumulator(const Chain& chain) const {
  std::vector<uint32_t> cards;
  cards.reserve(chain.missing.size());
  for (AttrId a : chain.missing) {
    cards.push_back(
        static_cast<uint32_t>(model_->schema().attr(a).cardinality()));
  }
  return JointDist(chain.missing, std::move(cards));
}

void GibbsSampler::Record(const Chain& chain, JointDist* acc) const {
  std::vector<ValueId> combo(chain.missing.size());
  for (size_t i = 0; i < chain.missing.size(); ++i) {
    combo[i] = chain.state[chain.missing[i]];
  }
  acc->add_prob(acc->codec().Encode(combo), 1.0);
}

Result<JointDist> GibbsSampler::Infer(const Tuple& t) {
  auto chain_or = MakeChain(t);
  if (!chain_or.ok()) return chain_or.status();
  Chain chain = std::move(chain_or).value();

  for (size_t b = 0; b < options_.burn_in; ++b) Step(&chain);
  JointDist dist = MakeAccumulator(chain);
  for (size_t s = 0; s < options_.samples; ++s) {
    Step(&chain);
    Record(chain, &dist);
  }
  if (options_.smoothing_epsilon > 0.0) {
    dist.SmoothAdditive(options_.smoothing_epsilon);
  } else {
    dist.Normalize();
  }
  return dist;
}

}  // namespace mrsl
