// Duplicate workload tuples collapse to one node (rows_ remembers which
// workload positions map back to it) before the O(n^2) pairwise
// subsumption pass; the full ancestor sets are kept (descendants_) for
// sample routing, while parent/child edges come from a Hasse reduction
// that drops any ancestor with another ancestor strictly between. Fine
// for workloads of distinct-tuple counts in the thousands; revisit the
// quadratic pass before scaling past that.

#include "core/tuple_dag.h"

#include <unordered_map>

namespace mrsl {

TupleDag::TupleDag(const std::vector<Tuple>& workload) {
  // De-duplicate.
  std::unordered_map<Tuple, uint32_t, TupleHash> index;
  workload_to_node_.reserve(workload.size());
  for (const Tuple& t : workload) {
    auto [it, inserted] =
        index.emplace(t, static_cast<uint32_t>(nodes_.size()));
    if (inserted) {
      nodes_.push_back(t);
      rows_.emplace_back();
    }
    rows_[it->second].push_back(
        static_cast<uint32_t>(workload_to_node_.size()));
    workload_to_node_.push_back(it->second);
  }

  const size_t n = nodes_.size();
  parents_.assign(n, {});
  children_.assign(n, {});
  descendants_.assign(n, {});

  // ancestors[v] = every node subsuming v (transitively).
  std::vector<std::vector<uint32_t>> ancestors(n);
  for (size_t u = 0; u < n; ++u) {
    for (size_t v = 0; v < n; ++v) {
      if (u == v) continue;
      if (nodes_[u].Subsumes(nodes_[v])) {
        ancestors[v].push_back(static_cast<uint32_t>(u));
        descendants_[u].push_back(static_cast<uint32_t>(v));
      }
    }
  }

  // Hasse reduction: u is an immediate parent of v iff no other ancestor w
  // of v lies strictly between them (u subsumes w).
  for (size_t v = 0; v < n; ++v) {
    for (uint32_t u : ancestors[v]) {
      bool immediate = true;
      for (uint32_t w : ancestors[v]) {
        if (w == u) continue;
        if (nodes_[u].Subsumes(nodes_[w])) {
          immediate = false;
          break;
        }
      }
      if (immediate) {
        parents_[v].push_back(u);
        children_[u].push_back(static_cast<uint32_t>(v));
      }
    }
  }
}

std::vector<uint32_t> TupleDag::Roots() const {
  std::vector<uint32_t> roots;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (parents_[i].empty()) roots.push_back(static_cast<uint32_t>(i));
  }
  return roots;
}

std::vector<std::vector<uint32_t>> TupleDag::Components() const {
  // Path-halving union-find over the Hasse edges.
  std::vector<uint32_t> parent(nodes_.size());
  for (size_t i = 0; i < parent.size(); ++i) {
    parent[i] = static_cast<uint32_t>(i);
  }
  auto find = [&parent](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (size_t v = 0; v < nodes_.size(); ++v) {
    for (uint32_t p : parents_[v]) {
      parent[find(static_cast<uint32_t>(v))] = find(p);
    }
  }

  // Group nodes by root; ascending node ids within each component, and
  // components ordered by their smallest node id.
  std::vector<std::vector<uint32_t>> components;
  std::vector<int32_t> comp_of_root(nodes_.size(), -1);
  for (size_t v = 0; v < nodes_.size(); ++v) {
    uint32_t root = find(static_cast<uint32_t>(v));
    if (comp_of_root[root] < 0) {
      comp_of_root[root] = static_cast<int32_t>(components.size());
      components.emplace_back();
    }
    components[static_cast<size_t>(comp_of_root[root])].push_back(
        static_cast<uint32_t>(v));
  }
  return components;
}

}  // namespace mrsl
