#include "server/service.h"

#include <algorithm>
#include <cstdio>
#include <thread>
#include <utility>

#include "core/delta.h"
#include "pdb/fingerprint.h"
#include "pdb/plan.h"
#include "util/log.h"
#include "util/string_util.h"
#include "util/timer.h"
#include "util/trace.h"
#include "util/version.h"

namespace mrsl {
namespace {

// JSON string escaping: quote, backslash, and control characters.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

// %.17g round-trips doubles exactly, so a response body is a pure
// function of the evaluation — the whole-epoch smoke test compares
// bodies byte for byte.
void AppendNum(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  *out += buf;
}

void AppendInterval(std::string* out, const ProbInterval& p) {
  *out += "{\"lo\":";
  AppendNum(out, p.lo);
  *out += ",\"hi\":";
  AppendNum(out, p.hi);
  *out += "}";
}

int HttpCodeFor(const Status& status) {
  switch (status.code()) {
    case StatusCode::kInvalidArgument:
    case StatusCode::kOutOfRange:
      return 400;
    case StatusCode::kNotFound:
      return 404;
    case StatusCode::kFailedPrecondition:
      return 409;
    default:
      return 500;
  }
}

HttpResponse JsonError(const Status& status) {
  HttpResponse resp;
  resp.status = HttpCodeFor(status);
  resp.body = "{\"error\":\"" + JsonEscape(status.ToString()) + "\"}\n";
  return resp;
}

std::string RenderQueryBody(const StoreQueryResult& result,
                            const OracleResult* oracle) {
  const PlanEvaluation& eval = *result.eval;
  std::string body = "{\"epoch\":" + std::to_string(result.epoch) +
                     ",\"plan\":\"" + JsonEscape(result.canonical_text) +
                     "\"";
  switch (eval.kind) {
    case ParsedQuery::Kind::kRelation: {
      body += ",\"kind\":\"relation\",\"safe\":";
      body += eval.result.safe ? "true" : "false";
      body += ",\"rows\":[";
      const Schema& schema = eval.result.schema;
      for (size_t i = 0; i < eval.marginals.size(); ++i) {
        const DistinctMarginal& m = eval.marginals[i];
        if (i > 0) body += ",";
        body += "{\"values\":[";
        for (AttrId a = 0; a < schema.num_attrs(); ++a) {
          if (a > 0) body += ",";
          const ValueId v = m.tuple.value(a);
          body += "\"";
          body += v == kMissingValue ? "?"
                                     : JsonEscape(schema.attr(a).label(v));
          body += "\"";
        }
        body += "],\"p\":";
        AppendInterval(&body, m.prob);
        body += "}";
      }
      body += "]";
      break;
    }
    case ParsedQuery::Kind::kExists:
      body += ",\"kind\":\"exists\",\"safe\":";
      body += eval.exists.safe ? "true" : "false";
      body += ",\"exists\":";
      AppendInterval(&body, eval.exists.prob);
      break;
    case ParsedQuery::Kind::kCount:
      body += ",\"kind\":\"count\",\"safe\":";
      body += eval.count.safe ? "true" : "false";
      body += ",\"count\":";
      AppendInterval(&body, eval.count.expected);
      if (eval.count.has_distribution) {
        body += ",\"distribution\":[";
        for (size_t k = 0; k < eval.count.distribution.size(); ++k) {
          if (k > 0) body += ",";
          AppendNum(&body, eval.count.distribution[k]);
        }
        body += "]";
      }
      break;
  }
  if (oracle != nullptr) {
    body += ",\"oracle\":{\"trials\":" + std::to_string(oracle->trials) +
            ",\"exists\":";
    AppendNum(&body, oracle->exists);
    body += ",\"expected_count\":";
    AppendNum(&body, oracle->expected_count);
    body += "}";
  }
  if (eval.compiled) {
    // compile_seconds is deliberately absent: the entry is cached and a
    // hit must serve the byte-identical body (wall time goes to the
    // mrsl_compile_seconds metric instead).
    const CompileStats& cs = eval.compile_stats;
    body += ",\"compile\":{\"plan_safe\":";
    body += cs.plan_safe ? "true" : "false";
    body += ",\"groups_total\":" + std::to_string(cs.groups_total) +
            ",\"groups_refined\":" + std::to_string(cs.groups_refined) +
            ",\"worlds_expanded\":" + std::to_string(cs.worlds_expanded) +
            ",\"mean_width_base\":";
    AppendNum(&body, cs.mean_width_base);
    body += ",\"mean_width_final\":";
    AppendNum(&body, cs.mean_width_final);
    body += ",\"width_target_met\":";
    body += cs.width_target_met ? "true" : "false";
    body += ",\"budget_exhausted\":";
    body += cs.budget_exhausted ? "true" : "false";
    body += "}";
  }
  body += "}\n";
  return body;
}

}  // namespace

struct StoreService::PendingQuery {
  std::string text;
  TraceSpan span;  // this request's "query" span (usually inert)
  Result<StoreQueryResult> result = Status::Internal("not evaluated");
  bool done = false;
};

struct StoreService::PendingUpdate {
  RelationDelta delta;
  uint64_t expected_epoch = 0;
  TraceSpan span;  // this request's "update" span (usually inert)
  // Insert-only and unpinned: commutes with its group peers, so the
  // leader may fold it into one combined commit.
  bool mergeable = false;
  Result<CommitStats> result = Status::Internal("not committed");
  bool done = false;
};

StoreService::StoreService(BidStore* store, StoreServiceOptions options)
    : store_(store),
      options_(std::move(options)),
      statements_(options_.statement_capacity) {}

void StoreService::Attach(HttpServer* server) {
  metrics_ = server->metrics();
  server->Handle("POST", "/query",
                 [this](const HttpRequest& r) { return HandleQuery(r); });
  server->Handle("POST", "/update",
                 [this](const HttpRequest& r) { return HandleUpdate(r); });
  server->Handle("GET", "/snapshot",
                 [this](const HttpRequest& r) { return HandleSnapshot(r); });
  server->Handle("GET", "/healthz",
                 [this](const HttpRequest& r) { return HandleHealthz(r); });
  server->Handle("GET", "/metrics",
                 [this](const HttpRequest& r) { return HandleMetrics(r); });
  server->Handle("GET", "/debug/traces", [this](const HttpRequest& r) {
    return HandleDebugTraces(r);
  });
  server->Handle("GET", "/debug/slow",
                 [this](const HttpRequest& r) { return HandleDebugSlow(r); });
  server->Handle("GET", "/debug/statements", [this](const HttpRequest& r) {
    return HandleDebugStatements(r);
  });
  server->Handle("POST", "/debug/statements/reset",
                 [this](const HttpRequest& r) {
                   return HandleDebugStatementsReset(r);
                 });
  // The conventional build-metadata gauge: the value is always 1, the
  // interesting part is the label set.
  metrics_
      ->GetGauge("mrsl_build_info",
                 "Build metadata; the value is always 1 and the library "
                 "version travels in the version label.",
                 {{"version", MRSL_VERSION_STRING}})
      ->Set(1.0);
  metrics_
      ->GetGauge("mrsl_process_start_time_seconds",
                 "Unix time the process started, in seconds.")
      ->Set(ProcessStartUnixSeconds());
  metrics_
      ->GetGauge("mrsl_uptime_seconds", "Seconds since process start.")
      ->Set(ProcessUptimeSeconds());
  statements_.BindMetrics(
      metrics_->GetGauge("mrsl_statements_tracked",
                         "Statement digests currently tracked."),
      metrics_->GetCounter(
          "mrsl_statement_evictions_total",
          "Statement digests evicted at the capacity cap (LRU)."));
}

uint64_t StoreService::queries_served() const {
  return metrics_ == nullptr
             ? 0
             : metrics_
                   ->GetCounter("mrsl_queries_total",
                                "Plans evaluated through the store.")
                   ->value();
}

Result<StoreQueryResult> StoreService::BatchedQuery(const std::string& text,
                                                    TraceSpan span) {
  auto mine = std::make_shared<PendingQuery>();
  mine->text = text;
  mine->span = span;
  std::unique_lock<std::mutex> lock(batch_mutex_);
  batch_queue_.push_back(mine);
  // Leadership rotates per drained group: a leader evaluates ONE group
  // (which contains its own entry whenever fewer than max_batch entries
  // are ahead of it), releases leadership, and returns as soon as its
  // entry is done. Under sustained load the next waiter leads the next
  // group, so no request's response is delayed behind later arrivals.
  for (;;) {
    if (mine->done) return std::move(mine->result);
    if (leader_active_) {
      batch_cv_.wait(lock);
      continue;
    }
    leader_active_ = true;
    const size_t group_size =
        batch_queue_.size() < options_.max_batch ? batch_queue_.size()
                                                 : options_.max_batch;
    std::vector<std::shared_ptr<PendingQuery>> group(
        batch_queue_.begin(), batch_queue_.begin() + group_size);
    batch_queue_.erase(batch_queue_.begin(),
                       batch_queue_.begin() + group_size);
    lock.unlock();

    std::vector<std::string> texts;
    std::vector<TraceSpan> spans;
    texts.reserve(group.size());
    spans.reserve(group.size());
    for (const auto& p : group) {
      texts.push_back(p->text);
      spans.push_back(p->span);
    }
    // One pinned snapshot, one PlanCache-aware pass, for the whole group.
    // Followers' spans ride along: the leader evaluates their entries,
    // and TraceContext is thread-safe, so the leader's thread may record
    // spans into a follower's trace.
    std::vector<Result<StoreQueryResult>> results =
        store_->QueryBatch(texts, spans);
    metrics_
        ->GetHistogram("mrsl_query_batch_size",
                       "Plans per pinned-snapshot batch group.",
                       {1, 2, 4, 8, 16, 32, 64, 128})
        ->Observe(static_cast<double>(group.size()));

    lock.lock();
    for (size_t i = 0; i < group.size(); ++i) {
      group[i]->result = std::move(results[i]);
      group[i]->done = true;
    }
    leader_active_ = false;
    batch_cv_.notify_all();
  }
}

void StoreService::ObserveQueryStages(const QueryStageTimes& stages,
                                      bool from_cache) {
  if (metrics_ == nullptr) return;  // not attached: programmatic use
  auto observe = [this](const char* stage, double seconds) {
    metrics_
        ->GetHistogram("mrsl_query_stage_seconds",
                       "Wall time per query stage (parse covers every "
                       "query; evaluate/combine only cache misses).",
                       MetricsRegistry::DefaultLatencyBoundsSeconds(),
                       {{"stage", stage}})
        ->Observe(seconds);
  };
  observe("parse", stages.parse_seconds);
  if (!from_cache) {
    // A hit never ran these stages; observing their zeros would drown
    // the evaluate/combine distributions in cache-hit noise.
    observe("evaluate", stages.evaluate_seconds);
    observe("combine", stages.combine_seconds);
  }
}

void StoreService::UpdateWalGauges() {
  if (metrics_ == nullptr) return;  // not attached: programmatic use
  const WalStats stats = store_->wal_stats();
  metrics_
      ->GetGauge("mrsl_wal_live_records",
                 "WAL records not yet covered by a snapshot.")
      ->Set(static_cast<double>(stats.live_records));
  metrics_
      ->GetGauge("mrsl_wal_live_bytes",
                 "WAL bytes not yet covered by a snapshot.")
      ->Set(static_cast<double>(stats.live_bytes));
  metrics_
      ->GetGauge("mrsl_wal_segments", "WAL segment files on disk.")
      ->Set(static_cast<double>(stats.segments));
}

void StoreService::CommitUpdateGroup(
    const std::vector<std::shared_ptr<PendingUpdate>>& group) {
  // Fold the mergeable run into one combined insert commit: one epoch,
  // one re-derivation, one WAL record.
  std::vector<PendingUpdate*> merged;
  RelationDelta combined;
  for (const auto& p : group) {
    if (!p->mergeable) continue;
    merged.push_back(p.get());
    combined.inserts.insert(combined.inserts.end(), p->delta.inserts.begin(),
                            p->delta.inserts.end());
  }
  if (merged.size() > 1) {
    // The combined commit traces into the first traced member (one
    // commit, one span tree; peers still get their wal_fsync span).
    TraceSpan merged_span;
    for (PendingUpdate* p : merged) {
      if (p->span.active()) {
        merged_span = p->span;
        break;
      }
    }
    Result<CommitStats> stats = store_->ApplyDelta(combined, 0, merged_span);
    if (stats.ok()) {
      for (PendingUpdate* p : merged) p->result = stats;
    } else {
      // One poisoned delta must not fail its peers: fall back to
      // individual commits and let each delta stand on its own.
      for (PendingUpdate* p : merged) {
        p->result = store_->ApplyDelta(p->delta, 0, p->span);
      }
    }
  } else if (merged.size() == 1) {
    merged[0]->result = store_->ApplyDelta(merged[0]->delta, 0,
                                           merged[0]->span);
  }
  for (const auto& p : group) {
    if (p->mergeable) continue;
    p->result = store_->ApplyDelta(p->delta, p->expected_epoch, p->span);
  }

  // ONE fsync covers every record the group appended. Nothing above is
  // acknowledged until this returns OK. Every traced member gets its own
  // "wal_fsync" span bracketing the shared sync — the leader writing
  // into follower traces is safe (TraceContext is thread-safe), and the
  // span makes the group-commit amortization visible per request.
  std::vector<TraceSpan> fsync_spans;
  for (const auto& p : group) {
    if (p->span.active()) {
      fsync_spans.push_back(p->span.StartChild("wal_fsync"));
    }
  }
  WallTimer sync_timer;
  Status synced = store_->SyncWal();
  for (const TraceSpan& s : fsync_spans) s.End();
  if (metrics_ != nullptr) {
    metrics_
        ->GetHistogram("mrsl_wal_sync_seconds",
                       "Group-commit WAL fsync latency.",
                       MetricsRegistry::DefaultLatencyBoundsSeconds())
        ->Observe(sync_timer.ElapsedSeconds());
    metrics_
        ->GetHistogram("mrsl_update_group_size",
                       "Deltas per group-commit batch.",
                       {1, 2, 4, 8, 16, 32, 64})
        ->Observe(static_cast<double>(group.size()));
  }
  if (!synced.ok()) {
    // A commit without its covering fsync may be lost by a crash, so no
    // entry may report success.
    LogError("wal", "group-commit fsync failed; failing the whole group",
             {{"error", synced.ToString()},
              {"group_size", static_cast<uint64_t>(group.size())}});
    for (const auto& p : group) {
      if (p->result.ok()) p->result = synced;
    }
  }
  UpdateWalGauges();
}

Result<CommitStats> StoreService::BatchedUpdate(RelationDelta delta,
                                                uint64_t expected_epoch,
                                                TraceSpan trace) {
  auto mine = std::make_shared<PendingUpdate>();
  mine->mergeable = delta.updates.empty() && delta.deletes.empty() &&
                    expected_epoch == 0;
  mine->delta = std::move(delta);
  mine->expected_epoch = expected_epoch;
  mine->span = trace;
  std::unique_lock<std::mutex> lock(update_mutex_);
  update_queue_.push_back(mine);
  // Same leader rotation as BatchedQuery: one leader commits ONE drained
  // group (fsync included), releases leadership, and returns once its
  // own entry is done.
  for (;;) {
    if (mine->done) return std::move(mine->result);
    if (update_leader_active_) {
      update_cv_.wait(lock);
      continue;
    }
    update_leader_active_ = true;
    if (options_.max_update_batch > 1 && last_update_group_ > 1) {
      // Commit window: writers released by the previous group are
      // re-submitting right now. Waiting a fraction of an fsync for the
      // queue to refill to the last group's size turns a would-be
      // singleton group into a full one — the wait is repaid many times
      // over by the per-member fsync it amortizes. A serial workload
      // never enters (its groups are singletons), so the uncontended
      // path pays nothing.
      WallTimer window;
      while (update_queue_.size() < last_update_group_ &&
             update_queue_.size() < options_.max_update_batch &&
             window.ElapsedSeconds() < 150e-6) {
        lock.unlock();
        std::this_thread::yield();
        lock.lock();
      }
    }
    const size_t group_size =
        update_queue_.size() < options_.max_update_batch
            ? update_queue_.size()
            : options_.max_update_batch;
    std::vector<std::shared_ptr<PendingUpdate>> group(
        update_queue_.begin(), update_queue_.begin() + group_size);
    update_queue_.erase(update_queue_.begin(),
                        update_queue_.begin() + group_size);
    lock.unlock();

    CommitUpdateGroup(group);

    lock.lock();
    for (const auto& p : group) p->done = true;
    last_update_group_ = group.size();
    update_leader_active_ = false;
    update_cv_.notify_all();
  }
}

HttpResponse StoreService::HandleQuery(const HttpRequest& request) {
  WallTimer wall;
  const std::string text(Trim(request.body));
  if (text.empty()) {
    return JsonError(Status::InvalidArgument(
        "empty body; POST the plan text, e.g. count(scan)"));
  }
  // ?trace validation mirrors ?oracle: a malformed value is a 400, never
  // a silent fallback to an untraced answer.
  const std::string trace_param = request.QueryParam("trace", "");
  if (!trace_param.empty() && trace_param != "0" && trace_param != "1") {
    return JsonError(Status::InvalidArgument("?trace must be 0 or 1"));
  }
  // The server created the trace (it owns the sampling decision); the
  // explicit form additionally embeds the span tree in the body.
  const bool explicit_trace = trace_param == "1" && request.trace != nullptr;
  int64_t oracle_trials = 0;
  const std::string oracle_param = request.QueryParam("oracle", "");
  if (!oracle_param.empty() &&
      (!ParseInt(oracle_param, &oracle_trials) || oracle_trials < 0 ||
       static_cast<size_t>(oracle_trials) > options_.max_oracle_trials)) {
    return JsonError(Status::InvalidArgument(
        "?oracle must be an integer in [0, " +
        std::to_string(options_.max_oracle_trials) + "]"));
  }

  // ?width= / ?budget_ms= select the safe-plan compiler. Validation
  // mirrors ?oracle: a malformed or out-of-range value is a 400, never a
  // silent fallback to the plain evaluator.
  CompileOptions copts;
  bool with_compile = false;
  const std::string width_param = request.QueryParam("width", "");
  if (!width_param.empty()) {
    double width = 0.0;
    if (!ParseDouble(width_param, &width) || width < 0.0 || width > 1.0) {
      return JsonError(Status::InvalidArgument(
          "?width must be a bounds-width target in [0, 1]"));
    }
    copts.width_target = width;
    with_compile = true;
  }
  const std::string budget_param = request.QueryParam("budget_ms", "");
  if (!budget_param.empty()) {
    double budget_ms = 0.0;
    if (!ParseDouble(budget_param, &budget_ms) || budget_ms < 0.0 ||
        budget_ms > static_cast<double>(options_.max_compile_budget_ms)) {
      return JsonError(Status::InvalidArgument(
          "?budget_ms must be a number in [0, " +
          std::to_string(options_.max_compile_budget_ms) + "]"));
    }
    copts.budget_ms = budget_ms;
    with_compile = true;
  }

  TraceSpan qspan;
  if (request.trace != nullptr) {
    qspan = request.trace->root().StartChild("query");
  }

  Result<StoreQueryResult> result = Status::Internal("unreachable");
  OracleResult oracle;
  const bool with_oracle = oracle_trials > 0;
  if (with_oracle || with_compile || explicit_trace) {
    // The oracle needs the evaluation's own snapshot, compiled queries
    // carry per-request options the batcher cannot share, and an
    // explicit ?trace=1 wants its own span tree rather than a ride on a
    // leader's batch — all three pin a snapshot themselves instead of
    // riding the batcher.
    SnapshotPtr snap = store_->snapshot();
    result =
        store_->QueryOn(snap, text, with_compile ? &copts : nullptr, qspan);
    if (result.ok() && with_oracle) {
      std::vector<const ProbDatabase*> sources = {&snap->database()};
      auto parsed = ParsePlan(result->canonical_text, sources);
      if (!parsed.ok()) return JsonError(parsed.status());
      OracleOptions oo;
      oo.trials = static_cast<size_t>(oracle_trials);
      TraceSpan ospan = qspan.StartChild("oracle");
      auto estimated = MonteCarloPlanOracle(*parsed->plan, sources, oo);
      if (ospan.active()) {
        ospan.SetAttr("trials", oracle_trials);
        ospan.End();
      }
      if (!estimated.ok()) return JsonError(estimated.status());
      oracle = std::move(estimated).value();
    }
  } else {
    result = BatchedQuery(text, qspan);
  }
  qspan.End();
  if (!result.ok()) {
    // Failed calls still count: a client hammering a broken shape shows
    // up as one error digest, not as silence. The shape is unknown
    // (parsing is what failed), so errors pool under a reserved digest.
    if (options_.track_statements) {
      StatementSample sample;
      sample.kind = "error";
      sample.normalized = "<error>";
      sample.error = true;
      sample.elapsed_seconds = wall.ElapsedSeconds();
      statements_.Record(sample);
    }
    return JsonError(result.status());
  }

  metrics_
      ->GetCounter("mrsl_queries_total",
                   "Plans evaluated through the store.")
      ->Increment();
  metrics_
      ->GetCounter("mrsl_query_cache_total", "Plan-cache consultations.",
                   {{"result", result->from_cache ? "hit" : "miss"}})
      ->Increment();
  ObserveQueryStages(result->stages, result->from_cache);
  if (with_compile && result->eval->compiled) {
    if (!result->from_cache) {
      // Compilation IS the evaluate stage of a compiled miss.
      metrics_
          ->GetHistogram("mrsl_compile_seconds",
                         "Wall time in CompileQuery (cache misses only).",
                         MetricsRegistry::DefaultLatencyBoundsSeconds())
          ->Observe(result->stages.evaluate_seconds);
    }
    metrics_
        ->GetHistogram(
            "mrsl_bounds_width",
            "Mean [lower, upper] envelope width of compiled answers.",
            {0.0, 0.001, 0.005, 0.01, 0.05, 0.1, 0.25, 0.5, 1.0})
        ->Observe(result->eval->compile_stats.mean_width_final);
  }

  HttpResponse resp;
  resp.body = RenderQueryBody(*result, with_oracle ? &oracle : nullptr);
  if (explicit_trace) {
    // EXPLAIN ANALYZE: splice the query span subtree in before the
    // closing brace. Everything before this field is byte-identical to
    // the untraced body (spans never touch the evaluation or the cache).
    resp.body.erase(resp.body.size() - 2);  // "}\n"
    resp.body += ",\"trace\":{\"trace_id\":\"" +
                 request.trace->trace_id_hex() + "\",\"fingerprint\":\"" +
                 FingerprintHex(result->fingerprint) + "\",\"spans\":" +
                 SpanSubtreeJson(*request.trace, qspan.index()) + "}}\n";
  }
  resp.extra_headers.emplace_back("X-Mrsl-Epoch",
                                  std::to_string(result->epoch));
  resp.extra_headers.emplace_back("X-Mrsl-Cache",
                                  result->from_cache ? "hit" : "miss");
  if (request.trace != nullptr) {
    // The link from a response (and its /debug/slow entry) to its
    // /debug/traces record.
    resp.extra_headers.emplace_back("X-Mrsl-Trace-Id",
                                    request.trace->trace_id_hex());
  }
  if (with_compile) {
    resp.extra_headers.emplace_back(
        "X-Mrsl-Compiled",
        result->eval->compile_stats.plan_safe ? "safe" : "bounds");
  }

  const double elapsed_ms = wall.ElapsedSeconds() * 1000.0;
  if (options_.track_statements) {
    StatementSample sample;
    sample.fingerprint = result->fingerprint;
    sample.kind = QueryKindName(result->eval->kind);
    sample.normalized = result->normalized_text;
    sample.cache_hit = result->from_cache;
    sample.compiled = result->eval->compiled;
    sample.elapsed_seconds = elapsed_ms / 1000.0;
    sample.resources = result->resources;
    if (with_oracle) {
      sample.resources.worlds_sampled += oracle.trials;
    }
    const PlanEvaluation& ev = *result->eval;
    switch (ev.kind) {
      case ParsedQuery::Kind::kRelation: {
        sample.rows = ev.marginals.size();
        double width_sum = 0.0;
        for (const DistinctMarginal& m : ev.marginals) {
          width_sum += m.prob.hi - m.prob.lo;
        }
        sample.width = ev.marginals.empty()
                           ? 0.0
                           : width_sum / static_cast<double>(
                                             ev.marginals.size());
        break;
      }
      case ParsedQuery::Kind::kExists:
        sample.width = ev.exists.prob.hi - ev.exists.prob.lo;
        break;
      case ParsedQuery::Kind::kCount:
        sample.width = ev.count.expected.hi - ev.count.expected.lo;
        break;
    }
    statements_.Record(sample);
  }
  if (options_.slow_query_ms >= 0.0 &&
      elapsed_ms >= options_.slow_query_ms) {
    SlowQueryEntry slow;
    slow.plan = result->canonical_text;
    slow.fingerprint = result->fingerprint;
    slow.epoch = result->epoch;
    slow.elapsed_ms = elapsed_ms;
    slow.resources = result->resources;
    if (request.trace != nullptr) {
      slow.trace_id = request.trace->trace_id_hex();
      slow.spans_json = SpanSubtreeJson(*request.trace, qspan.index());
    }
    RecordSlowQuery(std::move(slow));
  }
  return resp;
}

HttpResponse StoreService::HandleUpdate(const HttpRequest& request) {
  if (!options_.allow_update) {
    HttpResponse resp;
    resp.status = 405;
    resp.body = "{\"error\":\"updates are disabled on this replica\"}\n";
    return resp;
  }
  TraceSpan uspan;
  if (request.trace != nullptr) {
    uspan = request.trace->root().StartChild("update");
  }
  SnapshotPtr snap = store_->snapshot();
  if (snap == nullptr) {
    return JsonError(
        Status::FailedPrecondition("store has no epoch to update"));
  }
  TraceSpan parse_span = uspan.StartChild("update.parse");
  auto delta = ParseDeltaCsv(snap->base().schema(), request.body);
  parse_span.End();
  if (!delta.ok()) return JsonError(delta.status());

  // Row-indexed deltas (updates/deletes) address rows of a specific
  // epoch; applying them after another commit shifted the indices would
  // silently hit the wrong rows. Default the compare-and-swap guard to
  // the epoch this request was parsed against; a client can pin another
  // via the X-Mrsl-Epoch request header. Pure-insert deltas commute
  // across epochs and skip the guard unless the client pins one.
  uint64_t expected_epoch =
      delta->updates.empty() && delta->deletes.empty() ? 0 : snap->epoch();
  auto epoch_header = request.headers.find("x-mrsl-epoch");
  if (epoch_header != request.headers.end()) {
    int64_t claimed = 0;
    if (!ParseInt(epoch_header->second, &claimed) || claimed <= 0) {
      return JsonError(Status::InvalidArgument(
          "X-Mrsl-Epoch must be a positive integer"));
    }
    expected_epoch = static_cast<uint64_t>(claimed);
  }
  auto stats = BatchedUpdate(std::move(delta).value(), expected_epoch, uspan);
  uspan.End();
  if (!stats.ok()) return JsonError(stats.status());  // races answer 409

  metrics_
      ->GetCounter("mrsl_store_commits_total",
                   "Delta commits applied through POST /update.")
      ->Increment();

  std::string body =
      "{\"epoch\":" + std::to_string(stats->epoch) +
      ",\"components_total\":" + std::to_string(stats->components_total) +
      ",\"components_reinferred\":" +
      std::to_string(stats->components_reinferred) +
      ",\"tuples_total\":" + std::to_string(stats->tuples_total) +
      ",\"tuples_reinferred\":" + std::to_string(stats->tuples_reinferred) +
      ",\"blocks_total\":" + std::to_string(stats->blocks_total) +
      ",\"blocks_reused\":" + std::to_string(stats->blocks_reused) +
      ",\"index_stable\":" + (stats->index_stable ? "true" : "false") +
      ",\"points_sampled\":" +
      std::to_string(stats->inference.points_sampled) + ",\"wall_seconds\":";
  AppendNum(&body, stats->wall_seconds);
  body += "}\n";

  HttpResponse resp;
  resp.body = std::move(body);
  resp.extra_headers.emplace_back("X-Mrsl-Epoch",
                                  std::to_string(stats->epoch));
  return resp;
}

HttpResponse StoreService::HandleSnapshot(const HttpRequest&) {
  uint64_t epoch = 0;
  auto bytes = store_->SerializeCurrentSnapshot(&epoch);
  if (!bytes.ok()) return JsonError(bytes.status());
  HttpResponse resp;
  resp.content_type = "application/octet-stream";
  resp.body = std::move(bytes).value();
  resp.extra_headers.emplace_back("X-Mrsl-Epoch", std::to_string(epoch));
  return resp;
}

HttpResponse StoreService::HandleHealthz(const HttpRequest&) {
  HttpResponse resp;
  resp.body = "{\"status\":\"ok\",\"epoch\":" +
              std::to_string(store_->epoch()) + ",\"version\":\"" +
              MRSL_VERSION_STRING + "\",\"uptime_seconds\":";
  AppendNum(&resp.body, ProcessUptimeSeconds());
  resp.body += ",\"start_time_unix_seconds\":";
  AppendNum(&resp.body, ProcessStartUnixSeconds());
  resp.body += "}\n";
  return resp;
}

HttpResponse StoreService::HandleMetrics(const HttpRequest&) {
  // Refresh the point-in-time gauges the scrape is about to read.
  metrics_
      ->GetGauge("mrsl_uptime_seconds", "Seconds since process start.")
      ->Set(ProcessUptimeSeconds());
  HttpResponse resp;
  resp.content_type = "text/plain; version=0.0.4";
  resp.body = metrics_->RenderPrometheus();
  return resp;
}

HttpResponse StoreService::HandleDebugTraces(const HttpRequest& request) {
  const std::string format = request.QueryParam("format", "json");
  if (format != "json" && format != "chrome") {
    return JsonError(
        Status::InvalidArgument("?format must be json or chrome"));
  }
  int64_t limit = 0;
  const std::string limit_param = request.QueryParam("limit", "");
  if (!limit_param.empty() && (!ParseInt(limit_param, &limit) || limit < 0)) {
    return JsonError(
        Status::InvalidArgument("?limit must be a non-negative integer"));
  }
  const std::vector<std::shared_ptr<const TraceContext>> traces =
      TraceStore::Global().Recent(static_cast<size_t>(limit));
  HttpResponse resp;
  resp.body =
      format == "chrome" ? TracesChromeJson(traces) : TracesJson(traces);
  return resp;
}

void StoreService::RecordSlowQuery(SlowQueryEntry entry) {
  SlowQueryEntry logged;
  logged.plan = entry.plan;
  logged.fingerprint = entry.fingerprint;
  logged.elapsed_ms = entry.elapsed_ms;
  logged.epoch = entry.epoch;
  logged.trace_id = entry.trace_id;
  {
    std::lock_guard<std::mutex> lock(slow_mutex_);
    if (slow_ring_.size() < kSlowRingCapacity) {
      slow_ring_.push_back(std::move(entry));
    } else {
      slow_ring_[slow_next_] = std::move(entry);
      slow_next_ = (slow_next_ + 1) % kSlowRingCapacity;
    }
    ++slow_recorded_;
  }
  if (metrics_ != nullptr) {
    metrics_
        ->GetCounter("mrsl_slow_queries_total",
                     "Queries at or over the slow-query threshold.")
        ->Increment();
  }
  LogWarn("query", "slow query",
          {{"plan", logged.plan},
           {"fingerprint", FingerprintHex(logged.fingerprint)},
           {"elapsed_ms", logged.elapsed_ms},
           {"epoch", logged.epoch},
           {"trace_id", logged.trace_id}});
}

HttpResponse StoreService::HandleDebugSlow(const HttpRequest&) {
  std::vector<SlowQueryEntry> entries;
  uint64_t recorded = 0;
  {
    std::lock_guard<std::mutex> lock(slow_mutex_);
    entries.reserve(slow_ring_.size());
    const size_t start =
        slow_ring_.size() < kSlowRingCapacity ? 0 : slow_next_;
    for (size_t i = 0; i < slow_ring_.size(); ++i) {
      entries.push_back(slow_ring_[(start + i) % slow_ring_.size()]);
    }
    recorded = slow_recorded_;
  }
  std::string body = "{\"threshold_ms\":";
  AppendNum(&body, options_.slow_query_ms);
  body += ",\"recorded\":" + std::to_string(recorded) + ",\"entries\":[";
  for (size_t i = 0; i < entries.size(); ++i) {
    const SlowQueryEntry& e = entries[i];
    if (i > 0) body += ",";
    body += "{\"trace_id\":\"" + e.trace_id + "\",\"fingerprint\":\"" +
            FingerprintHex(e.fingerprint) + "\",\"plan\":\"" +
            JsonEscape(e.plan) + "\",\"elapsed_ms\":";
    AppendNum(&body, e.elapsed_ms);
    body += ",\"epoch\":" + std::to_string(e.epoch) + ",\"resources\":{" +
            "\"peak_batch_bytes\":" +
            std::to_string(e.resources.peak_batch_bytes) +
            ",\"peak_lineage_bytes\":" +
            std::to_string(e.resources.peak_lineage_bytes) +
            ",\"lineage_events\":" +
            std::to_string(e.resources.lineage_events) +
            ",\"worlds_sampled\":" +
            std::to_string(e.resources.worlds_sampled) + "},\"spans\":";
    body += e.spans_json.empty() ? "null" : e.spans_json;
    body += "}";
  }
  body += "]}\n";
  HttpResponse resp;
  resp.body = std::move(body);
  return resp;
}

HttpResponse StoreService::HandleDebugStatements(const HttpRequest& request) {
  const std::string sort = request.QueryParam("sort", "total_time");
  if (sort != "total_time" && sort != "calls" && sort != "p99" &&
      sort != "width") {
    return JsonError(Status::InvalidArgument(
        "?sort must be total_time, calls, p99, or width"));
  }
  const std::string format = request.QueryParam("format", "json");
  if (format != "json" && format != "tsv") {
    return JsonError(Status::InvalidArgument("?format must be json or tsv"));
  }
  int64_t limit = 0;
  const std::string limit_param = request.QueryParam("limit", "");
  if (!limit_param.empty() && (!ParseInt(limit_param, &limit) || limit < 0)) {
    return JsonError(
        Status::InvalidArgument("?limit must be a non-negative integer"));
  }

  std::vector<StatementDigest> digests = statements_.Snapshot();
  auto sort_key = [&sort](const StatementDigest& d) {
    if (sort == "calls") return static_cast<double>(d.calls);
    if (sort == "p99") return d.p99_seconds;
    if (sort == "width") return d.max_width;
    return d.total_seconds;
  };
  // Descending by the sort key; (fingerprint, kind) breaks ties so the
  // listing is stable across scrapes.
  std::sort(digests.begin(), digests.end(),
            [&sort_key](const StatementDigest& a, const StatementDigest& b) {
              const double ka = sort_key(a);
              const double kb = sort_key(b);
              if (ka != kb) return ka > kb;
              if (a.fingerprint != b.fingerprint) {
                return a.fingerprint < b.fingerprint;
              }
              return a.kind < b.kind;
            });
  const size_t tracked = digests.size();
  if (limit > 0 && digests.size() > static_cast<size_t>(limit)) {
    digests.resize(static_cast<size_t>(limit));
  }

  HttpResponse resp;
  if (format == "tsv") {
    // The `mrsl top` feed: one header line, one row per digest, tabs
    // only between columns (normalized text goes last — it contains
    // spaces but never tabs).
    std::string body =
        "fingerprint\tkind\tcalls\terrors\tcache_hits\tcache_misses"
        "\tcompiled\ttotal_ms\tmean_ms\tp50_ms\tp99_ms\tmax_ms\trows"
        "\tmean_width\tpeak_batch_bytes\tpeak_lineage_bytes"
        "\tlineage_events\tworlds\tnormalized\n";
    for (const StatementDigest& d : digests) {
      const double calls = static_cast<double>(d.calls);
      body += FingerprintHex(d.fingerprint) + "\t" + d.kind + "\t" +
              std::to_string(d.calls) + "\t" + std::to_string(d.errors) +
              "\t" + std::to_string(d.cache_hits) + "\t" +
              std::to_string(d.cache_misses) + "\t" +
              std::to_string(d.compiled_calls) + "\t";
      AppendNum(&body, d.total_seconds * 1000.0);
      body += "\t";
      AppendNum(&body, d.calls == 0 ? 0.0 : d.total_seconds * 1000.0 / calls);
      body += "\t";
      AppendNum(&body, d.p50_seconds * 1000.0);
      body += "\t";
      AppendNum(&body, d.p99_seconds * 1000.0);
      body += "\t";
      AppendNum(&body, d.max_seconds * 1000.0);
      body += "\t" + std::to_string(d.total_rows) + "\t";
      AppendNum(&body, d.calls == 0 ? 0.0 : d.total_width / calls);
      body += "\t" + std::to_string(d.peak_batch_bytes) + "\t" +
              std::to_string(d.peak_lineage_bytes) + "\t" +
              std::to_string(d.lineage_events) + "\t" +
              std::to_string(d.worlds_sampled) + "\t" + d.normalized +
              "\n";
    }
    resp.content_type = "text/tab-separated-values";
    resp.body = std::move(body);
    return resp;
  }

  std::string body = "{\"tracked\":" + std::to_string(tracked) +
                     ",\"evictions\":" +
                     std::to_string(statements_.evictions()) +
                     ",\"sort\":\"" + sort + "\",\"statements\":[";
  for (size_t i = 0; i < digests.size(); ++i) {
    const StatementDigest& d = digests[i];
    const double calls = static_cast<double>(d.calls);
    if (i > 0) body += ",";
    body += "{\"fingerprint\":\"" + FingerprintHex(d.fingerprint) +
            "\",\"kind\":\"" + JsonEscape(d.kind) +
            "\",\"normalized\":\"" + JsonEscape(d.normalized) +
            "\",\"calls\":" + std::to_string(d.calls) +
            ",\"errors\":" + std::to_string(d.errors) +
            ",\"cache_hits\":" + std::to_string(d.cache_hits) +
            ",\"cache_misses\":" + std::to_string(d.cache_misses) +
            ",\"compiled_calls\":" + std::to_string(d.compiled_calls) +
            ",\"total_seconds\":";
    AppendNum(&body, d.total_seconds);
    body += ",\"mean_seconds\":";
    AppendNum(&body, d.calls == 0 ? 0.0 : d.total_seconds / calls);
    body += ",\"p50_seconds\":";
    AppendNum(&body, d.p50_seconds);
    body += ",\"p99_seconds\":";
    AppendNum(&body, d.p99_seconds);
    body += ",\"max_seconds\":";
    AppendNum(&body, d.max_seconds);
    body += ",\"total_rows\":" + std::to_string(d.total_rows) +
            ",\"mean_width\":";
    AppendNum(&body, d.calls == 0 ? 0.0 : d.total_width / calls);
    body += ",\"max_width\":";
    AppendNum(&body, d.max_width);
    body += ",\"peak_batch_bytes\":" + std::to_string(d.peak_batch_bytes) +
            ",\"peak_lineage_bytes\":" +
            std::to_string(d.peak_lineage_bytes) +
            ",\"lineage_events\":" + std::to_string(d.lineage_events) +
            ",\"worlds_sampled\":" + std::to_string(d.worlds_sampled) +
            "}";
  }
  body += "]}\n";
  resp.body = std::move(body);
  return resp;
}

HttpResponse StoreService::HandleDebugStatementsReset(const HttpRequest&) {
  const size_t dropped = statements_.Reset();
  HttpResponse resp;
  resp.body =
      "{\"reset\":true,\"dropped\":" + std::to_string(dropped) + "}\n";
  return resp;
}

}  // namespace mrsl
