// pg_stat_statements for the plan algebra: per-query-shape digests.
//
// Every /query call — hit or miss, success or failure — records one
// StatementSample keyed by (fingerprint, kind). The StatementStore
// folds samples into streaming aggregates per digest: call/error/cache
// counts, a fixed-bound latency histogram (p50/p99 derivable without
// storing samples), rows returned, bounds width, and the evaluator's
// resource accounting (peak arena bytes, lineage events, worlds
// sampled). The store is lock-striped (16 shards on the fingerprint's
// low bits, one mutex each) so recording from many handler threads
// never serializes behind a scrape, and capped per shard with LRU
// eviction — a workload of unbounded distinct shapes cannot grow it
// without bound; evictions are counted and exported.
//
// This is observability, not the answer path: nothing here feeds back
// into evaluation, and recording is O(1) per call.

#ifndef MRSL_SERVER_STATEMENTS_H_
#define MRSL_SERVER_STATEMENTS_H_

#include <atomic>
#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "pdb/plan.h"
#include "util/metrics.h"

namespace mrsl {

/// One query execution, as the service saw it.
struct StatementSample {
  uint64_t fingerprint = 0;
  std::string kind;             ///< "relation" / "exists" / "count" / "error"
  std::string normalized;       ///< digest text (shown once per digest)
  bool error = false;
  bool cache_hit = false;
  bool compiled = false;        ///< ran the two-phase compiler
  double elapsed_seconds = 0.0; ///< service-side wall time
  uint64_t rows = 0;            ///< marginals returned (0 for aggregates)
  double width = 0.0;           ///< mean bounds width of the answer
  PlanResources resources;      ///< zero on cache hits (nothing evaluated)
};

/// Aggregates for one (fingerprint, kind) digest. All counters are
/// monotone while the digest lives; peaks are running maxima.
struct StatementDigest {
  uint64_t fingerprint = 0;
  std::string kind;
  std::string normalized;

  uint64_t calls = 0;
  uint64_t errors = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_misses = 0;
  uint64_t compiled_calls = 0;

  double total_seconds = 0.0;
  double max_seconds = 0.0;
  double p50_seconds = 0.0;  ///< filled by Snapshot() from the histogram
  double p99_seconds = 0.0;  ///< filled by Snapshot() from the histogram

  uint64_t total_rows = 0;
  double total_width = 0.0;  ///< sum of per-call mean widths
  double max_width = 0.0;

  uint64_t peak_batch_bytes = 0;
  uint64_t peak_lineage_bytes = 0;
  uint64_t lineage_events = 0;
  uint64_t worlds_sampled = 0;

  /// Latency histogram counts over StatementLatencyBounds() (+Inf last).
  std::vector<uint64_t> latency_counts;
};

/// The histogram bounds every digest shares (log-scale, ~100µs..100s,
/// same grid as the /metrics latency histograms).
const std::vector<double>& StatementLatencyBounds();

class StatementStore {
 public:
  /// `capacity` is the total digest cap across shards (floored at one
  /// digest per shard).
  explicit StatementStore(size_t capacity = 512);

  /// Folds one sample in. O(1); takes one shard mutex.
  void Record(const StatementSample& sample);

  /// Consistent-per-shard copy of every digest, percentiles computed.
  /// Order is unspecified — callers sort.
  std::vector<StatementDigest> Snapshot() const;

  /// Drops every digest; returns how many were dropped. The eviction
  /// counter is monotone and survives resets.
  size_t Reset();

  size_t size() const { return tracked_.load(std::memory_order_relaxed); }
  uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

  /// Mirrors size()/evictions() into registry instruments on every
  /// mutation (the registry owns the instruments; may be null).
  void BindMetrics(Gauge* tracked, Counter* evictions);

 private:
  static constexpr size_t kShards = 16;

  struct Key {
    uint64_t fingerprint;
    std::string kind;
    bool operator==(const Key& other) const {
      return fingerprint == other.fingerprint && kind == other.kind;
    }
  };
  struct KeyHash {
    size_t operator()(const Key& k) const {
      return static_cast<size_t>(k.fingerprint) ^
             std::hash<std::string>()(k.kind);
    }
  };

  struct Shard {
    mutable std::mutex mutex;
    // LRU list front = most recent; map values point into the list.
    std::list<std::pair<Key, StatementDigest>> lru;
    std::unordered_map<Key,
                       std::list<std::pair<Key, StatementDigest>>::iterator,
                       KeyHash>
        index;
  };

  void PublishGauges();

  size_t per_shard_capacity_;
  Shard shards_[kShards];
  std::atomic<size_t> tracked_{0};
  std::atomic<uint64_t> evictions_{0};
  Gauge* tracked_gauge_ = nullptr;
  Counter* evictions_counter_ = nullptr;
};

}  // namespace mrsl

#endif  // MRSL_SERVER_STATEMENTS_H_
