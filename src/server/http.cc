#include "server/http.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstring>

#include "util/string_util.h"

namespace mrsl {
namespace {

// Cap on waiting for a non-blocking socket to become writable again
// (see HttpWriteAll).
constexpr int kSendTimeoutMs = 30000;

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

int HexDigit(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

// Splits "k1=v1&k2=v2" into a decoded parameter map.
void ParseQueryString(std::string_view qs,
                      std::map<std::string, std::string>* out) {
  for (const std::string& pair : Split(qs, '&')) {
    if (pair.empty()) continue;
    const size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      (*out)[UrlDecode(pair)] = "";
    } else {
      (*out)[UrlDecode(std::string_view(pair).substr(0, eq))] =
          UrlDecode(std::string_view(pair).substr(eq + 1));
    }
  }
}

// Parses the header block between `begin` and `end` (exclusive of the
// blank line) into lower-cased name -> value. Returns false on malformed
// lines.
bool ParseHeaderBlock(std::string_view block,
                      std::map<std::string, std::string>* headers,
                      std::string* error) {
  size_t pos = 0;
  while (pos < block.size()) {
    size_t eol = block.find("\r\n", pos);
    if (eol == std::string_view::npos) eol = block.size();
    std::string_view line = block.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) continue;
    if (line[0] == ' ' || line[0] == '\t') {
      *error = "obsolete header folding is not supported";
      return false;
    }
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      *error = "malformed header line";
      return false;
    }
    (*headers)[ToLower(line.substr(0, colon))] =
        std::string(Trim(line.substr(colon + 1)));
  }
  return true;
}

// Shared by request and response parsing: locates the header terminator
// and enforces the header-size cap — also on a block that arrived
// complete (a terminator past the cap must not bless what an
// incremental feed would have rejected).
HttpParseState FindHeaderEnd(std::string_view buffer, size_t* header_end,
                             std::string* error) {
  const size_t end = buffer.find("\r\n\r\n");
  if (end == std::string_view::npos ? buffer.size() > kMaxHttpHeaderBytes
                                    : end > kMaxHttpHeaderBytes) {
    *error = "header block exceeds " + std::to_string(kMaxHttpHeaderBytes) +
             " bytes";
    return HttpParseState::kError;
  }
  if (end == std::string_view::npos) return HttpParseState::kNeedMore;
  *header_end = end;
  return HttpParseState::kDone;
}

// Reads and bounds-checks Content-Length (0 when absent).
bool ParseContentLength(const std::map<std::string, std::string>& headers,
                        size_t* length, std::string* error) {
  *length = 0;
  auto it = headers.find("content-length");
  if (it == headers.end()) return true;
  int64_t n = 0;
  if (!ParseInt(it->second, &n) || n < 0) {
    *error = "unparseable Content-Length";
    return false;
  }
  if (static_cast<uint64_t>(n) > kMaxHttpBodyBytes) {
    *error = "body exceeds " + std::to_string(kMaxHttpBodyBytes) + " bytes";
    return false;
  }
  *length = static_cast<size_t>(n);
  return true;
}

}  // namespace

Status HttpWriteAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Non-blocking socket with a full send buffer: wait for
        // writability, bounded — a peer that stopped reading must fail
        // the write (closing the connection) rather than pin the
        // writing thread forever.
        pollfd pfd{fd, POLLOUT, 0};
        const int ready = ::poll(&pfd, 1, kSendTimeoutMs);
        if (ready > 0) continue;
        return Status::IOError(ready == 0 ? "send timed out (slow reader)"
                                          : std::string("poll: ") +
                                                std::strerror(errno));
      }
      return Status::IOError(std::string("send: ") + std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

bool HttpTrySendAll(int fd, std::string_view data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n = ::send(fd, data.data() + off, data.size() - off,
                             MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;  // would block, peer gone, or hard error
    }
    off += static_cast<size_t>(n);
  }
  return true;
}

std::string HttpRequest::QueryParam(const std::string& key,
                                    const std::string& fallback) const {
  auto it = query.find(key);
  return it == query.end() ? fallback : it->second;
}

std::string HttpResponseMessage::Header(const std::string& name,
                                        const std::string& fallback) const {
  auto it = headers.find(name);
  return it == headers.end() ? fallback : it->second;
}

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() && HexDigit(s[i + 1]) >= 0 &&
               HexDigit(s[i + 2]) >= 0) {
      out += static_cast<char>(HexDigit(s[i + 1]) * 16 + HexDigit(s[i + 2]));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

HttpParseState ParseHttpRequest(std::string_view buffer, HttpRequest* out,
                                size_t* consumed, std::string* error) {
  size_t header_end = 0;
  const HttpParseState found = FindHeaderEnd(buffer, &header_end, error);
  if (found != HttpParseState::kDone) return found;

  const size_t line_end = buffer.find("\r\n");
  std::string_view request_line = buffer.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string_view::npos ? sp1 : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
      sp1 == 0 || sp2 == sp1 + 1 ||
      request_line.find(' ', sp2 + 1) != std::string_view::npos) {
    *error = "malformed request line";
    return HttpParseState::kError;
  }
  std::string_view version = request_line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    *error = "unsupported HTTP version";
    return HttpParseState::kError;
  }

  HttpRequest req;
  req.method = std::string(request_line.substr(0, sp1));
  req.target = std::string(request_line.substr(sp1 + 1, sp2 - sp1 - 1));
  const size_t q = req.target.find('?');
  req.path = req.target.substr(0, q);
  if (q != std::string::npos) {
    ParseQueryString(std::string_view(req.target).substr(q + 1), &req.query);
  }

  if (!ParseHeaderBlock(buffer.substr(line_end + 2, header_end - line_end - 2),
                        &req.headers, error)) {
    return HttpParseState::kError;
  }
  if (req.headers.count("transfer-encoding") != 0) {
    *error = "chunked transfer encoding is not supported";
    return HttpParseState::kError;
  }
  size_t content_length = 0;
  if (!ParseContentLength(req.headers, &content_length, error)) {
    return HttpParseState::kError;
  }
  const size_t total = header_end + 4 + content_length;
  if (buffer.size() < total) return HttpParseState::kNeedMore;
  req.body = std::string(buffer.substr(header_end + 4, content_length));

  const std::string connection =
      ToLower(req.headers.count("connection") ? req.headers.at("connection")
                                              : "");
  req.keep_alive = version == "HTTP/1.1"
                       ? connection.find("close") == std::string::npos
                       : connection.find("keep-alive") != std::string::npos;

  *out = std::move(req);
  *consumed = total;
  return HttpParseState::kDone;
}

std::string_view HttpStatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 202: return "Accepted";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 409: return "Conflict";
    case 413: return "Payload Too Large";
    case 500: return "Internal Server Error";
    case 501: return "Not Implemented";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive) {
  std::string out = "HTTP/1.1 " + std::to_string(response.status) + " " +
                    std::string(HttpStatusText(response.status)) + "\r\n";
  out += "Content-Type: " + response.content_type + "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += keep_alive ? "Connection: keep-alive\r\n" : "Connection: close\r\n";
  for (const auto& [name, value] : response.extra_headers) {
    out += name + ": " + value + "\r\n";
  }
  out += "\r\n";
  out += response.body;
  return out;
}

HttpClient::~HttpClient() { Close(); }

void HttpClient::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

Status HttpClient::Connect(const std::string& ip, uint16_t port) {
  Close();
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, ip.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad IPv4 address: " + ip);
  }
  if (::connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    Close();
    return Status::IOError("connect " + ip + ":" + std::to_string(port) +
                           ": " + err);
  }
  int one = 1;
  ::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return Status::OK();
}

Result<HttpResponseMessage> HttpClient::RoundTrip(
    const std::string& method, const std::string& target,
    std::string_view body, const std::string& content_type,
    const std::vector<std::pair<std::string, std::string>>& extra_headers) {
  if (fd_ < 0) return Status::FailedPrecondition("not connected");
  std::string request = method + " " + target + " HTTP/1.1\r\n";
  request += "Host: loopback\r\n";
  if (!body.empty() || method == "POST" || method == "PUT") {
    request += "Content-Type: " + content_type + "\r\n";
    request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  }
  for (const auto& [name, value] : extra_headers) {
    request += name + ": " + value + "\r\n";
  }
  request += "\r\n";
  request += body;
  MRSL_RETURN_IF_ERROR(HttpWriteAll(fd_, request));

  // Read until the full response (headers + Content-Length body) is in.
  char chunk[16384];
  for (;;) {
    size_t header_end = 0;
    std::string parse_error;
    if (FindHeaderEnd(buffer_, &header_end, &parse_error) ==
        HttpParseState::kDone) {
      const size_t line_end = buffer_.find("\r\n");
      std::string_view status_line =
          std::string_view(buffer_).substr(0, line_end);
      if (status_line.size() < 12 || status_line.substr(0, 5) != "HTTP/") {
        Close();
        return Status::IOError("malformed status line");
      }
      HttpResponseMessage msg;
      int64_t code = 0;
      if (!ParseInt(status_line.substr(9, 3), &code)) {
        Close();
        return Status::IOError("malformed status code");
      }
      msg.status = static_cast<int>(code);
      if (!ParseHeaderBlock(std::string_view(buffer_).substr(
                                line_end + 2, header_end - line_end - 2),
                            &msg.headers, &parse_error)) {
        Close();
        return Status::IOError("malformed response headers: " + parse_error);
      }
      size_t content_length = 0;
      if (!ParseContentLength(msg.headers, &content_length, &parse_error)) {
        Close();
        return Status::IOError(parse_error);
      }
      const size_t total = header_end + 4 + content_length;
      if (buffer_.size() >= total) {
        msg.body = buffer_.substr(header_end + 4, content_length);
        buffer_.erase(0, total);
        return msg;
      }
    } else if (!parse_error.empty()) {
      Close();
      return Status::IOError(parse_error);
    }
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = std::strerror(errno);
      Close();
      return Status::IOError(std::string("recv: ") + err);
    }
    if (n == 0) {
      Close();
      return Status::IOError("connection closed mid-response");
    }
    buffer_.append(chunk, static_cast<size_t>(n));
  }
}

}  // namespace mrsl
