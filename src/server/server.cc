// IO-thread / handler-task split: the IO thread owns accept, reads, and
// parsing; handler tasks (on the server's own blocking-friendly pool,
// see ServerOptions::handler_threads) own one request each
// and write their own response. A connection is "busy" from dispatch
// until its task hands it back through done_ — the IO thread never
// touches a busy socket, so reads and writes can't interleave.
//
// Shutdown ordering is the one subtle invariant: a handler task wakes
// the IO thread BEFORE decrementing inflight_, and touches nothing of
// the server after the decrement. The IO loop only exits when inflight_
// is zero and the connection table is empty, so by the time Stop() joins
// the IO thread and closes the wake pipe, no task can be left holding a
// reference to either.

#include "server/server.h"

#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <utility>

#include "util/log.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace mrsl {
namespace {

constexpr int kPollTimeoutMs = 100;

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags >= 0) ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  HttpResponse resp;
  resp.status = status;
  resp.content_type = "text/plain";
  resp.body = message + "\n";
  return resp;
}

}  // namespace

HttpServer::Conn::~Conn() {
  if (fd >= 0) ::close(fd);
}

HttpServer::HttpServer(ServerOptions options)
    : options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(const std::string& method, const std::string& path,
                        Handler handler) {
  routes_[path][method] = std::move(handler);
}

Status HttpServer::Start() {
  if (running_.load() || io_thread_.joinable()) {
    return Status::FailedPrecondition("server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError("bind 127.0.0.1:" +
                           std::to_string(options_.port) + ": " + err);
  }
  if (::listen(listen_fd_, options_.backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("listen: ") + err);
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  SetNonBlocking(listen_fd_);

  if (::pipe(wake_fds_) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IOError(std::string("pipe: ") + err);
  }
  SetNonBlocking(wake_fds_[0]);
  SetNonBlocking(wake_fds_[1]);

  // Resolve the per-endpoint latency series up front; routes are fixed
  // from here on, so RecordRequest can skip the registry mutex.
  std::vector<std::string> endpoints = {"other"};
  for (const auto& [path, by_method] : routes_) endpoints.push_back(path);
  for (const std::string& endpoint : endpoints) {
    endpoint_latency_[endpoint] = metrics_.GetHistogram(
        "mrsl_http_request_seconds",
        "Request handling latency (dispatch to response written).",
        MetricsRegistry::DefaultLatencyBoundsSeconds(),
        {{"endpoint", endpoint}});
  }

  size_t handler_threads = options_.handler_threads;
  if (handler_threads == 0) {
    handler_threads = std::max<size_t>(
        8, std::thread::hardware_concurrency());
  }
  handler_pool_ = std::make_unique<ThreadPool>(handler_threads);

  stopping_.store(false);
  running_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this]() { IoLoop(); });
  LogInfo("server", "listening",
          {{"port", static_cast<int64_t>(port_)},
           {"handler_threads", static_cast<int64_t>(handler_threads)},
           {"max_inflight", static_cast<int64_t>(options_.max_inflight)}});
  return Status::OK();
}

void HttpServer::Stop() {
  if (!io_thread_.joinable()) return;
  stopping_.store(true);
  Wake();
  io_thread_.join();
  // The IO loop only exits at inflight_ == 0, so every handler task has
  // finished; this join is of idle workers only.
  handler_pool_.reset();
  conns_.clear();
  done_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (int& fd : wake_fds_) {
    if (fd >= 0) {
      ::close(fd);
      fd = -1;
    }
  }
  running_.store(false, std::memory_order_release);
  LogInfo("server", "stopped after graceful drain",
          {{"port", static_cast<int64_t>(port_)},
           {"requests_shed",
            requests_shed_.load(std::memory_order_relaxed)}});
}

void HttpServer::Wake() {
  const char byte = 1;
  // A full pipe already means a wake-up is pending; EBADF can't happen
  // before Stop() joins (see the shutdown-ordering note above).
  (void)!::write(wake_fds_[1], &byte, 1);
}

void HttpServer::AcceptNewConns() {
  for (;;) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr, SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      break;  // EAGAIN, or a transient accept error: poll again
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    // Non-blocking on both sides: the lone IO thread must never hang in
    // recv on a spuriously-readable socket (poll readiness is a hint,
    // not a guarantee), and handler-task writes go through
    // HttpWriteAll's bounded POLLOUT wait, so a client that stops
    // reading costs one closed connection, not a pinned pool worker or
    // a hung drain.
    SetNonBlocking(fd);
    auto conn = std::make_shared<Conn>();
    conn->fd = fd;
    conns_.emplace(fd, std::move(conn));
  }
}

bool HttpServer::RespondInline(const ConnPtr& conn,
                               const HttpRequest& request,
                               HttpResponse response) {
  // Stats precede the write: a client must never read its response and
  // still find the counters behind it. The write itself is best-effort
  // non-blocking — this runs on the IO thread, and a client that
  // pipelines error-producing requests without reading responses must
  // lose its connection, not wedge every other client's accept/read.
  requests_served_.fetch_add(1, std::memory_order_relaxed);
  RecordRequest(request.path, request.method, response.status,
                /*seconds=*/-1.0);
  const bool written = HttpTrySendAll(
      conn->fd, SerializeHttpResponse(response, request.keep_alive));
  return written && request.keep_alive;
}

void HttpServer::DispatchRequest(const ConnPtr& conn, HttpRequest request) {
  conn->busy = true;
  conn->close_after = !request.keep_alive;
  inflight_.fetch_add(1, std::memory_order_acq_rel);
  const Handler* handler = &routes_.at(request.path).at(request.method);
  // The trace creation point: ?trace=1 forces one, otherwise the
  // deterministic sampler decides from a fresh id. The id is only drawn
  // when it could matter, so trace_sample == 0 costs one branch here.
  const bool forced =
      !request.query.empty() && request.QueryParam("trace", "") == "1";
  if (forced || options_.trace_sample > 0.0) {
    const uint64_t id = NextTraceId();
    if (forced || TraceStore::ShouldSample(id, options_.trace_sample)) {
      request.trace = std::make_shared<TraceContext>(
          id, request.method + " " + request.path);
    }
  }
  TraceSpan queue_span;
  if (request.trace != nullptr) {
    // Dispatch-to-handler-start: the admission queue's contribution.
    queue_span = request.trace->root().StartChild("http.queue");
  }
  handler_pool_->Submit(
      [this, conn, handler, queue_span, request = std::move(request)]() {
        WallTimer timer;
        queue_span.End();
        HttpResponse response = (*handler)(request);
        if (request.trace != nullptr) {
          TraceSpan root = request.trace->root();
          root.SetAttr("status", static_cast<int64_t>(response.status));
          root.End();
          response.extra_headers.emplace_back(
              "X-Mrsl-Trace-Id", request.trace->trace_id_hex());
          // Record before the response write: a client that reads its
          // response and immediately asks /debug/traces must find it.
          TraceStore::Global().Record(request.trace);
        }
        // Stats precede the write (see RespondInline).
        RecordRequest(request.path, request.method, response.status,
                      timer.ElapsedSeconds());
        requests_served_.fetch_add(1, std::memory_order_relaxed);
        const Status written = HttpWriteAll(
            conn->fd,
            SerializeHttpResponse(response, !conn->close_after));
        if (!written.ok()) conn->close_after = true;
        {
          std::lock_guard<std::mutex> lock(done_mutex_);
          done_.push_back(conn);
          Wake();
        }
        // Nothing after this touches the server (shutdown ordering).
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
      });
}

bool HttpServer::PumpConn(const ConnPtr& conn) {
  while (!conn->busy) {
    HttpRequest request;
    size_t consumed = 0;
    std::string error;
    const HttpParseState state =
        ParseHttpRequest(conn->in, &request, &consumed, &error);
    if (state == HttpParseState::kNeedMore) return true;
    if (state == HttpParseState::kError) {
      HttpRequest bad;  // no trustworthy path/method; close unconditionally
      bad.keep_alive = false;
      RespondInline(conn, bad, ErrorResponse(400, error));
      conns_.erase(conn->fd);
      return false;
    }
    conn->in.erase(0, consumed);

    auto route = routes_.find(request.path);
    if (route == routes_.end()) {
      if (!RespondInline(conn, request, ErrorResponse(404, "no such route"))) {
        conns_.erase(conn->fd);
        return false;
      }
      continue;
    }
    auto by_method = route->second.find(request.method);
    if (by_method == route->second.end()) {
      HttpResponse resp =
          ErrorResponse(405, "method not allowed for " + request.path);
      std::string allow;
      for (const auto& [method, handler] : route->second) {
        if (!allow.empty()) allow += ", ";
        allow += method;
      }
      resp.extra_headers.emplace_back("Allow", allow);
      if (!RespondInline(conn, request, std::move(resp))) {
        conns_.erase(conn->fd);
        return false;
      }
      continue;
    }
    if (inflight_.load(std::memory_order_acquire) >= options_.max_inflight) {
      requests_shed_.fetch_add(1, std::memory_order_relaxed);
      // Rate-limited by the logger's token bucket: an overload burst
      // sheds thousands of requests but logs a handful plus a
      // suppressed count.
      LogWarn("server", "admission control shed request",
              {{"target", request.target},
               {"inflight", static_cast<int64_t>(options_.max_inflight)}});
      HttpResponse resp = ErrorResponse(
          503, "server overloaded; retry shortly");
      resp.extra_headers.emplace_back("Retry-After", "1");
      if (!RespondInline(conn, request, std::move(resp))) {
        conns_.erase(conn->fd);
        return false;
      }
      continue;
    }
    DispatchRequest(conn, std::move(request));
  }
  return true;
}

void HttpServer::RecordRequest(const std::string& path,
                               const std::string& method, int code,
                               double seconds) {
  // Unregistered paths share one label so a scanner can't blow up the
  // registry's cardinality.
  auto it = endpoint_latency_.find(path);
  const bool known = it != endpoint_latency_.end();
  const std::string& endpoint = known ? path : "other";
  // The counter goes through the registry (the code label is dynamic);
  // the latency series was resolved at Start() and observes lock-free.
  metrics_
      .GetCounter("mrsl_http_requests_total", "HTTP requests answered.",
                  {{"endpoint", endpoint},
                   {"method", method.empty() ? "BAD" : method},
                   {"code", std::to_string(code)}})
      ->Increment();
  if (seconds >= 0.0) {
    (known ? it->second : endpoint_latency_.at("other"))->Observe(seconds);
  }
}

void HttpServer::IoLoop() {
  std::vector<pollfd> fds;
  for (;;) {
    // Hand back connections whose handler finished.
    std::vector<ConnPtr> done;
    {
      std::lock_guard<std::mutex> lock(done_mutex_);
      done.swap(done_);
    }
    for (const ConnPtr& conn : done) {
      conn->busy = false;
      if (stopping_.load() || conn->close_after) {
        conns_.erase(conn->fd);
      } else {
        PumpConn(conn);  // pipelined requests buffered during handling
      }
    }

    const bool stopping = stopping_.load(std::memory_order_acquire);
    if (stopping) {
      // Refuse idle connections; busy ones drain through done_.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if (it->second->busy) {
          ++it;
        } else {
          it = conns_.erase(it);
        }
      }
      if (conns_.empty() && inflight_.load(std::memory_order_acquire) == 0) {
        return;
      }
    }

    fds.clear();
    fds.push_back({wake_fds_[0], POLLIN, 0});
    if (!stopping) fds.push_back({listen_fd_, POLLIN, 0});
    for (const auto& [fd, conn] : conns_) {
      if (!conn->busy) fds.push_back({fd, POLLIN, 0});
    }
    if (::poll(fds.data(), fds.size(), kPollTimeoutMs) < 0) {
      if (errno == EINTR) continue;
      return;  // unrecoverable poll failure; Stop() still cleans up
    }

    for (const pollfd& pfd : fds) {
      if (pfd.revents == 0) continue;
      if (pfd.fd == wake_fds_[0]) {
        char drain[256];
        while (::read(wake_fds_[0], drain, sizeof(drain)) > 0) {
        }
        continue;
      }
      if (pfd.fd == listen_fd_) {
        AcceptNewConns();
        continue;
      }
      auto it = conns_.find(pfd.fd);
      if (it == conns_.end() || it->second->busy) continue;
      ConnPtr conn = it->second;
      char chunk[65536];
      const ssize_t n = ::recv(conn->fd, chunk, sizeof(chunk), 0);
      if (n <= 0) {
        if (n < 0 && (errno == EINTR || errno == EAGAIN ||
                      errno == EWOULDBLOCK)) {
          continue;
        }
        conns_.erase(conn->fd);  // EOF or hard error
        continue;
      }
      conn->in.append(chunk, static_cast<size_t>(n));
      if (conn->in.size() > kMaxHttpHeaderBytes + kMaxHttpBodyBytes) {
        HttpRequest bad;
        bad.keep_alive = false;
        RespondInline(conn, bad, ErrorResponse(413, "request too large"));
        conns_.erase(conn->fd);
        continue;
      }
      PumpConn(conn);
    }
  }
}

}  // namespace mrsl
