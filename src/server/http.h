// Dependency-free HTTP/1.1 message handling for the embedded server.
//
// The wire protocol deliberately covers only what the serving layer
// needs: request lines, headers, Content-Length bodies, query strings,
// and keep-alive — no chunked transfer, no TLS, no multipart. The parser
// is incremental (feed it a growing buffer, it says "need more" until a
// full message is present) so the server's IO loop can interleave many
// slow connections without threads parked on partial reads.
//
// The client half (HttpClient) is a small blocking keep-alive client
// used by the smoke tests and the bench_serve load driver; it speaks
// exactly the subset the server emits.

#ifndef MRSL_SERVER_HTTP_H_
#define MRSL_SERVER_HTTP_H_

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/result.h"
#include "util/trace.h"

namespace mrsl {

/// Parser limits: a request whose headers or body exceed these is
/// rejected with 400 rather than buffered without bound.
inline constexpr size_t kMaxHttpHeaderBytes = 64 * 1024;
inline constexpr size_t kMaxHttpBodyBytes = 256 * 1024 * 1024;

/// One parsed request. Header names are lower-cased; query parameter
/// keys and values are percent-decoded ('+' decodes to space).
struct HttpRequest {
  std::string method;                          // as sent (upper case)
  std::string target;                          // raw request target
  std::string path;                            // target up to '?'
  std::map<std::string, std::string> query;    // decoded ?k=v params
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;
  bool keep_alive = true;

  /// The request's trace (nullptr for the untraced fast path). Created
  /// by the server at dispatch when ?trace=1 forces it or the sampler
  /// picks the request; handlers attach spans under trace->root().
  std::shared_ptr<TraceContext> trace;

  /// The query parameter `key`, or `fallback` when absent. Returns by
  /// value: a reference into the map would dangle for the fallback case
  /// (the fallback argument is usually a temporary).
  std::string QueryParam(const std::string& key,
                         const std::string& fallback) const;
};

/// Outcome of one incremental parse attempt.
enum class HttpParseState {
  kNeedMore,  // the buffer holds a prefix of a valid message
  kDone,      // *out is filled; *consumed bytes belong to this message
  kError,     // protocol violation; *error says what
};

/// Tries to parse one full request from the front of `buffer`. On kDone,
/// `*consumed` is the total bytes of the message (pipelined data may
/// follow). On kError, `*error` holds a human-readable reason.
HttpParseState ParseHttpRequest(std::string_view buffer, HttpRequest* out,
                                size_t* consumed, std::string* error);

/// A response under construction. `extra_headers` are emitted verbatim
/// after the standard Content-Type / Content-Length / Connection trio.
struct HttpResponse {
  int status = 200;
  std::string content_type = "application/json";
  std::vector<std::pair<std::string, std::string>> extra_headers;
  std::string body;
};

/// Canonical reason phrase ("OK", "Not Found", ...; "Unknown" otherwise).
std::string_view HttpStatusText(int status);

/// Renders the full wire form of `response`. `keep_alive` selects the
/// Connection header, which must match what the server then does.
std::string SerializeHttpResponse(const HttpResponse& response,
                                  bool keep_alive);

/// Percent-decodes `s` ('+' becomes space; bad escapes pass through).
std::string UrlDecode(std::string_view s);

/// Writes all of `data` to `fd` (retrying short writes and EINTR,
/// SIGPIPE suppressed). Shared by the server's response paths.
Status HttpWriteAll(int fd, std::string_view data);

/// Best-effort non-blocking write (MSG_DONTWAIT): returns false when
/// the socket would block (or fails) before the whole payload is out.
/// The IO thread uses this for inline error responses so a client that
/// stopped reading can never wedge the accept/read loop — the caller
/// closes the connection instead.
bool HttpTrySendAll(int fd, std::string_view data);

/// A parsed response, as seen by HttpClient.
struct HttpResponseMessage {
  int status = 0;
  std::map<std::string, std::string> headers;  // lower-cased names
  std::string body;

  /// The header `name` (lower-cased), or `fallback` when absent. By
  /// value for the same lifetime reason as HttpRequest::QueryParam.
  std::string Header(const std::string& name,
                     const std::string& fallback) const;
};

/// Blocking keep-alive client for loopback testing and load generation.
/// Not thread-safe; use one per connection/thread.
class HttpClient {
 public:
  HttpClient() = default;
  ~HttpClient();
  HttpClient(const HttpClient&) = delete;
  HttpClient& operator=(const HttpClient&) = delete;

  /// Connects to a dotted-quad IPv4 address (e.g. "127.0.0.1").
  Status Connect(const std::string& ip, uint16_t port);

  /// Sends one request and blocks for the full response. The connection
  /// is kept alive across calls; a server-initiated close surfaces as an
  /// IOError and requires a fresh Connect. `extra_headers` are emitted
  /// verbatim after the standard ones.
  Result<HttpResponseMessage> RoundTrip(
      const std::string& method, const std::string& target,
      std::string_view body = {},
      const std::string& content_type = "text/plain",
      const std::vector<std::pair<std::string, std::string>>&
          extra_headers = {});

  bool connected() const { return fd_ >= 0; }
  void Close();

 private:
  int fd_ = -1;
  std::string buffer_;  // bytes past the previous response
};

}  // namespace mrsl

#endif  // MRSL_SERVER_HTTP_H_
