// The embedded HTTP/1.1 server: C++17 sockets, no dependencies.
//
// Threading model: one IO thread owns the listen socket and every idle
// connection, multiplexed with poll(). When a connection has buffered a
// complete request, the IO thread dispatches it as a task on the
// server's own handler pool (`handler_threads`, default 8). Handlers
// are kept off the process-wide compute pool deliberately: a durable
// /update handler spends its time blocked — in fdatasync or parked in
// the group-commit queue — and blocking tasks on a CPU-sized pool
// serialize the very concurrency group commit exists to amortize (the
// inference engine's ParallelFor always enlists the calling thread, so
// it stays live on its own pool regardless). While a request is in flight
// its connection is parked (not polled); the handler task writes the
// response straight to the socket and hands the connection back to the
// IO thread, which resumes parsing any pipelined bytes.
//
// Admission control: at most `max_inflight` dispatched-but-unfinished
// requests. Excess requests are answered 503 (with Retry-After) from the
// IO thread without touching the pool — the bounded queue that keeps an
// overloaded server shedding load instead of accumulating it.
//
// Graceful drain: Stop() closes the listen socket, lets every dispatched
// handler finish and write its response, closes all connections, and
// joins the IO thread. In-flight work is never abandoned; new work is
// never admitted.
//
// Observability: every request increments
//   mrsl_http_requests_total{endpoint,method,code}
// and feeds mrsl_http_request_seconds{endpoint} (only registered routes
// get their own endpoint label; everything else is "other", keeping
// label cardinality bounded). The registry is exposed so services can
// attach their own series and serve them from GET /metrics.

#ifndef MRSL_SERVER_SERVER_H_
#define MRSL_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/http.h"
#include "util/metrics.h"
#include "util/result.h"

namespace mrsl {

class ThreadPool;

struct ServerOptions {
  /// TCP port to bind on 127.0.0.1 (0 = kernel-assigned; read it back
  /// with port()).
  uint16_t port = 0;

  /// Bound on dispatched-but-unfinished requests; excess gets 503.
  size_t max_inflight = 64;

  /// listen(2) backlog.
  int backlog = 128;

  /// Handler pool width (0 = max(8, hardware concurrency)). Sized for
  /// blocking work, not CPU count: handlers park in fsyncs and commit
  /// queues, so more threads than cores is the normal configuration.
  size_t handler_threads = 0;

  /// Background trace-sampling rate in [0, 1]: each dispatched request
  /// draws a fresh trace id and is traced iff
  /// TraceStore::ShouldSample(id, trace_sample). ?trace=1 on a request
  /// forces a trace regardless. 0 (the default) disables sampling, and
  /// the per-request cost is one branch.
  double trace_sample = 0.0;
};

/// The server. Register routes, Start(), Stop(). Routes must be
/// registered before Start() — the table is read without locks after.
class HttpServer {
 public:
  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  explicit HttpServer(ServerOptions options = ServerOptions());
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Routes `method` + exact `path` to `handler`. A path registered with
  /// some other method answers 405 (with Allow); unknown paths 404.
  void Handle(const std::string& method, const std::string& path,
              Handler handler);

  /// Binds 127.0.0.1:port, starts the IO thread. Fails on bind errors
  /// and double starts.
  Status Start();

  /// The bound port (valid after a successful Start()).
  uint16_t port() const { return port_; }

  /// Graceful drain; idempotent; safe from any thread except a handler.
  void Stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Requests fully answered (handlers plus inline 4xx/5xx).
  uint64_t requests_served() const {
    return requests_served_.load(std::memory_order_relaxed);
  }

  /// Requests rejected 503 by admission control.
  uint64_t requests_shed() const {
    return requests_shed_.load(std::memory_order_relaxed);
  }

  MetricsRegistry* metrics() { return &metrics_; }

 private:
  struct Conn {
    int fd = -1;
    std::string in;           // bytes received, not yet parsed
    bool busy = false;        // a handler task owns the socket
    bool close_after = false; // close once the in-flight response is out
    ~Conn();
  };
  using ConnPtr = std::shared_ptr<Conn>;

  void IoLoop();
  /// Parses and dispatches requests buffered on `conn` until the buffer
  /// has no complete request, the connection goes busy, or it dies.
  /// Returns false when the connection was closed and erased.
  bool PumpConn(const ConnPtr& conn);
  void DispatchRequest(const ConnPtr& conn, HttpRequest request);
  /// Writes a response from the IO thread (404/405/503/400 fast paths).
  /// Returns false when the write failed and the connection must die.
  bool RespondInline(const ConnPtr& conn, const HttpRequest& request,
                     HttpResponse response);
  /// `seconds < 0` counts the request without a latency observation
  /// (inline 4xx/5xx answers have no handler latency; feeding them 0.0
  /// would drag the endpoint's percentiles toward zero exactly during
  /// overload, when most answers are inline 503s).
  void RecordRequest(const std::string& path, const std::string& method,
                     int code, double seconds);
  void AcceptNewConns();
  void Wake();

  ServerOptions options_;
  MetricsRegistry metrics_;

  std::map<std::string, std::map<std::string, Handler>> routes_;  // path->method
  // Per-endpoint latency series, resolved once at Start() so the
  // per-request path skips the registry mutex ("other" key included).
  std::map<std::string, Histogram*> endpoint_latency_;

  int listen_fd_ = -1;
  int wake_fds_[2] = {-1, -1};  // self-pipe: [0] polled, [1] written
  uint16_t port_ = 0;
  std::thread io_thread_;
  // Created at Start(), torn down at Stop() after the IO thread joins
  // (inflight_ == 0 by then, so every task has finished).
  std::unique_ptr<ThreadPool> handler_pool_;

  std::map<int, ConnPtr> conns_;  // IO-thread-only, keyed by fd

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::atomic<size_t> inflight_{0};
  std::atomic<uint64_t> requests_served_{0};
  std::atomic<uint64_t> requests_shed_{0};

  std::mutex done_mutex_;
  std::vector<ConnPtr> done_;  // connections handed back by handler tasks
};

}  // namespace mrsl

#endif  // MRSL_SERVER_SERVER_H_
