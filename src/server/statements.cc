#include "server/statements.h"

#include <algorithm>

namespace mrsl {

namespace {

// Count-to-bucket fold shared by Record (find bucket) and Snapshot
// (invert to a percentile). Buckets are le-inclusive; the last slot is
// +Inf, mirroring the registry histograms.
size_t BucketFor(double seconds, const std::vector<double>& bounds) {
  for (size_t i = 0; i < bounds.size(); ++i) {
    if (seconds <= bounds[i]) return i;
  }
  return bounds.size();
}

// Upper bound of the first bucket whose cumulative count reaches
// `rank` — the classic histogram-quantile estimate. The +Inf bucket
// reports the largest finite bound (there is nothing tighter to say).
double QuantileFromCounts(const std::vector<uint64_t>& counts,
                          const std::vector<double>& bounds, double q) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  const uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(total));
  uint64_t seen = 0;
  for (size_t i = 0; i < counts.size(); ++i) {
    seen += counts[i];
    if (seen > rank) {
      return i < bounds.size() ? bounds[i] : bounds.back();
    }
  }
  return bounds.back();
}

}  // namespace

const std::vector<double>& StatementLatencyBounds() {
  static const std::vector<double>* bounds =
      new std::vector<double>(MetricsRegistry::DefaultLatencyBoundsSeconds());
  return *bounds;
}

StatementStore::StatementStore(size_t capacity)
    : per_shard_capacity_(std::max<size_t>(1, capacity / kShards)) {}

void StatementStore::Record(const StatementSample& sample) {
  Key key{sample.fingerprint, sample.kind};
  Shard& shard = shards_[sample.fingerprint % kShards];
  bool inserted = false;
  bool evicted = false;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      if (shard.index.size() >= per_shard_capacity_) {
        // Evict the least-recently-updated digest of this shard.
        auto victim = std::prev(shard.lru.end());
        shard.index.erase(victim->first);
        shard.lru.erase(victim);
        evicted = true;
      }
      StatementDigest fresh;
      fresh.fingerprint = sample.fingerprint;
      fresh.kind = sample.kind;
      fresh.normalized = sample.normalized;
      fresh.latency_counts.assign(StatementLatencyBounds().size() + 1, 0);
      shard.lru.emplace_front(key, std::move(fresh));
      it = shard.index.emplace(std::move(key), shard.lru.begin()).first;
      inserted = true;
    } else if (it->second != shard.lru.begin()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    }

    StatementDigest& d = it->second->second;
    d.calls += 1;
    if (sample.error) d.errors += 1;
    if (sample.cache_hit) {
      d.cache_hits += 1;
    } else if (!sample.error) {
      d.cache_misses += 1;
    }
    if (sample.compiled) d.compiled_calls += 1;
    d.total_seconds += sample.elapsed_seconds;
    d.max_seconds = std::max(d.max_seconds, sample.elapsed_seconds);
    d.latency_counts[BucketFor(sample.elapsed_seconds,
                               StatementLatencyBounds())] += 1;
    d.total_rows += sample.rows;
    d.total_width += sample.width;
    d.max_width = std::max(d.max_width, sample.width);
    d.peak_batch_bytes =
        std::max(d.peak_batch_bytes, sample.resources.peak_batch_bytes);
    d.peak_lineage_bytes =
        std::max(d.peak_lineage_bytes, sample.resources.peak_lineage_bytes);
    d.lineage_events += sample.resources.lineage_events;
    d.worlds_sampled += sample.resources.worlds_sampled;
  }

  if (inserted && !evicted) tracked_.fetch_add(1, std::memory_order_relaxed);
  if (evicted && !inserted) tracked_.fetch_sub(1, std::memory_order_relaxed);
  if (evicted) evictions_.fetch_add(1, std::memory_order_relaxed);
  if (inserted || evicted) PublishGauges();
  if (evicted && evictions_counter_ != nullptr) {
    evictions_counter_->Increment();
  }
}

std::vector<StatementDigest> StatementStore::Snapshot() const {
  std::vector<StatementDigest> out;
  out.reserve(tracked_.load(std::memory_order_relaxed));
  const std::vector<double>& bounds = StatementLatencyBounds();
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [key, digest] : shard.lru) {
      out.push_back(digest);
      out.back().p50_seconds =
          QuantileFromCounts(digest.latency_counts, bounds, 0.50);
      out.back().p99_seconds =
          QuantileFromCounts(digest.latency_counts, bounds, 0.99);
    }
  }
  return out;
}

size_t StatementStore::Reset() {
  size_t dropped = 0;
  for (Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    dropped += shard.index.size();
    shard.index.clear();
    shard.lru.clear();
  }
  tracked_.fetch_sub(dropped, std::memory_order_relaxed);
  PublishGauges();
  return dropped;
}

void StatementStore::BindMetrics(Gauge* tracked, Counter* evictions) {
  tracked_gauge_ = tracked;
  evictions_counter_ = evictions;
  PublishGauges();
}

void StatementStore::PublishGauges() {
  if (tracked_gauge_ != nullptr) {
    tracked_gauge_->Set(
        static_cast<double>(tracked_.load(std::memory_order_relaxed)));
  }
}

}  // namespace mrsl
