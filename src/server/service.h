// StoreService: the HTTP face of a BidStore.
//
// Endpoints (all on the loopback server of server.h):
//
//   POST /query      body = plan text (pdb/plan.h syntax). Answers JSON:
//                    epoch, canonical plan, kind, safety flag, and the
//                    kind's payload (rows with [lower, upper] marginals /
//                    exists interval / expected count + distribution).
//                    `?oracle=N` adds a Monte-Carlo cross-check over N
//                    sampled worlds (the CLI's --oracle). `?width=W` /
//                    `?budget_ms=B` route the plan through the safe-plan
//                    compiler (pdb/compiler.h): unsafe shapes answer a
//                    dissociation-lattice envelope tightened until the
//                    mean bounds width reaches W or the time budget B is
//                    spent (either alone works; width=0 means "as tight
//                    as the world budget allows"). Compiled answers add
//                    a "compile" JSON object and the X-Mrsl-Compiled
//                    header, and are cached apart from plain answers —
//                    the cache key carries the compiler configuration.
//                    The body is a pure function of (epoch, plan,
//                    oracle, compiler options) — cache status travels in
//                    the X-Mrsl-Cache header and wall times in metrics,
//                    so hits and misses stay byte-identical.
//   POST /update     body = delta CSV (core/delta.h). Applies the delta
//                    with incremental re-derivation and answers the
//                    commit stats as JSON. Row-indexed deltas (updates/
//                    deletes) are guarded by an epoch compare-and-swap:
//                    if another commit landed since this request's
//                    epoch (or the one pinned via the X-Mrsl-Epoch
//                    request header), the answer is 409 and nothing is
//                    applied — re-read and re-address the delta.
//   GET  /snapshot   the current epoch as snapshot_io bytes.
//   GET  /healthz    liveness + current epoch + library version.
//   GET  /metrics    Prometheus text: the server's per-endpoint series
//                    plus this service's batch/cache/commit series.
//   GET  /debug/traces  recent completed traces from the process-wide
//                    TraceStore ring (?trace=1 forces one; --trace-sample
//                    samples in the background). `?format=chrome` renders
//                    Chrome trace_event JSON for chrome://tracing;
//                    `?limit=N` keeps only the N newest.
//   GET  /debug/slow the slow-query log: queries whose handler wall time
//                    reached slow_query_ms, newest-capped ring of 32,
//                    each with its canonical plan, elapsed time, epoch,
//                    and (when the request was traced) its span tree.
//
// EXPLAIN ANALYZE: POST /query?trace=1 forces a trace and appends a
// "trace" object (the query span subtree: parse / evaluate / combine,
// or the compiler's phases) to the response body. The body up to that
// field is byte-identical to the untraced response — the trace never
// joins the plan-cache key and spans never influence evaluation.
//
// Query batching: handler tasks enqueue their plan text and, when no
// leader is active, one of them becomes the batch leader. The leader
// drains ONE group (up to max_batch entries) and evaluates it through
// ONE pinned snapshot (BidStore::QueryBatch) — so concurrent /query
// requests resolve against one consistent epoch and share one
// PlanCache-aware pass — then releases leadership and returns as soon
// as its own entry is answered. Under sustained load the next waiter
// leads the next group (no request is delayed behind later arrivals);
// no dedicated batching thread exists, so an idle server burns
// nothing.
//
// Update group commit: /update requests batch the same way on a
// separate lane. The commit leader drains one group, merges every
// insert-only unpinned delta into ONE combined commit (one epoch, one
// re-derivation), applies the remaining epoch-guarded deltas
// individually, then issues ONE BidStore::SyncWal for the whole group —
// so N concurrent writers cost one fsync, and nobody sees HTTP 200
// before the fsync that covers their record returned. Without a WAL the
// sync is a no-op and the batching still amortizes commit overhead.

#ifndef MRSL_SERVER_SERVICE_H_
#define MRSL_SERVER_SERVICE_H_

#include <condition_variable>
#include <cstddef>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "pdb/store.h"
#include "server/http.h"
#include "server/server.h"
#include "server/statements.h"

namespace mrsl {

struct StoreServiceOptions {
  /// Cap on plans evaluated per drained batch group (keeps one leader
  /// pass from starving its own followers behind a huge group).
  size_t max_batch = 64;

  /// Cap on deltas committed per drained update group — the group-commit
  /// unit: one leader drains a group, commits it, and issues ONE WAL
  /// fsync for all of it before anyone is acknowledged.
  size_t max_update_batch = 32;

  /// Cap on ?oracle trials (the oracle is CPU-heavy; a remote caller
  /// must not be able to order up an unbounded amount of sampling).
  size_t max_oracle_trials = 200000;

  /// Cap on ?budget_ms — the anytime compiler keeps a core busy for the
  /// whole budget, so a remote caller must not be able to order up an
  /// unbounded amount of refinement.
  size_t max_compile_budget_ms = 10000;

  /// When false, POST /update answers 405 — a read-only replica.
  bool allow_update = true;

  /// Slow-query threshold in milliseconds: a /query whose handler wall
  /// time reaches this lands in the GET /debug/slow ring. 0 logs every
  /// query (tests); negative disables the log entirely.
  double slow_query_ms = 250.0;

  /// Total statement-digest cap across the StatementStore's shards
  /// (LRU per shard beyond it; evictions are counted and exported).
  size_t statement_capacity = 512;

  /// Statement tracking is always-on in production (the bench gates its
  /// overhead at <5%); this switch exists so bench_serve can measure a
  /// tracking-off baseline against the same binary.
  bool track_statements = true;
};

/// One GET /debug/slow entry. `fingerprint` links it to its
/// /debug/statements digest and `trace_id` (also echoed to the client
/// as X-Mrsl-Trace-Id) to its /debug/traces entry.
struct SlowQueryEntry {
  std::string trace_id;    // 16 hex digits; "" when the request was untraced
  std::string plan;        // canonical plan text
  uint64_t fingerprint = 0;
  double elapsed_ms = 0.0; // handler wall time
  uint64_t epoch = 0;
  PlanResources resources; // evaluator accounting (zero on cache hits)
  std::string spans_json;  // the query span subtree; "" when untraced
};

/// Binds a BidStore to an HttpServer. The store, engine, and server must
/// outlive the service; the service must outlive the server's Stop().
class StoreService {
 public:
  explicit StoreService(BidStore* store,
                        StoreServiceOptions options = StoreServiceOptions());

  /// Registers every endpoint on `server` and adopts its metrics
  /// registry. Call before server->Start().
  void Attach(HttpServer* server);

  /// Queries evaluated since Attach (batched + solo), for tests.
  uint64_t queries_served() const;

  /// Group commit: enqueues the delta, runs or joins the commit leader,
  /// returns once this delta is committed AND the WAL fsync covering it
  /// returned (the durability line an HTTP 200 stands for). Insert-only
  /// deltas with no epoch pin merge into one combined commit (one
  /// epoch); everything in the drained group shares one fsync. Public
  /// as the embedded programmatic write entry — /update is this plus
  /// CSV parsing and a JSON envelope.
  Result<CommitStats> BatchedUpdate(RelationDelta delta,
                                    uint64_t expected_epoch,
                                    TraceSpan trace = TraceSpan());

  /// The workload-analytics digests (exported at /debug/statements);
  /// exposed for tests and embedded use.
  StatementStore* statements() { return &statements_; }

 private:
  struct PendingQuery;
  struct PendingUpdate;

  HttpResponse HandleQuery(const HttpRequest& request);
  HttpResponse HandleUpdate(const HttpRequest& request);
  HttpResponse HandleSnapshot(const HttpRequest& request);
  HttpResponse HandleHealthz(const HttpRequest& request);
  HttpResponse HandleMetrics(const HttpRequest& request);
  HttpResponse HandleDebugTraces(const HttpRequest& request);
  HttpResponse HandleDebugSlow(const HttpRequest& request);
  HttpResponse HandleDebugStatements(const HttpRequest& request);
  HttpResponse HandleDebugStatementsReset(const HttpRequest& request);

  /// Enqueues `text`, runs or joins the batch leader, returns this
  /// query's result (see the batching note above). `span` (usually
  /// inert) rides the queue entry, so a sampled request traced through
  /// the batcher still records its parse/evaluate/combine spans.
  Result<StoreQueryResult> BatchedQuery(const std::string& text,
                                        TraceSpan span = TraceSpan());

  /// Appends one entry to the /debug/slow ring (capacity 32, oldest
  /// evicted) and bumps mrsl_slow_queries_total.
  void RecordSlowQuery(SlowQueryEntry entry);

  /// Commits one drained group: merged inserts first, then the
  /// individually-guarded deltas, then one SyncWal for everything.
  void CommitUpdateGroup(
      const std::vector<std::shared_ptr<PendingUpdate>>& group);

  /// Records one query's per-stage wall times into the
  /// mrsl_query_stage_seconds{stage=parse|evaluate|combine} histograms
  /// (evaluate/combine only on plan-cache misses).
  void ObserveQueryStages(const QueryStageTimes& stages, bool from_cache);

  /// Publishes the WAL depth gauges after a commit or checkpoint.
  void UpdateWalGauges();

  BidStore* store_;
  StoreServiceOptions options_;
  MetricsRegistry* metrics_ = nullptr;  // owned by the attached server

  std::mutex batch_mutex_;
  std::condition_variable batch_cv_;
  bool leader_active_ = false;
  std::vector<std::shared_ptr<PendingQuery>> batch_queue_;

  // The update (group-commit) batcher — same leader rotation as the
  // query batcher, separate lane so commits never wait behind reads.
  std::mutex update_mutex_;
  std::condition_variable update_cv_;
  bool update_leader_active_ = false;
  std::vector<std::shared_ptr<PendingUpdate>> update_queue_;
  // Last drained group's size — the adaptive target for the commit
  // window (1 = serial workload, window off). Guarded by update_mutex_.
  size_t last_update_group_ = 1;

  // Per-shape workload digests (always-on; see statements.h).
  StatementStore statements_;

  // The /debug/slow ring (see SlowQueryEntry).
  static constexpr size_t kSlowRingCapacity = 32;
  mutable std::mutex slow_mutex_;
  std::vector<SlowQueryEntry> slow_ring_;
  size_t slow_next_ = 0;        // write cursor, valid once full
  uint64_t slow_recorded_ = 0;  // total ever recorded
};

}  // namespace mrsl

#endif  // MRSL_SERVER_SERVICE_H_
