// Hash join, dimension side built first. Because each relation dictionary-
// encodes its own domains, keys are matched on their string labels, not on
// ValueIds. Primary-key uniqueness is enforced while indexing; with
// keep_unmatched set, a dangling or missing foreign key degrades to
// kMissingValue dimension cells (a left outer join) so the downstream
// learner just sees more incompleteness rather than losing the row.

#include "relational/join.h"

#include <unordered_map>
#include <unordered_set>

namespace mrsl {

Result<Relation> PkFkJoin(const Relation& fact, const std::string& fk_attr,
                          const Relation& dim, const std::string& pk_attr,
                          const JoinOptions& options) {
  AttrId fk = 0;
  AttrId pk = 0;
  if (!fact.schema().FindAttr(fk_attr, &fk)) {
    return Status::NotFound("fact relation has no attribute " + fk_attr);
  }
  if (!dim.schema().FindAttr(pk_attr, &pk)) {
    return Status::NotFound("dimension relation has no attribute " +
                            pk_attr);
  }

  // Key domains are dictionary-encoded per relation, so match on labels.
  const Attribute& fk_dom = fact.schema().attr(fk);
  const Attribute& pk_dom = dim.schema().attr(pk);

  // Index the dimension by key label; enforce uniqueness.
  std::unordered_map<std::string, uint32_t> dim_index;
  for (size_t r = 0; r < dim.num_rows(); ++r) {
    ValueId key = dim.row(r).value(pk);
    if (key == kMissingValue) continue;
    auto [it, inserted] =
        dim_index.emplace(pk_dom.label(key), static_cast<uint32_t>(r));
    if (!inserted) {
      return Status::FailedPrecondition(
          pk_attr + " is not a primary key: duplicate value " +
          pk_dom.label(key));
    }
  }

  // Output schema: fact attrs (minus key when dropping) + dim non-key
  // attrs (minus key), de-duplicating names.
  std::vector<Attribute> attrs;
  std::unordered_set<std::string> names;
  std::vector<AttrId> fact_cols;
  for (AttrId a = 0; a < fact.schema().num_attrs(); ++a) {
    if (options.drop_key_columns && a == fk) continue;
    attrs.push_back(fact.schema().attr(a));
    names.insert(fact.schema().attr(a).name());
    fact_cols.push_back(a);
  }
  std::vector<AttrId> dim_cols;
  for (AttrId a = 0; a < dim.schema().num_attrs(); ++a) {
    if (a == pk) continue;
    const Attribute& src = dim.schema().attr(a);
    std::string name = src.name();
    if (names.count(name)) name += options.dedup_suffix;
    std::vector<std::string> labels;
    for (size_t v = 0; v < src.cardinality(); ++v) {
      labels.push_back(src.label(static_cast<ValueId>(v)));
    }
    attrs.emplace_back(std::move(name), std::move(labels));
    dim_cols.push_back(a);
  }
  auto schema = Schema::Create(std::move(attrs));
  if (!schema.ok()) return schema.status();
  Relation out(std::move(schema).value());

  for (size_t r = 0; r < fact.num_rows(); ++r) {
    const Tuple& row = fact.row(r);
    ValueId key = row.value(fk);
    const Tuple* match = nullptr;
    if (key != kMissingValue) {
      auto it = dim_index.find(fk_dom.label(key));
      if (it != dim_index.end()) match = &dim.row(it->second);
    }
    if (match == nullptr && !options.keep_unmatched) continue;

    Tuple joined(out.schema().num_attrs());
    size_t c = 0;
    for (AttrId a : fact_cols) {
      joined.set_value(static_cast<AttrId>(c++), row.value(a));
    }
    for (AttrId a : dim_cols) {
      ValueId v = match == nullptr ? kMissingValue : match->value(a);
      joined.set_value(static_cast<AttrId>(c++), v);
    }
    MRSL_RETURN_IF_ERROR(out.Append(std::move(joined)));
  }
  return out;
}

}  // namespace mrsl
