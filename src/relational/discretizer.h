// Discretizer: bucketing of continuous attributes into sub-ranges.
//
// The paper limits itself to discrete finite domains and "propose[s] to
// break up the domains of continuous attributes into sub-ranges,
// treating each sub-range as a discrete value" (Sec II). This module
// implements that preprocessing step: equal-width and equal-frequency
// bucketing of numeric CSV columns, producing labeled interval domains
// like "[18.0,32.5)" that flow through the rest of the pipeline
// unchanged.

#ifndef MRSL_RELATIONAL_DISCRETIZER_H_
#define MRSL_RELATIONAL_DISCRETIZER_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "util/result.h"

namespace mrsl {

/// Bucketing strategy for one numeric attribute.
enum class BucketStrategy {
  kEqualWidth,      // equal-length intervals over [min, max]
  kEqualFrequency,  // quantile boundaries: ~equal row counts per bucket
};

/// Per-attribute discretization request.
struct DiscretizeSpec {
  std::string attribute;  // column to discretize
  size_t num_buckets = 4;
  BucketStrategy strategy = BucketStrategy::kEqualWidth;
};

/// The learned bucket boundaries for one attribute; applies to new data.
struct BucketMap {
  std::string attribute;
  /// Ascending inner boundaries; bucket i covers
  /// (boundaries[i-1], boundaries[i]] with open ends at the extremes.
  std::vector<double> boundaries;
  /// Human-readable labels, one per bucket.
  std::vector<std::string> labels;

  /// Bucket index for `value`.
  size_t BucketOf(double value) const;
};

/// Discretizes the requested numeric columns of a raw CSV table (header
/// row + data rows; "?" or empty = missing). Non-requested columns pass
/// through as categorical labels. Fails when a requested column contains
/// a non-numeric, non-missing cell, or has fewer distinct values than
/// buckets under equal-frequency bucketing.
struct DiscretizeResult {
  Relation relation;
  std::vector<BucketMap> maps;
};
Result<DiscretizeResult> DiscretizeCsv(std::string_view csv_text,
                                       const std::vector<DiscretizeSpec>& specs);

/// Learns bucket boundaries from raw values (used by DiscretizeCsv and
/// directly testable). Fails on empty input or num_buckets < 2.
Result<BucketMap> LearnBuckets(const std::string& attribute,
                               std::vector<double> values,
                               size_t num_buckets, BucketStrategy strategy);

}  // namespace mrsl

#endif  // MRSL_RELATIONAL_DISCRETIZER_H_
