// Schema: named attributes with discrete, dictionary-encoded domains.

#ifndef MRSL_RELATIONAL_SCHEMA_H_
#define MRSL_RELATIONAL_SCHEMA_H_

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "relational/value.h"
#include "util/result.h"

namespace mrsl {

/// One attribute: a name plus the dictionary of its domain labels.
class Attribute {
 public:
  /// Creates an attribute with an (initially empty) domain.
  explicit Attribute(std::string name) : name_(std::move(name)) {}

  /// Creates an attribute with a fixed label set.
  Attribute(std::string name, std::vector<std::string> labels);

  const std::string& name() const { return name_; }

  /// Domain cardinality |dom(a)|.
  size_t cardinality() const { return labels_.size(); }

  /// Label of value `v`. Requires 0 <= v < cardinality().
  const std::string& label(ValueId v) const;

  /// Looks up a label; returns kMissingValue when absent.
  ValueId Find(const std::string& label) const;

  /// Looks up a label, inserting it if new; returns its ValueId.
  ValueId FindOrAdd(const std::string& label);

 private:
  std::string name_;
  std::vector<std::string> labels_;
  std::unordered_map<std::string, ValueId> index_;
};

/// An ordered set of attributes.
class Schema {
 public:
  Schema() = default;

  /// Builds a schema from ready-made attributes. Fails when names collide
  /// or there are more than kMaxAttributes attributes.
  static Result<Schema> Create(std::vector<Attribute> attributes);

  /// Number of attributes.
  size_t num_attrs() const { return attrs_.size(); }

  /// Attribute by position.
  const Attribute& attr(AttrId i) const { return attrs_[i]; }
  Attribute& attr(AttrId i) { return attrs_[i]; }

  /// Position of the attribute named `name`, or nullopt-like -1 cast?
  /// Returns true and sets *id on success.
  bool FindAttr(const std::string& name, AttrId* id) const;

  /// Product of all attribute cardinalities (the paper's "dom. size").
  /// Saturates at uint64 max.
  uint64_t DomainSize() const;

  /// Bitmask covering every attribute.
  AttrMask FullMask() const;

 private:
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, AttrId> by_name_;
};

/// OK iff `actual` matches `expected` attribute by attribute — names,
/// cardinalities, and labels. ValueIds are indices into a schema's
/// label lists, so any consumer about to interpret tuples from one
/// schema against another (snapshot restore, cache seeding) must pass
/// this check first; the error message names the first mismatch.
Status CheckSchemasMatch(const Schema& expected, const Schema& actual);

}  // namespace mrsl

#endif  // MRSL_RELATIONAL_SCHEMA_H_
