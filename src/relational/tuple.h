// Tuple: a (possibly incomplete) assignment of values to attributes.
//
// Implements the paper's Definitions 2.1-2.4: complete tuples ("points"),
// incomplete tuples with "?" cells, the matching relation between points
// and incomplete tuples, and tuple subsumption (t2 "<" t1 when t1's complete
// portion is a proper subset of t2's and they agree on it).

#ifndef MRSL_RELATIONAL_TUPLE_H_
#define MRSL_RELATIONAL_TUPLE_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace mrsl {

/// A row: one ValueId per attribute, kMissingValue for "?".
class Tuple {
 public:
  Tuple() = default;

  /// Creates an all-missing tuple over `num_attrs` attributes.
  explicit Tuple(size_t num_attrs)
      : values_(num_attrs, kMissingValue) {}

  /// Creates a tuple from explicit cell values.
  explicit Tuple(std::vector<ValueId> values) : values_(std::move(values)) {}

  size_t num_attrs() const { return values_.size(); }

  ValueId value(AttrId a) const { return values_[a]; }
  void set_value(AttrId a, ValueId v) { values_[a] = v; }

  const std::vector<ValueId>& values() const { return values_; }

  /// Bitmask of assigned (non-missing) attributes — the "complete portion".
  AttrMask CompleteMask() const;

  /// True iff every attribute is assigned (Def 2.2: a point).
  bool IsComplete() const;

  /// Number of missing cells.
  size_t NumMissing() const;

  /// Indices of missing attributes, ascending.
  std::vector<AttrId> MissingAttrs() const;

  /// Indices of assigned attributes, ascending.
  std::vector<AttrId> AssignedAttrs() const;

  /// Def 2.3 matching: true iff `point` agrees with this tuple on every
  /// attribute assigned here. `point` need not be complete for agreement
  /// checking, but matching in the paper's sense passes a point.
  bool MatchedBy(const Tuple& point) const;

  /// True iff this tuple and `other` assign identical values on every
  /// attribute in `mask` (attributes in `mask` must be assigned in both).
  bool AgreesOn(const Tuple& other, AttrMask mask) const;

  /// Def 2.4: true iff this tuple subsumes `other` (other "<" this), i.e.
  /// this tuple's complete portion is a PROPER subset of other's and the
  /// values agree on it.
  bool Subsumes(const Tuple& other) const;

  /// Like Subsumes but also true for equal complete portions with equal
  /// values (reflexive closure).
  bool SubsumesOrEquals(const Tuple& other) const;

  /// Renders e.g. "(age=20, edu=HS, inc=?, nw=?)".
  std::string ToString(const Schema& schema) const;

  bool operator==(const Tuple& other) const {
    return values_ == other.values_;
  }
  bool operator!=(const Tuple& other) const { return !(*this == other); }

 private:
  std::vector<ValueId> values_;
};

/// Hash functor so tuples can key hash maps (tuple-DAG dedup etc.).
struct TupleHash {
  size_t operator()(const Tuple& t) const;
};

}  // namespace mrsl

#endif  // MRSL_RELATIONAL_TUPLE_H_
