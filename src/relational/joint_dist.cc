// Dense flat array indexed by a MixedRadix codec over the (sorted)
// variable list; the constructor asserts the codec is not saturated, so a
// JointDist can only exist when the cross-product fits in memory —
// feasibility must be checked by the caller beforehand. TopK breaks
// probability ties by code so output order is deterministic.

#include "relational/joint_dist.h"

#include <cstddef>
#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "util/string_util.h"

namespace mrsl {

JointDist::JointDist(std::vector<AttrId> vars, std::vector<uint32_t> cards)
    : vars_(std::move(vars)), codec_(std::move(cards)) {
  assert(std::is_sorted(vars_.begin(), vars_.end()));
  assert(!codec_.Saturated());
  probs_.assign(codec_.Size(), 0.0);
}

double JointDist::ProbOf(const std::vector<ValueId>& combo) const {
  return probs_[codec_.Encode(combo)];
}

double JointDist::Sum() const {
  return std::accumulate(probs_.begin(), probs_.end(), 0.0);
}

void JointDist::Normalize() {
  double total = Sum();
  if (total <= 0.0) return;
  for (double& p : probs_) p /= total;
}

void JointDist::SmoothAdditive(double epsilon) {
  for (double& p : probs_) p += epsilon;
  Normalize();
}

uint64_t JointDist::ArgMax() const {
  return static_cast<uint64_t>(
      std::max_element(probs_.begin(), probs_.end()) - probs_.begin());
}

double JointDist::Entropy() const {
  double h = 0.0;
  for (double p : probs_) {
    if (p > 0.0) h -= p * std::log(p);
  }
  return h;
}

std::vector<std::pair<uint64_t, double>> JointDist::TopK(size_t k) const {
  std::vector<std::pair<uint64_t, double>> entries;
  entries.reserve(probs_.size());
  for (uint64_t code = 0; code < probs_.size(); ++code) {
    entries.emplace_back(code, probs_[code]);
  }
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  if (entries.size() > k) entries.resize(k);
  return entries;
}

std::vector<double> JointDist::Marginal(size_t pos) const {
  std::vector<double> out(codec_.card(pos), 0.0);
  std::vector<ValueId> combo(vars_.size());
  for (uint64_t code = 0; code < codec_.Size(); ++code) {
    codec_.DecodeInto(code, combo.data());
    out[static_cast<size_t>(combo[pos])] += probs_[code];
  }
  return out;
}

std::string JointDist::ToString(const Schema& schema, size_t top_k) const {
  std::vector<uint64_t> order(probs_.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](uint64_t a, uint64_t b) {
    return probs_[a] > probs_[b];
  });
  std::string out;
  std::vector<ValueId> combo(vars_.size());
  for (size_t i = 0; i < std::min<size_t>(top_k, order.size()); ++i) {
    codec_.DecodeInto(order[i], combo.data());
    out += "  ";
    for (size_t j = 0; j < vars_.size(); ++j) {
      if (j != 0) out += ", ";
      out += schema.attr(vars_[j]).name();
      out += '=';
      out += schema.attr(vars_[j]).label(combo[j]);
    }
    out += "  p=" + FormatDouble(probs_[order[i]], 4) + "\n";
  }
  return out;
}

}  // namespace mrsl
