// Primary-key / foreign-key join of two relations.
//
// Sec I-B: "we may exploit correlations that hold across relations, by
// computing a primary-foreign key join when appropriate". This module
// materializes that join so the MRSL learner can mine cross-relation
// correlations from the combined tuple space. Missing foreign keys
// produce rows whose right-hand attributes are all missing (left outer
// join), preserving the incomplete-tuple semantics.

#ifndef MRSL_RELATIONAL_JOIN_H_
#define MRSL_RELATIONAL_JOIN_H_

#include <string>

#include "relational/relation.h"
#include "util/result.h"

namespace mrsl {

/// Options for PkFkJoin.
struct JoinOptions {
  /// Keep left rows whose foreign key has no match (or is missing) with
  /// all right-hand attributes set to "?" (left outer join). When false,
  /// such rows are dropped (inner join).
  bool keep_unmatched = true;

  /// Drop the key columns from the output (they are constants within a
  /// group and would otherwise dominate the mined rules).
  bool drop_key_columns = false;

  /// Suffix applied to right-hand attribute names that clash with
  /// left-hand ones.
  std::string dedup_suffix = "_r";
};

/// Joins `fact.fk_attr` (foreign key) against `dim.pk_attr` (primary
/// key). Fails when the named attributes do not exist, or when `pk_attr`
/// is not unique within `dim`'s complete cells. The output schema is the
/// fact schema followed by the dimension's non-key attributes.
Result<Relation> PkFkJoin(const Relation& fact, const std::string& fk_attr,
                          const Relation& dim, const std::string& pk_attr,
                          const JoinOptions& options = {});

}  // namespace mrsl

#endif  // MRSL_RELATIONAL_JOIN_H_
