// Core value typedefs for the dictionary-encoded relational layer.
//
// All attributes are discrete and finite (the paper buckets continuous
// domains): a cell is the index of its label in the attribute's domain,
// with kMissingValue denoting the "?" of an incomplete tuple.

#ifndef MRSL_RELATIONAL_VALUE_H_
#define MRSL_RELATIONAL_VALUE_H_

#include <cstdint>

namespace mrsl {

/// Index of a value within its attribute's domain; kMissingValue when "?".
using ValueId = int32_t;

/// Index of an attribute within a schema.
using AttrId = uint32_t;

/// Bitmask over attributes (bit i set <=> attribute i assigned).
/// Schemas are limited to 64 attributes, far above the paper's 4-10.
using AttrMask = uint64_t;

/// The "?" marker of an incomplete tuple.
inline constexpr ValueId kMissingValue = -1;

/// Maximum number of attributes in a schema.
inline constexpr AttrId kMaxAttributes = 64;

}  // namespace mrsl

#endif  // MRSL_RELATIONAL_VALUE_H_
