// Relation: a single-schema bag of tuples, split into the complete part Rc
// (points) and incomplete part Ri, with support counting (Def 2.3) and
// CSV import/export ("?" marks a missing cell).

#ifndef MRSL_RELATIONAL_RELATION_H_
#define MRSL_RELATIONAL_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "util/result.h"

namespace mrsl {

/// A relation instance over a fixed schema.
class Relation {
 public:
  Relation() = default;

  /// Creates an empty relation over `schema`.
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  Schema& mutable_schema() { return schema_; }

  size_t num_rows() const { return rows_.size(); }
  const Tuple& row(size_t i) const { return rows_[i]; }
  const std::vector<Tuple>& rows() const { return rows_; }

  /// Appends a tuple; fails if its arity differs from the schema.
  Status Append(Tuple t);

  /// Indices of complete rows (the paper's Rc).
  std::vector<uint32_t> CompleteRowIndices() const;

  /// Indices of incomplete rows (the paper's Ri).
  std::vector<uint32_t> IncompleteRowIndices() const;

  /// Number of points in Rc matching `t` (Def 2.3 numerator).
  size_t CountMatches(const Tuple& t) const;

  /// Def 2.3 support: fraction of Rc points matching `t`.
  /// Returns 0 when Rc is empty.
  double Support(const Tuple& t) const;

  /// Parses a CSV document: first row = attribute names, "?" (or empty
  /// string) = missing. Domains are built from the observed labels in
  /// first-appearance order.
  static Result<Relation> FromCsv(std::string_view text);

  /// Serializes to CSV with "?" for missing cells.
  std::string ToCsv() const;

  /// Convenience: loads FromCsv from a file.
  static Result<Relation> LoadCsvFile(const std::string& path);

  /// Convenience: writes ToCsv to a file.
  Status SaveCsvFile(const std::string& path) const;

 private:
  Schema schema_;
  std::vector<Tuple> rows_;
};

}  // namespace mrsl

#endif  // MRSL_RELATIONAL_RELATION_H_
