// Attributes keep a bidirectional label<->ValueId dictionary; FindOrAdd
// appends, so domains only ever grow and existing ids stay stable.
// Schema::Create enforces the kMaxAttributes cap (AttrMask is a uint64
// bitset) and unique names up front; DomainSize saturates at uint64 max
// instead of overflowing so callers can test feasibility of dense storage.

#include "relational/schema.h"

#include <cassert>
#include <cstddef>
#include <limits>

namespace mrsl {

Attribute::Attribute(std::string name, std::vector<std::string> labels)
    : name_(std::move(name)), labels_(std::move(labels)) {
  for (size_t i = 0; i < labels_.size(); ++i) {
    index_.emplace(labels_[i], static_cast<ValueId>(i));
  }
}

const std::string& Attribute::label(ValueId v) const {
  assert(v >= 0 && static_cast<size_t>(v) < labels_.size());
  return labels_[static_cast<size_t>(v)];
}

ValueId Attribute::Find(const std::string& label) const {
  auto it = index_.find(label);
  return it == index_.end() ? kMissingValue : it->second;
}

ValueId Attribute::FindOrAdd(const std::string& label) {
  auto it = index_.find(label);
  if (it != index_.end()) return it->second;
  ValueId id = static_cast<ValueId>(labels_.size());
  labels_.push_back(label);
  index_.emplace(label, id);
  return id;
}

Result<Schema> Schema::Create(std::vector<Attribute> attributes) {
  if (attributes.size() > kMaxAttributes) {
    return Status::InvalidArgument("schema exceeds " +
                                   std::to_string(kMaxAttributes) +
                                   " attributes");
  }
  Schema s;
  for (size_t i = 0; i < attributes.size(); ++i) {
    auto [it, inserted] =
        s.by_name_.emplace(attributes[i].name(), static_cast<AttrId>(i));
    if (!inserted) {
      return Status::InvalidArgument("duplicate attribute name: " +
                                     attributes[i].name());
    }
  }
  s.attrs_ = std::move(attributes);
  return s;
}

bool Schema::FindAttr(const std::string& name, AttrId* id) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) return false;
  *id = it->second;
  return true;
}

uint64_t Schema::DomainSize() const {
  uint64_t prod = 1;
  for (const auto& a : attrs_) {
    uint64_t card = a.cardinality();
    if (card == 0) return 0;
    if (prod > std::numeric_limits<uint64_t>::max() / card) {
      return std::numeric_limits<uint64_t>::max();
    }
    prod *= card;
  }
  return prod;
}

AttrMask Schema::FullMask() const {
  return attrs_.size() == 64 ? ~AttrMask{0}
                             : ((AttrMask{1} << attrs_.size()) - 1);
}

Status CheckSchemasMatch(const Schema& expected, const Schema& actual) {
  if (expected.num_attrs() != actual.num_attrs()) {
    return Status::InvalidArgument(
        "schema has " + std::to_string(actual.num_attrs()) +
        " attributes, want " + std::to_string(expected.num_attrs()));
  }
  for (AttrId a = 0; a < expected.num_attrs(); ++a) {
    const Attribute& want = expected.attr(a);
    const Attribute& got = actual.attr(a);
    if (want.name() != got.name()) {
      return Status::InvalidArgument("attribute '" + got.name() +
                                     "' does not match expected '" +
                                     want.name() + "'");
    }
    if (want.cardinality() != got.cardinality()) {
      return Status::InvalidArgument(
          "attribute '" + got.name() + "' has " +
          std::to_string(got.cardinality()) + " labels, want " +
          std::to_string(want.cardinality()));
    }
    for (size_t v = 0; v < want.cardinality(); ++v) {
      if (want.label(static_cast<ValueId>(v)) !=
          got.label(static_cast<ValueId>(v))) {
        return Status::InvalidArgument(
            "label '" + got.label(static_cast<ValueId>(v)) +
            "' of attribute '" + got.name() + "' does not match expected '" +
            want.label(static_cast<ValueId>(v)) + "'");
      }
    }
  }
  return Status::OK();
}

}  // namespace mrsl
