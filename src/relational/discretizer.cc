// Two-pass over the raw CSV text: pass one collects the numeric values per
// requested column and learns the bucket boundaries (equal-width from the
// min/max, equal-frequency from de-duplicated quantiles — ties can merge
// buckets, so fewer than num_buckets may come back); pass two rewrites the
// cells to interval labels and re-parses through Relation::FromCsv so the
// dictionary encoding stays on the one ingestion path. Outer buckets are
// open-ended ("(-inf", "+inf)"), making the map total on unseen values.

#include "relational/discretizer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/csv.h"
#include "util/string_util.h"

namespace mrsl {
namespace {

std::string IntervalLabel(double lo, double hi, bool first, bool last) {
  std::string out;
  out += first ? "(-inf" : "[" + FormatDouble(lo, 3);
  out += ",";
  out += last ? "+inf)" : FormatDouble(hi, 3) + ")";
  return out;
}

}  // namespace

size_t BucketMap::BucketOf(double value) const {
  // boundaries[i] is the exclusive upper end of bucket i.
  size_t i = 0;
  while (i < boundaries.size() && value >= boundaries[i]) ++i;
  return i;
}

Result<BucketMap> LearnBuckets(const std::string& attribute,
                               std::vector<double> values,
                               size_t num_buckets, BucketStrategy strategy) {
  if (num_buckets < 2) {
    return Status::InvalidArgument("need at least 2 buckets");
  }
  if (values.empty()) {
    return Status::FailedPrecondition("no numeric values for attribute " +
                                      attribute);
  }
  std::sort(values.begin(), values.end());
  const double lo = values.front();
  const double hi = values.back();

  BucketMap map;
  map.attribute = attribute;
  if (strategy == BucketStrategy::kEqualWidth) {
    if (hi <= lo) {
      return Status::FailedPrecondition(
          "attribute " + attribute + " is constant; cannot bucket by width");
    }
    const double width = (hi - lo) / static_cast<double>(num_buckets);
    for (size_t i = 1; i < num_buckets; ++i) {
      map.boundaries.push_back(lo + width * static_cast<double>(i));
    }
  } else {
    // Equal frequency: boundaries at the k/num_buckets quantiles,
    // de-duplicated (ties can merge buckets).
    for (size_t i = 1; i < num_buckets; ++i) {
      size_t idx = i * values.size() / num_buckets;
      double b = values[std::min(idx, values.size() - 1)];
      if (map.boundaries.empty() || b > map.boundaries.back()) {
        map.boundaries.push_back(b);
      }
    }
    if (map.boundaries.empty()) {
      return Status::FailedPrecondition(
          "attribute " + attribute +
          " has too few distinct values for equal-frequency bucketing");
    }
  }
  const size_t actual = map.boundaries.size() + 1;
  for (size_t i = 0; i < actual; ++i) {
    double b_lo = i == 0 ? lo : map.boundaries[i - 1];
    double b_hi = i + 1 == actual ? hi : map.boundaries[i];
    map.labels.push_back(
        IntervalLabel(b_lo, b_hi, i == 0, i + 1 == actual));
  }
  return map;
}

Result<DiscretizeResult> DiscretizeCsv(
    std::string_view csv_text, const std::vector<DiscretizeSpec>& specs) {
  auto parsed = ParseCsv(csv_text);
  if (!parsed.ok()) return parsed.status();
  const auto& rows = parsed.value();
  if (rows.empty()) return Status::InvalidArgument("CSV has no header");
  const auto& header = rows[0];

  // Map column index -> spec.
  std::vector<const DiscretizeSpec*> col_spec(header.size(), nullptr);
  for (const DiscretizeSpec& spec : specs) {
    bool found = false;
    for (size_t c = 0; c < header.size(); ++c) {
      if (header[c] == spec.attribute) {
        col_spec[c] = &spec;
        found = true;
        break;
      }
    }
    if (!found) {
      return Status::NotFound("no column named " + spec.attribute);
    }
  }

  // First pass: collect numeric values per requested column.
  std::vector<std::vector<double>> numeric(header.size());
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != header.size()) {
      return Status::Corruption("ragged CSV row " + std::to_string(r));
    }
    for (size_t c = 0; c < header.size(); ++c) {
      if (col_spec[c] == nullptr) continue;
      const std::string& cell = rows[r][c];
      if (cell == "?" || cell.empty()) continue;
      double v = 0.0;
      if (!ParseDouble(cell, &v)) {
        return Status::InvalidArgument("non-numeric cell '" + cell +
                                       "' in column " + header[c]);
      }
      numeric[c].push_back(v);
    }
  }

  // Learn bucket maps.
  DiscretizeResult result;
  std::vector<const BucketMap*> col_map(header.size(), nullptr);
  for (size_t c = 0; c < header.size(); ++c) {
    if (col_spec[c] == nullptr) continue;
    auto map = LearnBuckets(header[c], numeric[c],
                            col_spec[c]->num_buckets,
                            col_spec[c]->strategy);
    if (!map.ok()) return map.status();
    result.maps.push_back(std::move(map).value());
  }
  {
    size_t next = 0;
    for (size_t c = 0; c < header.size(); ++c) {
      if (col_spec[c] != nullptr) col_map[c] = &result.maps[next++];
    }
  }

  // Second pass: rewrite cells and parse as a relation.
  std::vector<std::vector<std::string>> rewritten;
  rewritten.push_back(header);
  for (size_t r = 1; r < rows.size(); ++r) {
    std::vector<std::string> row = rows[r];
    for (size_t c = 0; c < header.size(); ++c) {
      if (col_map[c] == nullptr) continue;
      if (row[c] == "?" || row[c].empty()) continue;
      double v = 0.0;
      ParseDouble(row[c], &v);
      row[c] = col_map[c]->labels[col_map[c]->BucketOf(v)];
    }
    rewritten.push_back(std::move(row));
  }
  auto rel = Relation::FromCsv(WriteCsv(rewritten));
  if (!rel.ok()) return rel.status();
  result.relation = std::move(rel).value();
  return result;
}

}  // namespace mrsl
