// Rows live in one vector in insertion order; the Rc/Ri split and support
// counts are computed on demand rather than cached, so Append stays O(1)
// and callers that mutate tuples never see stale indices. FromCsv grows
// each attribute's dictionary in encounter order (FindOrAdd), which makes
// ValueIds — and therefore learned models — depend on row order; "?" and
// the empty string both decode to kMissingValue.

#include "relational/relation.h"

#include <cstddef>

#include "util/csv.h"

namespace mrsl {

Status Relation::Append(Tuple t) {
  if (t.num_attrs() != schema_.num_attrs()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(t.num_attrs()) +
        " does not match schema arity " +
        std::to_string(schema_.num_attrs()));
  }
  rows_.push_back(std::move(t));
  return Status::OK();
}

std::vector<uint32_t> Relation::CompleteRowIndices() const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].IsComplete()) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

std::vector<uint32_t> Relation::IncompleteRowIndices() const {
  std::vector<uint32_t> out;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (!rows_[i].IsComplete()) out.push_back(static_cast<uint32_t>(i));
  }
  return out;
}

size_t Relation::CountMatches(const Tuple& t) const {
  size_t n = 0;
  for (const Tuple& row : rows_) {
    if (row.IsComplete() && t.MatchedBy(row)) ++n;
  }
  return n;
}

double Relation::Support(const Tuple& t) const {
  size_t complete = 0;
  size_t matches = 0;
  for (const Tuple& row : rows_) {
    if (!row.IsComplete()) continue;
    ++complete;
    if (t.MatchedBy(row)) ++matches;
  }
  if (complete == 0) return 0.0;
  return static_cast<double>(matches) / static_cast<double>(complete);
}

Result<Relation> Relation::FromCsv(std::string_view text) {
  auto parsed = ParseCsv(text);
  if (!parsed.ok()) return parsed.status();
  const auto& rows = parsed.value();
  if (rows.empty()) return Status::InvalidArgument("CSV has no header row");

  std::vector<Attribute> attrs;
  attrs.reserve(rows[0].size());
  for (const auto& name : rows[0]) attrs.emplace_back(name);
  auto schema = Schema::Create(std::move(attrs));
  if (!schema.ok()) return schema.status();

  Relation rel(std::move(schema).value());
  for (size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].size() != rel.schema().num_attrs()) {
      return Status::Corruption("row " + std::to_string(r) + " has " +
                                std::to_string(rows[r].size()) +
                                " fields, expected " +
                                std::to_string(rel.schema().num_attrs()));
    }
    Tuple t(rel.schema().num_attrs());
    for (size_t c = 0; c < rows[r].size(); ++c) {
      const std::string& cell = rows[r][c];
      if (cell == "?" || cell.empty()) continue;
      t.set_value(static_cast<AttrId>(c),
                  rel.mutable_schema().attr(static_cast<AttrId>(c))
                      .FindOrAdd(cell));
    }
    MRSL_RETURN_IF_ERROR(rel.Append(std::move(t)));
  }
  return rel;
}

std::string Relation::ToCsv() const {
  std::vector<std::vector<std::string>> out;
  std::vector<std::string> header;
  for (size_t i = 0; i < schema_.num_attrs(); ++i) {
    header.push_back(schema_.attr(static_cast<AttrId>(i)).name());
  }
  out.push_back(std::move(header));
  for (const Tuple& t : rows_) {
    std::vector<std::string> row;
    for (size_t i = 0; i < schema_.num_attrs(); ++i) {
      ValueId v = t.value(static_cast<AttrId>(i));
      row.push_back(v == kMissingValue
                        ? "?"
                        : schema_.attr(static_cast<AttrId>(i)).label(v));
    }
    out.push_back(std::move(row));
  }
  return WriteCsv(out);
}

Result<Relation> Relation::LoadCsvFile(const std::string& path) {
  auto text = ReadFile(path);
  if (!text.ok()) return text.status();
  return FromCsv(text.value());
}

Status Relation::SaveCsvFile(const std::string& path) const {
  return WriteFile(path, ToCsv());
}

}  // namespace mrsl
