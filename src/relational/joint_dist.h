// JointDist: a discrete joint probability distribution over a subset of
// attributes, stored densely over the Cartesian product of their domains.
//
// This is the common currency of the library: exact BN inference produces
// one (ground truth), Gibbs sampling estimates one (the paper's Δt), and
// the probabilistic-database layer consumes one per incomplete tuple as a
// block of mutually exclusive completions.

#ifndef MRSL_RELATIONAL_JOINT_DIST_H_
#define MRSL_RELATIONAL_JOINT_DIST_H_

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "util/mixed_radix.h"

namespace mrsl {

/// Dense joint distribution over `vars` (ascending attribute ids).
class JointDist {
 public:
  JointDist() = default;

  /// Creates an all-zero distribution over `vars` with the given
  /// per-variable cardinalities.
  JointDist(std::vector<AttrId> vars, std::vector<uint32_t> cards);

  const std::vector<AttrId>& vars() const { return vars_; }
  const MixedRadix& codec() const { return codec_; }

  /// Number of cells = product of cardinalities.
  uint64_t size() const { return codec_.Size(); }

  double prob(uint64_t code) const { return probs_[code]; }
  void set_prob(uint64_t code, double p) { probs_[code] = p; }
  void add_prob(uint64_t code, double p) { probs_[code] += p; }

  /// Probability of a combination given as per-var values (aligned with
  /// vars()).
  double ProbOf(const std::vector<ValueId>& combo) const;

  /// Total mass.
  double Sum() const;

  /// Scales to total mass 1. No-op on all-zero distributions.
  void Normalize();

  /// Adds `epsilon` to every cell then normalizes; used to keep KL finite
  /// for sampled estimates with empty cells.
  void SmoothAdditive(double epsilon);

  /// Code of the most probable combination.
  uint64_t ArgMax() const;

  /// Marginal distribution of vars()[pos].
  std::vector<double> Marginal(size_t pos) const;

  /// Shannon entropy in nats (0 for a point mass); a direct measure of
  /// how uncertain a derived Δt still is.
  double Entropy() const;

  /// The `k` most probable combinations as (code, probability), sorted
  /// by probability descending (ties by code).
  std::vector<std::pair<uint64_t, double>> TopK(size_t k) const;

  /// Renders the top-k most probable combinations, e.g. for examples.
  std::string ToString(const Schema& schema, size_t top_k = 10) const;

  const std::vector<double>& probs() const { return probs_; }

 private:
  std::vector<AttrId> vars_;
  MixedRadix codec_;
  std::vector<double> probs_;
};

}  // namespace mrsl

#endif  // MRSL_RELATIONAL_JOINT_DIST_H_
