// The matching/subsumption predicates reduce to bit arithmetic on
// CompleteMask() (one bit per assigned attribute, hence the 64-attribute
// schema cap): proper-subset tests are mask compares and AgreesOn walks
// only the set bits via ctz. TupleHash is FNV-1a over the raw cell ids;
// kMissingValue hashes like any other value, so incomplete tuples can key
// hash maps (the tuple-DAG dedup relies on this).

#include "relational/tuple.h"

#include <cassert>
#include <cstddef>

namespace mrsl {

AttrMask Tuple::CompleteMask() const {
  AttrMask mask = 0;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != kMissingValue) mask |= AttrMask{1} << i;
  }
  return mask;
}

bool Tuple::IsComplete() const {
  for (ValueId v : values_) {
    if (v == kMissingValue) return false;
  }
  return true;
}

size_t Tuple::NumMissing() const {
  size_t n = 0;
  for (ValueId v : values_) n += (v == kMissingValue);
  return n;
}

std::vector<AttrId> Tuple::MissingAttrs() const {
  std::vector<AttrId> out;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] == kMissingValue) out.push_back(static_cast<AttrId>(i));
  }
  return out;
}

std::vector<AttrId> Tuple::AssignedAttrs() const {
  std::vector<AttrId> out;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != kMissingValue) out.push_back(static_cast<AttrId>(i));
  }
  return out;
}

bool Tuple::MatchedBy(const Tuple& point) const {
  assert(point.num_attrs() == num_attrs());
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i] != kMissingValue && values_[i] != point.values_[i]) {
      return false;
    }
  }
  return true;
}

bool Tuple::AgreesOn(const Tuple& other, AttrMask mask) const {
  assert(other.num_attrs() == num_attrs());
  while (mask != 0) {
    AttrId i = static_cast<AttrId>(__builtin_ctzll(mask));
    if (values_[i] != other.values_[i]) return false;
    mask &= mask - 1;
  }
  return true;
}

bool Tuple::Subsumes(const Tuple& other) const {
  AttrMask mine = CompleteMask();
  AttrMask theirs = other.CompleteMask();
  // Proper subset: mine strictly inside theirs.
  if (mine == theirs || (mine & ~theirs) != 0) return false;
  return AgreesOn(other, mine);
}

bool Tuple::SubsumesOrEquals(const Tuple& other) const {
  AttrMask mine = CompleteMask();
  AttrMask theirs = other.CompleteMask();
  if ((mine & ~theirs) != 0) return false;
  return AgreesOn(other, mine);
}

std::string Tuple::ToString(const Schema& schema) const {
  std::string out = "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i != 0) out += ", ";
    out += schema.attr(static_cast<AttrId>(i)).name();
    out += '=';
    if (values_[i] == kMissingValue) {
      out += '?';
    } else {
      out += schema.attr(static_cast<AttrId>(i)).label(values_[i]);
    }
  }
  out += ')';
  return out;
}

size_t TupleHash::operator()(const Tuple& t) const {
  // FNV-1a over the cell values.
  uint64_t h = 1469598103934665603ULL;
  for (ValueId v : t.values()) {
    h ^= static_cast<uint64_t>(static_cast<uint32_t>(v));
    h *= 1099511628211ULL;
  }
  return static_cast<size_t>(h);
}

}  // namespace mrsl
