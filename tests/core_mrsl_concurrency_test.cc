// Concurrency hammer for the thread-safe matching path: many threads
// matching against one shared lattice with private scratch must agree
// with the single-threaded oracle on every query. (Run under TSan to
// verify the absence of data races; the functional check here catches
// cross-thread corruption regardless.)

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "bn/bayes_net.h"
#include "core/gibbs.h"
#include "core/infer_single.h"
#include "core/learner.h"

namespace mrsl {
namespace {

TEST(MrslConcurrencyTest, ParallelMatchingAgreesWithOracle) {
  Rng rng(2024);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(6, 3), &rng);
  Relation train = bn.SampleRelation(8000, &rng);
  LearnOptions lo;
  lo.support_threshold = 0.002;
  auto model = LearnModel(train, lo);
  ASSERT_TRUE(model.ok());

  // Shared probe set with precomputed single-threaded oracle answers.
  constexpr size_t kProbes = 400;
  std::vector<Tuple> probes;
  std::vector<std::vector<uint32_t>> oracle(kProbes);
  const Mrsl& lattice = model->mrsl(0);
  for (size_t i = 0; i < kProbes; ++i) {
    Tuple t(6);
    for (AttrId a = 1; a < 6; ++a) {
      if (rng.Bernoulli(0.6)) {
        t.set_value(a, static_cast<ValueId>(rng.UniformInt(3)));
      }
    }
    oracle[i] = lattice.Match(t, VoterChoice::kAll);
    std::sort(oracle[i].begin(), oracle[i].end());
    probes.push_back(std::move(t));
  }

  constexpr size_t kThreads = 8;
  constexpr size_t kRounds = 200;
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      Mrsl::MatchScratch scratch;
      std::vector<uint32_t> out;
      // Offset start so threads hit different probes simultaneously.
      for (size_t round = 0; round < kRounds; ++round) {
        size_t i = (w * 37 + round) % kProbes;
        lattice.MatchValues(probes[i].values(), VoterChoice::kAll,
                            &scratch, &out);
        std::sort(out.begin(), out.end());
        if (out != oracle[i]) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(MrslConcurrencyTest, ParallelInferSingleWithScratch) {
  Rng rng(2025);
  BayesNet bn = BayesNet::RandomInstance(Topology::Chain(5, 2), &rng);
  Relation train = bn.SampleRelation(6000, &rng);
  LearnOptions lo;
  lo.support_threshold = 0.005;
  auto model = LearnModel(train, lo);
  ASSERT_TRUE(model.ok());

  std::vector<Tuple> probes;
  std::vector<std::vector<double>> oracle;
  for (int i = 0; i < 100; ++i) {
    Tuple t = bn.ForwardSample(&rng);
    t.set_value(2, kMissingValue);
    auto cpd = InferSingleAttribute(*model, t, 2, VotingOptions());
    ASSERT_TRUE(cpd.ok());
    oracle.push_back(cpd->probs());
    probes.push_back(std::move(t));
  }

  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (size_t w = 0; w < 8; ++w) {
    threads.emplace_back([&, w] {
      Mrsl::MatchScratch scratch;
      for (size_t round = 0; round < 300; ++round) {
        size_t i = (w * 13 + round) % probes.size();
        auto cpd = InferSingleAttribute(*model, probes[i], 2,
                                        VotingOptions(), &scratch);
        if (!cpd.ok() || cpd->probs() != oracle[i]) {
          mismatches.fetch_add(1);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

TEST(MrslConcurrencyTest, ConcurrentGibbsSamplersShareModel) {
  Rng rng(2026);
  BayesNet bn = BayesNet::RandomInstance(Topology::Crown(4, 2), &rng);
  Relation train = bn.SampleRelation(5000, &rng);
  LearnOptions lo;
  lo.support_threshold = 0.005;
  auto model = LearnModel(train, lo);
  ASSERT_TRUE(model.ok());

  Tuple t(4);
  t.set_value(0, 0);
  // Reference run.
  GibbsOptions gopts;
  gopts.samples = 500;
  gopts.burn_in = 50;
  gopts.seed = 77;
  std::vector<double> reference;
  {
    GibbsSampler sampler(&*model, gopts);
    auto dist = sampler.Infer(t);
    ASSERT_TRUE(dist.ok());
    reference = dist->probs();
  }

  // Eight samplers with the same seed over the shared model, in parallel:
  // every one must reproduce the reference exactly.
  std::atomic<size_t> mismatches{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < 8; ++w) {
    threads.emplace_back([&] {
      GibbsSampler sampler(&*model, gopts);
      auto dist = sampler.Infer(t);
      if (!dist.ok() || dist->probs() != reference) {
        mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0u);
}

}  // namespace
}  // namespace mrsl
