// Tests for KL divergence, top-1 matching, and the accuracy accumulator.

#include "expfw/metrics.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mrsl {
namespace {

TEST(KlTest, ZeroForIdenticalDistributions) {
  std::vector<double> p = {0.2, 0.5, 0.3};
  EXPECT_NEAR(KlDivergence(p, p), 0.0, 1e-12);
}

TEST(KlTest, KnownValue) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {0.25, 0.75};
  double expect = 0.5 * std::log(2.0) + 0.5 * std::log(2.0 / 3.0);
  EXPECT_NEAR(KlDivergence(p, q), expect, 1e-12);
}

TEST(KlTest, AsymmetricInGeneral) {
  std::vector<double> p = {0.9, 0.1};
  std::vector<double> q = {0.5, 0.5};
  EXPECT_NE(KlDivergence(p, q), KlDivergence(q, p));
}

TEST(KlTest, ZeroTrueCellsContributeNothing) {
  std::vector<double> p = {1.0, 0.0};
  std::vector<double> q = {0.8, 0.2};
  EXPECT_NEAR(KlDivergence(p, q), std::log(1.0 / 0.8), 1e-12);
}

TEST(KlTest, ClampsZeroEstimates) {
  std::vector<double> p = {0.5, 0.5};
  std::vector<double> q = {1.0, 0.0};
  double kl = KlDivergence(p, q);
  EXPECT_TRUE(std::isfinite(kl));
  EXPECT_GT(kl, 1.0);
}

TEST(KlTest, NonNegative) {
  std::vector<double> p = {0.1, 0.2, 0.3, 0.4};
  std::vector<double> q = {0.4, 0.3, 0.2, 0.1};
  EXPECT_GE(KlDivergence(p, q), 0.0);
}

TEST(KlTest, JointDistOverload) {
  JointDist p({0}, {2});
  p.set_prob(0, 0.5);
  p.set_prob(1, 0.5);
  JointDist q({0}, {2});
  q.set_prob(0, 0.25);
  q.set_prob(1, 0.75);
  EXPECT_NEAR(KlDivergence(p, q),
              KlDivergence(p.probs(), q.probs()), 1e-15);
}

TEST(Top1Test, MatchAndMismatch) {
  EXPECT_TRUE(Top1Match({0.1, 0.9}, {0.4, 0.6}));
  EXPECT_FALSE(Top1Match({0.1, 0.9}, {0.6, 0.4}));
}

TEST(AccuracyAccumulatorTest, MeansAndRates) {
  AccuracyAccumulator acc;
  EXPECT_EQ(acc.count(), 0u);
  EXPECT_DOUBLE_EQ(acc.MeanKl(), 0.0);
  acc.Add(0.2, true);
  acc.Add(0.4, false);
  EXPECT_EQ(acc.count(), 2u);
  EXPECT_NEAR(acc.MeanKl(), 0.3, 1e-12);
  EXPECT_NEAR(acc.Top1Rate(), 0.5, 1e-12);
}

TEST(AccuracyAccumulatorTest, Merge) {
  AccuracyAccumulator a;
  a.Add(0.1, true);
  AccuracyAccumulator b;
  b.Add(0.3, false);
  b.Add(0.5, false);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_NEAR(a.MeanKl(), 0.3, 1e-12);
  EXPECT_NEAR(a.Top1Rate(), 1.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace mrsl
